// telemetry_check — structural validator for the telemetry files the CLI
// writes (src/runtime/telemetry.h), used by CI to prove a trace is more
// than well-formed JSON.
//
//   telemetry_check --trace=FILE [--expect-cells=N] [--expect-attempts=N]
//                   [--metrics=FILE]
//
// Trace checks:
//  - the document is {"traceEvents": [...]} and every event round-trips
//    through TraceRecorder::parse_event (name, ph in {X,i,M}, ts/dur/pid/
//    tid well-typed);
//  - every pid with events has a process_name metadata event;
//  - "X" spans have dur >= 0 and, within each (pid, tid) lane, nest
//    properly: sorted by start, a span that begins inside another must end
//    inside it (no partial overlap — what Perfetto renders as a broken
//    track);
//  - every "round" span carries round/frontier/messages/steps args and
//    sits inside an "engine.run" span on its lane; every "cell" span
//    carries index/scenario/algorithm/seed args;
//  - --expect-cells=N / --expect-attempts=N pin the number of "cell" /
//    "attempt" spans (a stitched supervised trace must cover every
//    campaign cell and every shard attempt).
//
// Metrics checks: {"metrics": [...]} sorted by unique name, kind in
// {counter, gauge, histogram}, histogram count == sum of bucket counts and
// min <= max when count > 0.
//
// Exit 0 when everything holds; every violation is printed and exits 1.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/runtime/telemetry.h"
#include "src/util/json.h"

using namespace unilocal;

namespace {

int g_failures = 0;  // NOLINT

void fail(const std::string& message) {
  std::fprintf(stderr, "telemetry_check: FAIL: %s\n", message.c_str());
  ++g_failures;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const json::Value* find_arg(const telemetry::TraceEvent& event,
                            const char* key) {
  if (!event.args.is_object()) return nullptr;
  return event.args.find(key);
}

void require_args(const telemetry::TraceEvent& event,
                  const std::vector<const char*>& keys) {
  for (const char* key : keys)
    if (find_arg(event, key) == nullptr)
      fail("'" + event.name + "' span at ts=" + std::to_string(event.ts) +
           " missing arg '" + key + "'");
}

int check_trace(const std::string& path, int expect_cells,
                int expect_attempts) {
  std::vector<telemetry::TraceEvent> events;
  try {
    const json::Value document = json::Value::parse(read_text_file(path));
    const json::Value& list = document.at("traceEvents");
    if (!list.is_array()) throw std::runtime_error("traceEvents not an array");
    for (const json::Value& item : list.as_array())
      events.push_back(telemetry::TraceRecorder::parse_event(item));
  } catch (const std::exception& e) {
    fail(path + ": " + e.what());
    return 1;
  }

  // Process names: every pid that records events must be named.
  std::map<int, std::string> process_names;
  std::map<int, int> events_per_pid;
  for (const telemetry::TraceEvent& event : events) {
    if (event.phase == 'M' && event.name == "process_name") {
      const json::Value* name = find_arg(event, "name");
      if (name == nullptr || !name->is_string())
        fail("process_name metadata for pid " + std::to_string(event.pid) +
             " lacks a string 'name' arg");
      else
        process_names[event.pid] = name->as_string();
      continue;
    }
    ++events_per_pid[event.pid];
  }
  for (const auto& [pid, count] : events_per_pid)
    if (process_names.find(pid) == process_names.end())
      fail("pid " + std::to_string(pid) + " has " + std::to_string(count) +
           " events but no process_name metadata");

  // Span nesting per (pid, tid) lane.
  std::map<std::pair<int, int>, std::vector<const telemetry::TraceEvent*>>
      lanes;
  int cells = 0;
  int attempts = 0;
  int rounds = 0;
  for (const telemetry::TraceEvent& event : events) {
    if (event.phase != 'X') continue;
    if (event.dur < 0)
      fail("'" + event.name + "' span at ts=" + std::to_string(event.ts) +
           " has negative dur " + std::to_string(event.dur));
    lanes[{event.pid, event.tid}].push_back(&event);
    if (event.name == "cell") {
      ++cells;
      require_args(event, {"index", "scenario", "algorithm", "seed"});
    } else if (event.name == "attempt") {
      ++attempts;
      require_args(event, {"shard", "attempt", "speculative", "outcome"});
    } else if (event.name == "round") {
      ++rounds;
      require_args(event, {"round", "frontier", "messages", "steps"});
    } else if (event.name == "engine.run") {
      require_args(event, {"mode", "path", "n", "rounds"});
    }
  }
  for (auto& [lane, spans] : lanes) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const telemetry::TraceEvent* a,
                        const telemetry::TraceEvent* b) {
                       if (a->ts != b->ts) return a->ts < b->ts;
                       // Equal starts: the longer span is the outer one.
                       return a->dur > b->dur;
                     });
    // A stack of open spans: each new span must start after the top ends
    // (sibling) or end no later than it (child). Partial overlap breaks
    // the lane.
    std::vector<const telemetry::TraceEvent*> open;
    for (const telemetry::TraceEvent* span : spans) {
      while (!open.empty() && open.back()->ts + open.back()->dur <= span->ts)
        open.pop_back();
      if (!open.empty() &&
          span->ts + span->dur > open.back()->ts + open.back()->dur)
        fail("lane pid=" + std::to_string(lane.first) +
             " tid=" + std::to_string(lane.second) + ": '" + span->name +
             "' [" + std::to_string(span->ts) + ", " +
             std::to_string(span->ts + span->dur) + ") partially overlaps '" +
             open.back()->name + "' [" + std::to_string(open.back()->ts) +
             ", " +
             std::to_string(open.back()->ts + open.back()->dur) + ")");
      open.push_back(span);
    }
  }
  // Every "round" span must sit inside an "engine.run" span on its lane.
  for (const auto& [lane, spans] : lanes) {
    for (const telemetry::TraceEvent* span : spans) {
      if (span->name != "round") continue;
      bool covered = false;
      for (const telemetry::TraceEvent* other : spans) {
        if (other->name != "engine.run") continue;
        if (other->ts <= span->ts &&
            span->ts + span->dur <= other->ts + other->dur) {
          covered = true;
          break;
        }
      }
      if (!covered)
        fail("lane pid=" + std::to_string(lane.first) +
             " tid=" + std::to_string(lane.second) + ": 'round' span at ts=" +
             std::to_string(span->ts) + " outside any 'engine.run' span");
    }
  }

  if (expect_cells >= 0 && cells != expect_cells)
    fail("expected " + std::to_string(expect_cells) + " 'cell' spans, found " +
         std::to_string(cells));
  if (expect_attempts >= 0 && attempts != expect_attempts)
    fail("expected " + std::to_string(expect_attempts) +
         " 'attempt' spans, found " + std::to_string(attempts));

  std::fprintf(stderr,
               "telemetry_check: %s: %zu events, %zu lanes, %d cell / %d "
               "attempt / %d round spans, %zu named processes\n",
               path.c_str(), events.size(), lanes.size(), cells, attempts,
               rounds, process_names.size());
  return 0;
}

int check_metrics(const std::string& path) {
  json::Value document;
  try {
    document = json::Value::parse(read_text_file(path));
  } catch (const std::exception& e) {
    fail(path + ": " + e.what());
    return 1;
  }
  const json::Value* list = document.find("metrics");
  if (list == nullptr || !list->is_array()) {
    fail(path + ": no 'metrics' array");
    return 1;
  }
  std::string previous;
  std::size_t index = 0;
  for (const json::Value& metric : list->as_array()) {
    ++index;
    std::string name;
    try {
      name = metric.at("name").as_string();
      const std::string kind = metric.at("kind").as_string();
      if (kind != "counter" && kind != "gauge" && kind != "histogram") {
        fail(name + ": unknown kind '" + kind + "'");
        continue;
      }
      if (kind == "histogram") {
        const std::int64_t count = metric.at("count").as_i64();
        const json::Value& buckets = metric.at("buckets");
        std::int64_t bucket_total = 0;
        for (const auto& [bucket, bucket_count] : buckets.as_object())
          bucket_total += bucket_count.as_i64();
        if (bucket_total != count)
          fail(name + ": count " + std::to_string(count) +
               " != bucket sum " + std::to_string(bucket_total));
        if (count > 0 && metric.at("min").as_i64() > metric.at("max").as_i64())
          fail(name + ": min > max");
      } else if (metric.find("value") == nullptr) {
        fail(name + ": " + kind + " without 'value'");
      }
    } catch (const std::exception& e) {
      fail(path + ": metric " + std::to_string(index - 1) + ": " + e.what());
      continue;
    }
    if (!previous.empty() && !(previous < name))
      fail("metrics not sorted by unique name: '" + previous +
           "' then '" + name + "'");
    previous = name;
  }
  std::fprintf(stderr, "telemetry_check: %s: %zu metrics\n", path.c_str(),
               list->as_array().size());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: telemetry_check --trace=FILE [--expect-cells=N] "
               "[--expect-attempts=N] [--metrics=FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  int expect_cells = -1;
  int expect_attempts = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (arg.rfind("--trace=", 0) == 0)
      trace_path = value();
    else if (arg.rfind("--metrics=", 0) == 0)
      metrics_path = value();
    else if (arg.rfind("--expect-cells=", 0) == 0)
      expect_cells = std::stoi(value());
    else if (arg.rfind("--expect-attempts=", 0) == 0)
      expect_attempts = std::stoi(value());
    else
      return usage();
  }
  if (trace_path.empty() && metrics_path.empty()) return usage();
  if (!trace_path.empty())
    check_trace(trace_path, expect_cells, expect_attempts);
  if (!metrics_path.empty()) check_metrics(metrics_path);
  if (g_failures > 0) {
    std::fprintf(stderr, "telemetry_check: %d failure%s\n", g_failures,
                 g_failures == 1 ? "" : "s");
    return 1;
  }
  return 0;
}
