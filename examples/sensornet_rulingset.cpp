// Cluster-head election in a sensor network: pick heads so that no two
// heads hear each other (alpha = 2) and every sensor is within beta hops of
// a head — a (2, beta)-ruling set. Sensors are deployed by airdrop: none
// knows how many survived, so the Monte-Carlo head-election protocol (which
// needs an estimate of n to size its retry budget) is made uniform AND
// Las Vegas by the paper's Theorem 2 transformer.
#include <cstdio>

#include "src/algo/ruling_set_mc.h"
#include "src/core/mc_to_lv.h"
#include "src/graph/generators.h"
#include "src/graph/params.h"
#include "src/problems/ruling_set.h"
#include "src/prune/ruling_set_prune.h"

using namespace unilocal;

int main() {
  constexpr int kBeta = 2;
  Rng rng(7);
  Instance field = make_instance(random_geometric(1000, 0.05, rng),
                                 IdentityScheme::kRandomSparse, 9);
  std::printf("field: %d sensors, %lld radio links, Delta=%d\n",
              field.num_nodes(),
              static_cast<long long>(field.graph.num_edges()),
              max_degree(field.graph));

  const auto election = make_mc_ruling_set(kBeta);
  const RulingSetPruning pruning(kBeta);
  UniformRunOptions options;
  options.seed = 123;
  const UniformRunResult result =
      run_las_vegas_transformer(field, *election, pruning, options);
  if (!result.solved) {
    std::printf("election did not converge\n");
    return 1;
  }
  int heads = 0;
  for (std::int64_t bit : result.outputs) heads += bit != 0;
  std::printf("elected %d cluster heads in %lld rounds\n", heads,
              static_cast<long long>(result.total_rounds));
  std::printf("valid (2,%d)-ruling set: %s\n", kBeta,
              is_two_beta_ruling_set(field.graph, result.outputs, kBeta)
                  ? "yes"
                  : "NO");
  std::printf(
      "Las Vegas guarantee: rerunning with any seed yields a correct\n"
      "election; only the round count varies (Theorem 2)\n");
  return 0;
}
