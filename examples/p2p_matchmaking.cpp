// Peer-to-peer matchmaking: players are connected to compatible opponents
// in an overlay graph; we want a maximal set of disjoint matches (every
// unmatched player has only matched acquaintances to blame). The overlay
// grows and shrinks constantly, so no node knows n or Delta — the Theorem 1
// transformer with the paper's P_MM pruning algorithm runs the
// colored-proposal matcher uniformly.
#include <cstdio>

#include "src/algo/edge_color_mm.h"
#include "src/core/transformer.h"
#include "src/graph/generators.h"
#include "src/graph/params.h"
#include "src/problems/matching.h"
#include "src/prune/matching_prune.h"

using namespace unilocal;

int main() {
  // Compatibility overlay: a power-law graph (a few very social players).
  Rng rng(99);
  Instance overlay = make_instance(power_law(1200, 2.4, 5.0, rng),
                                   IdentityScheme::kRandomSparse, 5);
  std::printf("overlay: %d players, %lld compatibility edges, Delta=%d\n",
              overlay.num_nodes(),
              static_cast<long long>(overlay.graph.num_edges()),
              max_degree(overlay.graph));

  const auto matcher = make_colored_matching();
  const MatchingPruning pruning;
  const UniformRunResult result =
      run_uniform_transformer(overlay, *matcher, pruning);
  if (!result.solved) {
    std::printf("matchmaking did not converge\n");
    return 1;
  }
  const auto partner = matched_partner(overlay.graph, result.outputs);
  int matched = 0;
  for (NodeId v = 0; v < overlay.num_nodes(); ++v)
    matched += partner[static_cast<std::size_t>(v)] >= 0;
  std::printf("matched %d of %d players in %lld rounds, maximal=%s\n",
              matched, overlay.num_nodes(),
              static_cast<long long>(result.total_rounds),
              is_maximal_matching(overlay.graph, result.outputs) ? "yes"
                                                                 : "NO");
  std::printf("transformer iterations: %d (guesses doubled until they\n"
              "covered the true Delta and id-space — no global knowledge)\n",
              result.iterations_used);
  return 0;
}
