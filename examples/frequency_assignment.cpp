// Frequency assignment for a wireless mesh: access points within
// interference range must transmit on different channels, nobody knows the
// size of the deployment, and dense downtown cells should not force remote
// rural APs onto exotic channel numbers.
//
// This is exactly the paper's Theorem 5 scenario: a uniform
// lambda(Delta+1)-coloring of the interference graph. The degree layering
// gives low-degree (rural) APs small channels regardless of the downtown
// hub degrees.
#include <cstdio>

#include "src/core/coloring_transform.h"
#include "src/graph/generators.h"
#include "src/graph/params.h"
#include "src/problems/coloring.h"

using namespace unilocal;

int main() {
  // Interference graph: 800 APs scattered on the unit square, edges within
  // radio range (a random geometric graph — degree varies wildly).
  Rng rng(2026);
  Instance deployment = make_instance(random_geometric(800, 0.06, rng),
                                      IdentityScheme::kRandomSparse, 3);
  std::printf("deployment: %d APs, %lld interference edges, Delta=%d\n",
              deployment.num_nodes(),
              static_cast<long long>(deployment.graph.num_edges()),
              max_degree(deployment.graph));

  // lambda = 2: twice the minimum palette buys a faster assignment.
  const auto coloring = make_lambda_gdelta_coloring(2);
  const ColoringTransformResult plan =
      run_uniform_coloring_transform(deployment, *coloring);
  if (!plan.solved) {
    std::printf("assignment failed\n");
    return 1;
  }
  std::printf("channels assigned in %lld rounds (phase1 %lld + phase2 %lld)\n",
              static_cast<long long>(plan.total_rounds),
              static_cast<long long>(plan.phase1_rounds),
              static_cast<long long>(plan.phase2_rounds));
  std::printf("conflict-free: %s, channels used: up to %lld\n",
              is_proper_coloring(deployment.graph, plan.colors) ? "yes" : "NO",
              static_cast<long long>(plan.max_color_used));
  for (const auto& layer : plan.layers) {
    std::printf(
        "  degree band %d (deg < %lld): %d APs on channels [%lld, %lld]\n",
        layer.layer, static_cast<long long>(layer.delta_hat),
        layer.nodes, static_cast<long long>(layer.palette_lo),
        static_cast<long long>(layer.palette_hi));
  }
  std::printf(
      "note: no AP was ever told the deployment size or the max degree —\n"
      "low-degree APs landed on low channels by the layering alone\n");
  return 0;
}
