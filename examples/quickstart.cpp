// Quickstart: the library in five minutes.
//
//  1. Build a network and an instance (topology + unique identities).
//  2. Run a plain uniform LOCAL algorithm (Luby's randomized MIS).
//  3. Run a NON-uniform algorithm the classical way — with correct global
//     parameters handed to every node.
//  4. Run the SAME algorithm uniformly via the paper's Theorem 1
//     transformer: no node ever learns n, Delta or m, yet the round ledger
//     stays within a constant factor.
#include <cstdio>

#include "src/algo/luby.h"
#include "src/algo/mis_from_coloring.h"
#include "src/core/transformer.h"
#include "src/graph/generators.h"
#include "src/graph/params.h"
#include "src/problems/mis.h"
#include "src/prune/ruling_set_prune.h"

using namespace unilocal;

int main() {
  // 1. A random 500-node network with average degree ~6 and random ids.
  Rng rng(42);
  Instance instance = make_instance(gnp(500, 6.0 / 500, rng),
                                    IdentityScheme::kRandomSparse, 7);
  std::printf("network: n=%d, |E|=%lld, Delta=%d\n", instance.num_nodes(),
              static_cast<long long>(instance.graph.num_edges()),
              max_degree(instance.graph));

  // 2. Uniform randomized MIS (Luby) — no global knowledge needed.
  const RunResult luby = run_local(instance, LubyMis{});
  std::printf("luby MIS:            %5lld rounds, valid=%s\n",
              static_cast<long long>(luby.rounds_used),
              is_maximal_independent_set(instance.graph, luby.outputs)
                  ? "yes"
                  : "no");

  // 3. Non-uniform deterministic MIS, told the true (Delta, m).
  const auto non_uniform = make_coloring_mis();
  const auto baseline =
      instantiate_with_correct_guesses(*non_uniform, instance);
  const RunResult told = run_local(instance, *baseline);
  std::printf("det MIS (told D,m):  %5lld rounds, valid=%s\n",
              static_cast<long long>(told.rounds_used),
              is_maximal_independent_set(instance.graph, told.outputs)
                  ? "yes"
                  : "no");

  // 4. The same black box made uniform by Theorem 1 + the P(2,1) pruning
  //    algorithm. Nodes receive only the transformer's guesses.
  const RulingSetPruning pruning(1);
  const UniformRunResult uniform =
      run_uniform_transformer(instance, *non_uniform, pruning);
  std::printf("det MIS (uniform):   %5lld rounds, valid=%s, overhead=%.2fx\n",
              static_cast<long long>(uniform.total_rounds),
              uniform.solved && is_maximal_independent_set(instance.graph,
                                                           uniform.outputs)
                  ? "yes"
                  : "no",
              static_cast<double>(uniform.total_rounds) /
                  static_cast<double>(told.rounds_used));
  return 0;
}
