// unilocal_cli — run a uniform LOCAL algorithm on your own graph, or sweep
// a campaign grid over the scenario registry.
//
//   unilocal_cli <problem> [file] [--stats] [--kernel=off|auto|on]
//
//   <problem>: mis | matching | coloring | rulingset2
//   [file]:    edge list ("n m" header then "u v" per line);
//              reads stdin when omitted.
//   --stats:   also print per-run engine statistics (arena bytes, peak
//              messages/round, steps/sec, peak/final live nodes, frontier
//              width, lazily cleared dirty spans, kernel/vtable step split)
//              on stderr.
//   --kernel:  engine execution path (src/runtime/kernel.h): flat step
//              kernels where an algorithm has a lowering (auto, the
//              default), the Process vtable path always (off), or kernels
//              required — error when a stage has no lowering (on). Outputs
//              are bit-identical across modes.
//   --network: delivery layer (src/runtime/network.h): the round-exact
//              synchronous arena (sync, the default) or the seeded
//              event-queue transport (delay:uniform | delay:weighted |
//              delay:heavytail). Fault knobs — --drop/--dup/--crash/--late
//              (probabilities) and --max-delay/--late-by (ticks) — apply
//              to the delayed presets only. When every message is
//              eventually delivered, outputs are bit-identical to the
//              synchronous run (the paper's Observation 2.1); sweep and
//              table1 accept a comma-separated spec list and cross the
//              grid with it like a scenario dimension.
//
//   unilocal_cli sweep [--scenarios=a,b,..] [--algorithms=x,y,..] [--n=N]
//                      [--a=V] [--b=V] [--seeds=K] [--workers=W]
//                      [--kernel=M] [--format=csv|json] [--log=FILE] [--list]
//
//   Runs the (scenario x algorithm x seed) grid concurrently on W workers
//   (campaign layer, src/runtime/campaign.h), prints one CSV row (or JSON
//   record) per cell on stdout and the aggregate summary on stderr.
//   --algorithms (alias --algos) accepts registry keys, '*'/'?' globs
//   (e.g. 'mis-*'), and the word 'all'. --list shows the registered
//   scenario families and algorithms. --log appends one JSON line to the
//   append-only run log and diffs against the last recorded sweep of the
//   same grid.
//
//   unilocal_cli table1 [--n=N] [--seeds=K] [--workers=W] [--kernel=M]
//                       [--format=csv|json] [--log=FILE] [--smoke]
//
//   Regenerates the paper's Table 1 grid as ONE campaign: every registry
//   entry crossed with the scenario families its row is stated over.
//   --smoke shrinks the grid (n=64, 1 seed) for CI. Exit status 0 iff
//   every cell ran, solved, and passed its centralized checker.
//
//   Both sweep and table1 accept --shards=K [--policy=P]: the grid is
//   planned into K shards, run as K concurrently *supervised* worker
//   processes (each `unilocal_cli shard run` on its own manifest,
//   src/runtime/supervisor.h), and merged — the merged output is
//   bit-identical (per-cell output hashes, grid hash) to the
//   single-process run. --canonical emits only the deterministic JSON
//   fields so sharded and single-process outputs diff byte-equal.
//   Supervision knobs: --max-attempts=N (launches per shard, default 3),
//   --shard-timeout=S (base per-attempt deadline; the cost model adds a
//   per-cost term), --journal=FILE (checkpoint journal — rerunning after
//   a kill resumes, skipping completed shards, to byte-identical output),
//   --allow-partial (exhausted shards degrade to an explicit missing-cell
//   report instead of a fatal error), --no-speculate (disable straggler
//   re-launch). The hidden chaos harness --inject=crash:p,hang:p,
//   corrupt:p,flaky-exit:p [--inject-seed=U] makes workers abort mid-run,
//   sleep past their deadline, scribble their output file, or exit
//   nonzero after valid output — deterministically per (shard, attempt,
//   seed) — to exercise every recovery path in tests and CI.
//
//   unilocal_cli shard plan --dir=DIR --shards=K [--policy=P] <grid flags>
//   unilocal_cli shard run MANIFEST [--out=FILE] [--workers=W] [--kernel=M]
//   unilocal_cli shard merge PLAN RESULT... [--format=csv|json]
//                            [--canonical] [--log=FILE]
//
//   The three layers of src/runtime/shard.h, one file per hop: plan
//   writes DIR/plan.json + DIR/shard-<i>.json manifests (--table1
//   [--smoke] or --scenarios/--algorithms pick the grid); run executes
//   one manifest and writes a shard-result JSON; merge verifies every
//   result against the plan (missing/duplicate/foreign/hash-mismatched
//   shards are rejected naming all offenders) and prints the merged
//   campaign exactly like sweep does.
//
// Prints one line per node: "<identity> <output>" (plus a summary on
// stderr). Every algorithm here is the uniform product of the paper's
// transformers — the tool needs no -n/-delta flags because no node needs
// them; that is the point of the paper.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/algo/edge_color_mm.h"
#include "src/algo/mis_from_coloring.h"
#include "src/algo/ruling_set_mc.h"
#include "src/core/coloring_transform.h"
#include "src/core/mc_to_lv.h"
#include "src/core/transformer.h"
#include "src/graph/io.h"
#include "src/problems/coloring.h"
#include "src/problems/matching.h"
#include "src/problems/mis.h"
#include "src/problems/ruling_set.h"
#include "src/prune/matching_prune.h"
#include "src/prune/ruling_set_prune.h"
#include "src/runtime/campaign.h"
#include "src/runtime/kernel.h"
#include "src/runtime/run_log.h"
#include "src/runtime/shard.h"
#include "src/runtime/supervisor.h"
#include "src/runtime/telemetry.h"

using namespace unilocal;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: unilocal_cli <mis|matching|coloring|rulingset2> "
               "[edge-list-file] [--stats] [--stats-json=FILE] "
               "[--kernel=off|auto|on] "
               "[--network=sync|delay:uniform|delay:weighted|delay:heavytail] "
               "[--drop=P] [--dup=P] [--crash=P] [--late=P] [--max-delay=T] "
               "[--late-by=T] [--trace=FILE] [--metrics=FILE] "
               "[--trace-rounds=N]\n"
               "       unilocal_cli sweep [--scenarios=a,b,..] "
               "[--algorithms=x,y,..|all|glob*] [--n=N] [--a=V] [--b=V] "
               "[--seeds=K] [--workers=W] [--kernel=M] "
               "[--network=SPEC,..] [fault knobs] [--shards=K] "
               "[--policy=round-robin|cost-balanced] [--max-attempts=N] "
               "[--shard-timeout=S] [--journal=FILE] [--allow-partial] "
               "[--no-speculate] [--format=csv|json] "
               "[--canonical] [--log=FILE] [--trace=FILE] [--metrics=FILE] "
               "[--trace-rounds=N] [--list]\n"
               "       unilocal_cli table1 [--n=N] [--seeds=K] [--workers=W] "
               "[--kernel=M] [--network=SPEC,..] [fault knobs] [--shards=K] "
               "[--policy=P] [--max-attempts=N] [--shard-timeout=S] "
               "[--journal=FILE] [--allow-partial] [--no-speculate] "
               "[--format=csv|json] "
               "[--canonical] [--log=FILE] [--trace=FILE] [--metrics=FILE] "
               "[--trace-rounds=N] [--smoke]\n"
               "       unilocal_cli shard plan --dir=DIR --shards=K "
               "[--policy=P] (--table1 [--smoke] | --scenarios=.. "
               "--algorithms=..) [--n=N] [--a=V] [--b=V] [--seeds=K] "
               "[--network=SPEC,..] [fault knobs]\n"
               "       unilocal_cli shard run MANIFEST [--out=FILE] "
               "[--workers=W] [--kernel=M] [--trace=FILE] [--metrics=FILE] "
               "[--trace-rounds=N]\n"
               "       unilocal_cli shard merge PLAN RESULT... "
               "[--format=csv|json] [--canonical] [--log=FILE]\n");
  return 2;
}

/// argv[0], for the sharded driver to re-invoke itself; /proc/self/exe
/// wins when available (argv[0] may be a bare name found via PATH).
std::string g_self_path;  // NOLINT

std::string self_executable() {
  std::error_code ec;
  const auto exe = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) return exe.string();
  return g_self_path;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << text;
  if (!out) throw std::runtime_error("short write to " + path);
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> result;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ','))
    if (!item.empty()) result.push_back(item);
  return result;
}

/// The delivery-layer flag group every subcommand shares: --network=SPEC[,..]
/// plus the fault knobs. Flags may arrive in any order, so the knobs are
/// buffered and applied to the delayed specs in resolve(). consume() and
/// resolve() throw std::runtime_error naming the offending flag on
/// malformed or inconsistent values.
struct NetworkFlags {
  std::vector<std::string> specs;  // raw --network= values, in order
  NetworkOptions knobs;
  bool drop_set = false, dup_set = false, crash_set = false;
  bool late_set = false, max_delay_set = false, late_by_set = false;

  bool consume(const std::string& arg) {
    const auto value = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (arg.rfind("--network=", 0) == 0) {
      for (const std::string& spec : split_csv(value()))
        specs.push_back(spec);
      if (specs.empty())
        throw std::runtime_error(
            "--network: expected sync or delay:<preset>, got ''");
    } else if (arg.rfind("--drop=", 0) == 0) {
      knobs.drop = parse_unit_interval("--drop", value());
      drop_set = true;
    } else if (arg.rfind("--dup=", 0) == 0) {
      knobs.duplicate = parse_unit_interval("--dup", value());
      dup_set = true;
    } else if (arg.rfind("--crash=", 0) == 0) {
      knobs.crash = parse_unit_interval("--crash", value());
      crash_set = true;
    } else if (arg.rfind("--late=", 0) == 0) {
      knobs.late = parse_unit_interval("--late", value());
      late_set = true;
    } else if (arg.rfind("--max-delay=", 0) == 0) {
      knobs.max_delay = parse_positive_ticks("--max-delay", value());
      max_delay_set = true;
    } else if (arg.rfind("--late-by=", 0) == 0) {
      knobs.late_by = parse_positive_ticks("--late-by", value());
      late_by_set = true;
    } else {
      return false;
    }
    return true;
  }

  bool any_knob() const {
    return drop_set || dup_set || crash_set || late_set || max_delay_set ||
           late_by_set;
  }

  /// One NetworkOptions per --network= spec (empty = all-sync default),
  /// fault knobs folded into the delayed entries.
  std::vector<NetworkOptions> resolve() const {
    std::vector<NetworkOptions> result;
    bool any_delayed = false;
    for (const std::string& spec : specs) {
      NetworkOptions network = parse_network_spec(spec);
      if (network.kind == NetworkKind::kDelayed) {
        any_delayed = true;
        if (drop_set) network.drop = knobs.drop;
        if (dup_set) network.duplicate = knobs.duplicate;
        if (crash_set) network.crash = knobs.crash;
        if (late_set) network.late = knobs.late;
        if (max_delay_set) network.max_delay = knobs.max_delay;
        if (late_by_set) network.late_by = knobs.late_by;
        validate_network_options(network);
      }
      result.push_back(network);
    }
    if (any_knob() && !any_delayed)
      throw std::runtime_error(
          "--drop/--dup/--crash/--late/--max-delay/--late-by require "
          "--network=delay:<preset> (the synchronous network has no fault "
          "knobs)");
    return result;
  }

  /// The single-run form: at most one spec.
  NetworkOptions resolve_single() const {
    if (specs.size() > 1)
      throw std::runtime_error(
          "--network: expected one value in single-problem mode, got " +
          std::to_string(specs.size()));
    const std::vector<NetworkOptions> resolved = resolve();
    return resolved.empty() ? NetworkOptions{} : resolved.front();
  }
};

/// The supervision flag group sweep/table1 share (all require --shards=K):
/// retry budget, timeout, checkpoint journal, partial-merge opt-in, and
/// the hidden chaos knobs. consume() throws std::runtime_error naming the
/// offending flag on malformed values.
struct SupervisorFlags {
  int max_attempts = 3;
  double base_timeout_seconds = 300.0;
  bool allow_partial = false;
  bool speculate = true;
  std::string journal_path;
  ChaosOptions chaos;
  bool any_set = false;

  bool consume(const std::string& arg) {
    const auto value = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (arg.rfind("--max-attempts=", 0) == 0) {
      max_attempts = std::stoi(value());
      if (max_attempts < 1)
        throw std::runtime_error("--max-attempts: must be >= 1, got " +
                                 value());
    } else if (arg.rfind("--shard-timeout=", 0) == 0) {
      base_timeout_seconds = std::stod(value());
      if (!(base_timeout_seconds > 0.0))
        throw std::runtime_error("--shard-timeout: must be > 0, got " +
                                 value());
    } else if (arg == "--allow-partial") {
      allow_partial = true;
    } else if (arg == "--no-speculate") {
      speculate = false;
    } else if (arg.rfind("--journal=", 0) == 0) {
      journal_path = value();
    } else if (arg.rfind("--inject=", 0) == 0) {
      const std::uint64_t seed = chaos.seed;  // flags arrive in any order
      chaos = parse_chaos_spec(value());
      chaos.seed = seed;
    } else if (arg.rfind("--inject-seed=", 0) == 0) {
      chaos.seed = std::stoull(value());
    } else {
      return false;
    }
    any_set = true;
    return true;
  }

  void require_shards(int shards) const {
    if (any_set && shards <= 0)
      throw std::runtime_error(
          "--max-attempts/--shard-timeout/--journal/--allow-partial/"
          "--no-speculate/--inject require --shards=K (they configure the "
          "shard supervisor)");
  }
};

/// The observability flag group every subcommand shares
/// (src/runtime/telemetry.h): --trace=FILE writes a Chrome trace-event
/// JSON (Perfetto-loadable), --metrics=FILE a merged metrics snapshot,
/// --trace-rounds=N caps per-round engine events per run (head sampling).
/// None of these touch stdout: canonical output is byte-identical with
/// and without them.
struct TelemetryFlags {
  std::string trace_path;
  std::string metrics_path;
  std::int64_t trace_rounds = telemetry::kDefaultTraceRounds;

  bool consume(const std::string& arg) {
    const auto value = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = value();
      if (trace_path.empty())
        throw std::runtime_error("--trace: expected a file path");
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = value();
      if (metrics_path.empty())
        throw std::runtime_error("--metrics: expected a file path");
    } else if (arg.rfind("--trace-rounds=", 0) == 0) {
      trace_rounds = std::stoll(value());
      if (trace_rounds < 0)
        throw std::runtime_error("--trace-rounds: must be >= 0, got " +
                                 value());
    } else {
      return false;
    }
    return true;
  }
};

/// Owns the recorder/registry the telemetry flags asked for (null when a
/// flag is absent) and writes their files at the end of the run.
/// `want_registry` forces a registry even without --metrics (--stats-json
/// folds a metrics snapshot into its document).
struct TelemetrySinks {
  std::unique_ptr<telemetry::TraceRecorder> recorder;
  std::unique_ptr<telemetry::MetricsRegistry> registry;

  explicit TelemetrySinks(const TelemetryFlags& flags,
                          bool want_registry = false) {
    if (!flags.trace_path.empty())
      recorder = std::make_unique<telemetry::TraceRecorder>();
    if (!flags.metrics_path.empty() || want_registry)
      registry = std::make_unique<telemetry::MetricsRegistry>();
  }

  void write(const TelemetryFlags& flags) const {
    if (recorder != nullptr) recorder->write_file(flags.trace_path);
    if (registry != nullptr && !flags.metrics_path.empty())
      write_text_file(flags.metrics_path, registry->to_json().dump() + "\n");
  }
};

void print_percentiles(const char* what, const CampaignPercentiles& p) {
  std::fprintf(stderr, "  %-16s p50=%.0f p90=%.0f p99=%.0f max=%.0f\n", what,
               p.p50, p.p90, p.p99, p.max);
}

/// Writes the per-cell output, prints the aggregate summary and every
/// non-valid cell, optionally appends to / diffs against the run log.
/// Returns 0 iff every cell ran, solved, and passed its checker.
int report_campaign(const char* what, const CampaignResult& result,
                    bool json, bool canonical, const std::string& log_path) {
  if (json || canonical) {
    CampaignJsonOptions json_options;
    json_options.canonical = canonical;
    write_campaign_json(std::cout, result, json_options);
    std::cout << '\n';
  } else {
    write_campaign_csv(std::cout, result);
  }
  std::fprintf(stderr,
               "%s: cells=%zu workers=%d solved=%d valid=%d failed=%d "
               "elapsed=%.3fs throughput=%.1f cells/s\n",
               what, result.cells.size(), result.workers, result.solved,
               result.valid, result.failed, result.elapsed_seconds,
               result.cells_per_second);
  print_percentiles("rounds", result.rounds);
  print_percentiles("messages", result.messages);
  print_percentiles("steps/sec", result.steps_per_second);
  print_percentiles("peak_live", result.peak_live_nodes);
  print_percentiles("peak_frontier", result.peak_frontier_nodes);
  print_percentiles("dirty_cleared", result.dirty_spans_cleared);
  print_percentiles("kernel_steps", result.kernel_steps);
  print_percentiles("vtable_steps", result.vtable_steps);
  print_percentiles("batched_steps", result.kernel_batched_steps);
  print_percentiles("batch_occupancy", result.kernel_batch_occupancy);
  print_percentiles("msgs_dropped", result.messages_dropped);
  print_percentiles("msgs_duplicated", result.messages_duplicated);
  print_percentiles("delivery_skew", result.max_delivery_skew);
  if (result.supervision.enabled) {
    const SupervisionSummary& sup = result.supervision;
    std::fprintf(stderr,
                 "%s: supervision: shards=%d attempts=%d retries=%d "
                 "requeues=%d stragglers_respawned=%d from_journal=%d "
                 "failed=%d\n",
                 what, sup.shards, sup.attempts, sup.retries, sup.requeues,
                 sup.stragglers_respawned, sup.shards_from_journal,
                 sup.shards_failed);
    std::fprintf(stderr,
                 "  %-16s p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
                 "attempt_secs", sup.attempt_seconds.p50,
                 sup.attempt_seconds.p90, sup.attempt_seconds.p99,
                 sup.attempt_seconds.max);
    // The per-shard table goes to stderr only when something actually
    // happened (a retry, a straggler respawn, a journal skip, a failure)
    // — a clean first-try run stays quiet.
    if (sup.retries > 0 || sup.stragglers_respawned > 0 ||
        sup.shards_from_journal > 0 || sup.shards_failed > 0) {
      std::ostringstream table;
      write_supervision_csv(table, sup);
      std::fprintf(stderr, "%s", table.str().c_str());
    }
  }
  for (const auto& cell : result.cells) {
    if (!cell.error.empty())
      std::fprintf(stderr, "%s: FAILED %s/%s seed=%llu: %s\n", what,
                   cell.cell.scenario.c_str(), cell.cell.algorithm.c_str(),
                   static_cast<unsigned long long>(cell.cell.seed),
                   cell.error.c_str());
    else if (!cell.valid)
      std::fprintf(stderr, "%s: %s %s/%s seed=%llu\n", what,
                   cell.solved ? "INVALID" : "UNSOLVED",
                   cell.cell.scenario.c_str(), cell.cell.algorithm.c_str(),
                   static_cast<unsigned long long>(cell.cell.seed));
  }
  if (!log_path.empty()) {
    const RunLogComparison comparison = compare_run_log(log_path, result);
    if (comparison.found) {
      std::fprintf(stderr,
                   "%s: vs %s (same grid): rounds.p50 x%.2f "
                   "messages.p50 x%.2f cells/s x%.2f elapsed x%.2f\n",
                   what, comparison.baseline.date.c_str(),
                   comparison.rounds_p50_ratio,
                   comparison.messages_p50_ratio,
                   comparison.cells_per_second_ratio,
                   comparison.elapsed_ratio);
    } else {
      std::fprintf(stderr, "%s: no recorded sweep of this grid in %s\n",
                   what, log_path.c_str());
    }
    append_run_log(log_path, result);
  }
  // Success means every cell ran, solved, and passed its checker.
  const bool all_good =
      result.failed == 0 &&
      result.valid == static_cast<int>(result.cells.size());
  return all_good ? 0 : 1;
}

// --- sharded execution -------------------------------------------------------

/// Deletes the shard scratch directory on EVERY exit path — success,
/// merge failure, supervision failure. Diagnostics survive deletion
/// because the failure messages fold in the worker stderr tails before
/// this runs; the checkpoint journal lives at the user-given --journal
/// path, outside scratch, so resume still works.
struct ScratchDir {
  std::filesystem::path dir;
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
};

/// The local multi-process driver behind `sweep --shards=K` / `table1
/// --shards=K`: plans the grid and hands it to supervise_shards
/// (src/runtime/supervisor.h), which re-invokes this binary as
/// concurrently supervised `shard run` worker processes — per-attempt
/// timeouts, bounded retries with deterministic backoff, straggler
/// speculation, fingerprint-validated acceptance, and (with --journal)
/// checkpoint/resume. The merged campaign is bit-identical to the
/// single-process run whenever every shard is eventually accepted;
/// --allow-partial degrades exhausted shards to an explicit report.
int run_sharded(const char* what, const std::vector<CampaignCell>& cells,
                int shards, ShardPolicy policy, int workers_per_shard,
                KernelMode kernel_mode, bool json_output, bool canonical,
                const std::string& log_path,
                const SupervisorFlags& supervisor_flags,
                const TelemetryFlags& telemetry_flags) {
  namespace fs = std::filesystem;
  const ShardPlan plan = plan_shards(cells, shards, policy);

  std::string dir_template =
      (fs::temp_directory_path() / "unilocal-shards-XXXXXX").string();
  std::vector<char> dir_buffer(dir_template.begin(), dir_template.end());
  dir_buffer.push_back('\0');
  if (mkdtemp(dir_buffer.data()) == nullptr)
    throw std::runtime_error("cannot create shard scratch directory");
  const ScratchDir scratch{dir_buffer.data()};

  // Sharded telemetry: the supervisor records its own spans on pid 1;
  // workers write per-attempt trace files into scratch, and the accepted
  // attempt of each shard is stitched under pid shard+2 before scratch is
  // deleted. --metrics here snapshots the supervisor process only (the
  // cells ran in the workers).
  const TelemetrySinks sinks(telemetry_flags);
  const telemetry::ScopedMetrics scoped_metrics(sinks.registry.get());
  if (sinks.recorder != nullptr)
    sinks.recorder->set_process_name(1, "supervisor");
  const auto worker_trace_path = [&scratch](int shard, int attempt) {
    return (scratch.dir /
            ("trace-" + std::to_string(shard) + "-attempt-" +
             std::to_string(attempt) + ".json"))
        .string();
  };

  SupervisorOptions options;
  options.max_attempts = supervisor_flags.max_attempts;
  options.base_timeout_seconds = supervisor_flags.base_timeout_seconds;
  options.speculate = supervisor_flags.speculate;
  options.scratch_dir = scratch.dir.string();
  options.journal_path = supervisor_flags.journal_path;
  options.trace = sinks.recorder.get();

  const std::string exe = self_executable();
  const std::string inject_spec = chaos_spec_name(supervisor_flags.chaos);
  const std::uint64_t inject_seed = supervisor_flags.chaos.seed;
  const bool tracing = sinks.recorder != nullptr;
  const std::int64_t trace_rounds = telemetry_flags.trace_rounds;
  const WorkerCommand command =
      [&exe, workers_per_shard, kernel_mode, &inject_spec, inject_seed,
       tracing, trace_rounds,
       &worker_trace_path](const ShardAttemptContext& context) {
        std::vector<std::string> argv = {
            exe,
            "shard",
            "run",
            context.manifest_path,
            "--out=" + context.result_path,
            "--workers=" + std::to_string(workers_per_shard),
            "--kernel=" + std::string(kernel_mode_name(kernel_mode))};
        if (tracing) {
          argv.push_back("--trace=" + worker_trace_path(context.shard_index,
                                                        context.attempt));
          argv.push_back("--trace-rounds=" + std::to_string(trace_rounds));
        }
        if (!inject_spec.empty()) {
          // The worker draws its own fault from (spec, seed, shard,
          // attempt) — the supervisor only forwards the attempt number.
          argv.push_back("--inject=" + inject_spec);
          argv.push_back("--inject-seed=" + std::to_string(inject_seed));
          argv.push_back("--attempt=" + std::to_string(context.attempt));
        }
        return argv;
      };

  const SupervisorReport report = supervise_shards(plan, options, command);

  // Stitch the accepted attempt of every completed shard into the merged
  // trace while scratch still exists. A worker that died before writing
  // its trace (or a journal-resumed shard, which launched no process)
  // simply contributes no lane.
  if (sinks.recorder != nullptr) {
    for (const ShardSupervision& sup : report.shards) {
      if (!sup.completed || sup.from_journal) continue;
      for (const ShardAttemptRecord& record : sup.log) {
        if (record.outcome != "accepted") continue;
        const std::string path =
            worker_trace_path(sup.shard_index, record.attempt);
        try {
          sinks.recorder->merge_process(
              json::Value::parse(read_text_file(path)), sup.shard_index + 2,
              "shard " + std::to_string(sup.shard_index));
        } catch (const std::exception& e) {
          std::fprintf(stderr, "%s: trace stitch: skipping %s: %s\n", what,
                       path.c_str(), e.what());
        }
        break;
      }
    }
  }
  if (sinks.registry != nullptr) {
    // Sharded --metrics snapshots the supervisor process: the supervision
    // counters (cell-level metrics live in the workers).
    sinks.registry->add("supervisor.attempts", report.attempts);
    sinks.registry->add("supervisor.retries", report.retries);
    sinks.registry->add("supervisor.requeues", report.requeues);
    sinks.registry->add("supervisor.stragglers_respawned",
                        report.stragglers_respawned);
    sinks.registry->add("supervisor.shards_from_journal",
                        report.shards_from_journal);
    sinks.registry->add("supervisor.shards_failed",
                        static_cast<std::int64_t>(report.failed_shards.size()));
  }
  sinks.write(telemetry_flags);
  std::fprintf(stderr,
               "%s: supervised %zu shards (%s policy, %d workers each): "
               "%d attempts, %d retries, %d stragglers respawned, "
               "%d from journal, %.3fs\n",
               what, plan.shards.size(), shard_policy_name(policy),
               workers_per_shard, report.attempts, report.retries,
               report.stragglers_respawned, report.shards_from_journal,
               report.elapsed_seconds);

  if (!report.all_completed() && !supervisor_flags.allow_partial) {
    // failure_summary reads the worker stderr captures NOW, while scratch
    // still exists; the ScratchDir guard then deletes them.
    throw std::runtime_error(std::string(what) + ": " +
                             report.failure_summary() +
                             " (rerun with --allow-partial to merge the "
                             "completed shards anyway)");
  }
  CampaignResult merged;
  if (report.all_completed()) {
    merged = merge_shard_results(plan, report.results);
  } else {
    PartialMergeReport partial;
    merged = merge_shard_results_partial(plan, report.results, partial);
    std::fprintf(stderr, "%s: %s\n", what, report.failure_summary().c_str());
    std::fprintf(stderr, "%s: %s\n", what, partial.describe().c_str());
  }

  merged.supervision.enabled = true;
  merged.supervision.shards = static_cast<int>(plan.shards.size());
  merged.supervision.attempts = report.attempts;
  merged.supervision.retries = report.retries;
  merged.supervision.requeues = report.requeues;
  merged.supervision.stragglers_respawned = report.stragglers_respawned;
  merged.supervision.shards_from_journal = report.shards_from_journal;
  merged.supervision.shards_failed =
      static_cast<int>(report.failed_shards.size());
  std::vector<double> attempt_seconds;
  for (const ShardSupervision& sup : report.shards) {
    ShardSupervisionRow row;
    row.shard_index = sup.shard_index;
    row.completed = sup.completed;
    row.from_journal = sup.from_journal;
    row.attempts = sup.attempts;
    row.retries = sup.retries;
    row.stragglers_respawned = sup.stragglers_respawned;
    row.total_attempt_seconds = sup.total_attempt_seconds;
    for (const ShardAttemptRecord& record : sup.log) {
      ShardAttemptTiming timing;
      timing.attempt = record.attempt;
      timing.speculative = record.speculative;
      timing.start_seconds = record.start_seconds;
      timing.end_seconds = record.end_seconds;
      timing.killed = record.killed;
      timing.outcome = record.outcome;
      if (record.killed) ++merged.supervision.attempts_killed;
      row.attempt_log.push_back(std::move(timing));
    }
    merged.supervision.rows.push_back(row);
    if (!sup.from_journal)
      attempt_seconds.push_back(sup.total_attempt_seconds);
  }
  merged.supervision.attempt_seconds =
      campaign_percentiles(std::move(attempt_seconds));
  return report_campaign(what, merged, json_output, canonical, log_path);
}

int run_shard_plan(int argc, char** argv) {
  std::string dir;
  int shards = 0;
  ShardPolicy policy = ShardPolicy::kCostBalanced;
  bool table1 = false;
  bool smoke = false;
  bool n_given = false;
  bool seeds_given = false;
  std::vector<std::string> scenarios;
  std::vector<std::string> algorithm_patterns;
  NetworkFlags network_flags;
  ScenarioParams params;
  params.n = 256;
  int seeds = 2;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (network_flags.consume(arg)) {
    } else if (arg == "--table1") {
      table1 = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--dir=", 0) == 0) {
      dir = value();
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = std::stoi(value());
    } else if (arg.rfind("--policy=", 0) == 0) {
      policy = parse_shard_policy(value());
    } else if (arg.rfind("--scenarios=", 0) == 0) {
      scenarios = split_csv(value());
    } else if (arg.rfind("--algorithms=", 0) == 0 ||
               arg.rfind("--algos=", 0) == 0) {
      algorithm_patterns = split_csv(value());
    } else if (arg.rfind("--n=", 0) == 0) {
      params.n = static_cast<NodeId>(std::stol(value()));
      n_given = true;
    } else if (arg.rfind("--a=", 0) == 0) {
      params.a = std::stod(value());
    } else if (arg.rfind("--b=", 0) == 0) {
      params.b = std::stod(value());
    } else if (arg.rfind("--seeds=", 0) == 0) {
      seeds = std::stoi(value());
      seeds_given = true;
    } else {
      return usage();
    }
  }
  if (dir.empty() || shards < 1) return usage();
  if (!table1 && (scenarios.empty() || algorithm_patterns.empty()))
    return usage();
  if (smoke) {
    if (!n_given) params.n = 64;
    if (!seeds_given) seeds = 1;
  }
  GridOptions grid_options;
  grid_options.networks = network_flags.resolve();
  std::vector<CampaignCell> cells;
  if (table1) {
    cells = make_table1_grid(params, seeds, grid_options);
  } else {
    const auto algorithms =
        default_algorithm_registry().resolve(algorithm_patterns);
    cells = make_grid(scenarios, params, algorithms, seeds, grid_options);
  }
  if (cells.empty()) {
    std::fprintf(stderr, "shard plan: empty grid\n");
    return 1;
  }
  const ShardPlan plan = plan_shards(cells, shards, policy);

  namespace fs = std::filesystem;
  fs::create_directories(dir);
  write_text_file((fs::path(dir) / "plan.json").string(),
                  plan.to_json().dump() + "\n");
  const ShardCostModel& model = default_shard_cost_model();
  for (const ShardManifest& manifest : plan.shards) {
    const std::string path =
        (fs::path(dir) / ("shard-" + std::to_string(manifest.shard_index) +
                          ".json"))
            .string();
    write_text_file(path, manifest.to_json().dump() + "\n");
    double cost = 0.0;
    for (const CampaignCell& cell : manifest.cells)
      cost += model.cell_cost(cell);
    std::fprintf(stderr, "shard plan: %s — %zu cells, est. cost %.0f\n",
                 path.c_str(), manifest.cells.size(), cost);
  }
  std::fprintf(stderr,
               "shard plan: %zu cells into %d shards (%s), grid hash %llu, "
               "plan at %s/plan.json\n",
               cells.size(), shards, shard_policy_name(policy),
               static_cast<unsigned long long>(plan.grid_hash), dir.c_str());
  return 0;
}

int run_shard_run(int argc, char** argv) {
  std::string manifest_path;
  std::string out_path;
  unsigned workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  KernelMode kernel_mode = KernelMode::kAuto;
  ChaosOptions chaos;
  TelemetryFlags telemetry_flags;
  int attempt = 1;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (telemetry_flags.consume(arg)) {
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = value();
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = static_cast<unsigned>(std::stoi(value()));
    } else if (arg.rfind("--kernel=", 0) == 0) {
      kernel_mode = parse_kernel_mode(value());
    } else if (arg.rfind("--inject=", 0) == 0) {
      const std::uint64_t seed = chaos.seed;
      chaos = parse_chaos_spec(value());
      chaos.seed = seed;
    } else if (arg.rfind("--inject-seed=", 0) == 0) {
      chaos.seed = std::stoull(value());
    } else if (arg.rfind("--attempt=", 0) == 0) {
      attempt = std::stoi(value());
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else if (manifest_path.empty()) {
      manifest_path = arg;
    } else {
      return usage();
    }
  }
  if (manifest_path.empty()) return usage();
  const ShardManifest manifest =
      ShardManifest::from_json(json::Value::parse(read_text_file(manifest_path)));

  // Chaos harness (the supervisor's --inject, forwarded here with the
  // attempt number): the fault is a pure function of (spec, seed, shard,
  // attempt), so a rerun replays the same schedule.
  const ChaosFault fault =
      draw_chaos_fault(chaos, manifest.shard_index, attempt);
  if (fault != ChaosFault::kNone)
    std::fprintf(stderr, "shard run: chaos: injecting %s (shard %d attempt %d)\n",
                 chaos_fault_name(fault), manifest.shard_index, attempt);
  if (fault == ChaosFault::kCrash) std::abort();  // mid-run, no output
  if (fault == ChaosFault::kHang) {
    ::sleep(3600);  // the supervisor's deadline kills us long before this
    return 1;
  }

  // Worker-side telemetry: the shard's cells trace on local pid 1; the
  // supervisor remaps the whole file onto its own pid lane when stitching.
  const TelemetrySinks sinks(telemetry_flags);
  const telemetry::ScopedMetrics scoped_metrics(sinks.registry.get());
  if (sinks.recorder != nullptr)
    sinks.recorder->set_process_name(
        1, "shard " + std::to_string(manifest.shard_index));
  CampaignOptions options;
  options.workers = static_cast<int>(workers);
  options.kernel_mode = kernel_mode;
  options.trace = sinks.recorder.get();
  options.trace_rounds = telemetry_flags.trace_rounds;
  const ShardResult result = run_shard(manifest, options);
  sinks.write(telemetry_flags);
  std::string text = result.to_json().dump() + "\n";
  if (fault == ChaosFault::kCorrupt) {
    // A torn write: the file exists but holds only half the document. The
    // supervisor must reject it on parse/fingerprint and retry.
    text = text.substr(0, text.size() / 2);
  }
  if (out_path.empty())
    std::cout << text;
  else
    write_text_file(out_path, text);
  if (fault == ChaosFault::kFlakyExit) return 43;  // valid output, bad exit

  int valid = 0;
  int failed = 0;
  for (const CellResult& cell : result.cells) {
    if (!cell.error.empty())
      ++failed;
    else if (cell.valid)
      ++valid;
  }
  std::fprintf(stderr,
               "shard run: shard %d/%d — %zu cells, valid=%d failed=%d, "
               "%.3fs on %d workers\n",
               result.shard_index, result.num_shards, result.cells.size(),
               valid, failed, result.elapsed_seconds, result.workers);
  const bool all_good =
      failed == 0 && valid == static_cast<int>(result.cells.size());
  return all_good ? 0 : 1;
}

int run_shard_merge(int argc, char** argv) {
  std::string plan_path;
  std::vector<std::string> result_paths;
  bool json_output = false;
  bool canonical = false;
  std::string log_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (arg == "--canonical") {
      canonical = true;
      json_output = true;
    } else if (arg.rfind("--format=", 0) == 0) {
      const std::string format = value();
      if (format != "csv" && format != "json") return usage();
      json_output = format == "json";
    } else if (arg.rfind("--log=", 0) == 0) {
      log_path = value();
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else if (plan_path.empty()) {
      plan_path = arg;
    } else {
      result_paths.push_back(arg);
    }
  }
  if (plan_path.empty() || result_paths.empty()) return usage();
  const ShardPlan plan =
      ShardPlan::from_json(json::Value::parse(read_text_file(plan_path)));
  std::vector<ShardResult> results;
  results.reserve(result_paths.size());
  for (const std::string& path : result_paths)
    results.push_back(
        ShardResult::from_json(json::Value::parse(read_text_file(path))));
  const CampaignResult merged = merge_shard_results(plan, results);
  return report_campaign("shard merge", merged, json_output, canonical,
                         log_path);
}

int run_shard_command(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string verb = argv[2];
  if (verb == "plan") return run_shard_plan(argc, argv);
  if (verb == "run") return run_shard_run(argc, argv);
  if (verb == "merge") return run_shard_merge(argc, argv);
  return usage();
}

int run_sweep(int argc, char** argv) {
  std::vector<std::string> scenarios = {"gnp", "power-law", "geometric",
                                        "layered-forest", "caterpillar"};
  std::vector<std::string> algorithm_patterns = {"mis-uniform",
                                                 "mis-fastest"};
  ScenarioParams params;
  params.n = 200;
  int seeds = 2;
  unsigned workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  bool workers_given = false;
  int shards = 0;
  ShardPolicy policy = ShardPolicy::kCostBalanced;
  KernelMode kernel_mode = KernelMode::kAuto;
  NetworkFlags network_flags;
  SupervisorFlags supervisor_flags;
  TelemetryFlags telemetry_flags;
  bool json_output = false;
  bool canonical = false;
  std::string log_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (network_flags.consume(arg) || supervisor_flags.consume(arg) ||
        telemetry_flags.consume(arg)) {
    } else if (arg == "--list") {
      const auto& registry = default_algorithm_registry();
      std::printf("scenario families:\n");
      for (const auto& name : default_scenarios().names())
        std::printf("  %-16s %s\n", name.c_str(),
                    default_scenarios().describe(name).c_str());
      std::printf("algorithms (selection accepts globs and 'all'):\n");
      for (const auto& name : registry.names()) {
        const AlgorithmSpec& spec = registry.spec(name);
        std::string knobs;
        for (const auto& [knob, knob_value] : spec.knobs) {
          char buffer[48];
          std::snprintf(buffer, sizeof(buffer), "%s%s=%g",
                        knobs.empty() ? "" : " ", knob.c_str(), knob_value);
          knobs += buffer;
        }
        std::printf("  %-26s problem=%-14s %s%s%s\n      %s\n", name.c_str(),
                    spec.problem.c_str(), knobs.empty() ? "" : "knobs:",
                    knobs.c_str(), knobs.empty() ? "" : ";",
                    spec.describe.c_str());
      }
      return 0;
    } else if (arg.rfind("--scenarios=", 0) == 0) {
      scenarios = split_csv(value());
    } else if (arg.rfind("--algorithms=", 0) == 0 ||
               arg.rfind("--algos=", 0) == 0) {
      algorithm_patterns = split_csv(value());
    } else if (arg.rfind("--n=", 0) == 0) {
      params.n = static_cast<NodeId>(std::stol(value()));
    } else if (arg.rfind("--a=", 0) == 0) {
      params.a = std::stod(value());
    } else if (arg.rfind("--b=", 0) == 0) {
      params.b = std::stod(value());
    } else if (arg.rfind("--seeds=", 0) == 0) {
      seeds = std::stoi(value());
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = static_cast<unsigned>(std::stoi(value()));
      workers_given = true;
    } else if (arg.rfind("--kernel=", 0) == 0) {
      kernel_mode = parse_kernel_mode(value());
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = std::stoi(value());
    } else if (arg.rfind("--policy=", 0) == 0) {
      policy = parse_shard_policy(value());
    } else if (arg == "--canonical") {
      canonical = true;
      json_output = true;
    } else if (arg.rfind("--log=", 0) == 0) {
      log_path = value();
    } else if (arg.rfind("--format=", 0) == 0) {
      const std::string format = value();
      if (format != "csv" && format != "json") return usage();
      json_output = format == "json";
    } else {
      return usage();
    }
  }
  // Globs and 'all' expand against the registry; make_grid then validates
  // every key up front (one error listing all unknown keys).
  const auto algorithms =
      default_algorithm_registry().resolve(algorithm_patterns);
  GridOptions grid_options;
  grid_options.networks = network_flags.resolve();
  const auto cells =
      make_grid(scenarios, params, algorithms, seeds, grid_options);
  if (cells.empty()) {
    std::fprintf(stderr, "sweep: empty grid\n");
    return 1;
  }
  supervisor_flags.require_shards(shards);
  if (shards > 0) {
    // --workers now means workers per shard process; default to an even
    // split of the machine instead of oversubscribing it K times.
    const int per_shard = workers_given
                              ? static_cast<int>(workers)
                              : std::max(1, static_cast<int>(workers) / shards);
    return run_sharded("sweep", cells, shards, policy, per_shard, kernel_mode,
                       json_output, canonical, log_path, supervisor_flags,
                       telemetry_flags);
  }
  const TelemetrySinks sinks(telemetry_flags);
  const telemetry::ScopedMetrics scoped_metrics(sinks.registry.get());
  if (sinks.recorder != nullptr)
    sinks.recorder->set_process_name(1, "campaign");
  CampaignOptions options;
  options.workers = static_cast<int>(workers);
  options.kernel_mode = kernel_mode;
  options.trace = sinks.recorder.get();
  options.trace_rounds = telemetry_flags.trace_rounds;
  const CampaignResult result = run_campaign(cells, options);
  sinks.write(telemetry_flags);
  return report_campaign("sweep", result, json_output, canonical, log_path);
}

int run_table1(int argc, char** argv) {
  ScenarioParams params;
  params.n = 256;
  int seeds = 2;
  unsigned workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  bool workers_given = false;
  int shards = 0;
  ShardPolicy policy = ShardPolicy::kCostBalanced;
  KernelMode kernel_mode = KernelMode::kAuto;
  NetworkFlags network_flags;
  SupervisorFlags supervisor_flags;
  TelemetryFlags telemetry_flags;
  bool json_output = false;
  bool canonical = false;
  bool smoke = false;
  bool n_given = false;
  bool seeds_given = false;
  std::string log_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (network_flags.consume(arg) || supervisor_flags.consume(arg) ||
        telemetry_flags.consume(arg)) {
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--n=", 0) == 0) {
      params.n = static_cast<NodeId>(std::stol(value()));
      n_given = true;
    } else if (arg.rfind("--seeds=", 0) == 0) {
      seeds = std::stoi(value());
      seeds_given = true;
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = static_cast<unsigned>(std::stoi(value()));
      workers_given = true;
    } else if (arg.rfind("--kernel=", 0) == 0) {
      kernel_mode = parse_kernel_mode(value());
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = std::stoi(value());
    } else if (arg.rfind("--policy=", 0) == 0) {
      policy = parse_shard_policy(value());
    } else if (arg == "--canonical") {
      canonical = true;
      json_output = true;
    } else if (arg.rfind("--log=", 0) == 0) {
      log_path = value();
    } else if (arg.rfind("--format=", 0) == 0) {
      const std::string format = value();
      if (format != "csv" && format != "json") return usage();
      json_output = format == "json";
    } else {
      return usage();
    }
  }
  // --smoke shrinks only the knobs the user did not set explicitly, so
  // flag order never changes the grid (and hence the --log grid hash).
  if (smoke) {
    if (!n_given) params.n = 64;
    if (!seeds_given) seeds = 1;
  }
  GridOptions grid_options;
  grid_options.networks = network_flags.resolve();
  const auto cells = make_table1_grid(params, seeds, grid_options);
  std::fprintf(stderr,
               "table1: %zu cells (%zu algorithms x their Table 1 "
               "families x %d seed%s, n=%d)\n",
               cells.size(), default_algorithm_registry().names().size(),
               seeds, seeds == 1 ? "" : "s", params.n);
  supervisor_flags.require_shards(shards);
  if (shards > 0) {
    const int per_shard = workers_given
                              ? static_cast<int>(workers)
                              : std::max(1, static_cast<int>(workers) / shards);
    return run_sharded("table1", cells, shards, policy, per_shard,
                       kernel_mode, json_output, canonical, log_path,
                       supervisor_flags, telemetry_flags);
  }
  const TelemetrySinks sinks(telemetry_flags);
  const telemetry::ScopedMetrics scoped_metrics(sinks.registry.get());
  if (sinks.recorder != nullptr)
    sinks.recorder->set_process_name(1, "campaign");
  CampaignOptions options;
  options.workers = static_cast<int>(workers);
  options.kernel_mode = kernel_mode;
  options.trace = sinks.recorder.get();
  options.trace_rounds = telemetry_flags.trace_rounds;
  const CampaignResult result = run_campaign(cells, options);
  sinks.write(telemetry_flags);
  return report_campaign("table1", result, json_output, canonical, log_path);
}

void emit_stats(const EngineStats& stats, const char* what) {
  std::fprintf(stderr,
               "%s engine: arena_bytes=%lld peak_messages_per_round=%lld "
               "steps=%lld steps_per_sec=%.0f threads=%d\n",
               what, static_cast<long long>(stats.arena_bytes),
               static_cast<long long>(stats.peak_round_messages),
               static_cast<long long>(stats.total_steps),
               stats.steps_per_second, stats.threads);
  std::fprintf(stderr,
               "%s frontier: peak_live=%lld final_live=%lld "
               "peak_frontier=%lld dirty_spans_cleared=%lld\n",
               what, static_cast<long long>(stats.peak_live_nodes),
               static_cast<long long>(stats.final_live_nodes),
               static_cast<long long>(stats.peak_frontier_nodes),
               static_cast<long long>(stats.dirty_spans_cleared));
  std::fprintf(stderr,
               "%s path: kernel_steps=%lld vtable_steps=%lld "
               "batched_steps=%lld batch_occupancy=%.1f\n",
               what, static_cast<long long>(stats.kernel_steps),
               static_cast<long long>(stats.vtable_steps),
               static_cast<long long>(stats.kernel_batched_steps),
               stats.kernel_batch_calls > 0
                   ? static_cast<double>(stats.kernel_batched_steps) /
                         static_cast<double>(stats.kernel_batch_calls)
                   : 0.0);
  std::fprintf(stderr,
               "%s delivery: messages_dropped=%lld messages_duplicated=%lld "
               "max_delivery_skew=%lld\n",
               what, static_cast<long long>(stats.messages_dropped),
               static_cast<long long>(stats.messages_duplicated),
               static_cast<long long>(stats.max_delivery_skew));
}

void emit(const Instance& instance, const std::vector<std::int64_t>& outputs,
          std::int64_t rounds, bool valid, const char* what) {
  for (NodeId v = 0; v < instance.num_nodes(); ++v) {
    std::printf("%lld %lld\n",
                static_cast<long long>(
                    instance.identities[static_cast<std::size_t>(v)]),
                static_cast<long long>(outputs[static_cast<std::size_t>(v)]));
  }
  std::fprintf(stderr, "%s: n=%d rounds=%lld valid=%s\n", what,
               instance.num_nodes(), static_cast<long long>(rounds),
               valid ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 1 && argv[0] != nullptr) g_self_path = argv[0];
  if (argc >= 2 && std::strcmp(argv[1], "shard") == 0) {
    try {
      return run_shard_command(argc, argv);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "shard: %s\n", e.what());
      return 1;
    }
  }
  if (argc >= 2 && std::strcmp(argv[1], "sweep") == 0) {
    try {
      return run_sweep(argc, argv);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sweep: %s\n", e.what());
      return 1;
    }
  }
  if (argc >= 2 && std::strcmp(argv[1], "table1") == 0) {
    try {
      return run_table1(argc, argv);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "table1: %s\n", e.what());
      return 1;
    }
  }
  bool want_stats = false;
  UniformRunOptions run_options;
  NetworkFlags network_flags;
  TelemetryFlags telemetry_flags;
  std::string stats_json_path;
  const char* file = nullptr;
  const char* problem_arg = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool consumed = false;
    try {
      // Malformed --network=/--drop=/... values are rejected here with an
      // error naming the flag, exactly like --kernel= below.
      consumed = network_flags.consume(arg) || telemetry_flags.consume(arg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return usage();
    }
    if (consumed) {
    } else if (arg.rfind("--stats-json=", 0) == 0) {
      stats_json_path = arg.substr(arg.find('=') + 1);
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg.rfind("--kernel=", 0) == 0) {
      try {
        run_options.kernel_mode = parse_kernel_mode(argv[i] + 9);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return usage();
      }
    } else if (problem_arg == nullptr) {
      problem_arg = argv[i];
    } else if (file == nullptr) {
      file = argv[i];
    } else {
      return usage();
    }
  }
  if (problem_arg == nullptr) return usage();
  try {
    // Unknown presets ("--network=delay:pareto") and knobs without a
    // delayed network surface here, before any graph is read.
    run_options.network = network_flags.resolve_single();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return usage();
  }
  Graph g;
  try {
    if (file != nullptr) {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", file);
        return 1;
      }
      g = read_edge_list(in);
    } else {
      g = read_edge_list(std::cin);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }
  Instance instance = make_instance(std::move(g),
                                    IdentityScheme::kRandomPermuted, 1);

  const std::string problem = problem_arg;
  // --stats-json folds a metrics snapshot into its document, so it wants a
  // registry even without --metrics.
  const TelemetrySinks sinks(telemetry_flags, !stats_json_path.empty());
  const telemetry::ScopedMetrics scoped_metrics(sinks.registry.get());
  std::unique_ptr<telemetry::ScopedTraceBinding> trace_scope;
  if (sinks.recorder != nullptr) {
    sinks.recorder->set_process_name(1, problem);
    telemetry::TraceBinding binding;
    binding.recorder = sinks.recorder.get();
    binding.trace_rounds = telemetry_flags.trace_rounds;
    trace_scope = std::make_unique<telemetry::ScopedTraceBinding>(binding);
  }
  EngineStats engine_stats;
  std::int64_t total_rounds = 0;
  try {
  if (problem == "mis") {
    const auto algorithm = make_coloring_mis();
    const RulingSetPruning pruning(1);
    const auto result =
        run_uniform_transformer(instance, *algorithm, pruning, run_options);
    emit(instance, result.outputs, result.total_rounds,
         result.solved &&
             is_maximal_independent_set(instance.graph, result.outputs),
         "mis");
    if (want_stats) emit_stats(result.engine_stats, "mis");
    engine_stats = result.engine_stats;
    total_rounds = result.total_rounds;
  } else if (problem == "matching") {
    const auto algorithm = make_colored_matching();
    const MatchingPruning pruning;
    const auto result =
        run_uniform_transformer(instance, *algorithm, pruning, run_options);
    emit(instance, result.outputs, result.total_rounds,
         result.solved && is_maximal_matching(instance.graph, result.outputs),
         "matching");
    if (want_stats) emit_stats(result.engine_stats, "matching");
    engine_stats = result.engine_stats;
    total_rounds = result.total_rounds;
  } else if (problem == "coloring") {
    const auto algorithm = make_lambda_gdelta_coloring(1);
    const auto result =
        run_uniform_coloring_transform(instance, *algorithm, run_options);
    emit(instance, result.colors, result.total_rounds,
         result.solved && is_proper_coloring(instance.graph, result.colors),
         "coloring");
    if (want_stats) emit_stats(result.engine_stats, "coloring");
    engine_stats = result.engine_stats;
    total_rounds = result.total_rounds;
  } else if (problem == "rulingset2") {
    const auto algorithm = make_mc_ruling_set(2);
    const RulingSetPruning pruning(2);
    const auto result =
        run_las_vegas_transformer(instance, *algorithm, pruning, run_options);
    emit(instance, result.outputs, result.total_rounds,
         result.solved &&
             is_two_beta_ruling_set(instance.graph, result.outputs, 2),
         "rulingset2");
    if (want_stats) emit_stats(result.engine_stats, "rulingset2");
    engine_stats = result.engine_stats;
    total_rounds = result.total_rounds;
  } else {
    return usage();
  }
  } catch (const std::exception& e) {
    // e.g. --kernel=on on a pipeline with unlowered stages.
    std::fprintf(stderr, "%s: %s\n", problem.c_str(), e.what());
    return 1;
  }
  try {
    sinks.write(telemetry_flags);
    if (!stats_json_path.empty()) {
      // One document: the run's EngineStats merged with the metrics
      // snapshot (the same registry the engine reported into).
      json::Value engine = json::Value::object();
      engine.set("arena_bytes", json::Value::number(engine_stats.arena_bytes));
      engine.set("peak_round_messages",
                 json::Value::number(engine_stats.peak_round_messages));
      engine.set("total_messages",
                 json::Value::number(engine_stats.total_messages));
      engine.set("total_steps", json::Value::number(engine_stats.total_steps));
      engine.set("kernel_steps",
                 json::Value::number(engine_stats.kernel_steps));
      engine.set("vtable_steps",
                 json::Value::number(engine_stats.vtable_steps));
      engine.set("kernel_batched_steps",
                 json::Value::number(engine_stats.kernel_batched_steps));
      engine.set("kernel_batch_calls",
                 json::Value::number(engine_stats.kernel_batch_calls));
      engine.set("peak_live_nodes",
                 json::Value::number(engine_stats.peak_live_nodes));
      engine.set("final_live_nodes",
                 json::Value::number(engine_stats.final_live_nodes));
      engine.set("peak_frontier_nodes",
                 json::Value::number(engine_stats.peak_frontier_nodes));
      engine.set("dirty_spans_cleared",
                 json::Value::number(engine_stats.dirty_spans_cleared));
      engine.set("messages_dropped",
                 json::Value::number(engine_stats.messages_dropped));
      engine.set("messages_duplicated",
                 json::Value::number(engine_stats.messages_duplicated));
      engine.set("max_delivery_skew",
                 json::Value::number(engine_stats.max_delivery_skew));
      engine.set("elapsed_seconds",
                 json::Value::number(engine_stats.elapsed_seconds));
      engine.set("steps_per_second",
                 json::Value::number(engine_stats.steps_per_second));
      engine.set("threads", json::Value::number(
                                static_cast<std::int64_t>(engine_stats.threads)));
      json::Value doc = json::Value::object();
      doc.set("problem", json::Value::string(problem));
      doc.set("rounds", json::Value::number(total_rounds));
      doc.set("engine", std::move(engine));
      const json::Value metrics_doc = sinks.registry->to_json();
      doc.set("metrics", *metrics_doc.find("metrics"));
      write_text_file(stats_json_path, doc.dump() + "\n");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "telemetry: %s\n", e.what());
    return 1;
  }
  return 0;
}
