// unilocal_cli — run a uniform LOCAL algorithm on your own graph, or sweep
// a campaign grid over the scenario registry.
//
//   unilocal_cli <problem> [file] [--stats]
//
//   <problem>: mis | matching | coloring | rulingset2
//   [file]:    edge list ("n m" header then "u v" per line);
//              reads stdin when omitted.
//   --stats:   also print per-run engine statistics (arena bytes, peak
//              messages/round, steps/sec, peak/final live nodes, frontier
//              width, lazily cleared dirty spans) on stderr.
//
//   unilocal_cli sweep [--scenarios=a,b,..] [--algorithms=x,y,..] [--n=N]
//                      [--a=V] [--b=V] [--seeds=K] [--workers=W]
//                      [--format=csv|json] [--log=FILE] [--list]
//
//   Runs the (scenario x algorithm x seed) grid concurrently on W workers
//   (campaign layer, src/runtime/campaign.h), prints one CSV row (or JSON
//   record) per cell on stdout and the aggregate summary on stderr.
//   --algorithms (alias --algos) accepts registry keys, '*'/'?' globs
//   (e.g. 'mis-*'), and the word 'all'. --list shows the registered
//   scenario families and algorithms. --log appends one JSON line to the
//   append-only run log and diffs against the last recorded sweep of the
//   same grid.
//
//   unilocal_cli table1 [--n=N] [--seeds=K] [--workers=W]
//                       [--format=csv|json] [--log=FILE] [--smoke]
//
//   Regenerates the paper's Table 1 grid as ONE campaign: every registry
//   entry crossed with the scenario families its row is stated over.
//   --smoke shrinks the grid (n=64, 1 seed) for CI. Exit status 0 iff
//   every cell ran, solved, and passed its centralized checker.
//
// Prints one line per node: "<identity> <output>" (plus a summary on
// stderr). Every algorithm here is the uniform product of the paper's
// transformers — the tool needs no -n/-delta flags because no node needs
// them; that is the point of the paper.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/algo/edge_color_mm.h"
#include "src/algo/mis_from_coloring.h"
#include "src/algo/ruling_set_mc.h"
#include "src/core/coloring_transform.h"
#include "src/core/mc_to_lv.h"
#include "src/core/transformer.h"
#include "src/graph/io.h"
#include "src/problems/coloring.h"
#include "src/problems/matching.h"
#include "src/problems/mis.h"
#include "src/problems/ruling_set.h"
#include "src/prune/matching_prune.h"
#include "src/prune/ruling_set_prune.h"
#include "src/runtime/campaign.h"
#include "src/runtime/run_log.h"

using namespace unilocal;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: unilocal_cli <mis|matching|coloring|rulingset2> "
               "[edge-list-file] [--stats]\n"
               "       unilocal_cli sweep [--scenarios=a,b,..] "
               "[--algorithms=x,y,..|all|glob*] [--n=N] [--a=V] [--b=V] "
               "[--seeds=K] [--workers=W] [--format=csv|json] [--log=FILE] "
               "[--list]\n"
               "       unilocal_cli table1 [--n=N] [--seeds=K] [--workers=W] "
               "[--format=csv|json] [--log=FILE] [--smoke]\n");
  return 2;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> result;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ','))
    if (!item.empty()) result.push_back(item);
  return result;
}

void print_percentiles(const char* what, const CampaignPercentiles& p) {
  std::fprintf(stderr, "  %-16s p50=%.0f p90=%.0f p99=%.0f max=%.0f\n", what,
               p.p50, p.p90, p.p99, p.max);
}

/// Writes the per-cell output, prints the aggregate summary and every
/// non-valid cell, optionally appends to / diffs against the run log.
/// Returns 0 iff every cell ran, solved, and passed its checker.
int report_campaign(const char* what, const CampaignResult& result,
                    bool json, const std::string& log_path) {
  if (json) {
    write_campaign_json(std::cout, result);
    std::cout << '\n';
  } else {
    write_campaign_csv(std::cout, result);
  }
  std::fprintf(stderr,
               "%s: cells=%zu workers=%d solved=%d valid=%d failed=%d "
               "elapsed=%.3fs throughput=%.1f cells/s\n",
               what, result.cells.size(), result.workers, result.solved,
               result.valid, result.failed, result.elapsed_seconds,
               result.cells_per_second);
  print_percentiles("rounds", result.rounds);
  print_percentiles("messages", result.messages);
  print_percentiles("steps/sec", result.steps_per_second);
  for (const auto& cell : result.cells) {
    if (!cell.error.empty())
      std::fprintf(stderr, "%s: FAILED %s/%s seed=%llu: %s\n", what,
                   cell.cell.scenario.c_str(), cell.cell.algorithm.c_str(),
                   static_cast<unsigned long long>(cell.cell.seed),
                   cell.error.c_str());
    else if (!cell.valid)
      std::fprintf(stderr, "%s: %s %s/%s seed=%llu\n", what,
                   cell.solved ? "INVALID" : "UNSOLVED",
                   cell.cell.scenario.c_str(), cell.cell.algorithm.c_str(),
                   static_cast<unsigned long long>(cell.cell.seed));
  }
  if (!log_path.empty()) {
    const RunLogComparison comparison = compare_run_log(log_path, result);
    if (comparison.found) {
      std::fprintf(stderr,
                   "%s: vs %s (same grid): rounds.p50 x%.2f "
                   "messages.p50 x%.2f cells/s x%.2f elapsed x%.2f\n",
                   what, comparison.baseline.date.c_str(),
                   comparison.rounds_p50_ratio,
                   comparison.messages_p50_ratio,
                   comparison.cells_per_second_ratio,
                   comparison.elapsed_ratio);
    } else {
      std::fprintf(stderr, "%s: no recorded sweep of this grid in %s\n",
                   what, log_path.c_str());
    }
    append_run_log(log_path, result);
  }
  // Success means every cell ran, solved, and passed its checker.
  const bool all_good =
      result.failed == 0 &&
      result.valid == static_cast<int>(result.cells.size());
  return all_good ? 0 : 1;
}

int run_sweep(int argc, char** argv) {
  std::vector<std::string> scenarios = {"gnp", "power-law", "geometric",
                                        "layered-forest", "caterpillar"};
  std::vector<std::string> algorithm_patterns = {"mis-uniform",
                                                 "mis-fastest"};
  ScenarioParams params;
  params.n = 200;
  int seeds = 2;
  unsigned workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  bool json = false;
  std::string log_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (arg == "--list") {
      const auto& registry = default_algorithm_registry();
      std::printf("scenario families:\n");
      for (const auto& name : default_scenarios().names())
        std::printf("  %-16s %s\n", name.c_str(),
                    default_scenarios().describe(name).c_str());
      std::printf("algorithms (selection accepts globs and 'all'):\n");
      for (const auto& name : registry.names()) {
        const AlgorithmSpec& spec = registry.spec(name);
        std::string knobs;
        for (const auto& [knob, knob_value] : spec.knobs) {
          char buffer[48];
          std::snprintf(buffer, sizeof(buffer), "%s%s=%g",
                        knobs.empty() ? "" : " ", knob.c_str(), knob_value);
          knobs += buffer;
        }
        std::printf("  %-26s problem=%-14s %s%s%s\n      %s\n", name.c_str(),
                    spec.problem.c_str(), knobs.empty() ? "" : "knobs:",
                    knobs.c_str(), knobs.empty() ? "" : ";",
                    spec.describe.c_str());
      }
      return 0;
    } else if (arg.rfind("--scenarios=", 0) == 0) {
      scenarios = split_csv(value());
    } else if (arg.rfind("--algorithms=", 0) == 0 ||
               arg.rfind("--algos=", 0) == 0) {
      algorithm_patterns = split_csv(value());
    } else if (arg.rfind("--n=", 0) == 0) {
      params.n = static_cast<NodeId>(std::stol(value()));
    } else if (arg.rfind("--a=", 0) == 0) {
      params.a = std::stod(value());
    } else if (arg.rfind("--b=", 0) == 0) {
      params.b = std::stod(value());
    } else if (arg.rfind("--seeds=", 0) == 0) {
      seeds = std::stoi(value());
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = static_cast<unsigned>(std::stoi(value()));
    } else if (arg.rfind("--log=", 0) == 0) {
      log_path = value();
    } else if (arg.rfind("--format=", 0) == 0) {
      const std::string format = value();
      if (format != "csv" && format != "json") return usage();
      json = format == "json";
    } else {
      return usage();
    }
  }
  // Globs and 'all' expand against the registry; make_grid then validates
  // every key up front (one error listing all unknown keys).
  const auto algorithms =
      default_algorithm_registry().resolve(algorithm_patterns);
  const auto cells = make_grid(scenarios, params, algorithms, seeds);
  if (cells.empty()) {
    std::fprintf(stderr, "sweep: empty grid\n");
    return 1;
  }
  CampaignOptions options;
  options.workers = static_cast<int>(workers);
  const CampaignResult result = run_campaign(cells, options);
  return report_campaign("sweep", result, json, log_path);
}

int run_table1(int argc, char** argv) {
  ScenarioParams params;
  params.n = 256;
  int seeds = 2;
  unsigned workers = std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  bool json = false;
  bool smoke = false;
  bool n_given = false;
  bool seeds_given = false;
  std::string log_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg] { return arg.substr(arg.find('=') + 1); };
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--n=", 0) == 0) {
      params.n = static_cast<NodeId>(std::stol(value()));
      n_given = true;
    } else if (arg.rfind("--seeds=", 0) == 0) {
      seeds = std::stoi(value());
      seeds_given = true;
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = static_cast<unsigned>(std::stoi(value()));
    } else if (arg.rfind("--log=", 0) == 0) {
      log_path = value();
    } else if (arg.rfind("--format=", 0) == 0) {
      const std::string format = value();
      if (format != "csv" && format != "json") return usage();
      json = format == "json";
    } else {
      return usage();
    }
  }
  // --smoke shrinks only the knobs the user did not set explicitly, so
  // flag order never changes the grid (and hence the --log grid hash).
  if (smoke) {
    if (!n_given) params.n = 64;
    if (!seeds_given) seeds = 1;
  }
  const auto cells = make_table1_grid(params, seeds);
  std::fprintf(stderr,
               "table1: %zu cells (%zu algorithms x their Table 1 "
               "families x %d seed%s, n=%d)\n",
               cells.size(), default_algorithm_registry().names().size(),
               seeds, seeds == 1 ? "" : "s", params.n);
  CampaignOptions options;
  options.workers = static_cast<int>(workers);
  const CampaignResult result = run_campaign(cells, options);
  return report_campaign("table1", result, json, log_path);
}

void emit_stats(const EngineStats& stats, const char* what) {
  std::fprintf(stderr,
               "%s engine: arena_bytes=%lld peak_messages_per_round=%lld "
               "steps=%lld steps_per_sec=%.0f threads=%d\n",
               what, static_cast<long long>(stats.arena_bytes),
               static_cast<long long>(stats.peak_round_messages),
               static_cast<long long>(stats.total_steps),
               stats.steps_per_second, stats.threads);
  std::fprintf(stderr,
               "%s frontier: peak_live=%lld final_live=%lld "
               "peak_frontier=%lld dirty_spans_cleared=%lld\n",
               what, static_cast<long long>(stats.peak_live_nodes),
               static_cast<long long>(stats.final_live_nodes),
               static_cast<long long>(stats.peak_frontier_nodes),
               static_cast<long long>(stats.dirty_spans_cleared));
}

void emit(const Instance& instance, const std::vector<std::int64_t>& outputs,
          std::int64_t rounds, bool valid, const char* what) {
  for (NodeId v = 0; v < instance.num_nodes(); ++v) {
    std::printf("%lld %lld\n",
                static_cast<long long>(
                    instance.identities[static_cast<std::size_t>(v)]),
                static_cast<long long>(outputs[static_cast<std::size_t>(v)]));
  }
  std::fprintf(stderr, "%s: n=%d rounds=%lld valid=%s\n", what,
               instance.num_nodes(), static_cast<long long>(rounds),
               valid ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "sweep") == 0) {
    try {
      return run_sweep(argc, argv);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sweep: %s\n", e.what());
      return 1;
    }
  }
  if (argc >= 2 && std::strcmp(argv[1], "table1") == 0) {
    try {
      return run_table1(argc, argv);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "table1: %s\n", e.what());
      return 1;
    }
  }
  bool want_stats = false;
  const char* file = nullptr;
  const char* problem_arg = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      want_stats = true;
    } else if (problem_arg == nullptr) {
      problem_arg = argv[i];
    } else if (file == nullptr) {
      file = argv[i];
    } else {
      return usage();
    }
  }
  if (problem_arg == nullptr) return usage();
  Graph g;
  try {
    if (file != nullptr) {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", file);
        return 1;
      }
      g = read_edge_list(in);
    } else {
      g = read_edge_list(std::cin);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }
  Instance instance = make_instance(std::move(g),
                                    IdentityScheme::kRandomPermuted, 1);

  const std::string problem = problem_arg;
  if (problem == "mis") {
    const auto algorithm = make_coloring_mis();
    const RulingSetPruning pruning(1);
    const auto result = run_uniform_transformer(instance, *algorithm, pruning);
    emit(instance, result.outputs, result.total_rounds,
         result.solved &&
             is_maximal_independent_set(instance.graph, result.outputs),
         "mis");
    if (want_stats) emit_stats(result.engine_stats, "mis");
  } else if (problem == "matching") {
    const auto algorithm = make_colored_matching();
    const MatchingPruning pruning;
    const auto result = run_uniform_transformer(instance, *algorithm, pruning);
    emit(instance, result.outputs, result.total_rounds,
         result.solved && is_maximal_matching(instance.graph, result.outputs),
         "matching");
    if (want_stats) emit_stats(result.engine_stats, "matching");
  } else if (problem == "coloring") {
    const auto algorithm = make_lambda_gdelta_coloring(1);
    const auto result = run_uniform_coloring_transform(instance, *algorithm);
    emit(instance, result.colors, result.total_rounds,
         result.solved && is_proper_coloring(instance.graph, result.colors),
         "coloring");
    if (want_stats) emit_stats(result.engine_stats, "coloring");
  } else if (problem == "rulingset2") {
    const auto algorithm = make_mc_ruling_set(2);
    const RulingSetPruning pruning(2);
    const auto result =
        run_las_vegas_transformer(instance, *algorithm, pruning);
    emit(instance, result.outputs, result.total_rounds,
         result.solved &&
             is_two_beta_ruling_set(instance.graph, result.outputs, 2),
         "rulingset2");
    if (want_stats) emit_stats(result.engine_stats, "rulingset2");
  } else {
    return usage();
  }
  return 0;
}
