// unilocal_cli — run a uniform LOCAL algorithm on your own graph.
//
//   unilocal_cli <problem> [file] [--stats]
//
//   <problem>: mis | matching | coloring | rulingset2
//   [file]:    edge list ("n m" header then "u v" per line);
//              reads stdin when omitted.
//   --stats:   also print per-run engine statistics (arena bytes, peak
//              messages/round, steps/sec) on stderr.
//
// Prints one line per node: "<identity> <output>" (plus a summary on
// stderr). Every algorithm here is the uniform product of the paper's
// transformers — the tool needs no -n/-delta flags because no node needs
// them; that is the point of the paper.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "src/algo/edge_color_mm.h"
#include "src/algo/mis_from_coloring.h"
#include "src/algo/ruling_set_mc.h"
#include "src/core/coloring_transform.h"
#include "src/core/mc_to_lv.h"
#include "src/core/transformer.h"
#include "src/graph/io.h"
#include "src/problems/coloring.h"
#include "src/problems/matching.h"
#include "src/problems/mis.h"
#include "src/problems/ruling_set.h"
#include "src/prune/matching_prune.h"
#include "src/prune/ruling_set_prune.h"

using namespace unilocal;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: unilocal_cli <mis|matching|coloring|rulingset2> "
               "[edge-list-file] [--stats]\n");
  return 2;
}

void emit_stats(const EngineStats& stats, const char* what) {
  std::fprintf(stderr,
               "%s engine: arena_bytes=%lld peak_messages_per_round=%lld "
               "steps=%lld steps_per_sec=%.0f threads=%d\n",
               what, static_cast<long long>(stats.arena_bytes),
               static_cast<long long>(stats.peak_round_messages),
               static_cast<long long>(stats.total_steps),
               stats.steps_per_second, stats.threads);
}

void emit(const Instance& instance, const std::vector<std::int64_t>& outputs,
          std::int64_t rounds, bool valid, const char* what) {
  for (NodeId v = 0; v < instance.num_nodes(); ++v) {
    std::printf("%lld %lld\n",
                static_cast<long long>(
                    instance.identities[static_cast<std::size_t>(v)]),
                static_cast<long long>(outputs[static_cast<std::size_t>(v)]));
  }
  std::fprintf(stderr, "%s: n=%d rounds=%lld valid=%s\n", what,
               instance.num_nodes(), static_cast<long long>(rounds),
               valid ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  bool want_stats = false;
  const char* file = nullptr;
  const char* problem_arg = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      want_stats = true;
    } else if (problem_arg == nullptr) {
      problem_arg = argv[i];
    } else if (file == nullptr) {
      file = argv[i];
    } else {
      return usage();
    }
  }
  if (problem_arg == nullptr) return usage();
  Graph g;
  try {
    if (file != nullptr) {
      std::ifstream in(file);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", file);
        return 1;
      }
      g = read_edge_list(in);
    } else {
      g = read_edge_list(std::cin);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }
  Instance instance = make_instance(std::move(g),
                                    IdentityScheme::kRandomPermuted, 1);

  const std::string problem = problem_arg;
  if (problem == "mis") {
    const auto algorithm = make_coloring_mis();
    const RulingSetPruning pruning(1);
    const auto result = run_uniform_transformer(instance, *algorithm, pruning);
    emit(instance, result.outputs, result.total_rounds,
         result.solved &&
             is_maximal_independent_set(instance.graph, result.outputs),
         "mis");
    if (want_stats) emit_stats(result.engine_stats, "mis");
  } else if (problem == "matching") {
    const auto algorithm = make_colored_matching();
    const MatchingPruning pruning;
    const auto result = run_uniform_transformer(instance, *algorithm, pruning);
    emit(instance, result.outputs, result.total_rounds,
         result.solved && is_maximal_matching(instance.graph, result.outputs),
         "matching");
    if (want_stats) emit_stats(result.engine_stats, "matching");
  } else if (problem == "coloring") {
    const auto algorithm = make_lambda_gdelta_coloring(1);
    const auto result = run_uniform_coloring_transform(instance, *algorithm);
    emit(instance, result.colors, result.total_rounds,
         result.solved && is_proper_coloring(instance.graph, result.colors),
         "coloring");
    if (want_stats) emit_stats(result.engine_stats, "coloring");
  } else if (problem == "rulingset2") {
    const auto algorithm = make_mc_ruling_set(2);
    const RulingSetPruning pruning(2);
    const auto result =
        run_las_vegas_transformer(instance, *algorithm, pruning);
    emit(instance, result.outputs, result.total_rounds,
         result.solved &&
             is_two_beta_ruling_set(instance.graph, result.outputs, 2),
         "rulingset2");
    if (want_stats) emit_stats(result.engine_stats, "rulingset2");
  } else {
    return usage();
  }
  return 0;
}
