// Theorem 4: the fastest-of-k combinator matches the best algorithm for
// each instance family without being told which one that is.
#include <gtest/gtest.h>

#include "src/algo/greedy_mis.h"
#include "src/algo/luby.h"
#include "src/algo/mis_from_coloring.h"
#include "src/core/fastest.h"
#include "src/problems/mis.h"
#include "src/prune/ruling_set_prune.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

using testing_support::standard_instances;

struct Combinator {
  std::shared_ptr<const PruningAlgorithm> pruning =
      std::make_shared<RulingSetPruning>(1);
  std::unique_ptr<UniformExecutable> greedy =
      make_local_executable(std::make_shared<GreedyMis>());
  std::unique_ptr<UniformExecutable> colored = make_transformed_executable(
      std::shared_ptr<const NonUniformAlgorithm>(make_coloring_mis()),
      pruning);
  std::vector<const UniformExecutable*> all() const {
    return {greedy.get(), colored.get()};
  }
};

TEST(Theorem4, CorrectOnSweep) {
  Combinator combinator;
  const RulingSetPruning pruning(1);
  for (const auto& [name, instance] : standard_instances(320)) {
    const UniformRunResult result =
        run_fastest(instance, combinator.all(), pruning);
    EXPECT_TRUE(result.solved) << name;
    EXPECT_TRUE(is_maximal_independent_set(instance.graph, result.outputs))
        << name;
  }
}

TEST(Theorem4, BeatsSlowGreedyOnAdversarialPath) {
  // Sorted identities make greedy Theta(n); the coloring pipeline is
  // log*-ish there, so the combinator must stay well below n.
  Combinator combinator;
  const RulingSetPruning pruning(1);
  Instance instance =
      make_instance(path_graph(400), IdentityScheme::kSequential);
  // Greedy alone:
  const auto greedy_outcome = combinator.greedy->run(instance, 1 << 20, 1);
  EXPECT_GE(greedy_outcome.rounds, 400);
  const UniformRunResult combined =
      run_fastest(instance, combinator.all(), pruning);
  ASSERT_TRUE(combined.solved);
  EXPECT_LE(combined.total_rounds, greedy_outcome.rounds);
}

TEST(Theorem4, NearMinOfBothOnBothExtremes) {
  Combinator combinator;
  const RulingSetPruning pruning(1);
  // Clique: greedy finishes in O(1) phases, coloring pipeline needs
  // Theta(Delta^2) — the combinator should land near greedy.
  Instance clique =
      make_instance(complete_graph(40), IdentityScheme::kRandomPermuted, 2);
  const auto greedy_clique = combinator.greedy->run(clique, 1 << 20, 1);
  const auto colored_clique = combinator.colored->run(clique, 1 << 20, 1);
  const UniformRunResult combined = run_fastest(clique, combinator.all(), pruning);
  ASSERT_TRUE(combined.solved);
  const std::int64_t best =
      std::min(greedy_clique.rounds, colored_clique.rounds);
  // Doubling + two algorithms per iteration: <= ~8x the winner.
  EXPECT_LE(combined.total_rounds, 8 * best + 64);
}

TEST(Theorem4, SingleAlgorithmDegeneratesToDoublingRestart) {
  Combinator combinator;
  const RulingSetPruning pruning(1);
  Rng rng(3);
  Instance instance = make_instance(gnp(80, 0.07, rng),
                                    IdentityScheme::kRandomPermuted, 4);
  const UniformRunResult result =
      run_fastest(instance, {combinator.greedy.get()}, pruning);
  EXPECT_TRUE(result.solved);
  EXPECT_TRUE(is_maximal_independent_set(instance.graph, result.outputs));
}

TEST(Theorem4, TransformedExecutableRunsInLentArena) {
  // Grow a workspace with a large standalone run, then lend it to a
  // transformer-backed executable on a tiny instance. The nested
  // Theorem-1 driver must join the lent arena (arena_bytes then reports
  // the shared grown capacity) instead of allocating a fresh small one —
  // the shared-arena property run_fastest relies on.
  EngineWorkspace workspace;
  Rng rng(5);
  Instance big = make_instance(gnp(3000, 0.003, rng),
                               IdentityScheme::kRandomPermuted, 3);
  RunOptions grow_options;
  const GreedyMis greedy;
  const RunResult grown = run_local(big, greedy, grow_options, &workspace);
  ASSERT_GT(grown.stats.arena_bytes, 0);

  Combinator combinator;
  Instance small = make_instance(path_graph(24), IdentityScheme::kSequential);
  const auto lent = combinator.colored->run(small, 1 << 12, 1, &workspace);
  EXPECT_GE(lent.stats.arena_bytes, grown.stats.arena_bytes);

  // Without a lent workspace the nested driver's own arena is sized to the
  // small instance — the discriminating baseline.
  const auto fresh = combinator.colored->run(small, 1 << 12, 1);
  EXPECT_LT(fresh.stats.arena_bytes, grown.stats.arena_bytes);
}

TEST(Theorem1, TransformerRunsInLentWorkspace) {
  EngineWorkspace workspace;
  Rng rng(6);
  Instance big = make_instance(gnp(3000, 0.003, rng),
                               IdentityScheme::kRandomPermuted, 4);
  const GreedyMis greedy;
  const RunResult grown = run_local(big, greedy, {}, &workspace);
  ASSERT_GT(grown.stats.arena_bytes, 0);

  Instance small = make_instance(path_graph(24), IdentityScheme::kSequential);
  const auto algorithm = make_coloring_mis();
  const RulingSetPruning pruning(1);
  UniformRunOptions options;
  options.workspace = &workspace;
  const auto result =
      run_uniform_transformer(small, *algorithm, pruning, options);
  ASSERT_TRUE(result.solved);
  EXPECT_TRUE(is_maximal_independent_set(small.graph, result.outputs));
  EXPECT_GE(result.engine_stats.arena_bytes, grown.stats.arena_bytes);
}

namespace {

/// Records every budget run_fastest hands out; never solves anything.
class BudgetRecorder final : public UniformExecutable {
 public:
  explicit BudgetRecorder(std::vector<std::int64_t>* budgets)
      : budgets_(budgets) {}
  std::string name() const override { return "budget-recorder"; }
  AlternatingDriver::CustomOutcome run(
      const Instance& instance, std::int64_t budget, std::uint64_t /*seed*/,
      EngineWorkspace* /*workspace*/, int /*engine_threads*/,
      KernelMode /*kernel_mode*/,
      const NetworkOptions& /*network*/) const override {
    budgets_->push_back(budget);
    return {std::vector<std::int64_t>(
                static_cast<std::size_t>(instance.num_nodes()), 0),
            1,
            {}};
  }

 private:
  std::vector<std::int64_t>* budgets_;
};

}  // namespace

TEST(Theorem4, BudgetSaturatesPastSixtyTwoIterations) {
  // budget = 1 << i was UB once max_iterations exceeded 62; it must now
  // saturate at the engine's default round cap while staying positive and
  // non-decreasing.
  std::vector<std::int64_t> budgets;
  BudgetRecorder recorder(&budgets);
  const RulingSetPruning pruning(1);
  Instance instance = make_instance(path_graph(2), IdentityScheme::kSequential);
  UniformRunOptions options;
  options.max_iterations = 80;
  const UniformRunResult result =
      run_fastest(instance, {&recorder}, pruning, options);
  EXPECT_FALSE(result.solved);
  ASSERT_EQ(budgets.size(), 80u);
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    EXPECT_GT(budgets[i], 0) << i;
    if (i > 0) EXPECT_GE(budgets[i], budgets[i - 1]) << i;
  }
  EXPECT_EQ(budgets.back(), RunOptions{}.max_rounds);
}

TEST(Theorem4, TraceRecordsAlternation) {
  Combinator combinator;
  const RulingSetPruning pruning(1);
  Instance instance =
      make_instance(path_graph(100), IdentityScheme::kSequential);
  const UniformRunResult result =
      run_fastest(instance, combinator.all(), pruning);
  ASSERT_TRUE(result.solved);
  bool saw_greedy = false;
  bool saw_colored = false;
  for (const auto& step : result.trace) {
    if (step.algorithm.find("greedy") != std::string::npos) saw_greedy = true;
    if (step.algorithm.find("uniform(") != std::string::npos)
      saw_colored = true;
  }
  EXPECT_TRUE(saw_greedy);
  EXPECT_TRUE(saw_colored);
}

}  // namespace
}  // namespace unilocal
