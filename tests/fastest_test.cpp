// Theorem 4: the fastest-of-k combinator matches the best algorithm for
// each instance family without being told which one that is.
#include <gtest/gtest.h>

#include "src/algo/greedy_mis.h"
#include "src/algo/luby.h"
#include "src/algo/mis_from_coloring.h"
#include "src/core/fastest.h"
#include "src/problems/mis.h"
#include "src/prune/ruling_set_prune.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

using testing_support::standard_instances;

struct Combinator {
  std::shared_ptr<const PruningAlgorithm> pruning =
      std::make_shared<RulingSetPruning>(1);
  std::unique_ptr<UniformExecutable> greedy =
      make_local_executable(std::make_shared<GreedyMis>());
  std::unique_ptr<UniformExecutable> colored = make_transformed_executable(
      std::shared_ptr<const NonUniformAlgorithm>(make_coloring_mis()),
      pruning);
  std::vector<const UniformExecutable*> all() const {
    return {greedy.get(), colored.get()};
  }
};

TEST(Theorem4, CorrectOnSweep) {
  Combinator combinator;
  const RulingSetPruning pruning(1);
  for (const auto& [name, instance] : standard_instances(320)) {
    const UniformRunResult result =
        run_fastest(instance, combinator.all(), pruning);
    EXPECT_TRUE(result.solved) << name;
    EXPECT_TRUE(is_maximal_independent_set(instance.graph, result.outputs))
        << name;
  }
}

TEST(Theorem4, BeatsSlowGreedyOnAdversarialPath) {
  // Sorted identities make greedy Theta(n); the coloring pipeline is
  // log*-ish there, so the combinator must stay well below n.
  Combinator combinator;
  const RulingSetPruning pruning(1);
  Instance instance =
      make_instance(path_graph(400), IdentityScheme::kSequential);
  // Greedy alone:
  const auto greedy_outcome = combinator.greedy->run(instance, 1 << 20, 1);
  EXPECT_GE(greedy_outcome.rounds, 400);
  const UniformRunResult combined =
      run_fastest(instance, combinator.all(), pruning);
  ASSERT_TRUE(combined.solved);
  EXPECT_LE(combined.total_rounds, greedy_outcome.rounds);
}

TEST(Theorem4, NearMinOfBothOnBothExtremes) {
  Combinator combinator;
  const RulingSetPruning pruning(1);
  // Clique: greedy finishes in O(1) phases, coloring pipeline needs
  // Theta(Delta^2) — the combinator should land near greedy.
  Instance clique =
      make_instance(complete_graph(40), IdentityScheme::kRandomPermuted, 2);
  const auto greedy_clique = combinator.greedy->run(clique, 1 << 20, 1);
  const auto colored_clique = combinator.colored->run(clique, 1 << 20, 1);
  const UniformRunResult combined = run_fastest(clique, combinator.all(), pruning);
  ASSERT_TRUE(combined.solved);
  const std::int64_t best =
      std::min(greedy_clique.rounds, colored_clique.rounds);
  // Doubling + two algorithms per iteration: <= ~8x the winner.
  EXPECT_LE(combined.total_rounds, 8 * best + 64);
}

TEST(Theorem4, SingleAlgorithmDegeneratesToDoublingRestart) {
  Combinator combinator;
  const RulingSetPruning pruning(1);
  Rng rng(3);
  Instance instance = make_instance(gnp(80, 0.07, rng),
                                    IdentityScheme::kRandomPermuted, 4);
  const UniformRunResult result =
      run_fastest(instance, {combinator.greedy.get()}, pruning);
  EXPECT_TRUE(result.solved);
  EXPECT_TRUE(is_maximal_independent_set(instance.graph, result.outputs));
}

TEST(Theorem4, TraceRecordsAlternation) {
  Combinator combinator;
  const RulingSetPruning pruning(1);
  Instance instance =
      make_instance(path_graph(100), IdentityScheme::kSequential);
  const UniformRunResult result =
      run_fastest(instance, combinator.all(), pruning);
  ASSERT_TRUE(result.solved);
  bool saw_greedy = false;
  bool saw_colored = false;
  for (const auto& step : result.trace) {
    if (step.algorithm.find("greedy") != std::string::npos) saw_greedy = true;
    if (step.algorithm.find("uniform(") != std::string::npos)
      saw_colored = true;
  }
  EXPECT_TRUE(saw_greedy);
  EXPECT_TRUE(saw_colored);
}

}  // namespace
}  // namespace unilocal
