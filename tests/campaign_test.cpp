// Campaign layer: the scenario registry's determinism, checker verdicts,
// per-cell error isolation, and the headline guarantee — per-cell outputs
// bit-identical for any worker count and any cell-scheduling order
// (extending the engine-equivalence bit-identical guarantee one layer up).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "src/problems/registry.h"
#include "src/runtime/campaign.h"
#include "src/util/json.h"

namespace unilocal {
namespace {

using CellKey = std::tuple<std::string, std::string, std::uint64_t>;

CellKey key_of(const CampaignCell& cell) {
  return {cell.scenario, cell.algorithm, cell.seed};
}

std::vector<CampaignCell> small_grid() {
  ScenarioParams params;
  params.n = 60;
  return make_grid({"gnp", "power-law", "layered-forest", "caterpillar",
                    "geometric", "path"},
                   params, {"mis-uniform", "mis-fastest", "rulingset2-lv"},
                   1, 7);
}

TEST(ScenarioRegistry, ContainsTheAdvertisedFamilies) {
  const auto& registry = default_scenarios();
  for (const char* name :
       {"path", "cycle", "clique", "bipartite", "grid", "hypercube", "gnp",
        "bounded-degree", "tree", "forest", "layered-forest", "power-law",
        "geometric", "caterpillar"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_FALSE(registry.describe(name).empty()) << name;
  }
  EXPECT_GE(registry.names().size(), 14u);
}

TEST(ScenarioRegistry, BuildsDeterministicallyFromSeed) {
  const auto& registry = default_scenarios();
  ScenarioParams params;
  params.n = 200;
  for (const std::string name : registry.names()) {
    const Graph a = registry.build(name, params, 11);
    const Graph b = registry.build(name, params, 11);
    EXPECT_TRUE(a == b) << name;
    EXPECT_GE(a.num_nodes(), 1) << name;
  }
  // Random families actually vary with the seed.
  EXPECT_FALSE(registry.build("gnp", params, 11) ==
               registry.build("gnp", params, 12));
}

TEST(ScenarioRegistry, RejectsUnknownFamilies) {
  const auto& registry = default_scenarios();
  EXPECT_FALSE(registry.contains("no-such-family"));
  EXPECT_THROW(registry.build("no-such-family", {}, 1), std::runtime_error);
  EXPECT_THROW(registry.describe("no-such-family"), std::runtime_error);
}

TEST(WorkspacePool, RoundRobinCheckout) {
  WorkspacePool pool(3);
  EXPECT_EQ(pool.size(), 3);
  EngineWorkspace* a = pool.checkout();
  EngineWorkspace* b = pool.checkout();
  EngineWorkspace* c = pool.checkout();
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
  pool.checkin(a);
  pool.checkin(b);
  // FIFO: the first workspace returned is the next one handed out.
  EXPECT_EQ(pool.checkout(), a);
  pool.checkin(c);
}

TEST(Campaign, SolvesAndValidatesAWholeGrid) {
  const auto cells = small_grid();
  CampaignOptions options;
  options.workers = 2;
  const CampaignResult result = run_campaign(cells, options);
  ASSERT_EQ(result.cells.size(), cells.size());
  EXPECT_EQ(result.failed, 0);
  for (const auto& cell : result.cells) {
    EXPECT_TRUE(cell.error.empty()) << cell.error;
    EXPECT_TRUE(cell.solved)
        << cell.cell.scenario << '/' << cell.cell.algorithm;
    EXPECT_TRUE(cell.valid)
        << cell.cell.scenario << '/' << cell.cell.algorithm;
    EXPECT_GT(cell.nodes, 0);
    EXPECT_GT(cell.rounds, 0);
  }
  EXPECT_EQ(result.solved, static_cast<int>(cells.size()));
  EXPECT_EQ(result.valid, static_cast<int>(cells.size()));
  EXPECT_GT(result.cells_per_second, 0.0);
  EXPECT_LE(result.rounds.p50, result.rounds.p90);
  EXPECT_LE(result.rounds.p90, result.rounds.p99);
  EXPECT_LE(result.rounds.p99, result.rounds.max);
  EXPECT_LE(result.messages.p50, result.messages.max);
}

TEST(Campaign, OutputsAreBitIdenticalForAnyWorkerCount) {
  const auto cells = small_grid();
  CampaignOptions options;
  options.keep_outputs = true;
  options.workers = 1;
  const CampaignResult sequential = run_campaign(cells, options);
  for (const int workers : {2, 4, 8}) {
    options.workers = workers;
    const CampaignResult parallel = run_campaign(cells, options);
    ASSERT_EQ(parallel.cells.size(), sequential.cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      EXPECT_EQ(parallel.cells[i].outputs, sequential.cells[i].outputs)
          << workers << " workers, cell " << i;
      EXPECT_EQ(parallel.cells[i].output_hash,
                sequential.cells[i].output_hash);
      EXPECT_EQ(parallel.cells[i].rounds, sequential.cells[i].rounds);
    }
  }
}

TEST(Campaign, OutputsAreIndependentOfCellSchedulingOrder) {
  const auto cells = small_grid();
  CampaignOptions options;
  options.keep_outputs = true;
  options.workers = 4;
  const CampaignResult forward = run_campaign(cells, options);

  std::vector<CampaignCell> reversed(cells.rbegin(), cells.rend());
  const CampaignResult backward = run_campaign(reversed, options);

  std::map<CellKey, const CellResult*> by_key;
  for (const auto& cell : backward.cells) by_key[key_of(cell.cell)] = &cell;
  for (const auto& cell : forward.cells) {
    const auto it = by_key.find(key_of(cell.cell));
    ASSERT_NE(it, by_key.end());
    EXPECT_EQ(cell.outputs, it->second->outputs)
        << cell.cell.scenario << '/' << cell.cell.algorithm;
    EXPECT_EQ(cell.output_hash, it->second->output_hash);
    EXPECT_EQ(cell.rounds, it->second->rounds);
  }
}

TEST(Campaign, RunsOnASharedThreadPool) {
  ThreadPool pool(3);
  CampaignOptions options;
  options.pool = &pool;
  const auto cells = make_grid({"path", "tree"}, ScenarioParams{40, 0, 0},
                               {"mis-uniform"}, 2, 1);
  const CampaignResult result = run_campaign(cells, options);
  EXPECT_EQ(result.workers, 3);
  EXPECT_EQ(result.failed, 0);
  EXPECT_EQ(result.valid, static_cast<int>(cells.size()));
}

TEST(Campaign, CheckerCatchesAnAlgorithmThatLies) {
  AlgorithmRegistry table;
  table.add({"liar-mis", "mis", "claims solved with every node selected",
             {}, {},
             [](const Instance& instance, const AlgorithmRunContext&) {
               // Invalid on any graph with an edge.
               return CellOutcome{
                   std::vector<std::int64_t>(
                       static_cast<std::size_t>(instance.num_nodes()), 1),
                   1, true, EngineStats{}};
             }});
  CampaignCell cell;
  cell.scenario = "path";
  cell.params.n = 10;
  cell.algorithm = "liar-mis";
  CampaignOptions options;
  options.algorithms = &table;
  const CampaignResult result = run_campaign({cell}, options);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.cells[0].solved);
  EXPECT_FALSE(result.cells[0].valid);
  EXPECT_EQ(result.valid, 0);
}

TEST(Campaign, IsolatesThrowingCells) {
  AlgorithmRegistry merged;
  merged.add({"boom", "mis", "always throws", {}, {},
              [](const Instance&, const AlgorithmRunContext&) -> CellOutcome {
                throw std::runtime_error("cell exploded");
              }});
  merged.add({"mis-uniform", "mis", "delegates to the default registry",
              {}, {},
              [](const Instance& instance,
                 const AlgorithmRunContext& context) {
                return default_algorithm_registry().run("mis-uniform",
                                                        instance, context);
              }});
  GridOptions grid_options;
  grid_options.algorithms = &merged;
  auto cells = make_grid({"path"}, ScenarioParams{20, 0, 0}, {"boom"}, 1,
                         grid_options);
  CampaignCell good;
  good.scenario = "path";
  good.params.n = 20;
  good.algorithm = "mis-uniform";
  cells.push_back(good);
  // Unknown keys still surface as isolated per-cell run-time errors when a
  // caller bypasses make_grid's up-front validation.
  CampaignCell unknown;
  unknown.scenario = "no-such-family";
  unknown.algorithm = "mis-uniform";
  cells.push_back(unknown);

  CampaignOptions options;
  options.algorithms = &merged;
  options.workers = 2;
  const CampaignResult result = run_campaign(cells, options);
  ASSERT_EQ(result.cells.size(), 3u);
  EXPECT_NE(result.cells[0].error.find("cell exploded"), std::string::npos);
  EXPECT_TRUE(result.cells[1].error.empty());
  EXPECT_TRUE(result.cells[1].valid);
  EXPECT_NE(result.cells[2].error.find("unknown scenario"),
            std::string::npos);
  EXPECT_EQ(result.failed, 2);
}

TEST(Campaign, WritesCsvAndJson) {
  const auto cells = make_grid({"path", "cycle"}, ScenarioParams{24, 0, 0},
                               {"mis-uniform"}, 1, 3);
  const CampaignResult result = run_campaign(cells, {});
  std::ostringstream csv;
  write_campaign_csv(csv, result);
  const std::string csv_text = csv.str();
  EXPECT_NE(csv_text.find("scenario,n,a,b,algorithm"), std::string::npos);
  // Header plus one row per cell.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv_text.begin(), csv_text.end(), '\n')),
            cells.size() + 1);
  std::ostringstream json;
  write_campaign_json(json, result);
  const std::string text = json.str();
  EXPECT_EQ(text.front(), '{');
  EXPECT_EQ(text.back(), '}');
  EXPECT_NE(text.find("\"cells_per_second\""), std::string::npos);
  EXPECT_NE(text.find("\"cell_results\":["), std::string::npos);
}

TEST(Campaign, AggregatesFrontierTelemetry) {
  const auto cells = small_grid();
  const CampaignResult result = run_campaign(cells, {});
  ASSERT_EQ(result.failed, 0);
  // Every solved cell had at least one live node, so the percentiles are
  // populated and ordered like the other blocks.
  EXPECT_GT(result.peak_live_nodes.p50, 0.0);
  EXPECT_LE(result.peak_live_nodes.p50, result.peak_live_nodes.p90);
  EXPECT_LE(result.peak_live_nodes.p90, result.peak_live_nodes.p99);
  EXPECT_LE(result.peak_live_nodes.p99, result.peak_live_nodes.max);
  EXPECT_GT(result.peak_frontier_nodes.max, 0.0);
  EXPECT_LE(result.dirty_spans_cleared.p50, result.dirty_spans_cleared.max);
  // The max percentile is the max over the cells' counters.
  double expected_max = 0.0;
  for (const CellResult& cell : result.cells)
    expected_max = std::max(
        expected_max, static_cast<double>(cell.stats.peak_live_nodes));
  EXPECT_DOUBLE_EQ(result.peak_live_nodes.max, expected_max);
}

TEST(Campaign, JsonStaysParseableWithHostileKeysAndErrors) {
  // Scenario keys, algorithm names, and error strings are free text; the
  // written JSON must survive all of it now that shard merge machine-parses
  // campaign documents.
  const std::string hostile = "we\"ird\\key\nwith\tcontrol\x01chars";
  ScenarioRegistry scenarios;
  scenarios.add(hostile, "hostile name", [](const ScenarioParams& params,
                                            Rng&) {
    return Graph(params.n);
  });
  AlgorithmRegistry algorithms;
  algorithms.add({hostile, "mis", "throws a hostile error", {}, {},
                  [&](const Instance&, const AlgorithmRunContext&)
                      -> CellOutcome {
                    throw std::runtime_error("boom \"quoted\"\\\n\x02");
                  }});
  CampaignCell cell;
  cell.scenario = hostile;
  cell.params.n = 8;
  cell.algorithm = hostile;
  CampaignOptions options;
  options.scenarios = &scenarios;
  options.algorithms = &algorithms;
  const CampaignResult result = run_campaign({cell}, options);
  ASSERT_EQ(result.failed, 1);

  for (const bool canonical : {false, true}) {
    std::ostringstream out;
    CampaignJsonOptions json_options;
    json_options.canonical = canonical;
    write_campaign_json(out, result, json_options);
    const json::Value doc = json::Value::parse(out.str());  // must not throw
    const json::Value& first = doc.at("cell_results").as_array().at(0);
    EXPECT_EQ(first.at("scenario").as_string(), hostile);
    EXPECT_EQ(first.at("algorithm").as_string(), hostile);
    EXPECT_NE(first.at("error").as_string().find("boom \"quoted\""),
              std::string::npos);
  }
}

TEST(Campaign, CanonicalJsonIsSchedulingInvariant) {
  const auto cells = small_grid();
  CampaignOptions options;
  options.workers = 1;
  const CampaignResult sequential = run_campaign(cells, options);
  options.workers = 4;
  const CampaignResult parallel = run_campaign(cells, options);
  CampaignJsonOptions canonical;
  canonical.canonical = true;
  std::ostringstream a;
  std::ostringstream b;
  write_campaign_json(a, sequential, canonical);
  write_campaign_json(b, parallel, canonical);
  // Byte-identical: no timing, worker, or workspace-reuse fields survive.
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace unilocal
