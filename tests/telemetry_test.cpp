// The telemetry layer (src/runtime/telemetry.h): the metrics registry
// merges per-thread cells to a snapshot that is identical for any thread
// count; trace events round-trip through their JSON form with pid/tid and
// u64 arg spellings intact; merge_process remaps worker pids under a named
// lane; the engine's per-round spans obey the --trace-rounds head-sampling
// cap and nest inside their engine.run span under a fake clock; canonical
// campaign JSON is byte-identical with tracing on and off, single-process
// and sharded; and the supervisor's attempt records carry start/end/killed
// timestamps that agree with its trace spans.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/campaign.h"
#include "src/runtime/shard.h"
#include "src/runtime/supervisor.h"
#include "src/runtime/telemetry.h"
#include "src/util/json.h"

namespace unilocal {
namespace {

using telemetry::FakeClock;
using telemetry::MetricKind;
using telemetry::MetricSnapshot;
using telemetry::MetricsRegistry;
using telemetry::TraceEvent;
using telemetry::TraceRecorder;

// --- metrics registry --------------------------------------------------------

TEST(HistogramBucket, Log2EdgesAndSaturation) {
  EXPECT_EQ(telemetry::histogram_bucket(-7), 0);
  EXPECT_EQ(telemetry::histogram_bucket(0), 0);
  EXPECT_EQ(telemetry::histogram_bucket(1), 1);
  EXPECT_EQ(telemetry::histogram_bucket(2), 2);
  EXPECT_EQ(telemetry::histogram_bucket(3), 2);
  EXPECT_EQ(telemetry::histogram_bucket(4), 3);
  EXPECT_EQ(telemetry::histogram_bucket(7), 3);
  EXPECT_EQ(telemetry::histogram_bucket(8), 4);
  EXPECT_EQ(telemetry::histogram_bucket(std::int64_t{1} << 62),
            telemetry::kHistogramBuckets - 1);
}

/// The deterministic workload: item i goes to thread (i % threads), and
/// every write is commutative, so the merged snapshot must not depend on
/// the partition.
std::vector<MetricSnapshot> run_partitioned(int threads, int items) {
  MetricsRegistry registry;
  const int counter = registry.counter("work.items");
  const int gauge = registry.gauge("work.peak");
  const int histogram = registry.histogram("work.sizes");
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&registry, counter, gauge, histogram, t, threads,
                       items] {
      for (int i = t; i < items; i += threads) {
        registry.add(counter, 1);
        registry.record_max(gauge, i);
        registry.observe(histogram, i % 37);
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  return registry.snapshot();
}

TEST(MetricsRegistry, SnapshotIdenticalForAnyThreadCount) {
  const std::vector<MetricSnapshot> baseline = run_partitioned(1, 800);
  ASSERT_EQ(baseline.size(), 3u);
  // snapshot() sorts by name.
  EXPECT_EQ(baseline[0].name, "work.items");
  EXPECT_EQ(baseline[1].name, "work.peak");
  EXPECT_EQ(baseline[2].name, "work.sizes");
  EXPECT_EQ(baseline[0].kind, MetricKind::kCounter);
  EXPECT_EQ(baseline[0].value, 800);
  EXPECT_EQ(baseline[1].kind, MetricKind::kGauge);
  EXPECT_EQ(baseline[1].value, 799);
  EXPECT_EQ(baseline[2].kind, MetricKind::kHistogram);
  EXPECT_EQ(baseline[2].count, 800);
  for (const int threads : {2, 8}) {
    const std::vector<MetricSnapshot> merged =
        run_partitioned(threads, 800);
    ASSERT_EQ(merged.size(), baseline.size()) << threads << " threads";
    for (std::size_t i = 0; i < baseline.size(); ++i)
      EXPECT_TRUE(merged[i] == baseline[i])
          << merged[i].name << " diverges at " << threads << " threads";
  }
}

TEST(MetricsRegistry, NameBasedWritesAndKindMismatch) {
  MetricsRegistry registry;
  registry.add("a.counter", 2);
  registry.add("a.counter", 3);
  registry.observe("a.hist", 9);
  registry.record_max("a.gauge", 4);
  EXPECT_THROW(registry.gauge("a.counter"), std::runtime_error);
  const std::vector<MetricSnapshot> snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].value, 5);
  EXPECT_EQ(snapshot[2].sum, 9);
}

TEST(MetricsRegistry, ToJsonHistogramBucketsSumToCount) {
  MetricsRegistry registry;
  for (int i = 0; i < 100; ++i) registry.observe("h", i);
  const json::Value document = registry.to_json();
  const json::Value& metric = document.at("metrics").as_array().at(0);
  EXPECT_EQ(metric.at("kind").as_string(), "histogram");
  EXPECT_EQ(metric.at("count").as_i64(), 100);
  std::int64_t bucket_total = 0;
  for (const auto& [bucket, count] : metric.at("buckets").as_object())
    bucket_total += count.as_i64();
  EXPECT_EQ(bucket_total, 100);
}

// --- trace events ------------------------------------------------------------

TEST(TraceEvent, JsonRoundTripPreservesEveryField) {
  TraceEvent event;
  event.name = "attempt";
  event.phase = 'X';
  event.ts = 123456;
  event.dur = 789;
  event.pid = 7;
  event.tid = 3;
  event.arg("scenario", std::string("gnp"));
  event.arg("round", std::int64_t{42});
  event.arg("seed", std::uint64_t{18446744073709551615ULL});
  event.arg("occupancy", 2.5);
  event.arg("speculative", true);
  const TraceEvent parsed =
      TraceRecorder::parse_event(TraceRecorder::event_to_json(event));
  EXPECT_EQ(parsed.name, "attempt");
  EXPECT_EQ(parsed.phase, 'X');
  EXPECT_EQ(parsed.ts, 123456);
  EXPECT_EQ(parsed.dur, 789);
  EXPECT_EQ(parsed.pid, 7);
  EXPECT_EQ(parsed.tid, 3);
  EXPECT_EQ(parsed.args.at("scenario").as_string(), "gnp");
  EXPECT_EQ(parsed.args.at("round").as_i64(), 42);
  // u64 args are spelled as strings (the repo-wide JSON convention for
  // values above 2^53).
  EXPECT_EQ(parsed.args.at("seed").as_string(), "18446744073709551615");
  EXPECT_TRUE(parsed.args.at("speculative").as_bool());
}

TEST(TraceEvent, ParseRejectsUnknownPhase) {
  const json::Value value = json::Value::parse(
      R"({"name":"x","ph":"Q","ts":0,"pid":1,"tid":1})");
  EXPECT_THROW(TraceRecorder::parse_event(value), std::runtime_error);
}

TEST(TraceRecorder, FakeClockOrdersSpansAndMetadataLeads) {
  FakeClock clock(1);  // every read ticks forward: strict ordering for free
  TraceRecorder recorder(&clock);
  recorder.set_process_name(1, "test");
  const std::int64_t outer_t0 = recorder.now();
  const std::int64_t inner_t0 = recorder.now();
  TraceEvent inner;
  inner.name = "inner";
  inner.ts = inner_t0;
  inner.dur = recorder.now() - inner_t0;
  recorder.record(inner);
  TraceEvent outer;
  outer.name = "outer";
  outer.ts = outer_t0;
  outer.dur = recorder.now() - outer_t0;
  recorder.record(outer);

  // The inner span nests strictly inside the outer one.
  const std::vector<TraceEvent> events = recorder.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_GT(events[0].ts, outer_t0);
  EXPECT_LT(events[0].ts + events[0].dur, outer_t0 + events[1].dur);

  // to_json leads with process-name metadata.
  const json::Value document = recorder.to_json();
  const auto& list = document.at("traceEvents").as_array();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].at("ph").as_string(), "M");
  EXPECT_EQ(list[0].at("name").as_string(), "process_name");
  EXPECT_EQ(document.at("displayTimeUnit").as_string(), "ms");
}

TEST(TraceRecorder, MergeProcessRemapsPidKeepsTidNamesLane) {
  FakeClock clock(1);
  TraceRecorder worker(&clock);
  worker.set_process_name(1, "worker-local-name");
  TraceEvent span;
  span.name = "cell";
  span.ts = 10;
  span.dur = 5;
  span.pid = 1;
  span.tid = 4;
  worker.record(span);

  TraceRecorder merged(&clock);
  merged.merge_process(worker.to_json(), 9, "shard 7");
  const std::vector<TraceEvent> events = merged.events();
  ASSERT_EQ(events.size(), 1u);  // the worker's own 'M' metadata is dropped
  EXPECT_EQ(events[0].pid, 9);
  EXPECT_EQ(events[0].tid, 4);
  EXPECT_EQ(events[0].name, "cell");

  bool named = false;
  const json::Value merged_doc = merged.to_json();
  for (const json::Value& item : merged_doc.at("traceEvents").as_array()) {
    if (item.at("ph").as_string() != "M") continue;
    EXPECT_EQ(item.at("pid").as_i64(), 9);
    EXPECT_EQ(item.at("args").at("name").as_string(), "shard 7");
    named = true;
  }
  EXPECT_TRUE(named);
  EXPECT_THROW(merged.merge_process(json::Value::parse("{}"), 2, "x"),
               std::runtime_error);
}

// --- engine + campaign wiring ------------------------------------------------

std::vector<CampaignCell> tiny_grid() {
  ScenarioParams params;
  params.n = 32;
  return make_grid({"path", "gnp"}, params, {"mis-uniform", "luby-mis"}, 1, 7);
}

std::string canonical_json(const CampaignResult& result) {
  std::ostringstream out;
  CampaignJsonOptions options;
  options.canonical = true;
  write_campaign_json(out, result, options);
  return out.str();
}

TEST(EngineTracing, RoundSpansNestInRunSpansAndArgsAreComplete) {
  FakeClock clock(1);
  TraceRecorder recorder(&clock);
  CampaignOptions options;
  options.workers = 1;
  options.trace = &recorder;
  run_campaign(tiny_grid(), options);

  std::map<std::pair<int, int>, std::vector<TraceEvent>> lanes;
  int cells = 0;
  int runs = 0;
  int rounds = 0;
  for (const TraceEvent& event : recorder.events()) {
    lanes[{event.pid, event.tid}].push_back(event);
    if (event.name == "cell") {
      ++cells;
      EXPECT_TRUE(event.args.find("scenario") != nullptr);
      EXPECT_TRUE(event.args.find("seed") != nullptr);
      EXPECT_TRUE(event.args.find("rounds") != nullptr);
    } else if (event.name == "engine.run") {
      ++runs;
      EXPECT_TRUE(event.args.find("mode") != nullptr);
      EXPECT_TRUE(event.args.find("path") != nullptr);
    } else if (event.name == "round") {
      ++rounds;
      EXPECT_TRUE(event.args.find("frontier") != nullptr);
      EXPECT_TRUE(event.args.find("messages") != nullptr);
      EXPECT_TRUE(event.args.find("steps") != nullptr);
    }
  }
  EXPECT_EQ(cells, 4);
  EXPECT_GE(runs, cells);  // composed algorithms run several stages
  EXPECT_GT(rounds, 0);

  // Every round span sits inside an engine.run span on its lane.
  for (const auto& [lane, events] : lanes) {
    for (const TraceEvent& span : events) {
      if (span.name != "round") continue;
      bool covered = false;
      for (const TraceEvent& run : events) {
        if (run.name != "engine.run") continue;
        if (run.ts <= span.ts && span.ts + span.dur <= run.ts + run.dur) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "round span at ts=" << span.ts
                           << " outside every engine.run span";
    }
  }
}

TEST(EngineTracing, TraceRoundsCapsPerRunRoundSpans) {
  for (const std::int64_t cap : {std::int64_t{0}, std::int64_t{2}}) {
    FakeClock clock(1);
    TraceRecorder recorder(&clock);
    CampaignOptions options;
    options.workers = 1;
    options.trace = &recorder;
    options.trace_rounds = cap;
    run_campaign(tiny_grid(), options);
    int runs = 0;
    std::int64_t rounds = 0;
    for (const TraceEvent& event : recorder.events()) {
      if (event.name == "engine.run") ++runs;
      if (event.name == "round") ++rounds;
    }
    EXPECT_GT(runs, 0) << "cap " << cap;
    EXPECT_LE(rounds, cap * runs) << "cap " << cap;
  }
}

TEST(CampaignTelemetry, MetricsCountCellsDeterministically) {
  for (const int workers : {1, 2, 8}) {
    MetricsRegistry registry;
    const telemetry::ScopedMetrics scoped(&registry);
    CampaignOptions options;
    options.workers = workers;
    run_campaign(tiny_grid(), options);
    const std::vector<MetricSnapshot> snapshot = registry.snapshot();
    bool found = false;
    for (const MetricSnapshot& metric : snapshot) {
      if (metric.name == "campaign.cells") {
        EXPECT_EQ(metric.value, 4) << workers << " workers";
        found = true;
      }
    }
    EXPECT_TRUE(found) << workers << " workers";
  }
}

TEST(CampaignTelemetry, CanonicalBytesIdenticalWithTracingOnAndOff) {
  const std::vector<CampaignCell> cells = tiny_grid();
  CampaignOptions plain;
  plain.workers = 2;
  const std::string baseline = canonical_json(run_campaign(cells, plain));

  // Single process, tracing on.
  {
    FakeClock clock(1);
    TraceRecorder recorder(&clock);
    MetricsRegistry registry;
    const telemetry::ScopedMetrics scoped(&registry);
    CampaignOptions traced;
    traced.workers = 2;
    traced.trace = &recorder;
    EXPECT_EQ(canonical_json(run_campaign(cells, traced)), baseline);
    EXPECT_GT(recorder.size(), 0u);
  }

  // Sharded in-process (1 and 3 shards), tracing on.
  for (const int shards : {1, 3}) {
    FakeClock clock(1);
    TraceRecorder recorder(&clock);
    const ShardPlan plan =
        plan_shards(cells, shards, ShardPolicy::kCostBalanced);
    std::vector<ShardResult> results;
    for (const ShardManifest& manifest : plan.shards) {
      CampaignOptions traced;
      traced.workers = 2;
      traced.trace = &recorder;
      traced.trace_pid = manifest.shard_index + 2;
      results.push_back(run_shard(manifest, traced));
    }
    EXPECT_EQ(canonical_json(merge_shard_results(plan, results)), baseline)
        << shards << " shards";
    EXPECT_GT(recorder.size(), 0u) << shards << " shards";
  }
}

// --- supervisor spans and attempt timestamps ---------------------------------

/// A scratch directory per test, removed on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = "/tmp/unilocal-telemetry-test-XXXXXX";
    std::vector<char> buffer(tmpl.begin(), tmpl.end());
    buffer.push_back('\0');
    if (mkdtemp(buffer.data()) == nullptr)
      throw std::runtime_error("mkdtemp failed");
    path = buffer.data();
  }
  ~TempDir() { std::system(("rm -rf " + shell_quote(path)).c_str()); }
};

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(static_cast<bool>(out)) << path;
  out << text;
}

/// Golden shard results computed in-process; sh workers copy (or ignore)
/// them, so supervision runs real processes without re-running the engine.
struct SupervisedHarness {
  TempDir dir;
  std::vector<CampaignCell> cells = tiny_grid();
  ShardPlan plan;
  std::vector<std::string> golden_paths;

  explicit SupervisedHarness(int num_shards) {
    plan = plan_shards(cells, num_shards, ShardPolicy::kCostBalanced);
    for (const ShardManifest& manifest : plan.shards) {
      const ShardResult result = run_shard(manifest, {});
      const std::string path = dir.path + "/golden-" +
                               std::to_string(manifest.shard_index) + ".json";
      write_file(path, result.to_json().dump() + "\n");
      golden_paths.push_back(path);
    }
  }

  SupervisorOptions options() const {
    SupervisorOptions opts;
    opts.scratch_dir = dir.path;
    opts.backoff_base_seconds = 0.001;
    opts.backoff_max_seconds = 0.002;
    return opts;
  }

  WorkerCommand copy_worker() const {
    return [this](const ShardAttemptContext& context) {
      return std::vector<std::string>{
          "/bin/sh", "-c", "cp \"$1\" \"$2\"", "worker",
          golden_paths[static_cast<std::size_t>(context.shard_index)],
          context.result_path};
    };
  }
};

TEST(SupervisorTelemetry, AttemptRecordsCarryTimestampsAndSpansMatch) {
  SupervisedHarness harness(2);
  TraceRecorder recorder;
  SupervisorOptions options = harness.options();
  options.trace = &recorder;
  const SupervisorReport report =
      supervise_shards(harness.plan, options, harness.copy_worker());
  ASSERT_TRUE(report.all_completed());

  for (const ShardSupervision& sup : report.shards) {
    ASSERT_EQ(sup.log.size(), 1u);
    const ShardAttemptRecord& record = sup.log[0];
    EXPECT_EQ(record.outcome, "accepted");
    EXPECT_FALSE(record.killed);
    EXPECT_GE(record.start_seconds, 0.0);
    EXPECT_GE(record.end_seconds, record.start_seconds);
    EXPECT_LE(record.end_seconds, report.elapsed_seconds + 1.0);
  }

  std::map<std::string, int> by_name;
  for (const TraceEvent& event : recorder.events()) {
    EXPECT_EQ(event.pid, 1);
    ++by_name[event.name];
    if (event.name == "attempt") {
      EXPECT_EQ(event.phase, 'X');
      EXPECT_EQ(event.tid,
                static_cast<int>(event.args.at("shard").as_i64()) + 1);
      EXPECT_EQ(event.args.at("outcome").as_string(), "accepted");
      EXPECT_FALSE(event.args.at("killed").as_bool());
    }
  }
  EXPECT_EQ(by_name["attempt"], 2);
  EXPECT_EQ(by_name["launch"], 2);
  EXPECT_EQ(by_name["accept"], 2);
  EXPECT_EQ(by_name["sigkill"], 0);
}

TEST(SupervisorTelemetry, TimeoutKillSetsKilledAndEmitsSigkill) {
  SupervisedHarness harness(1);
  TraceRecorder recorder;
  SupervisorOptions options = harness.options();
  options.trace = &recorder;
  options.max_attempts = 1;
  options.speculate = false;
  options.base_timeout_seconds = 0.05;
  options.timeout_seconds_per_cost = 0.0;
  const WorkerCommand hang = [](const ShardAttemptContext&) {
    return std::vector<std::string>{"/bin/sh", "-c", "sleep 30"};
  };
  const SupervisorReport report =
      supervise_shards(harness.plan, options, hang);
  ASSERT_FALSE(report.all_completed());
  ASSERT_EQ(report.shards[0].log.size(), 1u);
  const ShardAttemptRecord& record = report.shards[0].log[0];
  EXPECT_TRUE(record.killed);
  EXPECT_NE(record.outcome.find("timeout"), std::string::npos);
  EXPECT_GT(record.end_seconds, record.start_seconds);

  bool saw_sigkill = false;
  bool saw_killed_span = false;
  for (const TraceEvent& event : recorder.events()) {
    if (event.name == "sigkill") saw_sigkill = true;
    if (event.name == "attempt" && event.args.at("killed").as_bool())
      saw_killed_span = true;
  }
  EXPECT_TRUE(saw_sigkill);
  EXPECT_TRUE(saw_killed_span);
}

}  // namespace
}  // namespace unilocal
