// Shared helpers for the test suite: a standard sweep of instance families
// and centralized reference solvers used to exercise the gluing property.
#pragma once

#include <string>
#include <vector>

#include "src/graph/generators.h"
#include "src/problems/matching.h"
#include "src/runtime/instance.h"

namespace unilocal {
namespace testing_support {

struct NamedInstance {
  std::string name;
  Instance instance;
};

/// A diverse sweep of small/medium instances across the families the paper's
/// Table 1 targets (general, bounded-degree, bounded-arboricity, adversarial
/// identity orderings).
inline std::vector<NamedInstance> standard_instances(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NamedInstance> result;
  auto add = [&result](std::string name, Graph g, IdentityScheme scheme,
                       std::uint64_t s) {
    result.push_back({std::move(name), make_instance(std::move(g), scheme, s)});
  };
  add("path-sorted-ids", path_graph(40), IdentityScheme::kSequential, 1);
  add("path-random-ids", path_graph(40), IdentityScheme::kRandomPermuted, 2);
  add("cycle", cycle_graph(41), IdentityScheme::kRandomPermuted, 3);
  add("clique", complete_graph(12), IdentityScheme::kRandomPermuted, 4);
  add("bipartite", complete_bipartite(6, 9), IdentityScheme::kRandomSparse, 5);
  add("grid", grid_graph(8, 7), IdentityScheme::kRandomPermuted, 6);
  add("hypercube", hypercube(5), IdentityScheme::kRandomPermuted, 7);
  add("gnp-sparse", gnp(90, 0.04, rng), IdentityScheme::kRandomPermuted, 8);
  add("gnp-dense", gnp(40, 0.25, rng), IdentityScheme::kRandomSparse, 9);
  add("bounded-deg-4", random_bounded_degree(100, 4, 0.9, rng),
      IdentityScheme::kRandomPermuted, 10);
  add("tree", random_tree(80, rng), IdentityScheme::kRandomPermuted, 11);
  add("forest", random_forest(70, 5, rng), IdentityScheme::kRandomSparse, 12);
  add("layered-forest-2", random_layered_forest(70, 2, rng),
      IdentityScheme::kRandomPermuted, 13);
  add("caterpillar", caterpillar(25, 30, rng), IdentityScheme::kRandomPermuted,
      14);
  add("isolated", Graph(7), IdentityScheme::kRandomPermuted, 15);
  add("singleton", Graph(1), IdentityScheme::kSequential, 16);
  add("empty", Graph(0), IdentityScheme::kSequential, 17);
  return result;
}

/// Centralized greedy MIS (reference solver for gluing tests).
inline std::vector<std::int64_t> central_mis(const Graph& g) {
  std::vector<std::int64_t> out(static_cast<std::size_t>(g.num_nodes()), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    bool blocked = false;
    for (NodeId u : g.neighbors(v)) {
      if (out[static_cast<std::size_t>(u)] != 0) blocked = true;
    }
    if (!blocked) out[static_cast<std::size_t>(v)] = 1;
  }
  return out;
}

/// Centralized greedy maximal matching in the paper's value encoding.
inline std::vector<std::int64_t> central_matching(const Instance& instance) {
  const Graph& g = instance.graph;
  std::vector<std::int64_t> out(static_cast<std::size_t>(g.num_nodes()));
  std::vector<bool> matched(static_cast<std::size_t>(g.num_nodes()), false);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    out[static_cast<std::size_t>(v)] =
        unmatched_value(instance.identities[static_cast<std::size_t>(v)]);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (matched[static_cast<std::size_t>(v)]) continue;
    for (NodeId u : g.neighbors(v)) {
      if (u > v && !matched[static_cast<std::size_t>(u)]) {
        const std::int64_t value =
            match_value(instance.identities[static_cast<std::size_t>(v)],
                        instance.identities[static_cast<std::size_t>(u)]);
        out[static_cast<std::size_t>(v)] = value;
        out[static_cast<std::size_t>(u)] = value;
        matched[static_cast<std::size_t>(v)] = true;
        matched[static_cast<std::size_t>(u)] = true;
        break;
      }
    }
  }
  return out;
}

}  // namespace testing_support
}  // namespace unilocal
