// Parameterized property sweeps (family x seed) over the full stack:
// transformer correctness, checker soundness/completeness, the paper's
// Section 6.2 message-size observation, and generalized (Section 6.1)
// pruning. Each property runs on every (family, seed) combination.
#include <gtest/gtest.h>

#include "src/algo/edge_color_mm.h"
#include "src/algo/greedy_mis.h"
#include "src/algo/hpartition.h"
#include "src/algo/luby.h"
#include "src/algo/mis_from_coloring.h"
#include "src/algo/ruling_set_mc.h"
#include "src/core/mc_to_lv.h"
#include "src/core/param.h"
#include "src/core/transformer.h"
#include "src/graph/generators.h"
#include "src/problems/checkers.h"
#include "src/problems/matching.h"
#include "src/problems/mis.h"
#include "src/problems/ruling_set.h"
#include "src/prune/matching_prune.h"
#include "src/prune/ruling_set_prune.h"
#include "src/prune/slowed_pruning.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

struct PropertyCase {
  std::string family;
  std::uint64_t seed;
};

Instance build_instance(const PropertyCase& c) {
  Rng rng(c.seed * 977 + 5);
  Graph g;
  if (c.family == "path") g = path_graph(90);
  else if (c.family == "cycle") g = cycle_graph(91);
  else if (c.family == "clique") g = complete_graph(14);
  else if (c.family == "grid") g = grid_graph(9, 9);
  else if (c.family == "gnp") g = gnp(100, 0.06, rng);
  else if (c.family == "tree") g = random_tree(95, rng);
  else if (c.family == "bounded-deg") g = random_bounded_degree(100, 5, 0.9, rng);
  else if (c.family == "star") g = complete_bipartite(1, 60);
  else g = hypercube(6);
  const auto scheme = c.seed % 2 == 0 ? IdentityScheme::kRandomPermuted
                                      : IdentityScheme::kRandomSparse;
  return make_instance(std::move(g), scheme, c.seed);
}

class PropertySweep : public ::testing::TestWithParam<PropertyCase> {};

std::vector<PropertyCase> all_cases() {
  std::vector<PropertyCase> cases;
  for (const char* family : {"path", "cycle", "clique", "grid", "gnp",
                             "tree", "bounded-deg", "star", "hypercube"}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      cases.push_back({family, seed});
    }
  }
  return cases;
}

TEST_P(PropertySweep, UniformMisSolvesAndChecksClean) {
  const Instance instance = build_instance(GetParam());
  const auto algorithm = make_coloring_mis();
  const RulingSetPruning pruning(1);
  const UniformRunResult result =
      run_uniform_transformer(instance, *algorithm, pruning);
  ASSERT_TRUE(result.solved);
  ASSERT_TRUE(is_maximal_independent_set(instance.graph, result.outputs));
  // The distributed checker must agree: no alarms anywhere.
  const auto checker = make_mis_checker();
  for (std::int64_t alarm : run_checker(instance, *checker, result.outputs))
    EXPECT_EQ(alarm, 0);
}

TEST_P(PropertySweep, UniformMatchingSolvesAndChecksClean) {
  const Instance instance = build_instance(GetParam());
  const auto algorithm = make_colored_matching();
  const MatchingPruning pruning;
  const UniformRunResult result =
      run_uniform_transformer(instance, *algorithm, pruning);
  ASSERT_TRUE(result.solved);
  ASSERT_TRUE(is_maximal_matching(instance.graph, result.outputs));
  const auto checker = make_matching_checker();
  for (std::int64_t alarm : run_checker(instance, *checker, result.outputs))
    EXPECT_EQ(alarm, 0);
}

TEST_P(PropertySweep, CheckerCatchesCorruption) {
  const Instance instance = build_instance(GetParam());
  if (instance.graph.num_edges() == 0) return;
  const auto mis = testing_support::central_mis(instance.graph);
  // Corrupt: flip the first member of the set to 0 (breaks maximality or
  // independence somewhere in its neighbourhood... specifically maximality
  // at itself unless a neighbour's neighbour covers it; flip a member with
  // a non-member neighbour of degree 1? Simpler: add an adjacent member).
  auto corrupted = mis;
  for (NodeId v = 0; v < instance.num_nodes(); ++v) {
    if (corrupted[static_cast<std::size_t>(v)] == 0 &&
        instance.graph.degree(v) > 0) {
      corrupted[static_cast<std::size_t>(v)] = 1;  // adjacent members now
      break;
    }
  }
  ASSERT_FALSE(is_maximal_independent_set(instance.graph, corrupted));
  const auto checker = make_mis_checker();
  std::int64_t alarms = 0;
  for (std::int64_t alarm : run_checker(instance, *checker, corrupted))
    alarms += alarm;
  EXPECT_GE(alarms, 1);
}

TEST_P(PropertySweep, ColoringCheckerSoundAndComplete) {
  const Instance instance = build_instance(GetParam());
  // A proper coloring: colors by identity (trivially proper, huge palette).
  std::vector<std::int64_t> coloring(
      static_cast<std::size_t>(instance.num_nodes()));
  for (NodeId v = 0; v < instance.num_nodes(); ++v)
    coloring[static_cast<std::size_t>(v)] =
        instance.identities[static_cast<std::size_t>(v)];
  const auto checker = make_coloring_checker();
  for (std::int64_t alarm : run_checker(instance, *checker, coloring))
    EXPECT_EQ(alarm, 0);
  if (instance.graph.num_edges() == 0) return;
  // Make two adjacent nodes share a color.
  const auto [u, v] = instance.graph.edges().front();
  coloring[static_cast<std::size_t>(u)] = coloring[static_cast<std::size_t>(v)];
  std::int64_t alarms = 0;
  for (std::int64_t alarm : run_checker(instance, *checker, coloring))
    alarms += alarm;
  EXPECT_GE(alarms, 2);  // both endpoints complain
}

TEST_P(PropertySweep, LasVegasRulingSetCorrectEverySeed) {
  const Instance instance = build_instance(GetParam());
  const auto algorithm = make_mc_ruling_set(2);
  const RulingSetPruning pruning(2);
  UniformRunOptions options;
  options.seed = GetParam().seed;
  const UniformRunResult result =
      run_las_vegas_transformer(instance, *algorithm, pruning, options);
  ASSERT_TRUE(result.solved);
  EXPECT_TRUE(is_two_beta_ruling_set(instance.graph, result.outputs, 2));
}

TEST_P(PropertySweep, MessageSizesStayConstant) {
  // Section 6.2: our catalogue only ever sends identities, colors, degrees
  // or flags — O(1) words per message — and the transformer does not
  // inflate messages (it only reruns the algorithm).
  const Instance instance = build_instance(GetParam());
  const auto mis = make_coloring_mis();
  const auto baseline = instantiate_with_correct_guesses(*mis, instance);
  EXPECT_LE(run_local(instance, *baseline).max_message_words, 4);
  EXPECT_LE(run_local(instance, LubyMis{}).max_message_words, 4);
  EXPECT_LE(run_local(instance, GreedyMis{}).max_message_words, 4);
  EXPECT_LE(run_local(instance, BetaLubyRulingSet{2}).max_message_words, 4);
  const auto matching = make_colored_matching();
  const auto matcher = instantiate_with_correct_guesses(*matching, instance);
  EXPECT_LE(run_local(instance, *matcher).max_message_words, 4);
}

TEST_P(PropertySweep, SlowedPruningStillCorrectAndAccounted) {
  const Instance instance = build_instance(GetParam());
  const auto algorithm = make_coloring_mis();
  auto base = std::make_shared<RulingSetPruning>(1);
  const SlowedPruning slowed(base, 7);
  const UniformRunResult fast =
      run_uniform_transformer(instance, *algorithm, *base);
  const UniformRunResult slow =
      run_uniform_transformer(instance, *algorithm, slowed);
  ASSERT_TRUE(slow.solved);
  EXPECT_TRUE(is_maximal_independent_set(instance.graph, slow.outputs));
  EXPECT_EQ(slow.total_rounds - fast.total_rounds,
            7 * static_cast<std::int64_t>(slow.trace.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Families, PropertySweep, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      std::string name = info.param.family + "_s" +
                         std::to_string(info.param.seed);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace unilocal
