// Theorem 3: weak domination. The arboricity MIS needs guesses for
// (a, n, m) but on families with a <= h(n) the wrapper eliminates `a`
// (and m via the permuted-identity relation m = n), leaving a uniform
// transformable algorithm — the paper's Corollary 4 situation.
#include <gtest/gtest.h>

#include <cmath>

#include "src/algo/arb_mis.h"
#include "src/core/transformer.h"
#include "src/core/weak_domination.h"
#include "src/graph/params.h"
#include "src/problems/mis.h"
#include "src/prune/ruling_set_prune.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

/// Family constraint for the test sweep: degeneracy proxy a satisfies
/// 2^a <= n (amply true for forests/grids at n >= 8).
Domination a_dominated_by_n() {
  return Domination{Param::kArboricity, Param::kNumNodes,
                    [](std::int64_t a) { return std::ldexp(1.0, int(a)); },
                    "2^a<=n"};
}

/// With permuted identities, m == n.
Domination m_dominated_by_n() {
  return Domination{Param::kMaxIdentity, Param::kNumNodes,
                    [](std::int64_t m) { return double(m); }, "m<=n"};
}

TEST(Theorem3, WrapperEliminatesParameters) {
  auto inner = std::shared_ptr<const NonUniformAlgorithm>(make_arb_mis());
  const auto wrapped = apply_weak_domination(
      inner, {a_dominated_by_n(), m_dominated_by_n()});
  EXPECT_EQ(wrapped->gamma(), ParamSet{Param::kNumNodes});
  EXPECT_EQ(wrapped->lambda(), ParamSet{Param::kNumNodes});
  EXPECT_EQ(wrapped->bound().arity(), 1u);
}

TEST(Theorem3, DerivedGuessesAreGood) {
  auto inner = std::shared_ptr<const NonUniformAlgorithm>(make_arb_mis());
  const auto wrapped = apply_weak_domination(
      inner, {a_dominated_by_n(), m_dominated_by_n()});
  // With n~ = 64 the derived arboricity guess is log2(64) = 6 and the
  // derived m~ is 64 itself.
  Rng rng(1);
  Instance instance = make_instance(random_tree(60, rng),
                                    IdentityScheme::kRandomPermuted, 2);
  const auto algorithm = wrapped->instantiate(std::vector<std::int64_t>{64});
  const RunResult result = run_local(instance, *algorithm);
  EXPECT_TRUE(result.all_finished);
  EXPECT_TRUE(is_maximal_independent_set(instance.graph, result.outputs));
}

TEST(Theorem3, UniformArbMisOnLowArboricityFamilies) {
  auto inner = std::shared_ptr<const NonUniformAlgorithm>(make_arb_mis());
  const auto wrapped = apply_weak_domination(
      inner, {a_dominated_by_n(), m_dominated_by_n()});
  const RulingSetPruning pruning(1);
  Rng rng(3);
  const std::vector<std::pair<std::string, Graph>> family = {
      {"tree", random_tree(120, rng)},
      {"forest", random_forest(100, 6, rng)},
      {"grid", grid_graph(10, 9)},
      {"layered-2", random_layered_forest(90, 2, rng)},
      {"caterpillar", caterpillar(30, 40, rng)},
  };
  for (const auto& [name, graph] : family) {
    Instance instance =
        make_instance(graph, IdentityScheme::kRandomPermuted, 7);
    ASSERT_LE(std::ldexp(1.0, int(degeneracy(instance.graph))),
              double(instance.num_nodes()))
        << name << ": family constraint violated";
    const UniformRunResult result =
        run_uniform_transformer(instance, *wrapped, pruning);
    EXPECT_TRUE(result.solved) << name;
    EXPECT_TRUE(is_maximal_independent_set(instance.graph, result.outputs))
        << name;
  }
}

TEST(Theorem3, FoldedBoundDominatesInnerBound) {
  auto inner_owned = make_arb_mis();
  auto inner = std::shared_ptr<const NonUniformAlgorithm>(std::move(inner_owned));
  const auto wrapped = apply_weak_domination(
      inner, {a_dominated_by_n(), m_dominated_by_n()});
  Rng rng(4);
  Instance instance = make_instance(random_tree(200, rng),
                                    IdentityScheme::kRandomPermuted, 5);
  // f'(n*) >= f(a*, n*, m*): folding uses the worst a consistent with n.
  const double folded = bound_at_correct_params(*wrapped, instance);
  const double direct = bound_at_correct_params(*inner, instance);
  EXPECT_GE(folded, direct);
}

TEST(Theorem3, RejectsNonAdditiveOrMismatchedInner) {
  class Fake final : public NonUniformAlgorithm {
   public:
    std::string name() const override { return "fake"; }
    ParamSet gamma() const override {
      return {Param::kNumNodes, Param::kMaxDegree};
    }
    ParamSet lambda() const override { return {Param::kNumNodes}; }
    const RuntimeBound& bound() const override { return bound_; }
    std::unique_ptr<Algorithm> instantiate(
        std::span<const std::int64_t>) const override {
      return nullptr;
    }
    AdditiveBound bound_{
        {BoundComponent{"n", [](std::int64_t n) { return double(n); }}}};
  };
  EXPECT_THROW(apply_weak_domination(std::make_shared<Fake>(), {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace unilocal
