#include <gtest/gtest.h>

#include "src/algo/greedy_mis.h"
#include "src/algo/luby.h"
#include "src/algo/mis_from_coloring.h"
#include "src/core/param.h"
#include "src/problems/mis.h"
#include "src/runtime/runner.h"
#include "src/util/math.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

using testing_support::standard_instances;

TEST(LubyMis, ValidOnStandardSweep) {
  for (const auto& [name, instance] : standard_instances(200)) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      RunOptions options;
      options.seed = seed;
      const RunResult result = run_local(instance, LubyMis{}, options);
      EXPECT_TRUE(result.all_finished) << name;
      EXPECT_TRUE(is_maximal_independent_set(instance.graph, result.outputs))
          << name << " seed " << seed;
    }
  }
}

TEST(LubyMis, LogarithmicRoundsOnGnp) {
  Rng rng(1);
  Instance instance =
      make_instance(gnp(600, 0.02, rng), IdentityScheme::kRandomPermuted, 2);
  const RunResult result = run_local(instance, LubyMis{});
  EXPECT_TRUE(result.all_finished);
  // 2 rounds per phase; a generous w.h.p. phase bound.
  EXPECT_LE(result.rounds_used, 2 * (6 * clog2(600) + 8));
}

TEST(GreedyMis, ValidOnStandardSweep) {
  for (const auto& [name, instance] : standard_instances(201)) {
    const RunResult result = run_local(instance, GreedyMis{});
    EXPECT_TRUE(result.all_finished) << name;
    EXPECT_TRUE(is_maximal_independent_set(instance.graph, result.outputs))
        << name;
  }
}

TEST(GreedyMis, AdversarialPathIsLinear) {
  // Sorted identities along a path force sequential progress.
  Instance instance = make_instance(path_graph(60), IdentityScheme::kSequential);
  const RunResult result = run_local(instance, GreedyMis{});
  EXPECT_TRUE(result.all_finished);
  EXPECT_GE(result.rounds_used, 50);  // Theta(n) behaviour
  EXPECT_TRUE(is_maximal_independent_set(instance.graph, result.outputs));
}

TEST(GreedyMis, DeclaredBoundHolds) {
  const auto wrapped = make_global_mis();
  for (const auto& [name, instance] : standard_instances(202)) {
    const auto algorithm = instantiate_with_correct_guesses(*wrapped, instance);
    const RunResult result = run_local(instance, *algorithm);
    EXPECT_TRUE(result.all_finished) << name;
    EXPECT_LE(static_cast<double>(result.rounds_used),
              bound_at_correct_params(*wrapped, instance))
        << name;
  }
}

TEST(TruncatedLuby, ArbitraryOutputsAtBudget) {
  Instance instance = make_instance(cycle_graph(30));
  auto truncated = TruncatedAlgorithm(std::make_shared<LubyMis>(), 2, 0);
  const RunResult result = run_local(instance, truncated);
  EXPECT_TRUE(result.all_finished);
  EXPECT_LE(result.rounds_used, 3);
}

TEST(TruncatedLuby, WeakMonteCarloGuaranteeEmpirically) {
  // With the declared budget, the truncated run should produce a valid MIS
  // well over half the time (the Theorem 2 guarantee rho = 1/2).
  const auto mc = make_truncated_luby_mis();
  Rng rng(5);
  Instance instance =
      make_instance(gnp(200, 0.05, rng), IdentityScheme::kRandomPermuted, 7);
  const auto algorithm = instantiate_with_correct_guesses(*mc, instance);
  int successes = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    RunOptions options;
    options.seed = 1000 + static_cast<std::uint64_t>(t);
    const RunResult result = run_local(instance, *algorithm, options);
    successes +=
        is_maximal_independent_set(instance.graph, result.outputs) ? 1 : 0;
  }
  EXPECT_GE(successes, trials / 2);
}

TEST(TruncatedLuby, BudgetMatchesDeclaredBound) {
  const auto mc = make_truncated_luby_mis();
  Instance instance = make_instance(cycle_graph(100));
  const auto algorithm = instantiate_with_correct_guesses(*mc, instance);
  const RunResult result = run_local(instance, *algorithm);
  EXPECT_TRUE(result.all_finished);
  EXPECT_LE(static_cast<double>(result.rounds_used),
            bound_at_correct_params(*mc, instance));
}

TEST(ColoringMis, ValidWithCorrectGuesses) {
  const auto wrapped = make_coloring_mis();
  for (const auto& [name, instance] : standard_instances(203)) {
    const auto algorithm = instantiate_with_correct_guesses(*wrapped, instance);
    const RunResult result = run_local(instance, *algorithm);
    EXPECT_TRUE(result.all_finished) << name;
    EXPECT_TRUE(is_maximal_independent_set(instance.graph, result.outputs))
        << name;
    EXPECT_LE(static_cast<double>(result.rounds_used),
              bound_at_correct_params(*wrapped, instance))
        << name;
  }
}

TEST(ColoringMis, ValidWithOverestimatedGuesses) {
  const auto wrapped = make_coloring_mis();
  Rng rng(2);
  Instance instance =
      make_instance(gnp(80, 0.06, rng), IdentityScheme::kRandomPermuted, 3);
  auto guesses = correct_guesses(wrapped->gamma(), instance);
  for (auto& g : guesses) g *= 4;  // good but loose guesses stay correct
  const auto algorithm = wrapped->instantiate(guesses);
  const RunResult result = run_local(instance, *algorithm);
  EXPECT_TRUE(result.all_finished);
  EXPECT_TRUE(is_maximal_independent_set(instance.graph, result.outputs));
}

TEST(ColoringMis, RoundsScaleWithDeltaNotN) {
  const auto wrapped = make_coloring_mis();
  Rng rng(3);
  Instance small = make_instance(random_bounded_degree(100, 4, 0.9, rng),
                                 IdentityScheme::kRandomPermuted, 4);
  Instance large = make_instance(random_bounded_degree(800, 4, 0.9, rng),
                                 IdentityScheme::kRandomPermuted, 5);
  const auto algo_small = instantiate_with_correct_guesses(*wrapped, small);
  const auto algo_large = instantiate_with_correct_guesses(*wrapped, large);
  const auto r_small = run_local(small, *algo_small);
  const auto r_large = run_local(large, *algo_large);
  EXPECT_TRUE(is_maximal_independent_set(small.graph, r_small.outputs));
  EXPECT_TRUE(is_maximal_independent_set(large.graph, r_large.outputs));
  // Same Delta: 8x the nodes should cost well under 2x the rounds.
  EXPECT_LE(r_large.rounds_used, 2 * r_small.rounds_used);
}

}  // namespace
}  // namespace unilocal
