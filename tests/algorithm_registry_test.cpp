// The algorithm registry: the full pipeline zoo is registered with valid
// problem keys and scenario hints, every entry solves + validates on its
// own Table 1 families, per-cell outputs stay bit-identical across campaign
// worker counts and the large-cell engine-thread policy, and the
// registration / selection error paths fire.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "src/runtime/algorithm_registry.h"
#include "src/runtime/campaign.h"

namespace unilocal {
namespace {

TEST(AlgorithmRegistry, ExposesThePipelineZoo) {
  const AlgorithmRegistry& registry = default_algorithm_registry();
  EXPECT_GE(registry.names().size(), 18u);
  for (const char* name :
       {"mis-uniform", "mis-global-uniform", "mis-fastest",
        "mis-fastest-arb", "arb-mis", "mis-lv", "luby-mis",
        "coloring-theorem5", "coloring-theorem5-lambda4", "arb-coloring",
        "product-coloring", "linial-coloring", "dplus1-coloring",
        "lambda4-coloring", "color-reduce", "cole-vishkin",
        "matching-uniform", "rulingset2-lv", "rulingset3-lv"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  const ScenarioRegistry& scenarios = default_scenarios();
  for (const std::string& name : registry.names()) {
    const AlgorithmSpec& spec = registry.spec(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.describe.empty()) << name;
    EXPECT_FALSE(spec.problem.empty()) << name;
    // The validator resolved at registration time.
    EXPECT_FALSE(registry.problem(name).name().empty()) << name;
    // Every Table 1 scenario hint is a real scenario-registry key.
    EXPECT_FALSE(spec.table1_scenarios.empty()) << name;
    for (const std::string& scenario : spec.table1_scenarios)
      EXPECT_TRUE(scenarios.contains(scenario)) << name << '/' << scenario;
  }
}

TEST(AlgorithmRegistry, KnobsAreRecorded) {
  const AlgorithmRegistry& registry = default_algorithm_registry();
  EXPECT_EQ(registry.spec("rulingset2-lv").knobs.at("beta"), 2.0);
  EXPECT_EQ(registry.spec("rulingset3-lv").knobs.at("beta"), 3.0);
  EXPECT_EQ(registry.spec("coloring-theorem5").knobs.at("lambda"), 1.0);
  EXPECT_EQ(registry.spec("coloring-theorem5-lambda4").knobs.at("lambda"),
            4.0);
}

TEST(AlgorithmRegistry, RejectsBadRegistrations) {
  AlgorithmRegistry registry;
  const auto noop = [](const Instance& instance,
                       const AlgorithmRunContext&) {
    return CellOutcome{
        std::vector<std::int64_t>(
            static_cast<std::size_t>(instance.num_nodes()), 0),
        0, false, EngineStats{}};
  };
  registry.add({"ok", "mis", "fine", {}, {}, noop});
  // Duplicate names, unknown problem keys, empty names, and missing
  // factories are registration errors, not latent campaign failures.
  EXPECT_THROW(registry.add({"ok", "mis", "", {}, {}, noop}),
               std::runtime_error);
  EXPECT_THROW(registry.add({"bad-problem", "no-such-problem", "", {}, {},
                             noop}),
               std::runtime_error);
  EXPECT_THROW(registry.add({"", "mis", "", {}, {}, noop}),
               std::runtime_error);
  EXPECT_THROW(registry.add({"no-factory", "mis", "", {}, {}, nullptr}),
               std::runtime_error);
}

TEST(AlgorithmRegistry, UnknownKeysThrow) {
  const AlgorithmRegistry& registry = default_algorithm_registry();
  EXPECT_FALSE(registry.contains("no-such-algorithm"));
  EXPECT_THROW(registry.spec("no-such-algorithm"), std::runtime_error);
  EXPECT_THROW(registry.problem("no-such-algorithm"), std::runtime_error);
  Instance instance;
  EXPECT_THROW(registry.run("no-such-algorithm", instance, {}),
               std::runtime_error);
}

TEST(AlgorithmRegistry, GlobMatching) {
  EXPECT_TRUE(algorithm_key_glob_match("mis-*", "mis-uniform"));
  EXPECT_TRUE(algorithm_key_glob_match("*-lv", "rulingset2-lv"));
  EXPECT_TRUE(algorithm_key_glob_match("*", ""));
  EXPECT_TRUE(algorithm_key_glob_match("rulingset?-lv", "rulingset3-lv"));
  EXPECT_FALSE(algorithm_key_glob_match("mis-*", "luby-mis"));
  EXPECT_FALSE(algorithm_key_glob_match("rulingset?-lv", "rulingset22-lv"));
}

TEST(AlgorithmRegistry, ResolvesPatterns) {
  const AlgorithmRegistry& registry = default_algorithm_registry();
  EXPECT_EQ(registry.resolve({"all"}), registry.names());
  const auto mis = registry.resolve({"mis-*"});
  EXPECT_GE(mis.size(), 5u);
  for (const std::string& name : mis)
    EXPECT_EQ(name.rfind("mis-", 0), 0u) << name;
  // Duplicates collapse; exact names pass through.
  EXPECT_EQ(registry.resolve({"mis-uniform", "mis-uniform"}),
            std::vector<std::string>{"mis-uniform"});
  // Every pattern that selects nothing lands in one error.
  try {
    registry.resolve({"mis-uniform", "nope-*", "also-missing"});
    FAIL() << "expected resolve to throw";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("nope-*"), std::string::npos) << message;
    EXPECT_NE(message.find("also-missing"), std::string::npos) << message;
  }
}

TEST(MakeGrid, ReportsAllUnknownKeysInOneError) {
  ScenarioParams params;
  params.n = 20;
  try {
    make_grid({"gnp", "no-such-family", "also-bad"}, params,
              {"mis-uniform", "no-such-algo"}, 1);
    FAIL() << "expected make_grid to throw";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("no-such-family"), std::string::npos) << message;
    EXPECT_NE(message.find("also-bad"), std::string::npos) << message;
    EXPECT_NE(message.find("no-such-algo"), std::string::npos) << message;
  }
  // Opt-out for grids aimed at a registry assembled later.
  GridOptions no_validation;
  no_validation.validate = false;
  EXPECT_EQ(make_grid({"no-such-family"}, params, {"no-such-algo"}, 1,
                      no_validation)
                .size(),
            1u);
}

TEST(MakeGrid, ValidateCellsCollectsUnknownKeys) {
  CampaignCell good;
  good.scenario = "gnp";
  good.algorithm = "mis-uniform";
  CampaignCell bad;
  bad.scenario = "no-such-family";
  bad.algorithm = "no-such-algo";
  EXPECT_NO_THROW(validate_cells({good}, default_scenarios(),
                                 default_algorithm_registry()));
  try {
    validate_cells({good, bad}, default_scenarios(),
                   default_algorithm_registry());
    FAIL() << "expected validate_cells to throw";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("no-such-family"), std::string::npos) << message;
    EXPECT_NE(message.find("no-such-algo"), std::string::npos) << message;
  }
}

TEST(MakeTable1Grid, CrossesEveryEntryWithItsOwnFamilies) {
  ScenarioParams params;
  params.n = 30;
  const auto cells = make_table1_grid(params, 2);
  const AlgorithmRegistry& registry = default_algorithm_registry();
  std::size_t expected = 0;
  for (const std::string& name : registry.names())
    expected += 2 * registry.spec(name).table1_scenarios.size();
  EXPECT_EQ(cells.size(), expected);
  for (const CampaignCell& cell : cells) {
    const auto& hints = registry.spec(cell.algorithm).table1_scenarios;
    EXPECT_NE(std::find(hints.begin(), hints.end(), cell.scenario),
              hints.end())
        << cell.algorithm << '/' << cell.scenario;
  }
}

// The conformance sweep: every registered algorithm, on its own Table 1
// families, solves, passes its centralized checker, and produces
// bit-identical per-cell outputs for 1 vs 4 campaign workers.
TEST(AlgorithmRegistry, ConformanceAcrossWorkerCounts) {
  ScenarioParams params;
  params.n = 48;
  const auto cells = make_table1_grid(params, 1, {.base_seed = 5});
  ASSERT_GE(cells.size(), default_algorithm_registry().names().size());

  CampaignOptions options;
  options.keep_outputs = true;
  options.workers = 1;
  const CampaignResult sequential = run_campaign(cells, options);
  ASSERT_EQ(sequential.cells.size(), cells.size());
  for (const CellResult& cell : sequential.cells) {
    EXPECT_TRUE(cell.error.empty())
        << cell.cell.algorithm << '/' << cell.cell.scenario << ": "
        << cell.error;
    EXPECT_TRUE(cell.solved)
        << cell.cell.algorithm << '/' << cell.cell.scenario;
    EXPECT_TRUE(cell.valid)
        << cell.cell.algorithm << '/' << cell.cell.scenario;
  }

  options.workers = 4;
  const CampaignResult parallel = run_campaign(cells, options);
  ASSERT_EQ(parallel.cells.size(), sequential.cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(parallel.cells[i].outputs, sequential.cells[i].outputs)
        << cells[i].algorithm << '/' << cells[i].scenario;
    EXPECT_EQ(parallel.cells[i].output_hash, sequential.cells[i].output_hash);
    EXPECT_EQ(parallel.cells[i].rounds, sequential.cells[i].rounds);
  }
}

TEST(Campaign, LargeCellEngineThreadsPreserveOutputs) {
  ScenarioParams params;
  params.n = 64;
  const auto cells =
      make_grid({"gnp", "layered-forest"}, params,
                {"mis-uniform", "arb-mis", "coloring-theorem5", "luby-mis"},
                1, 3);
  CampaignOptions options;
  options.keep_outputs = true;
  const CampaignResult plain = run_campaign(cells, options);
  // Threshold 1 forces every cell through the multi-threaded engine path;
  // thread-count invariance keeps the outputs bit-identical.
  options.engine_threads_for_large_cells = 4;
  options.large_cell_node_threshold = 1;
  options.workers = 2;
  const CampaignResult threaded = run_campaign(cells, options);
  ASSERT_EQ(threaded.cells.size(), plain.cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_TRUE(threaded.cells[i].error.empty()) << threaded.cells[i].error;
    EXPECT_EQ(threaded.cells[i].outputs, plain.cells[i].outputs)
        << cells[i].algorithm << '/' << cells[i].scenario;
    EXPECT_EQ(threaded.cells[i].output_hash, plain.cells[i].output_hash);
  }
}

TEST(AlgorithmRegistry, ColeVishkinReportsUnsolvedOffFamily) {
  // A cycle is not a forest: the entry must refuse (unsolved) instead of
  // handing the checker an improper coloring.
  CampaignCell cell;
  cell.scenario = "cycle";
  cell.params.n = 12;
  cell.algorithm = "cole-vishkin";
  const CampaignResult result = run_campaign({cell}, {});
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_TRUE(result.cells[0].error.empty()) << result.cells[0].error;
  EXPECT_FALSE(result.cells[0].solved);
  EXPECT_FALSE(result.cells[0].valid);
}

}  // namespace
}  // namespace unilocal
