// The append-only campaign run-log: grid hashing, JSON-line round trip,
// and baseline comparison for perf-regression diffing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/runtime/campaign.h"
#include "src/runtime/run_log.h"

namespace unilocal {
namespace {

class RunLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "unilocal_run_log_test.jsonl";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

CampaignResult tiny_campaign(std::uint64_t base_seed = 1) {
  ScenarioParams params;
  params.n = 24;
  GridOptions grid;
  grid.base_seed = base_seed;
  const auto cells =
      make_grid({"path", "cycle"}, params, {"mis-uniform"}, 1, grid);
  return run_campaign(cells, {});
}

TEST_F(RunLogTest, GridHashIdentifiesTheGridNotTheOutcome) {
  const CampaignResult a = tiny_campaign();
  const CampaignResult b = tiny_campaign();
  EXPECT_EQ(campaign_grid_hash(a), campaign_grid_hash(b));
  // A different seed is a different grid.
  const CampaignResult c = tiny_campaign(9);
  EXPECT_NE(campaign_grid_hash(a), campaign_grid_hash(c));
}

TEST_F(RunLogTest, AppendsOneParseableLinePerRun) {
  const CampaignResult result = tiny_campaign();
  append_run_log(path_, result);
  append_run_log(path_, result);
  const auto entries = read_run_log(path_);
  ASSERT_EQ(entries.size(), 2u);
  for (const RunLogEntry& entry : entries) {
    EXPECT_EQ(entry.grid_hash, campaign_grid_hash(result));
    EXPECT_EQ(entry.cells, static_cast<int>(result.cells.size()));
    EXPECT_EQ(entry.solved, result.solved);
    EXPECT_EQ(entry.valid, result.valid);
    EXPECT_EQ(entry.failed, result.failed);
    EXPECT_EQ(entry.workers, result.workers);
    EXPECT_DOUBLE_EQ(entry.rounds.p50, result.rounds.p50);
    EXPECT_DOUBLE_EQ(entry.rounds.max, result.rounds.max);
    EXPECT_DOUBLE_EQ(entry.messages.p90, result.messages.p90);
    // Frontier telemetry blocks ride along.
    EXPECT_DOUBLE_EQ(entry.peak_live_nodes.max, result.peak_live_nodes.max);
    EXPECT_DOUBLE_EQ(entry.peak_frontier_nodes.p50,
                     result.peak_frontier_nodes.p50);
    EXPECT_DOUBLE_EQ(entry.dirty_spans_cleared.p99,
                     result.dirty_spans_cleared.p99);
    // ISO-8601 UTC stamp.
    ASSERT_EQ(entry.date.size(), 20u) << entry.date;
    EXPECT_EQ(entry.date[10], 'T');
    EXPECT_EQ(entry.date.back(), 'Z');
  }
}

TEST_F(RunLogTest, ToleratesEntriesWithoutTelemetryBlocks) {
  // A line from before the telemetry percentiles existed still parses —
  // the missing blocks read as zero.
  {
    std::ofstream out(path_);
    out << "{\"date\":\"2026-01-01T00:00:00Z\",\"grid_hash\":\"42\","
           "\"workers\":1,\"cells\":2,\"solved\":2,\"valid\":2,\"failed\":0,"
           "\"elapsed_seconds\":0.5,\"cells_per_second\":4,"
           "\"rounds\":{\"p50\":3,\"p90\":3,\"p99\":4,\"max\":4},"
           "\"messages\":{\"p50\":10,\"p90\":11,\"p99\":12,\"max\":12},"
           "\"steps_per_second\":{\"p50\":1,\"p90\":1,\"p99\":1,\"max\":1}}"
        << "\n";
  }
  const auto entries = read_run_log(path_);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].grid_hash, 42u);
  EXPECT_DOUBLE_EQ(entries[0].rounds.max, 4.0);
  EXPECT_DOUBLE_EQ(entries[0].peak_live_nodes.max, 0.0);
  EXPECT_DOUBLE_EQ(entries[0].dirty_spans_cleared.p50, 0.0);
}

TEST_F(RunLogTest, SupervisionBlockRoundTripsAndIsOmittedWhenUnsupervised) {
  // Unsupervised campaign: no supervision block on the line, zeros back.
  const CampaignResult plain = tiny_campaign();
  append_run_log(path_, plain);
  // Supervised campaign: the block round-trips.
  CampaignResult supervised = tiny_campaign();
  supervised.supervision.enabled = true;
  supervised.supervision.shards = 4;
  supervised.supervision.attempts = 7;
  supervised.supervision.retries = 2;
  supervised.supervision.requeues = 3;
  supervised.supervision.stragglers_respawned = 1;
  supervised.supervision.shards_from_journal = 2;
  supervised.supervision.shards_failed = 0;
  supervised.supervision.attempt_seconds =
      campaign_percentiles({0.5, 1.5, 2.5, 4.0});
  append_run_log(path_, supervised);
  const auto entries = read_run_log(path_);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].supervision_shards, 0);
  EXPECT_EQ(entries[0].supervision_attempts, 0);
  EXPECT_EQ(entries[1].supervision_shards, 4);
  EXPECT_EQ(entries[1].supervision_attempts, 7);
  EXPECT_EQ(entries[1].supervision_retries, 2);
  EXPECT_EQ(entries[1].supervision_requeues, 3);
  EXPECT_EQ(entries[1].supervision_stragglers_respawned, 1);
  EXPECT_EQ(entries[1].supervision_shards_from_journal, 2);
  EXPECT_DOUBLE_EQ(entries[1].supervision_attempt_seconds.max, 4.0);
  EXPECT_DOUBLE_EQ(entries[1].supervision_attempt_seconds.p50, 1.5);
}

TEST_F(RunLogTest, CompareFindsTheLatestMatchingBaseline) {
  const CampaignResult result = tiny_campaign();
  // Empty/missing log: nothing to compare against.
  EXPECT_FALSE(compare_run_log(path_, result).found);
  append_run_log(path_, result);
  const RunLogComparison comparison = compare_run_log(path_, result);
  ASSERT_TRUE(comparison.found);
  EXPECT_DOUBLE_EQ(comparison.rounds_p50_ratio, 1.0);
  EXPECT_DOUBLE_EQ(comparison.messages_p50_ratio, 1.0);
  // A different grid never matches, even with entries present.
  EXPECT_FALSE(compare_run_log(path_, tiny_campaign(9)).found);
}

TEST_F(RunLogTest, SkipsMalformedLines) {
  const CampaignResult result = tiny_campaign();
  {
    std::ofstream out(path_);
    out << "not json at all\n{\"date\":\"truncated\n";
  }
  append_run_log(path_, result);
  const auto entries = read_run_log(path_);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].grid_hash, campaign_grid_hash(result));
  // Reading a missing file is empty, not an error.
  EXPECT_TRUE(read_run_log(path_ + ".missing").empty());
}

}  // namespace
}  // namespace unilocal
