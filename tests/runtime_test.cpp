#include <gtest/gtest.h>

#include <algorithm>

#include "src/graph/generators.h"
#include "src/graph/params.h"
#include "src/runtime/chain.h"
#include "src/runtime/instance.h"
#include "src/runtime/runner.h"

namespace unilocal {
namespace {

/// Finishes immediately with the node degree.
class DegreeEcho final : public Algorithm {
 public:
  class P final : public Process {
   public:
    void step(Context& ctx) override { ctx.finish(ctx.degree()); }
  };
  std::unique_ptr<Process> spawn(const NodeInit&) const override {
    return std::make_unique<P>();
  }
  std::string name() const override { return "degree-echo"; }
};

/// Floods the maximum identity for `rounds` rounds, then outputs it.
class MaxFlood final : public Algorithm {
 public:
  explicit MaxFlood(std::int64_t rounds) : rounds_(rounds) {}
  class P final : public Process {
   public:
    explicit P(std::int64_t rounds) : rounds_(rounds) {}
    void step(Context& ctx) override {
      if (ctx.round() == 0) best_ = ctx.id();
      for (NodeId j = 0; j < ctx.degree(); ++j) {
        const Message* m = ctx.received(j);
        if (m != nullptr) best_ = std::max(best_, (*m)[0]);
      }
      if (ctx.round() >= rounds_) {
        ctx.finish(best_);
        return;
      }
      ctx.broadcast({best_});
    }

   private:
    std::int64_t rounds_;
    std::int64_t best_ = 0;
  };
  std::unique_ptr<Process> spawn(const NodeInit&) const override {
    return std::make_unique<P>(rounds_);
  }
  std::string name() const override { return "max-flood"; }

 private:
  std::int64_t rounds_;
};

/// Never finishes; sends nothing.
class Stubborn final : public Algorithm {
 public:
  class P final : public Process {
   public:
    void step(Context&) override {}
  };
  std::unique_ptr<Process> spawn(const NodeInit&) const override {
    return std::make_unique<P>();
  }
  std::string name() const override { return "stubborn"; }
};

/// Outputs one private random draw (tests per-node stream determinism).
class RandomEcho final : public Algorithm {
 public:
  class P final : public Process {
   public:
    void step(Context& ctx) override {
      ctx.finish(static_cast<std::int64_t>(ctx.rng().next() >> 3));
    }
  };
  std::unique_ptr<Process> spawn(const NodeInit&) const override {
    return std::make_unique<P>();
  }
  std::string name() const override { return "random-echo"; }
};

/// Adds a constant to input[0] and finishes after one round.
class AddConst final : public Algorithm {
 public:
  explicit AddConst(std::int64_t delta) : delta_(delta) {}
  class P final : public Process {
   public:
    explicit P(std::int64_t d) : delta_(d) {}
    void step(Context& ctx) override {
      ctx.finish((ctx.input().empty() ? 0 : ctx.input()[0]) + delta_);
    }

   private:
    std::int64_t delta_;
  };
  std::unique_ptr<Process> spawn(const NodeInit&) const override {
    return std::make_unique<P>(delta_);
  }
  std::string name() const override { return "add-const"; }

 private:
  std::int64_t delta_;
};

/// Runs until round input[0], sending one word per round until then — a
/// controllable straggler tail for the live/frontier observability tests.
class InputCountdown final : public Algorithm {
 public:
  class P final : public Process {
   public:
    void step(Context& ctx) override {
      const std::int64_t deadline = ctx.input().empty() ? 0 : ctx.input()[0];
      if (ctx.round() >= deadline) {
        ctx.finish(ctx.round());
        return;
      }
      ctx.broadcast({ctx.round()});
    }
  };
  std::unique_ptr<Process> spawn(const NodeInit&) const override {
    return std::make_unique<P>();
  }
  std::string name() const override { return "input-countdown"; }
};

TEST(Runner, ImmediateFinish) {
  Instance instance = make_instance(cycle_graph(10));
  const RunResult result = run_local(instance, DegreeEcho{});
  EXPECT_TRUE(result.all_finished);
  EXPECT_EQ(result.rounds_used, 1);
  for (std::int64_t out : result.outputs) EXPECT_EQ(out, 2);
}

TEST(Runner, EmptyGraph) {
  Instance instance = make_instance(Graph(0));
  const RunResult result = run_local(instance, DegreeEcho{});
  EXPECT_TRUE(result.all_finished);
  EXPECT_EQ(result.rounds_used, 0);
}

TEST(Runner, FloodingReachesDiameter) {
  Instance instance = make_instance(path_graph(9), IdentityScheme::kSequential);
  // Identity 9 sits at one end; 8 rounds of flooding reach everyone.
  const RunResult result = run_local(instance, MaxFlood{8});
  EXPECT_TRUE(result.all_finished);
  for (std::int64_t out : result.outputs) EXPECT_EQ(out, 9);
  EXPECT_EQ(result.rounds_used, 9);
}

TEST(Runner, FloodingLimitedByRadius) {
  Instance instance = make_instance(path_graph(9), IdentityScheme::kSequential);
  const RunResult result = run_local(instance, MaxFlood{3});
  // Node 0 (slot 0) only sees identities within distance 3.
  EXPECT_EQ(result.outputs[0], 4);
}

TEST(Runner, TruncationForcesDefaultOutput) {
  Instance instance = make_instance(cycle_graph(6));
  RunOptions options;
  options.max_rounds = 5;
  options.default_output = -7;
  const RunResult result = run_local(instance, Stubborn{}, options);
  EXPECT_FALSE(result.all_finished);
  for (std::int64_t out : result.outputs) EXPECT_EQ(out, -7);
  for (std::int64_t r : result.finish_rounds) EXPECT_EQ(r, 5);
  EXPECT_EQ(result.rounds_used, 5);
}

TEST(Runner, PerNodeRandomnessDeterministicInSeed) {
  Instance instance = make_instance(cycle_graph(12), IdentityScheme::kRandomPermuted, 3);
  RunOptions options;
  options.seed = 99;
  const RunResult a = run_local(instance, RandomEcho{}, options);
  const RunResult b = run_local(instance, RandomEcho{}, options);
  EXPECT_EQ(a.outputs, b.outputs);
  options.seed = 100;
  const RunResult c = run_local(instance, RandomEcho{}, options);
  EXPECT_NE(a.outputs, c.outputs);
  // Distinct nodes get distinct streams.
  EXPECT_NE(a.outputs[0], a.outputs[1]);
}

TEST(Runner, MessageStatsCounted) {
  Instance instance = make_instance(cycle_graph(5));
  const RunResult result = run_local(instance, MaxFlood{2});
  EXPECT_EQ(result.messages_sent, 5 * 2 * 2);  // 5 nodes, 2 rounds, 2 ports
  EXPECT_EQ(result.max_message_words, 1);
}

TEST(RunnerStats, LiveAndFrontierCounters) {
  // One straggler (node 0) outlives everyone by dozens of rounds: the
  // engine must report the full-width peak, an empty finish, and non-zero
  // lazy span-clearing work for the sparse tail rounds.
  Instance instance =
      make_instance(path_graph(40), IdentityScheme::kSequential);
  for (NodeId v = 0; v < 40; ++v)
    instance.inputs[static_cast<std::size_t>(v)] = {2};
  instance.inputs[0] = {30};
  const RunResult result = run_local(instance, InputCountdown{});
  EXPECT_TRUE(result.all_finished);
  EXPECT_EQ(result.stats.peak_live_nodes, 40);
  EXPECT_EQ(result.stats.peak_frontier_nodes, 40);
  EXPECT_EQ(result.stats.final_live_nodes, 0);
  EXPECT_GT(result.stats.dirty_spans_cleared, 0);
  EXPECT_EQ(result.stats.total_steps, 39 * 3 + 31);
}

TEST(RunnerStats, SynchronizerFrontierCounters) {
  // Under the synchronizer the frontier is the eligible set: with node 0
  // asleep until round 10 it never reaches full width, and the history
  // arena does no dirty-span clearing at all.
  Instance instance =
      make_instance(path_graph(40), IdentityScheme::kSequential);
  for (NodeId v = 0; v < 40; ++v)
    instance.inputs[static_cast<std::size_t>(v)] = {3};
  RunOptions options;
  options.wake_rounds.assign(40, 0);
  options.wake_rounds[0] = 10;
  const RunResult result = run_local(instance, InputCountdown{}, options);
  EXPECT_TRUE(result.all_finished);
  EXPECT_EQ(result.stats.peak_live_nodes, 40);
  EXPECT_GT(result.stats.peak_frontier_nodes, 0);
  EXPECT_LT(result.stats.peak_frontier_nodes, 40);
  EXPECT_EQ(result.stats.final_live_nodes, 0);
  EXPECT_EQ(result.stats.dirty_spans_cleared, 0);
  EXPECT_GE(result.global_rounds, 10);
}

TEST(RunnerStats, StatsMergeFoldsLiveCounters) {
  EngineStats a;
  a.peak_live_nodes = 10;
  a.peak_frontier_nodes = 4;
  a.final_live_nodes = 2;
  a.dirty_spans_cleared = 7;
  EngineStats b;
  b.peak_live_nodes = 6;
  b.peak_frontier_nodes = 9;
  b.final_live_nodes = 0;
  b.dirty_spans_cleared = 5;
  a.merge(b);
  EXPECT_EQ(a.peak_live_nodes, 10);
  EXPECT_EQ(a.peak_frontier_nodes, 9);
  EXPECT_EQ(a.final_live_nodes, 0);  // last merged stage wins
  EXPECT_EQ(a.dirty_spans_cleared, 12);
}

TEST(RunnerSynchronized, StaggeredWakeupsSameAnswer) {
  Instance instance = make_instance(path_graph(7), IdentityScheme::kSequential);
  RunOptions options;
  options.wake_rounds.assign(7, 0);
  for (NodeId v = 0; v < 7; ++v)
    options.wake_rounds[static_cast<std::size_t>(v)] = (v * 3) % 5;
  const RunResult result = run_local(instance, MaxFlood{6}, options);
  EXPECT_TRUE(result.all_finished);
  for (std::int64_t out : result.outputs) EXPECT_EQ(out, 7);
  EXPECT_GE(result.global_rounds, 7);
}

TEST(RunnerSynchronized, TerminationTimeBoundedByRunningTime) {
  Instance instance = make_instance(path_graph(10), IdentityScheme::kSequential);
  RunOptions options;
  options.wake_rounds.assign(10, 0);
  for (NodeId v = 0; v < 10; ++v)
    options.wake_rounds[static_cast<std::size_t>(v)] = (7 * v) % 11;
  const RunResult result = run_local(instance, MaxFlood{4}, options);
  const auto times = termination_times(instance.graph, options.wake_rounds,
                                       result.global_finish_rounds);
  // The paper's running-time definition: every node terminates within t
  // rounds after its t-ball woke, with t <= the simultaneous running time.
  for (std::int64_t t : times) EXPECT_LE(t, result.rounds_used + 1);
}

TEST(RunnerSequential, CompositionPipesOutputs) {
  Instance instance = make_instance(cycle_graph(8), IdentityScheme::kSequential);
  MaxFlood first(8);
  AddConst second(5);
  const auto results = run_sequential(instance, {&first, &second});
  ASSERT_EQ(results.size(), 2u);
  for (std::int64_t out : results[1].outputs) EXPECT_EQ(out, 8 + 5);
}

TEST(RunnerSequential, Observation21RoundSum) {
  Instance instance = make_instance(path_graph(6), IdentityScheme::kSequential);
  MaxFlood a(4);
  MaxFlood b(3);
  const auto results = run_sequential(instance, {&a, &b});
  // Global completion of the pair is bounded by t1 + t2 (Observation 2.1).
  std::int64_t last = 0;
  for (std::int64_t g : results[1].global_finish_rounds)
    last = std::max(last, g);
  EXPECT_LE(last + 1, results[0].rounds_used + results[1].rounds_used + 1);
}

TEST(Chain, CarryFlowsBetweenStages) {
  Instance instance = make_instance(cycle_graph(9), IdentityScheme::kSequential);
  std::vector<ChainStage> stages;
  stages.push_back({std::make_shared<MaxFlood>(9), 11});
  stages.push_back({std::make_shared<AddConst>(100), 2});
  ChainAlgorithm chain("flood-then-add", std::move(stages));
  const RunResult result = run_local(instance, chain);
  EXPECT_TRUE(result.all_finished);
  for (std::int64_t out : result.outputs) EXPECT_EQ(out, 109);
}

TEST(Chain, CutOffStageYieldsArbitraryCarry) {
  Instance instance = make_instance(path_graph(4), IdentityScheme::kSequential);
  std::vector<ChainStage> stages;
  stages.push_back({std::make_shared<Stubborn>(), 3});  // never finishes
  stages.push_back({std::make_shared<AddConst>(42), 2});
  ChainAlgorithm chain("stubborn-then-add", std::move(stages));
  const RunResult result = run_local(instance, chain);
  EXPECT_TRUE(result.all_finished);
  for (std::int64_t out : result.outputs) EXPECT_EQ(out, 42);  // 0 + 42
}

TEST(Chain, SingleStagePassThrough) {
  Instance instance = make_instance(cycle_graph(5));
  std::vector<ChainStage> stages;
  stages.push_back({std::make_shared<DegreeEcho>(), 2});
  ChainAlgorithm chain("echo", std::move(stages));
  const RunResult result = run_local(instance, chain);
  EXPECT_TRUE(result.all_finished);
  for (std::int64_t out : result.outputs) EXPECT_EQ(out, 2);
}

TEST(Instance, ValidityChecks) {
  Instance instance = make_instance(path_graph(5));
  EXPECT_TRUE(instance.valid());
  instance.identities[1] = instance.identities[0];
  EXPECT_FALSE(instance.valid());
}

TEST(Instance, IdentitySchemes) {
  for (auto scheme : {IdentityScheme::kSequential,
                      IdentityScheme::kRandomPermuted,
                      IdentityScheme::kRandomSparse}) {
    Instance instance = make_instance(cycle_graph(40), scheme, 5);
    EXPECT_TRUE(instance.valid());
    if (scheme != IdentityScheme::kRandomSparse) {
      EXPECT_EQ(instance.max_identity(), 40);
    }
  }
}

TEST(Instance, RestrictKeepsIdentities) {
  Instance instance = make_instance(cycle_graph(6), IdentityScheme::kSequential);
  std::vector<bool> keep{true, false, true, true, false, true};
  const auto sub = induced_subgraph(instance.graph, keep);
  const Instance restricted =
      restrict_instance(instance, sub, instance.inputs);
  ASSERT_EQ(restricted.num_nodes(), 4);
  EXPECT_EQ(restricted.identities[0], 1);
  EXPECT_EQ(restricted.identities[1], 3);
  EXPECT_TRUE(restricted.valid());
}

}  // namespace
}  // namespace unilocal
