// The sharding subsystem (src/runtime/shard.h): plan→run→merge equals a
// single-process run_campaign bit-identically over the table1 grid for
// several shard counts and both policies, manifests and results survive
// their JSON round trips, merge rejects corrupted/missing/duplicate/
// foreign shards naming all offenders, and cost-balanced plans bound the
// load skew.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/runtime/run_log.h"
#include "src/runtime/shard.h"

namespace unilocal {
namespace {

std::vector<CampaignCell> table1_smoke_grid() {
  ScenarioParams params;
  params.n = 64;
  return make_table1_grid(params, 1);
}

std::vector<CampaignCell> tiny_grid() {
  ScenarioParams params;
  params.n = 40;
  return make_grid({"path", "gnp", "caterpillar"}, params,
                   {"mis-uniform", "luby-mis"}, 1, 5);
}

/// Runs plan→run→merge entirely in-process, pushing every manifest and
/// every result through its JSON round trip first — the same hops the
/// CLI's separate processes take.
CampaignResult plan_run_merge(const std::vector<CampaignCell>& cells,
                              int num_shards, ShardPolicy policy) {
  const ShardPlan plan = plan_shards(cells, num_shards, policy);
  const ShardPlan plan_back =
      ShardPlan::from_json(json::Value::parse(plan.to_json().dump()));
  std::vector<ShardResult> results;
  for (const ShardManifest& manifest : plan_back.shards) {
    const ShardManifest manifest_back =
        ShardManifest::from_json(json::Value::parse(manifest.to_json().dump()));
    const ShardResult result = run_shard(manifest_back, {});
    results.push_back(
        ShardResult::from_json(json::Value::parse(result.to_json().dump())));
  }
  // Merge order must not matter; feed the results back reversed.
  std::reverse(results.begin(), results.end());
  return merge_shard_results(plan_back, results);
}

TEST(ShardPlan, CoversEveryCellExactlyOnceUnderBothPolicies) {
  const auto cells = table1_smoke_grid();
  for (const ShardPolicy policy :
       {ShardPolicy::kRoundRobin, ShardPolicy::kCostBalanced}) {
    for (const int num_shards : {1, 3, 5, 100}) {
      const ShardPlan plan = plan_shards(cells, num_shards, policy);
      ASSERT_EQ(plan.shards.size(), static_cast<std::size_t>(num_shards));
      EXPECT_EQ(plan.grid_hash, campaign_grid_hash(cells));
      EXPECT_EQ(plan.total_cells, cells.size());
      std::vector<int> covered(cells.size(), 0);
      for (const ShardManifest& manifest : plan.shards) {
        ASSERT_EQ(manifest.cells.size(), manifest.cell_indices.size());
        EXPECT_EQ(manifest.plan_grid_hash, plan.grid_hash);
        EXPECT_EQ(manifest.shard_grid_hash,
                  campaign_grid_hash(manifest.cells));
        for (std::size_t i = 0; i < manifest.cells.size(); ++i) {
          const std::size_t grid_index = manifest.cell_indices[i];
          ASSERT_LT(grid_index, cells.size());
          ++covered[grid_index];
          EXPECT_EQ(manifest.cells[i].scenario, cells[grid_index].scenario);
          EXPECT_EQ(manifest.cells[i].seed, cells[grid_index].seed);
        }
      }
      for (const int count : covered) EXPECT_EQ(count, 1);
    }
  }
  EXPECT_THROW(plan_shards(cells, 0, ShardPolicy::kRoundRobin),
               std::runtime_error);
}

TEST(Shard, MergeIsBitIdenticalToSingleProcessOverTable1) {
  const auto cells = table1_smoke_grid();
  const CampaignResult single = run_campaign(cells, {});
  ASSERT_EQ(single.failed, 0);
  const std::uint64_t single_hash = campaign_grid_hash(single);

  for (const ShardPolicy policy :
       {ShardPolicy::kRoundRobin, ShardPolicy::kCostBalanced}) {
    for (const int num_shards : {1, 2, 3, 7}) {
      const CampaignResult merged = plan_run_merge(cells, num_shards, policy);
      SCOPED_TRACE(std::string(shard_policy_name(policy)) + " x " +
                   std::to_string(num_shards));
      ASSERT_EQ(merged.cells.size(), single.cells.size());
      // THE acceptance criterion: identical grid hash and identical
      // per-cell output-hash vector, in input order.
      EXPECT_EQ(campaign_grid_hash(merged), single_hash);
      for (std::size_t i = 0; i < single.cells.size(); ++i) {
        EXPECT_EQ(merged.cells[i].output_hash, single.cells[i].output_hash)
            << "cell " << i << " (" << single.cells[i].cell.scenario << "/"
            << single.cells[i].cell.algorithm << ")";
        EXPECT_EQ(merged.cells[i].rounds, single.cells[i].rounds);
        EXPECT_EQ(merged.cells[i].solved, single.cells[i].solved);
        EXPECT_EQ(merged.cells[i].valid, single.cells[i].valid);
        EXPECT_EQ(merged.cells[i].stats.total_messages,
                  single.cells[i].stats.total_messages);
      }
      // Deterministic aggregates match too (timing-based ones cannot).
      EXPECT_EQ(merged.solved, single.solved);
      EXPECT_EQ(merged.valid, single.valid);
      EXPECT_EQ(merged.failed, 0);
      EXPECT_DOUBLE_EQ(merged.rounds.p50, single.rounds.p50);
      EXPECT_DOUBLE_EQ(merged.rounds.max, single.rounds.max);
      EXPECT_DOUBLE_EQ(merged.messages.p90, single.messages.p90);
      EXPECT_DOUBLE_EQ(merged.peak_live_nodes.p99, single.peak_live_nodes.p99);
      EXPECT_DOUBLE_EQ(merged.dirty_spans_cleared.max,
                       single.dirty_spans_cleared.max);
    }
  }
}

TEST(Shard, ManifestSurvivesJsonRoundTripFieldForField) {
  ScenarioParams params;
  params.n = 33;
  params.a = 0.1;  // not exactly representable — lexeme must round-trip
  params.b = 1.0 / 3.0;
  GridOptions options;
  options.base_seed = 0xdeadbeefcafe1234ULL;  // exercises 64-bit seeds
  const auto cells =
      make_grid({"gnp", "tree"}, params, {"mis-uniform"}, 2, options);
  const ShardPlan plan = plan_shards(cells, 2, ShardPolicy::kCostBalanced);
  for (const ShardManifest& manifest : plan.shards) {
    const ShardManifest back =
        ShardManifest::from_json(json::Value::parse(manifest.to_json().dump()));
    EXPECT_EQ(back.shard_index, manifest.shard_index);
    EXPECT_EQ(back.num_shards, manifest.num_shards);
    EXPECT_EQ(back.policy, manifest.policy);
    EXPECT_EQ(back.plan_grid_hash, manifest.plan_grid_hash);
    EXPECT_EQ(back.shard_grid_hash, manifest.shard_grid_hash);
    EXPECT_EQ(back.cell_indices, manifest.cell_indices);
    ASSERT_EQ(back.cells.size(), manifest.cells.size());
    for (std::size_t i = 0; i < manifest.cells.size(); ++i) {
      EXPECT_EQ(back.cells[i].scenario, manifest.cells[i].scenario);
      EXPECT_EQ(back.cells[i].algorithm, manifest.cells[i].algorithm);
      EXPECT_EQ(back.cells[i].seed, manifest.cells[i].seed);
      EXPECT_EQ(back.cells[i].identities, manifest.cells[i].identities);
      EXPECT_EQ(back.cells[i].params.n, manifest.cells[i].params.n);
      // Bit-exact doubles: the grid hash hashes their bit patterns.
      EXPECT_EQ(back.cells[i].params.a, manifest.cells[i].params.a);
      EXPECT_EQ(back.cells[i].params.b, manifest.cells[i].params.b);
    }
    // The strongest form: the hash recomputed from the round-tripped cells
    // still matches, which is exactly what run_shard enforces.
    EXPECT_EQ(campaign_grid_hash(back.cells), manifest.shard_grid_hash);
  }
  EXPECT_THROW(ShardManifest::from_json(json::Value::parse("{}")),
               std::runtime_error);
  EXPECT_THROW(
      ShardManifest::from_json(json::Value::parse(plan.to_json().dump())),
      std::runtime_error);  // a plan is not a manifest
}

TEST(Shard, RunShardRejectsACorruptedManifest) {
  const auto cells = tiny_grid();
  ShardPlan plan = plan_shards(cells, 2, ShardPolicy::kRoundRobin);
  ShardManifest tampered = plan.shards[0];
  tampered.cells[0].seed += 1;  // work no longer matches the fingerprint
  try {
    run_shard(tampered, {});
    FAIL() << "expected run_shard to reject the tampered manifest";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt"), std::string::npos)
        << e.what();
  }
}

class ShardMergeErrors : public ::testing::Test {
 protected:
  void SetUp() override {
    cells_ = tiny_grid();
    plan_ = plan_shards(cells_, 3, ShardPolicy::kCostBalanced);
    for (const ShardManifest& manifest : plan_.shards)
      results_.push_back(run_shard(manifest, {}));
  }

  std::string merge_error(const std::vector<ShardResult>& results) {
    try {
      merge_shard_results(plan_, results);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "";
  }

  std::vector<CampaignCell> cells_;
  ShardPlan plan_;
  std::vector<ShardResult> results_;
};

TEST_F(ShardMergeErrors, AcceptsTheFullSetInAnyOrder) {
  std::vector<ShardResult> shuffled = {results_[2], results_[0], results_[1]};
  const CampaignResult merged = merge_shard_results(plan_, shuffled);
  EXPECT_EQ(campaign_grid_hash(merged), plan_.grid_hash);
}

TEST_F(ShardMergeErrors, NamesEveryMissingShard) {
  const std::string error = merge_error({results_[1]});
  EXPECT_NE(error.find("shard 0 is missing"), std::string::npos) << error;
  EXPECT_NE(error.find("shard 2 is missing"), std::string::npos) << error;
  EXPECT_EQ(error.find("shard 1 is missing"), std::string::npos) << error;
}

TEST_F(ShardMergeErrors, RejectsDuplicates) {
  const std::string error =
      merge_error({results_[0], results_[0], results_[1], results_[2]});
  EXPECT_NE(error.find("shard 0 appears more than once"), std::string::npos)
      << error;
}

TEST_F(ShardMergeErrors, RejectsForeignShards) {
  ShardResult foreign = results_[1];
  foreign.plan_grid_hash ^= 1;
  const std::string error = merge_error({results_[0], foreign, results_[2]});
  EXPECT_NE(error.find("shard 1 is foreign"), std::string::npos) << error;
  // The foreign shard does not satisfy slot 1 — it is also missing.
  EXPECT_NE(error.find("shard 1 is missing"), std::string::npos) << error;
}

TEST_F(ShardMergeErrors, RejectsTamperedResults) {
  // Header hash edited: caught against the plan's fingerprint.
  ShardResult bad_header = results_[0];
  bad_header.shard_grid_hash ^= 0xff;
  std::string error = merge_error({bad_header, results_[1], results_[2]});
  EXPECT_NE(error.find("shard 0 grid hash"), std::string::npos) << error;

  // Cells edited, header intact: caught by re-hashing the cells.
  ShardResult bad_cells = results_[2];
  bad_cells.cells[0].cell.seed += 7;
  error = merge_error({results_[0], results_[1], bad_cells});
  EXPECT_NE(error.find("shard 2 cells hash to"), std::string::npos) << error;

  ShardResult out_of_range = results_[0];
  out_of_range.shard_index = 9;
  error = merge_error({out_of_range, results_[1], results_[2]});
  EXPECT_NE(error.find("shard 9 is out of range"), std::string::npos) << error;
}

TEST_F(ShardMergeErrors, ReportsAllOffendersInOneError) {
  ShardResult foreign = results_[0];
  foreign.plan_grid_hash ^= 1;
  const std::string error = merge_error({foreign, results_[1]});
  // One throw names the foreign shard AND both unfilled slots.
  EXPECT_NE(error.find("shard 0 is foreign"), std::string::npos) << error;
  EXPECT_NE(error.find("shard 0 is missing"), std::string::npos) << error;
  EXPECT_NE(error.find("shard 2 is missing"), std::string::npos) << error;
}

TEST(Shard, PlanFromJsonRejectsReorderedShards) {
  // merge indexes plan.shards[result.shard_index]; a reordered document
  // would silently verify results against the wrong manifests.
  const auto cells = tiny_grid();
  const ShardPlan plan = plan_shards(cells, 2, ShardPolicy::kRoundRobin);
  json::Value doc = plan.to_json();
  for (auto& [key, value] : doc.as_object()) {
    if (key != "shards") continue;
    std::swap(value.as_array()[0], value.as_array()[1]);
  }
  try {
    ShardPlan::from_json(doc);
    FAIL() << "expected the reordered plan to be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("position"), std::string::npos)
        << e.what();
  }
}

TEST(Shard, PlanFromJsonRejectsIncompleteCoverage) {
  const auto cells = tiny_grid();
  const ShardPlan plan = plan_shards(cells, 2, ShardPolicy::kRoundRobin);
  json::Value doc = json::Value::parse(plan.to_json().dump());
  // Drop one cell from shard 0: some grid index is now covered nowhere.
  auto& shards = doc.as_object();
  for (auto& [key, value] : shards) {
    if (key != "shards") continue;
    auto& first_cells = value.as_array()[0];
    for (auto& [mkey, mvalue] : first_cells.as_object())
      if (mkey == "cells") mvalue.as_array().pop_back();
  }
  EXPECT_THROW(ShardPlan::from_json(doc), std::runtime_error);
}

TEST(Shard, CostBalancedBoundsTheSkewRoundRobinDoesNot) {
  // The table1 grid is straggler-heavy: theorem-5 pipelines cost ~90x a
  // Linial run under the default model.
  const auto cells = table1_smoke_grid();
  const ShardCostModel& model = default_shard_cost_model();
  double max_cell_cost = 0.0;
  for (const CampaignCell& cell : cells)
    max_cell_cost = std::max(max_cell_cost, model.cell_cost(cell));

  for (const int num_shards : {2, 3, 7}) {
    const ShardPlan balanced =
        plan_shards(cells, num_shards, ShardPolicy::kCostBalanced);
    std::vector<double> loads;
    for (const ShardManifest& manifest : balanced.shards) {
      double load = 0.0;
      for (const CampaignCell& cell : manifest.cells)
        load += model.cell_cost(cell);
      loads.push_back(load);
    }
    const auto [min_it, max_it] =
        std::minmax_element(loads.begin(), loads.end());
    // Greedy LPT invariant: the heaviest shard exceeds the lightest by at
    // most one cell's cost (else its last cell would have gone there).
    EXPECT_LE(*max_it - *min_it, max_cell_cost + 1e-9)
        << num_shards << " shards";
  }

  // Round-robin splits counts evenly but not costs: on this grid its skew
  // is worse than cost-balanced's for K=3.
  const auto load_spread = [&](ShardPolicy policy) {
    const ShardPlan plan = plan_shards(cells, 3, policy);
    double lo = 1e300, hi = 0.0;
    for (const ShardManifest& manifest : plan.shards) {
      double load = 0.0;
      for (const CampaignCell& cell : manifest.cells)
        load += model.cell_cost(cell);
      lo = std::min(lo, load);
      hi = std::max(hi, load);
    }
    return hi - lo;
  };
  EXPECT_LT(load_spread(ShardPolicy::kCostBalanced),
            load_spread(ShardPolicy::kRoundRobin));
}

TEST(Shard, MergedRunLogEntryMatchesTheSingleProcessGrid) {
  // A merged result records under the same grid hash as a single-process
  // sweep: the run log can diff one against the other.
  const auto cells = tiny_grid();
  const CampaignResult single = run_campaign(cells, {});
  const CampaignResult merged =
      plan_run_merge(cells, 3, ShardPolicy::kRoundRobin);
  EXPECT_EQ(campaign_grid_hash(merged), campaign_grid_hash(single));
}

}  // namespace
}  // namespace unilocal
