#include <gtest/gtest.h>

#include "src/algo/arb_coloring.h"
#include "src/algo/arb_mis.h"
#include "src/algo/forests.h"
#include "src/algo/hpartition.h"
#include "src/algo/linial.h"
#include "src/core/param.h"
#include "src/graph/params.h"
#include "src/problems/coloring.h"
#include "src/problems/mis.h"
#include "src/runtime/runner.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

using testing_support::standard_instances;

TEST(HPartition, EveryNodePeelsWithGoodGuesses) {
  for (const auto& [name, instance] : standard_instances(220)) {
    if (instance.num_nodes() == 0) continue;
    const std::int64_t a = eval_param(Param::kArboricity, instance);
    const HPartition algorithm(a, instance.num_nodes());
    const RunResult result = run_local(instance, algorithm);
    EXPECT_TRUE(result.all_finished) << name;
    for (std::int64_t layer : result.outputs) {
      EXPECT_GE(layer, 1) << name;
      EXPECT_LE(layer, algorithm.num_phases()) << name;
    }
  }
}

TEST(HPartition, MatchesCentralReference) {
  Rng rng(1);
  Instance instance = make_instance(random_layered_forest(90, 2, rng),
                                    IdentityScheme::kRandomPermuted, 2);
  const std::int64_t a = eval_param(Param::kArboricity, instance);
  const HPartition algorithm(a, instance.num_nodes());
  const RunResult result = run_local(instance, algorithm);
  const auto central = central_hpartition(
      instance.graph, algorithm.threshold(), algorithm.num_phases());
  EXPECT_EQ(result.outputs, central);
}

TEST(HPartition, LayerPropertyBoundsUpDegree) {
  // Every node has at most 3a neighbours in its own-or-higher layers.
  Rng rng(2);
  Instance instance = make_instance(random_layered_forest(120, 3, rng),
                                    IdentityScheme::kRandomPermuted, 3);
  const std::int64_t a = eval_param(Param::kArboricity, instance);
  const HPartition algorithm(a, instance.num_nodes());
  const RunResult result = run_local(instance, algorithm);
  for (NodeId v = 0; v < instance.num_nodes(); ++v) {
    std::int64_t up = 0;
    for (NodeId u : instance.graph.neighbors(v)) {
      if (result.outputs[static_cast<std::size_t>(u)] >=
          result.outputs[static_cast<std::size_t>(v)])
        ++up;
    }
    EXPECT_LE(up, algorithm.threshold()) << "node " << v;
  }
}

TEST(Forests, OrientationOutDegreeBounded) {
  Rng rng(3);
  for (int layers : {1, 2, 3}) {
    Instance instance = make_instance(random_layered_forest(100, layers, rng),
                                      IdentityScheme::kRandomPermuted, 4);
    const std::int64_t a = eval_param(Param::kArboricity, instance);
    const auto layer_assignment = central_hpartition(
        instance.graph, 3 * a, HPartition::phases_for(instance.num_nodes()));
    const auto out = orientation_from_layers(instance, layer_assignment);
    EXPECT_LE(max_out_degree(out), 3 * a) << "layers " << layers;
    // Orientation covers every edge exactly once.
    std::int64_t arcs = 0;
    for (const auto& list : out) arcs += static_cast<std::int64_t>(list.size());
    EXPECT_EQ(arcs, instance.graph.num_edges());
  }
}

TEST(Forests, SplitYieldsAcyclicForests) {
  Rng rng(4);
  Instance instance = make_instance(gnp(80, 0.06, rng),
                                    IdentityScheme::kRandomPermuted, 5);
  const std::int64_t a = eval_param(Param::kArboricity, instance);
  const auto layer_assignment = central_hpartition(
      instance.graph, 3 * a, HPartition::phases_for(instance.num_nodes()));
  const auto out = orientation_from_layers(instance, layer_assignment);
  const auto forests = forest_split(out);
  EXPECT_LE(static_cast<std::int64_t>(forests.size()), 3 * a);
  for (const auto& edges : forests) {
    Graph forest = Graph::from_edges(instance.graph.num_nodes(), edges);
    EXPECT_TRUE(is_forest(forest));
  }
}

TEST(ArbColoring, ProperWithQuadraticPalette) {
  const auto wrapped = make_arb_coloring();
  for (const auto& [name, instance] : standard_instances(221)) {
    if (instance.num_nodes() == 0) continue;
    const auto algorithm = instantiate_with_correct_guesses(*wrapped, instance);
    const RunResult result = run_local(instance, *algorithm);
    EXPECT_TRUE(result.all_finished) << name;
    EXPECT_TRUE(is_proper_coloring(instance.graph, result.outputs)) << name;
    const std::int64_t a = eval_param(Param::kArboricity, instance);
    EXPECT_LE(max_color_used(result.outputs),
              linial_final_space_bound(3 * a))
        << name;
    EXPECT_LE(static_cast<double>(result.rounds_used),
              bound_at_correct_params(*wrapped, instance))
        << name;
  }
}

TEST(ArbColoring, PaletteIndependentOfDelta) {
  // A star has Delta = n-1 but arboricity 1: the palette must stay O(1).
  Rng rng(5);
  Instance star = make_instance(complete_bipartite(1, 60),
                                IdentityScheme::kRandomPermuted, 6);
  const auto wrapped = make_arb_coloring();
  const auto algorithm = instantiate_with_correct_guesses(*wrapped, star);
  const RunResult result = run_local(star, *algorithm);
  EXPECT_TRUE(is_proper_coloring(star.graph, result.outputs));
  EXPECT_LE(max_color_used(result.outputs), linial_final_space_bound(3));
}

TEST(ArbMis, ValidOnSweepWithinBound) {
  const auto wrapped = make_arb_mis();
  for (const auto& [name, instance] : standard_instances(222)) {
    const auto algorithm = instantiate_with_correct_guesses(*wrapped, instance);
    const RunResult result = run_local(instance, *algorithm);
    EXPECT_TRUE(result.all_finished) << name;
    EXPECT_TRUE(is_maximal_independent_set(instance.graph, result.outputs))
        << name;
    EXPECT_LE(static_cast<double>(result.rounds_used),
              bound_at_correct_params(*wrapped, instance))
        << name;
  }
}

TEST(ArbMis, LogNShapeOnForests) {
  // On forests the peeling dominates: rounds grow like log n, far below
  // a Delta-driven pipeline on a star.
  const auto wrapped = make_arb_mis();
  Rng rng(6);
  Instance small = make_instance(random_tree(100, rng),
                                 IdentityScheme::kRandomPermuted, 7);
  Instance large = make_instance(random_tree(800, rng),
                                 IdentityScheme::kRandomPermuted, 8);
  const auto algo_small = instantiate_with_correct_guesses(*wrapped, small);
  const auto algo_large = instantiate_with_correct_guesses(*wrapped, large);
  const auto r_small = run_local(small, *algo_small);
  const auto r_large = run_local(large, *algo_large);
  // 8x nodes: roughly +log(8)/log(1.5) ~ 6 peeling phases, not 8x rounds.
  EXPECT_LE(r_large.rounds_used, r_small.rounds_used + 16);
}

}  // namespace
}  // namespace unilocal
