// The pluggable delivery layer (src/runtime/network.h): spec/knob parsing,
// and the DelayedNetwork execution mode's core contracts —
//
//   * asynchrony transparency: when every pulse is eventually delivered
//     (no crashes, drops below the retransmission cap), outputs and local
//     finish rounds are bit-identical to the synchronous run for the same
//     seed — the paper's Observation 2.1, used here as the oracle;
//   * determinism: the full RunResult (timestamps and fault counters
//     included) is invariant under engine thread count and run repetition;
//   * degenerate faults: drop=1.0 and crashes stall the synchronizer
//     cleanly (queues drain, survivors finalized as cut off) instead of
//     spinning;
//   * the kernel tier works unchanged through the delayed layer.
//
// Campaign/shard-level determinism of delayed grids is covered in
// tests/shard_test.cpp-style form at the bottom of this file.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <sstream>

#include "src/algo/greedy_mis.h"
#include "src/algo/luby.h"
#include "src/algo/ruling_set_mc.h"
#include "src/graph/generators.h"
#include "src/runtime/campaign.h"
#include "src/runtime/network.h"
#include "src/runtime/run_log.h"
#include "src/runtime/runner.h"
#include "src/runtime/shard.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

using testing_support::standard_instances;

NetworkOptions delayed(DelayPreset preset) {
  NetworkOptions network;
  network.kind = NetworkKind::kDelayed;
  network.preset = preset;
  return network;
}

void expect_same_result(const RunResult& want, const RunResult& got,
                        const std::string& label) {
  EXPECT_EQ(want.outputs, got.outputs) << label;
  EXPECT_EQ(want.finish_rounds, got.finish_rounds) << label;
  EXPECT_EQ(want.global_finish_rounds, got.global_finish_rounds) << label;
  EXPECT_EQ(want.all_finished, got.all_finished) << label;
  EXPECT_EQ(want.rounds_used, got.rounds_used) << label;
  EXPECT_EQ(want.global_rounds, got.global_rounds) << label;
  EXPECT_EQ(want.messages_sent, got.messages_sent) << label;
  EXPECT_EQ(want.max_message_words, got.max_message_words) << label;
  EXPECT_EQ(want.stats.total_steps, got.stats.total_steps) << label;
  EXPECT_EQ(want.stats.messages_dropped, got.stats.messages_dropped) << label;
  EXPECT_EQ(want.stats.messages_duplicated, got.stats.messages_duplicated)
      << label;
  EXPECT_EQ(want.stats.max_delivery_skew, got.stats.max_delivery_skew)
      << label;
}

TEST(NetworkSpec, ParseAndName) {
  EXPECT_EQ(parse_network_spec("sync").kind, NetworkKind::kSynchronous);
  const NetworkOptions uniform = parse_network_spec("delay:uniform");
  EXPECT_EQ(uniform.kind, NetworkKind::kDelayed);
  EXPECT_EQ(uniform.preset, DelayPreset::kUniform);
  EXPECT_EQ(parse_network_spec("delay:weighted").preset,
            DelayPreset::kWeighted);
  EXPECT_EQ(parse_network_spec("delay:heavytail").preset,
            DelayPreset::kHeavyTail);
  for (const NetworkOptions& options :
       {parse_network_spec("sync"), parse_network_spec("delay:heavytail")})
    EXPECT_EQ(parse_network_spec(network_spec_name(options)), options);
  EXPECT_THROW(parse_network_spec("delay:pareto"), std::runtime_error);
  EXPECT_THROW(parse_network_spec(""), std::runtime_error);
  try {
    parse_network_spec("async");
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("async"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("delay:uniform"), std::string::npos);
  }
}

TEST(NetworkSpec, StrictKnobParsing) {
  EXPECT_DOUBLE_EQ(parse_unit_interval("--drop", "0.25"), 0.25);
  EXPECT_EQ(parse_positive_ticks("--max-delay", "12"), 12);
  for (const char* bad : {"", "0.5x", "-0.1", "1.5", "nan"})
    EXPECT_THROW(parse_unit_interval("--drop", bad), std::runtime_error);
  for (const char* bad : {"", "7.5", "0", "-3", "12x"})
    EXPECT_THROW(parse_positive_ticks("--late-by", bad), std::runtime_error);
  try {
    parse_unit_interval("--crash", "oops");
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    // The error must name the flag (the CLI surfaces e.what() directly).
    EXPECT_NE(std::string(e.what()).find("--crash"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("oops"), std::string::npos);
  }
  NetworkOptions bad;
  bad.drop = 1.5;
  EXPECT_THROW(validate_network_options(bad), std::runtime_error);
  bad = NetworkOptions{};
  bad.max_delay = 0;
  EXPECT_THROW(validate_network_options(bad), std::runtime_error);
  bad = NetworkOptions{};
  bad.late = -0.5;
  Instance instance = make_instance(path_graph(4));
  RunOptions options;
  options.network = bad;
  EXPECT_THROW(run_local(instance, LubyMis(), options), std::runtime_error);
}

// When every pulse is eventually delivered, each node sees the same message
// contents in the same local rounds as under the synchronous network, so
// outputs and local finish rounds are bit-identical (Observation 2.1). This
// holds across presets and across delivery-reordering faults (drops below
// the retransmission cap, duplicates, late joiners).
TEST(DelayedNetwork, AsynchronyTransparentAcrossPresetsAndFaults) {
  const LubyMis luby;
  const GreedyMis greedy;
  const BetaLubyRulingSet ruling(2);
  const std::vector<std::pair<std::string, const Algorithm*>> algorithms = {
      {"luby", &luby}, {"greedy", &greedy}, {"ruling2", &ruling}};
  std::vector<std::pair<std::string, NetworkOptions>> networks;
  for (const DelayPreset preset :
       {DelayPreset::kUniform, DelayPreset::kWeighted,
        DelayPreset::kHeavyTail})
    networks.push_back({std::string("plain-") + delay_preset_name(preset),
                        delayed(preset)});
  NetworkOptions faulty = delayed(DelayPreset::kUniform);
  faulty.drop = 0.3;
  faulty.duplicate = 0.5;
  faulty.late = 0.5;
  networks.push_back({"drop-dup-late", faulty});

  for (const auto& named : standard_instances(/*seed=*/21)) {
    for (const auto& [algo_name, algorithm] : algorithms) {
      RunOptions sync_options;
      sync_options.seed = 17;
      const RunResult want =
          run_local(named.instance, *algorithm, sync_options);
      for (const auto& [net_name, network] : networks) {
        RunOptions options = sync_options;
        options.network = network;
        const RunResult got = run_local(named.instance, *algorithm, options);
        const std::string label =
            named.name + "/" + algo_name + "/" + net_name;
        EXPECT_EQ(want.outputs, got.outputs) << label;
        EXPECT_EQ(want.finish_rounds, got.finish_rounds) << label;
        EXPECT_EQ(want.all_finished, got.all_finished) << label;
        EXPECT_EQ(want.rounds_used, got.rounds_used) << label;
        EXPECT_EQ(want.messages_sent, got.messages_sent) << label;
        EXPECT_EQ(want.max_message_words, got.max_message_words) << label;
      }
    }
  }
}

// Same seed, same options => bit-identical full result (timestamps and
// fault counters included) for any engine thread count and on repetition
// through a reused workspace.
TEST(DelayedNetwork, DeterministicAcrossThreadCountsAndRepetition) {
  const LubyMis luby;
  NetworkOptions network = delayed(DelayPreset::kHeavyTail);
  network.drop = 0.2;
  network.duplicate = 0.3;
  network.late = 0.4;
  for (const auto& named : standard_instances(/*seed=*/23)) {
    RunOptions options;
    options.seed = 5;
    options.network = network;
    options.num_threads = 1;
    const RunResult want = run_local(named.instance, luby, options);
    EngineWorkspace workspace;
    for (const int threads : {1, 2, 8}) {
      options.num_threads = threads;
      const RunResult got =
          run_local(named.instance, luby, options, &workspace);
      expect_same_result(want, got,
                         named.name + "/threads=" + std::to_string(threads));
    }
  }
}

// drop=1.0: nothing is ever delivered. Round 0 needs no messages, so every
// node steps once; from then on every non-isolated node starves. The event
// queue drains and the run exits cleanly with the survivors cut off — it
// must not spin to the round cap (guarded here by the default cap being
// ~2^60: a spinning loop would never return).
TEST(DelayedNetwork, DropEverythingStallsCleanly) {
  const Instance instance =
      make_instance(path_graph(40), IdentityScheme::kRandomPermuted, 3);
  RunOptions options;
  options.seed = 9;
  options.network = delayed(DelayPreset::kUniform);
  options.network.drop = 1.0;
  const RunResult result = run_local(instance, LubyMis(), options);
  EXPECT_FALSE(result.all_finished);
  EXPECT_EQ(result.stats.final_live_nodes, 40);
  EXPECT_EQ(result.stats.total_steps, 40);  // exactly one round each
  EXPECT_GT(result.stats.messages_dropped, 0);
  for (const std::int64_t output : result.outputs) EXPECT_EQ(output, 0);
  for (const std::int64_t finish : result.finish_rounds)
    EXPECT_EQ(finish, options.max_rounds);
}

// Fail-stop crashes starve the crashed nodes' neighbourhoods; the run still
// terminates, deterministically. crash=1.0 is the extreme: nobody ever
// steps.
TEST(DelayedNetwork, CrashedNodesStarveNeighboursAndTerminate) {
  Rng rng(31);
  const Instance instance = make_instance(
      gnp(60, 0.08, rng), IdentityScheme::kRandomPermuted, 4);
  RunOptions options;
  options.seed = 11;
  options.network = delayed(DelayPreset::kUniform);
  options.network.crash = 0.3;
  const RunResult first = run_local(instance, LubyMis(), options);
  EXPECT_FALSE(first.all_finished);
  EXPECT_GT(first.stats.final_live_nodes, 0);
  options.num_threads = 8;
  const RunResult second = run_local(instance, LubyMis(), options);
  expect_same_result(first, second, "crash determinism");

  options.network.crash = 1.0;
  const RunResult nobody = run_local(instance, LubyMis(), options);
  EXPECT_EQ(nobody.stats.total_steps, 0);
  EXPECT_EQ(nobody.stats.final_live_nodes, 60);
  EXPECT_EQ(nobody.global_rounds, 0);
}

// The round cap applies per node in the delayed mode exactly as in the
// synchronous modes: same outputs, same local finish rounds.
TEST(DelayedNetwork, CutoffParityWithSynchronousRun) {
  for (const auto& named : standard_instances(/*seed=*/37)) {
    RunOptions options;
    options.seed = 13;
    options.max_rounds = 3;
    const RunResult want = run_local(named.instance, LubyMis(), options);
    options.network = delayed(DelayPreset::kUniform);
    const RunResult got = run_local(named.instance, LubyMis(), options);
    EXPECT_EQ(want.outputs, got.outputs) << named.name;
    EXPECT_EQ(want.finish_rounds, got.finish_rounds) << named.name;
    EXPECT_EQ(want.all_finished, got.all_finished) << named.name;
  }
}

// Composition (run_sequential) through the delayed layer: stage k+1 wakes
// each node after its stage-k finish time; since outputs are wake-invariant,
// the composition's outputs still match the synchronous composition.
TEST(DelayedNetwork, SequentialCompositionMatchesSynchronous) {
  const LubyMis luby;
  const GreedyMis greedy;
  const std::vector<const Algorithm*> stages = {&luby, &greedy};
  Rng rng(41);
  const Instance instance = make_instance(
      gnp(50, 0.1, rng), IdentityScheme::kRandomPermuted, 6);
  RunOptions options;
  options.seed = 19;
  const auto want = run_sequential(instance, stages, options);
  options.network = delayed(DelayPreset::kHeavyTail);
  options.network.duplicate = 0.4;
  const auto got = run_sequential(instance, stages, options);
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t stage = 0; stage < want.size(); ++stage) {
    EXPECT_EQ(want[stage].outputs, got[stage].outputs) << stage;
    EXPECT_EQ(want[stage].finish_rounds, got[stage].finish_rounds) << stage;
  }
}

// Fault counters must surface: drops, duplicates, and a positive delivery
// skew whenever latencies exceed one tick.
TEST(DelayedNetwork, FaultCountersSurfaceInStats) {
  const Instance instance =
      make_instance(cycle_graph(50), IdentityScheme::kRandomPermuted, 8);
  RunOptions options;
  options.seed = 23;
  options.network = delayed(DelayPreset::kUniform);
  options.network.drop = 0.3;
  options.network.duplicate = 0.4;
  const RunResult result = run_local(instance, LubyMis(), options);
  EXPECT_GT(result.stats.messages_dropped, 0);
  EXPECT_GT(result.stats.messages_duplicated, 0);
  EXPECT_GT(result.stats.max_delivery_skew, 0);
  EXPECT_GT(result.global_rounds, result.rounds_used);

  RunOptions sync_options;
  sync_options.seed = 23;
  const RunResult sync_result = run_local(instance, LubyMis(), sync_options);
  EXPECT_EQ(sync_result.stats.messages_dropped, 0);
  EXPECT_EQ(sync_result.stats.messages_duplicated, 0);
  EXPECT_EQ(sync_result.stats.max_delivery_skew, 0);
}

// The step-kernel tier must work unchanged through the delayed layer:
// kernel and vtable paths produce bit-identical full results, and the
// path-split stats prove both actually ran their own tier.
TEST(DelayedNetwork, KernelTierBitIdenticalThroughDelayedLayer) {
  const LubyMis luby;  // has a kernel lowering
  NetworkOptions network = delayed(DelayPreset::kWeighted);
  network.drop = 0.2;
  for (const auto& named : standard_instances(/*seed=*/43)) {
    RunOptions options;
    options.seed = 29;
    options.network = network;
    options.kernel_mode = KernelMode::kAuto;
    const RunResult with_kernel = run_local(named.instance, luby, options);
    options.kernel_mode = KernelMode::kOff;
    const RunResult without = run_local(named.instance, luby, options);
    expect_same_result(with_kernel, without, named.name);
    EXPECT_EQ(with_kernel.stats.vtable_steps, 0) << named.name;
    EXPECT_EQ(without.stats.kernel_steps, 0) << named.name;
  }
}

// --- campaign / shard layer --------------------------------------------------

std::vector<CampaignCell> delayed_grid() {
  GridOptions grid_options;
  NetworkOptions faulty = delayed(DelayPreset::kHeavyTail);
  faulty.drop = 0.05;
  faulty.duplicate = 0.1;
  grid_options.networks = {NetworkOptions{}, delayed(DelayPreset::kUniform),
                           faulty};
  return make_grid({"gnp", "tree"}, ScenarioParams{}, {"luby-mis"},
                   /*seeds_per_combination=*/2, grid_options);
}

std::string canonical_json(const CampaignResult& result) {
  CampaignJsonOptions json_options;
  json_options.canonical = true;
  std::ostringstream out;
  write_campaign_json(out, result, json_options);
  return out.str();
}

// The acceptance bar for the delivery layer at campaign scale: a fixed-seed
// grid crossed with delayed networks reproduces byte-equal canonical JSON
// no matter how it is split across shard processes or which placement
// policy assigned the cells — including a full JSON round trip of every
// manifest and shard result (the network identity must survive
// serialization, or the worker would run a different experiment).
TEST(DelayedCampaign, CanonicalJsonByteEqualAcrossShardingsAndPolicies) {
  const std::vector<CampaignCell> cells = delayed_grid();
  const std::string want = canonical_json(run_campaign(cells, {}));
  EXPECT_NE(want.find("\"network\":\"delay:heavytail\""), std::string::npos);
  for (const ShardPolicy policy :
       {ShardPolicy::kRoundRobin, ShardPolicy::kCostBalanced}) {
    for (const int num_shards : {1, 2, 3, 7}) {
      const ShardPlan plan = plan_shards(cells, num_shards, policy);
      const ShardPlan plan_back =
          ShardPlan::from_json(json::Value::parse(plan.to_json().dump()));
      std::vector<ShardResult> results;
      for (const ShardManifest& manifest : plan_back.shards) {
        const ShardManifest manifest_back = ShardManifest::from_json(
            json::Value::parse(manifest.to_json().dump()));
        const ShardResult result = run_shard(manifest_back, {});
        results.push_back(ShardResult::from_json(
            json::Value::parse(result.to_json().dump())));
      }
      const CampaignResult merged = merge_shard_results(plan_back, results);
      EXPECT_EQ(want, canonical_json(merged))
          << shard_policy_name(policy) << "/" << num_shards;
    }
  }
}

// A campaign over fully-delivered delayed networks stays as solved/valid as
// the synchronous one (Observation 2.1 applies cell-wise), the fault
// percentiles surface, and the delivery layer separates grid identities:
// the same cells under different networks must never share a run-log
// perf baseline.
TEST(DelayedCampaign, VerdictsHoldAndNetworkSeparatesGridIdentity) {
  const std::vector<CampaignCell> cells = delayed_grid();
  const CampaignResult result = run_campaign(cells, {});
  EXPECT_EQ(result.failed, 0);
  EXPECT_EQ(result.valid, static_cast<int>(cells.size()));
  EXPECT_GT(result.messages_dropped.max, 0.0);
  EXPECT_GT(result.messages_duplicated.max, 0.0);
  EXPECT_GT(result.max_delivery_skew.max, 0.0);

  std::vector<CampaignCell> sync_cells = cells;
  for (CampaignCell& cell : sync_cells) cell.network = NetworkOptions{};
  EXPECT_NE(campaign_grid_hash(cells), campaign_grid_hash(sync_cells));
  std::vector<CampaignCell> other_knob = cells;
  other_knob.back().network.drop = 0.051;
  EXPECT_NE(campaign_grid_hash(cells), campaign_grid_hash(other_knob));

  // CampaignOptions::network applies the layer campaign-wide to
  // default-sync cells, and the effective network lands in the artifacts.
  CampaignOptions options;
  options.network = delayed(DelayPreset::kWeighted);
  const CampaignResult overridden = run_campaign(sync_cells, options);
  EXPECT_EQ(overridden.valid, static_cast<int>(sync_cells.size()));
  std::ostringstream csv;
  write_campaign_csv(csv, overridden);
  EXPECT_NE(csv.str().find("delay:weighted"), std::string::npos);
  EXPECT_NE(csv.str().find("messages_dropped"), std::string::npos);
}

}  // namespace
}  // namespace unilocal
