// Bit-reproducibility: identical seeds must give identical outputs, traces
// and ledgers across the entire stack — the property that makes every bench
// table in EXPERIMENTS.md reproducible.
#include <gtest/gtest.h>

#include "src/algo/luby.h"
#include "src/algo/mis_from_coloring.h"
#include "src/algo/ruling_set_mc.h"
#include "src/core/mc_to_lv.h"
#include "src/core/transformer.h"
#include "src/graph/generators.h"
#include "src/prune/ruling_set_prune.h"

namespace unilocal {
namespace {

Instance instance_under_test() {
  Rng rng(17);
  return make_instance(gnp(150, 0.05, rng), IdentityScheme::kRandomSparse, 4);
}

TEST(Determinism, GeneratorsAreSeedStable) {
  Rng a(5);
  Rng b(5);
  EXPECT_EQ(gnp(200, 0.03, a), gnp(200, 0.03, b));
  EXPECT_EQ(random_tree(100, a), random_tree(100, b));
}

TEST(Determinism, InstanceIdentitiesAreSeedStable) {
  const Instance x = instance_under_test();
  const Instance y = instance_under_test();
  EXPECT_EQ(x.identities, y.identities);
  EXPECT_EQ(x.graph, y.graph);
}

TEST(Determinism, Theorem1RunsAreReplayable) {
  const Instance instance = instance_under_test();
  const auto algorithm = make_coloring_mis();
  const RulingSetPruning pruning(1);
  const UniformRunResult a =
      run_uniform_transformer(instance, *algorithm, pruning);
  const UniformRunResult b =
      run_uniform_transformer(instance, *algorithm, pruning);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].guesses, b.trace[i].guesses);
    EXPECT_EQ(a.trace[i].rounds_used, b.trace[i].rounds_used);
    EXPECT_EQ(a.trace[i].nodes_pruned, b.trace[i].nodes_pruned);
  }
}

TEST(Determinism, RandomizedRunsReplayUnderSameSeedOnly) {
  const Instance instance = instance_under_test();
  const auto algorithm = make_mc_ruling_set(2);
  const RulingSetPruning pruning(2);
  UniformRunOptions options;
  options.seed = 11;
  const UniformRunResult a =
      run_las_vegas_transformer(instance, *algorithm, pruning, options);
  const UniformRunResult b =
      run_las_vegas_transformer(instance, *algorithm, pruning, options);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
  options.seed = 12;
  const UniformRunResult c =
      run_las_vegas_transformer(instance, *algorithm, pruning, options);
  // Different seed: still correct, but (almost surely) a different run.
  EXPECT_TRUE(c.solved);
}

TEST(Determinism, LubyPerNodeStreamsKeyedByIdentityNotSlot) {
  // Re-labelling slots while keeping (graph, identities) must not change
  // the outcome: node randomness is keyed by identity.
  const Instance instance = instance_under_test();
  RunOptions options;
  options.seed = 9;
  const RunResult a = run_local(instance, LubyMis{}, options);
  const RunResult b = run_local(instance, LubyMis{}, options);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
}

}  // namespace
}  // namespace unilocal
