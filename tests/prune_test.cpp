// Property tests for the paper's pruning algorithms: solution detection,
// gluing, monotonicity (Observations 3.1-3.3) and agreement between the
// whole-graph apply() and the constant-round LOCAL realization.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/param.h"
#include "src/graph/params.h"
#include "src/problems/matching.h"
#include "src/problems/mis.h"
#include "src/problems/ruling_set.h"
#include "src/problems/slc.h"
#include "src/prune/matching_prune.h"
#include "src/prune/ruling_set_prune.h"
#include "src/prune/slc_prune.h"
#include "src/runtime/runner.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

using testing_support::central_matching;
using testing_support::central_mis;
using testing_support::standard_instances;

std::vector<std::int64_t> random_bits(std::size_t n, Rng& rng, double p) {
  std::vector<std::int64_t> bits(n);
  for (auto& b : bits) b = rng.next_bool(p) ? 1 : 0;
  return bits;
}

/// Runs the LOCAL realization of a pruning algorithm and returns its bits.
std::vector<std::int64_t> local_prune_bits(const PruningAlgorithm& pruning,
                                           const Instance& instance,
                                           const std::vector<std::int64_t>& yhat,
                                           std::int64_t* rounds = nullptr) {
  Instance annotated = instance;
  for (NodeId v = 0; v < instance.num_nodes(); ++v)
    annotated.inputs[static_cast<std::size_t>(v)].push_back(
        yhat[static_cast<std::size_t>(v)]);
  const auto algorithm = pruning.as_local_algorithm();
  const RunResult result = run_local(annotated, *algorithm);
  EXPECT_TRUE(result.all_finished);
  if (rounds != nullptr) *rounds = result.rounds_used;
  return result.outputs;
}

// ---------------------------------------------------------------- P(2,1) --

TEST(RulingSetPruning, SolutionDetectionOnValidMis) {
  for (const auto& [name, instance] : standard_instances(100)) {
    const auto mis = central_mis(instance.graph);
    const RulingSetPruning pruning(1);
    const PruneResult result = pruning.apply(instance, mis);
    for (NodeId v = 0; v < instance.num_nodes(); ++v)
      EXPECT_TRUE(result.pruned[static_cast<std::size_t>(v)])
          << name << " node " << v;
  }
}

TEST(RulingSetPruning, GluingOnArbitraryTentativeOutputs) {
  Rng rng(7);
  for (const auto& [name, instance] : standard_instances(101)) {
    for (double p : {0.0, 0.2, 0.5, 1.0}) {
      const auto yhat =
          random_bits(static_cast<std::size_t>(instance.num_nodes()), rng, p);
      const RulingSetPruning pruning(1);
      const PruneResult pruned = pruning.apply(instance, yhat);
      // Solve the surviving subgraph with the reference solver and glue.
      std::vector<bool> keep(pruned.pruned.size());
      for (std::size_t i = 0; i < keep.size(); ++i) keep[i] = !pruned.pruned[i];
      const auto sub = induced_subgraph(instance.graph, keep);
      const auto sub_solution = central_mis(sub.graph);
      std::vector<std::int64_t> combined = yhat;
      for (NodeId v = 0; v < sub.graph.num_nodes(); ++v)
        combined[static_cast<std::size_t>(
            sub.to_old[static_cast<std::size_t>(v)])] =
            sub_solution[static_cast<std::size_t>(v)];
      EXPECT_TRUE(is_maximal_independent_set(instance.graph, combined))
          << name << " p=" << p;
    }
  }
}

TEST(RulingSetPruning, Beta2GluingProperty) {
  Rng rng(8);
  for (const auto& [name, instance] : standard_instances(102)) {
    const auto yhat =
        random_bits(static_cast<std::size_t>(instance.num_nodes()), rng, 0.3);
    const RulingSetPruning pruning(2);
    const PruneResult pruned = pruning.apply(instance, yhat);
    std::vector<bool> keep(pruned.pruned.size());
    for (std::size_t i = 0; i < keep.size(); ++i) keep[i] = !pruned.pruned[i];
    const auto sub = induced_subgraph(instance.graph, keep);
    // An MIS is in particular a (2,1)- and hence (2,2)-ruling set.
    const auto sub_solution = central_mis(sub.graph);
    std::vector<std::int64_t> combined = yhat;
    for (NodeId v = 0; v < sub.graph.num_nodes(); ++v)
      combined[static_cast<std::size_t>(
          sub.to_old[static_cast<std::size_t>(v)])] =
          sub_solution[static_cast<std::size_t>(v)];
    EXPECT_TRUE(is_two_beta_ruling_set(instance.graph, combined, 2)) << name;
  }
}

TEST(RulingSetPruning, LocalRealizationAgreesWithApply) {
  Rng rng(9);
  for (int beta : {1, 2, 3}) {
    const RulingSetPruning pruning(beta);
    for (const auto& [name, instance] : standard_instances(103)) {
      const auto yhat = random_bits(
          static_cast<std::size_t>(instance.num_nodes()), rng, 0.4);
      const PruneResult expected = pruning.apply(instance, yhat);
      std::int64_t rounds = 0;
      const auto bits = local_prune_bits(pruning, instance, yhat, &rounds);
      for (NodeId v = 0; v < instance.num_nodes(); ++v) {
        EXPECT_EQ(bits[static_cast<std::size_t>(v)] != 0,
                  expected.pruned[static_cast<std::size_t>(v)])
            << name << " beta=" << beta << " node " << v;
      }
      if (instance.num_nodes() > 0) {
        EXPECT_LE(rounds, pruning.running_time()) << name;
      }
    }
  }
}

TEST(RulingSetPruning, MonotoneInAllParameters) {
  Rng rng(10);
  for (const auto& [name, instance] : standard_instances(104)) {
    const auto yhat =
        random_bits(static_cast<std::size_t>(instance.num_nodes()), rng, 0.5);
    const RulingSetPruning pruning(1);
    const PruneResult pruned = pruning.apply(instance, yhat);
    std::vector<bool> keep(pruned.pruned.size());
    for (std::size_t i = 0; i < keep.size(); ++i) keep[i] = !pruned.pruned[i];
    const auto sub = induced_subgraph(instance.graph, keep);
    const Instance rest =
        restrict_instance(instance, sub, pruned.surviving_inputs);
    for (Param p : {Param::kNumNodes, Param::kMaxDegree, Param::kArboricity,
                    Param::kMaxIdentity}) {
      EXPECT_LE(eval_param(p, rest), eval_param(p, instance))
          << name << " " << param_name(p);
    }
  }
}

TEST(RulingSetPruning, PrunesNothingOnAllZeroNonEmpty) {
  Instance instance = make_instance(cycle_graph(6));
  const RulingSetPruning pruning(1);
  const PruneResult result =
      pruning.apply(instance, std::vector<std::int64_t>(6, 0));
  for (bool b : result.pruned) EXPECT_FALSE(b);
}

// ----------------------------------------------------------------- P_MM --

TEST(MatchingPruning, SolutionDetectionOnValidMatching) {
  for (const auto& [name, instance] : standard_instances(110)) {
    const auto matching = central_matching(instance);
    ASSERT_TRUE(is_maximal_matching(instance.graph, matching)) << name;
    const MatchingPruning pruning;
    const PruneResult result = pruning.apply(instance, matching);
    for (NodeId v = 0; v < instance.num_nodes(); ++v)
      EXPECT_TRUE(result.pruned[static_cast<std::size_t>(v)]) << name;
  }
}

TEST(MatchingPruning, GluingOnArbitraryTentativeOutputs) {
  Rng rng(11);
  for (const auto& [name, instance] : standard_instances(111)) {
    // Tentative outputs: a random mix of garbage, sentinels and real pairs.
    std::vector<std::int64_t> yhat(
        static_cast<std::size_t>(instance.num_nodes()));
    for (NodeId v = 0; v < instance.num_nodes(); ++v) {
      const double coin = rng.next_double();
      if (coin < 0.4) {
        yhat[static_cast<std::size_t>(v)] = unmatched_value(
            instance.identities[static_cast<std::size_t>(v)]);
      } else if (coin < 0.7 && instance.graph.degree(v) > 0) {
        const NodeId u = instance.graph.neighbors(v)[0];
        yhat[static_cast<std::size_t>(v)] =
            match_value(instance.identities[static_cast<std::size_t>(v)],
                        instance.identities[static_cast<std::size_t>(u)]);
      } else {
        yhat[static_cast<std::size_t>(v)] =
            static_cast<std::int64_t>(rng.next() >> 8);
      }
    }
    const MatchingPruning pruning;
    const PruneResult pruned = pruning.apply(instance, yhat);
    std::vector<bool> keep(pruned.pruned.size());
    for (std::size_t i = 0; i < keep.size(); ++i) keep[i] = !pruned.pruned[i];
    const auto sub = induced_subgraph(instance.graph, keep);
    const Instance rest =
        restrict_instance(instance, sub, pruned.surviving_inputs);
    const auto sub_solution = central_matching(rest);
    std::vector<std::int64_t> combined = yhat;
    for (NodeId v = 0; v < sub.graph.num_nodes(); ++v)
      combined[static_cast<std::size_t>(
          sub.to_old[static_cast<std::size_t>(v)])] =
          sub_solution[static_cast<std::size_t>(v)];
    EXPECT_TRUE(is_maximal_matching(instance.graph, combined)) << name;
  }
}

TEST(MatchingPruning, LocalRealizationAgreesWithApply) {
  Rng rng(12);
  const MatchingPruning pruning;
  for (const auto& [name, instance] : standard_instances(112)) {
    const auto matching = central_matching(instance);
    // Perturb: un-match a random subset by overwriting with sentinels.
    auto yhat = matching;
    for (NodeId v = 0; v < instance.num_nodes(); ++v) {
      if (rng.next_bool(0.3))
        yhat[static_cast<std::size_t>(v)] = unmatched_value(
            instance.identities[static_cast<std::size_t>(v)]);
    }
    const PruneResult expected = pruning.apply(instance, yhat);
    std::int64_t rounds = 0;
    const auto bits = local_prune_bits(pruning, instance, yhat, &rounds);
    for (NodeId v = 0; v < instance.num_nodes(); ++v) {
      EXPECT_EQ(bits[static_cast<std::size_t>(v)] != 0,
                expected.pruned[static_cast<std::size_t>(v)])
          << name << " node " << v;
    }
    if (instance.num_nodes() > 0) {
      EXPECT_LE(rounds, pruning.running_time()) << name;
    }
  }
}

// ---------------------------------------------------------------- P_SLC --

Instance slc_instance(Graph g, std::int64_t delta_hat, std::int64_t bases,
                      std::uint64_t seed) {
  Instance instance = make_instance(std::move(g),
                                    IdentityScheme::kRandomPermuted, seed);
  const auto list = full_slc_list(bases, delta_hat);
  for (auto& input : instance.inputs) input = make_slc_input(delta_hat, list);
  return instance;
}

TEST(SlcPruning, SolutionDetection) {
  Instance instance = slc_instance(cycle_graph(8), 2, 3, 1);
  // Alternate base colors 1/2 around the cycle (even cycle).
  std::vector<std::int64_t> solution(8);
  for (NodeId v = 0; v < 8; ++v)
    solution[static_cast<std::size_t>(v)] = pack_slc_color(1 + v % 2, 1);
  ASSERT_TRUE(SlcProblem().check(instance, solution));
  const SlcPruning pruning;
  const PruneResult result = pruning.apply(instance, solution);
  for (bool b : result.pruned) EXPECT_TRUE(b);
}

TEST(SlcPruning, SurvivorListsLoseCommittedColorsOnly) {
  Instance instance = slc_instance(path_graph(3), 2, 2, 2);
  // Middle node conflicts with nobody; ends pick the same color as middle.
  const std::int64_t c = pack_slc_color(1, 1);
  const std::vector<std::int64_t> yhat{c, pack_slc_color(2, 1), c};
  const SlcPruning pruning;
  const PruneResult result = pruning.apply(instance, yhat);
  EXPECT_TRUE(result.pruned[0]);
  EXPECT_TRUE(result.pruned[1]);
  EXPECT_TRUE(result.pruned[2]);
}

TEST(SlcPruning, ConflictSurvivesAndListShrinks) {
  Instance instance = slc_instance(path_graph(2), 1, 2, 3);
  const std::int64_t c = pack_slc_color(1, 1);
  // Both endpoints claim the same color: neither is "clean"... except both
  // conflict, so neither prunes.
  const std::vector<std::int64_t> both{c, c};
  const SlcPruning pruning;
  const PruneResult r1 = pruning.apply(instance, both);
  EXPECT_FALSE(r1.pruned[0]);
  EXPECT_FALSE(r1.pruned[1]);
  // One claims off-list garbage: the other prunes and its color leaves the
  // survivor's list.
  const std::vector<std::int64_t> mixed{c, pack_slc_color(9, 9)};
  const PruneResult r2 = pruning.apply(instance, mixed);
  EXPECT_TRUE(r2.pruned[0]);
  EXPECT_FALSE(r2.pruned[1]);
  const auto survivor_list = slc_list(r2.surviving_inputs[1]);
  EXPECT_EQ(std::count(survivor_list.begin(), survivor_list.end(), c), 0);
}

TEST(SlcPruning, PreservesConfigurationValidity) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = gnp(30, 0.12, rng);
    const std::int64_t delta_hat = std::max<NodeId>(max_degree(g), 1);
    Instance instance =
        slc_instance(std::move(g), delta_hat, 3, 20 + trial);
    ASSERT_TRUE(is_valid_slc_configuration(instance));
    // Random tentative colors drawn from the lists.
    std::vector<std::int64_t> yhat(
        static_cast<std::size_t>(instance.num_nodes()));
    for (NodeId v = 0; v < instance.num_nodes(); ++v) {
      const auto list = slc_list(instance.inputs[static_cast<std::size_t>(v)]);
      yhat[static_cast<std::size_t>(v)] =
          list[rng.next_below(list.size())];
    }
    const SlcPruning pruning;
    const PruneResult pruned = pruning.apply(instance, yhat);
    std::vector<bool> keep(pruned.pruned.size());
    for (std::size_t i = 0; i < keep.size(); ++i) keep[i] = !pruned.pruned[i];
    const auto sub = induced_subgraph(instance.graph, keep);
    const Instance rest =
        restrict_instance(instance, sub, pruned.surviving_inputs);
    EXPECT_TRUE(is_valid_slc_configuration(rest)) << "trial " << trial;
  }
}

TEST(SlcPruning, LocalRealizationAgreesWithApply) {
  Rng rng(14);
  for (int trial = 0; trial < 6; ++trial) {
    Graph g = gnp(25, 0.15, rng);
    const std::int64_t delta_hat = std::max<NodeId>(max_degree(g), 1);
    Instance instance = slc_instance(std::move(g), delta_hat, 2, 30 + trial);
    std::vector<std::int64_t> yhat(
        static_cast<std::size_t>(instance.num_nodes()));
    for (NodeId v = 0; v < instance.num_nodes(); ++v) {
      const auto list = slc_list(instance.inputs[static_cast<std::size_t>(v)]);
      yhat[static_cast<std::size_t>(v)] = list[rng.next_below(list.size())];
    }
    const SlcPruning pruning;
    const PruneResult expected = pruning.apply(instance, yhat);
    std::int64_t rounds = 0;
    const auto bits = local_prune_bits(pruning, instance, yhat, &rounds);
    for (NodeId v = 0; v < instance.num_nodes(); ++v) {
      EXPECT_EQ(bits[static_cast<std::size_t>(v)] != 0,
                expected.pruned[static_cast<std::size_t>(v)])
          << "trial " << trial << " node " << v;
    }
    EXPECT_LE(rounds, pruning.running_time());
  }
}

}  // namespace
}  // namespace unilocal
