#include <gtest/gtest.h>

#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/graph/io.h"
#include "src/graph/params.h"
#include "src/graph/subgraph.h"

namespace unilocal {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.valid());
}

TEST(Graph, BuilderDeduplicatesAndDropsSelfLoops) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(2, 2);
  b.add_edge(1, 2);
  Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(2, 2));
  EXPECT_TRUE(g.valid());
}

TEST(Graph, FromEdgesZeroNodesIgnoresEverything) {
  const Graph g = Graph::from_edges(0, {{0, 1}, {2, 2}, {-1, 0}});
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.edges().empty());
  EXPECT_TRUE(g.valid());
}

TEST(Graph, FromEdgesKeepsIsolatedNodes) {
  const Graph g = Graph::from_edges(6, {{0, 1}});
  EXPECT_EQ(g.num_nodes(), 6);
  EXPECT_EQ(g.num_edges(), 1);
  for (NodeId v = 2; v < 6; ++v) EXPECT_EQ(g.degree(v), 0);
  EXPECT_TRUE(g.valid());
}

TEST(Graph, FromEdgesNormalizesDuplicatesConsistently) {
  // Duplicates in both orientations, self-loops, and out-of-range endpoints
  // must all collapse without desynchronizing num_edges() from edges().
  const Graph g = Graph::from_edges(
      4, {{0, 1}, {1, 0}, {0, 1}, {3, 3}, {2, 3}, {3, 2}, {1, 7}, {-2, 1}});
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.edges().size(), static_cast<std::size_t>(g.num_edges()));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(3, 2));
  EXPECT_TRUE(g.valid());
}

TEST(Graph, BuilderBuildTwiceIsConsistent) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph first = b.build();
  b.add_edge(1, 2);
  b.add_edge(0, 1);  // duplicate of an already-built edge
  const Graph second = b.build();
  EXPECT_EQ(first.num_edges(), 1);
  EXPECT_EQ(second.num_edges(), 2);
  EXPECT_EQ(second.edges().size(), 2u);
  EXPECT_TRUE(second.valid());
}

TEST(Csr, MatchesGraphAndReversePortsRoundTrip) {
  Rng rng(21);
  const Graph g = gnp(80, 0.08, rng);
  const CsrGraph csr(g);
  ASSERT_EQ(csr.num_nodes(), g.num_nodes());
  ASSERT_EQ(csr.num_directed_edges(), 2 * g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(csr.degree(v), g.degree(v));
    const auto& nbrs = g.neighbors(v);
    for (NodeId j = 0; j < csr.degree(v); ++j) {
      EXPECT_EQ(csr.neighbor(v, j), nbrs[static_cast<std::size_t>(j)]);
      // reverse_port(v, j) is v's port at the far end of the edge.
      const NodeId u = csr.neighbor(v, j);
      const NodeId back = csr.reverse_port(v, j);
      EXPECT_EQ(csr.neighbor(u, back), v);
      // in_edge_index names u's slot towards v.
      EXPECT_EQ(csr.in_edge_index(v, j), csr.edge_index(u, back));
    }
  }
}

TEST(Csr, EmptyAndIsolated) {
  const CsrGraph empty{Graph(0)};
  EXPECT_EQ(empty.num_nodes(), 0);
  EXPECT_EQ(empty.num_directed_edges(), 0);
  const CsrGraph isolated{Graph(5)};
  EXPECT_EQ(isolated.num_nodes(), 5);
  EXPECT_EQ(isolated.num_directed_edges(), 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(isolated.degree(v), 0);
}

TEST(Graph, EdgesSortedAndSymmetric) {
  Rng rng(1);
  Graph g = gnp(60, 0.1, rng);
  EXPECT_TRUE(g.valid());
  for (const auto& [u, v] : g.edges()) {
    EXPECT_LT(u, v);
    EXPECT_TRUE(g.has_edge(v, u));
  }
}

TEST(Generators, PathProperties) {
  Graph g = path_graph(10);
  EXPECT_EQ(g.num_edges(), 9);
  EXPECT_EQ(max_degree(g), 2);
  EXPECT_TRUE(is_forest(g));
  EXPECT_EQ(diameter(g), 9);
}

TEST(Generators, CycleProperties) {
  Graph g = cycle_graph(12);
  EXPECT_EQ(g.num_edges(), 12);
  EXPECT_EQ(max_degree(g), 2);
  EXPECT_FALSE(is_forest(g));
  EXPECT_EQ(num_components(g), 1);
}

TEST(Generators, CompleteGraph) {
  Graph g = complete_graph(8);
  EXPECT_EQ(g.num_edges(), 28);
  EXPECT_EQ(max_degree(g), 7);
  EXPECT_EQ(degeneracy(g), 7);
  EXPECT_EQ(diameter(g), 1);
}

TEST(Generators, CompleteBipartite) {
  Graph g = complete_bipartite(3, 5);
  EXPECT_EQ(g.num_edges(), 15);
  EXPECT_EQ(max_degree(g), 5);
  EXPECT_EQ(degeneracy(g), 3);
}

TEST(Generators, GridProperties) {
  Graph g = grid_graph(6, 5);
  EXPECT_EQ(g.num_nodes(), 30);
  EXPECT_EQ(g.num_edges(), 6 * 4 + 5 * 5);
  EXPECT_EQ(max_degree(g), 4);
  EXPECT_LE(degeneracy(g), 2);  // grids are 2-degenerate
}

TEST(Generators, Hypercube) {
  Graph g = hypercube(4);
  EXPECT_EQ(g.num_nodes(), 16);
  EXPECT_EQ(max_degree(g), 4);
  EXPECT_EQ(g.num_edges(), 32);
  EXPECT_EQ(diameter(g), 4);
}

TEST(Generators, GnpEdgeCountReasonable) {
  Rng rng(2);
  Graph g = gnp(400, 0.02, rng);
  const double expected = 0.02 * 400 * 399 / 2;
  EXPECT_GT(g.num_edges(), expected * 0.6);
  EXPECT_LT(g.num_edges(), expected * 1.4);
  EXPECT_TRUE(g.valid());
}

TEST(Generators, GnpExtremes) {
  Rng rng(3);
  EXPECT_EQ(gnp(50, 0.0, rng).num_edges(), 0);
  EXPECT_EQ(gnp(10, 1.0, rng).num_edges(), 45);
}

TEST(Generators, BoundedDegreeRespectsCap) {
  Rng rng(4);
  for (NodeId cap : {2, 4, 8}) {
    Graph g = random_bounded_degree(200, cap, 0.9, rng);
    EXPECT_LE(max_degree(g), cap);
    EXPECT_GT(g.num_edges(), 0);
  }
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = random_tree(100, rng);
    EXPECT_EQ(g.num_edges(), 99);
    EXPECT_TRUE(is_forest(g));
    EXPECT_EQ(num_components(g), 1);
  }
}

TEST(Generators, RandomForestComponents) {
  Rng rng(6);
  Graph g = random_forest(120, 7, rng);
  EXPECT_TRUE(is_forest(g));
  EXPECT_EQ(num_components(g), 7);
}

TEST(Generators, LayeredForestArboricityBound) {
  Rng rng(7);
  for (int layers : {1, 2, 3}) {
    Graph g = random_layered_forest(150, layers, rng);
    // Union of `layers` forests: arboricity <= layers, degeneracy <= 2*layers.
    EXPECT_LE(degeneracy(g), 2 * layers);
    EXPECT_GE(nash_williams_lower_bound(g), 0);
  }
}

TEST(Generators, PowerLawBasics) {
  Rng rng(8);
  Graph g = power_law(300, 2.5, 4.0, rng);
  EXPECT_TRUE(g.valid());
  EXPECT_GT(g.num_edges(), 100);
}

TEST(Generators, RandomGeometricValid) {
  Rng rng(9);
  Graph g = random_geometric(300, 0.08, rng);
  EXPECT_TRUE(g.valid());
}

TEST(Generators, CaterpillarIsTreeLike) {
  Rng rng(10);
  Graph g = caterpillar(30, 40, rng);
  EXPECT_EQ(g.num_nodes(), 70);
  EXPECT_TRUE(is_forest(g));
  EXPECT_LE(degeneracy(g), 1);
}

TEST(Params, DegeneracyKnownValues) {
  EXPECT_EQ(degeneracy(path_graph(10)), 1);
  EXPECT_EQ(degeneracy(cycle_graph(10)), 2);
  EXPECT_EQ(degeneracy(complete_graph(6)), 5);
  Rng rng(11);
  EXPECT_EQ(degeneracy(random_tree(80, rng)), 1);
}

TEST(Params, DegeneracyMonotoneUnderSubgraphs) {
  Rng rng(12);
  Graph g = gnp(120, 0.05, rng);
  const NodeId full = degeneracy(g);
  std::vector<bool> keep(static_cast<std::size_t>(g.num_nodes()), false);
  for (NodeId v = 0; v < 60; ++v) keep[static_cast<std::size_t>(v)] = true;
  const auto sub = induced_subgraph(g, keep);
  EXPECT_LE(degeneracy(sub.graph), full);
}

TEST(Params, NashWilliamsLowerBoundsDegeneracyProxy) {
  Rng rng(13);
  Graph g = gnp(100, 0.1, rng);
  EXPECT_LE(nash_williams_lower_bound(g), degeneracy(g) + 1);
}

TEST(Params, ComponentsAndBfs) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  Graph g = b.build();
  EXPECT_EQ(num_components(g), 3);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], -1);
  EXPECT_EQ(dist[5], -1);
}

TEST(Subgraph, MappingConsistent) {
  Graph g = cycle_graph(8);
  std::vector<bool> keep(8, true);
  keep[0] = keep[4] = false;
  const auto sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.num_nodes(), 6);
  EXPECT_EQ(sub.graph.num_edges(), 4);  // two paths of 3 nodes
  for (NodeId v = 0; v < sub.graph.num_nodes(); ++v) {
    EXPECT_EQ(sub.to_new[static_cast<std::size_t>(
                  sub.to_old[static_cast<std::size_t>(v)])],
              v);
  }
  EXPECT_EQ(sub.to_new[0], -1);
  EXPECT_EQ(sub.to_new[4], -1);
}

TEST(Subgraph, KeepNothingAndEverything) {
  Graph g = complete_graph(5);
  const auto none = induced_subgraph(g, std::vector<bool>(5, false));
  EXPECT_EQ(none.graph.num_nodes(), 0);
  const auto all = induced_subgraph(g, std::vector<bool>(5, true));
  EXPECT_EQ(all.graph.num_edges(), 10);
}

TEST(Io, EdgeListRoundTrip) {
  Rng rng(14);
  Graph g = gnp(50, 0.1, rng);
  const Graph parsed = from_edge_list_string(to_edge_list_string(g));
  EXPECT_EQ(parsed, g);
}

TEST(Io, RejectsMalformed) {
  EXPECT_THROW(from_edge_list_string("3 1\n0 7\n"), std::runtime_error);
  EXPECT_THROW(from_edge_list_string("3 2\n0 1\n"), std::runtime_error);
  EXPECT_THROW(from_edge_list_string("-1 0\n"), std::runtime_error);
}

TEST(Io, RejectsSelfLoops) {
  EXPECT_THROW(from_edge_list_string("3 1\n1 1\n"), std::runtime_error);
  EXPECT_THROW(from_edge_list_string("3 2\n0 1\n2 2\n"), std::runtime_error);
}

TEST(Io, RejectsWrongEdgeCountHeaders) {
  // Header promises more edges than the body provides.
  EXPECT_THROW(from_edge_list_string("4 3\n0 1\n1 2\n"), std::runtime_error);
  EXPECT_THROW(from_edge_list_string("4 1\n"), std::runtime_error);
  // A negative count is a bad header, not a truncation.
  EXPECT_THROW(from_edge_list_string("4 -1\n"), std::runtime_error);
}

TEST(Io, DotContainsNodesAndEdges) {
  Graph g = path_graph(3);
  const std::string dot = to_dot(g, {"a", "b", "c"});
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"b\""), std::string::npos);
}

}  // namespace
}  // namespace unilocal
