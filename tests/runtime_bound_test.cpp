// Tests for the Section 4.2 machinery: set-sequences, sequence numbers and
// the bounding constant, for the additive and product constructions of
// Observation 4.1.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/runtime_bound.h"

namespace unilocal {
namespace {

AdditiveBound sample_additive() {
  return AdditiveBound{
      {BoundComponent{"x", [](std::int64_t x) { return double(x); }},
       BoundComponent{"2*log2(y)+1",
                      [](std::int64_t y) {
                        return 2.0 * std::log2(double(y)) + 1.0;
                      }}}};
}

TEST(AdditiveBound, EvalSumsComponents) {
  const auto f = sample_additive();
  const std::vector<std::int64_t> args{5, 8};
  EXPECT_DOUBLE_EQ(f.eval(args), 5.0 + 7.0);
}

TEST(AdditiveBound, SetSequenceSingletonDominatesAllCheapVectors) {
  const auto f = sample_additive();
  for (std::int64_t i : {4, 16, 64, 1024}) {
    const auto sequence = f.set_sequence(i);
    ASSERT_EQ(sequence.size(), 1u) << i;
    EXPECT_LE(f.sequence_number(i), 1);
    const auto& x = sequence.front();
    // Coverage: any y with f(y) <= i is coordinate-wise dominated.
    for (std::int64_t y1 = 1; y1 <= i; y1 *= 2) {
      for (std::int64_t y2 = 1; y2 <= 1 << 10; y2 *= 2) {
        const std::vector<std::int64_t> y{y1, y2};
        if (f.eval(y) <= static_cast<double>(i)) {
          EXPECT_LE(y1, x[0]);
          EXPECT_LE(y2, x[1]);
        }
      }
    }
    // Boundedness: f(x) <= c*i.
    EXPECT_LE(f.eval(x),
              static_cast<double>(f.bounding_constant()) * static_cast<double>(i));
  }
}

TEST(AdditiveBound, EmptySequenceWhenComponentExceedsBudget) {
  AdditiveBound f{
      {BoundComponent{"x+100", [](std::int64_t x) { return double(x) + 100; }}}};
  EXPECT_TRUE(f.set_sequence(50).empty());
  EXPECT_FALSE(f.set_sequence(128).empty());
}

ProductBound sample_product() {
  return ProductBound{
      BoundComponent{"x", [](std::int64_t x) { return double(x); }},
      BoundComponent{"log2(y)+1",
                     [](std::int64_t y) { return std::log2(double(y)) + 1.0; }}};
}

TEST(ProductBound, EvalMultiplies) {
  const auto f = sample_product();
  const std::vector<std::int64_t> args{3, 4};
  EXPECT_DOUBLE_EQ(f.eval(args), 9.0);
}

TEST(ProductBound, SequenceNumberIsLogarithmic) {
  const auto f = sample_product();
  EXPECT_EQ(f.sequence_number(1), 1);
  EXPECT_EQ(f.sequence_number(2), 2);
  EXPECT_EQ(f.sequence_number(1024), 11);
}

TEST(ProductBound, SetSequencePropertiesHold) {
  const auto f = sample_product();
  for (std::int64_t i : {2, 8, 64, 512}) {
    const auto sequence = f.set_sequence(i);
    EXPECT_LE(static_cast<std::int64_t>(sequence.size()), f.sequence_number(i));
    for (const auto& x : sequence) {
      EXPECT_LE(f.eval(x), static_cast<double>(f.bounding_constant()) *
                               static_cast<double>(i));
    }
    // Coverage over a grid of candidate vectors.
    for (std::int64_t y1 = 1; y1 <= i; y1 *= 2) {
      for (std::int64_t y2 = 1; y2 <= (std::int64_t{1} << 16); y2 *= 4) {
        const std::vector<std::int64_t> y{y1, y2};
        if (f.eval(y) > static_cast<double>(i)) continue;
        bool dominated = false;
        for (const auto& x : sequence) {
          if (x[0] >= y1 && x[1] >= y2) {
            dominated = true;
            break;
          }
        }
        EXPECT_TRUE(dominated)
            << "i=" << i << " y=(" << y1 << "," << y2 << ")";
      }
    }
  }
}

TEST(Bounds, DescribeMentionsComponents) {
  EXPECT_NE(sample_additive().describe().find("2*log2(y)+1"),
            std::string::npos);
  EXPECT_NE(sample_product().describe().find("product"), std::string::npos);
}

}  // namespace
}  // namespace unilocal
