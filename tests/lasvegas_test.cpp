// Theorem 2: weak Monte-Carlo -> Las Vegas. The produced uniform algorithm
// must be correct on EVERY seed (probability-1 correctness), with expected
// ledger comparable to the Monte-Carlo budget.
#include <gtest/gtest.h>

#include <numeric>

#include "src/algo/luby.h"
#include "src/algo/ruling_set_mc.h"
#include "src/core/mc_to_lv.h"
#include "src/problems/mis.h"
#include "src/problems/ruling_set.h"
#include "src/prune/ruling_set_prune.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

using testing_support::standard_instances;

TEST(Theorem2, LasVegasMisAlwaysCorrect) {
  const auto algorithm = make_truncated_luby_mis();
  const RulingSetPruning pruning(1);
  for (const auto& [name, instance] : standard_instances(310)) {
    for (std::uint64_t seed : {1u, 7u, 23u}) {
      UniformRunOptions options;
      options.seed = seed;
      const UniformRunResult result =
          run_las_vegas_transformer(instance, *algorithm, pruning, options);
      EXPECT_TRUE(result.solved) << name << " seed " << seed;
      EXPECT_TRUE(is_maximal_independent_set(instance.graph, result.outputs))
          << name << " seed " << seed;
    }
  }
}

TEST(Theorem2, LasVegasRulingSetAlwaysCorrect) {
  for (int beta : {1, 2}) {
    const auto algorithm = make_mc_ruling_set(beta);
    const RulingSetPruning pruning(beta);
    for (const auto& [name, instance] : standard_instances(311)) {
      UniformRunOptions options;
      options.seed = 5;
      const UniformRunResult result =
          run_las_vegas_transformer(instance, *algorithm, pruning, options);
      EXPECT_TRUE(result.solved) << name << " beta " << beta;
      EXPECT_TRUE(
          is_two_beta_ruling_set(instance.graph, result.outputs, beta))
          << name << " beta " << beta;
    }
  }
}

TEST(Theorem2, ExpectedLedgerNearMonteCarloBudget) {
  const auto algorithm = make_truncated_luby_mis();
  const RulingSetPruning pruning(1);
  Rng rng(1);
  Instance instance = make_instance(gnp(200, 0.04, rng),
                                    IdentityScheme::kRandomPermuted, 2);
  const double f_star = bound_at_correct_params(*algorithm, instance);
  std::vector<double> ledgers;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    UniformRunOptions options;
    options.seed = seed;
    const UniformRunResult result =
        run_las_vegas_transformer(instance, *algorithm, pruning, options);
    ASSERT_TRUE(result.solved);
    ledgers.push_back(static_cast<double>(result.total_rounds));
  }
  const double mean =
      std::accumulate(ledgers.begin(), ledgers.end(), 0.0) / ledgers.size();
  // Expected O(f*) with the proof's constants (c=1 additive, doubling sum).
  EXPECT_LE(mean, 16.0 * f_star + 64.0);
}

TEST(Theorem2, SurvivorsShrinkAcrossFailedAttempts) {
  // With a pathologically small budget (forced via tiny guesses), the MC
  // run fails globally but the pruning still makes progress.
  const auto algorithm = make_truncated_luby_mis();
  const RulingSetPruning pruning(1);
  Rng rng(2);
  Instance instance = make_instance(gnp(150, 0.05, rng),
                                    IdentityScheme::kRandomPermuted, 3);
  const auto tiny = algorithm->instantiate(std::vector<std::int64_t>{2});
  AlternatingDriver driver(instance, pruning);
  const NodeId before = driver.remaining();
  driver.run_step(*tiny, /*budget=*/4, /*seed=*/1);
  const NodeId after = driver.remaining();
  EXPECT_LT(after, before);
  EXPECT_GT(after, 0);  // but not everything was solved in 4 rounds
}

}  // namespace
}  // namespace unilocal
