#include <gtest/gtest.h>

#include "src/core/param.h"
#include "src/util/table.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table({"a", "long-header"});
  table.add_row({"wide-cell", "1"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| a         | long-header |"), std::string::npos);
  EXPECT_NE(out.find("| wide-cell | 1           |"), std::string::npos);
  EXPECT_NE(out.find("|-"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable table({"x", "y", "z"});
  table.add_row({"1"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| 1 |   |   |"), std::string::npos);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::fmt(std::int64_t{42}), "42");
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
}

TEST(ParamOracle, NamesAndValues) {
  Instance instance = make_instance(complete_graph(5),
                                    IdentityScheme::kSequential);
  EXPECT_EQ(param_name(Param::kNumNodes), "n");
  EXPECT_EQ(param_name(Param::kMaxDegree), "Delta");
  EXPECT_EQ(param_name(Param::kArboricity), "a");
  EXPECT_EQ(param_name(Param::kMaxIdentity), "m");
  EXPECT_EQ(eval_param(Param::kNumNodes, instance), 5);
  EXPECT_EQ(eval_param(Param::kMaxDegree, instance), 4);
  EXPECT_EQ(eval_param(Param::kMaxIdentity, instance), 5);
  EXPECT_EQ(eval_param(Param::kArboricity, instance), 4);  // degeneracy K5
}

TEST(ParamOracle, CorrectGuessesAlignWithSet) {
  Instance instance = make_instance(cycle_graph(9),
                                    IdentityScheme::kSequential);
  const ParamSet params{Param::kMaxDegree, Param::kNumNodes};
  const auto guesses = correct_guesses(params, instance);
  ASSERT_EQ(guesses.size(), 2u);
  EXPECT_EQ(guesses[0], 2);
  EXPECT_EQ(guesses[1], 9);
}

TEST(ParamOracle, ArboricityProxyOnEmptyGraph) {
  Instance instance = make_instance(Graph(3), IdentityScheme::kSequential);
  EXPECT_EQ(eval_param(Param::kArboricity, instance), 1);  // clamped to 1
}

}  // namespace
}  // namespace unilocal
