// Unit tests for the frontier-engine work-list primitives
// (src/runtime/frontier.h): stamp-keyed membership, wake-round admission
// with jump-ahead, and live-list compaction.
#include <gtest/gtest.h>

#include "src/runtime/frontier.h"

namespace unilocal {
namespace {

TEST(StampSet, InsertIsOncePerStamp) {
  StampSet set;
  set.reset(4);
  EXPECT_TRUE(set.insert(2, 0));
  EXPECT_FALSE(set.insert(2, 0));
  EXPECT_TRUE(set.contains(2, 0));
  EXPECT_FALSE(set.contains(1, 0));
  // Bumping the stamp empties the set without touching memory.
  EXPECT_TRUE(set.insert(2, 1));
  EXPECT_FALSE(set.contains(2, 0));
}

TEST(StampSet, ResetClearsMembership) {
  StampSet set;
  set.reset(2);
  EXPECT_TRUE(set.insert(0, 5));
  set.reset(2);
  EXPECT_TRUE(set.insert(0, 5));
}

TEST(WakeSchedule, AdmitsInWakeThenIdOrder) {
  WakeSchedule schedule;
  schedule.init({3, 0, 0, -2, 5});
  std::vector<NodeId> admitted;
  schedule.admit(0, [&](NodeId v) { admitted.push_back(v); });
  // Negative wake rounds clamp to 0; ties admit by node id.
  EXPECT_EQ(admitted, (std::vector<NodeId>{1, 2, 3}));
  admitted.clear();
  schedule.admit(2, [&](NodeId v) { admitted.push_back(v); });
  EXPECT_TRUE(admitted.empty());
  schedule.admit(4, [&](NodeId v) { admitted.push_back(v); });
  EXPECT_EQ(admitted, (std::vector<NodeId>{0}));
  EXPECT_FALSE(schedule.exhausted());
  schedule.admit(5, [&](NodeId v) { admitted.push_back(v); });
  EXPECT_TRUE(schedule.exhausted());
}

TEST(WakeSchedule, NextPendingSkipsFinishedNodes) {
  WakeSchedule schedule;
  schedule.init({0, 4, 7, 9});
  std::vector<char> finished(4, 0);
  schedule.admit(0, [](NodeId) {});
  // Nodes 1 and 2 finished before their wake rounds matter: the jump target
  // must be node 3's wake round, and the skipped entries are consumed.
  finished[1] = finished[2] = 1;
  const auto next = schedule.next_pending(finished);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 9);
  std::vector<NodeId> admitted;
  schedule.admit(9, [&](NodeId v) { admitted.push_back(v); });
  EXPECT_EQ(admitted, (std::vector<NodeId>{3}));
  EXPECT_FALSE(schedule.next_pending(finished).has_value());
  EXPECT_TRUE(schedule.exhausted());
}

TEST(WakeSchedule, EmptyInit) {
  WakeSchedule schedule;
  schedule.init({});
  EXPECT_TRUE(schedule.exhausted());
  std::vector<char> finished;
  EXPECT_FALSE(schedule.next_pending(finished).has_value());
}

TEST(EraseFinished, CompactsPreservingOrder) {
  std::vector<NodeId> live{0, 1, 2, 3, 4, 5};
  std::vector<char> finished{0, 1, 0, 1, 1, 0};
  erase_finished(live, finished);
  EXPECT_EQ(live, (std::vector<NodeId>{0, 2, 5}));
  erase_finished(live, finished);  // idempotent
  EXPECT_EQ(live, (std::vector<NodeId>{0, 2, 5}));
  std::fill(finished.begin(), finished.end(), 1);
  erase_finished(live, finished);
  EXPECT_TRUE(live.empty());
}

}  // namespace
}  // namespace unilocal
