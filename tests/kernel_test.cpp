// Step-kernel equivalence: for every lowered registry building block the
// flat-kernel engine path (RunOptions::kernel_mode = auto/on) must produce
// RunResult fields bit-identical to the Process vtable path (off) and to
// the preserved seed engine (src/runtime/reference.cpp) — on every
// instance family, thread count, and both engine modes (simultaneous and
// synchronizer). Plus the KernelRegistry surface: names, error paths, the
// auto fallback for algorithms with no lowering, and `on` refusing them.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/algo/cole_vishkin.h"
#include "src/algo/color_reduce.h"
#include "src/algo/greedy_mis.h"
#include "src/algo/linial.h"
#include "src/algo/luby.h"
#include "src/algo/ruling_set_mc.h"
#include "src/graph/params.h"
#include "src/runtime/kernel.h"
#include "src/runtime/reference.h"
#include "src/runtime/runner.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

using testing_support::standard_instances;

void expect_same(const RunResult& want, const RunResult& got,
                 const std::string& label) {
  EXPECT_EQ(want.outputs, got.outputs) << label;
  EXPECT_EQ(want.finish_rounds, got.finish_rounds) << label;
  EXPECT_EQ(want.global_finish_rounds, got.global_finish_rounds) << label;
  EXPECT_EQ(want.all_finished, got.all_finished) << label;
  EXPECT_EQ(want.rounds_used, got.rounds_used) << label;
  EXPECT_EQ(want.global_rounds, got.global_rounds) << label;
  EXPECT_EQ(want.messages_sent, got.messages_sent) << label;
  EXPECT_EQ(want.max_message_words, got.max_message_words) << label;
}

/// Reference engine vs every (kernel mode x thread count) combination.
/// `options.wake_rounds` decides the engine mode: empty = simultaneous,
/// non-empty = synchronizer — callers exercise both.
void check_kernel_equivalence(const Instance& instance,
                              const Algorithm& algorithm, RunOptions options,
                              const std::string& label) {
  options.kernel_mode = KernelMode::kOff;
  const RunResult want = run_local_reference(instance, algorithm, options);
  for (const int threads : {1, 2, 8}) {
    options.num_threads = threads;
    for (const KernelMode mode :
         {KernelMode::kOff, KernelMode::kAuto, KernelMode::kOn}) {
      options.kernel_mode = mode;
      const RunResult got = run_local(instance, algorithm, options);
      const std::string tag = label + "/" + kernel_mode_name(mode) +
                              "/threads=" + std::to_string(threads);
      expect_same(want, got, tag);
      // The path split must report where the steps actually ran.
      if (mode == KernelMode::kOff) {
        EXPECT_EQ(got.stats.kernel_steps, 0) << tag;
        EXPECT_EQ(got.stats.vtable_steps, got.stats.total_steps) << tag;
      } else {
        EXPECT_EQ(got.stats.kernel_steps, got.stats.total_steps) << tag;
        EXPECT_EQ(got.stats.vtable_steps, 0) << tag;
      }
    }
  }
}

/// Both engine modes: the simultaneous loop and, via a staggered wake-round
/// grid, the synchronizer loop.
void check_both_engine_modes(const Instance& instance,
                             const Algorithm& algorithm, std::uint64_t seed,
                             const std::string& label) {
  RunOptions options;
  options.seed = seed;
  check_kernel_equivalence(instance, algorithm, options, label + "/simul");

  Rng wake_rng(seed + 1000);
  options.wake_rounds.resize(static_cast<std::size_t>(instance.num_nodes()));
  for (auto& w : options.wake_rounds)
    w = static_cast<std::int64_t>(wake_rng.next_below(5));
  check_kernel_equivalence(instance, algorithm, options, label + "/sync");
}

TEST(KernelEquivalence, LubyAndGreedyAcrossInstances) {
  const LubyMis luby;
  const GreedyMis greedy;
  for (const auto& named : standard_instances(/*seed=*/61)) {
    check_both_engine_modes(named.instance, luby, 7, "luby/" + named.name);
    check_both_engine_modes(named.instance, greedy, 7, "greedy/" + named.name);
  }
}

TEST(KernelEquivalence, TruncatedLubyKeepsKernelPath) {
  // The truncation wrapper lowers by wrapping the inner kernel; a budget
  // that bites mid-run must stay bit-identical on the kernel path too.
  const TruncatedAlgorithm truncated(std::make_shared<LubyMis>(), 3, 0);
  ASSERT_NE(truncated.kernel(), nullptr);
  for (const auto& named : standard_instances(/*seed=*/67))
    check_both_engine_modes(named.instance, truncated, 11,
                            "truncated-luby/" + named.name);
}

TEST(KernelEquivalence, LinialAcrossInstances) {
  for (const auto& named : standard_instances(/*seed=*/71)) {
    const std::int64_t delta =
        std::max<std::int64_t>(max_degree(named.instance.graph), 1);
    const std::int64_t m =
        std::max<std::int64_t>(named.instance.max_identity(), 2);
    const LinialColoring linial(delta, m);
    check_both_engine_modes(named.instance, linial, 13,
                            "linial/" + named.name);
  }
}

TEST(KernelEquivalence, ColorReduceAcrossInstances) {
  // Identity inputs act as the starting coloring; both the deg+1 target
  // (0) and a fixed palette exercise the per-port state cache. The
  // reduction runs one round per eliminated color, so skip the
  // sparse-identity instances whose color space is astronomically large
  // (as tests/algo_coloring_test.cpp does).
  for (const auto& named : standard_instances(/*seed=*/73)) {
    if (named.instance.num_nodes() == 0) continue;
    const std::int64_t m = named.instance.max_identity();
    if (m > 4096) continue;
    Instance seeded = named.instance;
    for (NodeId v = 0; v < seeded.num_nodes(); ++v)
      seeded.inputs[static_cast<std::size_t>(v)] = {
          seeded.identities[static_cast<std::size_t>(v)]};
    const ColorReduce to_deg_plus_one(m, 0);
    const ColorReduce to_fixed(m, 5);
    check_both_engine_modes(seeded, to_deg_plus_one, 17,
                            "color-reduce-d1/" + named.name);
    check_both_engine_modes(seeded, to_fixed, 17,
                            "color-reduce-5/" + named.name);
  }
}

TEST(KernelEquivalence, ColeVishkinOnRootedForests) {
  Rng rng(79);
  std::vector<testing_support::NamedInstance> forests;
  forests.push_back(
      {"tree", make_rooted_forest_instance(random_tree(120, rng), 81)});
  forests.push_back(
      {"forest", make_rooted_forest_instance(random_forest(90, 6, rng), 82)});
  forests.push_back({"path", make_rooted_forest_instance(path_graph(33), 83)});
  forests.push_back({"singleton", make_rooted_forest_instance(Graph(1), 84)});
  for (const auto& named : forests) {
    const ColeVishkin cv(named.instance.max_identity());
    check_both_engine_modes(named.instance, cv, 19, "cv/" + named.name);
  }
}

TEST(KernelRegistry, DefaultTableListsTheLoweredBlocks) {
  const KernelRegistry& registry = default_kernel_registry();
  const std::vector<std::string> expected = {
      "cole-vishkin", "color-reduce", "greedy-mis", "linial", "luby"};
  EXPECT_EQ(registry.names(), expected);
  for (const std::string& name : expected) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_FALSE(registry.spec(name).describe.empty()) << name;
  }
  EXPECT_FALSE(registry.contains("no-such-kernel"));
}

TEST(KernelRegistry, LowersMatchingAlgorithmsOnly) {
  const KernelRegistry& registry = default_kernel_registry();
  const LubyMis luby;
  const GreedyMis greedy;
  // The right row lowers; the wrong row returns null (not an error).
  EXPECT_NE(registry.lower("luby", luby), nullptr);
  EXPECT_NE(registry.lower("greedy-mis", greedy), nullptr);
  EXPECT_EQ(registry.lower("luby", greedy), nullptr);
  EXPECT_EQ(registry.lower("cole-vishkin", luby), nullptr);
  // Unknown keys throw.
  EXPECT_THROW(registry.lower("no-such-kernel", luby), std::runtime_error);
  EXPECT_THROW(registry.spec("no-such-kernel"), std::runtime_error);
}

TEST(KernelRegistry, LoweredKernelMatchesAlgorithmKernel) {
  // The registry adapter and Algorithm::kernel() expose the same lowering.
  const LubyMis luby;
  const auto via_registry = default_kernel_registry().lower("luby", luby);
  const auto via_algorithm = luby.kernel();
  ASSERT_NE(via_registry, nullptr);
  ASSERT_NE(via_algorithm, nullptr);
  EXPECT_EQ(via_registry->name, via_algorithm->name);
}

TEST(KernelMode, AutoFallsBackToVtableForUnloweredAlgorithms) {
  // BetaLubyRulingSet has no lowering: auto must silently run the vtable
  // path bit-identically to off, and report the split accordingly.
  Rng rng(83);
  const Instance instance = make_instance(gnp(80, 0.06, rng),
                                          IdentityScheme::kRandomPermuted, 3);
  const BetaLubyRulingSet ruling(2);
  ASSERT_EQ(ruling.kernel(), nullptr);
  RunOptions options;
  options.seed = 29;
  options.kernel_mode = KernelMode::kOff;
  const RunResult off = run_local(instance, ruling, options);
  options.kernel_mode = KernelMode::kAuto;
  const RunResult fallback = run_local(instance, ruling, options);
  expect_same(off, fallback, "ruling-fallback");
  EXPECT_EQ(fallback.stats.kernel_steps, 0);
  EXPECT_GT(fallback.stats.vtable_steps, 0);
}

TEST(KernelMode, OnThrowsForUnloweredAlgorithms) {
  Rng rng(89);
  const Instance instance = make_instance(path_graph(10),
                                          IdentityScheme::kSequential, 1);
  const BetaLubyRulingSet ruling(2);
  RunOptions options;
  options.kernel_mode = KernelMode::kOn;
  EXPECT_THROW(run_local(instance, ruling, options), std::runtime_error);
}

TEST(KernelMode, NamesRoundTrip) {
  for (const KernelMode mode :
       {KernelMode::kOff, KernelMode::kAuto, KernelMode::kOn})
    EXPECT_EQ(parse_kernel_mode(kernel_mode_name(mode)), mode);
  EXPECT_THROW(parse_kernel_mode("bogus"), std::runtime_error);
  EXPECT_THROW(parse_kernel_mode(""), std::runtime_error);
}

}  // namespace
}  // namespace unilocal
