// Step-kernel equivalence: for every lowered registry building block the
// flat-kernel engine path (RunOptions::kernel_mode = auto/on) must produce
// RunResult fields bit-identical to the Process vtable path (off) and to
// the preserved seed engine (src/runtime/reference.cpp) — on every
// instance family, thread count, and both engine modes (simultaneous and
// synchronizer). Plus the KernelRegistry surface: names, error paths, the
// auto fallback for algorithms with no lowering, and `on` refusing them.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/algo/arb_coloring.h"
#include "src/algo/cole_vishkin.h"
#include "src/algo/color_reduce.h"
#include "src/algo/edge_color_mm.h"
#include "src/algo/greedy_mis.h"
#include "src/algo/hpartition.h"
#include "src/algo/linial.h"
#include "src/algo/luby.h"
#include "src/algo/mis_from_coloring.h"
#include "src/algo/ruling_set_mc.h"
#include "src/core/coloring_transform.h"
#include "src/graph/params.h"
#include "src/runtime/campaign.h"
#include "src/runtime/kernel.h"
#include "src/runtime/reference.h"
#include "src/runtime/runner.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

using testing_support::standard_instances;

void expect_same(const RunResult& want, const RunResult& got,
                 const std::string& label) {
  EXPECT_EQ(want.outputs, got.outputs) << label;
  EXPECT_EQ(want.finish_rounds, got.finish_rounds) << label;
  EXPECT_EQ(want.global_finish_rounds, got.global_finish_rounds) << label;
  EXPECT_EQ(want.all_finished, got.all_finished) << label;
  EXPECT_EQ(want.rounds_used, got.rounds_used) << label;
  EXPECT_EQ(want.global_rounds, got.global_rounds) << label;
  EXPECT_EQ(want.messages_sent, got.messages_sent) << label;
  EXPECT_EQ(want.max_message_words, got.max_message_words) << label;
}

/// Reference engine vs every (kernel mode x thread count) combination.
/// `options.wake_rounds` decides the engine mode: empty = simultaneous,
/// non-empty = synchronizer — callers exercise both.
void check_kernel_equivalence(const Instance& instance,
                              const Algorithm& algorithm, RunOptions options,
                              const std::string& label) {
  options.kernel_mode = KernelMode::kOff;
  const RunResult want = run_local_reference(instance, algorithm, options);
  for (const int threads : {1, 2, 8}) {
    options.num_threads = threads;
    for (const KernelMode mode :
         {KernelMode::kOff, KernelMode::kAuto, KernelMode::kOn}) {
      options.kernel_mode = mode;
      const RunResult got = run_local(instance, algorithm, options);
      const std::string tag = label + "/" + kernel_mode_name(mode) +
                              "/threads=" + std::to_string(threads);
      expect_same(want, got, tag);
      // The path split must report where the steps actually ran.
      if (mode == KernelMode::kOff) {
        EXPECT_EQ(got.stats.kernel_steps, 0) << tag;
        EXPECT_EQ(got.stats.vtable_steps, got.stats.total_steps) << tag;
      } else {
        EXPECT_EQ(got.stats.kernel_steps, got.stats.total_steps) << tag;
        EXPECT_EQ(got.stats.vtable_steps, 0) << tag;
      }
      // Batched-step accounting: only kernel steps batch, each batch call
      // covers at least one step, and the vtable path never batches.
      EXPECT_LE(got.stats.kernel_batched_steps, got.stats.kernel_steps)
          << tag;
      if (mode == KernelMode::kOff) {
        EXPECT_EQ(got.stats.kernel_batched_steps, 0) << tag;
        EXPECT_EQ(got.stats.kernel_batch_calls, 0) << tag;
      }
      EXPECT_EQ(got.stats.kernel_batch_calls > 0,
                got.stats.kernel_batched_steps > 0)
          << tag;
      if (got.stats.kernel_batch_calls > 0)
        EXPECT_GE(got.stats.kernel_batched_steps,
                  got.stats.kernel_batch_calls)
            << tag;
    }
  }
}

/// Both engine modes: the simultaneous loop and, via a staggered wake-round
/// grid, the synchronizer loop.
void check_both_engine_modes(const Instance& instance,
                             const Algorithm& algorithm, std::uint64_t seed,
                             const std::string& label) {
  RunOptions options;
  options.seed = seed;
  check_kernel_equivalence(instance, algorithm, options, label + "/simul");

  Rng wake_rng(seed + 1000);
  options.wake_rounds.resize(static_cast<std::size_t>(instance.num_nodes()));
  for (auto& w : options.wake_rounds)
    w = static_cast<std::int64_t>(wake_rng.next_below(5));
  check_kernel_equivalence(instance, algorithm, options, label + "/sync");
}

TEST(KernelEquivalence, LubyAndGreedyAcrossInstances) {
  const LubyMis luby;
  const GreedyMis greedy;
  for (const auto& named : standard_instances(/*seed=*/61)) {
    check_both_engine_modes(named.instance, luby, 7, "luby/" + named.name);
    check_both_engine_modes(named.instance, greedy, 7, "greedy/" + named.name);
  }
}

TEST(KernelEquivalence, TruncatedLubyKeepsKernelPath) {
  // The truncation wrapper lowers by wrapping the inner kernel; a budget
  // that bites mid-run must stay bit-identical on the kernel path too.
  const TruncatedAlgorithm truncated(std::make_shared<LubyMis>(), 3, 0);
  ASSERT_NE(truncated.kernel(), nullptr);
  for (const auto& named : standard_instances(/*seed=*/67))
    check_both_engine_modes(named.instance, truncated, 11,
                            "truncated-luby/" + named.name);
}

TEST(KernelEquivalence, LinialAcrossInstances) {
  for (const auto& named : standard_instances(/*seed=*/71)) {
    const std::int64_t delta =
        std::max<std::int64_t>(max_degree(named.instance.graph), 1);
    const std::int64_t m =
        std::max<std::int64_t>(named.instance.max_identity(), 2);
    const LinialColoring linial(delta, m);
    check_both_engine_modes(named.instance, linial, 13,
                            "linial/" + named.name);
  }
}

TEST(KernelEquivalence, ColorReduceAcrossInstances) {
  // Identity inputs act as the starting coloring; both the deg+1 target
  // (0) and a fixed palette exercise the per-port state cache. The
  // reduction runs one round per eliminated color, so skip the
  // sparse-identity instances whose color space is astronomically large
  // (as tests/algo_coloring_test.cpp does).
  for (const auto& named : standard_instances(/*seed=*/73)) {
    if (named.instance.num_nodes() == 0) continue;
    const std::int64_t m = named.instance.max_identity();
    if (m > 4096) continue;
    Instance seeded = named.instance;
    for (NodeId v = 0; v < seeded.num_nodes(); ++v)
      seeded.inputs[static_cast<std::size_t>(v)] = {
          seeded.identities[static_cast<std::size_t>(v)]};
    const ColorReduce to_deg_plus_one(m, 0);
    const ColorReduce to_fixed(m, 5);
    check_both_engine_modes(seeded, to_deg_plus_one, 17,
                            "color-reduce-d1/" + named.name);
    check_both_engine_modes(seeded, to_fixed, 17,
                            "color-reduce-5/" + named.name);
  }
}

TEST(KernelEquivalence, ColeVishkinOnRootedForests) {
  Rng rng(79);
  std::vector<testing_support::NamedInstance> forests;
  forests.push_back(
      {"tree", make_rooted_forest_instance(random_tree(120, rng), 81)});
  forests.push_back(
      {"forest", make_rooted_forest_instance(random_forest(90, 6, rng), 82)});
  forests.push_back({"path", make_rooted_forest_instance(path_graph(33), 83)});
  forests.push_back({"singleton", make_rooted_forest_instance(Graph(1), 84)});
  for (const auto& named : forests) {
    const ColeVishkin cv(named.instance.max_identity());
    check_both_engine_modes(named.instance, cv, 19, "cv/" + named.name);
  }
}

TEST(KernelEquivalence, BetaLubyRulingSetAcrossInstances) {
  for (const int beta : {1, 2, 3}) {
    const BetaLubyRulingSet ruling(beta);
    ASSERT_NE(ruling.kernel(), nullptr);
    for (const auto& named : standard_instances(/*seed=*/91))
      check_both_engine_modes(named.instance, ruling, 23,
                              "beta-luby-" + std::to_string(beta) + "/" +
                                  named.name);
  }
}

TEST(KernelEquivalence, HPartitionAcrossInstances) {
  for (const auto& named : standard_instances(/*seed=*/97)) {
    const HPartition peel(2, std::max<NodeId>(named.instance.num_nodes(), 2));
    ASSERT_NE(peel.kernel(), nullptr);
    check_both_engine_modes(named.instance, peel, 29,
                            "hpartition/" + named.name);
  }
}

TEST(KernelEquivalence, OutLinialAcrossInstances) {
  // Standalone (all layers 0): every neighbour comparison falls back to
  // the identity tiebreak, which still exercises the orientation port
  // state and the out-restricted reduction.
  for (const auto& named : standard_instances(/*seed=*/101)) {
    const std::int64_t m =
        std::max<std::int64_t>(named.instance.max_identity(), 2);
    const OutLinialColoring coloring(3, m);
    ASSERT_NE(coloring.kernel(), nullptr);
    check_both_engine_modes(named.instance, coloring, 31,
                            "out-linial/" + named.name);
  }
}

TEST(KernelEquivalence, MisColorSweepAcrossInstances) {
  // Inputs seed the sweep color; identity-derived values exercise early
  // finishes, neighbour suppression, and the past-palette cutoff alike
  // (bit-identity does not need the input coloring to be proper).
  for (const auto& named : standard_instances(/*seed=*/103)) {
    const std::int64_t k = 6;
    Instance seeded = named.instance;
    for (NodeId v = 0; v < seeded.num_nodes(); ++v)
      seeded.inputs[static_cast<std::size_t>(v)] = {
          seeded.identities[static_cast<std::size_t>(v)] % k + 1};
    const MisColorSweep sweep(k);
    ASSERT_NE(sweep.kernel(), nullptr);
    check_both_engine_modes(seeded, sweep, 37, "mis-sweep/" + named.name);
  }
}

TEST(KernelEquivalence, ProposalMatchingAcrossInstances) {
  for (const auto& named : standard_instances(/*seed=*/107)) {
    const std::int64_t delta =
        std::max<std::int64_t>(max_degree(named.instance.graph), 1);
    Instance seeded = named.instance;
    for (NodeId v = 0; v < seeded.num_nodes(); ++v)
      seeded.inputs[static_cast<std::size_t>(v)] = {
          seeded.identities[static_cast<std::size_t>(v)] % (delta + 1) + 1};
    const ProposalMatching matching(delta);
    ASSERT_NE(matching.kernel(), nullptr);
    check_both_engine_modes(seeded, matching, 41,
                            "proposal-matching/" + named.name);
  }
}

TEST(KernelEquivalence, ChainPipelinesAcrossInstances) {
  // The composite chain kernel against full registry pipelines: coloring
  // MIS (Linial -> reduce -> sweep), matching (Linial -> reduce ->
  // proposals), and the arboricity coloring (H-partition -> out-Linial).
  for (const auto& named : standard_instances(/*seed=*/109)) {
    if (named.instance.num_nodes() == 0) continue;
    const std::int64_t delta =
        std::max<std::int64_t>(max_degree(named.instance.graph), 1);
    const std::int64_t m =
        std::max<std::int64_t>(named.instance.max_identity(), 2);
    const auto mis = make_coloring_mis_algorithm(delta, m);
    const auto matching = make_matching_algorithm(delta, m);
    const auto arb = make_arb_coloring_algorithm(
        2, std::max<NodeId>(named.instance.num_nodes(), 2), m);
    ASSERT_NE(mis->kernel(), nullptr) << named.name;
    ASSERT_NE(matching->kernel(), nullptr) << named.name;
    ASSERT_NE(arb->kernel(), nullptr) << named.name;
    check_both_engine_modes(named.instance, *mis, 43,
                            "chain-mis/" + named.name);
    check_both_engine_modes(named.instance, *matching, 43,
                            "chain-matching/" + named.name);
    check_both_engine_modes(named.instance, *arb, 43,
                            "chain-arb/" + named.name);
  }
}

TEST(KernelEquivalence, DelayedNetworkBitIdentity) {
  // The event-queue delivery layer runs kernels on the scalar path; the
  // kernel/vtable split must still be output-invariant under every preset.
  Rng rng(113);
  const Instance instance = make_instance(gnp(90, 0.06, rng),
                                          IdentityScheme::kRandomPermuted, 5);
  const LubyMis luby;
  const auto mis = make_coloring_mis_algorithm(
      std::max<std::int64_t>(max_degree(instance.graph), 1),
      std::max<std::int64_t>(instance.max_identity(), 2));
  for (const DelayPreset preset :
       {DelayPreset::kUniform, DelayPreset::kWeighted,
        DelayPreset::kHeavyTail}) {
    RunOptions options;
    options.seed = 47;
    options.network.kind = NetworkKind::kDelayed;
    options.network.preset = preset;
    for (const Algorithm* algorithm :
         std::initializer_list<const Algorithm*>{&luby, mis.get()}) {
      options.kernel_mode = KernelMode::kOff;
      const RunResult off = run_local(instance, *algorithm, options);
      options.kernel_mode = KernelMode::kOn;
      const RunResult on = run_local(instance, *algorithm, options);
      const std::string tag = std::string("delayed/") + algorithm->name();
      expect_same(off, on, tag);
      EXPECT_EQ(on.stats.kernel_steps, on.stats.total_steps) << tag;
      EXPECT_EQ(on.stats.vtable_steps, 0) << tag;
    }
  }
}

TEST(KernelEquivalence, SlcAdapterThroughColoringTransform) {
  // The Theorem 5 transform wraps its coloring black box in the SLC output
  // adapter; under kernel mode `on` the whole pipeline must run lowered
  // and reproduce the vtable-path result exactly.
  Rng rng(127);
  const Instance instance = make_instance(gnp(70, 0.08, rng),
                                          IdentityScheme::kRandomPermuted, 7);
  const auto algorithm = make_lambda_gdelta_coloring(1);
  UniformRunOptions options;
  options.seed = 53;
  options.kernel_mode = KernelMode::kOff;
  const ColoringTransformResult off =
      run_uniform_coloring_transform(instance, *algorithm, options);
  options.kernel_mode = KernelMode::kOn;
  const ColoringTransformResult on =
      run_uniform_coloring_transform(instance, *algorithm, options);
  EXPECT_EQ(off.colors, on.colors);
  EXPECT_EQ(off.solved, on.solved);
  EXPECT_EQ(off.total_rounds, on.total_rounds);
  EXPECT_EQ(on.engine_stats.vtable_steps, 0);
  EXPECT_GT(on.engine_stats.kernel_steps, 0);
}

TEST(KernelRegistry, DefaultTableListsTheLoweredBlocks) {
  const KernelRegistry& registry = default_kernel_registry();
  const std::vector<std::string> expected = {
      "beta-luby",    "chain",           "cole-vishkin",
      "color-reduce", "greedy-mis",      "hpartition",
      "linial",       "luby",            "mis-color-sweep",
      "out-linial",   "proposal-matching", "slc-adapter",
      "truncated"};
  EXPECT_EQ(registry.names(), expected);
  for (const std::string& name : expected) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_FALSE(registry.spec(name).describe.empty()) << name;
  }
  EXPECT_FALSE(registry.contains("no-such-kernel"));
}

TEST(KernelRegistry, LowersMatchingAlgorithmsOnly) {
  const KernelRegistry& registry = default_kernel_registry();
  const LubyMis luby;
  const GreedyMis greedy;
  // The right row lowers; the wrong row returns null (not an error).
  EXPECT_NE(registry.lower("luby", luby), nullptr);
  EXPECT_NE(registry.lower("greedy-mis", greedy), nullptr);
  EXPECT_EQ(registry.lower("luby", greedy), nullptr);
  EXPECT_EQ(registry.lower("cole-vishkin", luby), nullptr);
  // Unknown keys throw.
  EXPECT_THROW(registry.lower("no-such-kernel", luby), std::runtime_error);
  EXPECT_THROW(registry.spec("no-such-kernel"), std::runtime_error);
}

TEST(KernelRegistry, LoweredKernelMatchesAlgorithmKernel) {
  // The registry adapter and Algorithm::kernel() expose the same lowering.
  const LubyMis luby;
  const auto via_registry = default_kernel_registry().lower("luby", luby);
  const auto via_algorithm = luby.kernel();
  ASSERT_NE(via_registry, nullptr);
  ASSERT_NE(via_algorithm, nullptr);
  EXPECT_EQ(via_registry->name, via_algorithm->name);
}

/// Every registry building block is lowered now, so the fallback paths
/// need a deliberately unlowered stand-in: finish with the identity after
/// one broadcast round, vtable only.
class UnloweredEcho final : public Algorithm {
 public:
  std::unique_ptr<Process> spawn(const NodeInit&) const override {
    class EchoProcess final : public Process {
     public:
      void step(Context& ctx) override {
        if (ctx.round() == 0) {
          ctx.broadcast({ctx.id()});
          return;
        }
        ctx.finish(ctx.id());
      }
    };
    return std::make_unique<EchoProcess>();
  }
  std::string name() const override { return "unlowered-echo"; }
};

TEST(KernelMode, AutoFallsBackToVtableForUnloweredAlgorithms) {
  // An algorithm with no lowering: auto must silently run the vtable path
  // bit-identically to off, and report the split accordingly.
  Rng rng(83);
  const Instance instance = make_instance(gnp(80, 0.06, rng),
                                          IdentityScheme::kRandomPermuted, 3);
  const UnloweredEcho echo;
  ASSERT_EQ(echo.kernel(), nullptr);
  RunOptions options;
  options.seed = 29;
  options.kernel_mode = KernelMode::kOff;
  const RunResult off = run_local(instance, echo, options);
  options.kernel_mode = KernelMode::kAuto;
  const RunResult fallback = run_local(instance, echo, options);
  expect_same(off, fallback, "echo-fallback");
  EXPECT_EQ(fallback.stats.kernel_steps, 0);
  EXPECT_GT(fallback.stats.vtable_steps, 0);
}

TEST(KernelMode, OnThrowsForUnloweredAlgorithms) {
  Rng rng(89);
  const Instance instance = make_instance(path_graph(10),
                                          IdentityScheme::kSequential, 1);
  const UnloweredEcho echo;
  RunOptions options;
  options.kernel_mode = KernelMode::kOn;
  EXPECT_THROW(run_local(instance, echo, options), std::runtime_error);
}

TEST(KernelMode, BetaLubyRulingSetIsLowered) {
  // Regression guard for the full-zoo lowering: the ruling set used to be
  // the canonical unlowered fallback; now `on` must run it.
  Rng rng(131);
  const Instance instance = make_instance(gnp(40, 0.1, rng),
                                          IdentityScheme::kRandomPermuted, 3);
  const BetaLubyRulingSet ruling(2);
  ASSERT_NE(ruling.kernel(), nullptr);
  RunOptions options;
  options.seed = 59;
  options.kernel_mode = KernelMode::kOn;
  const RunResult on = run_local(instance, ruling, options);
  EXPECT_EQ(on.stats.vtable_steps, 0);
  EXPECT_EQ(on.stats.kernel_steps, on.stats.total_steps);
}

TEST(KernelMode, CampaignCollectsAllUnloweredKeys) {
  // KernelMode::kOn campaigns fail fast with ONE error naming every
  // unlowered algorithm key (the make_grid unknown-key style), instead of
  // N per-cell failures.
  AlgorithmRegistry registry;
  const auto noop = [](const Instance& instance, const AlgorithmRunContext&) {
    return CellOutcome{std::vector<std::int64_t>(
                           static_cast<std::size_t>(instance.num_nodes()), 1),
                       0, true, EngineStats{}};
  };
  AlgorithmSpec lowered{"lowered-a", "mis", "", {}, {"gnp"}, noop};
  registry.add(lowered);
  AlgorithmSpec raw_b{"vtable-b", "mis", "", {}, {"gnp"}, noop};
  raw_b.kernel_lowered = false;
  registry.add(raw_b);
  AlgorithmSpec raw_c{"vtable-c", "mis", "", {}, {"gnp"}, noop};
  raw_c.kernel_lowered = false;
  registry.add(raw_c);

  ScenarioParams params;
  params.n = 16;
  GridOptions grid_options;
  grid_options.algorithms = &registry;
  const std::vector<CampaignCell> cells =
      make_grid({"gnp"}, params, {"lowered-a", "vtable-b", "vtable-c"}, 1,
                grid_options);

  CampaignOptions options;
  options.algorithms = &registry;
  options.kernel_mode = KernelMode::kOn;
  try {
    run_campaign(cells, options);
    FAIL() << "expected validate_kernel_lowering to throw";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("vtable-b"), std::string::npos) << message;
    EXPECT_NE(message.find("vtable-c"), std::string::npos) << message;
    EXPECT_EQ(message.find("lowered-a"), std::string::npos) << message;
    EXPECT_NE(message.find("kernel mode 'on'"), std::string::npos) << message;
  }
  // Off/auto campaigns run the same grid without complaint.
  options.kernel_mode = KernelMode::kAuto;
  const CampaignResult result = run_campaign(cells, options);
  EXPECT_EQ(result.failed, 0);
}

TEST(KernelMode, NamesRoundTrip) {
  for (const KernelMode mode :
       {KernelMode::kOff, KernelMode::kAuto, KernelMode::kOn})
    EXPECT_EQ(parse_kernel_mode(kernel_mode_name(mode)), mode);
  EXPECT_THROW(parse_kernel_mode("bogus"), std::runtime_error);
  EXPECT_THROW(parse_kernel_mode(""), std::runtime_error);
}

}  // namespace
}  // namespace unilocal
