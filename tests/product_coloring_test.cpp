// Corollary 1(ii) / Section 5.1: uniform (deg+1)-coloring through an MIS of
// the clique product.
#include <gtest/gtest.h>

#include "src/algo/greedy_mis.h"
#include "src/algo/mis_from_coloring.h"
#include "src/core/product_coloring.h"
#include "src/problems/coloring.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

using testing_support::standard_instances;

TEST(ProductColoring, DegPlusOneOnSweep) {
  const auto mis = make_coloring_mis();
  for (const auto& [name, instance] : standard_instances(400)) {
    // Identity packing uses id * (n+2) + slot; skip sparse-identity
    // instances where that would overflow the 2^31 identity range.
    if (instance.max_identity() > (std::int64_t{1} << 20)) continue;
    const ProductColoringResult result =
        run_uniform_deg_plus_one_coloring(instance, *mis);
    ASSERT_TRUE(result.solved) << name;
    EXPECT_TRUE(is_proper_coloring(instance.graph, result.colors)) << name;
    for (NodeId v = 0; v < instance.num_nodes(); ++v)
      EXPECT_LE(result.colors[static_cast<std::size_t>(v)],
                instance.graph.degree(v) + 1)
          << name;
  }
}

TEST(ProductColoring, WorksWithTheGreedySubstituteToo) {
  const auto mis = make_global_mis();
  Instance instance = make_instance(cycle_graph(30),
                                    IdentityScheme::kRandomPermuted, 2);
  const ProductColoringResult result =
      run_uniform_deg_plus_one_coloring(instance, *mis);
  ASSERT_TRUE(result.solved);
  EXPECT_TRUE(is_proper_coloring(instance.graph, result.colors));
  EXPECT_LE(max_color_used(result.colors), 3);
}

TEST(ProductColoring, ProductSizeMatchesConstruction) {
  Instance instance = make_instance(path_graph(4),
                                    IdentityScheme::kSequential);
  const auto mis = make_coloring_mis();
  const ProductColoringResult result =
      run_uniform_deg_plus_one_coloring(instance, *mis);
  // Cliques of sizes 2,3,3,2.
  EXPECT_EQ(result.product_nodes, 10);
  ASSERT_TRUE(result.solved);
}

}  // namespace
}  // namespace unilocal
