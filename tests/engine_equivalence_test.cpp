// Engine equivalence: the arena engine (src/runtime/runner.cpp) must produce
// RunResult fields bit-identical to the preserved seed engine
// (src/runtime/reference.cpp) on every instance family, for randomized and
// deterministic algorithms, across seeds, wake-round schedules, and thread
// counts — the determinism contract that lets the thread pool and the
// per-round arena replace the vector-per-message baseline.
#include <gtest/gtest.h>

#include "src/algo/greedy_mis.h"
#include "src/algo/luby.h"
#include "src/algo/ruling_set_mc.h"
#include "src/runtime/reference.h"
#include "src/runtime/runner.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

using testing_support::standard_instances;

void expect_same(const RunResult& want, const RunResult& got,
                 const std::string& label) {
  EXPECT_EQ(want.outputs, got.outputs) << label;
  EXPECT_EQ(want.finish_rounds, got.finish_rounds) << label;
  EXPECT_EQ(want.global_finish_rounds, got.global_finish_rounds) << label;
  EXPECT_EQ(want.all_finished, got.all_finished) << label;
  EXPECT_EQ(want.rounds_used, got.rounds_used) << label;
  EXPECT_EQ(want.global_rounds, got.global_rounds) << label;
  EXPECT_EQ(want.messages_sent, got.messages_sent) << label;
  EXPECT_EQ(want.max_message_words, got.max_message_words) << label;
}

void check_all_thread_counts(const Instance& instance,
                             const Algorithm& algorithm, RunOptions options,
                             const std::string& label) {
  const RunResult want = run_local_reference(instance, algorithm, options);
  for (const int threads : {1, 2, 8}) {
    options.num_threads = threads;
    const RunResult got = run_local(instance, algorithm, options);
    expect_same(want, got,
                label + " threads=" + std::to_string(threads));
  }
}

TEST(EngineEquivalence, SimultaneousAcrossInstancesAndSeeds) {
  const LubyMis luby;
  const GreedyMis greedy;
  for (const auto& named : standard_instances(/*seed=*/7)) {
    for (const std::uint64_t seed : {1u, 99u}) {
      RunOptions options;
      options.seed = seed;
      check_all_thread_counts(named.instance, luby, options,
                              "luby/" + named.name + "/s" +
                                  std::to_string(seed));
      check_all_thread_counts(named.instance, greedy, options,
                              "greedy/" + named.name + "/s" +
                                  std::to_string(seed));
    }
  }
}

TEST(EngineEquivalence, CutoffSchedules) {
  const LubyMis luby;
  for (const auto& named : standard_instances(/*seed=*/11)) {
    for (const std::int64_t cap : {1, 3, 7}) {
      RunOptions options;
      options.seed = 5;
      options.max_rounds = cap;
      check_all_thread_counts(named.instance, luby, options,
                              "cutoff/" + named.name + "/cap" +
                                  std::to_string(cap));
    }
  }
}

TEST(EngineEquivalence, StaggeredWakeRounds) {
  const LubyMis luby;
  const BetaLubyRulingSet ruling(2);
  Rng wake_rng(3);
  for (const auto& named : standard_instances(/*seed=*/13)) {
    const std::size_t n = static_cast<std::size_t>(named.instance.num_nodes());
    RunOptions options;
    options.seed = 17;
    options.wake_rounds.resize(n);
    for (auto& w : options.wake_rounds)
      w = static_cast<std::int64_t>(wake_rng.next_below(6));
    check_all_thread_counts(named.instance, luby, options,
                            "wake/luby/" + named.name);
    check_all_thread_counts(named.instance, ruling, options,
                            "wake/ruling/" + named.name);
  }
}

TEST(EngineEquivalence, WorkspaceReuseDoesNotLeakState) {
  // One workspace across runs of different algorithms, graphs, and modes
  // must give exactly the per-run results of fresh workspaces.
  const LubyMis luby;
  const GreedyMis greedy;
  EngineWorkspace workspace;
  Rng wake_rng(23);
  for (const auto& named : standard_instances(/*seed=*/29)) {
    RunOptions options;
    options.seed = 41;
    const RunResult fresh = run_local(named.instance, luby, options);
    const RunResult reused = run_local(named.instance, luby, options,
                                       &workspace);
    expect_same(fresh, reused, "reuse/luby/" + named.name);

    options.wake_rounds.assign(
        static_cast<std::size_t>(named.instance.num_nodes()), 0);
    for (auto& w : options.wake_rounds)
      w = static_cast<std::int64_t>(wake_rng.next_below(4));
    const RunResult fresh_sync = run_local(named.instance, greedy, options);
    const RunResult reused_sync = run_local(named.instance, greedy, options,
                                            &workspace);
    expect_same(fresh_sync, reused_sync, "reuse/greedy-sync/" + named.name);
  }
}

TEST(EngineEquivalence, StatsAreFilled) {
  Rng rng(31);
  const Instance instance = make_instance(gnp(200, 8.0 / 200, rng),
                                          IdentityScheme::kRandomSparse, 2);
  const RunResult result = run_local(instance, LubyMis{});
  EXPECT_GT(result.stats.total_steps, 0);
  EXPECT_GT(result.stats.arena_bytes, 0);
  EXPECT_GT(result.stats.peak_round_messages, 0);
  EXPECT_EQ(result.stats.threads, 1);
  EXPECT_GE(result.stats.elapsed_seconds, 0.0);
}

}  // namespace
}  // namespace unilocal
