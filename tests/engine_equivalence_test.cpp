// Engine equivalence: the arena engine (src/runtime/runner.cpp) must produce
// RunResult fields bit-identical to the preserved seed engine
// (src/runtime/reference.cpp) on every instance family, for randomized and
// deterministic algorithms, across seeds, wake-round schedules, and thread
// counts — the determinism contract that lets the thread pool and the
// per-round arena replace the vector-per-message baseline.
#include <gtest/gtest.h>

#include "src/algo/greedy_mis.h"
#include "src/algo/luby.h"
#include "src/algo/ruling_set_mc.h"
#include "src/runtime/reference.h"
#include "src/runtime/runner.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

using testing_support::standard_instances;

void expect_same(const RunResult& want, const RunResult& got,
                 const std::string& label) {
  EXPECT_EQ(want.outputs, got.outputs) << label;
  EXPECT_EQ(want.finish_rounds, got.finish_rounds) << label;
  EXPECT_EQ(want.global_finish_rounds, got.global_finish_rounds) << label;
  EXPECT_EQ(want.all_finished, got.all_finished) << label;
  EXPECT_EQ(want.rounds_used, got.rounds_used) << label;
  EXPECT_EQ(want.global_rounds, got.global_rounds) << label;
  EXPECT_EQ(want.messages_sent, got.messages_sent) << label;
  EXPECT_EQ(want.max_message_words, got.max_message_words) << label;
}

void check_all_thread_counts(const Instance& instance,
                             const Algorithm& algorithm, RunOptions options,
                             const std::string& label) {
  const RunResult want = run_local_reference(instance, algorithm, options);
  for (const int threads : {1, 2, 8}) {
    options.num_threads = threads;
    const RunResult got = run_local(instance, algorithm, options);
    expect_same(want, got,
                label + " threads=" + std::to_string(threads));
  }
}

TEST(EngineEquivalence, SimultaneousAcrossInstancesAndSeeds) {
  const LubyMis luby;
  const GreedyMis greedy;
  for (const auto& named : standard_instances(/*seed=*/7)) {
    for (const std::uint64_t seed : {1u, 99u}) {
      RunOptions options;
      options.seed = seed;
      check_all_thread_counts(named.instance, luby, options,
                              "luby/" + named.name + "/s" +
                                  std::to_string(seed));
      check_all_thread_counts(named.instance, greedy, options,
                              "greedy/" + named.name + "/s" +
                                  std::to_string(seed));
    }
  }
}

TEST(EngineEquivalence, CutoffSchedules) {
  const LubyMis luby;
  for (const auto& named : standard_instances(/*seed=*/11)) {
    for (const std::int64_t cap : {1, 3, 7}) {
      RunOptions options;
      options.seed = 5;
      options.max_rounds = cap;
      check_all_thread_counts(named.instance, luby, options,
                              "cutoff/" + named.name + "/cap" +
                                  std::to_string(cap));
    }
  }
}

TEST(EngineEquivalence, StaggeredWakeRounds) {
  const LubyMis luby;
  const BetaLubyRulingSet ruling(2);
  Rng wake_rng(3);
  for (const auto& named : standard_instances(/*seed=*/13)) {
    const std::size_t n = static_cast<std::size_t>(named.instance.num_nodes());
    RunOptions options;
    options.seed = 17;
    options.wake_rounds.resize(n);
    for (auto& w : options.wake_rounds)
      w = static_cast<std::int64_t>(wake_rng.next_below(6));
    check_all_thread_counts(named.instance, luby, options,
                            "wake/luby/" + named.name);
    check_all_thread_counts(named.instance, ruling, options,
                            "wake/ruling/" + named.name);
  }
}

TEST(EngineEquivalence, SynchronizerRandomWakeGrids) {
  // Random wake-round grids across seeds: the frontier scheduler (lag
  // counters + wake admission) must reproduce the reference engine's
  // per-global-round eligible snapshots exactly — outputs, per-node local
  // and global finish rounds, and message counts all bit-identical.
  const LubyMis luby;
  const GreedyMis greedy;
  Rng wake_rng(101);
  for (const auto& named : standard_instances(/*seed=*/43)) {
    const std::size_t n = static_cast<std::size_t>(named.instance.num_nodes());
    for (const std::uint64_t seed : {3u, 77u}) {
      RunOptions options;
      options.seed = seed;
      options.wake_rounds.resize(n);
      for (auto& w : options.wake_rounds)
        w = static_cast<std::int64_t>(wake_rng.next_below(10));
      check_all_thread_counts(named.instance, luby, options,
                              "syncgrid/luby/" + named.name + "/s" +
                                  std::to_string(seed));
      check_all_thread_counts(named.instance, greedy, options,
                              "syncgrid/greedy/" + named.name + "/s" +
                                  std::to_string(seed));
    }
  }
}

TEST(EngineEquivalence, SynchronizerSparseLateWakersAndCutoffs) {
  // A few nodes wake far in the future while the rest sleep through long
  // empty stretches: exercises the frontier engine's clock jumps over
  // rounds the reference engine spins through one at a time, plus the
  // cutoff path under the synchronizer.
  const LubyMis luby;
  const BetaLubyRulingSet ruling(2);
  for (const auto& named : standard_instances(/*seed=*/47)) {
    const std::size_t n = static_cast<std::size_t>(named.instance.num_nodes());
    RunOptions options;
    options.seed = 23;
    options.wake_rounds.assign(n, 0);
    for (std::size_t v = 0; v < n; v += 7)
      options.wake_rounds[v] = 40 + static_cast<std::int64_t>(v);
    check_all_thread_counts(named.instance, luby, options,
                            "latewake/luby/" + named.name);
    options.max_rounds = 4;
    check_all_thread_counts(named.instance, ruling, options,
                            "latewake-cutoff/ruling/" + named.name);
  }
}

TEST(EngineEquivalence, ActiveSetLongTailThreadInvariance) {
  // A straggler-heavy instance where the live list collapses to a handful
  // of nodes for most rounds: the per-round rebalanced chunks must keep
  // results bit-identical to the reference for every thread count.
  Rng rng(53);
  const Instance instance = make_instance(caterpillar(300, 700, rng),
                                          IdentityScheme::kSequential, 3);
  const GreedyMis greedy;
  const LubyMis luby;
  RunOptions options;
  options.seed = 9;
  check_all_thread_counts(instance, greedy, options, "longtail/greedy");
  check_all_thread_counts(instance, luby, options, "longtail/luby");
  options.max_rounds = 100;
  check_all_thread_counts(instance, greedy, options, "longtail/greedy-cap");
}

TEST(EngineEquivalence, WorkspaceReuseDoesNotLeakState) {
  // One workspace across runs of different algorithms, graphs, and modes
  // must give exactly the per-run results of fresh workspaces.
  const LubyMis luby;
  const GreedyMis greedy;
  EngineWorkspace workspace;
  Rng wake_rng(23);
  for (const auto& named : standard_instances(/*seed=*/29)) {
    RunOptions options;
    options.seed = 41;
    const RunResult fresh = run_local(named.instance, luby, options);
    const RunResult reused = run_local(named.instance, luby, options,
                                       &workspace);
    expect_same(fresh, reused, "reuse/luby/" + named.name);

    options.wake_rounds.assign(
        static_cast<std::size_t>(named.instance.num_nodes()), 0);
    for (auto& w : options.wake_rounds)
      w = static_cast<std::int64_t>(wake_rng.next_below(4));
    const RunResult fresh_sync = run_local(named.instance, greedy, options);
    const RunResult reused_sync = run_local(named.instance, greedy, options,
                                            &workspace);
    expect_same(fresh_sync, reused_sync, "reuse/greedy-sync/" + named.name);
  }
}

TEST(EngineEquivalence, StatsAreFilled) {
  Rng rng(31);
  const Instance instance = make_instance(gnp(200, 8.0 / 200, rng),
                                          IdentityScheme::kRandomSparse, 2);
  const RunResult result = run_local(instance, LubyMis{});
  EXPECT_GT(result.stats.total_steps, 0);
  EXPECT_GT(result.stats.arena_bytes, 0);
  EXPECT_GT(result.stats.peak_round_messages, 0);
  EXPECT_EQ(result.stats.threads, 1);
  EXPECT_GE(result.stats.elapsed_seconds, 0.0);
}

}  // namespace
}  // namespace unilocal
