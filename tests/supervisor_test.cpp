// The shard supervisor (src/runtime/supervisor.h): injected crash /
// hang / corrupt / flaky-exit schedules are recovered by retry, timeout
// kill, and speculation to a merged campaign whose canonical JSON is
// byte-identical to a fault-free single-process run; retries-exhausted
// and partial-merge paths name every missing shard and cell in one
// report; a checkpoint journal resumes a killed campaign — skipping
// completed shards entirely — to the same bytes; and the small helpers
// (shell_quote, describe_wait_status, chaos parsing/drawing, journal
// reading) hold their contracts at the edges.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/runtime/run_log.h"
#include "src/runtime/shard.h"
#include "src/runtime/supervisor.h"

namespace unilocal {
namespace {

std::vector<CampaignCell> tiny_grid() {
  ScenarioParams params;
  params.n = 32;
  return make_grid({"path", "gnp", "caterpillar"}, params,
                   {"mis-uniform", "luby-mis"}, 1, 7);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(static_cast<bool>(out)) << path;
  out << text;
}

/// A scratch directory per test, removed on destruction.
struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = "/tmp/unilocal-supervisor-test-XXXXXX";
    std::vector<char> buffer(tmpl.begin(), tmpl.end());
    buffer.push_back('\0');
    if (mkdtemp(buffer.data()) == nullptr)
      throw std::runtime_error("mkdtemp failed");
    path = buffer.data();
  }
  ~TempDir() { std::system(("rm -rf " + shell_quote(path)).c_str()); }
};

/// The harness every supervision test shares: a plan over the tiny grid,
/// golden ShardResults computed in-process (what an honest worker would
/// write), and the fault-free single-process canonical JSON to diff
/// against. Worker processes in these tests are /bin/sh scripts that copy
/// (or mangle) the goldens — the engine work happened once, up front.
struct Harness {
  TempDir dir;
  std::vector<CampaignCell> cells = tiny_grid();
  ShardPlan plan;
  std::vector<std::string> golden_paths;
  std::string single_process_canonical;

  explicit Harness(int num_shards) {
    plan = plan_shards(cells, num_shards, ShardPolicy::kCostBalanced);
    for (const ShardManifest& manifest : plan.shards) {
      const ShardResult result = run_shard(manifest, {});
      const std::string path = dir.path + "/golden-" +
                               std::to_string(manifest.shard_index) + ".json";
      write_file(path, result.to_json().dump() + "\n");
      golden_paths.push_back(path);
    }
    CampaignResult single = run_campaign(cells, {});
    std::ostringstream out;
    CampaignJsonOptions canonical;
    canonical.canonical = true;
    write_campaign_json(out, single, canonical);
    single_process_canonical = out.str();
  }

  SupervisorOptions options() const {
    SupervisorOptions opts;
    opts.scratch_dir = dir.path;
    opts.backoff_base_seconds = 0.001;  // tests should not sleep for real
    opts.backoff_max_seconds = 0.002;
    return opts;
  }

  /// A /bin/sh worker: runs `script` with $1 = this shard's golden file
  /// and $2 = the attempt's result path.
  WorkerCommand sh_worker(
      const std::function<std::string(const ShardAttemptContext&)>& script)
      const {
    return [this, script](const ShardAttemptContext& context) {
      return std::vector<std::string>{
          "/bin/sh", "-c", script(context), "worker",
          golden_paths[static_cast<std::size_t>(context.shard_index)],
          context.result_path};
    };
  }

  std::string canonical_json(const CampaignResult& merged) const {
    std::ostringstream out;
    CampaignJsonOptions canonical;
    canonical.canonical = true;
    write_campaign_json(out, merged, canonical);
    return out.str();
  }
};

// --- shell_quote -------------------------------------------------------------

TEST(ShellQuote, QuotesEmptyMetacharactersAndQuotes) {
  EXPECT_EQ(shell_quote(""), "''");  // an unquoted empty argument vanishes
  EXPECT_EQ(shell_quote("plain"), "'plain'");
  EXPECT_EQ(shell_quote("a b;c&d|e"), "'a b;c&d|e'");
  EXPECT_EQ(shell_quote("$(rm -rf /)"), "'$(rm -rf /)'");
  EXPECT_EQ(shell_quote("it's"), "'it'\\''s'");
  EXPECT_EQ(shell_quote("'"), "''\\'''");
  EXPECT_THROW(shell_quote(std::string("a\0b", 3)), std::runtime_error);
}

TEST(ShellQuote, RoundTripsThroughARealShell) {
  TempDir dir;
  const std::string nasty = "a b'c\"d$e`f;g&h|i>j  'k";
  const std::string out_path = dir.path + "/echoed";
  const int status = std::system(("printf %s " + shell_quote(nasty) + " > " +
                                  shell_quote(out_path))
                                     .c_str());
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  EXPECT_EQ(read_file(out_path), nasty);
}

// --- describe_wait_status ----------------------------------------------------

TEST(DescribeWaitStatus, DistinguishesExitFromSignalOnRealStatuses) {
  // Real wait statuses from real children — no hand-rolled encodings.
  int status = std::system("exit 7");
  ASSERT_NE(status, -1);
  EXPECT_EQ(describe_wait_status(status), "exited 7");
  status = std::system("kill -KILL $$");
  ASSERT_NE(status, -1);
  EXPECT_EQ(describe_wait_status(status), "killed by signal 9");
  status = std::system("exit 0");
  ASSERT_NE(status, -1);
  EXPECT_EQ(describe_wait_status(status), "exited 0");
}

// --- chaos parsing and drawing -----------------------------------------------

TEST(ChaosSpec, ParsesRoundTripsAndRejects) {
  const ChaosOptions options =
      parse_chaos_spec("crash:0.3,corrupt:0.2,flaky-exit:0.1");
  EXPECT_DOUBLE_EQ(options.crash, 0.3);
  EXPECT_DOUBLE_EQ(options.hang, 0.0);
  EXPECT_DOUBLE_EQ(options.corrupt, 0.2);
  EXPECT_DOUBLE_EQ(options.flaky_exit, 0.1);
  EXPECT_TRUE(options.any());
  // name → parse → name is a fixed point.
  EXPECT_EQ(chaos_spec_name(parse_chaos_spec(chaos_spec_name(options))),
            chaos_spec_name(options));
  EXPECT_FALSE(ChaosOptions{}.any());
  EXPECT_EQ(chaos_spec_name(ChaosOptions{}), "");

  EXPECT_THROW(parse_chaos_spec("explode:0.5"), std::runtime_error);
  EXPECT_THROW(parse_chaos_spec("crash:1.5"), std::runtime_error);
  EXPECT_THROW(parse_chaos_spec("crash:banana"), std::runtime_error);
  EXPECT_THROW(parse_chaos_spec("crash:0.6,hang:0.6"), std::runtime_error);
  EXPECT_THROW(parse_chaos_spec("crash"), std::runtime_error);
}

TEST(ChaosDraw, IsDeterministicPerShardAttemptAndSeed) {
  ChaosOptions options = parse_chaos_spec("crash:0.25,hang:0.25,corrupt:0.25");
  options.seed = 42;
  std::set<ChaosFault> seen;
  for (int shard = 0; shard < 8; ++shard) {
    for (int attempt = 1; attempt <= 8; ++attempt) {
      const ChaosFault first = draw_chaos_fault(options, shard, attempt);
      EXPECT_EQ(draw_chaos_fault(options, shard, attempt), first)
          << "draw must be a pure function of (options, shard, attempt)";
      seen.insert(first);
    }
  }
  // 64 draws at 75% total fault probability: several kinds must appear.
  EXPECT_GE(seen.size(), 3u);

  ChaosOptions reseeded = options;
  reseeded.seed = 43;
  bool any_difference = false;
  for (int shard = 0; shard < 8 && !any_difference; ++shard)
    for (int attempt = 1; attempt <= 8 && !any_difference; ++attempt)
      any_difference = draw_chaos_fault(reseeded, shard, attempt) !=
                       draw_chaos_fault(options, shard, attempt);
  EXPECT_TRUE(any_difference) << "a different seed must move the schedule";

  ChaosOptions certain;
  certain.crash = 1.0;
  for (int attempt = 1; attempt <= 4; ++attempt)
    EXPECT_EQ(draw_chaos_fault(certain, 0, attempt), ChaosFault::kCrash);
  EXPECT_EQ(draw_chaos_fault(ChaosOptions{}, 0, 1), ChaosFault::kNone);
}

// --- partial merge -----------------------------------------------------------

TEST(PartialMerge, NamesEveryMissingShardAndCellInOneReport) {
  Harness harness(4);
  std::vector<ShardResult> results;
  for (const std::string& path : harness.golden_paths)
    results.push_back(ShardResult::from_json(json::Value::parse(
        read_file(path))));
  // Drop shards 1 and 3 — strict merge throws naming both, partial merge
  // fills their cells with errors and reports them.
  std::vector<ShardResult> partial_results = {results[0], results[2]};
  try {
    merge_shard_results(harness.plan, partial_results);
    FAIL() << "strict merge must reject missing shards";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1"), std::string::npos);
    EXPECT_NE(what.find("3"), std::string::npos);
  }
  PartialMergeReport report;
  const CampaignResult merged =
      merge_shard_results_partial(harness.plan, partial_results, report);
  EXPECT_FALSE(report.complete());
  EXPECT_EQ(report.missing_shards, (std::vector<int>{1, 3}));
  std::size_t expected_missing =
      harness.plan.shards[1].cells.size() + harness.plan.shards[3].cells.size();
  EXPECT_EQ(report.missing_cell_indices.size(), expected_missing);
  const std::string described = report.describe();
  EXPECT_NE(described.find("missing shards [1, 3]"), std::string::npos)
      << described;
  EXPECT_NE(described.find(std::to_string(expected_missing) + " cells"),
            std::string::npos)
      << described;
  // The merged result still covers the whole grid; missing cells carry an
  // error naming their shard and count as failed.
  ASSERT_EQ(merged.cells.size(), harness.cells.size());
  EXPECT_EQ(merged.failed, static_cast<int>(expected_missing));
  std::set<std::size_t> missing(report.missing_cell_indices.begin(),
                                report.missing_cell_indices.end());
  for (std::size_t i = 0; i < merged.cells.size(); ++i) {
    if (missing.count(i) != 0)
      EXPECT_NE(merged.cells[i].error.find("produced no accepted result"),
                std::string::npos);
    else
      EXPECT_TRUE(merged.cells[i].error.empty());
  }
  // A complete set degrades to the strict merge, bit-identically.
  PartialMergeReport complete_report;
  const CampaignResult full =
      merge_shard_results_partial(harness.plan, results, complete_report);
  EXPECT_TRUE(complete_report.complete());
  EXPECT_EQ(harness.canonical_json(full), harness.single_process_canonical);
}

// --- the checkpoint journal --------------------------------------------------

TEST(Journal, ToleratesTruncationSkipsGarbageAndRejectsForeignPlans) {
  Harness harness(3);
  const std::string path = harness.dir.path + "/journal.jsonl";
  EXPECT_FALSE(read_supervisor_journal(path, harness.plan).found);

  json::Value header = json::Value::object();
  header.set("format",
             json::Value::string("unilocal-supervisor-journal-v1"));
  header.set("plan_grid_hash",
             json::Value::string(std::to_string(harness.plan.grid_hash)));
  header.set("num_shards", json::Value::number(std::int64_t{3}));
  std::string text = header.dump() + "\n";
  for (int s : {0, 2}) {
    json::Value entry = json::Value::object();
    entry.set("shard", json::Value::number(std::int64_t{s}));
    entry.set("attempt", json::Value::number(std::int64_t{1}));
    entry.set("result", json::Value::parse(read_file(
                            harness.golden_paths[static_cast<std::size_t>(s)])));
    text += entry.dump() + "\n";
  }
  text += "this line is not JSON at all\n";
  text += "{\"shard\":1,\"attempt\":1,\"result\":{\"torn";  // killed mid-append
  write_file(path, text);

  const SupervisorJournal journal = read_supervisor_journal(path, harness.plan);
  EXPECT_TRUE(journal.found);
  ASSERT_EQ(journal.completed.size(), 2u);
  EXPECT_EQ(journal.completed[0].shard_index, 0);
  EXPECT_EQ(journal.completed[1].shard_index, 2);

  // A journal whose header proves it belongs to a DIFFERENT plan throws.
  ShardPlan other = plan_shards(harness.cells, 2, ShardPolicy::kRoundRobin);
  other.grid_hash ^= 1;
  EXPECT_THROW(read_supervisor_journal(path, other), std::runtime_error);

  // An unparseable header is treated as no journal at all.
  write_file(path, "not a header\n");
  EXPECT_FALSE(read_supervisor_journal(path, harness.plan).found);
}

// --- supervised execution ----------------------------------------------------

TEST(Supervise, FaultFreeRunMatchesSingleProcessBytes) {
  Harness harness(4);
  const SupervisorReport report = supervise_shards(
      harness.plan, harness.options(),
      harness.sh_worker([](const ShardAttemptContext&) {
        return std::string("cp \"$1\" \"$2\"");
      }));
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.attempts, 4);
  EXPECT_EQ(report.retries, 0);
  const CampaignResult merged =
      merge_shard_results(harness.plan, report.results);
  EXPECT_EQ(harness.canonical_json(merged), harness.single_process_canonical);
}

TEST(Supervise, RecoversCrashCorruptFlakyAndInvalidToIdenticalBytes) {
  Harness harness(4);
  // Every shard fails its first attempt a different way; attempt 2 is
  // honest. crash = die without output; corrupt = torn write (half the
  // golden); flaky = valid output but nonzero exit; invalid = well-formed
  // JSON that is not this shard's result (fingerprint rejection).
  const SupervisorReport report = supervise_shards(
      harness.plan, harness.options(),
      harness.sh_worker([](const ShardAttemptContext& context) {
        if (context.attempt >= 2) return std::string("cp \"$1\" \"$2\"");
        switch (context.shard_index % 4) {
          case 0:
            return std::string("echo crash-injected >&2; exit 134");
          case 1:
            return std::string(
                "size=$(wc -c < \"$1\"); head -c $((size / 2)) \"$1\" > "
                "\"$2\"");
          case 2:
            return std::string("cp \"$1\" \"$2\"; exit 43");
          default:
            return std::string("echo '{\"not\":\"a shard result\"}' > \"$2\"");
        }
      }));
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.attempts, 8);  // every shard: one failure + one success
  EXPECT_EQ(report.retries, 4);
  ASSERT_EQ(report.shards.size(), 4u);
  EXPECT_EQ(report.shards[0].log[0].outcome, "exited 134");
  EXPECT_NE(report.shards[1].log[0].outcome.find("invalid result"),
            std::string::npos);
  EXPECT_EQ(report.shards[2].log[0].outcome, "exited 43");
  EXPECT_NE(report.shards[3].log[0].outcome.find("invalid result"),
            std::string::npos);
  const CampaignResult merged =
      merge_shard_results(harness.plan, report.results);
  EXPECT_EQ(harness.canonical_json(merged), harness.single_process_canonical);
}

TEST(Supervise, KillsHangsAtTheDeadlineAndRetries) {
  Harness harness(2);
  SupervisorOptions options = harness.options();
  options.base_timeout_seconds = 0.3;
  options.timeout_seconds_per_cost = 0.0;
  const SupervisorReport report = supervise_shards(
      harness.plan, options,
      harness.sh_worker([](const ShardAttemptContext& context) {
        if (context.shard_index == 0 && context.attempt == 1)
          return std::string("sleep 30");  // hangs well past the deadline
        return std::string("cp \"$1\" \"$2\"");
      }));
  EXPECT_TRUE(report.all_completed());
  EXPECT_EQ(report.shards[0].attempts, 2);
  EXPECT_NE(report.shards[0].log[0].outcome.find("timeout after"),
            std::string::npos)
      << report.shards[0].log[0].outcome;
  EXPECT_LT(report.shards[0].log[0].seconds, 5.0)
      << "the hang must be killed at the deadline, not waited out";
  const CampaignResult merged =
      merge_shard_results(harness.plan, report.results);
  EXPECT_EQ(harness.canonical_json(merged), harness.single_process_canonical);
}

TEST(Supervise, ExhaustedRetriesNameTheShardAndItsHistory) {
  Harness harness(3);
  SupervisorOptions options = harness.options();
  options.max_attempts = 2;
  const SupervisorReport report = supervise_shards(
      harness.plan, options,
      harness.sh_worker([](const ShardAttemptContext& context) {
        if (context.shard_index == 1)
          return std::string("echo shard-one-always-dies >&2; exit 9");
        return std::string("cp \"$1\" \"$2\"");
      }));
  EXPECT_FALSE(report.all_completed());
  EXPECT_EQ(report.failed_shards, (std::vector<int>{1}));
  EXPECT_EQ(report.shards[1].attempts, 2);
  EXPECT_EQ(report.shards[1].retries, 1);
  const std::string summary = report.failure_summary();
  EXPECT_NE(summary.find("shard 1 failed after 2 attempts"),
            std::string::npos)
      << summary;
  EXPECT_NE(summary.find("exited 9"), std::string::npos) << summary;
  EXPECT_NE(summary.find("shard-one-always-dies"), std::string::npos)
      << "the worker's stderr tail must be quoted: " << summary;
  // Strict merge refuses; partial merge names shard 1's every cell.
  EXPECT_THROW(merge_shard_results(harness.plan, report.results),
               std::runtime_error);
  PartialMergeReport partial;
  const CampaignResult merged =
      merge_shard_results_partial(harness.plan, report.results, partial);
  EXPECT_EQ(partial.missing_shards, (std::vector<int>{1}));
  EXPECT_EQ(partial.missing_cell_indices.size(),
            harness.plan.shards[1].cells.size());
  EXPECT_EQ(merged.failed, static_cast<int>(partial.missing_cell_indices.size()));
}

TEST(Supervise, ResumesFromJournalWithoutLaunchingCompletedShards) {
  Harness harness(4);
  SupervisorOptions options = harness.options();
  options.journal_path = harness.dir.path + "/journal.jsonl";
  const SupervisorReport first = supervise_shards(
      harness.plan, options,
      harness.sh_worker([](const ShardAttemptContext&) {
        return std::string("cp \"$1\" \"$2\"");
      }));
  ASSERT_TRUE(first.all_completed());

  // Second supervision with the same journal: every shard must come from
  // the journal — the worker proves no process ran by dying if launched.
  const SupervisorReport resumed = supervise_shards(
      harness.plan, options,
      harness.sh_worker([](const ShardAttemptContext&) {
        return std::string("echo must-not-run >&2; exit 99");
      }));
  EXPECT_TRUE(resumed.all_completed());
  EXPECT_EQ(resumed.attempts, 0);
  EXPECT_EQ(resumed.shards_from_journal, 4);
  for (const ShardSupervision& sup : resumed.shards)
    EXPECT_TRUE(sup.from_journal);
  const CampaignResult merged =
      merge_shard_results(harness.plan, resumed.results);
  EXPECT_EQ(harness.canonical_json(merged), harness.single_process_canonical);

  // A partially-filled journal resumes the missing shards only.
  std::ifstream in(options.journal_path);
  std::string line, partial_text;
  int kept = 0;
  while (std::getline(in, line))
    if (kept++ < 3) partial_text += line + "\n";  // header + shards 0, 1
  const std::string partial_path = harness.dir.path + "/partial.jsonl";
  write_file(partial_path, partial_text);
  SupervisorOptions partial_options = harness.options();
  partial_options.journal_path = partial_path;
  const SupervisorReport partial = supervise_shards(
      harness.plan, partial_options,
      harness.sh_worker([](const ShardAttemptContext& context) {
        if (context.shard_index <= 1)
          return std::string("echo journaled-shard-relaunched >&2; exit 99");
        return std::string("cp \"$1\" \"$2\"");
      }));
  EXPECT_TRUE(partial.all_completed());
  EXPECT_EQ(partial.shards_from_journal, 2);
  EXPECT_EQ(partial.attempts, 2);
  const CampaignResult remerged =
      merge_shard_results(harness.plan, partial.results);
  EXPECT_EQ(harness.canonical_json(remerged),
            harness.single_process_canonical);
}

TEST(Supervise, SpeculativelyDuplicatesStragglersFirstAcceptWins) {
  Harness harness(5);
  SupervisorOptions options = harness.options();
  options.straggler_min_samples = 2;
  options.straggler_factor = 2.0;
  const SupervisorReport report = supervise_shards(
      harness.plan, options,
      harness.sh_worker([](const ShardAttemptContext& context) {
        // Shard 4's first attempt is a straggler: it would succeed, in 30
        // seconds. The fleet's observed rate makes the supervisor launch
        // a speculative duplicate long before that; the duplicate's copy
        // wins and the straggler is killed.
        if (context.shard_index == 4 && context.attempt == 1)
          return std::string("sleep 30; cp \"$1\" \"$2\"");
        return std::string("cp \"$1\" \"$2\"");
      }));
  EXPECT_TRUE(report.all_completed());
  EXPECT_GE(report.stragglers_respawned, 1);
  EXPECT_GE(report.shards[4].attempts, 2);
  bool superseded = false;
  for (const ShardAttemptRecord& record : report.shards[4].log)
    superseded = superseded || record.outcome == "superseded";
  EXPECT_TRUE(superseded) << "the losing attempt must be reaped as superseded";
  EXPECT_LT(report.elapsed_seconds, 20.0)
      << "speculation must not wait out the straggler";
  const CampaignResult merged =
      merge_shard_results(harness.plan, report.results);
  EXPECT_EQ(harness.canonical_json(merged), harness.single_process_canonical);
}

// --- telemetry writers -------------------------------------------------------

TEST(SupervisionTelemetry, InJsonButNeverInCanonicalAndCsvListsShards) {
  Harness harness(2);
  const SupervisorReport report = supervise_shards(
      harness.plan, harness.options(),
      harness.sh_worker([](const ShardAttemptContext& context) {
        if (context.shard_index == 0 && context.attempt == 1)
          return std::string("exit 3");
        return std::string("cp \"$1\" \"$2\"");
      }));
  ASSERT_TRUE(report.all_completed());
  CampaignResult merged = merge_shard_results(harness.plan, report.results);
  merged.supervision.enabled = true;
  merged.supervision.shards = 2;
  merged.supervision.attempts = report.attempts;
  merged.supervision.retries = report.retries;
  for (const ShardSupervision& sup : report.shards) {
    ShardSupervisionRow row;
    row.shard_index = sup.shard_index;
    row.completed = sup.completed;
    row.attempts = sup.attempts;
    row.retries = sup.retries;
    row.total_attempt_seconds = sup.total_attempt_seconds;
    merged.supervision.rows.push_back(row);
  }

  std::ostringstream full;
  write_campaign_json(full, merged);
  EXPECT_NE(full.str().find("\"supervision\""), std::string::npos);
  EXPECT_NE(full.str().find("\"retries\":1"), std::string::npos);

  // Canonical mode must stay byte-identical to the unsupervised run —
  // supervision is scheduling history, not grid identity.
  EXPECT_EQ(harness.canonical_json(merged), harness.single_process_canonical);
  EXPECT_EQ(harness.canonical_json(merged).find("supervision"),
            std::string::npos);

  std::ostringstream csv;
  write_supervision_csv(csv, merged.supervision);
  EXPECT_NE(csv.str().find("shard,completed,from_journal,attempts,retries"),
            std::string::npos);
  EXPECT_NE(csv.str().find("\n0,1,0,2,1,"), std::string::npos) << csv.str();
  EXPECT_NE(csv.str().find("\n1,1,0,1,0,"), std::string::npos) << csv.str();
}

}  // namespace
}  // namespace unilocal
