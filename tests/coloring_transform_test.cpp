// Theorem 5: the uniform coloring transformer — layering, SLC phase,
// non-uniform recoloring phase, disjoint palettes, O(g(Delta)) colors.
#include <gtest/gtest.h>

#include "src/core/coloring_transform.h"
#include "src/graph/params.h"
#include "src/graph/transforms.h"
#include "src/problems/coloring.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

using testing_support::standard_instances;

TEST(Theorem5, LayerThresholdsDoubleTheBudget) {
  const auto algorithm = make_lambda_gdelta_coloring(2);
  const auto thresholds = layer_thresholds(*algorithm, 100);
  ASSERT_GE(thresholds.size(), 3u);
  EXPECT_EQ(thresholds[0], 1);
  for (std::size_t i = 1; i < thresholds.size(); ++i) {
    EXPECT_GT(thresholds[i], thresholds[i - 1]);
    EXPECT_GE(algorithm->g(thresholds[i]),
              2 * algorithm->g(thresholds[i - 1]));
    // Minimality: one less would not reach the doubled budget.
    EXPECT_LT(algorithm->g(thresholds[i] - 1),
              2 * algorithm->g(thresholds[i - 1]));
  }
  EXPECT_GT(thresholds.back(), 100);
}

TEST(Theorem5, UniformColoringOnSweep) {
  for (std::int64_t lambda : {1, 3}) {
    const auto algorithm = make_lambda_gdelta_coloring(lambda);
    for (const auto& [name, instance] : standard_instances(330)) {
      const ColoringTransformResult result =
          run_uniform_coloring_transform(instance, *algorithm);
      EXPECT_TRUE(result.solved) << name;
      if (instance.num_nodes() == 0) continue;
      EXPECT_TRUE(is_proper_coloring(instance.graph, result.colors))
          << name << " lambda=" << lambda;
    }
  }
}

TEST(Theorem5, ColorBudgetIsOrderG) {
  const std::int64_t lambda = 2;
  const auto algorithm = make_lambda_gdelta_coloring(lambda);
  for (const auto& [name, instance] : standard_instances(331)) {
    if (instance.num_nodes() == 0) continue;
    const ColoringTransformResult result =
        run_uniform_coloring_transform(instance, *algorithm);
    ASSERT_TRUE(result.solved) << name;
    const std::int64_t delta =
        std::max<std::int64_t>(max_degree(instance.graph), 1);
    // Colors <= 2*g(D_imax+1) and D_imax+1 <= 2*Delta+1 for g = l(x+1).
    EXPECT_LE(result.max_color_used, 2 * algorithm->g(2 * delta + 1)) << name;
  }
}

TEST(Theorem5, LayerPalettesDisjointAndOrdered) {
  Rng rng(1);
  Instance instance = make_instance(power_law(250, 2.5, 6.0, rng),
                                    IdentityScheme::kRandomPermuted, 2);
  const auto algorithm = make_lambda_gdelta_coloring(1);
  const ColoringTransformResult result =
      run_uniform_coloring_transform(instance, *algorithm);
  ASSERT_TRUE(result.solved);
  for (std::size_t i = 1; i < result.layers.size(); ++i) {
    EXPECT_GT(result.layers[i].palette_lo, result.layers[i - 1].palette_hi);
  }
  // Every node's color sits inside its layer's palette.
  for (const auto& layer : result.layers) {
    EXPECT_GE(layer.palette_lo, layer.delta_hat + 1);
  }
}

TEST(Theorem5, HighDegreeNodesDoNotInflateLowLayers) {
  // A star: the hub is alone in a high layer, leaves in layer 1; the leaves'
  // palette must stay O(1) even though Delta is large.
  Instance star = make_instance(complete_bipartite(1, 80),
                                IdentityScheme::kRandomPermuted, 3);
  const auto algorithm = make_lambda_gdelta_coloring(1);
  const ColoringTransformResult result =
      run_uniform_coloring_transform(star, *algorithm);
  ASSERT_TRUE(result.solved);
  // Leaves have degree 1 -> layer with delta_hat from the g-doubling chain,
  // colors bounded by a small constant independent of the hub degree.
  std::int64_t max_leaf_color = 0;
  for (NodeId v = 1; v <= 80; ++v)
    max_leaf_color =
        std::max(max_leaf_color, result.colors[static_cast<std::size_t>(v)]);
  EXPECT_LE(max_leaf_color, 12);
}

TEST(Theorem5, EdgeColoringViaLineGraph) {
  // Corollary 1(v) route: transform the vertex-coloring black box on the
  // line graph to get a uniform O(Delta)-edge-coloring.
  Rng rng(4);
  Graph g = random_bounded_degree(70, 5, 0.9, rng);
  const LineGraph lg = line_graph(g);
  Instance line_instance =
      make_instance(lg.graph, IdentityScheme::kRandomPermuted, 5);
  const auto algorithm = make_lambda_gdelta_coloring(1);
  const ColoringTransformResult result =
      run_uniform_coloring_transform(line_instance, *algorithm);
  ASSERT_TRUE(result.solved);
  EXPECT_TRUE(is_proper_edge_coloring(g, result.colors,
                                      /*cap=*/2 * algorithm->g(
                                          2 * max_degree(lg.graph) + 1)));
}

TEST(Theorem5, PhaseRoundsAreMaxOverLayers) {
  Rng rng(6);
  Instance instance = make_instance(power_law(200, 2.3, 5.0, rng),
                                    IdentityScheme::kRandomPermuted, 7);
  const auto algorithm = make_lambda_gdelta_coloring(2);
  const ColoringTransformResult result =
      run_uniform_coloring_transform(instance, *algorithm);
  ASSERT_TRUE(result.solved);
  std::int64_t max_p1 = 0;
  std::int64_t max_p2 = 0;
  for (const auto& layer : result.layers) {
    max_p1 = std::max(max_p1, layer.phase1_rounds);
    max_p2 = std::max(max_p2, layer.phase2_rounds);
  }
  EXPECT_EQ(result.phase1_rounds, max_p1);
  EXPECT_EQ(result.phase2_rounds, max_p2);
  EXPECT_EQ(result.total_rounds, max_p1 + max_p2);
}

}  // namespace
}  // namespace unilocal
