#include <gtest/gtest.h>

#include "src/algo/edge_color_mm.h"
#include "src/core/param.h"
#include "src/graph/params.h"
#include "src/problems/matching.h"
#include "src/runtime/runner.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

using testing_support::standard_instances;

TEST(ProposalMatching, MaximalOnSweepWithCorrectGuesses) {
  const auto wrapped = make_colored_matching();
  for (const auto& [name, instance] : standard_instances(230)) {
    const auto algorithm = instantiate_with_correct_guesses(*wrapped, instance);
    const RunResult result = run_local(instance, *algorithm);
    EXPECT_TRUE(result.all_finished) << name;
    EXPECT_TRUE(is_maximal_matching(instance.graph, result.outputs)) << name;
    EXPECT_LE(static_cast<double>(result.rounds_used),
              bound_at_correct_params(*wrapped, instance))
        << name;
  }
}

TEST(ProposalMatching, UsesPaperValueEncoding) {
  Rng rng(1);
  Instance instance = make_instance(gnp(50, 0.1, rng),
                                    IdentityScheme::kRandomPermuted, 2);
  const auto wrapped = make_colored_matching();
  const auto algorithm = instantiate_with_correct_guesses(*wrapped, instance);
  const RunResult result = run_local(instance, *algorithm);
  const auto partner = matched_partner(instance.graph, result.outputs);
  for (NodeId v = 0; v < instance.num_nodes(); ++v) {
    const std::int64_t y = result.outputs[static_cast<std::size_t>(v)];
    if (partner[static_cast<std::size_t>(v)] >= 0) {
      const NodeId u = partner[static_cast<std::size_t>(v)];
      EXPECT_EQ(y, match_value(
                       instance.identities[static_cast<std::size_t>(v)],
                       instance.identities[static_cast<std::size_t>(u)]));
    } else {
      EXPECT_EQ(y, unmatched_value(
                       instance.identities[static_cast<std::size_t>(v)]));
    }
  }
}

TEST(ProposalMatching, OverestimatedGuessesStillCorrect) {
  Rng rng(3);
  Instance instance = make_instance(random_bounded_degree(80, 5, 0.9, rng),
                                    IdentityScheme::kRandomPermuted, 4);
  const auto wrapped = make_colored_matching();
  auto guesses = correct_guesses(wrapped->gamma(), instance);
  guesses[0] += 3;
  guesses[1] *= 2;
  const auto algorithm = wrapped->instantiate(guesses);
  const RunResult result = run_local(instance, *algorithm);
  EXPECT_TRUE(result.all_finished);
  EXPECT_TRUE(is_maximal_matching(instance.graph, result.outputs));
}

TEST(ProposalMatching, PerfectMatchingOnEvenCycle) {
  Instance instance = make_instance(cycle_graph(10),
                                    IdentityScheme::kRandomPermuted, 5);
  const auto wrapped = make_colored_matching();
  const auto algorithm = instantiate_with_correct_guesses(*wrapped, instance);
  const RunResult result = run_local(instance, *algorithm);
  EXPECT_TRUE(is_maximal_matching(instance.graph, result.outputs));
  const auto partner = matched_partner(instance.graph, result.outputs);
  int matched = 0;
  for (NodeId v = 0; v < 10; ++v)
    matched += partner[static_cast<std::size_t>(v)] >= 0;
  EXPECT_GE(matched, 6);  // a maximal matching on C10 covers >= 6 nodes
}

TEST(ProposalMatching, RoundsScaleWithDeltaNotN) {
  const auto wrapped = make_colored_matching();
  Rng rng(6);
  Instance small = make_instance(random_bounded_degree(80, 4, 0.9, rng),
                                 IdentityScheme::kRandomPermuted, 7);
  Instance large = make_instance(random_bounded_degree(640, 4, 0.9, rng),
                                 IdentityScheme::kRandomPermuted, 8);
  const auto algo_small = instantiate_with_correct_guesses(*wrapped, small);
  const auto algo_large = instantiate_with_correct_guesses(*wrapped, large);
  const auto r_small = run_local(small, *algo_small);
  const auto r_large = run_local(large, *algo_large);
  EXPECT_TRUE(is_maximal_matching(large.graph, r_large.outputs));
  EXPECT_LE(r_large.rounds_used, 2 * r_small.rounds_used);
}

}  // namespace
}  // namespace unilocal
