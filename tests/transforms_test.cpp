#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/graph/params.h"
#include "src/graph/transforms.h"
#include "src/problems/coloring.h"
#include "src/problems/mis.h"

namespace unilocal {
namespace {

TEST(CliqueProduct, SizesMatchPaperConstruction) {
  Graph g = path_graph(3);  // degrees 1, 2, 1
  const CliqueProduct product = clique_product(g);
  EXPECT_EQ(product.graph.num_nodes(), 2 + 3 + 2);
  // Cliques of sizes 2, 3, 2 plus inter-clique edges:
  // edge (0,1): 1+min(1,2) = 2 links; edge (1,2): 2 links.
  EXPECT_EQ(product.graph.num_edges(), 1 + 3 + 1 + 2 + 2);
}

TEST(CliqueProduct, MisMapsToDegPlusOneColoring) {
  Rng rng(1);
  Graph g = gnp(40, 0.12, rng);
  const CliqueProduct product = clique_product(g);
  // Build an MIS of the product centrally (greedy) and pull back a coloring.
  std::vector<std::int64_t> mis(
      static_cast<std::size_t>(product.graph.num_nodes()), 0);
  for (NodeId v = 0; v < product.graph.num_nodes(); ++v) {
    bool blocked = false;
    for (NodeId u : product.graph.neighbors(v)) {
      if (mis[static_cast<std::size_t>(u)] != 0) blocked = true;
    }
    if (!blocked) mis[static_cast<std::size_t>(v)] = 1;
  }
  ASSERT_TRUE(is_maximal_independent_set(product.graph, mis));
  const auto coloring = coloring_from_product_mis(product, mis);
  ASSERT_FALSE(coloring.empty())
      << "a product MIS must select one node per clique";
  EXPECT_TRUE(is_proper_coloring(g, coloring));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(coloring[static_cast<std::size_t>(v)], g.degree(v) + 1);
    EXPECT_GE(coloring[static_cast<std::size_t>(v)], 1);
  }
}

TEST(CliqueProduct, InvalidMisGivesEmptyColoring) {
  Graph g = path_graph(3);
  const CliqueProduct product = clique_product(g);
  const std::vector<std::int64_t> nothing(
      static_cast<std::size_t>(product.graph.num_nodes()), 0);
  EXPECT_TRUE(coloring_from_product_mis(product, nothing).empty());
}

TEST(LineGraph, PathBecomesPath) {
  const LineGraph lg = line_graph(path_graph(5));
  EXPECT_EQ(lg.graph.num_nodes(), 4);
  EXPECT_EQ(lg.graph.num_edges(), 3);
  EXPECT_EQ(max_degree(lg.graph), 2);
}

TEST(LineGraph, StarBecomesClique) {
  const LineGraph lg = line_graph(complete_bipartite(1, 5));
  EXPECT_EQ(lg.graph.num_nodes(), 5);
  EXPECT_EQ(lg.graph.num_edges(), 10);
}

TEST(LineGraph, DegreeIdentity) {
  Rng rng(2);
  Graph g = gnp(50, 0.1, rng);
  const LineGraph lg = line_graph(g);
  for (NodeId e = 0; e < lg.graph.num_nodes(); ++e) {
    const auto [u, v] = lg.edge_of[static_cast<std::size_t>(e)];
    EXPECT_EQ(lg.graph.degree(e), g.degree(u) + g.degree(v) - 2);
  }
}

TEST(PowerGraph, PathSquared) {
  Graph g2 = power_graph(path_graph(6), 2);
  // Node 0 reaches 1 and 2.
  EXPECT_TRUE(g2.has_edge(0, 2));
  EXPECT_FALSE(g2.has_edge(0, 3));
  EXPECT_EQ(g2.degree(2), 4);
}

TEST(PowerGraph, KIsDiameterGivesClique) {
  Graph g = path_graph(5);
  Graph gk = power_graph(g, 4);
  EXPECT_EQ(gk.num_edges(), 10);
}

TEST(PowerGraph, MatchesBfsDefinition) {
  Rng rng(3);
  Graph g = gnp(40, 0.08, rng);
  const Graph g3 = power_graph(g, 3);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto dist = bfs_distances(g, v);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (u == v) continue;
      const bool within = dist[static_cast<std::size_t>(u)] > 0 &&
                          dist[static_cast<std::size_t>(u)] <= 3;
      EXPECT_EQ(g3.has_edge(v, u), within);
    }
  }
}

}  // namespace
}  // namespace unilocal
