// Theorem 1 end-to-end: the uniform transformer solves every instance, the
// ledger respects O(f* . s_f(f*)), budgets double across iterations, and
// the inner algorithm never sees the true parameters (it only ever receives
// set-sequence guesses).
#include <gtest/gtest.h>

#include "src/algo/edge_color_mm.h"
#include "src/algo/greedy_mis.h"
#include "src/algo/mis_from_coloring.h"
#include "src/core/transformer.h"
#include "src/problems/matching.h"
#include "src/problems/mis.h"
#include "src/prune/matching_prune.h"
#include "src/prune/ruling_set_prune.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

using testing_support::standard_instances;

TEST(Theorem1, UniformMisViaColoring) {
  const auto algorithm = make_coloring_mis();
  const RulingSetPruning pruning(1);
  for (const auto& [name, instance] : standard_instances(300)) {
    const UniformRunResult result =
        run_uniform_transformer(instance, *algorithm, pruning);
    EXPECT_TRUE(result.solved) << name;
    EXPECT_TRUE(is_maximal_independent_set(instance.graph, result.outputs))
        << name;
  }
}

TEST(Theorem1, LedgerWithinTheoremBound) {
  const auto algorithm = make_coloring_mis();
  const RulingSetPruning pruning(1);
  for (const auto& [name, instance] : standard_instances(301)) {
    if (instance.num_nodes() == 0) continue;
    const UniformRunResult result =
        run_uniform_transformer(instance, *algorithm, pruning);
    ASSERT_TRUE(result.solved) << name;
    const double f_star = bound_at_correct_params(*algorithm, instance);
    const double s_f = static_cast<double>(
        algorithm->bound().sequence_number(static_cast<std::int64_t>(f_star)));
    // Theorem 1: O(f* s_f(f*)). The constant from the proof is
    // c * sum_i 2^i <= 4c f*, plus pruning overhead per sub-iteration.
    const double c =
        static_cast<double>(algorithm->bound().bounding_constant());
    const double budget = 8.0 * c * f_star * s_f + 64.0;
    EXPECT_LE(static_cast<double>(result.total_rounds), budget) << name;
  }
}

TEST(Theorem1, UniformMatchesNonUniformAsymptotically) {
  // The headline claim: the uniform algorithm costs only a constant factor
  // over the non-uniform original run with correct guesses.
  const auto algorithm = make_coloring_mis();
  const RulingSetPruning pruning(1);
  Rng rng(1);
  std::vector<double> ratios;
  for (NodeId n : {128, 256, 512}) {
    Instance instance = make_instance(random_bounded_degree(n, 4, 0.9, rng),
                                      IdentityScheme::kRandomPermuted, n);
    const auto baseline = instantiate_with_correct_guesses(*algorithm, instance);
    const RunResult non_uniform = run_local(instance, *baseline);
    const UniformRunResult uniform =
        run_uniform_transformer(instance, *algorithm, pruning);
    ASSERT_TRUE(uniform.solved);
    ratios.push_back(static_cast<double>(uniform.total_rounds) /
                     static_cast<double>(non_uniform.rounds_used));
  }
  // Constant-factor overhead: the ratio must not grow across the sweep.
  EXPECT_LE(ratios.back(), 2.0 * ratios.front() + 1.0);
  for (double r : ratios) EXPECT_LE(r, 64.0);
}

TEST(Theorem1, BudgetsDoubleAcrossIterations) {
  const auto algorithm = make_coloring_mis();
  const RulingSetPruning pruning(1);
  Rng rng(2);
  Instance instance = make_instance(gnp(100, 0.08, rng),
                                    IdentityScheme::kRandomPermuted, 3);
  const UniformRunResult result =
      run_uniform_transformer(instance, *algorithm, pruning);
  ASSERT_TRUE(result.solved);
  ASSERT_FALSE(result.trace.empty());
  for (std::size_t k = 1; k < result.trace.size(); ++k) {
    if (result.trace[k].iteration == result.trace[k - 1].iteration + 1) {
      EXPECT_EQ(result.trace[k].budget, 2 * result.trace[k - 1].budget);
    }
  }
  // Rounds actually used never exceed the prescribed budget.
  for (const auto& step : result.trace)
    EXPECT_LE(step.rounds_used, step.budget);
}

TEST(Theorem1, GuessesComeFromSetSequenceOnly) {
  const auto algorithm = make_coloring_mis();
  const RulingSetPruning pruning(1);
  Rng rng(3);
  Instance instance = make_instance(gnp(60, 0.1, rng),
                                    IdentityScheme::kRandomPermuted, 4);
  const UniformRunResult result =
      run_uniform_transformer(instance, *algorithm, pruning);
  ASSERT_TRUE(result.solved);
  for (const auto& step : result.trace) {
    const std::int64_t scale = std::int64_t{1} << step.iteration;
    const auto expected = algorithm->bound().set_sequence(scale);
    ASSERT_GE(step.sub_iteration, 1);
    ASSERT_LE(static_cast<std::size_t>(step.sub_iteration), expected.size());
    EXPECT_EQ(step.guesses,
              expected[static_cast<std::size_t>(step.sub_iteration - 1)]);
  }
}

TEST(Theorem1, UniformMaximalMatching) {
  const auto algorithm = make_colored_matching();
  const MatchingPruning pruning;
  for (const auto& [name, instance] : standard_instances(302)) {
    const UniformRunResult result =
        run_uniform_transformer(instance, *algorithm, pruning);
    EXPECT_TRUE(result.solved) << name;
    EXPECT_TRUE(is_maximal_matching(instance.graph, result.outputs)) << name;
  }
}

TEST(Theorem1, UniformGlobalMisSubstitute) {
  // The PS-substitute row: bound depends on n only.
  const auto algorithm = make_global_mis();
  const RulingSetPruning pruning(1);
  for (const auto& [name, instance] : standard_instances(303)) {
    const UniformRunResult result =
        run_uniform_transformer(instance, *algorithm, pruning);
    EXPECT_TRUE(result.solved) << name;
    EXPECT_TRUE(is_maximal_independent_set(instance.graph, result.outputs))
        << name;
  }
}

TEST(Theorem1, EmptyInstanceIsImmediatelySolved) {
  const auto algorithm = make_coloring_mis();
  const RulingSetPruning pruning(1);
  Instance instance = make_instance(Graph(0));
  const UniformRunResult result =
      run_uniform_transformer(instance, *algorithm, pruning);
  EXPECT_TRUE(result.solved);
  EXPECT_EQ(result.total_rounds, 0);
  EXPECT_TRUE(result.trace.empty());
}

TEST(Theorem1, RoundCapTruncatesCleanly) {
  const auto algorithm = make_coloring_mis();
  const RulingSetPruning pruning(1);
  Rng rng(4);
  Instance instance = make_instance(gnp(80, 0.08, rng),
                                    IdentityScheme::kRandomPermuted, 5);
  UniformRunOptions options;
  options.round_cap = 8;
  const UniformRunResult result =
      run_uniform_transformer(instance, *algorithm, pruning, options);
  EXPECT_FALSE(result.solved);
  // Overshoot bounded by one sub-iteration.
  EXPECT_LE(result.total_rounds, 8 + result.trace.back().budget +
                                     pruning.running_time());
}

}  // namespace
}  // namespace unilocal
