#include <gtest/gtest.h>

#include "src/algo/cole_vishkin.h"
#include "src/algo/color_reduce.h"
#include "src/algo/dplus1.h"
#include "src/algo/lambda_coloring.h"
#include "src/algo/linial.h"
#include "src/core/param.h"
#include "src/graph/params.h"
#include "src/problems/coloring.h"
#include "src/runtime/runner.h"
#include "src/util/math.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

using testing_support::standard_instances;

TEST(LinialSchedule, ShrinksToQuadraticFixedPoint) {
  for (std::int64_t delta : {1, 2, 4, 8, 16, 32}) {
    const auto schedule = linial_schedule(delta, std::int64_t{1} << 31);
    EXPECT_LE(schedule.length(), 40u);
    EXPECT_LE(schedule.final_space, linial_final_space_bound(delta))
        << "delta " << delta;
    // Every step must respect the separation and capacity requirements.
    std::int64_t space = schedule.initial_space;
    for (const auto& step : schedule.steps) {
      EXPECT_EQ(step.in_space, space);
      EXPECT_GE(step.prime, step.degree * std::max<std::int64_t>(delta, 1) + 1);
      EXPECT_GE(sat_pow(step.prime, static_cast<int>(step.degree) + 1), space);
      EXPECT_LT(step.out_space, space);
      space = step.out_space;
    }
    EXPECT_EQ(space, schedule.final_space);
  }
}

TEST(LinialSchedule, LogStarLengthGrowth) {
  const auto tiny = linial_schedule(4, 1 << 10);
  const auto huge = linial_schedule(4, std::int64_t{1} << 44);
  EXPECT_LE(huge.length(), tiny.length() + 4);  // log* flavoured growth
}

TEST(LinialStep, SeparatesFromConflicts) {
  // A node with distinct-colored neighbours must get a distinct new color.
  const LinialStep step{13, 1, 100, 169};
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t mine = static_cast<std::int64_t>(rng.next_below(100));
    std::vector<std::int64_t> nbrs;
    std::vector<std::int64_t> nbr_new;
    for (int j = 0; j < 6; ++j) {
      std::int64_t c = 0;
      do {
        c = static_cast<std::int64_t>(rng.next_below(100));
      } while (c == mine);
      nbrs.push_back(c);
    }
    const std::int64_t my_new = linial_step_apply(step, mine, nbrs);
    EXPECT_LT(my_new, 169);
    // Determinism: re-apply gives the same result.
    EXPECT_EQ(linial_step_apply(step, mine, nbrs), my_new);
    // The new color differs from f_c'(a) for the same evaluation point: we
    // verify via a direct conflict check by re-running each neighbour
    // against the chosen point — their polynomial evaluated at our point
    // must differ, which linial_step_apply guarantees internally. Spot-test:
    for (std::int64_t nc : nbrs) {
      // Two nodes with different colors never map to the same (a, value).
      const std::vector<std::int64_t> just_mine{mine};
      if (linial_step_apply(step, nc, just_mine) == my_new && nc != mine) {
        // Allowed only if they chose different evaluation points: the pair
        // (a, f(a)) encodes a, so equality would mean the same point and
        // same value, which the separation property forbids for our node.
        ADD_FAILURE() << "conflicting projection for colors " << mine
                      << " vs " << nc;
      }
    }
  }
}

TEST(LinialColoring, ProperQuadraticOnSweep) {
  for (const auto& [name, instance] : standard_instances(210)) {
    const std::int64_t delta =
        std::max<std::int64_t>(max_degree(instance.graph), 1);
    const std::int64_t m = instance.max_identity();
    const LinialColoring algorithm(delta, std::max<std::int64_t>(m, 2));
    const RunResult result = run_local(instance, algorithm);
    EXPECT_TRUE(result.all_finished) << name;
    if (instance.num_nodes() == 0) continue;
    EXPECT_TRUE(is_proper_coloring(instance.graph, result.outputs)) << name;
    EXPECT_LE(max_color_used(result.outputs), linial_final_space_bound(delta))
        << name;
    EXPECT_LE(result.rounds_used, 42) << name;  // log* m + O(1)
  }
}

TEST(ColorReduce, ToDegPlusOne) {
  for (const auto& [name, instance] : standard_instances(211)) {
    if (instance.num_nodes() == 0) continue;
    // Start from the identity coloring (proper, colors within [1, m]).
    // The reduction runs one round per eliminated color, so skip the
    // sparse-identity instances whose color space is astronomically large
    // (the real pipelines always feed it Linial's O(Delta^2) space).
    const std::int64_t m = instance.max_identity();
    if (m > 4096) continue;
    Instance seeded = instance;
    for (NodeId v = 0; v < instance.num_nodes(); ++v)
      seeded.inputs[static_cast<std::size_t>(v)] = {
          instance.identities[static_cast<std::size_t>(v)]};
    const ColorReduce algorithm(m, 0);
    const RunResult result = run_local(seeded, algorithm);
    EXPECT_TRUE(result.all_finished) << name;
    EXPECT_TRUE(is_proper_coloring(instance.graph, result.outputs)) << name;
    for (NodeId v = 0; v < instance.num_nodes(); ++v)
      EXPECT_LE(result.outputs[static_cast<std::size_t>(v)],
                instance.graph.degree(v) + 1)
          << name;
  }
}

TEST(ColorReduce, ToFixedTarget) {
  Instance instance = make_instance(cycle_graph(20), IdentityScheme::kSequential);
  for (NodeId v = 0; v < 20; ++v)
    instance.inputs[static_cast<std::size_t>(v)] = {
        instance.identities[static_cast<std::size_t>(v)]};
  const ColorReduce algorithm(20, 5);
  const RunResult result = run_local(instance, algorithm);
  EXPECT_TRUE(result.all_finished);
  EXPECT_TRUE(is_proper_coloring(instance.graph, result.outputs));
  EXPECT_LE(max_color_used(result.outputs), 5);
  EXPECT_EQ(result.rounds_used, algorithm.schedule_rounds());
}

TEST(ColorReduce, AlreadyWithinPaletteIsInstant) {
  Instance instance = make_instance(path_graph(6), IdentityScheme::kSequential);
  for (NodeId v = 0; v < 6; ++v)
    instance.inputs[static_cast<std::size_t>(v)] = {1 + (v % 2)};
  const ColorReduce algorithm(2, 4);
  const RunResult result = run_local(instance, algorithm);
  EXPECT_TRUE(result.all_finished);
  EXPECT_EQ(result.rounds_used, 1);
  EXPECT_TRUE(is_proper_coloring(instance.graph, result.outputs));
}

TEST(DegPlusOne, ValidOnSweepWithinBound) {
  const auto wrapped = make_deg_plus_one_coloring();
  for (const auto& [name, instance] : standard_instances(212)) {
    const auto algorithm = instantiate_with_correct_guesses(*wrapped, instance);
    const RunResult result = run_local(instance, *algorithm);
    EXPECT_TRUE(result.all_finished) << name;
    if (instance.num_nodes() == 0) continue;
    EXPECT_TRUE(is_proper_coloring(instance.graph, result.outputs)) << name;
    for (NodeId v = 0; v < instance.num_nodes(); ++v)
      EXPECT_LE(result.outputs[static_cast<std::size_t>(v)],
                instance.graph.degree(v) + 1)
          << name;
    EXPECT_LE(static_cast<double>(result.rounds_used),
              bound_at_correct_params(*wrapped, instance))
        << name;
  }
}

TEST(LambdaColoring, PaletteShrinksWithLambda) {
  Rng rng(2);
  Instance instance = make_instance(random_bounded_degree(120, 6, 0.95, rng),
                                    IdentityScheme::kRandomPermuted, 3);
  const std::int64_t delta = max_degree(instance.graph);
  for (std::int64_t lambda : {1, 2, 4, 8}) {
    const auto wrapped = make_lambda_coloring(lambda);
    const auto algorithm = instantiate_with_correct_guesses(*wrapped, instance);
    const RunResult result = run_local(instance, *algorithm);
    EXPECT_TRUE(result.all_finished);
    EXPECT_TRUE(is_proper_coloring(instance.graph, result.outputs));
    EXPECT_LE(max_color_used(result.outputs),
              std::max<std::int64_t>(lambda * (delta + 1),
                                     linial_final_space_bound(delta)))
        << "lambda " << lambda;
    if (lambda == 1) {
      EXPECT_LE(max_color_used(result.outputs), delta + 1);
    }
  }
}

TEST(LambdaColoring, LargerLambdaNoSlower) {
  Rng rng(4);
  Instance instance = make_instance(random_bounded_degree(150, 8, 0.95, rng),
                                    IdentityScheme::kRandomPermuted, 5);
  const auto tight = make_lambda_coloring(1);
  const auto loose = make_lambda_coloring(8);
  const auto algo_tight = instantiate_with_correct_guesses(*tight, instance);
  const auto algo_loose = instantiate_with_correct_guesses(*loose, instance);
  const auto r_tight = run_local(instance, *algo_tight);
  const auto r_loose = run_local(instance, *algo_loose);
  EXPECT_LE(r_loose.rounds_used, r_tight.rounds_used);
}

TEST(ColeVishkin, ThreeColorsForests) {
  Rng rng(6);
  for (int trial = 0; trial < 6; ++trial) {
    Graph forest = trial % 2 == 0 ? random_tree(120, rng)
                                  : random_forest(120, 6, rng);
    Instance instance =
        make_rooted_forest_instance(std::move(forest), 40 + trial);
    const ColeVishkin algorithm(instance.max_identity());
    const RunResult result = run_local(instance, algorithm);
    EXPECT_TRUE(result.all_finished);
    EXPECT_TRUE(is_proper_coloring(instance.graph, result.outputs));
    EXPECT_LE(max_color_used(result.outputs), 3);
    EXPECT_LE(result.rounds_used, algorithm.schedule_rounds());
  }
}

TEST(ColeVishkin, LogStarRounds) {
  Rng rng(7);
  Instance instance = make_rooted_forest_instance(random_tree(500, rng), 9);
  const ColeVishkin algorithm(instance.max_identity());
  const RunResult result = run_local(instance, algorithm);
  EXPECT_TRUE(result.all_finished);
  EXPECT_LE(result.rounds_used, 16);  // log*(500) + constants, not log(500)
}

TEST(ColeVishkin, PathAndSingleton) {
  Instance path = make_rooted_forest_instance(path_graph(33), 10);
  const ColeVishkin algorithm(path.max_identity());
  const RunResult result = run_local(path, algorithm);
  EXPECT_TRUE(is_proper_coloring(path.graph, result.outputs));
  EXPECT_LE(max_color_used(result.outputs), 3);

  Instance singleton = make_rooted_forest_instance(Graph(1), 11);
  const ColeVishkin tiny(singleton.max_identity());
  const RunResult r2 = run_local(singleton, tiny);
  EXPECT_TRUE(r2.all_finished);
  EXPECT_GE(r2.outputs[0], 1);
  EXPECT_LE(r2.outputs[0], 3);
}

}  // namespace
}  // namespace unilocal
