// End-to-end reproduction of Corollary 1: every item exercised on a
// medium-sized instance of the family it targets.
#include <gtest/gtest.h>

#include <cmath>

#include "src/algo/arb_mis.h"
#include "src/algo/edge_color_mm.h"
#include "src/algo/greedy_mis.h"
#include "src/algo/luby.h"
#include "src/algo/mis_from_coloring.h"
#include "src/algo/ruling_set_mc.h"
#include "src/core/coloring_transform.h"
#include "src/core/fastest.h"
#include "src/core/mc_to_lv.h"
#include "src/core/weak_domination.h"
#include "src/graph/params.h"
#include "src/graph/transforms.h"
#include "src/problems/coloring.h"
#include "src/problems/matching.h"
#include "src/problems/mis.h"
#include "src/problems/ruling_set.h"
#include "src/prune/matching_prune.h"
#include "src/prune/ruling_set_prune.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

TEST(Corollary1, Item_i_UniformMisMinOfThree) {
  // min{ g(n)-substitute, h(Delta,n)-substitute, f(a,n)-substitute }.
  auto pruning = std::make_shared<RulingSetPruning>(1);
  const auto global = make_transformed_executable(
      std::shared_ptr<const NonUniformAlgorithm>(make_global_mis()), pruning);
  const auto degree = make_transformed_executable(
      std::shared_ptr<const NonUniformAlgorithm>(make_coloring_mis()),
      pruning);
  auto arb_inner = std::shared_ptr<const NonUniformAlgorithm>(make_arb_mis());
  const auto arb = make_transformed_executable(
      std::shared_ptr<const NonUniformAlgorithm>(apply_weak_domination(
          arb_inner,
          {Domination{Param::kArboricity, Param::kNumNodes,
                      [](std::int64_t a) { return std::ldexp(1.0, int(a)); },
                      "2^a<=n"},
           Domination{Param::kMaxIdentity, Param::kNumNodes,
                      [](std::int64_t m) { return double(m); }, "m<=n"}})),
      pruning);
  Rng rng(1);
  for (Graph g : {random_tree(300, rng), random_bounded_degree(300, 6, 0.9, rng),
                  gnp(200, 0.05, rng)}) {
    Instance instance =
        make_instance(std::move(g), IdentityScheme::kRandomPermuted, 2);
    const std::vector<const UniformExecutable*> executables{
        global.get(), degree.get(), arb.get()};
    const UniformRunResult result =
        run_fastest(instance, executables, *pruning);
    ASSERT_TRUE(result.solved);
    EXPECT_TRUE(is_maximal_independent_set(instance.graph, result.outputs));
  }
}

TEST(Corollary1, Item_ii_UniformDeltaPlusOneColoring) {
  // Via the Section 5.1 clique product: uniform MIS on G' pulls back to a
  // (deg+1)-coloring of G.
  Rng rng(2);
  Graph g = random_bounded_degree(120, 5, 0.9, rng);
  const CliqueProduct product = clique_product(g);
  Instance product_instance =
      make_instance(product.graph, IdentityScheme::kRandomPermuted, 3);
  const auto algorithm = make_coloring_mis();
  const RulingSetPruning pruning(1);
  const UniformRunResult result =
      run_uniform_transformer(product_instance, *algorithm, pruning);
  ASSERT_TRUE(result.solved);
  ASSERT_TRUE(
      is_maximal_independent_set(product_instance.graph, result.outputs));
  const auto coloring = coloring_from_product_mis(product, result.outputs);
  ASSERT_FALSE(coloring.empty());
  EXPECT_TRUE(is_proper_coloring(g, coloring));
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_LE(coloring[static_cast<std::size_t>(v)], g.degree(v) + 1);
}

TEST(Corollary1, Item_iii_UniformLambdaColoring) {
  Rng rng(3);
  Instance instance = make_instance(random_bounded_degree(150, 6, 0.9, rng),
                                    IdentityScheme::kRandomPermuted, 4);
  const std::int64_t delta = max_degree(instance.graph);
  for (std::int64_t lambda : {1, 4}) {
    const auto algorithm = make_lambda_gdelta_coloring(lambda);
    const ColoringTransformResult result =
        run_uniform_coloring_transform(instance, *algorithm);
    ASSERT_TRUE(result.solved);
    EXPECT_TRUE(is_proper_coloring(instance.graph, result.colors));
    EXPECT_LE(result.max_color_used, 2 * lambda * (2 * delta + 2));
  }
}

TEST(Corollary1, Item_v_UniformEdgeColoring) {
  Rng rng(4);
  Graph g = random_bounded_degree(80, 4, 0.9, rng);
  const LineGraph lg = line_graph(g);
  Instance line_instance =
      make_instance(lg.graph, IdentityScheme::kRandomPermuted, 5);
  const auto algorithm = make_lambda_gdelta_coloring(1);
  const ColoringTransformResult result =
      run_uniform_coloring_transform(line_instance, *algorithm);
  ASSERT_TRUE(result.solved);
  // O(Delta) edge colors: Delta(L(G)) <= 2 Delta(G) - 2.
  EXPECT_TRUE(is_proper_edge_coloring(g, result.colors));
  EXPECT_LE(max_color_used(result.colors),
            2 * (2 * (2 * max_degree(g) - 2) + 2));
}

TEST(Corollary1, Item_vi_UniformMaximalMatching) {
  Rng rng(5);
  Instance instance = make_instance(gnp(150, 0.04, rng),
                                    IdentityScheme::kRandomSparse, 6);
  const auto algorithm = make_colored_matching();
  const MatchingPruning pruning;
  const UniformRunResult result =
      run_uniform_transformer(instance, *algorithm, pruning);
  ASSERT_TRUE(result.solved);
  EXPECT_TRUE(is_maximal_matching(instance.graph, result.outputs));
}

TEST(Corollary1, Item_vii_UniformRandomizedRulingSet) {
  Rng rng(6);
  Instance instance = make_instance(gnp(180, 0.04, rng),
                                    IdentityScheme::kRandomPermuted, 7);
  for (int beta : {2, 4}) {
    const auto algorithm = make_mc_ruling_set(beta);
    const RulingSetPruning pruning(beta);
    const UniformRunResult result =
        run_las_vegas_transformer(instance, *algorithm, pruning);
    ASSERT_TRUE(result.solved);
    EXPECT_TRUE(is_two_beta_ruling_set(instance.graph, result.outputs, beta));
  }
}

TEST(Table1, LastRow_UniformRandomizedMisBaseline) {
  Rng rng(7);
  Instance instance = make_instance(gnp(250, 0.03, rng),
                                    IdentityScheme::kRandomSparse, 8);
  const RunResult result = run_local(instance, LubyMis{});
  EXPECT_TRUE(result.all_finished);
  EXPECT_TRUE(is_maximal_independent_set(instance.graph, result.outputs));
}

}  // namespace
}  // namespace unilocal
