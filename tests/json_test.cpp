// The JSON value tree (src/util/json.h): parse/dump round trips, lexeme
// preservation for 64-bit integers and doubles, escaping, and the error
// paths shard-merge diagnostics are built on.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "src/util/json.h"

namespace unilocal {
namespace {

using json::Value;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Value::parse("null").is_null());
  EXPECT_TRUE(Value::parse("true").as_bool());
  EXPECT_FALSE(Value::parse("false").as_bool());
  EXPECT_EQ(Value::parse("42").as_i64(), 42);
  EXPECT_EQ(Value::parse("-7").as_i64(), -7);
  EXPECT_DOUBLE_EQ(Value::parse("2.5e3").as_double(), 2500.0);
  EXPECT_EQ(Value::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(Value::parse("  [1,2]  ").as_array().size(), 2u);
}

TEST(Json, RoundTripsNestedStructures) {
  const std::string text =
      R"({"a":[1,2.5,"x",null,true],"b":{"c":[],"d":{}},"e":-0.125})";
  const Value value = Value::parse(text);
  EXPECT_EQ(value.dump(), text);  // member order and lexemes preserved
  EXPECT_EQ(Value::parse(value.dump()), value);
  EXPECT_EQ(value.at("a").as_array()[2].as_string(), "x");
  EXPECT_TRUE(value.at("b").at("d").as_object().empty());
}

TEST(Json, PreservesSixtyFourBitIntegerLexemes) {
  const std::uint64_t big = std::numeric_limits<std::uint64_t>::max();
  const std::int64_t small = std::numeric_limits<std::int64_t>::min();
  Value object = Value::object();
  object.set("u", Value::number(big));
  object.set("i", Value::number(small));
  const Value back = Value::parse(object.dump());
  // A double-based tree would have lost the low bits of 2^64 - 1.
  EXPECT_EQ(back.at("u").as_u64(), big);
  EXPECT_EQ(back.at("i").as_i64(), small);
  EXPECT_EQ(back.dump(), object.dump());
}

TEST(Json, RoundTripsDoublesBitExactly) {
  for (const double value : {0.1, 1.0 / 3.0, 6.02214076e23, -0.0, 1e-300}) {
    const Value parsed = Value::parse(Value::number(value).dump());
    EXPECT_EQ(parsed.as_double(), value);
  }
}

TEST(Json, EscapesAndUnescapesStrings) {
  const std::string nasty =
      "quote\" backslash\\ newline\n tab\t return\r bell\x07 del\x1f end";
  Value object = Value::object();
  object.set("s", Value::string(nasty));
  const std::string text = object.dump();
  // The dump contains no raw control characters or bare quotes inside the
  // string body — it is valid JSON for any payload.
  for (const char c : text)
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  EXPECT_EQ(Value::parse(text).at("s").as_string(), nasty);
  // escape() alone (what the stream writers use) matches dump()'s body.
  EXPECT_NE(text.find(json::escape(nasty)), std::string::npos);
}

TEST(Json, DecodesUnicodeEscapes) {
  EXPECT_EQ(Value::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Value::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");  // é
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Value::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
  EXPECT_EQ(Value::parse("\"\\/\"").as_string(), "/");
  // Broken surrogates never yield raw invalid UTF-8 — every unpaired half
  // becomes U+FFFD.
  const std::string replacement = "\xef\xbf\xbd";
  EXPECT_EQ(Value::parse("\"\\ud800\"").as_string(), replacement);
  EXPECT_EQ(Value::parse("\"\\udc00\"").as_string(), replacement);
  EXPECT_EQ(Value::parse("\"\\ud800\\ud800\"").as_string(),
            replacement + replacement);
  EXPECT_EQ(Value::parse("\"\\ud800\\u0041\"").as_string(),
            replacement + "A");
}

TEST(Json, RefusesNonFiniteDoubles) {
  // %.17g would spell these as bare words no parser accepts; fail at the
  // write, not in whoever reads the file later.
  EXPECT_THROW(Value::number(std::numeric_limits<double>::infinity()),
               std::runtime_error);
  EXPECT_THROW(Value::number(-std::numeric_limits<double>::infinity()),
               std::runtime_error);
  EXPECT_THROW(Value::number(std::numeric_limits<double>::quiet_NaN()),
               std::runtime_error);
}

TEST(Json, ReadsU64FieldsFromEitherSpelling) {
  const Value doc = Value::parse(
      R"({"s":"18446744073709551615","n":42,"bad":"12x","neg":"-1"})");
  EXPECT_EQ(json::u64_field(doc.at("s")),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(json::u64_field(doc.at("n")), 42u);
  EXPECT_THROW(json::u64_field(doc.at("bad")), std::runtime_error);
  EXPECT_THROW(json::u64_field(doc.at("neg")), std::runtime_error);
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "01", "1.", "1e", "\"unterminated",
        "\"bad\\q\"", "{\"a\":1,\"a\":2}", "[1] trailing", "'single'",
        "\"ctrl\n\"", "+1", "nan", "--1"}) {
    EXPECT_THROW(Value::parse(bad), std::runtime_error) << bad;
  }
}

TEST(Json, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_THROW(Value::parse(deep), std::runtime_error);
}

TEST(Json, AccessorsEnforceTypes) {
  const Value value = Value::parse(R"({"n":1.5,"s":"x","neg":-1})");
  EXPECT_THROW(value.at("s").as_i64(), std::runtime_error);
  EXPECT_THROW(value.at("n").as_i64(), std::runtime_error);   // not integral
  EXPECT_THROW(value.at("neg").as_u64(), std::runtime_error);  // negative
  EXPECT_THROW(value.at("n").as_array(), std::runtime_error);
  EXPECT_THROW(value.at("missing"), std::runtime_error);
  EXPECT_EQ(value.find("missing"), nullptr);
  EXPECT_THROW(Value::parse("18446744073709551616").as_u64(),
               std::runtime_error);  // 2^64: parses, overflows on coercion
}

TEST(Json, ObjectSetRejectsDuplicates) {
  Value object = Value::object();
  object.set("k", Value::number(std::int64_t{1}));
  EXPECT_THROW(object.set("k", Value::number(std::int64_t{2})),
               std::runtime_error);
}

}  // namespace
}  // namespace unilocal
