#include <gtest/gtest.h>

#include "src/algo/ruling_set_mc.h"
#include "src/core/param.h"
#include "src/problems/ruling_set.h"
#include "src/runtime/runner.h"
#include "tests/test_support.h"

namespace unilocal {
namespace {

using testing_support::standard_instances;

TEST(BetaLuby, ValidRulingSetsRunToCompletion) {
  for (int beta : {1, 2, 3}) {
    const BetaLubyRulingSet algorithm(beta);
    for (const auto& [name, instance] : standard_instances(240)) {
      RunOptions options;
      options.seed = 17;
      const RunResult result = run_local(instance, algorithm, options);
      EXPECT_TRUE(result.all_finished) << name << " beta=" << beta;
      EXPECT_TRUE(
          is_two_beta_ruling_set(instance.graph, result.outputs, beta))
          << name << " beta=" << beta;
    }
  }
}

TEST(BetaLuby, BetaOneIsMisLike) {
  Rng rng(1);
  Instance instance = make_instance(gnp(120, 0.05, rng),
                                    IdentityScheme::kRandomPermuted, 2);
  const BetaLubyRulingSet algorithm(1);
  const RunResult result = run_local(instance, algorithm);
  EXPECT_TRUE(is_two_beta_ruling_set(instance.graph, result.outputs, 1));
}

TEST(BetaLuby, LargerBetaSelectsSparserSets) {
  Instance instance = make_instance(path_graph(200),
                                    IdentityScheme::kRandomPermuted, 3);
  std::int64_t members_b1 = 0;
  std::int64_t members_b3 = 0;
  const RunResult r1 = run_local(instance, BetaLubyRulingSet(1));
  const RunResult r3 = run_local(instance, BetaLubyRulingSet(3));
  for (std::int64_t b : r1.outputs) members_b1 += b;
  for (std::int64_t b : r3.outputs) members_b3 += b;
  EXPECT_LT(members_b3, members_b1);
}

TEST(BetaLuby, MonteCarloTruncationSucceedsOften) {
  const auto mc = make_mc_ruling_set(2);
  Rng rng(4);
  Instance instance = make_instance(gnp(150, 0.04, rng),
                                    IdentityScheme::kRandomPermuted, 5);
  const auto algorithm = instantiate_with_correct_guesses(*mc, instance);
  int successes = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    RunOptions options;
    options.seed = 100 + static_cast<std::uint64_t>(t);
    const RunResult result = run_local(instance, *algorithm, options);
    successes +=
        is_two_beta_ruling_set(instance.graph, result.outputs, 2) ? 1 : 0;
  }
  EXPECT_GE(successes, trials / 2);  // weak Monte-Carlo guarantee 1/2
}

TEST(BetaLuby, BudgetMatchesDeclaredBound) {
  const auto mc = make_mc_ruling_set(2);
  Instance instance = make_instance(cycle_graph(64),
                                    IdentityScheme::kRandomPermuted, 6);
  const auto algorithm = instantiate_with_correct_guesses(*mc, instance);
  const RunResult result = run_local(instance, *algorithm);
  EXPECT_TRUE(result.all_finished);
  EXPECT_LE(static_cast<double>(result.rounds_used),
            bound_at_correct_params(*mc, instance));
}

}  // namespace
}  // namespace unilocal
