#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/problems/coloring.h"
#include "src/problems/matching.h"
#include "src/problems/mis.h"
#include "src/problems/ruling_set.h"
#include "src/problems/slc.h"

namespace unilocal {
namespace {

TEST(MisValidator, AcceptsAndRejects) {
  Graph g = path_graph(4);  // 0-1-2-3
  EXPECT_TRUE(is_maximal_independent_set(g, {1, 0, 1, 0}));
  EXPECT_TRUE(is_maximal_independent_set(g, {0, 1, 0, 1}));
  EXPECT_TRUE(is_maximal_independent_set(g, {1, 0, 0, 1}));
  EXPECT_FALSE(is_maximal_independent_set(g, {1, 1, 0, 0}));  // adjacent
  EXPECT_FALSE(is_maximal_independent_set(g, {0, 1, 0, 0}));  // 3 uncovered
  EXPECT_FALSE(is_maximal_independent_set(g, {0, 0, 0, 0}));  // not maximal
}

TEST(MisValidator, IsolatedNodesMustJoin) {
  Graph g(3);  // no edges
  EXPECT_TRUE(is_maximal_independent_set(g, {1, 1, 1}));
  EXPECT_FALSE(is_maximal_independent_set(g, {1, 0, 1}));
}

TEST(RulingSetValidator, Beta2OnPath) {
  Graph g = path_graph(7);
  // Node 0 and node 4: every node within distance 2.
  EXPECT_TRUE(is_two_beta_ruling_set(g, {1, 0, 0, 0, 1, 0, 0}, 2));
  // Node 0 alone: node 6 at distance 6 > 2.
  EXPECT_FALSE(is_two_beta_ruling_set(g, {1, 0, 0, 0, 0, 0, 0}, 2));
  // Adjacent members violate alpha = 2.
  EXPECT_FALSE(is_two_beta_ruling_set(g, {1, 1, 0, 0, 1, 0, 0}, 2));
}

TEST(RulingSetValidator, MisIsBetaOneRulingSet) {
  Graph g = cycle_graph(9);
  std::vector<std::int64_t> s(9, 0);
  s[0] = s[3] = s[6] = 1;
  EXPECT_TRUE(is_maximal_independent_set(g, s));
  EXPECT_TRUE(is_two_beta_ruling_set(g, s, 1));
}

TEST(ColoringValidator, ProperAndCap) {
  Graph g = cycle_graph(4);
  EXPECT_TRUE(is_proper_coloring(g, {1, 2, 1, 2}));
  EXPECT_FALSE(is_proper_coloring(g, {1, 2, 1, 1}));
  EXPECT_FALSE(is_proper_coloring(g, {0, 1, 2, 1}));  // colors must be >= 1
  Instance instance = make_instance(cycle_graph(4));
  EXPECT_TRUE(ColoringProblem(2).check(instance, {1, 2, 1, 2}));
  EXPECT_FALSE(ColoringProblem(1).check(instance, {1, 2, 1, 2}));
}

TEST(ColoringValidator, DegPlusOneFlavour) {
  Instance instance = make_instance(path_graph(3));
  DegPlusOneColoringProblem problem;
  EXPECT_TRUE(problem.check(instance, {1, 2, 1}));
  EXPECT_FALSE(problem.check(instance, {3, 2, 1}));  // endpoint deg+1 = 2
}

TEST(EdgeColoringValidator, DetectsIncidenceConflicts) {
  Graph g = path_graph(3);  // edges (0,1), (1,2)
  EXPECT_TRUE(is_proper_edge_coloring(g, {1, 2}));
  EXPECT_FALSE(is_proper_edge_coloring(g, {1, 1}));
  EXPECT_FALSE(is_proper_edge_coloring(g, {1, 3}, 2));  // over cap
}

TEST(MatchingEncoding, PackAndSentinels) {
  EXPECT_EQ(match_value(3, 7), match_value(7, 3));
  EXPECT_NE(match_value(3, 7), match_value(3, 8));
  EXPECT_LT(unmatched_value(5), 0);
  EXPECT_NE(unmatched_value(5), unmatched_value(6));
}

TEST(MatchingValidator, PaperEncodingSemantics) {
  Instance instance = make_instance(path_graph(4), IdentityScheme::kSequential);
  const Graph& g = instance.graph;
  // Match (0,1) and (2,3) by identities 1,2 and 3,4.
  const std::int64_t ab = match_value(1, 2);
  const std::int64_t cd = match_value(3, 4);
  EXPECT_TRUE(is_maximal_matching(g, {ab, ab, cd, cd}));
  // Middle edge matched: ends unmatched but dominated.
  const std::int64_t bc = match_value(2, 3);
  EXPECT_TRUE(is_maximal_matching(
      g, {unmatched_value(1), bc, bc, unmatched_value(4)}));
  // No one matched: not maximal.
  EXPECT_FALSE(is_maximal_matching(g, {unmatched_value(1), unmatched_value(2),
                                       unmatched_value(3), unmatched_value(4)}));
}

TEST(MatchingValidator, ValueCollisionBreaksPair) {
  Graph g = path_graph(3);
  // All three nodes share a value: the exclusivity condition fails, so no
  // pair is matched and the output is not a maximal matching.
  EXPECT_FALSE(is_maximal_matching(g, {5, 5, 5}));
}

TEST(MatchingValidator, PartnerDerivation) {
  Graph g = cycle_graph(4);
  Instance instance = make_instance(cycle_graph(4), IdentityScheme::kSequential);
  const std::int64_t m01 = match_value(1, 2);
  const std::int64_t m23 = match_value(3, 4);
  const auto partner = matched_partner(g, {m01, m01, m23, m23});
  EXPECT_EQ(partner[0], 1);
  EXPECT_EQ(partner[1], 0);
  EXPECT_EQ(partner[2], 3);
  EXPECT_EQ(partner[3], 2);
}

TEST(Slc, PackRoundTrip) {
  const std::int64_t packed = pack_slc_color(12, 34);
  EXPECT_EQ(slc_color_base(packed), 12);
  EXPECT_EQ(slc_color_index(packed), 34);
}

TEST(Slc, FullListShape) {
  const auto list = full_slc_list(3, 2);
  EXPECT_EQ(list.size(), 3u * 3u);
  EXPECT_EQ(slc_color_base(list.front()), 1);
  EXPECT_EQ(slc_color_index(list.back()), 3);
}

TEST(Slc, InputRoundTrip) {
  const auto list = full_slc_list(2, 3);
  const Input input = make_slc_input(3, list);
  EXPECT_EQ(slc_delta_hat(input), 3);
  EXPECT_EQ(slc_list(input), list);
}

TEST(Slc, ConfigurationValidity) {
  Instance instance = make_instance(path_graph(3));
  const auto list = full_slc_list(2, 2);
  for (auto& input : instance.inputs) input = make_slc_input(2, list);
  EXPECT_TRUE(is_valid_slc_configuration(instance));
  // Drop too many entries of base color 1 at the middle node (degree 2).
  std::vector<std::int64_t> small{pack_slc_color(1, 1), pack_slc_color(2, 1),
                                  pack_slc_color(2, 2), pack_slc_color(2, 3)};
  instance.inputs[1] = make_slc_input(2, small);
  EXPECT_FALSE(is_valid_slc_configuration(instance));
}

TEST(Slc, SolutionCheck) {
  Instance instance = make_instance(path_graph(2));
  const auto list = full_slc_list(2, 1);
  for (auto& input : instance.inputs) input = make_slc_input(1, list);
  SlcProblem problem;
  EXPECT_TRUE(problem.check(
      instance, {pack_slc_color(1, 1), pack_slc_color(2, 1)}));
  EXPECT_FALSE(problem.check(
      instance, {pack_slc_color(1, 1), pack_slc_color(1, 1)}));  // conflict
  EXPECT_FALSE(problem.check(
      instance, {pack_slc_color(9, 1), pack_slc_color(2, 1)}));  // off-list
}

}  // namespace
}  // namespace unilocal
