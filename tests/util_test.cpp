#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

#include "src/core/runtime_bound.h"
#include "src/util/math.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace unilocal {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, SplitStreamsIndependentAndStable) {
  Rng base(7);
  Rng s1 = base.split(10);
  Rng s1_again = Rng(7).split(10);
  Rng s2 = base.split(11);
  EXPECT_EQ(s1.next(), s1_again.next());
  EXPECT_NE(s1.next(), s2.next());
}

TEST(Rng, NextBelowInRangeAndCoversValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = rng.next_below(7);
    ASSERT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInBounds) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const std::int64_t x = rng.next_in(-3, 9);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 9);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(11);
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_TRUE(rng.next_bool(1.0));
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  auto perm = random_permutation(50, rng);
  std::set<std::int64_t> values(perm.begin(), perm.end());
  EXPECT_EQ(values.size(), 50u);
  EXPECT_EQ(*values.begin(), 0);
  EXPECT_EQ(*values.rbegin(), 49);
}

TEST(Math, Ilog2) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(4), 2);
  EXPECT_EQ(ilog2(1023), 9);
  EXPECT_EQ(ilog2(1024), 10);
}

TEST(Math, Clog2) {
  EXPECT_EQ(clog2(1), 0);
  EXPECT_EQ(clog2(2), 1);
  EXPECT_EQ(clog2(3), 2);
  EXPECT_EQ(clog2(4), 2);
  EXPECT_EQ(clog2(5), 3);
  EXPECT_EQ(clog2(1024), 10);
  EXPECT_EQ(clog2(1025), 11);
}

TEST(Math, LogStar) {
  EXPECT_EQ(log_star(1), 0);
  EXPECT_EQ(log_star(2), 1);
  EXPECT_EQ(log_star(4), 2);
  EXPECT_EQ(log_star(16), 3);
  EXPECT_EQ(log_star(65536), 4);
  // 2^60 -> 60 -> 5 -> 2 -> 1: four applications (still below 2^65536).
  EXPECT_EQ(log_star(std::uint64_t{1} << 60), 4);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 5), 1);
}

TEST(Math, IsPrimeSmall) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(97));
  EXPECT_FALSE(is_prime(99));
}

TEST(Math, IsPrimeLarge) {
  EXPECT_TRUE(is_prime(1000000007ULL));
  EXPECT_TRUE(is_prime(2147483647ULL));  // 2^31 - 1
  EXPECT_FALSE(is_prime(2147483647ULL * 3));
  EXPECT_TRUE(is_prime(18446744073709551557ULL));  // largest 64-bit prime
}

TEST(Math, NextPrime) {
  EXPECT_EQ(next_prime(0), 2u);
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(8), 11u);
  EXPECT_EQ(next_prime(14), 17u);
  EXPECT_EQ(next_prime(17), 17u);
}

TEST(Math, SaturatingOps) {
  const std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(sat_add(kMax, 1), kMax);
  EXPECT_EQ(sat_add(1, 2), 3);
  EXPECT_EQ(sat_mul(kMax / 2, 3), kMax);
  EXPECT_EQ(sat_mul(5, 7), 35);
  EXPECT_EQ(sat_mul(0, kMax), 0);
  EXPECT_EQ(sat_pow(2, 62), std::int64_t{1} << 62);
  EXPECT_EQ(sat_pow(10, 30), kMax);
}

TEST(ThreadPool, RunsEveryJobOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.run(64, [&](int job) { ++hits[static_cast<std::size_t>(job)]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ThrowingJobRethrowsInsteadOfDeadlocking) {
  // Regression: drain() used to skip the unfinished_ decrement on a throw,
  // hanging done_cv_.wait forever (and terminating the process when the
  // throw happened on a worker thread).
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.run(32,
                        [&](int job) {
                          ++ran;
                          if (job % 2 == 1)
                            throw std::runtime_error("job failed");
                        }),
               std::runtime_error);
  // Unclaimed jobs were abandoned after the first failure.
  EXPECT_LE(ran.load(), 32);
  EXPECT_GE(ran.load(), 1);
  // The pool stays usable with consistent counters after the failure.
  std::atomic<int> after{0};
  pool.run(16, [&](int) { ++after; });
  EXPECT_EQ(after.load(), 16);
}

TEST(ThreadPool, ExceptionOnWorkerThreadDoesNotTerminate) {
  ThreadPool pool(4);
  for (int repeat = 0; repeat < 8; ++repeat) {
    EXPECT_THROW(
        pool.run(64, [&](int) { throw std::runtime_error("always"); }),
        std::runtime_error);
  }
  std::atomic<int> after{0};
  pool.run(8, [&](int) { ++after; });
  EXPECT_EQ(after.load(), 8);
}

TEST(RuntimeBoundInversion, LargestArgAtMost) {
  auto square = [](std::int64_t x) { return static_cast<double>(x) * x; };
  EXPECT_EQ(largest_arg_at_most(square, 100.0), 10);
  EXPECT_EQ(largest_arg_at_most(square, 99.0), 9);
  EXPECT_EQ(largest_arg_at_most(square, 1.0), 1);
  EXPECT_EQ(largest_arg_at_most(square, 0.5), 0);  // even f(1) too big
}

TEST(RuntimeBoundInversion, SaturatesAtCap) {
  auto constant = [](std::int64_t) { return 1.0; };
  EXPECT_EQ(largest_arg_at_most(constant, 2.0, 1000), 1000);
}

}  // namespace
}  // namespace unilocal
