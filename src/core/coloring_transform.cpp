#include "src/core/coloring_transform.h"

#include <algorithm>
#include <cassert>

#include "src/algo/lambda_coloring.h"
#include "src/algo/linial.h"
#include "src/graph/params.h"
#include "src/problems/slc.h"
#include "src/prune/slc_prune.h"
#include "src/runtime/kernel.h"
#include "src/util/math.h"

namespace unilocal {

namespace {

/// Adapter: runs the base coloring with identities as initial colors and
/// maps the resulting base color c to the packed SLC pair (c, j) with the
/// smallest j still present in the node's list. Valid SLC configurations
/// always retain at least one pair per base color (>= deg+1 survive).
class SlcAdapterProcess final : public Process {
 public:
  explicit SlcAdapterProcess(std::unique_ptr<Process> base)
      : base_(std::move(base)) {}

  void step(Context& ctx) override {
    Context sub = ctx.derived(ctx.round(), {});
    base_->step(sub);
    if (!sub.finished()) return;
    const std::int64_t base_color = std::max<std::int64_t>(sub.output(), 1);
    Input input(ctx.input().begin(), ctx.input().end());
    std::int64_t best = -1;
    for (std::int64_t packed : slc_list(input)) {
      if (slc_color_base(packed) != base_color) continue;
      if (best < 0 || slc_color_index(packed) < slc_color_index(best))
        best = packed;
    }
    if (best < 0) best = pack_slc_color(base_color, 1);  // bad-guess fallback
    ctx.finish(best);
  }

 private:
  std::unique_ptr<Process> base_;
};

// --- flat-kernel lowering of the adapter (mirrors SlcAdapterProcess) --------
//
// State geometry is the base kernel's verbatim; the wrapper hides the SLC
// input from the base (the base ran on stripped inputs) and, when the base
// finishes, remaps its color to the packed SLC pair before re-latching.

struct SlcAdapterKernelConfig {
  std::shared_ptr<const StepKernel> inner;
};

void slc_adapter_kernel_init(std::byte* state, const NodeInit& init,
                             const void* config) {
  const auto* cfg = static_cast<const SlcAdapterKernelConfig*>(config);
  NodeInit stripped = init;
  stripped.input = {};
  cfg->inner->init_fn(state, stripped, cfg->inner->config.get());
}

void slc_adapter_kernel_step(KernelCtx& ctx) {
  const auto* cfg = static_cast<const SlcAdapterKernelConfig*>(ctx.config);
  const StepKernel& inner = *cfg->inner;
  const auto saved_input = ctx.input;
  ctx.input = {};
  ctx.config = inner.config.get();
  inner.phases[kernel_phase_index(inner, ctx.round, ctx.state)].fn(ctx);
  ctx.config = cfg;
  ctx.input = saved_input;
  if (!ctx.finished) return;
  const std::int64_t base_color = std::max<std::int64_t>(ctx.output, 1);
  Input input(ctx.input.begin(), ctx.input.end());
  std::int64_t best = -1;
  for (std::int64_t packed : slc_list(input)) {
    if (slc_color_base(packed) != base_color) continue;
    if (best < 0 || slc_color_index(packed) < slc_color_index(best))
      best = packed;
  }
  if (best < 0) best = pack_slc_color(base_color, 1);  // bad-guess fallback
  ctx.output = best;
}

void slc_adapter_kernel_batch(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    slc_adapter_kernel_step(ctx);
    b.latch(i, ctx);
  }
}

std::shared_ptr<const StepKernel> make_slc_adapter_kernel(
    std::shared_ptr<const StepKernel> inner) {
  if (inner == nullptr) return nullptr;
  auto kernel = std::make_shared<StepKernel>();
  kernel->name = "slc-adapter:" + inner->name;
  kernel->state_size = inner->state_size;
  kernel->state_align = inner->state_align;
  kernel->port_state_words = inner->port_state_words;
  kernel->init_fn =
      inner->init_fn != nullptr ? slc_adapter_kernel_init : nullptr;
  kernel->phases = {
      {"adapt", slc_adapter_kernel_step, slc_adapter_kernel_batch}};
  kernel->config = std::shared_ptr<const void>(
      std::make_shared<SlcAdapterKernelConfig>(
          SlcAdapterKernelConfig{std::move(inner)}));
  return kernel;
}

class SlcAdapterAlgorithm final : public Algorithm {
 public:
  SlcAdapterAlgorithm(std::shared_ptr<const Algorithm> base, std::string name)
      : base_(std::move(base)),
        name_(std::move(name)),
        kernel_(make_slc_adapter_kernel(base_->kernel())) {}
  std::unique_ptr<Process> spawn(const NodeInit& init) const override {
    NodeInit stripped = init;
    stripped.input = {};
    return std::make_unique<SlcAdapterProcess>(base_->spawn(stripped));
  }
  std::shared_ptr<const StepKernel> kernel() const override { return kernel_; }
  std::string name() const override { return name_; }

 private:
  std::shared_ptr<const Algorithm> base_;
  std::string name_;
  std::shared_ptr<const StepKernel> kernel_;
};

/// The per-layer SLC solver B^{Gamma'}: Delta^ is baked in (it arrives with
/// every node's input), leaving m as the only guessed parameter.
class SlcSolver final : public NonUniformAlgorithm {
 public:
  SlcSolver(const GDeltaColoring& base, std::int64_t delta_hat)
      : base_(base),
        delta_hat_(delta_hat),
        bound_({BoundComponent{
            "f(D^,m)", [this](std::int64_t m) {
              return base_.bound(delta_hat_, m) + 2.0;
            }}}) {}

  std::string name() const override {
    return "slc(" + base_.name() + ",D^=" + std::to_string(delta_hat_) + ")";
  }
  ParamSet gamma() const override { return {Param::kMaxIdentity}; }
  ParamSet lambda() const override { return {Param::kMaxIdentity}; }
  const RuntimeBound& bound() const override { return bound_; }
  std::unique_ptr<Algorithm> instantiate(
      std::span<const std::int64_t> guesses) const override {
    return std::make_unique<SlcAdapterAlgorithm>(
        std::shared_ptr<const Algorithm>(
            base_.instantiate(delta_hat_, guesses[0])),
        name());
  }

 private:
  const GDeltaColoring& base_;
  std::int64_t delta_hat_;
  AdditiveBound bound_;
};

}  // namespace

std::vector<std::int64_t> layer_thresholds(const GDeltaColoring& algorithm,
                                           std::int64_t max_degree) {
  std::vector<std::int64_t> thresholds{1};
  while (thresholds.back() <= std::max<std::int64_t>(max_degree, 1)) {
    const std::int64_t d = thresholds.back();
    const std::int64_t want = 2 * algorithm.g(d);
    std::int64_t next = largest_arg_at_most(
        [&](std::int64_t x) { return static_cast<double>(algorithm.g(x)); },
        static_cast<double>(want) - 0.5);
    next += 1;  // smallest l with g(l) >= want
    if (next <= d) next = d + 1;  // safety for degenerate g
    thresholds.push_back(next);
  }
  return thresholds;
}

ColoringTransformResult run_uniform_coloring_transform(
    const Instance& instance, const GDeltaColoring& algorithm,
    const UniformRunOptions& options) {
  ColoringTransformResult result;
  const NodeId n = instance.num_nodes();
  result.colors.assign(static_cast<std::size_t>(n), 0);
  result.solved = true;
  if (n == 0) return result;

  const std::int64_t delta = max_degree(instance.graph);
  const auto thresholds = layer_thresholds(algorithm, delta);
  // layer_of(v): the largest i with D_i <= max(deg(v), 1).
  auto layer_of = [&](NodeId v) {
    const std::int64_t d =
        std::max<std::int64_t>(instance.graph.degree(v), 1);
    int layer = 0;
    while (layer + 1 < static_cast<int>(thresholds.size()) &&
           thresholds[static_cast<std::size_t>(layer + 1)] <= d)
      ++layer;
    return layer;  // 0-based into thresholds
  };

  std::uint64_t seed = options.seed;
  // One arena across every layer's phase-2 run; joins the caller's lent
  // workspace when there is one (campaign cells lend their checked-out one).
  EngineWorkspace local_workspace;
  EngineWorkspace* workspace =
      options.workspace != nullptr ? options.workspace : &local_workspace;
  for (int layer = 0; layer + 1 < static_cast<int>(thresholds.size());
       ++layer) {
    std::vector<bool> keep(static_cast<std::size_t>(n), false);
    NodeId members = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (layer_of(v) == layer) {
        keep[static_cast<std::size_t>(v)] = true;
        ++members;
      }
    }
    if (members == 0) continue;
    const std::int64_t delta_hat =
        thresholds[static_cast<std::size_t>(layer + 1)];
    const std::int64_t g_hat = algorithm.g(delta_hat);

    // ---- Phase 1: uniform SLC on the layer. ----
    const InducedSubgraph sub = induced_subgraph(instance.graph, keep);
    std::vector<Input> slc_inputs(static_cast<std::size_t>(n));
    const auto full_list = full_slc_list(g_hat, delta_hat);
    for (NodeId v = 0; v < n; ++v) {
      if (keep[static_cast<std::size_t>(v)])
        slc_inputs[static_cast<std::size_t>(v)] =
            make_slc_input(delta_hat, full_list);
    }
    Instance layer_instance = restrict_instance(instance, sub, slc_inputs);
    const SlcSolver solver(algorithm, delta_hat);
    const SlcPruning slc_pruning;
    UniformRunOptions phase1_options = options;
    phase1_options.seed = seed++;
    phase1_options.check_problem = nullptr;
    const UniformRunResult phase1 = run_uniform_transformer(
        layer_instance, solver, slc_pruning, phase1_options);
    result.engine_stats.merge(phase1.engine_stats);
    if (!phase1.solved) {
      result.solved = false;
      return result;
    }

    // ---- Phase 2: non-uniform rerun with known guesses. ----
    // Phase 1 pairs become initial colors in [1, g_hat*(delta_hat+1)].
    const std::int64_t m_phase2 = g_hat * (delta_hat + 1);
    Instance recolor_instance = layer_instance;
    for (NodeId v = 0; v < sub.graph.num_nodes(); ++v) {
      const std::int64_t packed =
          phase1.outputs[static_cast<std::size_t>(v)];
      const std::int64_t initial =
          (slc_color_base(packed) - 1) * (delta_hat + 1) +
          slc_color_index(packed);
      recolor_instance.inputs[static_cast<std::size_t>(v)] = {initial};
    }
    const auto phase2_algorithm = algorithm.instantiate(delta_hat, m_phase2);
    RunOptions run_options;
    run_options.seed = seed++;
    run_options.num_threads = std::max(1, options.engine_threads);
    run_options.kernel_mode = options.kernel_mode;
    run_options.network = options.network;
    const RunResult phase2 =
        run_local(recolor_instance, *phase2_algorithm, run_options,
                  workspace);
    result.engine_stats.merge(phase2.stats);
    if (!phase2.all_finished) {
      result.solved = false;
      return result;
    }

    // ---- Stitch into the layer's private palette. ----
    for (NodeId v = 0; v < sub.graph.num_nodes(); ++v) {
      const NodeId original = sub.to_old[static_cast<std::size_t>(v)];
      result.colors[static_cast<std::size_t>(original)] =
          g_hat + phase2.outputs[static_cast<std::size_t>(v)];
    }
    LayerTrace trace;
    trace.layer = layer + 1;
    trace.nodes = members;
    trace.delta_hat = delta_hat;
    trace.phase1_rounds = phase1.total_rounds;
    trace.phase2_rounds = phase2.rounds_used;
    trace.palette_lo = g_hat + 1;
    trace.palette_hi = 2 * g_hat;
    result.layers.push_back(trace);
    result.phase1_rounds = std::max(result.phase1_rounds, phase1.total_rounds);
    result.phase2_rounds = std::max(result.phase2_rounds, phase2.rounds_used);
  }
  result.total_rounds = result.phase1_rounds + result.phase2_rounds;
  for (std::int64_t c : result.colors) result.max_color_used = std::max(result.max_color_used, c);
  return result;
}

namespace {

class LambdaGDelta final : public GDeltaColoring {
 public:
  explicit LambdaGDelta(std::int64_t lambda) : lambda_(lambda) {}
  std::string name() const override {
    return "lambda(D+1)[l=" + std::to_string(lambda_) + "]";
  }
  std::int64_t g(std::int64_t delta) const override {
    return lambda_ * (std::max<std::int64_t>(delta, 0) + 1);
  }
  std::unique_ptr<Algorithm> instantiate(
      std::int64_t delta_guess, std::int64_t m_guess) const override {
    return make_lambda_coloring_algorithm(lambda_, delta_guess, m_guess);
  }
  double bound(std::int64_t delta_guess, std::int64_t m_guess) const override {
    return static_cast<double>(linial_final_space_bound(delta_guess) + 6) +
           static_cast<double>(
               log_star(static_cast<std::uint64_t>(
                   std::max<std::int64_t>(m_guess, 2))) +
               43);
  }

 private:
  std::int64_t lambda_;
};

}  // namespace

std::unique_ptr<GDeltaColoring> make_lambda_gdelta_coloring(
    std::int64_t lambda) {
  return std::make_unique<LambdaGDelta>(std::max<std::int64_t>(lambda, 1));
}

}  // namespace unilocal
