#include "src/core/runtime_bound.h"

#include <cassert>
#include <cmath>

#include "src/util/math.h"

namespace unilocal {

std::int64_t largest_arg_at_most(const std::function<double(std::int64_t)>& fn,
                                 double bound, std::int64_t cap) {
  if (fn(1) > bound) return 0;
  std::int64_t lo = 1;  // fn(lo) <= bound invariant
  std::int64_t hi = 2;
  while (hi < cap && fn(hi) <= bound) {
    lo = hi;
    hi *= 2;
  }
  if (hi >= cap) hi = cap;
  // Invariant: fn(lo) <= bound; fn(hi) > bound or hi == cap.
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (fn(mid) <= bound)
      lo = mid;
    else
      hi = mid;
  }
  if (fn(hi) <= bound) return hi;
  return lo;
}

AdditiveBound::AdditiveBound(std::vector<BoundComponent> components)
    : components_(std::move(components)) {
  assert(!components_.empty());
}

double AdditiveBound::eval(std::span<const std::int64_t> args) const {
  assert(args.size() == components_.size());
  double total = 0.0;
  for (std::size_t k = 0; k < components_.size(); ++k)
    total += components_[k].fn(args[k]);
  return total;
}

std::vector<std::vector<std::int64_t>> AdditiveBound::set_sequence(
    std::int64_t i) const {
  // S_f(i) = { (x_1, .., x_l) } with x_k the largest value whose component
  // cost is at most i; empty when some component exceeds i already at 1.
  std::vector<std::int64_t> x(components_.size());
  for (std::size_t k = 0; k < components_.size(); ++k) {
    const std::int64_t largest =
        largest_arg_at_most(components_[k].fn, static_cast<double>(i));
    if (largest == 0) return {};
    x[k] = largest;
  }
  return {x};
}

std::string AdditiveBound::describe() const {
  std::string out = "additive(";
  for (std::size_t k = 0; k < components_.size(); ++k) {
    if (k > 0) out += " + ";
    out += components_[k].label;
  }
  return out + ")";
}

ProductBound::ProductBound(BoundComponent f1, BoundComponent f2)
    : f1_(std::move(f1)), f2_(std::move(f2)) {}

double ProductBound::eval(std::span<const std::int64_t> args) const {
  assert(args.size() == 2);
  return f1_.fn(args[0]) * f2_.fn(args[1]);
}

std::vector<std::vector<std::int64_t>> ProductBound::set_sequence(
    std::int64_t i) const {
  // S_f(i) = { (x1_j, x2_j) : j in [0, ceil(log2 i)] } with
  //   x1_j = largest y with f1(y) <= 2^j,
  //   x2_j = largest y with f2(y) <= 2^(ceil(log2 i) - j + 1),
  // skipping pairs where either side does not exist (Observation 4.1).
  std::vector<std::vector<std::int64_t>> sequence;
  if (i < 1) return sequence;
  const int top = clog2(static_cast<std::uint64_t>(i));
  for (int j = 0; j <= top; ++j) {
    const double budget1 = std::ldexp(1.0, j);
    const double budget2 = std::ldexp(1.0, top - j + 1);
    const std::int64_t x1 = largest_arg_at_most(f1_.fn, budget1);
    const std::int64_t x2 = largest_arg_at_most(f2_.fn, budget2);
    if (x1 == 0 || x2 == 0) continue;
    sequence.push_back({x1, x2});
  }
  return sequence;
}

std::int64_t ProductBound::sequence_number(std::int64_t i) const {
  if (i < 1) return 1;
  return clog2(static_cast<std::uint64_t>(i)) + 1;
}

std::string ProductBound::describe() const {
  return "product(" + f1_.label + " * " + f2_.label + ")";
}

}  // namespace unilocal
