#include "src/core/transformer.h"

#include <cassert>

#include "src/util/math.h"

namespace unilocal {

UniformRunResult run_uniform_transformer(const Instance& instance,
                                         const NonUniformAlgorithm& algorithm,
                                         const PruningAlgorithm& pruning,
                                         const UniformRunOptions& options) {
  // Theorem 1 requires the running-time bound to range over exactly the
  // guessed parameters (Theorem 3's wrapper establishes this in general).
  assert(algorithm.gamma() == algorithm.lambda());
  assert(algorithm.bound().arity() == algorithm.gamma().size());

  // The driver's workspace carries one message arena through every
  // (A restricted to c*2^i ; P) sub-iteration below — the sequential
  // composition never re-allocates engine state between stages.
  AlternatingDriver driver(instance, pruning, options.workspace);
  driver.engine_threads = options.engine_threads;
  driver.kernel_mode = options.kernel_mode;
  driver.network = options.network;
  UniformRunResult result;
  std::uint64_t seed = options.seed;
  const std::int64_t c = algorithm.bound().bounding_constant();
  for (int i = 1; i <= options.max_iterations && !driver.done(); ++i) {
    result.iterations_used = i;
    const std::int64_t scale = sat_pow(2, i);
    const auto guess_vectors = algorithm.bound().set_sequence(scale);
    int sub = 0;
    for (const auto& guesses : guess_vectors) {
      if (driver.done()) break;
      if (options.round_cap >= 0 && driver.total_rounds() >= options.round_cap)
        break;
      SubIterationTrace trace;
      trace.iteration = i;
      trace.sub_iteration = ++sub;
      trace.guesses = guesses;
      const auto runnable = algorithm.instantiate(guesses);
      driver.run_step(*runnable, sat_mul(c, scale), seed++, &trace);
      result.trace.push_back(std::move(trace));
    }
    if (options.round_cap >= 0 && driver.total_rounds() >= options.round_cap)
      break;
  }
  result.outputs = driver.outputs();
  result.total_rounds = driver.total_rounds();
  result.solved = driver.done();
  result.engine_stats = driver.stats();
  if (result.solved && options.check_problem != nullptr) {
    assert(options.check_problem->check(instance, result.outputs));
  }
  return result;
}

}  // namespace unilocal
