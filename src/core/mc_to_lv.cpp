#include "src/core/mc_to_lv.h"

#include <cassert>

#include "src/util/math.h"

namespace unilocal {

UniformRunResult run_las_vegas_transformer(const Instance& instance,
                                           const NonUniformAlgorithm& algorithm,
                                           const PruningAlgorithm& pruning,
                                           const UniformRunOptions& options) {
  assert(algorithm.gamma() == algorithm.lambda());

  AlternatingDriver driver(instance, pruning, options.workspace);
  driver.engine_threads = options.engine_threads;
  driver.kernel_mode = options.kernel_mode;
  driver.network = options.network;
  UniformRunResult result;
  std::uint64_t seed = options.seed;
  const std::int64_t c = algorithm.bound().bounding_constant();
  for (int i = 1; i <= options.max_iterations && !driver.done(); ++i) {
    result.iterations_used = i;
    // Iteration i replays pi's iterations j = 1..i with fresh randomness.
    for (int j = 1; j <= i && !driver.done(); ++j) {
      const std::int64_t scale = sat_pow(2, j);
      const auto guess_vectors = algorithm.bound().set_sequence(scale);
      int sub = 0;
      for (const auto& guesses : guess_vectors) {
        if (driver.done()) break;
        SubIterationTrace trace;
        trace.iteration = i;
        trace.sub_iteration = ++sub + (j - 1) * 1000;  // encode (j, k)
        trace.guesses = guesses;
        const auto runnable = algorithm.instantiate(guesses);
        driver.run_step(*runnable, sat_mul(c, scale), seed++, &trace);
        result.trace.push_back(std::move(trace));
      }
    }
  }
  result.outputs = driver.outputs();
  result.total_rounds = driver.total_rounds();
  result.solved = driver.done();
  result.engine_stats = driver.stats();
  if (result.solved && options.check_problem != nullptr) {
    assert(options.check_problem->check(instance, result.outputs));
  }
  return result;
}

}  // namespace unilocal
