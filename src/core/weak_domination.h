// Theorem 3 — removing parameters that the running time does not depend on.
//
// When Gamma contains a parameter p absent from Lambda but weakly dominated
// by some q in Lambda (an ascending g with g(p(G,x)) <= q(G,x) on the whole
// instance family), the wrapper guesses only the Lambda parameters and
// derives the guess for p as g^{-1}(q~) = max{y : g(y) <= q~}: good Lambda
// guesses then yield good derived guesses. The wrapper's bound folds the
// dominated parameter's additive cost component into its dominating
// parameter's component (f'_q(x) = f_q(x) + f_p(g^{-1}(x))), which keeps the
// bound additive — so Theorems 1 and 2 apply unchanged.
//
// The flagship instance (paper Corollary 4 / Barenboim-Elkin'10): MIS with
// Gamma = {a, n, ...} on a family where a <= h(n); pass g = h^{-1}-style
// domination and the uniform algorithm never needs the arboricity.
#pragma once

#include <memory>

#include "src/core/nonuniform.h"

namespace unilocal {

struct Domination {
  /// The parameter to eliminate (must be in inner gamma(), not kept).
  Param dominated;
  /// The dominating parameter (must be in inner lambda()).
  Param via;
  /// Ascending g with g(dominated) <= via guaranteed on the instance family.
  std::function<double(std::int64_t)> g;
  std::string label;
};

/// Requires the inner bound to be additive and inner.lambda() == inner
/// gamma() order-compatible: wrapper lambda'/gamma' = inner gamma() minus
/// the dominated parameters.
std::unique_ptr<NonUniformAlgorithm> apply_weak_domination(
    std::shared_ptr<const NonUniformAlgorithm> inner,
    std::vector<Domination> dominations);

}  // namespace unilocal
