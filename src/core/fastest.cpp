#include "src/core/fastest.h"

#include <algorithm>
#include <cassert>

#include "src/util/math.h"

namespace unilocal {

namespace {

class LocalExecutable final : public UniformExecutable {
 public:
  explicit LocalExecutable(std::shared_ptr<const Algorithm> algorithm)
      : algorithm_(std::move(algorithm)) {}
  std::string name() const override { return algorithm_->name(); }
  AlternatingDriver::CustomOutcome run(
      const Instance& instance, std::int64_t budget, std::uint64_t seed,
      EngineWorkspace* workspace, int engine_threads, KernelMode kernel_mode,
      const NetworkOptions& network) const override {
    RunOptions options;
    options.max_rounds = budget;
    options.seed = seed;
    options.num_threads = std::max(1, engine_threads);
    options.kernel_mode = kernel_mode;
    options.network = network;
    RunResult result = run_local(instance, *algorithm_, options, workspace);
    return {std::move(result.outputs), result.rounds_used, result.stats};
  }

 private:
  std::shared_ptr<const Algorithm> algorithm_;
};

class TransformedExecutable final : public UniformExecutable {
 public:
  TransformedExecutable(std::shared_ptr<const NonUniformAlgorithm> algorithm,
                        std::shared_ptr<const PruningAlgorithm> pruning)
      : algorithm_(std::move(algorithm)), pruning_(std::move(pruning)) {}
  std::string name() const override {
    return "uniform(" + algorithm_->name() + ")";
  }
  AlternatingDriver::CustomOutcome run(
      const Instance& instance, std::int64_t budget, std::uint64_t seed,
      EngineWorkspace* workspace, int engine_threads, KernelMode kernel_mode,
      const NetworkOptions& network) const override {
    // The nested transformer's driver joins the lent arena (when the caller
    // lends one), so every Theorem-1/2/3 sub-run shares the outer driver's
    // workspace instead of re-allocating its own.
    UniformRunOptions options;
    options.seed = seed;
    options.round_cap = budget;
    options.workspace = workspace;
    options.engine_threads = engine_threads;
    options.kernel_mode = kernel_mode;
    options.network = network;
    UniformRunResult result =
        run_uniform_transformer(instance, *algorithm_, *pruning_, options);
    return {std::move(result.outputs), result.total_rounds,
            result.engine_stats};
  }

 private:
  std::shared_ptr<const NonUniformAlgorithm> algorithm_;
  std::shared_ptr<const PruningAlgorithm> pruning_;
};

}  // namespace

std::unique_ptr<UniformExecutable> make_local_executable(
    std::shared_ptr<const Algorithm> algorithm) {
  return std::make_unique<LocalExecutable>(std::move(algorithm));
}

std::unique_ptr<UniformExecutable> make_transformed_executable(
    std::shared_ptr<const NonUniformAlgorithm> algorithm,
    std::shared_ptr<const PruningAlgorithm> pruning) {
  return std::make_unique<TransformedExecutable>(std::move(algorithm),
                                                 std::move(pruning));
}

UniformRunResult run_fastest(
    const Instance& instance,
    const std::vector<const UniformExecutable*>& algorithms,
    const PruningAlgorithm& pruning, const UniformRunOptions& options) {
  AlternatingDriver driver(instance, pruning, options.workspace);
  driver.engine_threads = options.engine_threads;
  driver.kernel_mode = options.kernel_mode;
  driver.network = options.network;
  UniformRunResult result;
  std::uint64_t seed = options.seed;
  for (int i = 1; i <= options.max_iterations && !driver.done(); ++i) {
    result.iterations_used = i;
    // Saturate the doubling budget: raising max_iterations past 62 must not
    // shift into UB territory, so cap at the engine's default round cap.
    const std::int64_t budget =
        std::min(sat_pow(2, i), RunOptions{}.max_rounds);
    int sub = 0;
    for (const UniformExecutable* algorithm : algorithms) {
      if (driver.done()) break;
      SubIterationTrace trace;
      trace.iteration = i;
      trace.sub_iteration = ++sub;
      trace.algorithm = algorithm->name();
      trace.budget = budget;
      const std::uint64_t step_seed = seed++;
      driver.run_custom_step(
          [&](const Instance& current) {
            return algorithm->run(current, budget, step_seed,
                                  &driver.workspace(),
                                  options.engine_threads,
                                  options.kernel_mode, options.network);
          },
          &trace);
      result.trace.push_back(std::move(trace));
    }
  }
  result.outputs = driver.outputs();
  result.total_rounds = driver.total_rounds();
  result.solved = driver.done();
  result.engine_stats = driver.stats();
  if (result.solved && options.check_problem != nullptr) {
    assert(options.check_problem->check(instance, result.outputs));
  }
  return result;
}

}  // namespace unilocal
