// Theorem 2 — the Monte-Carlo -> Las Vegas transformer tau (paper
// Algorithm 2). Outer iteration i replays the first i iterations of pi with
// fresh randomness; a failed probabilistic run merely leaves survivors for
// the next sweep, so the output is correct with probability 1 while the
// expected ledger stays O(f* . s_f(f*)).
#pragma once

#include "src/core/transformer.h"

namespace unilocal {

/// Las Vegas execution. The returned `solved` is true unless the iteration
/// cap was exhausted (probability vanishing in the cap).
UniformRunResult run_las_vegas_transformer(const Instance& instance,
                                           const NonUniformAlgorithm& algorithm,
                                           const PruningAlgorithm& pruning,
                                           const UniformRunOptions& options = {});

}  // namespace unilocal
