#include "src/core/alternating.h"

#include <cassert>

namespace unilocal {

AlternatingDriver::AlternatingDriver(Instance initial,
                                     const PruningAlgorithm& pruning,
                                     EngineWorkspace* external_workspace)
    : pruning_(pruning),
      current_(std::move(initial)),
      external_workspace_(external_workspace) {
  const NodeId n = current_.num_nodes();
  to_original_.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) to_original_[static_cast<std::size_t>(v)] = v;
  outputs_.assign(static_cast<std::size_t>(n), 0);
}

NodeId AlternatingDriver::run_step(const Algorithm& algorithm,
                                   std::int64_t budget, std::uint64_t seed,
                                   SubIterationTrace* trace) {
  if (done()) return 0;
  RunOptions options;
  options.max_rounds = budget;
  options.seed = seed;
  options.num_threads = std::max(1, engine_threads);
  options.kernel_mode = kernel_mode;
  options.network = network;
  const RunResult result =
      run_local(current_, algorithm, options, &workspace());
  stats_.merge(result.stats);
  if (trace != nullptr) {
    trace->algorithm = algorithm.name();
    trace->budget = budget;
  }
  return prune_and_glue(result.outputs, result.rounds_used, trace);
}

NodeId AlternatingDriver::run_custom_step(const CustomStep& execute,
                                          SubIterationTrace* trace) {
  if (done()) return 0;
  CustomOutcome outcome = execute(current_);
  assert(outcome.outputs.size() ==
         static_cast<std::size_t>(current_.num_nodes()));
  stats_.merge(outcome.stats);
  return prune_and_glue(outcome.outputs, outcome.rounds, trace);
}

NodeId AlternatingDriver::prune_and_glue(
    const std::vector<std::int64_t>& tentative, std::int64_t rounds_used,
    SubIterationTrace* trace) {
  const NodeId before = current_.num_nodes();
  const PruneResult pruned = pruning_.apply(current_, tentative);
  NodeId pruned_count = 0;
  std::vector<bool> keep(static_cast<std::size_t>(before), false);
  for (NodeId v = 0; v < before; ++v) {
    if (pruned.pruned[static_cast<std::size_t>(v)]) {
      outputs_[static_cast<std::size_t>(
          to_original_[static_cast<std::size_t>(v)])] =
          tentative[static_cast<std::size_t>(v)];
      ++pruned_count;
    } else {
      keep[static_cast<std::size_t>(v)] = true;
    }
  }
  const InducedSubgraph sub = induced_subgraph(current_.graph, keep);
  std::vector<NodeId> new_to_original(sub.to_old.size());
  for (std::size_t i = 0; i < sub.to_old.size(); ++i) {
    new_to_original[i] =
        to_original_[static_cast<std::size_t>(sub.to_old[i])];
  }
  current_ = restrict_instance(current_, sub, pruned.surviving_inputs);
  to_original_ = std::move(new_to_original);
  total_rounds_ += rounds_used + pruning_.running_time();
  if (trace != nullptr) {
    trace->rounds_used = rounds_used;
    trace->nodes_before = before;
    trace->nodes_pruned = pruned_count;
  }
  return pruned_count;
}

}  // namespace unilocal
