#include "src/core/product_coloring.h"

#include "src/graph/transforms.h"
#include "src/prune/ruling_set_prune.h"

namespace unilocal {

ProductColoringResult run_uniform_deg_plus_one_coloring(
    const Instance& instance, const NonUniformAlgorithm& mis_algorithm,
    const UniformRunOptions& options) {
  ProductColoringResult result;
  const CliqueProduct product = clique_product(instance.graph);
  result.product_nodes = product.graph.num_nodes();
  // Product identities: derived injectively from (owner identity, slot);
  // slots are at most deg+1 <= n, so pack as id * (n+2) + slot, which stays
  // within the 2^31 identity range for the instance sizes this library
  // targets (n * m < 2^31). Callers with larger identities should rehash.
  Instance product_instance;
  product_instance.graph = product.graph;
  const std::int64_t stride = instance.num_nodes() + 2;
  product_instance.identities.resize(
      static_cast<std::size_t>(product.graph.num_nodes()));
  product_instance.inputs.assign(
      static_cast<std::size_t>(product.graph.num_nodes()), {});
  for (NodeId p = 0; p < product.graph.num_nodes(); ++p) {
    const NodeId owner = product.owner[static_cast<std::size_t>(p)];
    product_instance.identities[static_cast<std::size_t>(p)] =
        instance.identities[static_cast<std::size_t>(owner)] * stride +
        product.slot[static_cast<std::size_t>(p)] + 1;
  }
  const RulingSetPruning pruning(1);
  const UniformRunResult mis =
      run_uniform_transformer(product_instance, mis_algorithm, pruning,
                              options);
  result.total_rounds = mis.total_rounds;
  result.engine_stats = mis.engine_stats;
  if (!mis.solved) return result;
  result.colors = coloring_from_product_mis(product, mis.outputs);
  result.solved =
      result.colors.size() == static_cast<std::size_t>(instance.num_nodes());
  return result;
}

}  // namespace unilocal
