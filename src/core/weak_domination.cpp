#include "src/core/weak_domination.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace unilocal {

namespace {

class DominatedNonUniform final : public NonUniformAlgorithm {
 public:
  DominatedNonUniform(std::shared_ptr<const NonUniformAlgorithm> inner,
                      std::vector<Domination> dominations)
      : inner_(std::move(inner)), dominations_(std::move(dominations)) {
    const ParamSet inner_gamma = inner_->gamma();
    const ParamSet inner_lambda = inner_->lambda();
    if (inner_gamma != inner_lambda) {
      throw std::invalid_argument(
          "apply_weak_domination: inner must have gamma == lambda "
          "(apply it before other wrappers)");
    }
    const auto* additive =
        dynamic_cast<const AdditiveBound*>(&inner_->bound());
    if (additive == nullptr) {
      throw std::invalid_argument(
          "apply_weak_domination: inner bound must be additive");
    }
    // Partition inner parameters into kept and dominated.
    std::vector<BoundComponent> merged;
    for (std::size_t k = 0; k < inner_gamma.size(); ++k) {
      const Param p = inner_gamma[k];
      const bool is_dominated =
          std::any_of(dominations_.begin(), dominations_.end(),
                      [p](const Domination& d) { return d.dominated == p; });
      if (is_dominated) continue;
      kept_.push_back(p);
      inner_index_of_kept_.push_back(k);
      // Fold every domination routed through p into its component.
      BoundComponent component = additive->components()[k];
      std::string label = component.label;
      std::vector<std::pair<std::function<double(std::int64_t)>,
                            std::function<double(std::int64_t)>>>
          folds;
      for (const Domination& d : dominations_) {
        if (d.via != p) continue;
        const std::size_t dk = index_of(inner_gamma, d.dominated);
        folds.emplace_back(additive->components()[dk].fn, d.g);
        label += "+" + additive->components()[dk].label + "(" + d.label + ")";
      }
      if (!folds.empty()) {
        auto base = component.fn;
        component.fn = [base, folds](std::int64_t x) {
          double total = base(x);
          for (const auto& [cost, g] : folds) {
            total += cost(largest_arg_at_most(g, static_cast<double>(x)));
          }
          return total;
        };
        component.label = label;
      }
      merged.push_back(std::move(component));
    }
    // Sanity: every dominated parameter has a kept `via`.
    for (const Domination& d : dominations_) {
      assert(std::find(kept_.begin(), kept_.end(), d.via) != kept_.end());
      (void)d;
    }
    bound_ = std::make_unique<AdditiveBound>(std::move(merged));
  }

  std::string name() const override {
    return inner_->name() + "[dominated]";
  }
  ParamSet gamma() const override { return kept_; }
  ParamSet lambda() const override { return kept_; }
  const RuntimeBound& bound() const override { return *bound_; }
  bool randomized() const override { return inner_->randomized(); }

  std::unique_ptr<Algorithm> instantiate(
      std::span<const std::int64_t> guesses) const override {
    assert(guesses.size() == kept_.size());
    const ParamSet inner_gamma = inner_->gamma();
    std::vector<std::int64_t> inner_guesses(inner_gamma.size(), 1);
    for (std::size_t k = 0; k < kept_.size(); ++k) {
      inner_guesses[inner_index_of_kept_[k]] = guesses[k];
    }
    for (const Domination& d : dominations_) {
      const std::size_t dk = index_of(inner_gamma, d.dominated);
      const std::size_t vk = index_of(kept_, d.via);
      inner_guesses[dk] = std::max<std::int64_t>(
          largest_arg_at_most(d.g, static_cast<double>(guesses[vk])), 1);
    }
    return inner_->instantiate(inner_guesses);
  }

 private:
  static std::size_t index_of(const ParamSet& params, Param p) {
    const auto it = std::find(params.begin(), params.end(), p);
    assert(it != params.end());
    return static_cast<std::size_t>(it - params.begin());
  }

  std::shared_ptr<const NonUniformAlgorithm> inner_;
  std::vector<Domination> dominations_;
  ParamSet kept_;
  std::vector<std::size_t> inner_index_of_kept_;
  std::unique_ptr<AdditiveBound> bound_;
};

}  // namespace

std::unique_ptr<NonUniformAlgorithm> apply_weak_domination(
    std::shared_ptr<const NonUniformAlgorithm> inner,
    std::vector<Domination> dominations) {
  return std::make_unique<DominatedNonUniform>(std::move(inner),
                                               std::move(dominations));
}

}  // namespace unilocal
