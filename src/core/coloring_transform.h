// Theorem 5 — the uniform coloring transformer.
//
// Input: a non-uniform g(Delta~)-coloring algorithm A requiring guesses
// (Delta~, m~), with g moderately-fast and an additive-style bound whose m
// dependence is polylog and whose Delta dependence is moderately-slow.
//
// The transform:
//  * layering: D_1 = 1, D_{i+1} = min{ l : g(l) >= 2 g(D_i) }; a node's
//    layer is determined by its own degree — a purely local quantity;
//  * phase 1: each layer becomes a Strong List Coloring instance with the
//    common estimate Delta^ = D_{i+1} and full lists
//    [1, g(Delta^)] x [1, Delta^+1]; the SLC solver (A with Delta~ = Delta^,
//    output mapped into the list) is made uniform in its remaining
//    parameter m via the Theorem 1 transformer with the P_SLC pruning
//    algorithm — all layers run in parallel (rounds = max over layers);
//  * phase 2: within each layer, rerun A non-uniformly with the *known*
//    guesses Delta~ = Delta^, m~ = g(Delta^)*(Delta^+1) (the phase 1 colors
//    serve as identities), then shift the result into the layer's private
//    palette [g(D_{i+1})+1, 2 g(D_{i+1})].
// Layer palettes are pairwise disjoint (g(D_{i+1}) >= 2 g(D_i)), so the
// union is a proper O(g(Delta))-coloring of the whole graph.
#pragma once

#include <functional>
#include <memory>

#include "src/core/transformer.h"

namespace unilocal {

/// A g(Delta~)-coloring black box in the Theorem 5 sense.
class GDeltaColoring {
 public:
  virtual ~GDeltaColoring() = default;
  virtual std::string name() const = 0;
  /// The color budget g (moderately-fast: x < g(x) < poly(x)).
  virtual std::int64_t g(std::int64_t delta) const = 0;
  /// Instantiates A with the given guesses. The algorithm must read its
  /// initial color from input[0] when present (identities otherwise) and
  /// finish with a color in [1, g(delta_guess)].
  virtual std::unique_ptr<Algorithm> instantiate(
      std::int64_t delta_guess, std::int64_t m_guess) const = 0;
  /// f(delta~, m~) upper-bounding the running time under good guesses.
  virtual double bound(std::int64_t delta_guess,
                       std::int64_t m_guess) const = 0;
};

/// The lambda(Delta+1)-coloring black box of Corollary 1(iii).
std::unique_ptr<GDeltaColoring> make_lambda_gdelta_coloring(
    std::int64_t lambda);

struct LayerTrace {
  int layer = 0;
  NodeId nodes = 0;
  std::int64_t delta_hat = 0;
  std::int64_t phase1_rounds = 0;
  std::int64_t phase2_rounds = 0;
  std::int64_t palette_lo = 0;
  std::int64_t palette_hi = 0;
};

struct ColoringTransformResult {
  std::vector<std::int64_t> colors;
  bool solved = false;
  /// max over layers (they run in parallel), phase by phase.
  std::int64_t phase1_rounds = 0;
  std::int64_t phase2_rounds = 0;
  std::int64_t total_rounds = 0;
  std::int64_t max_color_used = 0;
  std::vector<LayerTrace> layers;
  /// Aggregated engine stats over both phases of every layer.
  EngineStats engine_stats;
};

ColoringTransformResult run_uniform_coloring_transform(
    const Instance& instance, const GDeltaColoring& algorithm,
    const UniformRunOptions& options = {});

/// The degree thresholds D_1, D_2, ... up to the first threshold exceeding
/// max_degree (exposed for tests).
std::vector<std::int64_t> layer_thresholds(const GDeltaColoring& algorithm,
                                           std::int64_t max_degree);

}  // namespace unilocal
