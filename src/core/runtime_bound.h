// Running-time bounds as first-class objects (paper Section 4.2).
//
// A RuntimeBound models a non-decreasing f : N^l -> R+ together with the
// machinery Theorem 1 consumes:
//   * a bounded set-sequence S_f(i): finite sets of guess vectors such that
//     every y with f(y) <= i is dominated by some x in S_f(i), and
//     f(x) <= c*i for all x in S_f(i) (c = bounding constant);
//   * a sequence-number function s_f(i) >= |S_f(i)| that is moderately-slow.
//
// Observation 4.1 instances:
//   * AdditiveBound  — f = sum of ascending components, s_f = 1, c = l;
//   * ProductBound   — f = f1*f2 with f1,f2 >= 1 ascending,
//                      s_f(i) = ceil(log2 i)+1, c = 2.
// Component inversion ("largest y with f_k(y) <= bound") is by binary
// search, which only needs the component to be non-decreasing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace unilocal {

/// An ascending (non-decreasing, tending to infinity) component function.
struct BoundComponent {
  std::string label;
  std::function<double(std::int64_t)> fn;
};

/// Largest y in [1, cap] with fn(y) <= bound, or 0 when even fn(1) > bound.
/// fn must be non-decreasing.
std::int64_t largest_arg_at_most(const std::function<double(std::int64_t)>& fn,
                                 double bound,
                                 std::int64_t cap = std::int64_t{1} << 42);

class RuntimeBound {
 public:
  virtual ~RuntimeBound() = default;
  virtual std::size_t arity() const = 0;
  virtual double eval(std::span<const std::int64_t> args) const = 0;
  /// S_f(i): guess vectors (each of length arity()).
  virtual std::vector<std::vector<std::int64_t>> set_sequence(
      std::int64_t i) const = 0;
  /// Bounding constant c with f(x) <= c*i for all x in S_f(i).
  virtual std::int64_t bounding_constant() const = 0;
  /// s_f(i) — moderately-slow and >= |S_f(i)|.
  virtual std::int64_t sequence_number(std::int64_t i) const = 0;
  virtual std::string describe() const = 0;
};

/// f(x_1..x_l) = sum_k f_k(x_k), each f_k ascending and non-negative.
class AdditiveBound final : public RuntimeBound {
 public:
  explicit AdditiveBound(std::vector<BoundComponent> components);

  std::size_t arity() const override { return components_.size(); }
  double eval(std::span<const std::int64_t> args) const override;
  std::vector<std::vector<std::int64_t>> set_sequence(
      std::int64_t i) const override;
  std::int64_t bounding_constant() const override {
    return static_cast<std::int64_t>(components_.size());
  }
  std::int64_t sequence_number(std::int64_t) const override { return 1; }
  std::string describe() const override;

  /// Exposed so the Theorem 3 wrapper can merge components (folding a
  /// dominated parameter's cost into its dominating parameter's component).
  const std::vector<BoundComponent>& components() const noexcept {
    return components_;
  }

 private:
  std::vector<BoundComponent> components_;
};

/// f(x1, x2) = f1(x1) * f2(x2), with f1, f2 >= 1 ascending.
class ProductBound final : public RuntimeBound {
 public:
  ProductBound(BoundComponent f1, BoundComponent f2);

  std::size_t arity() const override { return 2; }
  double eval(std::span<const std::int64_t> args) const override;
  std::vector<std::vector<std::int64_t>> set_sequence(
      std::int64_t i) const override;
  /// With budgets 2^j * 2^(ceil(log2 i)-j+1) <= 2^(ceil(log2 i)+1) < 4i.
  std::int64_t bounding_constant() const override { return 4; }
  std::int64_t sequence_number(std::int64_t i) const override;
  std::string describe() const override;

 private:
  BoundComponent f1_;
  BoundComponent f2_;
};

}  // namespace unilocal
