// A non-uniform LOCAL algorithm A_Gamma (paper Section 2): its code consumes
// one common guess per parameter in Gamma, its correctness is guaranteed
// only under good guesses (each guess >= the true parameter value), and its
// running time under good guesses is bounded by a RuntimeBound evaluated at
// the guesses of the parameters in Lambda.
//
// Theorem 1 consumes algorithms with lambda() == gamma(); the weak
// domination wrapper (Theorem 3, src/core/weak_domination.h) reduces the
// general case to that one.
#pragma once

#include <memory>
#include <span>

#include "src/core/param.h"
#include "src/core/runtime_bound.h"
#include "src/runtime/local.h"

namespace unilocal {

class NonUniformAlgorithm {
 public:
  virtual ~NonUniformAlgorithm() = default;
  virtual std::string name() const = 0;
  /// Gamma: the parameters the code requires, in guess-vector order.
  virtual ParamSet gamma() const = 0;
  /// Lambda: the parameters the running-time bound is expressed in.
  virtual ParamSet lambda() const = 0;
  /// The bound f (arity == lambda().size()).
  virtual const RuntimeBound& bound() const = 0;
  /// Bakes a guess vector (aligned with gamma()) into a runnable algorithm.
  virtual std::unique_ptr<Algorithm> instantiate(
      std::span<const std::int64_t> guesses) const = 0;
  /// True for weak Monte-Carlo algorithms (fresh randomness per run makes
  /// repeated invocations independent — the Theorem 2 setting).
  virtual bool randomized() const { return false; }
};

/// Convenience: run A_Gamma with the correct guesses Gamma*(instance) — the
/// paper's baseline "non-uniform algorithm told the truth" configuration.
std::unique_ptr<Algorithm> instantiate_with_correct_guesses(
    const NonUniformAlgorithm& algorithm, const Instance& instance);

/// f(Lambda*(instance)) — the value f* the theorems compare against.
double bound_at_correct_params(const NonUniformAlgorithm& algorithm,
                               const Instance& instance);

}  // namespace unilocal
