// Non-decreasing graph parameters (paper Section 2). The oracle evaluation
// is used (a) by benches/tests to obtain the *correct* values p* and (b) to
// hand correct guesses to baseline non-uniform runs. Uniform algorithms
// produced by the transformers never call the oracle — enforced by tests
// that run them with a poisoned oracle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/instance.h"

namespace unilocal {

enum class Param {
  kNumNodes,    // n
  kMaxDegree,   // Delta
  kArboricity,  // degeneracy proxy: a <= degeneracy <= 2a-1 (DESIGN.md)
  kMaxIdentity, // m
};

using ParamSet = std::vector<Param>;

std::string param_name(Param p);

/// Oracle evaluation p(G, x); every supported parameter is a non-decreasing
/// graph parameter (value never grows when passing to a subinstance).
std::int64_t eval_param(Param p, const Instance& instance);

/// Correct guesses Gamma*(G, x), aligned with `params`.
std::vector<std::int64_t> correct_guesses(const ParamSet& params,
                                          const Instance& instance);

}  // namespace unilocal
