#include "src/core/nonuniform.h"

namespace unilocal {

std::unique_ptr<Algorithm> instantiate_with_correct_guesses(
    const NonUniformAlgorithm& algorithm, const Instance& instance) {
  const auto guesses = correct_guesses(algorithm.gamma(), instance);
  return algorithm.instantiate(guesses);
}

double bound_at_correct_params(const NonUniformAlgorithm& algorithm,
                               const Instance& instance) {
  const auto lambda_star = correct_guesses(algorithm.lambda(), instance);
  return algorithm.bound().eval(lambda_star);
}

}  // namespace unilocal
