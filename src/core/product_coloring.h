// Corollary 1(ii) via Section 5.1: a uniform (deg+1)-coloring (hence
// (Delta+1)-coloring) obtained by running a uniform MIS algorithm on the
// clique product G' = "G x K_{deg+1}" and pulling the selected slot indices
// back as colors. The product is constructible locally without any global
// parameter (each node only needs its own and its neighbours' degrees), so
// uniformity is preserved; the harness materializes the product centrally,
// which costs the same constant-factor round dilation a per-node simulation
// would.
#pragma once

#include "src/core/transformer.h"

namespace unilocal {

struct ProductColoringResult {
  /// Proper coloring with color(v) in [1, deg(v)+1]; empty on failure.
  std::vector<std::int64_t> colors;
  bool solved = false;
  /// Ledger of the underlying uniform MIS run on the product graph.
  std::int64_t total_rounds = 0;
  /// Size of the product instance actually solved.
  NodeId product_nodes = 0;
  /// Engine stats of the underlying uniform MIS run.
  EngineStats engine_stats;
};

/// Runs `mis_algorithm` (a non-uniform MIS black box with gamma == lambda)
/// uniformly — Theorem 1 with P(2,1) — on the clique product of the
/// instance and converts the MIS back to a (deg+1)-coloring of the original
/// graph.
ProductColoringResult run_uniform_deg_plus_one_coloring(
    const Instance& instance, const NonUniformAlgorithm& mis_algorithm,
    const UniformRunOptions& options = {});

}  // namespace unilocal
