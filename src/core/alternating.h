// The alternating-algorithm driver (paper Section 3.3, Figure 1).
//
// Owns the shrinking instance chain (G_1, x_1) -> (G_2, x_2) -> ... : each
// step runs one algorithm restricted to a round budget on the current
// instance, hands the tentative output to the pruning algorithm, glues the
// pruned nodes' outputs into the global output vector, and restricts the
// instance to the survivors. The round ledger adds each step's measured
// rounds plus the pruning constant — by Observation 2.1 sequential
// composition is bounded by the sum, so the ledger upper-bounds the LOCAL
// running time of the composed uniform algorithm.
#pragma once

#include <functional>
#include <string>

#include "src/prune/pruning.h"
#include "src/runtime/instance.h"
#include "src/runtime/runner.h"

namespace unilocal {

struct SubIterationTrace {
  int iteration = 0;
  int sub_iteration = 0;
  std::string algorithm;
  std::vector<std::int64_t> guesses;
  std::int64_t budget = 0;
  std::int64_t rounds_used = 0;
  NodeId nodes_before = 0;
  NodeId nodes_pruned = 0;
};

class AlternatingDriver {
 public:
  /// When `external_workspace` is non-null the driver runs every step in
  /// that workspace instead of its own — how a nested driver (Theorem 4
  /// running a transformer-produced executable, or a campaign cell running
  /// on a checked-out workspace) joins its caller's arena.
  AlternatingDriver(Instance initial, const PruningAlgorithm& pruning,
                    EngineWorkspace* external_workspace = nullptr);

  /// Engine buffers shared by every step of the alternation (and lendable
  /// to the executables run_custom_step drives): one arena for the whole
  /// composed algorithm instead of per-stage re-allocation.
  EngineWorkspace& workspace() noexcept {
    return external_workspace_ != nullptr ? *external_workspace_
                                          : workspace_;
  }

  /// RunOptions::num_threads of every engine run the driver issues. The
  /// engine is thread-count invariant, so this only affects latency.
  int engine_threads = 1;

  /// RunOptions::kernel_mode of every engine run the driver issues (flat
  /// step kernels vs the Process vtable path; outputs are bit-identical).
  KernelMode kernel_mode = KernelMode::kAuto;

  /// RunOptions::network of every engine run the driver issues (synchronous
  /// arena vs the seeded event-queue transport).
  NetworkOptions network;

  bool done() const noexcept { return current_.num_nodes() == 0; }
  NodeId remaining() const noexcept { return current_.num_nodes(); }
  const Instance& current() const noexcept { return current_; }
  std::int64_t total_rounds() const noexcept { return total_rounds_; }
  /// Aggregated engine stats over every step executed so far.
  const EngineStats& stats() const noexcept { return stats_; }
  /// Outputs per node of the ORIGINAL instance (pruned nodes keep the
  /// tentative value they were pruned with).
  const std::vector<std::int64_t>& outputs() const noexcept {
    return outputs_;
  }

  /// One B_i = (A_i ; P) step: run `algorithm` restricted to `budget`
  /// rounds, prune, glue, shrink. Returns the number of nodes pruned.
  NodeId run_step(const Algorithm& algorithm, std::int64_t budget,
                  std::uint64_t seed, SubIterationTrace* trace = nullptr);

  /// Generalized step for executables that are not plain Algorithms
  /// (Theorem 4 runs transformer-produced uniform algorithms): `execute`
  /// returns the tentative outputs and the rounds consumed on the instance
  /// it is given.
  struct CustomOutcome {
    std::vector<std::int64_t> outputs;
    std::int64_t rounds = 0;
    /// Engine stats of the executable's run (merged into stats()).
    EngineStats stats;
  };
  using CustomStep = std::function<CustomOutcome(const Instance&)>;
  NodeId run_custom_step(const CustomStep& execute,
                         SubIterationTrace* trace = nullptr);

 private:
  NodeId prune_and_glue(const std::vector<std::int64_t>& tentative,
                        std::int64_t rounds_used,
                        SubIterationTrace* trace);

  const PruningAlgorithm& pruning_;
  Instance current_;
  EngineWorkspace workspace_;
  EngineWorkspace* external_workspace_ = nullptr;
  std::vector<NodeId> to_original_;
  std::vector<std::int64_t> outputs_;
  std::int64_t total_rounds_ = 0;
  EngineStats stats_;
};

}  // namespace unilocal
