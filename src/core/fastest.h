// Theorem 4 — running as fast as the fastest of k uniform algorithms whose
// running times depend on unknown parameters. Iteration i executes each
// U_j restricted to 2^i rounds followed by the pruning algorithm; the first
// iteration whose budget covers some U_j's true running time terminates, so
// the ledger is O(min_j f_j(Lambda_j*)).
//
// Corollary 1(i) is the flagship use: MIS as
// min{ 2^O(sqrt(log n))-substitute, O(Delta+log* n)-substitute, arboricity }.
#pragma once

#include <memory>

#include "src/core/transformer.h"

namespace unilocal {

/// A uniform algorithm that can be run restricted to a round budget.
class UniformExecutable {
 public:
  virtual ~UniformExecutable() = default;
  virtual std::string name() const = 0;
  /// Returns tentative outputs (arbitrary 0 where unfinished) and the
  /// rounds consumed (<= budget for plain algorithms; transformer-backed
  /// executables may overshoot by their last sub-iteration, a constant
  /// factor absorbed by the doubling). When the caller lends a workspace
  /// (run_fastest lends its driver's), the executable runs in that arena;
  /// engine_threads is the RunOptions::num_threads of every engine run the
  /// executable issues (thread-count invariant, latency only).
  virtual AlternatingDriver::CustomOutcome run(
      const Instance& instance, std::int64_t budget, std::uint64_t seed,
      EngineWorkspace* workspace = nullptr, int engine_threads = 1,
      KernelMode kernel_mode = KernelMode::kAuto,
      const NetworkOptions& network = {}) const = 0;
};

/// Wraps a plain LOCAL algorithm (e.g. Luby, greedy MIS).
std::unique_ptr<UniformExecutable> make_local_executable(
    std::shared_ptr<const Algorithm> algorithm);

/// Wraps a (Theorem 1/2/3) transformer-produced uniform algorithm.
std::unique_ptr<UniformExecutable> make_transformed_executable(
    std::shared_ptr<const NonUniformAlgorithm> algorithm,
    std::shared_ptr<const PruningAlgorithm> pruning);

/// The Theorem 4 combinator.
UniformRunResult run_fastest(
    const Instance& instance,
    const std::vector<const UniformExecutable*>& algorithms,
    const PruningAlgorithm& pruning, const UniformRunOptions& options = {});

}  // namespace unilocal
