#include "src/core/param.h"

#include "src/graph/params.h"

namespace unilocal {

std::string param_name(Param p) {
  switch (p) {
    case Param::kNumNodes:
      return "n";
    case Param::kMaxDegree:
      return "Delta";
    case Param::kArboricity:
      return "a";
    case Param::kMaxIdentity:
      return "m";
  }
  return "?";
}

std::int64_t eval_param(Param p, const Instance& instance) {
  switch (p) {
    case Param::kNumNodes:
      return instance.num_nodes();
    case Param::kMaxDegree:
      return max_degree(instance.graph);
    case Param::kArboricity:
      // Degeneracy never exceeds 2a-1 and never undershoots a, and it is
      // non-decreasing under subgraphs — the properties the theorems need.
      return std::max<std::int64_t>(1, degeneracy(instance.graph));
    case Param::kMaxIdentity:
      return instance.max_identity();
  }
  return 0;
}

std::vector<std::int64_t> correct_guesses(const ParamSet& params,
                                          const Instance& instance) {
  std::vector<std::int64_t> values;
  values.reserve(params.size());
  for (Param p : params) values.push_back(eval_param(p, instance));
  return values;
}

}  // namespace unilocal
