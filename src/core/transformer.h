// Theorem 1 — the deterministic transformer pi (paper Algorithm 1).
//
// Given a non-uniform algorithm A_Gamma with lambda() == gamma(), a bound f
// carrying a sequence-number function, and a Gamma-monotone pruning
// algorithm, run iterations i = 1, 2, ...: in iteration i take the guess
// vectors S_f(2^i) and, for each, execute (A restricted to c*2^i rounds ; P)
// on the surviving subgraph. Solution detection ends the run at the first
// iteration whose guesses dominate the true parameters; the round ledger is
// O(f* . s_f(f*)).
//
// The same driver doubles as the engine inside Theorems 2-5.
#pragma once

#include "src/core/alternating.h"
#include "src/core/nonuniform.h"
#include "src/problems/problem.h"

namespace unilocal {

struct UniformRunOptions {
  std::uint64_t seed = 1;
  /// Safety cap on iterations (2^i budgets overflow long before this).
  int max_iterations = 48;
  /// Optional: validate the final output (debug/testing aid).
  const Problem* check_problem = nullptr;
  /// Optional global round cap: stop mid-schedule once the ledger passes it
  /// (used to run a transformer-produced uniform algorithm "restricted to T
  /// rounds" inside Theorem 4). < 0 means unlimited.
  std::int64_t round_cap = -1;
  /// Optional lent engine workspace: the transformer's driver runs every
  /// sub-iteration in this arena instead of allocating its own (Theorem 4
  /// lends its driver's workspace; campaign cells lend their checked-out
  /// one). Not safe to share between concurrent runs.
  EngineWorkspace* workspace = nullptr;
  /// Worker threads for every engine run driven by this transformer
  /// (RunOptions::num_threads of each sub-iteration). The engine is
  /// thread-count invariant, so outputs are bit-identical for any value;
  /// campaigns raise it for large cells to cut tail latency.
  int engine_threads = 1;
  /// RunOptions::kernel_mode of every sub-iteration (flat step kernels vs
  /// the Process vtable path; outputs are bit-identical either way).
  KernelMode kernel_mode = KernelMode::kAuto;
  /// RunOptions::network of every sub-iteration (synchronous arena vs the
  /// seeded event-queue transport with latency/fault injection).
  NetworkOptions network;
};

struct UniformRunResult {
  std::vector<std::int64_t> outputs;
  std::int64_t total_rounds = 0;
  bool solved = false;
  int iterations_used = 0;
  std::vector<SubIterationTrace> trace;
  /// Aggregated engine stats over every sub-iteration (arena bytes, peak
  /// messages/round, steps/sec).
  EngineStats engine_stats;
};

/// The Theorem 1 transformer (also correct for weak Monte-Carlo inputs in
/// the sense that it never terminates with a wrong output; Theorem 2's tau
/// below has the stronger expected-time guarantee).
UniformRunResult run_uniform_transformer(const Instance& instance,
                                         const NonUniformAlgorithm& algorithm,
                                         const PruningAlgorithm& pruning,
                                         const UniformRunOptions& options = {});

}  // namespace unilocal
