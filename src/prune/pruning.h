// Pruning algorithms (paper Section 3): uniform, constant-round LOCAL
// algorithms P(G, x, yhat) -> (G', x') satisfying
//   * solution detection: if (G, x, yhat) in Pi then every node is pruned;
//   * gluing: any solution y' of (G', x') combined with yhat on the pruned
//     set W solves (G, x).
//
// Each pruning algorithm is exposed two ways:
//   * apply(): a centralized whole-graph evaluation used by the
//     alternating-algorithm drivers (fast path);
//   * as_local_algorithm(): a genuine LOCAL realization (the tentative
//     output yhat arrives as the last word of each node's input; the output
//     is the prune bit). Tests check the two agree on every instance, which
//     certifies that apply() is computable in running_time() LOCAL rounds.
#pragma once

#include <memory>

#include "src/problems/problem.h"
#include "src/runtime/local.h"

namespace unilocal {

struct PruneResult {
  /// W: pruned[v] == true means v keeps yhat(v) and leaves the computation.
  std::vector<bool> pruned;
  /// Replacement inputs x'(v); only entries of surviving nodes are read.
  std::vector<Input> surviving_inputs;
};

class PruningAlgorithm {
 public:
  virtual ~PruningAlgorithm() = default;
  virtual std::string name() const = 0;
  /// The constant LOCAL running time T0 (in this simulator's counting:
  /// a node finishing in round r has used r+1 rounds).
  virtual std::int64_t running_time() const = 0;
  virtual PruneResult apply(const Instance& instance,
                            const std::vector<std::int64_t>& yhat) const = 0;
  /// LOCAL realization; input convention: x(v) ++ [yhat(v)].
  virtual std::unique_ptr<Algorithm> as_local_algorithm() const = 0;
};

}  // namespace unilocal
