// Section 6.1 of the paper: pruning algorithms with non-constant running
// time. The transformers only use P through apply() plus the accounting
// constant running_time(); this decorator inflates the accounted time (and
// pads the LOCAL realization with idle rounds) without changing the pruning
// decision, so the predicted overhead — extra_rounds per sub-iteration,
// i.e. h(S*) times the (logarithmic) number of sub-iterations — can be
// measured directly (bench_ablation_pruning).
#pragma once

#include <memory>

#include "src/prune/pruning.h"

namespace unilocal {

class SlowedPruning final : public PruningAlgorithm {
 public:
  SlowedPruning(std::shared_ptr<const PruningAlgorithm> inner,
                std::int64_t extra_rounds)
      : inner_(std::move(inner)), extra_(extra_rounds) {}

  std::string name() const override {
    return inner_->name() + "+" + std::to_string(extra_) + "r";
  }
  std::int64_t running_time() const override {
    return inner_->running_time() + extra_;
  }
  PruneResult apply(const Instance& instance,
                    const std::vector<std::int64_t>& yhat) const override {
    return inner_->apply(instance, yhat);
  }
  std::unique_ptr<Algorithm> as_local_algorithm() const override {
    // Padding with idle rounds keeps the realization honest: the padded
    // algorithm still computes the same bits, just later.
    class Padded final : public Algorithm {
     public:
      Padded(std::unique_ptr<Algorithm> inner, std::int64_t extra)
          : inner_(std::move(inner)), extra_(extra) {}
      class P final : public Process {
       public:
        P(std::unique_ptr<Process> inner, std::int64_t extra)
            : inner_(std::move(inner)), extra_(extra) {}
        void step(Context& ctx) override {
          if (ctx.round() < extra_) return;  // idle padding
          Context sub = ctx.derived(ctx.round() - extra_, ctx.input());
          inner_->step(sub);
          if (sub.finished()) ctx.finish(sub.output());
        }

       private:
        std::unique_ptr<Process> inner_;
        std::int64_t extra_;
      };
      std::unique_ptr<Process> spawn(const NodeInit& init) const override {
        return std::make_unique<P>(inner_->spawn(init), extra_);
      }
      std::string name() const override { return inner_->name() + "+pad"; }

     private:
      std::unique_ptr<Algorithm> inner_;
      std::int64_t extra_;
    };
    return std::make_unique<Padded>(inner_->as_local_algorithm(), extra_);
  }

 private:
  std::shared_ptr<const PruningAlgorithm> inner_;
  std::int64_t extra_;
};

}  // namespace unilocal
