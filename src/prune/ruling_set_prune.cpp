#include "src/prune/ruling_set_prune.h"

#include <limits>
#include <queue>

namespace unilocal {

PruneResult RulingSetPruning::apply(const Instance& instance,
                                    const std::vector<std::int64_t>& yhat) const {
  const Graph& g = instance.graph;
  const NodeId n = g.num_nodes();
  PruneResult result;
  result.pruned.assign(static_cast<std::size_t>(n), false);
  result.surviving_inputs = instance.inputs;  // inputs pass through untouched

  // Good nodes: yhat = 1 and all neighbours 0.
  std::vector<bool> good(static_cast<std::size_t>(n), false);
  for (NodeId v = 0; v < n; ++v) {
    if (yhat[static_cast<std::size_t>(v)] == 0) continue;
    bool clean = true;
    for (NodeId u : g.neighbors(v)) {
      if (yhat[static_cast<std::size_t>(u)] != 0) {
        clean = false;
        break;
      }
    }
    good[static_cast<std::size_t>(v)] = clean;
  }
  // Multi-source BFS to distance beta from the good nodes.
  std::vector<NodeId> dist(static_cast<std::size_t>(n), -1);
  std::queue<NodeId> frontier;
  for (NodeId v = 0; v < n; ++v) {
    if (good[static_cast<std::size_t>(v)]) {
      dist[static_cast<std::size_t>(v)] = 0;
      frontier.push(v);
      result.pruned[static_cast<std::size_t>(v)] = true;
    }
  }
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    if (dist[static_cast<std::size_t>(v)] >= beta_) continue;
    for (NodeId u : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(u)] < 0) {
        dist[static_cast<std::size_t>(u)] =
            dist[static_cast<std::size_t>(v)] + 1;
        frontier.push(u);
        if (yhat[static_cast<std::size_t>(u)] == 0)
          result.pruned[static_cast<std::size_t>(u)] = true;
      }
    }
  }
  return result;
}

namespace {

constexpr std::int64_t kInfinity = std::numeric_limits<std::int64_t>::max() / 2;

/// LOCAL realization: round 0 broadcasts yhat; round 1 computes goodness
/// and starts flooding the distance-to-nearest-good estimate; the node
/// decides in round beta + 1.
class RulingSetPruneProcess final : public Process {
 public:
  explicit RulingSetPruneProcess(int beta) : beta_(beta) {}

  void step(Context& ctx) override {
    const std::int64_t yhat = ctx.input().back();
    if (ctx.round() == 0) {
      ctx.broadcast({yhat});
      return;
    }
    if (ctx.round() == 1) {
      bool clean = true;
      for (NodeId j = 0; j < ctx.degree(); ++j) {
        const Message* m = ctx.received(j);
        if (m != nullptr && (*m)[0] != 0) clean = false;
      }
      good_ = (yhat != 0) && clean;
      dist_ = good_ ? 0 : kInfinity;
    } else {
      for (NodeId j = 0; j < ctx.degree(); ++j) {
        const Message* m = ctx.received(j);
        if (m != nullptr && (*m)[0] + 1 < dist_) dist_ = (*m)[0] + 1;
      }
    }
    if (ctx.round() == beta_ + 1) {
      const bool pruned =
          (yhat != 0 && good_) || (yhat == 0 && dist_ <= beta_);
      ctx.finish(pruned ? 1 : 0);
      return;
    }
    ctx.broadcast({dist_});
  }

 private:
  int beta_;
  bool good_ = false;
  std::int64_t dist_ = kInfinity;
};

class RulingSetPruneLocal final : public Algorithm {
 public:
  explicit RulingSetPruneLocal(int beta) : beta_(beta) {}
  std::unique_ptr<Process> spawn(const NodeInit&) const override {
    return std::make_unique<RulingSetPruneProcess>(beta_);
  }
  std::string name() const override {
    return "P(2," + std::to_string(beta_) + ")-local";
  }

 private:
  int beta_;
};

}  // namespace

std::unique_ptr<Algorithm> RulingSetPruning::as_local_algorithm() const {
  return std::make_unique<RulingSetPruneLocal>(beta_);
}

}  // namespace unilocal
