// P_SLC — the pruning algorithm for strong list coloring built in the proof
// of the paper's Theorem 5. A node is pruned when its tentative color lies
// in its list and conflicts with no neighbour; survivors' lists lose the
// colors their pruned neighbours committed to. Because at most one pair per
// base color disappears per pruned neighbour while the survivor's degree
// drops by the same count, the SLC configuration invariant (>= deg+1 pairs
// per base color) is preserved — the gluing property.
#pragma once

#include "src/prune/pruning.h"

namespace unilocal {

class SlcPruning final : public PruningAlgorithm {
 public:
  std::string name() const override { return "P_SLC"; }
  std::int64_t running_time() const override { return 3; }
  PruneResult apply(const Instance& instance,
                    const std::vector<std::int64_t>& yhat) const override;
  std::unique_ptr<Algorithm> as_local_algorithm() const override;
};

}  // namespace unilocal
