// P_MM (paper Observation 3.3): with the matched-relation derived from the
// tentative output (see src/problems/matching.h), prune every node that is
// matched and every node all of whose neighbours are matched. Inputs pass
// through untouched, so the algorithm is monotone with respect to every
// non-decreasing parameter.
#pragma once

#include "src/prune/pruning.h"

namespace unilocal {

class MatchingPruning final : public PruningAlgorithm {
 public:
  std::string name() const override { return "P_MM"; }
  std::int64_t running_time() const override { return 4; }
  PruneResult apply(const Instance& instance,
                    const std::vector<std::int64_t>& yhat) const override;
  std::unique_ptr<Algorithm> as_local_algorithm() const override;
};

}  // namespace unilocal
