#include "src/prune/slc_prune.h"

#include <algorithm>

#include "src/problems/slc.h"

namespace unilocal {

PruneResult SlcPruning::apply(const Instance& instance,
                              const std::vector<std::int64_t>& yhat) const {
  const Graph& g = instance.graph;
  const NodeId n = g.num_nodes();
  PruneResult result;
  result.pruned.assign(static_cast<std::size_t>(n), false);
  result.surviving_inputs.resize(static_cast<std::size_t>(n));

  for (NodeId v = 0; v < n; ++v) {
    const Input& input = instance.inputs[static_cast<std::size_t>(v)];
    const auto list = slc_list(input);
    const std::int64_t color = yhat[static_cast<std::size_t>(v)];
    if (std::find(list.begin(), list.end(), color) == list.end()) continue;
    bool conflict = false;
    for (NodeId u : g.neighbors(v)) {
      if (yhat[static_cast<std::size_t>(u)] == color) {
        conflict = true;
        break;
      }
    }
    if (!conflict) result.pruned[static_cast<std::size_t>(v)] = true;
  }
  for (NodeId v = 0; v < n; ++v) {
    if (result.pruned[static_cast<std::size_t>(v)]) continue;
    const Input& input = instance.inputs[static_cast<std::size_t>(v)];
    auto list = slc_list(input);
    std::vector<std::int64_t> filtered;
    filtered.reserve(list.size());
    for (std::int64_t packed : list) {
      bool taken = false;
      for (NodeId u : g.neighbors(v)) {
        if (result.pruned[static_cast<std::size_t>(u)] &&
            yhat[static_cast<std::size_t>(u)] == packed) {
          taken = true;
          break;
        }
      }
      if (!taken) filtered.push_back(packed);
    }
    result.surviving_inputs[static_cast<std::size_t>(v)] =
        make_slc_input(slc_delta_hat(input), filtered);
  }
  return result;
}

namespace {

/// LOCAL realization.
///  round 0: broadcast the tentative color.
///  round 1: decide own membership in W; broadcast it.
///  round 2: finish with the prune bit (survivors could also recompute
///           their list locally here; the driver uses apply() for that).
class SlcPruneProcess final : public Process {
 public:
  void step(Context& ctx) override {
    const std::int64_t color = ctx.input().back();
    switch (ctx.round()) {
      case 0:
        ctx.broadcast({color});
        break;
      case 1: {
        // Reconstruct the list from the input (skipping the appended yhat).
        Input base(ctx.input().begin(), ctx.input().end() - 1);
        const auto list = slc_list(base);
        bool in_list =
            std::find(list.begin(), list.end(), color) != list.end();
        bool conflict = false;
        for (NodeId j = 0; j < ctx.degree(); ++j) {
          const Message* m = ctx.received(j);
          if (m != nullptr && (*m)[0] == color) conflict = true;
        }
        pruned_ = in_list && !conflict;
        ctx.broadcast({pruned_ ? 1 : 0});
        break;
      }
      case 2:
        ctx.finish(pruned_ ? 1 : 0);
        break;
      default:
        break;
    }
  }

 private:
  bool pruned_ = false;
};

class SlcPruneLocal final : public Algorithm {
 public:
  std::unique_ptr<Process> spawn(const NodeInit&) const override {
    return std::make_unique<SlcPruneProcess>();
  }
  std::string name() const override { return "P_SLC-local"; }
};

}  // namespace

std::unique_ptr<Algorithm> SlcPruning::as_local_algorithm() const {
  return std::make_unique<SlcPruneLocal>();
}

}  // namespace unilocal
