#include "src/prune/matching_prune.h"

#include "src/problems/matching.h"

namespace unilocal {

PruneResult MatchingPruning::apply(const Instance& instance,
                                   const std::vector<std::int64_t>& yhat) const {
  const Graph& g = instance.graph;
  const NodeId n = g.num_nodes();
  PruneResult result;
  result.pruned.assign(static_cast<std::size_t>(n), false);
  result.surviving_inputs = instance.inputs;
  const auto partner = matched_partner(g, yhat);
  for (NodeId u = 0; u < n; ++u) {
    if (partner[static_cast<std::size_t>(u)] >= 0) {
      result.pruned[static_cast<std::size_t>(u)] = true;
      continue;
    }
    bool all_matched = true;
    for (NodeId v : g.neighbors(u)) {
      if (partner[static_cast<std::size_t>(v)] < 0) {
        all_matched = false;
        break;
      }
    }
    if (all_matched) result.pruned[static_cast<std::size_t>(u)] = true;
  }
  return result;
}

namespace {

/// LOCAL realization.
///  round 0: broadcast yhat.
///  round 1: for each neighbour v, send [yhat(u), clean_uv] where clean_uv
///           says no *other* neighbour of u carries yhat(u).
///  round 2: matched(u) is decidable; broadcast the matched bit.
///  round 3: decide: pruned = matched(u) or all neighbours matched.
class MatchingPruneProcess final : public Process {
 public:
  void step(Context& ctx) override {
    const std::int64_t yhat = ctx.input().back();
    switch (ctx.round()) {
      case 0:
        ctx.broadcast({yhat});
        break;
      case 1: {
        neighbor_values_.resize(static_cast<std::size_t>(ctx.degree()));
        int same_count = 0;
        for (NodeId j = 0; j < ctx.degree(); ++j) {
          const Message* m = ctx.received(j);
          neighbor_values_[static_cast<std::size_t>(j)] = (*m)[0];
          if ((*m)[0] == yhat) ++same_count;
        }
        for (NodeId j = 0; j < ctx.degree(); ++j) {
          const int same_excluding_j =
              same_count -
              (neighbor_values_[static_cast<std::size_t>(j)] == yhat ? 1 : 0);
          ctx.send(j, {yhat, same_excluding_j == 0 ? 1 : 0});
        }
        break;
      }
      case 2: {
        matched_ = false;
        for (NodeId j = 0; j < ctx.degree(); ++j) {
          const Message* m = ctx.received(j);
          const bool values_equal =
              neighbor_values_[static_cast<std::size_t>(j)] == yhat;
          const bool other_clean = (*m)[1] != 0;
          // clean on our side: no OTHER neighbour (besides j) shares yhat.
          int same_count = 0;
          for (std::size_t k = 0; k < neighbor_values_.size(); ++k) {
            if (k != static_cast<std::size_t>(j) &&
                neighbor_values_[k] == yhat)
              ++same_count;
          }
          if (values_equal && other_clean && same_count == 0) {
            matched_ = true;
            break;
          }
        }
        ctx.broadcast({matched_ ? 1 : 0});
        break;
      }
      case 3: {
        bool all_matched = true;
        for (NodeId j = 0; j < ctx.degree(); ++j) {
          const Message* m = ctx.received(j);
          if ((*m)[0] == 0) all_matched = false;
        }
        ctx.finish((matched_ || all_matched) ? 1 : 0);
        break;
      }
      default:
        break;
    }
  }

 private:
  std::vector<std::int64_t> neighbor_values_;
  bool matched_ = false;
};

class MatchingPruneLocal final : public Algorithm {
 public:
  std::unique_ptr<Process> spawn(const NodeInit&) const override {
    return std::make_unique<MatchingPruneProcess>();
  }
  std::string name() const override { return "P_MM-local"; }
};

}  // namespace

std::unique_ptr<Algorithm> MatchingPruning::as_local_algorithm() const {
  return std::make_unique<MatchingPruneLocal>();
}

}  // namespace unilocal
