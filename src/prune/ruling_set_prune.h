// P_(2,beta) (paper Observation 3.2): given a tentative membership bit
// yhat, call a node *good* when yhat(u) = 1 and all its neighbours carry 0.
// Prune
//   * every good node, and
//   * every node u with yhat(u) = 0 within distance beta of a good node.
// Inputs are passed through unchanged, so by Observation 3.1 the algorithm
// is monotone with respect to every non-decreasing parameter. MIS is the
// beta = 1 case.
#pragma once

#include "src/prune/pruning.h"

namespace unilocal {

class RulingSetPruning final : public PruningAlgorithm {
 public:
  explicit RulingSetPruning(int beta) : beta_(beta) {}
  std::string name() const override {
    return "P(2," + std::to_string(beta_) + ")";
  }
  std::int64_t running_time() const override { return beta_ + 2; }
  PruneResult apply(const Instance& instance,
                    const std::vector<std::int64_t>& yhat) const override;
  std::unique_ptr<Algorithm> as_local_algorithm() const override;
  int beta() const noexcept { return beta_; }

 private:
  int beta_;
};

}  // namespace unilocal
