// The Strong List-Coloring problem (SLC) defined in the proof of the
// paper's Theorem 5. An SLC configuration gives every node
//   * a common degree estimate Delta_hat >= Delta(G), and
//   * a list L(v) of colors (k, j) in [1, g(Delta_hat)] x [1, Delta_hat+1]
//     containing, for every base color k, at least deg(v)+1 distinct pairs.
// A solution colors every node from its list, properly.
//
// Wire format: an SLC color (k, j) is packed into one int64 as
// (k << 24) | j (so j < 2^24); a node input is
//   [Delta_hat, |L|, packed colors ...].
#pragma once

#include "src/problems/problem.h"

namespace unilocal {

std::int64_t pack_slc_color(std::int64_t k, std::int64_t j);
std::int64_t slc_color_base(std::int64_t packed);   // k
std::int64_t slc_color_index(std::int64_t packed);  // j

/// Builds the node input [Delta_hat, |list|, list...].
Input make_slc_input(std::int64_t delta_hat,
                     const std::vector<std::int64_t>& packed_list);

std::int64_t slc_delta_hat(const Input& input);
/// View of the packed list inside an input built by make_slc_input.
std::vector<std::int64_t> slc_list(const Input& input);

/// The full list [1, num_base_colors] x [1, delta_hat + 1] every node of a
/// fresh layer receives (paper: L''_i).
std::vector<std::int64_t> full_slc_list(std::int64_t num_base_colors,
                                        std::int64_t delta_hat);

/// Checks the *configuration* invariants (common Delta_hat >= Delta; every
/// list has >= deg(v)+1 entries of every base color in [1, g_hat] where
/// g_hat is the max base color appearing anywhere). The pruning algorithm
/// P_SLC must preserve this (tested).
bool is_valid_slc_configuration(const Instance& instance);

class SlcProblem final : public Problem {
 public:
  std::string name() const override { return "strong-list-coloring"; }
  /// Solution: proper coloring with y(v) in L(v) for all v.
  bool check(const Instance& instance,
             const std::vector<std::int64_t>& outputs) const override;
};

}  // namespace unilocal
