// Vertex coloring problems. The library validates properness plus an
// optional palette cap expressed as a function of the instance (e.g.
// Delta+1, deg_G(v)+1 per node, lambda*(Delta+1), or a fixed bound), which
// covers every coloring variant in the paper's Table 1. Edge colorings are
// validated directly on the original graph given per-edge colors.
#pragma once

#include <functional>

#include "src/problems/problem.h"

namespace unilocal {

/// True iff adjacent nodes always have different (nonzero) colors.
bool is_proper_coloring(const Graph& g, const std::vector<std::int64_t>& colors);

/// Largest color value used (0 for the empty graph).
std::int64_t max_color_used(const std::vector<std::int64_t>& colors);

/// Proper coloring with every color in [1, cap]; cap < 0 means "no cap".
class ColoringProblem final : public Problem {
 public:
  explicit ColoringProblem(std::int64_t cap = -1) : cap_(cap) {}
  std::string name() const override { return "coloring"; }
  bool check(const Instance& instance,
             const std::vector<std::int64_t>& outputs) const override;

 private:
  std::int64_t cap_;
};

/// (deg+1)-list flavour: color(v) must lie in [1, deg_G(v)+1]. This is the
/// coloring induced by an MIS of the Section 5.1 clique product.
class DegPlusOneColoringProblem final : public Problem {
 public:
  std::string name() const override { return "(deg+1)-coloring"; }
  bool check(const Instance& instance,
             const std::vector<std::int64_t>& outputs) const override;
};

/// Proper edge coloring: incident edges get different colors; colors[e]
/// indexed like Graph::edges(). cap < 0 means "no cap".
bool is_proper_edge_coloring(const Graph& g,
                             const std::vector<std::int64_t>& edge_colors,
                             std::int64_t cap = -1);

}  // namespace unilocal
