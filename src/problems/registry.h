// String-keyed dispatch over the centralized validators — how the campaign
// layer (and any other config-driven harness) names the Problem whose
// check() verdict a run should be scored against.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/problems/problem.h"

namespace unilocal {

/// Specs: "mis", "matching", "coloring" (no palette cap),
/// "coloring:<cap>", "coloring:deg+1" (per-node palette [1, deg(v)+1]),
/// "rulingset:<beta>". Throws std::runtime_error on anything else.
std::shared_ptr<const Problem> make_problem(const std::string& spec);

/// The spec forms make_problem accepts (for --help style listings).
std::vector<std::string> problem_specs();

}  // namespace unilocal
