// Maximal matching with the paper's output encoding (Section 2): nodes u, v
// are *matched* iff they are adjacent, y(u) == y(v), and no other node of
// N(u) u N(v) carries that value. The problem requires every node to be
// matched or to have all its neighbours matched.
//
// The library's matching algorithms use match values derived from the
// endpoint identities (pack of the ordered identity pair) and a per-node
// sentinel for unmatched nodes. That convention makes the paper's P_MM
// gluing argument collision-free across pruning iterations: a value can
// only ever be produced by the unique identity pair it encodes.
#pragma once

#include "src/problems/problem.h"

namespace unilocal {

/// Output value marking u and v (identities) as a matched pair; symmetric.
std::int64_t match_value(std::int64_t id_a, std::int64_t id_b);

/// Output value of an unmatched node with the given identity (< 0, unique).
std::int64_t unmatched_value(std::int64_t id);

/// matched[v] = port of v's partner, or -1. Derived from the encoding.
std::vector<NodeId> matched_partner(const Graph& g,
                                    const std::vector<std::int64_t>& outputs);

/// True iff the matched-relation derived from the outputs is a maximal
/// matching of g.
bool is_maximal_matching(const Graph& g,
                         const std::vector<std::int64_t>& outputs);

class MatchingProblem final : public Problem {
 public:
  std::string name() const override { return "maximal-matching"; }
  bool check(const Instance& instance,
             const std::vector<std::int64_t>& outputs) const override;
};

}  // namespace unilocal
