// (alpha, beta)-ruling sets (paper Section 2): members pairwise at distance
// >= alpha; every non-member within distance <= beta of a member. MIS is the
// (2,1) case. The library implements alpha = 2 (the case the paper's pruning
// algorithm P_(2,beta) covers) for arbitrary constant beta.
#pragma once

#include "src/problems/problem.h"

namespace unilocal {

class RulingSetProblem final : public Problem {
 public:
  explicit RulingSetProblem(int beta) : beta_(beta) {}
  std::string name() const override {
    return "(2," + std::to_string(beta_) + ")-ruling-set";
  }
  bool check(const Instance& instance,
             const std::vector<std::int64_t>& outputs) const override;
  int beta() const noexcept { return beta_; }

 private:
  int beta_;
};

bool is_two_beta_ruling_set(const Graph& g,
                            const std::vector<std::int64_t>& selected,
                            int beta);

}  // namespace unilocal
