#include "src/problems/slc.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

namespace unilocal {

namespace {
constexpr int kIndexBits = 24;
constexpr std::int64_t kIndexMask = (std::int64_t{1} << kIndexBits) - 1;
}  // namespace

std::int64_t pack_slc_color(std::int64_t k, std::int64_t j) {
  assert(k >= 1 && j >= 1 && j <= kIndexMask);
  return (k << kIndexBits) | j;
}

std::int64_t slc_color_base(std::int64_t packed) {
  return packed >> kIndexBits;
}

std::int64_t slc_color_index(std::int64_t packed) {
  return packed & kIndexMask;
}

Input make_slc_input(std::int64_t delta_hat,
                     const std::vector<std::int64_t>& packed_list) {
  Input input;
  input.reserve(packed_list.size() + 2);
  input.push_back(delta_hat);
  input.push_back(static_cast<std::int64_t>(packed_list.size()));
  input.insert(input.end(), packed_list.begin(), packed_list.end());
  return input;
}

std::int64_t slc_delta_hat(const Input& input) {
  assert(input.size() >= 2);
  return input[0];
}

std::vector<std::int64_t> slc_list(const Input& input) {
  assert(input.size() >= 2);
  const std::size_t len = static_cast<std::size_t>(input[1]);
  assert(input.size() >= 2 + len);
  return std::vector<std::int64_t>(input.begin() + 2,
                                   input.begin() + 2 + static_cast<std::ptrdiff_t>(len));
}

std::vector<std::int64_t> full_slc_list(std::int64_t num_base_colors,
                                        std::int64_t delta_hat) {
  std::vector<std::int64_t> list;
  list.reserve(static_cast<std::size_t>(num_base_colors * (delta_hat + 1)));
  for (std::int64_t k = 1; k <= num_base_colors; ++k)
    for (std::int64_t j = 1; j <= delta_hat + 1; ++j)
      list.push_back(pack_slc_color(k, j));
  return list;
}

bool is_valid_slc_configuration(const Instance& instance) {
  const NodeId n = instance.num_nodes();
  if (n == 0) return true;
  std::int64_t delta_hat = -1;
  std::int64_t max_base = 0;
  for (NodeId v = 0; v < n; ++v) {
    const Input& input = instance.inputs[static_cast<std::size_t>(v)];
    if (input.size() < 2) return false;
    if (delta_hat < 0) delta_hat = slc_delta_hat(input);
    if (slc_delta_hat(input) != delta_hat) return false;  // common estimate
    if (instance.graph.degree(v) > delta_hat) return false;
    for (std::int64_t packed : slc_list(input))
      max_base = std::max(max_base, slc_color_base(packed));
  }
  for (NodeId v = 0; v < n; ++v) {
    const Input& input = instance.inputs[static_cast<std::size_t>(v)];
    std::map<std::int64_t, std::set<std::int64_t>> per_base;
    for (std::int64_t packed : slc_list(input))
      per_base[slc_color_base(packed)].insert(slc_color_index(packed));
    for (std::int64_t k = 1; k <= max_base; ++k) {
      const auto it = per_base.find(k);
      const std::size_t count = it == per_base.end() ? 0 : it->second.size();
      if (count < static_cast<std::size_t>(instance.graph.degree(v)) + 1)
        return false;
    }
  }
  return true;
}

bool SlcProblem::check(const Instance& instance,
                       const std::vector<std::int64_t>& outputs) const {
  const NodeId n = instance.num_nodes();
  if (outputs.size() != static_cast<std::size_t>(n)) return false;
  for (NodeId v = 0; v < n; ++v) {
    const auto list = slc_list(instance.inputs[static_cast<std::size_t>(v)]);
    if (std::find(list.begin(), list.end(),
                  outputs[static_cast<std::size_t>(v)]) == list.end())
      return false;
    for (NodeId u : instance.graph.neighbors(v)) {
      if (outputs[static_cast<std::size_t>(u)] ==
          outputs[static_cast<std::size_t>(v)])
        return false;
    }
  }
  return true;
}

}  // namespace unilocal
