// Maximal Independent Set: output bit b(v) in {0,1}; the selected set must
// be independent and dominating (every non-member has a member neighbour).
#pragma once

#include "src/problems/problem.h"

namespace unilocal {

class MisProblem final : public Problem {
 public:
  std::string name() const override { return "MIS"; }
  bool check(const Instance& instance,
             const std::vector<std::int64_t>& outputs) const override;
};

/// Standalone predicate on a bare graph (used by transforms that have no
/// Instance at hand).
bool is_maximal_independent_set(const Graph& g,
                                const std::vector<std::int64_t>& selected);

}  // namespace unilocal
