// The paper's notion of a problem Pi = {(G, x, y)}: a predicate over
// instance + output vector, closed under disjoint union. Validators are
// centralized oracles used by tests, benches and the (optional) debug
// checks of the transformer drivers — never by the algorithms themselves.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/instance.h"

namespace unilocal {

class Problem {
 public:
  virtual ~Problem() = default;
  virtual std::string name() const = 0;
  /// True iff (G, x, y) is in Pi.
  virtual bool check(const Instance& instance,
                     const std::vector<std::int64_t>& outputs) const = 0;
};

}  // namespace unilocal
