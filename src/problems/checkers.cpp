#include "src/problems/checkers.h"

#include "src/runtime/runner.h"

namespace unilocal {

namespace {

class MisCheckerProcess final : public Process {
 public:
  void step(Context& ctx) override {
    const std::int64_t mine = ctx.input().back();
    if (ctx.round() == 0) {
      ctx.broadcast({mine});
      return;
    }
    bool member_neighbor = false;
    for (NodeId j = 0; j < ctx.degree(); ++j) {
      const Message* m = ctx.received(j);
      if (m != nullptr && (*m)[0] != 0) member_neighbor = true;
    }
    const bool bad = (mine != 0 && member_neighbor)   // independence
                     || (mine == 0 && !member_neighbor);  // maximality
    ctx.finish(bad ? 1 : 0);
  }
};

class ColoringCheckerProcess final : public Process {
 public:
  void step(Context& ctx) override {
    const std::int64_t mine = ctx.input().back();
    if (ctx.round() == 0) {
      ctx.broadcast({mine});
      return;
    }
    bool conflict = mine <= 0;
    for (NodeId j = 0; j < ctx.degree(); ++j) {
      const Message* m = ctx.received(j);
      if (m != nullptr && (*m)[0] == mine) conflict = true;
    }
    ctx.finish(conflict ? 1 : 0);
  }
};

/// Mirrors the P_MM membership computation, but outputs the complaint bit
/// (the *complement* of the pruning decision): same radius-3 information.
class MatchingCheckerProcess final : public Process {
 public:
  void step(Context& ctx) override {
    const std::int64_t mine = ctx.input().back();
    switch (ctx.round()) {
      case 0:
        ctx.broadcast({mine});
        break;
      case 1: {
        values_.resize(static_cast<std::size_t>(ctx.degree()));
        int same = 0;
        for (NodeId j = 0; j < ctx.degree(); ++j) {
          values_[static_cast<std::size_t>(j)] = (*ctx.received(j))[0];
          if (values_[static_cast<std::size_t>(j)] == mine) ++same;
        }
        for (NodeId j = 0; j < ctx.degree(); ++j) {
          const int others =
              same - (values_[static_cast<std::size_t>(j)] == mine ? 1 : 0);
          ctx.send(j, {mine, others == 0 ? 1 : 0});
        }
        break;
      }
      case 2: {
        matched_ = false;
        for (NodeId j = 0; j < ctx.degree(); ++j) {
          const Message* m = ctx.received(j);
          int same_others = 0;
          for (std::size_t k = 0; k < values_.size(); ++k) {
            if (k != static_cast<std::size_t>(j) && values_[k] == mine)
              ++same_others;
          }
          if (values_[static_cast<std::size_t>(j)] == mine && (*m)[1] != 0 &&
              same_others == 0) {
            matched_ = true;
            break;
          }
        }
        ctx.broadcast({matched_ ? 1 : 0});
        break;
      }
      case 3: {
        bool all_matched = true;
        for (NodeId j = 0; j < ctx.degree(); ++j) {
          if ((*ctx.received(j))[0] == 0) all_matched = false;
        }
        ctx.finish((matched_ || all_matched) ? 0 : 1);
        break;
      }
      default:
        break;
    }
  }

 private:
  std::vector<std::int64_t> values_;
  bool matched_ = false;
};

template <typename P>
class CheckerAlgorithm final : public Algorithm {
 public:
  explicit CheckerAlgorithm(std::string name) : name_(std::move(name)) {}
  std::unique_ptr<Process> spawn(const NodeInit&) const override {
    return std::make_unique<P>();
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
};

}  // namespace

std::unique_ptr<Algorithm> make_mis_checker() {
  return std::make_unique<CheckerAlgorithm<MisCheckerProcess>>("check-mis");
}

std::unique_ptr<Algorithm> make_coloring_checker() {
  return std::make_unique<CheckerAlgorithm<ColoringCheckerProcess>>(
      "check-coloring");
}

std::unique_ptr<Algorithm> make_matching_checker() {
  return std::make_unique<CheckerAlgorithm<MatchingCheckerProcess>>(
      "check-matching");
}

std::vector<std::int64_t> run_checker(const Instance& instance,
                                      const Algorithm& checker,
                                      const std::vector<std::int64_t>& yhat) {
  Instance annotated = instance;
  for (NodeId v = 0; v < instance.num_nodes(); ++v)
    annotated.inputs[static_cast<std::size_t>(v)].push_back(
        yhat[static_cast<std::size_t>(v)]);
  return run_local(annotated, checker).outputs;
}

}  // namespace unilocal
