// Local checking algorithms (paper Section 1 / 3.1, cf. Fraigniaud-Korman-
// Peleg and Naor-Stockmeyer): constant-round LOCAL algorithms that, given a
// tentative output, raise an alarm at >= 1 node iff the output is not a
// solution. The paper's key observation is that checking alone cannot drive
// a restart loop under locality (the alarm would need diameter time to
// spread) — pruning algorithms add the gluing property that fixes this.
// These checkers exist to make that contrast concrete (tests compare the
// alarm set with the pruning algorithms' survivor set) and double as cheap
// distributed validators for downstream users.
//
// Input convention (as for pruning LOCAL realizations): x(v) ++ [yhat(v)].
// Output: 1 = alarm, 0 = content.
#pragma once

#include <memory>

#include "src/runtime/instance.h"
#include "src/runtime/local.h"

namespace unilocal {

/// MIS checker (the paper's Section 1 example): a member alarms on a member
/// neighbour; a non-member alarms when no neighbour is a member. 2 rounds.
std::unique_ptr<Algorithm> make_mis_checker();

/// Proper-coloring checker: alarm on an equal-colored neighbour or a
/// non-positive color. 2 rounds.
std::unique_ptr<Algorithm> make_coloring_checker();

/// Maximal-matching checker under the paper's value encoding: a node alarms
/// unless it is matched or all its neighbours are. 4 rounds.
std::unique_ptr<Algorithm> make_matching_checker();

/// Runs a checker over (instance, yhat); returns the alarm bits.
std::vector<std::int64_t> run_checker(const Instance& instance,
                                      const Algorithm& checker,
                                      const std::vector<std::int64_t>& yhat);

}  // namespace unilocal
