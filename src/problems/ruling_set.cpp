#include "src/problems/ruling_set.h"

#include <queue>

namespace unilocal {

bool is_two_beta_ruling_set(const Graph& g,
                            const std::vector<std::int64_t>& selected,
                            int beta) {
  const NodeId n = g.num_nodes();
  if (selected.size() != static_cast<std::size_t>(n)) return false;
  // alpha = 2: no two adjacent members.
  for (NodeId v = 0; v < n; ++v) {
    if (selected[static_cast<std::size_t>(v)] == 0) continue;
    for (NodeId u : g.neighbors(v))
      if (selected[static_cast<std::size_t>(u)] != 0) return false;
  }
  // beta-domination: multi-source BFS from the members.
  std::vector<NodeId> dist(static_cast<std::size_t>(n), -1);
  std::queue<NodeId> frontier;
  for (NodeId v = 0; v < n; ++v) {
    if (selected[static_cast<std::size_t>(v)] != 0) {
      dist[static_cast<std::size_t>(v)] = 0;
      frontier.push(v);
    }
  }
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    if (dist[static_cast<std::size_t>(v)] >= beta) continue;
    for (NodeId u : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(u)] < 0) {
        dist[static_cast<std::size_t>(u)] = dist[static_cast<std::size_t>(v)] + 1;
        frontier.push(u);
      }
    }
  }
  for (NodeId v = 0; v < n; ++v)
    if (dist[static_cast<std::size_t>(v)] < 0) return false;
  return true;
}

bool RulingSetProblem::check(const Instance& instance,
                             const std::vector<std::int64_t>& outputs) const {
  return is_two_beta_ruling_set(instance.graph, outputs, beta_);
}

}  // namespace unilocal
