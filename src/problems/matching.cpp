#include "src/problems/matching.h"

#include <algorithm>

namespace unilocal {

std::int64_t match_value(std::int64_t id_a, std::int64_t id_b) {
  if (id_a > id_b) std::swap(id_a, id_b);
  // Identities are < 2^31 (Instance::valid), so the pair packs exactly.
  return (id_a << 31) | id_b;
}

std::int64_t unmatched_value(std::int64_t id) { return -(id + 1); }

std::vector<NodeId> matched_partner(const Graph& g,
                                    const std::vector<std::int64_t>& outputs) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> partner(static_cast<std::size_t>(n), -1);
  for (NodeId u = 0; u < n; ++u) {
    const std::int64_t yu = outputs[static_cast<std::size_t>(u)];
    for (NodeId v : g.neighbors(u)) {
      if (v < u) continue;
      if (outputs[static_cast<std::size_t>(v)] != yu) continue;
      // Check the exclusivity condition over N(u) u N(v) \ {u, v}.
      bool exclusive = true;
      for (NodeId w : g.neighbors(u)) {
        if (w != v && outputs[static_cast<std::size_t>(w)] == yu) {
          exclusive = false;
          break;
        }
      }
      if (exclusive) {
        for (NodeId w : g.neighbors(v)) {
          if (w != u && outputs[static_cast<std::size_t>(w)] == yu) {
            exclusive = false;
            break;
          }
        }
      }
      if (exclusive) {
        partner[static_cast<std::size_t>(u)] = v;
        partner[static_cast<std::size_t>(v)] = u;
      }
    }
  }
  return partner;
}

bool is_maximal_matching(const Graph& g,
                         const std::vector<std::int64_t>& outputs) {
  if (outputs.size() != static_cast<std::size_t>(g.num_nodes())) return false;
  const auto partner = matched_partner(g, outputs);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (partner[static_cast<std::size_t>(u)] >= 0) continue;
    for (NodeId v : g.neighbors(u)) {
      if (partner[static_cast<std::size_t>(v)] < 0) return false;
    }
  }
  return true;
}

bool MatchingProblem::check(const Instance& instance,
                            const std::vector<std::int64_t>& outputs) const {
  return is_maximal_matching(instance.graph, outputs);
}

}  // namespace unilocal
