#include "src/problems/coloring.h"

#include <algorithm>
#include <unordered_map>

namespace unilocal {

bool is_proper_coloring(const Graph& g,
                        const std::vector<std::int64_t>& colors) {
  if (colors.size() != static_cast<std::size_t>(g.num_nodes())) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (colors[static_cast<std::size_t>(v)] <= 0) return false;
    for (NodeId u : g.neighbors(v)) {
      if (colors[static_cast<std::size_t>(u)] ==
          colors[static_cast<std::size_t>(v)])
        return false;
    }
  }
  return true;
}

std::int64_t max_color_used(const std::vector<std::int64_t>& colors) {
  std::int64_t best = 0;
  for (std::int64_t c : colors) best = std::max(best, c);
  return best;
}

bool ColoringProblem::check(const Instance& instance,
                            const std::vector<std::int64_t>& outputs) const {
  if (!is_proper_coloring(instance.graph, outputs)) return false;
  if (cap_ >= 0 && max_color_used(outputs) > cap_) return false;
  return true;
}

bool DegPlusOneColoringProblem::check(
    const Instance& instance, const std::vector<std::int64_t>& outputs) const {
  if (!is_proper_coloring(instance.graph, outputs)) return false;
  for (NodeId v = 0; v < instance.graph.num_nodes(); ++v) {
    if (outputs[static_cast<std::size_t>(v)] >
        instance.graph.degree(v) + 1)
      return false;
  }
  return true;
}

bool is_proper_edge_coloring(const Graph& g,
                             const std::vector<std::int64_t>& edge_colors,
                             std::int64_t cap) {
  const auto edges = g.edges();
  if (edge_colors.size() != edges.size()) return false;
  std::vector<std::unordered_map<std::int64_t, int>> seen(
      static_cast<std::size_t>(g.num_nodes()));
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const std::int64_t c = edge_colors[e];
    if (c <= 0) return false;
    if (cap >= 0 && c > cap) return false;
    for (NodeId endpoint : {edges[e].first, edges[e].second}) {
      auto& at = seen[static_cast<std::size_t>(endpoint)];
      if (++at[c] > 1) return false;
    }
  }
  return true;
}

}  // namespace unilocal
