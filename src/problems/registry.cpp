#include "src/problems/registry.h"

#include <stdexcept>

#include "src/problems/coloring.h"
#include "src/problems/matching.h"
#include "src/problems/mis.h"
#include "src/problems/ruling_set.h"

namespace unilocal {

std::shared_ptr<const Problem> make_problem(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  try {
    if (kind == "mis" && arg.empty()) return std::make_shared<MisProblem>();
    if (kind == "matching" && arg.empty())
      return std::make_shared<MatchingProblem>();
    if (kind == "coloring" && arg == "deg+1")
      return std::make_shared<DegPlusOneColoringProblem>();
    if (kind == "coloring")
      return std::make_shared<ColoringProblem>(
          arg.empty() ? -1 : std::stoll(arg));
    if (kind == "rulingset" && !arg.empty())
      return std::make_shared<RulingSetProblem>(std::stoi(arg));
  } catch (const std::invalid_argument&) {
  } catch (const std::out_of_range&) {
  }
  throw std::runtime_error("unknown problem spec: " + spec);
}

std::vector<std::string> problem_specs() {
  return {"mis", "matching", "coloring", "coloring:<cap>", "coloring:deg+1",
          "rulingset:<beta>"};
}

}  // namespace unilocal
