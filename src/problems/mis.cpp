#include "src/problems/mis.h"

namespace unilocal {

bool is_maximal_independent_set(const Graph& g,
                                const std::vector<std::int64_t>& selected) {
  if (selected.size() != static_cast<std::size_t>(g.num_nodes())) return false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const bool in_set = selected[static_cast<std::size_t>(v)] != 0;
    bool has_selected_neighbor = false;
    for (NodeId u : g.neighbors(v)) {
      if (selected[static_cast<std::size_t>(u)] != 0) {
        has_selected_neighbor = true;
        break;
      }
    }
    if (in_set && has_selected_neighbor) return false;   // independence
    if (!in_set && !has_selected_neighbor) return false;  // maximality
  }
  return true;
}

bool MisProblem::check(const Instance& instance,
                       const std::vector<std::int64_t>& outputs) const {
  return is_maximal_independent_set(instance.graph, outputs);
}

}  // namespace unilocal
