// Scenario registry: string-keyed workload factories over the generators.
//
// The paper's headline results (Theorem 4 / Corollary 1) are statements
// about *families* of instances with unknown parameters, so the harness
// needs a first-class way to name a family, turn two knobs, and get a
// deterministic topology. Every factory is a pure function of
// (params, rng); the registry derives the Rng from the caller's seed, so a
// scenario cell (name, params, seed) always yields the same graph — the
// property the campaign layer's bit-identical guarantee builds on.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/graph/generators.h"

namespace unilocal {

/// Knobs of one scenario; a and b are interpreted per family (see the
/// describe() string of each built-in) and 0 means "use the family
/// default".
struct ScenarioParams {
  NodeId n = 100;
  double a = 0.0;
  double b = 0.0;
};

class ScenarioRegistry {
 public:
  using Factory = std::function<Graph(const ScenarioParams&, Rng&)>;

  /// Registers (or replaces) a family under `name`.
  void add(std::string name, std::string describe, Factory factory);

  bool contains(const std::string& name) const;
  /// Registered family names, sorted.
  std::vector<std::string> names() const;
  /// One-line knob documentation; throws std::runtime_error on unknown
  /// names.
  const std::string& describe(const std::string& name) const;

  /// Builds the family's graph. Deterministic: depends only on
  /// (name, params, seed). Throws std::runtime_error on unknown names.
  Graph build(const std::string& name, const ScenarioParams& params,
              std::uint64_t seed) const;

 private:
  struct Entry {
    std::string describe;
    Factory factory;
  };
  std::map<std::string, Entry> entries_;
};

/// The built-in families over src/graph/generators.h: path, cycle, clique,
/// bipartite, grid, hypercube, gnp, bounded-degree, tree, forest,
/// layered-forest, power-law, geometric, caterpillar.
const ScenarioRegistry& default_scenarios();

}  // namespace unilocal
