// Induced subgraphs with index maps.
//
// The alternating-algorithm driver (paper Section 3.3) repeatedly restricts
// the instance to the nodes NOT pruned by the pruning algorithm; this header
// provides that restriction together with the old<->new index maps the
// driver needs to glue partial outputs back together.
#pragma once

#include <vector>

#include "src/graph/graph.h"

namespace unilocal {

struct InducedSubgraph {
  Graph graph;
  /// new index -> old index (size = graph.num_nodes()).
  std::vector<NodeId> to_old;
  /// old index -> new index, or -1 when the old node was dropped.
  std::vector<NodeId> to_new;
};

/// Subgraph induced by the nodes with keep[v] == true.
InducedSubgraph induced_subgraph(const Graph& g, const std::vector<bool>& keep);

}  // namespace unilocal
