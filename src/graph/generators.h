// Workload generators for the benchmark harness and tests.
//
// Table 1 of the paper spans several graph families: general graphs
// (G(n,p)), bounded-degree graphs (Barenboim-Elkin/Kuhn regime), bounded
// arboricity graphs (forests, planar-like grids), and adversarial
// identity-orderings (paths). Each generator is deterministic given its Rng.
#pragma once

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace unilocal {

/// Path 0-1-2-...-(n-1).
Graph path_graph(NodeId n);

/// Cycle on n >= 3 nodes.
Graph cycle_graph(NodeId n);

/// Complete graph K_n.
Graph complete_graph(NodeId n);

/// Complete bipartite graph K_{a,b} (nodes 0..a-1 vs a..a+b-1).
Graph complete_bipartite(NodeId a, NodeId b);

/// Two-dimensional grid with given width/height (arboricity <= 2).
Graph grid_graph(NodeId width, NodeId height);

/// Hypercube on 2^dim nodes.
Graph hypercube(int dim);

/// Erdos-Renyi G(n, p).
Graph gnp(NodeId n, double p, Rng& rng);

/// Random graph with maximum degree <= max_deg: repeatedly samples random
/// pairs, keeping an edge only when both endpoints have spare degree.
/// Produces roughly n*max_deg/2 * fill edges.
Graph random_bounded_degree(NodeId n, NodeId max_deg, double fill, Rng& rng);

/// Uniform random labelled tree on n nodes (Pruefer-like attachment: node i
/// attaches to a uniform node j < i, then labels are shuffled).
Graph random_tree(NodeId n, Rng& rng);

/// Forest of random trees with the given total size and tree count.
Graph random_forest(NodeId n, NodeId trees, Rng& rng);

/// Union of `layers` random spanning forests on the same node set: has
/// arboricity <= layers by construction.
Graph random_layered_forest(NodeId n, int layers, Rng& rng);

/// Chung-Lu style power-law graph with exponent beta (~2-3) and average
/// degree target avg_deg.
Graph power_law(NodeId n, double beta, double avg_deg, Rng& rng);

/// Random geometric graph on the unit square with connection radius r
/// (a bounded-independence family).
Graph random_geometric(NodeId n, double radius, Rng& rng);

/// Caterpillar: a spine path with `legs` pendant nodes hanging off random
/// spine nodes (arboricity 1).
Graph caterpillar(NodeId spine, NodeId legs, Rng& rng);

}  // namespace unilocal
