// Centralized (oracle) computation of the non-decreasing graph parameters
// the paper's framework reasons about: n, the maximum degree Delta, and an
// arboricity proxy. These are used ONLY by the test/benchmark harness and by
// *non-uniform* algorithm instantiation — never by the uniform algorithms
// produced by the transformers (a property the tests enforce).
#pragma once

#include <vector>

#include "src/graph/graph.h"

namespace unilocal {

/// Maximum degree Delta(G); 0 for the empty graph.
NodeId max_degree(const Graph& g);

/// Degeneracy: the smallest d such that every subgraph has a node of degree
/// <= d, computed by the standard peeling order. For arboricity a(G):
/// a <= degeneracy <= 2a - 1, so degeneracy is the library's standing,
/// non-decreasing arboricity proxy (documented in DESIGN.md).
NodeId degeneracy(const Graph& g);

/// Lower bound on arboricity from Nash-Williams density of the whole graph:
/// ceil(|E| / (|V| - 1)). Useful for generator sanity tests.
NodeId nash_williams_lower_bound(const Graph& g);

/// Connected component ids (0-based, in discovery order) per node.
std::vector<NodeId> connected_components(const Graph& g);

/// Number of connected components.
NodeId num_components(const Graph& g);

/// Single-source BFS distances (-1 when unreachable).
std::vector<NodeId> bfs_distances(const Graph& g, NodeId source);

/// Exact diameter (max eccentricity over all nodes, per component the max
/// finite distance). Intended for small test graphs only: O(n * m).
NodeId diameter(const Graph& g);

/// True when the graph has no cycle.
bool is_forest(const Graph& g);

}  // namespace unilocal
