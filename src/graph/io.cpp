#include "src/graph/io.h"

#include <sstream>
#include <stdexcept>

namespace unilocal {

void write_edge_list(std::ostream& out, const Graph& g) {
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edges()) out << u << ' ' << v << '\n';
}

Graph read_edge_list(std::istream& in) {
  std::int64_t n = 0;
  std::int64_t m = 0;
  if (!(in >> n >> m) || n < 0 || m < 0)
    throw std::runtime_error("edge list: bad header");
  GraphBuilder builder(static_cast<NodeId>(n));
  for (std::int64_t e = 0; e < m; ++e) {
    std::int64_t u = 0;
    std::int64_t v = 0;
    if (!(in >> u >> v)) throw std::runtime_error("edge list: truncated");
    if (u < 0 || v < 0 || u >= n || v >= n)
      throw std::runtime_error("edge list: endpoint out of range");
    if (u == v) throw std::runtime_error("edge list: self-loop");
    builder.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return builder.build();
}

std::string to_edge_list_string(const Graph& g) {
  std::ostringstream out;
  write_edge_list(out, g);
  return out.str();
}

Graph from_edge_list_string(const std::string& text) {
  std::istringstream in(text);
  return read_edge_list(in);
}

std::string to_dot(const Graph& g, const std::vector<std::string>& labels) {
  std::ostringstream out;
  out << "graph G {\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out << "  n" << v;
    if (static_cast<std::size_t>(v) < labels.size())
      out << " [label=\"" << labels[static_cast<std::size_t>(v)] << "\"]";
    out << ";\n";
  }
  for (const auto& [u, v] : g.edges())
    out << "  n" << u << " -- n" << v << ";\n";
  out << "}\n";
  return out.str();
}

}  // namespace unilocal
