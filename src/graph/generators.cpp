#include "src/graph/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace unilocal {

Graph path_graph(NodeId n) {
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return b.build();
}

Graph cycle_graph(NodeId n) {
  assert(n >= 3);
  GraphBuilder b(n);
  for (NodeId i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  b.add_edge(n - 1, 0);
  return b.build();
}

Graph complete_graph(NodeId n) {
  GraphBuilder b(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j) b.add_edge(i, j);
  return b.build();
}

Graph complete_bipartite(NodeId a, NodeId b_size) {
  GraphBuilder b(a + b_size);
  for (NodeId i = 0; i < a; ++i)
    for (NodeId j = 0; j < b_size; ++j) b.add_edge(i, a + j);
  return b.build();
}

Graph grid_graph(NodeId width, NodeId height) {
  GraphBuilder b(width * height);
  auto at = [width](NodeId x, NodeId y) { return y * width + x; };
  for (NodeId y = 0; y < height; ++y) {
    for (NodeId x = 0; x < width; ++x) {
      if (x + 1 < width) b.add_edge(at(x, y), at(x + 1, y));
      if (y + 1 < height) b.add_edge(at(x, y), at(x, y + 1));
    }
  }
  return b.build();
}

Graph hypercube(int dim) {
  const NodeId n = static_cast<NodeId>(1) << dim;
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v)
    for (int k = 0; k < dim; ++k)
      if ((v & (1 << k)) == 0) b.add_edge(v, v | (1 << k));
  return b.build();
}

Graph gnp(NodeId n, double p, Rng& rng) {
  GraphBuilder b(n);
  if (p <= 0.0 || n < 2) return b.build();
  if (p >= 1.0) return complete_graph(n);
  // Geometric skipping (Batagelj-Brandes) for sparse p.
  const double log1mp = std::log(1.0 - p);
  std::int64_t v = 1;
  std::int64_t w = -1;
  const std::int64_t nn = n;
  while (v < nn) {
    const double r = 1.0 - rng.next_double();  // in (0,1]
    w += 1 + static_cast<std::int64_t>(std::floor(std::log(r) / log1mp));
    while (w >= v && v < nn) {
      w -= v;
      ++v;
    }
    if (v < nn)
      b.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(w));
  }
  return b.build();
}

Graph random_bounded_degree(NodeId n, NodeId max_deg, double fill, Rng& rng) {
  assert(max_deg >= 1 && fill >= 0.0 && fill <= 1.0);
  std::vector<NodeId> deg(static_cast<std::size_t>(n), 0);
  GraphBuilder b(n);
  const std::int64_t target = static_cast<std::int64_t>(
      fill * static_cast<double>(n) * max_deg / 2.0);
  std::int64_t placed = 0;
  std::int64_t attempts = 0;
  const std::int64_t max_attempts = 20 * (target + 1);
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(n));
  while (placed < target && attempts < max_attempts) {
    ++attempts;
    const NodeId u = static_cast<NodeId>(rng.next_below(n));
    const NodeId v = static_cast<NodeId>(rng.next_below(n));
    if (u == v) continue;
    auto& au = adj[static_cast<std::size_t>(u)];
    if (deg[static_cast<std::size_t>(u)] >= max_deg ||
        deg[static_cast<std::size_t>(v)] >= max_deg)
      continue;
    if (std::find(au.begin(), au.end(), v) != au.end()) continue;
    au.push_back(v);
    adj[static_cast<std::size_t>(v)].push_back(u);
    ++deg[static_cast<std::size_t>(u)];
    ++deg[static_cast<std::size_t>(v)];
    b.add_edge(u, v);
    ++placed;
  }
  return b.build();
}

Graph random_tree(NodeId n, Rng& rng) {
  GraphBuilder b(n);
  if (n <= 1) return b.build();
  auto relabel = random_permutation(static_cast<std::size_t>(n), rng);
  for (NodeId i = 1; i < n; ++i) {
    const NodeId parent = static_cast<NodeId>(rng.next_below(i));
    b.add_edge(static_cast<NodeId>(relabel[static_cast<std::size_t>(i)]),
               static_cast<NodeId>(relabel[static_cast<std::size_t>(parent)]));
  }
  return b.build();
}

Graph random_forest(NodeId n, NodeId trees, Rng& rng) {
  assert(trees >= 1 && trees <= n);
  GraphBuilder b(n);
  auto relabel = random_permutation(static_cast<std::size_t>(n), rng);
  // Node i (for i >= trees) attaches to a uniform earlier node; nodes
  // 0..trees-1 are the roots of the `trees` components.
  for (NodeId i = trees; i < n; ++i) {
    const NodeId parent = static_cast<NodeId>(rng.next_below(i));
    b.add_edge(static_cast<NodeId>(relabel[static_cast<std::size_t>(i)]),
               static_cast<NodeId>(relabel[static_cast<std::size_t>(parent)]));
  }
  return b.build();
}

Graph random_layered_forest(NodeId n, int layers, Rng& rng) {
  GraphBuilder b(n);
  for (int layer = 0; layer < layers; ++layer) {
    auto relabel = random_permutation(static_cast<std::size_t>(n), rng);
    for (NodeId i = 1; i < n; ++i) {
      const NodeId parent = static_cast<NodeId>(rng.next_below(i));
      b.add_edge(
          static_cast<NodeId>(relabel[static_cast<std::size_t>(i)]),
          static_cast<NodeId>(relabel[static_cast<std::size_t>(parent)]));
    }
  }
  return b.build();
}

Graph power_law(NodeId n, double beta, double avg_deg, Rng& rng) {
  assert(beta > 1.0);
  std::vector<double> weight(static_cast<std::size_t>(n));
  double total = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    weight[static_cast<std::size_t>(i)] =
        std::pow(static_cast<double>(i + 1), -1.0 / (beta - 1.0));
    total += weight[static_cast<std::size_t>(i)];
  }
  const double scale = avg_deg * n / total;
  for (auto& w : weight) w *= scale;
  const double weight_sum = avg_deg * n;
  GraphBuilder b(n);
  // Chung-Lu: edge (u,v) with probability min(1, w_u w_v / sum w). Sample
  // by expected-edge-count rejection: draw both endpoints weight-biased.
  std::vector<double> cumulative(static_cast<std::size_t>(n));
  double acc = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    acc += weight[static_cast<std::size_t>(i)];
    cumulative[static_cast<std::size_t>(i)] = acc;
  }
  const std::int64_t num_samples =
      static_cast<std::int64_t>(weight_sum / 2.0);
  auto draw = [&]() {
    const double x = rng.next_double() * acc;
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), x);
    return static_cast<NodeId>(it - cumulative.begin());
  };
  for (std::int64_t s = 0; s < num_samples; ++s) {
    const NodeId u = draw();
    const NodeId v = draw();
    if (u != v) b.add_edge(u, v);
  }
  return b.build();
}

Graph random_geometric(NodeId n, double radius, Rng& rng) {
  std::vector<double> xs(static_cast<std::size_t>(n));
  std::vector<double> ys(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    xs[static_cast<std::size_t>(i)] = rng.next_double();
    ys[static_cast<std::size_t>(i)] = rng.next_double();
  }
  // Grid bucketing for near-linear construction.
  const int cells = std::max(1, static_cast<int>(1.0 / radius));
  std::vector<std::vector<NodeId>> bucket(
      static_cast<std::size_t>(cells) * cells);
  auto cell_of = [&](NodeId i) {
    int cx = std::min(cells - 1, static_cast<int>(xs[static_cast<std::size_t>(i)] * cells));
    int cy = std::min(cells - 1, static_cast<int>(ys[static_cast<std::size_t>(i)] * cells));
    return cy * cells + cx;
  };
  for (NodeId i = 0; i < n; ++i)
    bucket[static_cast<std::size_t>(cell_of(i))].push_back(i);
  GraphBuilder b(n);
  const double r2 = radius * radius;
  for (NodeId i = 0; i < n; ++i) {
    const int cx = std::min(cells - 1, static_cast<int>(xs[static_cast<std::size_t>(i)] * cells));
    const int cy = std::min(cells - 1, static_cast<int>(ys[static_cast<std::size_t>(i)] * cells));
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int nx = cx + dx;
        const int ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        for (NodeId j : bucket[static_cast<std::size_t>(ny * cells + nx)]) {
          if (j <= i) continue;
          const double ddx = xs[static_cast<std::size_t>(i)] - xs[static_cast<std::size_t>(j)];
          const double ddy = ys[static_cast<std::size_t>(i)] - ys[static_cast<std::size_t>(j)];
          if (ddx * ddx + ddy * ddy <= r2) b.add_edge(i, j);
        }
      }
    }
  }
  return b.build();
}

Graph caterpillar(NodeId spine, NodeId legs, Rng& rng) {
  GraphBuilder b(spine + legs);
  for (NodeId i = 0; i + 1 < spine; ++i) b.add_edge(i, i + 1);
  for (NodeId leg = 0; leg < legs; ++leg) {
    const NodeId attach = static_cast<NodeId>(rng.next_below(spine));
    b.add_edge(spine + leg, attach);
  }
  return b.build();
}

}  // namespace unilocal
