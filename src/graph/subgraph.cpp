#include "src/graph/subgraph.h"

#include <cassert>

namespace unilocal {

InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<bool>& keep) {
  assert(keep.size() == static_cast<std::size_t>(g.num_nodes()));
  InducedSubgraph result;
  result.to_new.assign(static_cast<std::size_t>(g.num_nodes()), -1);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (keep[static_cast<std::size_t>(v)]) {
      result.to_new[static_cast<std::size_t>(v)] =
          static_cast<NodeId>(result.to_old.size());
      result.to_old.push_back(v);
    }
  }
  GraphBuilder builder(static_cast<NodeId>(result.to_old.size()));
  for (NodeId new_u = 0; new_u < static_cast<NodeId>(result.to_old.size());
       ++new_u) {
    const NodeId old_u = result.to_old[static_cast<std::size_t>(new_u)];
    for (NodeId old_v : g.neighbors(old_u)) {
      const NodeId new_v = result.to_new[static_cast<std::size_t>(old_v)];
      if (new_v > new_u) builder.add_edge(new_u, new_v);
    }
  }
  result.graph = builder.build();
  return result;
}

}  // namespace unilocal
