#include "src/graph/scenario_registry.h"

#include <cmath>
#include <stdexcept>

#include "src/util/math.h"

namespace unilocal {

void ScenarioRegistry::add(std::string name, std::string describe,
                           Factory factory) {
  entries_[std::move(name)] = Entry{std::move(describe), std::move(factory)};
}

bool ScenarioRegistry::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) result.push_back(name);
  return result;
}

const std::string& ScenarioRegistry::describe(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end())
    throw std::runtime_error("unknown scenario: " + name);
  return it->second.describe;
}

Graph ScenarioRegistry::build(const std::string& name,
                              const ScenarioParams& params,
                              std::uint64_t seed) const {
  const auto it = entries_.find(name);
  if (it == entries_.end())
    throw std::runtime_error("unknown scenario: " + name);
  Rng rng(seed);
  return it->second.factory(params, rng);
}

namespace {

NodeId at_least(NodeId n, NodeId floor) { return n < floor ? floor : n; }

ScenarioRegistry make_default_scenarios() {
  ScenarioRegistry registry;
  registry.add("path", "path on n nodes (a, b unused)",
               [](const ScenarioParams& p, Rng&) {
                 return path_graph(at_least(p.n, 1));
               });
  registry.add("cycle", "cycle on max(n, 3) nodes (a, b unused)",
               [](const ScenarioParams& p, Rng&) {
                 return cycle_graph(at_least(p.n, 3));
               });
  registry.add("clique", "complete graph K_n (a, b unused)",
               [](const ScenarioParams& p, Rng&) {
                 return complete_graph(at_least(p.n, 1));
               });
  registry.add("bipartite",
               "complete bipartite K_{a*n, (1-a)*n}; a = left fraction "
               "(default 0.5)",
               [](const ScenarioParams& p, Rng&) {
                 const NodeId n = at_least(p.n, 2);
                 const double fraction = p.a > 0.0 ? p.a : 0.5;
                 NodeId left = static_cast<NodeId>(
                     static_cast<double>(n) * fraction);
                 left = std::min(at_least(left, 1),
                                 static_cast<NodeId>(n - 1));
                 return complete_bipartite(left, n - left);
               });
  registry.add("grid",
               "~n-node 2D grid; a = width (default ~sqrt(n)); arboricity "
               "<= 2",
               [](const ScenarioParams& p, Rng&) {
                 const NodeId n = at_least(p.n, 1);
                 const NodeId width =
                     p.a > 0.0
                         ? at_least(static_cast<NodeId>(p.a), 1)
                         : at_least(static_cast<NodeId>(std::lround(
                                        std::sqrt(static_cast<double>(n)))),
                                    1);
                 const NodeId height = static_cast<NodeId>(
                     ceil_div(n, width));
                 return grid_graph(width, at_least(height, 1));
               });
  registry.add("hypercube",
               "hypercube on 2^floor(log2 n) nodes (a, b unused)",
               [](const ScenarioParams& p, Rng&) {
                 return hypercube(ilog2(
                     static_cast<std::uint64_t>(at_least(p.n, 1))));
               });
  registry.add("gnp",
               "Erdos-Renyi G(n, p); a = p (default b/n), b = target "
               "average degree (default 8)",
               [](const ScenarioParams& p, Rng& rng) {
                 const NodeId n = at_least(p.n, 1);
                 const double avg = p.b > 0.0 ? p.b : 8.0;
                 const double prob =
                     p.a > 0.0 ? p.a
                               : std::min(1.0, avg / static_cast<double>(n));
                 return gnp(n, prob, rng);
               });
  registry.add("bounded-degree",
               "random graph with max degree <= a (default 4), fill "
               "fraction b (default 0.9)",
               [](const ScenarioParams& p, Rng& rng) {
                 const NodeId max_deg =
                     p.a > 0.0 ? at_least(static_cast<NodeId>(p.a), 1) : 4;
                 const double fill = p.b > 0.0 ? p.b : 0.9;
                 return random_bounded_degree(at_least(p.n, 1), max_deg,
                                              fill, rng);
               });
  registry.add("tree", "uniform random labelled tree (a, b unused)",
               [](const ScenarioParams& p, Rng& rng) {
                 return random_tree(at_least(p.n, 1), rng);
               });
  registry.add("forest",
               "forest of a random trees (default n/16) on n nodes",
               [](const ScenarioParams& p, Rng& rng) {
                 const NodeId n = at_least(p.n, 1);
                 const NodeId trees =
                     p.a > 0.0 ? at_least(static_cast<NodeId>(p.a), 1)
                               : at_least(n / 16, 1);
                 return random_forest(n, std::min(trees, n), rng);
               });
  registry.add("layered-forest",
               "union of a random spanning forests (default 2): arboricity "
               "<= a by construction",
               [](const ScenarioParams& p, Rng& rng) {
                 const int layers =
                     p.a > 0.0 ? std::max(static_cast<int>(p.a), 1) : 2;
                 return random_layered_forest(at_least(p.n, 1), layers, rng);
               });
  registry.add("power-law",
               "Chung-Lu power law; a = exponent beta (default 2.5), b = "
               "average degree (default 8)",
               [](const ScenarioParams& p, Rng& rng) {
                 const double beta = p.a > 0.0 ? p.a : 2.5;
                 const double avg = p.b > 0.0 ? p.b : 8.0;
                 return power_law(at_least(p.n, 1), beta, avg, rng);
               });
  registry.add("geometric",
               "random geometric graph on the unit square; a = radius "
               "(default targets average degree b, default 8)",
               [](const ScenarioParams& p, Rng& rng) {
                 const NodeId n = at_least(p.n, 1);
                 const double avg = p.b > 0.0 ? p.b : 8.0;
                 const double radius =
                     p.a > 0.0
                         ? p.a
                         : std::sqrt(avg / (3.14159265358979323846 *
                                            static_cast<double>(n)));
                 return random_geometric(n, std::min(radius, 1.5), rng);
               });
  registry.add("caterpillar",
               "spine path with pendant legs; a = spine fraction of n "
               "(default 0.5); arboricity 1",
               [](const ScenarioParams& p, Rng& rng) {
                 const NodeId n = at_least(p.n, 2);
                 const double fraction = p.a > 0.0 ? p.a : 0.5;
                 NodeId spine = static_cast<NodeId>(
                     static_cast<double>(n) * fraction);
                 spine = std::min(at_least(spine, 1),
                                  static_cast<NodeId>(n - 1));
                 return caterpillar(spine, n - spine, rng);
               });
  return registry;
}

}  // namespace

const ScenarioRegistry& default_scenarios() {
  static const ScenarioRegistry registry = make_default_scenarios();
  return registry;
}

}  // namespace unilocal
