#include "src/graph/graph.h"

#include <algorithm>

namespace unilocal {

Graph Graph::from_edges(NodeId n,
                        const std::vector<std::pair<NodeId, NodeId>>& edges) {
  GraphBuilder builder(n);
  for (const auto& [u, v] : edges) builder.add_edge(u, v);
  return builder.build();
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto& nbrs = adj_[static_cast<std::size_t>(u)];
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> result;
  result.reserve(static_cast<std::size_t>(num_edges_));
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) result.emplace_back(u, v);
    }
  }
  return result;
}

bool Graph::valid() const {
  std::int64_t half_edges = 0;
  for (NodeId u = 0; u < num_nodes(); ++u) {
    const auto& nbrs = neighbors(u);
    if (!std::is_sorted(nbrs.begin(), nbrs.end())) return false;
    if (std::adjacent_find(nbrs.begin(), nbrs.end()) != nbrs.end())
      return false;
    for (NodeId v : nbrs) {
      if (v < 0 || v >= num_nodes() || v == u) return false;
      if (!has_edge(v, u)) return false;
    }
    half_edges += nbrs.size();
  }
  return half_edges == 2 * num_edges_;
}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  if (u < 0 || u >= n_ || v < 0 || v >= n_) return;
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::build() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  Graph g(n_);
  for (const auto& [u, v] : edges_) {
    g.adj_[static_cast<std::size_t>(u)].push_back(v);
    g.adj_[static_cast<std::size_t>(v)].push_back(u);
  }
  for (auto& nbrs : g.adj_) std::sort(nbrs.begin(), nbrs.end());
  g.num_edges_ = static_cast<std::int64_t>(edges_.size());
  return g;
}

}  // namespace unilocal
