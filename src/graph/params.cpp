#include "src/graph/params.h"

#include <algorithm>
#include <queue>

namespace unilocal {

NodeId max_degree(const Graph& g) {
  NodeId best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    best = std::max(best, g.degree(v));
  return best;
}

NodeId degeneracy(const Graph& g) {
  const NodeId n = g.num_nodes();
  if (n == 0) return 0;
  std::vector<NodeId> deg(static_cast<std::size_t>(n));
  NodeId max_deg = 0;
  for (NodeId v = 0; v < n; ++v) {
    deg[static_cast<std::size_t>(v)] = g.degree(v);
    max_deg = std::max(max_deg, g.degree(v));
  }
  // Bucket peeling (Matula-Beck).
  std::vector<std::vector<NodeId>> buckets(
      static_cast<std::size_t>(max_deg) + 1);
  for (NodeId v = 0; v < n; ++v)
    buckets[static_cast<std::size_t>(deg[static_cast<std::size_t>(v)])]
        .push_back(v);
  std::vector<bool> removed(static_cast<std::size_t>(n), false);
  NodeId degeneracy_val = 0;
  NodeId cursor = 0;
  for (NodeId processed = 0; processed < n; ++processed) {
    // Find the lowest non-empty bucket; deg values only decrease by 1 per
    // removal, so cursor only needs to back up by one step at a time.
    while (buckets[static_cast<std::size_t>(cursor)].empty()) ++cursor;
    NodeId v = -1;
    auto& bucket = buckets[static_cast<std::size_t>(cursor)];
    while (!bucket.empty()) {
      NodeId candidate = bucket.back();
      bucket.pop_back();
      if (!removed[static_cast<std::size_t>(candidate)] &&
          deg[static_cast<std::size_t>(candidate)] == cursor) {
        v = candidate;
        break;
      }
    }
    if (v < 0) {
      --processed;
      continue;
    }
    removed[static_cast<std::size_t>(v)] = true;
    degeneracy_val = std::max(degeneracy_val, cursor);
    for (NodeId u : g.neighbors(v)) {
      if (removed[static_cast<std::size_t>(u)]) continue;
      NodeId& du = deg[static_cast<std::size_t>(u)];
      --du;
      buckets[static_cast<std::size_t>(du)].push_back(u);
      if (du < cursor) cursor = du;
    }
  }
  return degeneracy_val;
}

NodeId nash_williams_lower_bound(const Graph& g) {
  if (g.num_nodes() <= 1) return 0;
  const std::int64_t denom = g.num_nodes() - 1;
  return static_cast<NodeId>((g.num_edges() + denom - 1) / denom);
}

std::vector<NodeId> connected_components(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> comp(static_cast<std::size_t>(n), -1);
  NodeId next = 0;
  std::queue<NodeId> frontier;
  for (NodeId start = 0; start < n; ++start) {
    if (comp[static_cast<std::size_t>(start)] >= 0) continue;
    comp[static_cast<std::size_t>(start)] = next;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (NodeId u : g.neighbors(v)) {
        if (comp[static_cast<std::size_t>(u)] < 0) {
          comp[static_cast<std::size_t>(u)] = next;
          frontier.push(u);
        }
      }
    }
    ++next;
  }
  return comp;
}

NodeId num_components(const Graph& g) {
  const auto comp = connected_components(g);
  NodeId best = 0;
  for (NodeId c : comp) best = std::max(best, static_cast<NodeId>(c + 1));
  return best;
}

std::vector<NodeId> bfs_distances(const Graph& g, NodeId source) {
  std::vector<NodeId> dist(static_cast<std::size_t>(g.num_nodes()), -1);
  std::queue<NodeId> frontier;
  dist[static_cast<std::size_t>(source)] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (NodeId u : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(u)] < 0) {
        dist[static_cast<std::size_t>(u)] =
            dist[static_cast<std::size_t>(v)] + 1;
        frontier.push(u);
      }
    }
  }
  return dist;
}

NodeId diameter(const Graph& g) {
  NodeId best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId d : bfs_distances(g, v)) best = std::max(best, d);
  }
  return best;
}

bool is_forest(const Graph& g) {
  const NodeId comps = num_components(g);
  return g.num_edges() == g.num_nodes() - comps;
}

}  // namespace unilocal
