#include "src/graph/transforms.h"

#include <algorithm>
#include <queue>

namespace unilocal {

CliqueProduct clique_product(const Graph& g) {
  CliqueProduct result;
  const NodeId n = g.num_nodes();
  result.clique_start.resize(static_cast<std::size_t>(n));
  NodeId total = 0;
  for (NodeId u = 0; u < n; ++u) {
    result.clique_start[static_cast<std::size_t>(u)] = total;
    total += g.degree(u) + 1;
  }
  result.owner.resize(static_cast<std::size_t>(total));
  result.slot.resize(static_cast<std::size_t>(total));
  for (NodeId u = 0; u < n; ++u) {
    const NodeId base = result.clique_start[static_cast<std::size_t>(u)];
    for (NodeId i = 0; i <= g.degree(u); ++i) {
      result.owner[static_cast<std::size_t>(base + i)] = u;
      result.slot[static_cast<std::size_t>(base + i)] = i;
    }
  }
  GraphBuilder builder(total);
  for (NodeId u = 0; u < n; ++u) {
    const NodeId base = result.clique_start[static_cast<std::size_t>(u)];
    const NodeId size = g.degree(u) + 1;
    for (NodeId i = 0; i < size; ++i)
      for (NodeId j = i + 1; j < size; ++j)
        builder.add_edge(base + i, base + j);
    for (NodeId v : g.neighbors(u)) {
      if (v < u) continue;
      const NodeId vbase = result.clique_start[static_cast<std::size_t>(v)];
      const NodeId limit = 1 + std::min(g.degree(u), g.degree(v));
      for (NodeId i = 0; i < limit; ++i)
        builder.add_edge(base + i, vbase + i);
    }
  }
  result.graph = builder.build();
  return result;
}

std::vector<std::int64_t> coloring_from_product_mis(
    const CliqueProduct& product, const std::vector<std::int64_t>& selected) {
  const std::size_t n = product.clique_start.size();
  std::vector<std::int64_t> coloring(n, 0);
  for (std::size_t p = 0; p < product.owner.size(); ++p) {
    if (selected[p] != 0) {
      coloring[static_cast<std::size_t>(product.owner[p])] =
          product.slot[p] + 1;
    }
  }
  for (std::int64_t c : coloring)
    if (c == 0) return {};
  return coloring;
}

LineGraph line_graph(const Graph& g) {
  LineGraph result;
  result.edge_of = g.edges();
  const NodeId ln = static_cast<NodeId>(result.edge_of.size());
  // incident edge lists per original node
  std::vector<std::vector<NodeId>> incident(
      static_cast<std::size_t>(g.num_nodes()));
  for (NodeId e = 0; e < ln; ++e) {
    incident[static_cast<std::size_t>(result.edge_of[static_cast<std::size_t>(e)].first)]
        .push_back(e);
    incident[static_cast<std::size_t>(result.edge_of[static_cast<std::size_t>(e)].second)]
        .push_back(e);
  }
  GraphBuilder builder(ln);
  for (const auto& list : incident) {
    for (std::size_t i = 0; i < list.size(); ++i)
      for (std::size_t j = i + 1; j < list.size(); ++j)
        builder.add_edge(list[i], list[j]);
  }
  result.graph = builder.build();
  return result;
}

Graph power_graph(const Graph& g, int k) {
  const NodeId n = g.num_nodes();
  GraphBuilder builder(n);
  std::vector<NodeId> dist(static_cast<std::size_t>(n));
  for (NodeId source = 0; source < n; ++source) {
    std::fill(dist.begin(), dist.end(), -1);
    std::queue<NodeId> frontier;
    dist[static_cast<std::size_t>(source)] = 0;
    frontier.push(source);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      if (dist[static_cast<std::size_t>(v)] >= k) continue;
      for (NodeId u : g.neighbors(v)) {
        if (dist[static_cast<std::size_t>(u)] < 0) {
          dist[static_cast<std::size_t>(u)] =
              dist[static_cast<std::size_t>(v)] + 1;
          frontier.push(u);
          if (u > source) builder.add_edge(source, u);
        } else if (u > source) {
          builder.add_edge(source, u);  // duplicate edges are deduped
        }
      }
    }
  }
  return builder.build();
}

}  // namespace unilocal
