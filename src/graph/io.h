// Minimal text I/O for graphs: a whitespace edge-list format ("n\nu v\n...")
// and Graphviz DOT export for debugging and example programs.
#pragma once

#include <iosfwd>
#include <string>

#include "src/graph/graph.h"

namespace unilocal {

/// Writes "n m" on the first line then one "u v" pair per edge.
void write_edge_list(std::ostream& out, const Graph& g);

/// Parses the format produced by write_edge_list. Throws std::runtime_error
/// on malformed input (negative ids, out-of-range endpoints, truncation).
Graph read_edge_list(std::istream& in);

/// Round-trip helpers.
std::string to_edge_list_string(const Graph& g);
Graph from_edge_list_string(const std::string& text);

/// Graphviz export; labels[v] is optional per-node annotation.
std::string to_dot(const Graph& g, const std::vector<std::string>& labels = {});

}  // namespace unilocal
