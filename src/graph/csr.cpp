#include "src/graph/csr.h"

namespace unilocal {

CsrGraph::CsrGraph(const Graph& g) : n_(g.num_nodes()) {
  offsets_.resize(static_cast<std::size_t>(n_) + 1, 0);
  for (NodeId v = 0; v < n_; ++v)
    offsets_[static_cast<std::size_t>(v) + 1] =
        offsets_[static_cast<std::size_t>(v)] + g.degree(v);
  const std::size_t total = static_cast<std::size_t>(offsets_.back());
  neighbors_.resize(total);
  reverse_ports_.resize(total);
  for (NodeId v = 0; v < n_; ++v) {
    const auto& nbrs = g.neighbors(v);
    std::int64_t base = offsets_[static_cast<std::size_t>(v)];
    for (std::size_t j = 0; j < nbrs.size(); ++j)
      neighbors_[static_cast<std::size_t>(base) + j] = nbrs[j];
  }
  // Adjacency lists are sorted, so sweeping u ascending means that when edge
  // (u -> v) is visited, exactly the neighbours of v smaller than u have
  // already been swept — a per-node counter yields u's port in v's list
  // without any binary search.
  std::vector<NodeId> next_port(static_cast<std::size_t>(n_), 0);
  for (NodeId u = 0; u < n_; ++u) {
    const std::int64_t base = offsets_[static_cast<std::size_t>(u)];
    const NodeId deg = degree(u);
    for (NodeId j = 0; j < deg; ++j) {
      const NodeId v = neighbors_[static_cast<std::size_t>(base + j)];
      reverse_ports_[static_cast<std::size_t>(base + j)] =
          next_port[static_cast<std::size_t>(v)]++;
    }
  }
}

}  // namespace unilocal
