// Graph transformations the paper relies on:
//  * the clique product G' of Section 5.1 (MIS on G'  <=>  (deg+1)-coloring
//    of G), constructible locally without any global parameter;
//  * line graphs (edge coloring = vertex coloring of L(G), Section 5 /
//    Barenboim-Elkin'11);
//  * power graphs G^k ((2,beta)-ruling sets relate to MIS on G^beta).
//
// Each transform returns the new topology together with the mappings needed
// to pull solutions back to the original graph.
#pragma once

#include <utility>
#include <vector>

#include "src/graph/graph.h"

namespace unilocal {

/// The paper's Section 5.1 construction: for each node u of G a clique C_u
/// on deg(u)+1 nodes u_1..u_{deg(u)+1}; for each edge (u,v) of G and each
/// i in [1, 1+min(deg(u),deg(v))], an edge (u_i, v_i).
/// MIS of the product graph <-> (deg+1)-coloring of G (one clique node
/// selected per clique; its index is the color).
struct CliqueProduct {
  Graph graph;
  /// product node -> original node.
  std::vector<NodeId> owner;
  /// product node -> its index i in C_owner, 0-based (color i+1 if chosen).
  std::vector<NodeId> slot;
  /// original node -> first product node of its clique.
  std::vector<NodeId> clique_start;
};

CliqueProduct clique_product(const Graph& g);

/// Given an MIS of the product graph (selected[i] != 0), the induced
/// (deg+1)-coloring of the original graph: color(u) = slot of the unique
/// selected node of C_u, 1-based. Returns empty vector if some clique has no
/// selected node (i.e. the MIS was invalid).
std::vector<std::int64_t> coloring_from_product_mis(
    const CliqueProduct& product, const std::vector<std::int64_t>& selected);

/// Line graph: one node per edge of g; two line-nodes adjacent iff their
/// edges share an endpoint.
struct LineGraph {
  Graph graph;
  /// line node -> the original edge (u, v), u < v.
  std::vector<std::pair<NodeId, NodeId>> edge_of;
};

LineGraph line_graph(const Graph& g);

/// Power graph: u ~ v in g^k iff 1 <= dist_g(u,v) <= k.
Graph power_graph(const Graph& g, int k);

}  // namespace unilocal
