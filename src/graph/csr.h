// Immutable compressed-sparse-row (CSR) view of a Graph.
//
// The simulator's hot loops walk adjacency constantly; the Graph's
// vector-of-vectors layout costs one pointer chase per node. CsrGraph packs
// the same topology into three flat arrays — offsets, neighbors, and
// precomputed reverse ports — so a round engine can index any directed edge
// (v, port) as a dense integer and message delivery needs no per-run
// reverse-port recomputation. Built once per topology (Instance caches it)
// and shared by every run over that graph.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/graph.h"

namespace unilocal {

class CsrGraph {
 public:
  CsrGraph() = default;
  explicit CsrGraph(const Graph& g);

  NodeId num_nodes() const noexcept { return n_; }
  /// Number of directed edges (2m); also the size of the dense edge-index
  /// space [0, num_directed_edges()).
  std::int64_t num_directed_edges() const noexcept {
    return static_cast<std::int64_t>(neighbors_.size());
  }

  std::int64_t offset(NodeId v) const {
    return offsets_[static_cast<std::size_t>(v)];
  }
  /// Raw offsets array (n + 1 entries) — the batched kernel path hands this
  /// to KernelBatchCtx so batch fns index degrees and per-port lanes without
  /// a per-node accessor call.
  const std::int64_t* offsets_data() const noexcept { return offsets_.data(); }
  NodeId degree(NodeId v) const {
    return static_cast<NodeId>(offsets_[static_cast<std::size_t>(v) + 1] -
                               offsets_[static_cast<std::size_t>(v)]);
  }
  std::span<const NodeId> neighbors(NodeId v) const {
    return {neighbors_.data() + offset(v),
            static_cast<std::size_t>(degree(v))};
  }
  NodeId neighbor(NodeId v, NodeId port) const {
    return neighbors_[static_cast<std::size_t>(offset(v) + port)];
  }

  /// The port of v in the adjacency list of its j-th neighbour — i.e. the
  /// direction a reply must take. reverse_port(v, j) == p means
  /// neighbor(neighbor(v, j), p) == v.
  NodeId reverse_port(NodeId v, NodeId j) const {
    return reverse_ports_[static_cast<std::size_t>(offset(v) + j)];
  }

  /// Dense index of the directed edge (v, port j); message arenas use it as
  /// a slot number.
  std::int64_t edge_index(NodeId v, NodeId j) const { return offset(v) + j; }

  /// Dense index of the directed edge carrying what v RECEIVES on port j:
  /// the slot its j-th neighbour sends through towards v.
  std::int64_t in_edge_index(NodeId v, NodeId j) const {
    const NodeId u = neighbor(v, j);
    return offset(u) + reverse_port(v, j);
  }

 private:
  NodeId n_ = 0;
  std::vector<std::int64_t> offsets_;    // n + 1
  std::vector<NodeId> neighbors_;        // 2m, each list sorted ascending
  std::vector<NodeId> reverse_ports_;    // 2m, parallel to neighbors_
};

}  // namespace unilocal
