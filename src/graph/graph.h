// The network topology for the LOCAL-model simulator.
//
// Nodes are indexed 0..n-1 ("slots"); the unique identities Id(v) the paper
// assumes live in the Instance (src/runtime/instance.h), not here, so the
// same topology can be reused under different identity assignments.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace unilocal {

using NodeId = std::int32_t;

/// Simple undirected graph stored as sorted adjacency lists.
/// Invariants: no self-loops, no parallel edges, every list sorted
/// ascending. Graphs may be disconnected (the paper's problems are closed
/// under disjoint union).
class Graph {
 public:
  Graph() = default;
  explicit Graph(NodeId n) : adj_(static_cast<std::size_t>(n)) {}

  /// Builds a graph from an edge list; ignores self-loops, duplicates in
  /// either orientation, and edges with endpoints outside [0, n). n = 0
  /// yields the empty graph, and nodes no edge mentions stay isolated —
  /// num_edges() always equals edges().size().
  static Graph from_edges(NodeId n,
                          const std::vector<std::pair<NodeId, NodeId>>& edges);

  NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(adj_.size());
  }
  std::int64_t num_edges() const noexcept { return num_edges_; }

  const std::vector<NodeId>& neighbors(NodeId v) const {
    return adj_[static_cast<std::size_t>(v)];
  }
  NodeId degree(NodeId v) const {
    return static_cast<NodeId>(adj_[static_cast<std::size_t>(v)].size());
  }

  bool has_edge(NodeId u, NodeId v) const;

  /// All edges as (u, v) with u < v, lexicographically sorted.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// True when invariants hold (used by tests and debug assertions).
  bool valid() const;

  bool operator==(const Graph& other) const { return adj_ == other.adj_; }

 private:
  friend class GraphBuilder;
  std::vector<std::vector<NodeId>> adj_;
  std::int64_t num_edges_ = 0;
};

/// Incremental construction helper that tolerates duplicates, self-loops,
/// and out-of-range endpoints, and normalizes on build(). build() may be
/// called repeatedly (later calls see edges added since).
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId n) : n_(n) {}

  void add_edge(NodeId u, NodeId v);
  Graph build();

 private:
  NodeId n_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace unilocal
