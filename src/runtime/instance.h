// The paper's notion of an instance (G, x): a topology plus, for each node,
// a unique identity Id(v) and an input bit-string x(v) (here: a vector of
// int64 values). Identity assignment schemes let the tests and benches probe
// both benign (random) and adversarial (sorted-along-a-path) orderings.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/graph/csr.h"
#include "src/graph/graph.h"
#include "src/graph/subgraph.h"
#include "src/util/rng.h"

namespace unilocal {

using Input = std::vector<std::int64_t>;

struct Instance {
  Graph graph;
  /// Unique identities; the library keeps them in [0, 2^31) so identity
  /// pairs can be packed into a single int64 output value (matching).
  std::vector<std::int64_t> identities;
  /// Per-node input vector x(v) (possibly empty).
  std::vector<Input> inputs;

  NodeId num_nodes() const noexcept { return graph.num_nodes(); }

  /// Flat CSR view of `graph` (offsets + neighbours + reverse ports), built
  /// lazily once and shared by every run over this topology — copies taken
  /// after the first build share the cache (copies taken before it each
  /// build their own). Concurrent calls on one Instance are safe; the build
  /// is serialized. Callers that mutate `graph` after the first run must
  /// call invalidate_csr(); the repo's own mutation paths
  /// (restrict_instance, make_instance) always build fresh Instances.
  const CsrGraph& csr() const;
  void invalidate_csr() { csr_cache_.reset(); }

  /// Maximum identity m(G, x) — a non-decreasing graph parameter.
  std::int64_t max_identity() const;

  /// True when identities are unique, in range, and vectors are sized
  /// consistently with the graph.
  bool valid() const;

 private:
  mutable std::shared_ptr<const CsrGraph> csr_cache_;
};

enum class IdentityScheme {
  kSequential,       // Id(v) = v + 1
  kRandomPermuted,   // random permutation of [1, n]
  kRandomSparse,     // n distinct random values in [1, 2^31)
};

/// Builds an instance over g with empty inputs and the chosen identities.
Instance make_instance(Graph g, IdentityScheme scheme = IdentityScheme::kRandomPermuted,
                       std::uint64_t seed = 1);

/// Restricts an instance to the kept nodes; identities are preserved
/// (paper: subinstances keep their identities), inputs are replaced by
/// `new_inputs` entries of the kept nodes (indexed by OLD node id).
Instance restrict_instance(const Instance& instance, const InducedSubgraph& sub,
                           const std::vector<Input>& new_inputs);

}  // namespace unilocal
