#include "src/runtime/campaign.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <optional>
#include <ostream>
#include <set>
#include <stdexcept>

#include "src/util/json.h"

namespace unilocal {

// --- workspace pool ---------------------------------------------------------

struct WorkspacePool::State {
  std::mutex mutex;
  std::condition_variable available_cv;
  std::vector<EngineWorkspace> workspaces;
  std::deque<EngineWorkspace*> free;  // FIFO = round-robin checkout
};

WorkspacePool::WorkspacePool(int size) : state_(std::make_unique<State>()) {
  if (size < 1) size = 1;
  state_->workspaces.resize(static_cast<std::size_t>(size));
  for (auto& workspace : state_->workspaces)
    state_->free.push_back(&workspace);
}

WorkspacePool::~WorkspacePool() = default;

int WorkspacePool::size() const noexcept {
  return static_cast<int>(state_->workspaces.size());
}

EngineWorkspace* WorkspacePool::checkout() {
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->available_cv.wait(lock, [&] { return !state_->free.empty(); });
  EngineWorkspace* workspace = state_->free.front();
  state_->free.pop_front();
  return workspace;
}

void WorkspacePool::checkin(EngineWorkspace* workspace) {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->free.push_back(workspace);
  }
  state_->available_cv.notify_one();
}

namespace {

std::uint64_t fnv1a(const std::vector<std::int64_t>& values) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const std::int64_t value : values) {
    std::uint64_t word = static_cast<std::uint64_t>(value);
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (word >> (8 * byte)) & 0xffu;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

CellResult run_cell(const CampaignCell& cell,
                    const ScenarioRegistry& scenarios,
                    const AlgorithmRegistry& algorithms,
                    EngineWorkspace* workspace,
                    const CampaignOptions& options) {
  CellResult result;
  result.cell = cell;
  // Cells with an explicit network keep it; default-sync cells inherit the
  // campaign-wide delivery layer. The effective network is written back so
  // every artifact (CSV, JSON, shard manifests) reports what actually ran.
  if (cell.network == NetworkOptions{})
    result.cell.network = options.network;
  const auto start = std::chrono::steady_clock::now();
  try {
    Graph graph = scenarios.build(cell.scenario, cell.params, cell.seed);
    const Instance instance =
        make_instance(std::move(graph), cell.identities, cell.seed);
    result.nodes = instance.num_nodes();
    result.edges = instance.graph.num_edges();
    AlgorithmRunContext context;
    context.seed = cell.seed;
    context.workspace = workspace;
    context.kernel_mode = options.kernel_mode;
    context.network = result.cell.network;
    // The large-cell policy: big instances get engine threads (the engine
    // is thread-count invariant, so the outputs stay bit-identical).
    if (options.engine_threads_for_large_cells > 1 &&
        instance.num_nodes() >= options.large_cell_node_threshold)
      context.engine_threads = options.engine_threads_for_large_cells;
    CellOutcome outcome =
        algorithms.run(cell.algorithm, instance, context);
    result.rounds = outcome.rounds;
    result.solved = outcome.solved;
    result.stats = outcome.stats;
    result.valid = outcome.solved &&
                   algorithms.problem(cell.algorithm)
                       .check(instance, outcome.outputs);
    result.output_hash = fnv1a(outcome.outputs);
    if (options.keep_outputs) result.outputs = std::move(outcome.outputs);
  } catch (const std::exception& e) {
    result.error = e.what();
  } catch (...) {
    result.error = "unknown error";
  }
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

/// Publishes one finished cell into the installed metrics registry (a
/// single null check when none is installed); all counters sum and the
/// histograms merge bucket-wise, so the snapshot is worker-placement
/// invariant.
void publish_cell_metrics(const CellResult& cell) {
  telemetry::MetricsRegistry* reg = telemetry::metrics();
  if (reg == nullptr) return;
  reg->add("campaign.cells", 1);
  if (!cell.error.empty()) {
    reg->add("campaign.cells_failed", 1);
    return;
  }
  if (cell.solved) reg->add("campaign.cells_solved", 1);
  if (cell.valid) reg->add("campaign.cells_valid", 1);
  reg->observe("campaign.cell_rounds", cell.rounds);
  reg->observe("campaign.cell_messages", cell.stats.total_messages);
}

/// The per-cell span run_campaign records when a trace is attached:
/// registry keys, seed, and grid index ride along as args so Perfetto
/// queries can slice by any grid dimension.
telemetry::TraceEvent make_cell_span(const CellResult& cell,
                                     std::size_t grid_index,
                                     const CampaignOptions& options,
                                     int tid, std::int64_t t0,
                                     std::int64_t t1) {
  telemetry::TraceEvent span;
  span.name = "cell";
  span.ts = t0;
  span.dur = t1 - t0;
  span.pid = options.trace_pid;
  span.tid = tid;
  span.arg("index", static_cast<std::int64_t>(grid_index));
  span.arg("scenario", cell.cell.scenario);
  span.arg("algorithm", cell.cell.algorithm);
  span.arg("seed", cell.cell.seed);
  span.arg("n", static_cast<std::int64_t>(cell.cell.params.n));
  span.arg("network", std::string(network_spec_name(cell.cell.network)));
  span.arg("rounds", cell.rounds);
  span.arg("solved", cell.solved);
  span.arg("valid", cell.valid);
  if (!cell.error.empty()) span.arg("error", cell.error);
  return span;
}

}  // namespace

CampaignPercentiles campaign_percentiles(std::vector<double> values) {
  CampaignPercentiles result;
  if (values.empty()) return result;
  std::sort(values.begin(), values.end());
  const auto nearest_rank = [&values](double q) {
    const auto n = static_cast<double>(values.size());
    const auto rank = static_cast<std::size_t>(std::ceil(q * n));
    return values[std::min(values.size() - 1, rank == 0 ? 0 : rank - 1)];
  };
  result.p50 = nearest_rank(0.50);
  result.p90 = nearest_rank(0.90);
  result.p99 = nearest_rank(0.99);
  result.max = values.back();
  return result;
}

namespace {

CampaignPercentiles percentiles(std::vector<double> values) {
  return campaign_percentiles(std::move(values));
}

}  // namespace

const char* identity_scheme_name(IdentityScheme scheme) {
  switch (scheme) {
    case IdentityScheme::kSequential:
      return "sequential";
    case IdentityScheme::kRandomPermuted:
      return "random-permuted";
    case IdentityScheme::kRandomSparse:
      return "random-sparse";
  }
  return "?";
}

IdentityScheme parse_identity_scheme(const std::string& name) {
  for (const IdentityScheme scheme :
       {IdentityScheme::kSequential, IdentityScheme::kRandomPermuted,
        IdentityScheme::kRandomSparse}) {
    if (name == identity_scheme_name(scheme)) return scheme;
  }
  throw std::runtime_error("unknown identity scheme: " + name);
}

// --- campaign driver --------------------------------------------------------

void finalize_campaign_aggregates(CampaignResult& result) {
  result.solved = 0;
  result.valid = 0;
  result.failed = 0;
  result.cells_per_second =
      result.elapsed_seconds > 0.0
          ? static_cast<double>(result.cells.size()) / result.elapsed_seconds
          : 0.0;
  std::vector<double> rounds;
  std::vector<double> messages;
  std::vector<double> steps_per_second;
  std::vector<double> peak_live;
  std::vector<double> peak_frontier;
  std::vector<double> dirty_cleared;
  std::vector<double> kernel_steps;
  std::vector<double> vtable_steps;
  std::vector<double> batched_steps;
  std::vector<double> batch_occupancy;
  std::vector<double> dropped;
  std::vector<double> duplicated;
  std::vector<double> delivery_skew;
  for (const CellResult& cell : result.cells) {
    if (!cell.error.empty()) {
      ++result.failed;
      continue;
    }
    if (!cell.solved) continue;
    ++result.solved;
    if (cell.valid) ++result.valid;
    rounds.push_back(static_cast<double>(cell.rounds));
    messages.push_back(static_cast<double>(cell.stats.total_messages));
    if (cell.stats.steps_per_second > 0.0)
      steps_per_second.push_back(cell.stats.steps_per_second);
    peak_live.push_back(static_cast<double>(cell.stats.peak_live_nodes));
    peak_frontier.push_back(
        static_cast<double>(cell.stats.peak_frontier_nodes));
    dirty_cleared.push_back(
        static_cast<double>(cell.stats.dirty_spans_cleared));
    kernel_steps.push_back(static_cast<double>(cell.stats.kernel_steps));
    vtable_steps.push_back(static_cast<double>(cell.stats.vtable_steps));
    batched_steps.push_back(
        static_cast<double>(cell.stats.kernel_batched_steps));
    if (cell.stats.kernel_batch_calls > 0)
      batch_occupancy.push_back(
          static_cast<double>(cell.stats.kernel_batched_steps) /
          static_cast<double>(cell.stats.kernel_batch_calls));
    dropped.push_back(static_cast<double>(cell.stats.messages_dropped));
    duplicated.push_back(static_cast<double>(cell.stats.messages_duplicated));
    delivery_skew.push_back(
        static_cast<double>(cell.stats.max_delivery_skew));
  }
  result.rounds = percentiles(std::move(rounds));
  result.messages = percentiles(std::move(messages));
  result.steps_per_second = percentiles(std::move(steps_per_second));
  result.peak_live_nodes = percentiles(std::move(peak_live));
  result.peak_frontier_nodes = percentiles(std::move(peak_frontier));
  result.dirty_spans_cleared = percentiles(std::move(dirty_cleared));
  result.kernel_steps = percentiles(std::move(kernel_steps));
  result.vtable_steps = percentiles(std::move(vtable_steps));
  result.kernel_batched_steps = percentiles(std::move(batched_steps));
  result.kernel_batch_occupancy = percentiles(std::move(batch_occupancy));
  result.messages_dropped = percentiles(std::move(dropped));
  result.messages_duplicated = percentiles(std::move(duplicated));
  result.max_delivery_skew = percentiles(std::move(delivery_skew));
}

CampaignResult run_campaign(const std::vector<CampaignCell>& cells,
                            const CampaignOptions& options) {
  const ScenarioRegistry& scenarios =
      options.scenarios != nullptr ? *options.scenarios
                                   : default_scenarios();
  const AlgorithmRegistry& algorithms =
      options.algorithms != nullptr ? *options.algorithms
                                    : default_algorithm_registry();

  std::optional<ThreadPool> owned_pool;
  ThreadPool* pool = options.pool;
  if (pool == nullptr)
    pool = &owned_pool.emplace(std::max(1, options.workers));

  if (options.kernel_mode == KernelMode::kOn)
    validate_kernel_lowering(cells, algorithms);

  CampaignResult result;
  result.workers = pool->threads();
  result.cells.resize(cells.size());
  WorkspacePool workspaces(pool->threads());

  const auto start = std::chrono::steady_clock::now();
  pool->run(static_cast<int>(cells.size()), [&](int i) {
    const WorkspacePool::Lease lease(workspaces);
    const std::size_t ci = static_cast<std::size_t>(i);
    if (options.trace == nullptr) {
      result.cells[ci] =
          run_cell(cells[ci], scenarios, algorithms, lease.get(), options);
      publish_cell_metrics(result.cells[ci]);
      return;
    }
    // Bind the recorder around the cell so the engine's ambient per-round
    // events land on this worker's lane, then wrap the cell in a span.
    telemetry::TraceBinding binding;
    binding.recorder = options.trace;
    binding.pid = options.trace_pid;
    binding.tid = options.trace->lane();
    binding.trace_rounds = options.trace_rounds;
    const telemetry::ScopedTraceBinding bound(binding);
    const std::int64_t t0 = options.trace->now();
    result.cells[ci] =
        run_cell(cells[ci], scenarios, algorithms, lease.get(), options);
    const std::int64_t t1 = options.trace->now();
    const std::size_t grid_index =
        options.trace_cell_indices != nullptr &&
                ci < options.trace_cell_indices->size()
            ? (*options.trace_cell_indices)[ci]
            : ci;
    options.trace->record(make_cell_span(result.cells[ci], grid_index,
                                         options, binding.tid, t0, t1));
    publish_cell_metrics(result.cells[ci]);
  });
  result.elapsed_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
  finalize_campaign_aggregates(result);
  return result;
}

namespace {

/// Formats "kind [a, b]" when `keys` is non-empty.
void describe_unknown(std::string& message, const char* kind,
                      const std::set<std::string>& keys) {
  if (keys.empty()) return;
  if (!message.empty()) message += "; ";
  message += kind;
  message += " [";
  bool first = true;
  for (const std::string& key : keys) {
    if (!first) message += ", ";
    first = false;
    message += key;
  }
  message += "]";
}

void throw_on_unknown_keys(const std::set<std::string>& scenario_keys,
                           const std::set<std::string>& algorithm_keys) {
  if (scenario_keys.empty() && algorithm_keys.empty()) return;
  std::string message;
  describe_unknown(message, "scenarios", scenario_keys);
  describe_unknown(message, "algorithms", algorithm_keys);
  throw std::runtime_error("unknown campaign keys: " + message);
}

}  // namespace

void validate_cells(const std::vector<CampaignCell>& cells,
                    const ScenarioRegistry& scenarios,
                    const AlgorithmRegistry& algorithms) {
  std::set<std::string> unknown_scenarios;
  std::set<std::string> unknown_algorithms;
  for (const CampaignCell& cell : cells) {
    if (!scenarios.contains(cell.scenario))
      unknown_scenarios.insert(cell.scenario);
    if (!algorithms.contains(cell.algorithm))
      unknown_algorithms.insert(cell.algorithm);
  }
  throw_on_unknown_keys(unknown_scenarios, unknown_algorithms);
}

void validate_kernel_lowering(const std::vector<CampaignCell>& cells,
                              const AlgorithmRegistry& algorithms) {
  std::set<std::string> unlowered;
  for (const CampaignCell& cell : cells) {
    if (algorithms.contains(cell.algorithm) &&
        !algorithms.spec(cell.algorithm).kernel_lowered)
      unlowered.insert(cell.algorithm);
  }
  if (unlowered.empty()) return;
  std::string message;
  describe_unknown(message, "algorithms", unlowered);
  throw std::runtime_error("kernel mode 'on' requires lowered pipelines: " +
                           message);
}

std::vector<CampaignCell> make_grid(
    const std::vector<std::string>& scenarios, const ScenarioParams& params,
    const std::vector<std::string>& algorithms, int seeds_per_combination,
    const GridOptions& options) {
  std::vector<CampaignCell> cells;
  cells.reserve(scenarios.size() * algorithms.size() *
                static_cast<std::size_t>(std::max(0, seeds_per_combination)));
  // The delivery layer is a grid dimension like the scenario families:
  // every combination is emitted once per requested network (sync when
  // none were requested).
  const std::vector<NetworkOptions> networks =
      options.networks.empty() ? std::vector<NetworkOptions>{NetworkOptions{}}
                               : options.networks;
  for (const std::string& scenario : scenarios) {
    for (const std::string& algorithm : algorithms) {
      for (const NetworkOptions& network : networks) {
        for (int s = 0; s < seeds_per_combination; ++s) {
          CampaignCell cell;
          cell.scenario = scenario;
          cell.params = params;
          cell.algorithm = algorithm;
          cell.seed = options.base_seed + static_cast<std::uint64_t>(s);
          cell.network = network;
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  if (options.validate) {
    // All unknown keys in one error instead of N identical per-cell
    // failures at run time.
    validate_cells(cells,
                   options.scenarios != nullptr ? *options.scenarios
                                                : default_scenarios(),
                   options.algorithms != nullptr
                       ? *options.algorithms
                       : default_algorithm_registry());
  }
  return cells;
}

std::vector<CampaignCell> make_grid(
    const std::vector<std::string>& scenarios, const ScenarioParams& params,
    const std::vector<std::string>& algorithms, int seeds_per_combination,
    std::uint64_t base_seed) {
  GridOptions options;
  options.base_seed = base_seed;
  return make_grid(scenarios, params, algorithms, seeds_per_combination,
                   options);
}

std::vector<CampaignCell> make_table1_grid(const ScenarioParams& params,
                                           int seeds_per_combination,
                                           const GridOptions& options) {
  const AlgorithmRegistry& algorithms =
      options.algorithms != nullptr ? *options.algorithms
                                    : default_algorithm_registry();
  GridOptions row_options = options;
  row_options.algorithms = &algorithms;
  std::vector<CampaignCell> cells;
  for (const std::string& name : algorithms.names()) {
    const std::vector<CampaignCell> row =
        make_grid(algorithms.spec(name).table1_scenarios, params, {name},
                  seeds_per_combination, row_options);
    cells.insert(cells.end(), row.begin(), row.end());
  }
  return cells;
}

// --- output -----------------------------------------------------------------

namespace {

/// RFC-4180 style: fields containing a comma, quote, or newline are quoted
/// with inner quotes doubled (registered names are free text).
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string result = "\"";
  for (const char c : field) {
    if (c == '"') result += '"';
    result += c;
  }
  result += '"';
  return result;
}

}  // namespace

void write_campaign_csv(std::ostream& out, const CampaignResult& result) {
  out << "scenario,n,a,b,algorithm,seed,identities,network,drop,duplicate,"
         "crash,late,nodes,edges,rounds,"
         "solved,valid,seconds,messages,peak_round_messages,steps,"
         "kernel_steps,vtable_steps,kernel_batched_steps,kernel_batch_calls,"
         "steps_per_sec,arena_bytes,peak_live_nodes,peak_frontier_nodes,"
         "dirty_spans_cleared,messages_dropped,messages_duplicated,"
         "max_delivery_skew,output_hash,error\n";
  for (const CellResult& cell : result.cells) {
    out << csv_escape(cell.cell.scenario) << ',' << cell.cell.params.n << ','
        << cell.cell.params.a << ',' << cell.cell.params.b << ','
        << csv_escape(cell.cell.algorithm) << ',' << cell.cell.seed << ','
        << identity_scheme_name(cell.cell.identities) << ','
        << network_spec_name(cell.cell.network) << ','
        << cell.cell.network.drop << ',' << cell.cell.network.duplicate << ','
        << cell.cell.network.crash << ',' << cell.cell.network.late << ','
        << cell.nodes
        << ',' << cell.edges << ',' << cell.rounds << ','
        << (cell.solved ? 1 : 0) << ',' << (cell.valid ? 1 : 0) << ','
        << cell.seconds << ',' << cell.stats.total_messages << ','
        << cell.stats.peak_round_messages << ',' << cell.stats.total_steps
        << ',' << cell.stats.kernel_steps << ',' << cell.stats.vtable_steps
        << ',' << cell.stats.kernel_batched_steps << ','
        << cell.stats.kernel_batch_calls
        << ',' << cell.stats.steps_per_second << ','
        << cell.stats.arena_bytes << ',' << cell.stats.peak_live_nodes << ','
        << cell.stats.peak_frontier_nodes << ','
        << cell.stats.dirty_spans_cleared << ','
        << cell.stats.messages_dropped << ','
        << cell.stats.messages_duplicated << ','
        << cell.stats.max_delivery_skew << ',' << cell.output_hash << ','
        << csv_escape(cell.error) << '\n';
  }
}

void write_supervision_csv(std::ostream& out,
                           const SupervisionSummary& summary) {
  out << "shard,completed,from_journal,attempts,retries,"
         "stragglers_respawned,total_attempt_seconds,attempts_killed\n";
  for (const ShardSupervisionRow& row : summary.rows) {
    int killed = 0;
    for (const ShardAttemptTiming& at : row.attempt_log)
      if (at.killed) ++killed;
    out << row.shard_index << ',' << (row.completed ? 1 : 0) << ','
        << (row.from_journal ? 1 : 0) << ',' << row.attempts << ','
        << row.retries << ',' << row.stragglers_respawned << ','
        << row.total_attempt_seconds << ',' << killed << '\n';
  }
}

namespace {

void write_percentiles_json(std::ostream& out, const char* key,
                            const CampaignPercentiles& p) {
  out << '"' << key << "\":{\"p50\":" << p.p50 << ",\"p90\":" << p.p90
      << ",\"p99\":" << p.p99 << ",\"max\":" << p.max << '}';
}

}  // namespace

void write_campaign_json(std::ostream& out, const CampaignResult& result,
                         const CampaignJsonOptions& options) {
  out << '{';
  if (!options.canonical) {
    // Timing- and scheduling-dependent summary fields: meaningful for a
    // report, poison for a byte-level diff across shardings.
    out << "\"workers\":" << result.workers << ',';
  }
  out << "\"cells\":" << result.cells.size() << ",\"solved\":" << result.solved
      << ",\"valid\":" << result.valid << ",\"failed\":" << result.failed
      << ',';
  if (!options.canonical) {
    out << "\"elapsed_seconds\":" << result.elapsed_seconds
        << ",\"cells_per_second\":" << result.cells_per_second << ',';
  }
  write_percentiles_json(out, "rounds", result.rounds);
  out << ',';
  write_percentiles_json(out, "messages", result.messages);
  out << ',';
  if (!options.canonical) {
    write_percentiles_json(out, "steps_per_second", result.steps_per_second);
    out << ',';
  }
  write_percentiles_json(out, "peak_live_nodes", result.peak_live_nodes);
  out << ',';
  write_percentiles_json(out, "peak_frontier_nodes",
                         result.peak_frontier_nodes);
  out << ',';
  write_percentiles_json(out, "dirty_spans_cleared",
                         result.dirty_spans_cleared);
  if (!options.canonical) {
    // The kernel/vtable split depends on CampaignOptions::kernel_mode, not
    // the grid: the same grid under --kernel=off and --kernel=auto must
    // stay byte-identical in canonical mode (outputs are).
    out << ',';
    write_percentiles_json(out, "kernel_steps", result.kernel_steps);
    out << ',';
    write_percentiles_json(out, "vtable_steps", result.vtable_steps);
    out << ',';
    write_percentiles_json(out, "kernel_batched_steps",
                           result.kernel_batched_steps);
    out << ',';
    write_percentiles_json(out, "kernel_batch_occupancy",
                           result.kernel_batch_occupancy);
    // The fault counters are delivery-layer telemetry, not grid identity:
    // like the kernel/vtable split they stay out of canonical mode, which
    // describes only what the grid deterministically computes (outputs,
    // rounds, verdicts) — properties Observation 2.1 keeps invariant under
    // the delivery layer whenever every message eventually arrives.
    out << ',';
    write_percentiles_json(out, "messages_dropped", result.messages_dropped);
    out << ',';
    write_percentiles_json(out, "messages_duplicated",
                           result.messages_duplicated);
    out << ',';
    write_percentiles_json(out, "max_delivery_skew",
                           result.max_delivery_skew);
    if (result.supervision.enabled) {
      // Supervision history describes the worker processes, not the grid:
      // a retried shard computed the same bytes as a first-try one, so —
      // like the kernel/vtable split — it stays out of canonical mode.
      const SupervisionSummary& sup = result.supervision;
      out << ",\"supervision\":{\"shards\":" << sup.shards
          << ",\"attempts\":" << sup.attempts << ",\"retries\":" << sup.retries
          << ",\"requeues\":" << sup.requeues
          << ",\"stragglers_respawned\":" << sup.stragglers_respawned
          << ",\"shards_from_journal\":" << sup.shards_from_journal
          << ",\"attempts_killed\":" << sup.attempts_killed
          << ",\"shards_failed\":" << sup.shards_failed << ',';
      write_percentiles_json(out, "attempt_seconds", sup.attempt_seconds);
      out << ",\"per_shard\":[";
      for (std::size_t i = 0; i < sup.rows.size(); ++i) {
        const ShardSupervisionRow& row = sup.rows[i];
        if (i != 0) out << ',';
        out << "{\"shard\":" << row.shard_index
            << ",\"completed\":" << (row.completed ? "true" : "false")
            << ",\"from_journal\":" << (row.from_journal ? "true" : "false")
            << ",\"attempts\":" << row.attempts
            << ",\"retries\":" << row.retries
            << ",\"stragglers_respawned\":" << row.stragglers_respawned
            << ",\"total_attempt_seconds\":" << row.total_attempt_seconds;
        // Per-attempt timing (PR 10): start/end relative to supervision
        // start plus the kill flag, so a killed straggler's timeline is
        // reconstructable without the live trace.
        out << ",\"attempt_log\":[";
        for (std::size_t a = 0; a < row.attempt_log.size(); ++a) {
          const ShardAttemptTiming& at = row.attempt_log[a];
          if (a != 0) out << ',';
          out << "{\"attempt\":" << at.attempt
              << ",\"speculative\":" << (at.speculative ? "true" : "false")
              << ",\"start_seconds\":" << at.start_seconds
              << ",\"end_seconds\":" << at.end_seconds
              << ",\"killed\":" << (at.killed ? "true" : "false")
              << ",\"outcome\":\"" << json::escape(at.outcome) << "\"}";
        }
        out << "]}";
      }
      out << "]}";
    }
  }
  out << ",\"cell_results\":[";
  bool first = true;
  for (const CellResult& cell : result.cells) {
    if (!first) out << ',';
    first = false;
    out << "{\"scenario\":\"" << json::escape(cell.cell.scenario)
        << "\",\"n\":" << cell.cell.params.n << ",\"a\":" << cell.cell.params.a
        << ",\"b\":" << cell.cell.params.b << ",\"algorithm\":\""
        << json::escape(cell.cell.algorithm)
        << "\",\"seed\":" << cell.cell.seed << ",\"identities\":\""
        << identity_scheme_name(cell.cell.identities)
        // The delivery layer is part of the cell's identity (canonical
        // included): the same cell under a different network is a different
        // deterministic experiment.
        << "\",\"network\":\"" << network_spec_name(cell.cell.network)
        << "\",\"drop\":" << cell.cell.network.drop
        << ",\"duplicate\":" << cell.cell.network.duplicate
        << ",\"crash\":" << cell.cell.network.crash
        << ",\"late\":" << cell.cell.network.late
        << ",\"nodes\":" << cell.nodes << ",\"edges\":" << cell.edges
        << ",\"rounds\":" << cell.rounds
        << ",\"solved\":" << (cell.solved ? "true" : "false")
        << ",\"valid\":" << (cell.valid ? "true" : "false");
    if (!options.canonical) out << ",\"seconds\":" << cell.seconds;
    out << ",\"messages\":" << cell.stats.total_messages
        << ",\"steps\":" << cell.stats.total_steps;
    if (!options.canonical)
      out << ",\"kernel_steps\":" << cell.stats.kernel_steps
          << ",\"vtable_steps\":" << cell.stats.vtable_steps
          << ",\"kernel_batched_steps\":" << cell.stats.kernel_batched_steps
          << ",\"kernel_batch_calls\":" << cell.stats.kernel_batch_calls
          << ",\"messages_dropped\":" << cell.stats.messages_dropped
          << ",\"messages_duplicated\":" << cell.stats.messages_duplicated
          << ",\"max_delivery_skew\":" << cell.stats.max_delivery_skew;
    if (!options.canonical) {
      // steps/sec is wall-clock; arena_bytes is the workspace's *capacity*,
      // which depends on what the reused workspace ran before this cell.
      out << ",\"steps_per_sec\":" << cell.stats.steps_per_second
          << ",\"arena_bytes\":" << cell.stats.arena_bytes;
    }
    out << ",\"peak_live_nodes\":" << cell.stats.peak_live_nodes
        << ",\"peak_frontier_nodes\":" << cell.stats.peak_frontier_nodes
        << ",\"dirty_spans_cleared\":" << cell.stats.dirty_spans_cleared
        << ",\"output_hash\":\"" << cell.output_hash << "\",\"error\":\""
        << json::escape(cell.error) << "\"}";
  }
  out << "]}";
}

void write_campaign_json(std::ostream& out, const CampaignResult& result) {
  write_campaign_json(out, result, CampaignJsonOptions{});
}

}  // namespace unilocal
