#include "src/runtime/instance.h"

#include <algorithm>
#include <mutex>
#include <unordered_set>

namespace unilocal {

const CsrGraph& Instance::csr() const {
  // One process-wide mutex serializes cache fills; builds happen once per
  // topology, so contention is a non-issue and every read stays safe when
  // several threads race the first run_local over one Instance.
  static std::mutex build_mutex;
  std::lock_guard<std::mutex> lock(build_mutex);
  if (!csr_cache_) csr_cache_ = std::make_shared<CsrGraph>(graph);
  return *csr_cache_;
}

std::int64_t Instance::max_identity() const {
  std::int64_t best = 0;
  for (std::int64_t id : identities) best = std::max(best, id);
  return best;
}

bool Instance::valid() const {
  const std::size_t n = static_cast<std::size_t>(graph.num_nodes());
  if (identities.size() != n || inputs.size() != n) return false;
  std::unordered_set<std::int64_t> seen;
  for (std::int64_t id : identities) {
    if (id < 0 || id >= (std::int64_t{1} << 31)) return false;
    if (!seen.insert(id).second) return false;
  }
  return graph.valid();
}

Instance make_instance(Graph g, IdentityScheme scheme, std::uint64_t seed) {
  Instance instance;
  const NodeId n = g.num_nodes();
  instance.graph = std::move(g);
  instance.identities.resize(static_cast<std::size_t>(n));
  instance.inputs.assign(static_cast<std::size_t>(n), {});
  Rng rng(seed);
  switch (scheme) {
    case IdentityScheme::kSequential:
      for (NodeId v = 0; v < n; ++v)
        instance.identities[static_cast<std::size_t>(v)] = v + 1;
      break;
    case IdentityScheme::kRandomPermuted: {
      auto perm = random_permutation(static_cast<std::size_t>(n), rng);
      for (NodeId v = 0; v < n; ++v)
        instance.identities[static_cast<std::size_t>(v)] =
            perm[static_cast<std::size_t>(v)] + 1;
      break;
    }
    case IdentityScheme::kRandomSparse: {
      std::unordered_set<std::int64_t> used;
      for (NodeId v = 0; v < n; ++v) {
        std::int64_t id = 0;
        do {
          id = static_cast<std::int64_t>(rng.next_below(std::uint64_t{1} << 31));
        } while (id == 0 || !used.insert(id).second);
        instance.identities[static_cast<std::size_t>(v)] = id;
      }
      break;
    }
  }
  return instance;
}

Instance restrict_instance(const Instance& instance, const InducedSubgraph& sub,
                           const std::vector<Input>& new_inputs) {
  Instance result;
  result.graph = sub.graph;
  const std::size_t kept = sub.to_old.size();
  result.identities.resize(kept);
  result.inputs.resize(kept);
  for (std::size_t i = 0; i < kept; ++i) {
    const std::size_t old_v = static_cast<std::size_t>(sub.to_old[i]);
    result.identities[i] = instance.identities[old_v];
    result.inputs[i] = new_inputs[old_v];
  }
  return result;
}

}  // namespace unilocal
