#include "src/runtime/run_log.h"

#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace unilocal {

namespace {

void hash_word(std::uint64_t& hash, std::uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (word >> (8 * byte)) & 0xffu;
    hash *= 1099511628211ULL;
  }
}

void hash_string(std::uint64_t& hash, const std::string& text) {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  hash_word(hash, text.size());  // length-delimited: "ab"+"c" != "a"+"bc"
}

void write_percentiles(std::ostream& out, const char* key,
                       const CampaignPercentiles& p) {
  out << '"' << key << "\":{\"p50\":" << p.p50 << ",\"p90\":" << p.p90
      << ",\"p99\":" << p.p99 << ",\"max\":" << p.max << '}';
}

/// Finds `"key":` at top level of the line and parses the number after it
/// (tolerates a quoted value — grid_hash is written as a string so 64-bit
/// values survive tools that read JSON numbers as doubles).
bool find_number(const std::string& line, const std::string& key,
                 std::size_t from, double& value) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle, from);
  if (at == std::string::npos) return false;
  std::size_t cursor = at + needle.size();
  if (cursor < line.size() && line[cursor] == '"') ++cursor;
  try {
    value = std::stod(line.substr(cursor));
  } catch (...) {
    return false;
  }
  return true;
}

bool find_u64(const std::string& line, const std::string& key,
              std::uint64_t& value) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle, 0);
  if (at == std::string::npos) return false;
  std::size_t cursor = at + needle.size();
  if (cursor < line.size() && line[cursor] == '"') ++cursor;
  try {
    value = std::stoull(line.substr(cursor));
  } catch (...) {
    return false;
  }
  return true;
}

bool find_percentiles(const std::string& line, const std::string& key,
                      CampaignPercentiles& p) {
  const std::string needle = "\"" + key + "\":{";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t from = at + needle.size();
  return find_number(line, "p50", from, p.p50) &&
         find_number(line, "p90", from, p.p90) &&
         find_number(line, "p99", from, p.p99) &&
         find_number(line, "max", from, p.max);
}

bool parse_entry(const std::string& line, RunLogEntry& entry) {
  const std::size_t date_at = line.find("\"date\":\"");
  if (date_at == std::string::npos) return false;
  const std::size_t date_from = date_at + 8;
  const std::size_t date_to = line.find('"', date_from);
  if (date_to == std::string::npos) return false;
  entry.date = line.substr(date_from, date_to - date_from);

  double workers = 0, cells = 0, solved = 0, valid = 0, failed = 0;
  if (!find_u64(line, "grid_hash", entry.grid_hash) ||
      !find_number(line, "workers", 0, workers) ||
      !find_number(line, "cells", 0, cells) ||
      !find_number(line, "solved", 0, solved) ||
      !find_number(line, "valid", 0, valid) ||
      !find_number(line, "failed", 0, failed) ||
      !find_number(line, "elapsed_seconds", 0, entry.elapsed_seconds) ||
      !find_number(line, "cells_per_second", 0, entry.cells_per_second) ||
      !find_percentiles(line, "rounds", entry.rounds) ||
      !find_percentiles(line, "messages", entry.messages) ||
      !find_percentiles(line, "steps_per_second", entry.steps_per_second))
    return false;
  entry.workers = static_cast<int>(workers);
  entry.cells = static_cast<int>(cells);
  entry.solved = static_cast<int>(solved);
  entry.valid = static_cast<int>(valid);
  entry.failed = static_cast<int>(failed);
  return true;
}

double ratio(double current, double baseline) {
  return baseline > 0.0 ? current / baseline : 0.0;
}

}  // namespace

std::uint64_t campaign_grid_hash(const CampaignResult& result) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const CellResult& cell : result.cells) {
    hash_string(hash, cell.cell.scenario);
    hash_word(hash, static_cast<std::uint64_t>(cell.cell.params.n));
    // Knob doubles hashed bit-exactly (they come from CLI parsing, not
    // arithmetic, so bit equality is the right notion of "same grid").
    double a = cell.cell.params.a;
    double b = cell.cell.params.b;
    std::uint64_t word = 0;
    static_assert(sizeof(word) == sizeof(a));
    std::memcpy(&word, &a, sizeof(word));
    hash_word(hash, word);
    std::memcpy(&word, &b, sizeof(word));
    hash_word(hash, word);
    hash_string(hash, cell.cell.algorithm);
    hash_word(hash, cell.cell.seed);
    hash_word(hash, static_cast<std::uint64_t>(cell.cell.identities));
  }
  return hash;
}

RunLogEntry make_run_log_entry(const CampaignResult& result) {
  RunLogEntry entry;
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  entry.date = buffer;
  entry.grid_hash = campaign_grid_hash(result);
  entry.workers = result.workers;
  entry.cells = static_cast<int>(result.cells.size());
  entry.solved = result.solved;
  entry.valid = result.valid;
  entry.failed = result.failed;
  entry.elapsed_seconds = result.elapsed_seconds;
  entry.cells_per_second = result.cells_per_second;
  entry.rounds = result.rounds;
  entry.messages = result.messages;
  entry.steps_per_second = result.steps_per_second;
  return entry;
}

void append_run_log(const std::string& path, const CampaignResult& result) {
  const RunLogEntry entry = make_run_log_entry(result);
  std::ofstream out(path, std::ios::app);
  if (!out) throw std::runtime_error("cannot open run log: " + path);
  out << "{\"date\":\"" << entry.date << "\",\"grid_hash\":\""
      << entry.grid_hash << "\",\"workers\":" << entry.workers
      << ",\"cells\":" << entry.cells << ",\"solved\":" << entry.solved
      << ",\"valid\":" << entry.valid << ",\"failed\":" << entry.failed
      << ",\"elapsed_seconds\":" << entry.elapsed_seconds
      << ",\"cells_per_second\":" << entry.cells_per_second << ',';
  write_percentiles(out, "rounds", entry.rounds);
  out << ',';
  write_percentiles(out, "messages", entry.messages);
  out << ',';
  write_percentiles(out, "steps_per_second", entry.steps_per_second);
  out << "}\n";
}

std::vector<RunLogEntry> read_run_log(const std::string& path) {
  std::vector<RunLogEntry> entries;
  std::ifstream in(path);
  if (!in) return entries;
  std::string line;
  while (std::getline(in, line)) {
    RunLogEntry entry;
    if (parse_entry(line, entry)) entries.push_back(std::move(entry));
  }
  return entries;
}

RunLogComparison compare_run_log(const std::string& path,
                                 const CampaignResult& result) {
  RunLogComparison comparison;
  const std::uint64_t hash = campaign_grid_hash(result);
  for (const RunLogEntry& entry : read_run_log(path)) {
    if (entry.grid_hash != hash) continue;
    // Runs with failed cells have degenerate percentiles (they cover only
    // the surviving cells) — recorded for the audit trail, never used as a
    // perf baseline.
    if (entry.failed > 0) continue;
    comparison.found = true;
    comparison.baseline = entry;  // keep scanning: latest match wins
  }
  if (!comparison.found) return comparison;
  const RunLogEntry& baseline = comparison.baseline;
  comparison.rounds_p50_ratio = ratio(result.rounds.p50, baseline.rounds.p50);
  comparison.messages_p50_ratio =
      ratio(result.messages.p50, baseline.messages.p50);
  comparison.steps_per_second_p50_ratio =
      ratio(result.steps_per_second.p50, baseline.steps_per_second.p50);
  comparison.cells_per_second_ratio =
      ratio(result.cells_per_second, baseline.cells_per_second);
  comparison.elapsed_ratio =
      ratio(result.elapsed_seconds, baseline.elapsed_seconds);
  return comparison;
}

}  // namespace unilocal
