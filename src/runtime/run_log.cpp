#include "src/runtime/run_log.h"

#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/util/json.h"

namespace unilocal {

namespace {

void hash_word(std::uint64_t& hash, std::uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (word >> (8 * byte)) & 0xffu;
    hash *= 1099511628211ULL;
  }
}

void hash_string(std::uint64_t& hash, const std::string& text) {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  hash_word(hash, text.size());  // length-delimited: "ab"+"c" != "a"+"bc"
}

void write_percentiles(std::ostream& out, const char* key,
                       const CampaignPercentiles& p) {
  out << '"' << key << "\":{\"p50\":" << p.p50 << ",\"p90\":" << p.p90
      << ",\"p99\":" << p.p99 << ",\"max\":" << p.max << '}';
}

CampaignPercentiles parse_percentiles(const json::Value& value) {
  CampaignPercentiles p;
  p.p50 = value.at("p50").as_double();
  p.p90 = value.at("p90").as_double();
  p.p99 = value.at("p99").as_double();
  p.max = value.at("max").as_double();
  return p;
}

/// Telemetry blocks are newer than the log format; absent means zero.
CampaignPercentiles parse_optional_percentiles(const json::Value& root,
                                               const char* key) {
  const json::Value* value = root.find(key);
  return value != nullptr ? parse_percentiles(*value) : CampaignPercentiles{};
}

bool parse_entry(const std::string& line, RunLogEntry& entry) {
  try {
    const json::Value root = json::Value::parse(line);
    entry.date = root.at("date").as_string();
    entry.grid_hash = json::u64_field(root.at("grid_hash"));
    entry.workers = static_cast<int>(root.at("workers").as_i64());
    entry.cells = static_cast<int>(root.at("cells").as_i64());
    entry.solved = static_cast<int>(root.at("solved").as_i64());
    entry.valid = static_cast<int>(root.at("valid").as_i64());
    entry.failed = static_cast<int>(root.at("failed").as_i64());
    entry.elapsed_seconds = root.at("elapsed_seconds").as_double();
    entry.cells_per_second = root.at("cells_per_second").as_double();
    entry.rounds = parse_percentiles(root.at("rounds"));
    entry.messages = parse_percentiles(root.at("messages"));
    entry.steps_per_second = parse_percentiles(root.at("steps_per_second"));
    entry.peak_live_nodes =
        parse_optional_percentiles(root, "peak_live_nodes");
    entry.peak_frontier_nodes =
        parse_optional_percentiles(root, "peak_frontier_nodes");
    entry.dirty_spans_cleared =
        parse_optional_percentiles(root, "dirty_spans_cleared");
    entry.kernel_steps = parse_optional_percentiles(root, "kernel_steps");
    entry.vtable_steps = parse_optional_percentiles(root, "vtable_steps");
    entry.kernel_batched_steps =
        parse_optional_percentiles(root, "kernel_batched_steps");
    entry.kernel_batch_occupancy =
        parse_optional_percentiles(root, "kernel_batch_occupancy");
    entry.messages_dropped =
        parse_optional_percentiles(root, "messages_dropped");
    entry.messages_duplicated =
        parse_optional_percentiles(root, "messages_duplicated");
    entry.max_delivery_skew =
        parse_optional_percentiles(root, "max_delivery_skew");
    if (const json::Value* sup = root.find("supervision")) {
      entry.supervision_shards =
          static_cast<int>(sup->at("shards").as_i64());
      entry.supervision_attempts =
          static_cast<int>(sup->at("attempts").as_i64());
      entry.supervision_retries =
          static_cast<int>(sup->at("retries").as_i64());
      entry.supervision_requeues =
          static_cast<int>(sup->at("requeues").as_i64());
      entry.supervision_stragglers_respawned =
          static_cast<int>(sup->at("stragglers_respawned").as_i64());
      entry.supervision_shards_from_journal =
          static_cast<int>(sup->at("shards_from_journal").as_i64());
      entry.supervision_shards_failed =
          static_cast<int>(sup->at("shards_failed").as_i64());
      if (const json::Value* killed = sup->find("attempts_killed"))
        entry.supervision_attempts_killed =
            static_cast<int>(killed->as_i64());
      entry.supervision_attempt_seconds =
          parse_percentiles(sup->at("attempt_seconds"));
    }
  } catch (...) {
    return false;
  }
  return true;
}

double ratio(double current, double baseline) {
  return baseline > 0.0 ? current / baseline : 0.0;
}

}  // namespace

std::uint64_t campaign_grid_hash(const std::vector<CampaignCell>& cells) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const CampaignCell& cell : cells) {
    hash_string(hash, cell.scenario);
    hash_word(hash, static_cast<std::uint64_t>(cell.params.n));
    // Knob doubles hashed bit-exactly (they come from CLI parsing, not
    // arithmetic, so bit equality is the right notion of "same grid").
    double a = cell.params.a;
    double b = cell.params.b;
    std::uint64_t word = 0;
    static_assert(sizeof(word) == sizeof(a));
    std::memcpy(&word, &a, sizeof(word));
    hash_word(hash, word);
    std::memcpy(&word, &b, sizeof(word));
    hash_word(hash, word);
    hash_string(hash, cell.algorithm);
    hash_word(hash, cell.seed);
    hash_word(hash, static_cast<std::uint64_t>(cell.identities));
    // The delivery layer is part of the grid's identity: the same cells
    // under a different network (or different fault knobs) are a different
    // experiment, so they must never share a perf baseline.
    hash_string(hash, network_spec_name(cell.network));
    for (const double knob : {cell.network.drop, cell.network.duplicate,
                              cell.network.crash, cell.network.late}) {
      std::uint64_t word = 0;
      std::memcpy(&word, &knob, sizeof(word));
      hash_word(hash, word);
    }
    hash_word(hash, static_cast<std::uint64_t>(cell.network.max_delay));
    hash_word(hash, static_cast<std::uint64_t>(cell.network.late_by));
  }
  return hash;
}

std::uint64_t campaign_grid_hash(const CampaignResult& result) {
  std::vector<CampaignCell> cells;
  cells.reserve(result.cells.size());
  for (const CellResult& cell : result.cells) cells.push_back(cell.cell);
  return campaign_grid_hash(cells);
}

RunLogEntry make_run_log_entry(const CampaignResult& result) {
  RunLogEntry entry;
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  entry.date = buffer;
  entry.grid_hash = campaign_grid_hash(result);
  entry.workers = result.workers;
  entry.cells = static_cast<int>(result.cells.size());
  entry.solved = result.solved;
  entry.valid = result.valid;
  entry.failed = result.failed;
  entry.elapsed_seconds = result.elapsed_seconds;
  entry.cells_per_second = result.cells_per_second;
  entry.rounds = result.rounds;
  entry.messages = result.messages;
  entry.steps_per_second = result.steps_per_second;
  entry.peak_live_nodes = result.peak_live_nodes;
  entry.peak_frontier_nodes = result.peak_frontier_nodes;
  entry.dirty_spans_cleared = result.dirty_spans_cleared;
  entry.kernel_steps = result.kernel_steps;
  entry.vtable_steps = result.vtable_steps;
  entry.kernel_batched_steps = result.kernel_batched_steps;
  entry.kernel_batch_occupancy = result.kernel_batch_occupancy;
  entry.messages_dropped = result.messages_dropped;
  entry.messages_duplicated = result.messages_duplicated;
  entry.max_delivery_skew = result.max_delivery_skew;
  if (result.supervision.enabled) {
    entry.supervision_shards = result.supervision.shards;
    entry.supervision_attempts = result.supervision.attempts;
    entry.supervision_retries = result.supervision.retries;
    entry.supervision_requeues = result.supervision.requeues;
    entry.supervision_stragglers_respawned =
        result.supervision.stragglers_respawned;
    entry.supervision_shards_from_journal =
        result.supervision.shards_from_journal;
    entry.supervision_shards_failed = result.supervision.shards_failed;
    entry.supervision_attempts_killed = result.supervision.attempts_killed;
    entry.supervision_attempt_seconds = result.supervision.attempt_seconds;
  }
  return entry;
}

void append_run_log(const std::string& path, const CampaignResult& result) {
  const RunLogEntry entry = make_run_log_entry(result);
  std::ofstream out(path, std::ios::app);
  if (!out) throw std::runtime_error("cannot open run log: " + path);
  out << "{\"date\":\"" << entry.date << "\",\"grid_hash\":\""
      << entry.grid_hash << "\",\"workers\":" << entry.workers
      << ",\"cells\":" << entry.cells << ",\"solved\":" << entry.solved
      << ",\"valid\":" << entry.valid << ",\"failed\":" << entry.failed
      << ",\"elapsed_seconds\":" << entry.elapsed_seconds
      << ",\"cells_per_second\":" << entry.cells_per_second << ',';
  write_percentiles(out, "rounds", entry.rounds);
  out << ',';
  write_percentiles(out, "messages", entry.messages);
  out << ',';
  write_percentiles(out, "steps_per_second", entry.steps_per_second);
  out << ',';
  write_percentiles(out, "peak_live_nodes", entry.peak_live_nodes);
  out << ',';
  write_percentiles(out, "peak_frontier_nodes", entry.peak_frontier_nodes);
  out << ',';
  write_percentiles(out, "dirty_spans_cleared", entry.dirty_spans_cleared);
  out << ',';
  write_percentiles(out, "kernel_steps", entry.kernel_steps);
  out << ',';
  write_percentiles(out, "vtable_steps", entry.vtable_steps);
  out << ',';
  write_percentiles(out, "kernel_batched_steps", entry.kernel_batched_steps);
  out << ',';
  write_percentiles(out, "kernel_batch_occupancy",
                    entry.kernel_batch_occupancy);
  out << ',';
  write_percentiles(out, "messages_dropped", entry.messages_dropped);
  out << ',';
  write_percentiles(out, "messages_duplicated", entry.messages_duplicated);
  out << ',';
  write_percentiles(out, "max_delivery_skew", entry.max_delivery_skew);
  // Supervision block only for supervised campaigns — entries from plain
  // runs stay byte-for-byte in the pre-supervisor format.
  if (entry.supervision_shards > 0) {
    out << ",\"supervision\":{\"shards\":" << entry.supervision_shards
        << ",\"attempts\":" << entry.supervision_attempts
        << ",\"retries\":" << entry.supervision_retries
        << ",\"requeues\":" << entry.supervision_requeues
        << ",\"stragglers_respawned\":"
        << entry.supervision_stragglers_respawned
        << ",\"shards_from_journal\":"
        << entry.supervision_shards_from_journal
        << ",\"shards_failed\":" << entry.supervision_shards_failed
        << ",\"attempts_killed\":" << entry.supervision_attempts_killed
        << ',';
    write_percentiles(out, "attempt_seconds",
                      entry.supervision_attempt_seconds);
    out << '}';
  }
  out << "}\n";
}

std::vector<RunLogEntry> read_run_log(const std::string& path) {
  std::vector<RunLogEntry> entries;
  std::ifstream in(path);
  if (!in) return entries;
  std::string line;
  while (std::getline(in, line)) {
    RunLogEntry entry;
    if (parse_entry(line, entry)) entries.push_back(std::move(entry));
  }
  return entries;
}

RunLogComparison compare_run_log(const std::string& path,
                                 const CampaignResult& result) {
  RunLogComparison comparison;
  const std::uint64_t hash = campaign_grid_hash(result);
  for (const RunLogEntry& entry : read_run_log(path)) {
    if (entry.grid_hash != hash) continue;
    // Runs with failed cells have degenerate percentiles (they cover only
    // the surviving cells) — recorded for the audit trail, never used as a
    // perf baseline.
    if (entry.failed > 0) continue;
    comparison.found = true;
    comparison.baseline = entry;  // keep scanning: latest match wins
  }
  if (!comparison.found) return comparison;
  const RunLogEntry& baseline = comparison.baseline;
  comparison.rounds_p50_ratio = ratio(result.rounds.p50, baseline.rounds.p50);
  comparison.messages_p50_ratio =
      ratio(result.messages.p50, baseline.messages.p50);
  comparison.steps_per_second_p50_ratio =
      ratio(result.steps_per_second.p50, baseline.steps_per_second.p50);
  comparison.cells_per_second_ratio =
      ratio(result.cells_per_second, baseline.cells_per_second);
  comparison.elapsed_ratio =
      ratio(result.elapsed_seconds, baseline.elapsed_seconds);
  return comparison;
}

}  // namespace unilocal
