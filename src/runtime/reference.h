// The seed round engine, preserved verbatim in behaviour: one heap-allocated
// inbox/outbox vector<Message> per node and per-run reverse-port
// recomputation. It exists for two reasons:
//   1. as the trusted single-threaded oracle the engine-equivalence test
//      compares the arena engine against (identical RunResult fields), and
//   2. as the "before" side of bench_micro_simulator's before/after
//      comparison (BENCH_engine.json).
// Production code paths all use run_local (src/runtime/runner.h).
#pragma once

#include "src/runtime/runner.h"

namespace unilocal {

/// Seed-engine twin of run_local: same semantics (simultaneous and
/// alpha-synchronizer modes, cutoffs, message accounting), vector-per-message
/// storage, always single-threaded (RunOptions::num_threads is ignored).
RunResult run_local_reference(const Instance& instance,
                              const Algorithm& algorithm,
                              const RunOptions& options = {});

}  // namespace unilocal
