#include "src/runtime/chain.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/runtime/kernel.h"

namespace unilocal {

namespace {

class ChainProcess final : public Process {
 public:
  ChainProcess(const std::vector<ChainStage>* stages, const NodeInit& init)
      : stages_(stages), degree_(init.degree), identity_(init.identity),
        original_input_(init.input.begin(), init.input.end()) {}

  void step(Context& ctx) override {
    // Advance past completed stages (budgets are cumulative).
    while (stage_ < stages_->size() &&
           ctx.round() >= stage_start_ + (*stages_)[stage_].rounds) {
      close_stage();
    }
    if (stage_ >= stages_->size()) {
      ctx.finish(carry_);
      return;
    }
    if (inner_ == nullptr && !inner_done_) spawn_stage();
    if (!inner_done_) {
      Context sub = ctx.derived(ctx.round() - stage_start_, stage_input());
      inner_->step(sub);
      if (sub.finished()) {
        carry_ = sub.output();
        inner_done_ = true;
        inner_.reset();
      }
    }
    // Last stage finished and budget also over? The loop above handles the
    // boundary on the *next* round; if this was the final round of the last
    // stage, finish right away to avoid one idle round.
    if (stage_ + 1 == stages_->size() &&
        ctx.round() + 1 >= stage_start_ + (*stages_)[stage_].rounds) {
      ctx.finish(inner_done_ ? carry_ : 0);
    }
  }

 private:
  std::span<const std::int64_t> stage_input() const {
    if (stage_ == 0) return original_input_;
    return {&carry_in_, 1};
  }

  void spawn_stage() {
    NodeInit init;
    init.degree = degree_;
    init.identity = identity_;
    init.input = stage_input();
    inner_ = (*stages_)[stage_].algorithm->spawn(init);
  }

  void close_stage() {
    if (!inner_done_) carry_ = 0;  // stage cut off: arbitrary carry
    carry_in_ = carry_;
    stage_start_ += (*stages_)[stage_].rounds;
    ++stage_;
    inner_.reset();
    inner_done_ = false;
  }

  const std::vector<ChainStage>* stages_;
  NodeId degree_;
  std::int64_t identity_;
  std::vector<std::int64_t> original_input_;
  std::size_t stage_ = 0;
  std::int64_t stage_start_ = 0;
  std::unique_ptr<Process> inner_;
  bool inner_done_ = false;
  std::int64_t carry_ = 0;
  std::int64_t carry_in_ = 0;
};

// --- composite flat-kernel lowering (mirrors ChainProcess bit-for-bit) ------
//
// Per-node state is a small header (carry of the last finished stage, the
// carry frozen as the current stage's input word, and a done latch) followed
// by ONE inner state region sized/aligned for the widest stage — stages run
// strictly in sequence, so they can share the slot; each stage entry
// re-zeroes it (and the per-port words) exactly as a fresh spawn would.
// The stage index is derived from the round via the cumulative schedule, so
// it needs no state of its own. Idle rounds (stage finished early, budget
// not yet elapsed) send nothing and draw no randomness, matching the
// process path's skipped inner step.

struct ChainKernelHeader {
  std::int64_t carry;       // output of the most recently finished stage
  std::int64_t carry_in;    // previous stage's carry, the current stage input
  std::int64_t inner_done;  // current stage finished before its budget
};

struct ChainKernelStage {
  std::shared_ptr<const StepKernel> kernel;
  std::int64_t start = 0;   // cumulative first round of this stage
  std::int64_t rounds = 0;  // budget
};

struct ChainKernelConfig {
  std::vector<ChainKernelStage> stages;
  std::int64_t total = 0;          // sum of budgets
  std::size_t inner_offset = 0;    // byte offset of the inner state region
  std::size_t inner_size = 0;      // bytes to re-zero on stage entry
  std::int64_t port_words = 0;     // composite per-port width
};

enum : std::uint16_t {
  kChainEnter = 0,  // first round of a stage: reset + init + inner round 0
  kChainRun = 1,    // stage in progress: forward to the inner kernel
  kChainIdle = 2,   // stage finished early: wait out the budget
  kChainDone = 3,   // past the whole schedule
};

std::size_t chain_stage_of(const ChainKernelConfig& cfg, std::int64_t round) {
  std::size_t k = 0;
  while (k < cfg.stages.size() &&
         round >= cfg.stages[k].start + cfg.stages[k].rounds)
    ++k;
  return k;
}

std::uint16_t chain_kernel_select(std::int64_t round, const std::byte* state,
                                  const void* config) {
  const auto* cfg = static_cast<const ChainKernelConfig*>(config);
  if (round >= cfg->total) return kChainDone;
  const std::size_t k = chain_stage_of(*cfg, round);
  if (round == cfg->stages[k].start) return kChainEnter;
  const auto* h = reinterpret_cast<const ChainKernelHeader*>(state);
  return h->inner_done != 0 ? kChainIdle : kChainRun;
}

// Runs the active stage's round: swaps the ctx to the inner kernel's view
// (stage-relative round, stage input, inner config/state), dispatches the
// inner phase, restores, and folds an inner finish into the header instead
// of the engine latch. Applies the process path's early finish on the final
// round of the last stage.
void chain_forward(KernelCtx& ctx, const ChainKernelConfig& cfg, std::size_t k,
                   std::span<const std::int64_t> stage_input) {
  auto& h = ctx.state_as<ChainKernelHeader>();
  const StepKernel& inner = *cfg.stages[k].kernel;
  const std::int64_t round = ctx.round;
  const auto saved_input = ctx.input;
  const void* saved_config = ctx.config;
  std::byte* saved_state = ctx.state;
  ctx.round = round - cfg.stages[k].start;
  ctx.input = stage_input;
  ctx.config = inner.config.get();
  ctx.state = saved_state + cfg.inner_offset;
  inner.phases[kernel_phase_index(inner, ctx.round, ctx.state)].fn(ctx);
  ctx.round = round;
  ctx.input = saved_input;
  ctx.config = saved_config;
  ctx.state = saved_state;
  if (ctx.finished) {
    h.carry = ctx.output;
    h.inner_done = 1;
    ctx.finished = false;
    ctx.output = 0;
  }
  if (k + 1 == cfg.stages.size() &&
      round + 1 >= cfg.stages[k].start + cfg.stages[k].rounds)
    ctx.finish(h.inner_done != 0 ? h.carry : 0);
}

void chain_kernel_enter(KernelCtx& ctx) {
  const auto& cfg = *static_cast<const ChainKernelConfig*>(ctx.config);
  auto& h = ctx.state_as<ChainKernelHeader>();
  const std::size_t k = chain_stage_of(cfg, ctx.round);
  if (k > 0) {
    // close_stage(): a stage cut off by its budget carries the arbitrary 0.
    if (h.inner_done == 0) h.carry = 0;
    h.carry_in = h.carry;
    h.inner_done = 0;
    std::memset(ctx.state + cfg.inner_offset, 0, cfg.inner_size);
    if (ctx.port_state != nullptr)
      std::fill_n(ctx.port_state,
                  static_cast<std::size_t>(ctx.degree) *
                      static_cast<std::size_t>(cfg.port_words),
                  std::int64_t{0});
  }
  const std::span<const std::int64_t> stage_input =
      k == 0 ? ctx.input : std::span<const std::int64_t>(&h.carry_in, 1);
  const StepKernel& inner = *cfg.stages[k].kernel;
  if (inner.init_fn != nullptr) {
    NodeInit init;
    init.degree = ctx.degree;
    init.identity = ctx.identity;
    init.input = stage_input;
    inner.init_fn(ctx.state + cfg.inner_offset, init, inner.config.get());
  }
  chain_forward(ctx, cfg, k, stage_input);
}

void chain_kernel_run(KernelCtx& ctx) {
  const auto& cfg = *static_cast<const ChainKernelConfig*>(ctx.config);
  auto& h = ctx.state_as<ChainKernelHeader>();
  const std::size_t k = chain_stage_of(cfg, ctx.round);
  const std::span<const std::int64_t> stage_input =
      k == 0 ? ctx.input : std::span<const std::int64_t>(&h.carry_in, 1);
  chain_forward(ctx, cfg, k, stage_input);
}

void chain_kernel_idle(KernelCtx& ctx) {
  const auto& cfg = *static_cast<const ChainKernelConfig*>(ctx.config);
  auto& h = ctx.state_as<ChainKernelHeader>();
  if (ctx.round + 1 >= cfg.total) ctx.finish(h.carry);
}

void chain_kernel_done(KernelCtx& ctx) {
  auto& h = ctx.state_as<ChainKernelHeader>();
  if (h.inner_done == 0) h.carry = 0;
  ctx.finish(h.carry);
}

// Batched forms: loop the bucket over the scalar phase bodies (the chain
// phases keep per-stage input/config handling, so the composite does not
// forward whole buckets to inner batch fns — the win here is one dispatch
// per bucket with the stage bookkeeping inlined).
void chain_batch_enter(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    chain_kernel_enter(ctx);
    b.latch(i, ctx);
  }
}

void chain_batch_run(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    chain_kernel_run(ctx);
    b.latch(i, ctx);
  }
}

void chain_batch_idle(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    chain_kernel_idle(ctx);
    b.latch(i, ctx);
  }
}

std::shared_ptr<const StepKernel> make_chain_kernel(
    const std::string& name, const std::vector<ChainStage>& stages) {
  auto cfg = std::make_shared<ChainKernelConfig>();
  std::uint32_t max_align = alignof(ChainKernelHeader);
  std::uint32_t max_size = 0;
  std::uint32_t port_words = 0;
  std::int64_t start = 0;
  for (const auto& stage : stages) {
    std::shared_ptr<const StepKernel> inner = stage.algorithm->kernel();
    if (inner == nullptr) return nullptr;  // some stage is not lowered
    max_align = std::max(max_align, inner->state_align);
    max_size = std::max(max_size, inner->state_size);
    if (inner->port_state_words != 0) {
      // Stages share one per-port lane; widths must agree (or be 0).
      if (port_words != 0 && port_words != inner->port_state_words)
        return nullptr;
      port_words = inner->port_state_words;
    }
    cfg->stages.push_back({std::move(inner), start, stage.rounds});
    start += stage.rounds;
  }
  cfg->total = start;
  cfg->inner_offset =
      (sizeof(ChainKernelHeader) + max_align - 1) / max_align * max_align;
  cfg->inner_size = max_size;
  cfg->port_words = port_words;

  auto kernel = std::make_shared<StepKernel>();
  kernel->name = "chain:" + name;
  kernel->state_size =
      static_cast<std::uint32_t>(cfg->inner_offset) + max_size;
  kernel->state_align = max_align;
  kernel->port_state_words = port_words;
  kernel->phases = {{"enter", chain_kernel_enter, chain_batch_enter},
                    {"run", chain_kernel_run, chain_batch_run},
                    {"idle", chain_kernel_idle, chain_batch_idle},
                    {"done", chain_kernel_done}};
  kernel->select_fn = chain_kernel_select;
  kernel->config = std::shared_ptr<const void>(std::move(cfg));
  return kernel;
}

}  // namespace

ChainAlgorithm::ChainAlgorithm(std::string name, std::vector<ChainStage> stages)
    : name_(std::move(name)), stages_(std::move(stages)) {
  assert(!stages_.empty());
  for (const auto& stage : stages_) {
    assert(stage.rounds >= 1);
    total_rounds_ += stage.rounds;
  }
  kernel_ = make_chain_kernel(name_, stages_);
}

std::unique_ptr<Process> ChainAlgorithm::spawn(const NodeInit& init) const {
  return std::make_unique<ChainProcess>(&stages_, init);
}

std::shared_ptr<const StepKernel> ChainAlgorithm::kernel() const {
  return kernel_;
}

}  // namespace unilocal
