#include "src/runtime/chain.h"

#include <cassert>

namespace unilocal {

namespace {

class ChainProcess final : public Process {
 public:
  ChainProcess(const std::vector<ChainStage>* stages, const NodeInit& init)
      : stages_(stages), degree_(init.degree), identity_(init.identity),
        original_input_(init.input.begin(), init.input.end()) {}

  void step(Context& ctx) override {
    // Advance past completed stages (budgets are cumulative).
    while (stage_ < stages_->size() &&
           ctx.round() >= stage_start_ + (*stages_)[stage_].rounds) {
      close_stage();
    }
    if (stage_ >= stages_->size()) {
      ctx.finish(carry_);
      return;
    }
    if (inner_ == nullptr && !inner_done_) spawn_stage();
    if (!inner_done_) {
      Context sub = ctx.derived(ctx.round() - stage_start_, stage_input());
      inner_->step(sub);
      if (sub.finished()) {
        carry_ = sub.output();
        inner_done_ = true;
        inner_.reset();
      }
    }
    // Last stage finished and budget also over? The loop above handles the
    // boundary on the *next* round; if this was the final round of the last
    // stage, finish right away to avoid one idle round.
    if (stage_ + 1 == stages_->size() &&
        ctx.round() + 1 >= stage_start_ + (*stages_)[stage_].rounds) {
      ctx.finish(inner_done_ ? carry_ : 0);
    }
  }

 private:
  std::span<const std::int64_t> stage_input() const {
    if (stage_ == 0) return original_input_;
    return {&carry_in_, 1};
  }

  void spawn_stage() {
    NodeInit init;
    init.degree = degree_;
    init.identity = identity_;
    init.input = stage_input();
    inner_ = (*stages_)[stage_].algorithm->spawn(init);
  }

  void close_stage() {
    if (!inner_done_) carry_ = 0;  // stage cut off: arbitrary carry
    carry_in_ = carry_;
    stage_start_ += (*stages_)[stage_].rounds;
    ++stage_;
    inner_.reset();
    inner_done_ = false;
  }

  const std::vector<ChainStage>* stages_;
  NodeId degree_;
  std::int64_t identity_;
  std::vector<std::int64_t> original_input_;
  std::size_t stage_ = 0;
  std::int64_t stage_start_ = 0;
  std::unique_ptr<Process> inner_;
  bool inner_done_ = false;
  std::int64_t carry_ = 0;
  std::int64_t carry_in_ = 0;
};

}  // namespace

ChainAlgorithm::ChainAlgorithm(std::string name, std::vector<ChainStage> stages)
    : name_(std::move(name)), stages_(std::move(stages)) {
  assert(!stages_.empty());
  for (const auto& stage : stages_) {
    assert(stage.rounds >= 1);
    total_rounds_ += stage.rounds;
  }
}

std::unique_ptr<Process> ChainAlgorithm::spawn(const NodeInit& init) const {
  return std::make_unique<ChainProcess>(&stages_, init);
}

}  // namespace unilocal
