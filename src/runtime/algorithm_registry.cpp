#include "src/runtime/algorithm_registry.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "src/algo/arb_coloring.h"
#include "src/algo/arb_mis.h"
#include "src/algo/cole_vishkin.h"
#include "src/algo/color_reduce.h"
#include "src/algo/dplus1.h"
#include "src/algo/edge_color_mm.h"
#include "src/algo/greedy_mis.h"
#include "src/algo/lambda_coloring.h"
#include "src/algo/linial.h"
#include "src/algo/luby.h"
#include "src/algo/mis_from_coloring.h"
#include "src/algo/ruling_set_mc.h"
#include "src/core/coloring_transform.h"
#include "src/core/fastest.h"
#include "src/core/mc_to_lv.h"
#include "src/core/product_coloring.h"
#include "src/core/transformer.h"
#include "src/core/weak_domination.h"
#include "src/problems/registry.h"
#include "src/prune/matching_prune.h"
#include "src/prune/ruling_set_prune.h"
#include "src/util/math.h"

namespace unilocal {

// --- registry ---------------------------------------------------------------

bool algorithm_key_glob_match(const std::string& pattern,
                              const std::string& name) {
  // Iterative '*' backtracking (one star position is enough: later stars
  // reset the backtrack point).
  std::size_t p = 0, s = 0, star = std::string::npos, star_s = 0;
  while (s < name.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == name[s])) {
      ++p;
      ++s;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_s = s;
    } else if (star != std::string::npos) {
      p = star + 1;
      s = ++star_s;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

void AlgorithmRegistry::add(AlgorithmSpec spec) {
  if (spec.name.empty())
    throw std::runtime_error("algorithm registration needs a name");
  if (!spec.run)
    throw std::runtime_error("algorithm needs a factory: " + spec.name);
  if (entries_.count(spec.name) != 0)
    throw std::runtime_error("duplicate algorithm registration: " +
                             spec.name);
  // Resolve the validator eagerly so a bad problem key fails here, not in
  // the middle of a campaign. make_problem throws on unknown specs.
  std::shared_ptr<const Problem> problem = make_problem(spec.problem);
  const std::string name = spec.name;
  entries_[name] = Entry{std::move(spec), std::move(problem)};
}

bool AlgorithmRegistry::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

std::vector<std::string> AlgorithmRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) result.push_back(name);
  return result;
}

const AlgorithmSpec& AlgorithmRegistry::spec(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end())
    throw std::runtime_error("unknown algorithm: " + name);
  return it->second.spec;
}

const Problem& AlgorithmRegistry::problem(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end())
    throw std::runtime_error("unknown algorithm: " + name);
  return *it->second.problem;
}

CellOutcome AlgorithmRegistry::run(const std::string& name,
                                   const Instance& instance,
                                   const AlgorithmRunContext& context) const {
  const auto it = entries_.find(name);
  if (it == entries_.end())
    throw std::runtime_error("unknown algorithm: " + name);
  return it->second.spec.run(instance, context);
}

std::vector<std::string> AlgorithmRegistry::resolve(
    const std::vector<std::string>& patterns) const {
  std::vector<std::string> selected;
  std::string unmatched;
  for (const std::string& pattern : patterns) {
    if (pattern == "all") {
      for (const auto& [name, entry] : entries_) selected.push_back(name);
      continue;
    }
    bool any = false;
    if (pattern.find('*') != std::string::npos ||
        pattern.find('?') != std::string::npos) {
      for (const auto& [name, entry] : entries_) {
        if (algorithm_key_glob_match(pattern, name)) {
          selected.push_back(name);
          any = true;
        }
      }
    } else if (entries_.count(pattern) != 0) {
      selected.push_back(pattern);
      any = true;
    }
    if (!any) {
      if (!unmatched.empty()) unmatched += ", ";
      unmatched += pattern;
    }
  }
  if (!unmatched.empty())
    throw std::runtime_error("no algorithms match: " + unmatched);
  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()),
                 selected.end());
  return selected;
}

// --- default table ----------------------------------------------------------

namespace {

UniformRunOptions uniform_options(const AlgorithmRunContext& context) {
  UniformRunOptions options;
  options.seed = context.seed;
  options.workspace = context.workspace;
  options.engine_threads = context.engine_threads;
  options.kernel_mode = context.kernel_mode;
  options.network = context.network;
  return options;
}

RunOptions local_options(const AlgorithmRunContext& context) {
  RunOptions options;
  options.seed = context.seed;
  options.num_threads = std::max(1, context.engine_threads);
  options.kernel_mode = context.kernel_mode;
  options.network = context.network;
  return options;
}

CellOutcome from_uniform(UniformRunResult result) {
  return {std::move(result.outputs), result.total_rounds, result.solved,
          result.engine_stats};
}

CellOutcome from_local(RunResult result) {
  return {std::move(result.outputs), result.rounds_used, result.all_finished,
          result.stats};
}

/// The "non-uniform baseline told the truth" configuration: instantiate
/// with the oracle's correct guesses and run once. Deterministic in
/// (instance, seed) because the oracle is a pure function of the instance.
CellOutcome run_correct_guess_baseline(const NonUniformAlgorithm& wrapped,
                                       const Instance& instance,
                                       const AlgorithmRunContext& context) {
  const auto algorithm = instantiate_with_correct_guesses(wrapped, instance);
  return from_local(
      run_local(instance, *algorithm, local_options(context),
                context.workspace));
}

/// Theorem 3 wrapper that leaves Lambda = {n}: eliminates the arboricity
/// via 2^a <= n and the identity range via m <= n (exact under the
/// campaign's default permuted identities; under sparse identities the
/// doubling still reaches a good guess, only later).
std::shared_ptr<const NonUniformAlgorithm> dominated_arb_mis() {
  auto inner = std::shared_ptr<const NonUniformAlgorithm>(make_arb_mis());
  return std::shared_ptr<const NonUniformAlgorithm>(apply_weak_domination(
      inner,
      {Domination{Param::kArboricity, Param::kNumNodes,
                  [](std::int64_t a) {
                    return static_cast<double>(
                        sat_pow(2, static_cast<int>(std::min<std::int64_t>(
                                       a, 62))));
                  },
                  "2^a<=n"},
       Domination{Param::kMaxIdentity, Param::kNumNodes,
                  [](std::int64_t m) { return static_cast<double>(m); },
                  "m<=n"}}));
}

/// BFS parent ports rooted at each component's minimum-identity node —
/// the make_rooted_forest_instance convention on the campaign's own
/// instance (identities preserved). Returns false when the graph is not a
/// forest (a cole-vishkin cell on the wrong family reports unsolved
/// instead of handing the checker an improper coloring).
bool rooted_forest_inputs(const Instance& instance, Instance& rooted) {
  const NodeId n = instance.num_nodes();
  std::vector<NodeId> parent(static_cast<std::size_t>(n), -1);
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return instance.identities[static_cast<std::size_t>(a)] <
           instance.identities[static_cast<std::size_t>(b)];
  });
  std::int64_t components = 0;
  for (NodeId root : order) {
    if (seen[static_cast<std::size_t>(root)]) continue;
    ++components;
    seen[static_cast<std::size_t>(root)] = true;
    std::queue<NodeId> frontier;
    frontier.push(root);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop();
      for (NodeId u : instance.graph.neighbors(v)) {
        if (!seen[static_cast<std::size_t>(u)]) {
          seen[static_cast<std::size_t>(u)] = true;
          parent[static_cast<std::size_t>(u)] = v;
          frontier.push(u);
        }
      }
    }
  }
  if (instance.graph.num_edges() != static_cast<std::int64_t>(n) - components)
    return false;  // a non-tree edge exists somewhere
  rooted = instance;
  for (NodeId v = 0; v < n; ++v) {
    std::int64_t port = -1;
    const NodeId p = parent[static_cast<std::size_t>(v)];
    if (p >= 0) {
      const auto& nbrs = instance.graph.neighbors(v);
      port = std::lower_bound(nbrs.begin(), nbrs.end(), p) - nbrs.begin();
    }
    rooted.inputs[static_cast<std::size_t>(v)] = {port};
  }
  return true;
}

AlgorithmRegistry make_default_registry() {
  AlgorithmRegistry table;

  // --- MIS -----------------------------------------------------------------
  table.add(
      {"mis-uniform", "mis",
       "Theorem 1 over the Linial->(deg+1)->sweep MIS (Table 1 row 1)",
       {},
       {"gnp", "power-law", "caterpillar", "bounded-degree"},
       [](const Instance& instance, const AlgorithmRunContext& context) {
         const auto algorithm = make_coloring_mis();
         const RulingSetPruning pruning(1);
         return from_uniform(run_uniform_transformer(
             instance, *algorithm, pruning, uniform_options(context)));
       }});
  table.add(
      {"mis-global-uniform", "mis",
       "Theorem 1 over greedy-by-identity MIS as A_n (Table 1 row 2)",
       {},
       {"gnp", "geometric", "caterpillar"},
       [](const Instance& instance, const AlgorithmRunContext& context) {
         const auto algorithm = make_global_mis();
         const RulingSetPruning pruning(1);
         return from_uniform(run_uniform_transformer(
             instance, *algorithm, pruning, uniform_options(context)));
       }});
  table.add(
      {"arb-mis", "mis",
       "Theorems 3+1: arboricity MIS with a and m dominated away "
       "(Table 1 rows 3-4, Corollary 4)",
       {},
       {"layered-forest", "tree", "caterpillar"},
       [algorithm = dominated_arb_mis()](
           const Instance& instance, const AlgorithmRunContext& context) {
         const RulingSetPruning pruning(1);
         return from_uniform(run_uniform_transformer(
             instance, *algorithm, pruning, uniform_options(context)));
       }});
  table.add(
      {"mis-fastest", "mis",
       "Theorem 4 combinator of greedy-as-A_n and the coloring MIS",
       {},
       {"gnp", "power-law", "geometric"},
       [](const Instance& instance, const AlgorithmRunContext& context) {
         const auto pruning = std::make_shared<RulingSetPruning>(1);
         const auto greedy =
             make_local_executable(std::make_shared<GreedyMis>());
         const auto colored = make_transformed_executable(
             std::shared_ptr<const NonUniformAlgorithm>(make_coloring_mis()),
             pruning);
         return from_uniform(run_fastest(instance,
                                         {greedy.get(), colored.get()},
                                         *pruning,
                                         uniform_options(context)));
       }});
  table.add(
      {"mis-fastest-arb", "mis",
       "Corollary 1(i): Theorem 4 over greedy, the coloring MIS, and the "
       "dominated arboricity MIS",
       {},
       {"layered-forest", "tree", "gnp"},
       [arb = dominated_arb_mis()](const Instance& instance,
                                   const AlgorithmRunContext& context) {
         const auto pruning = std::make_shared<RulingSetPruning>(1);
         const auto greedy =
             make_local_executable(std::make_shared<GreedyMis>());
         const auto colored = make_transformed_executable(
             std::shared_ptr<const NonUniformAlgorithm>(make_coloring_mis()),
             pruning);
         const auto arb_exec = make_transformed_executable(arb, pruning);
         return from_uniform(run_fastest(
             instance, {greedy.get(), colored.get(), arb_exec.get()},
             *pruning, uniform_options(context)));
       }});
  table.add(
      {"mis-lv", "mis",
       "Theorem 2 (MC->LV) over Luby truncated to its n-guess budget",
       {},
       {"gnp", "geometric"},
       [](const Instance& instance, const AlgorithmRunContext& context) {
         const auto algorithm = make_truncated_luby_mis();
         const RulingSetPruning pruning(1);
         return from_uniform(run_las_vegas_transformer(
             instance, *algorithm, pruning, uniform_options(context)));
       }});
  table.add(
      {"luby-mis", "mis",
       "plain Las Vegas Luby baseline (Table 1 last row)",
       {},
       {"gnp", "power-law"},
       [](const Instance& instance, const AlgorithmRunContext& context) {
         const LubyMis luby;
         RunOptions options = local_options(context);
         options.max_rounds = std::int64_t{1} << 24;
         return from_local(
             run_local(instance, luby, options, context.workspace));
       }});

  // --- coloring ------------------------------------------------------------
  const auto theorem5 = [](std::int64_t lambda) {
    return [lambda](const Instance& instance,
                    const AlgorithmRunContext& context) {
      const auto algorithm = make_lambda_gdelta_coloring(lambda);
      ColoringTransformResult result = run_uniform_coloring_transform(
          instance, *algorithm, uniform_options(context));
      return CellOutcome{std::move(result.colors), result.total_rounds,
                         result.solved, result.engine_stats};
    };
  };
  table.add(
      {"coloring-theorem5", "coloring",
       "Theorem 5 uniform coloring transform of the lambda(Delta+1) black "
       "box, lambda=1 (Corollary 1(iii))",
       {{"lambda", 1.0}},
       {"gnp", "bounded-degree", "power-law"},
       theorem5(1)});
  table.add(
      {"coloring-theorem5-lambda4", "coloring",
       "Theorem 5 transform with palette slack lambda=4 (shorter "
       "reduction tail, 4x colors)",
       {{"lambda", 4.0}},
       {"bounded-degree", "gnp"},
       theorem5(4)});
  table.add(
      {"arb-coloring", "coloring",
       "H-partition -> out-Linial O(a^2)-coloring with correct guesses "
       "(Barenboim-Elkin route)",
       {},
       {"layered-forest", "tree", "caterpillar"},
       [algorithm = std::shared_ptr<const NonUniformAlgorithm>(
            make_arb_coloring())](const Instance& instance,
                                  const AlgorithmRunContext& context) {
         return run_correct_guess_baseline(*algorithm, instance, context);
       }});
  table.add(
      {"product-coloring", "coloring:deg+1",
       "Section 5.1: uniform MIS on the clique product pulled back as a "
       "(deg+1)-coloring (Corollary 1(ii))",
       {},
       {"tree", "caterpillar"},
       [](const Instance& instance, const AlgorithmRunContext& context) {
         const auto mis = make_coloring_mis();
         ProductColoringResult result = run_uniform_deg_plus_one_coloring(
             instance, *mis, uniform_options(context));
         return CellOutcome{std::move(result.colors), result.total_rounds,
                            result.solved, result.engine_stats};
       }});
  table.add(
      {"linial-coloring", "coloring",
       "Linial's iterated reduction to O(Delta^2) colors with correct "
       "guesses (log* m rounds)",
       {},
       {"bounded-degree", "gnp"},
       [algorithm = std::shared_ptr<const NonUniformAlgorithm>(
            make_linial_coloring())](const Instance& instance,
                                     const AlgorithmRunContext& context) {
         return run_correct_guess_baseline(*algorithm, instance, context);
       }});
  table.add(
      {"dplus1-coloring", "coloring:deg+1",
       "Linial shrink -> one-class-per-round reduction into [1, deg+1] "
       "with correct guesses",
       {},
       {"bounded-degree", "gnp"},
       [algorithm = std::shared_ptr<const NonUniformAlgorithm>(
            make_deg_plus_one_coloring())](const Instance& instance,
                                           const AlgorithmRunContext& context) {
         return run_correct_guess_baseline(*algorithm, instance, context);
       }});
  table.add(
      {"lambda4-coloring", "coloring",
       "lambda(Delta+1)-coloring with correct guesses, lambda=4 "
       "(Table 1 row 5 baseline)",
       {{"lambda", 4.0}},
       {"bounded-degree", "power-law"},
       [algorithm = std::shared_ptr<const NonUniformAlgorithm>(
            make_lambda_coloring(4))](const Instance& instance,
                                      const AlgorithmRunContext& context) {
         return run_correct_guess_baseline(*algorithm, instance, context);
       }});
  table.add(
      {"color-reduce", "coloring:deg+1",
       "classic chain: identities as the initial proper coloring, reduced "
       "one class per round into [1, deg+1]",
       {},
       {"caterpillar", "gnp"},
       [](const Instance& instance, const AlgorithmRunContext& context) {
         Instance seeded = instance;
         for (NodeId v = 0; v < instance.num_nodes(); ++v)
           seeded.inputs[static_cast<std::size_t>(v)] = {
               instance.identities[static_cast<std::size_t>(v)]};
         const ColorReduce algorithm(
             std::max<std::int64_t>(instance.max_identity(), 1), 0);
         return from_local(run_local(seeded, algorithm,
                                     local_options(context),
                                     context.workspace));
       }});
  table.add(
      {"cole-vishkin", "coloring:3",
       "Cole-Vishkin 3-coloring of rooted forests (reports unsolved on "
       "non-forest cells)",
       {},
       {"forest", "tree"},
       [](const Instance& instance, const AlgorithmRunContext& context) {
         Instance rooted;
         if (!rooted_forest_inputs(instance, rooted)) {
           return CellOutcome{
               std::vector<std::int64_t>(
                   static_cast<std::size_t>(instance.num_nodes()), 0),
               0, false, EngineStats{}};
         }
         const ColeVishkin algorithm(
             std::max<std::int64_t>(rooted.max_identity(), 2));
         return from_local(run_local(rooted, algorithm,
                                     local_options(context),
                                     context.workspace));
       }});

  // --- matching ------------------------------------------------------------
  table.add(
      {"matching-uniform", "matching",
       "Theorem 1 over the colored proposal matching (Table 1 row 8)",
       {},
       {"gnp", "power-law", "geometric"},
       [](const Instance& instance, const AlgorithmRunContext& context) {
         const auto algorithm = make_colored_matching();
         const MatchingPruning pruning;
         return from_uniform(run_uniform_transformer(
             instance, *algorithm, pruning, uniform_options(context)));
       }});

  // --- ruling sets ---------------------------------------------------------
  const auto ruling_set = [&table](int beta,
                                   std::vector<std::string> scenarios) {
    table.add(
        {"rulingset" + std::to_string(beta) + "-lv",
         "rulingset:" + std::to_string(beta),
         "Theorem 2 (MC->LV) over the distance-" + std::to_string(beta) +
             " Luby (2," + std::to_string(beta) + ")-ruling set "
             "(Table 1 row 9)",
         {{"beta", static_cast<double>(beta)}},
         std::move(scenarios),
         [beta](const Instance& instance,
                const AlgorithmRunContext& context) {
           const auto algorithm = make_mc_ruling_set(beta);
           const RulingSetPruning pruning(beta);
           return from_uniform(run_las_vegas_transformer(
               instance, *algorithm, pruning, uniform_options(context)));
         }});
  };
  ruling_set(2, {"gnp", "power-law"});
  ruling_set(3, {"gnp", "geometric"});

  return table;
}

}  // namespace

const AlgorithmRegistry& default_algorithm_registry() {
  static const AlgorithmRegistry table = make_default_registry();
  return table;
}

}  // namespace unilocal
