// Fixed-schedule sequential composition of LOCAL algorithms.
//
// The paper composes algorithms as A1;A2 (Observation 2.1). Inside one
// spawned process this combinator runs each stage for a *predeclared*
// number of rounds (all nodes share the schedule, so stage boundaries are
// globally synchronous); a stage that finishes early idles until its budget
// elapses, and a stage cut off by its budget contributes the arbitrary
// carry 0 — the same convention as the paper's "restricted to i rounds".
//
// Stage k >= 1 sees as input the single word [carry of stage k-1]; stage 0
// sees the node's original input. The chain finishes with the last stage's
// carry.
#pragma once

#include <memory>
#include <vector>

#include "src/runtime/local.h"

namespace unilocal {

struct ChainStage {
  std::shared_ptr<const Algorithm> algorithm;
  std::int64_t rounds = 0;  // budget; must be >= 1
};

class ChainAlgorithm final : public Algorithm {
 public:
  ChainAlgorithm(std::string name, std::vector<ChainStage> stages);
  std::unique_ptr<Process> spawn(const NodeInit& init) const override;
  std::string name() const override { return name_; }

  /// Composite flat-kernel lowering: non-null exactly when EVERY stage
  /// algorithm is lowered (and the stages' per-port state widths are
  /// compatible). The composite keeps a carry/stage header next to the
  /// widest stage's state record and forwards each round to the active
  /// stage's kernel, bit-identical to the ChainProcess above.
  std::shared_ptr<const StepKernel> kernel() const override;

  /// Total rounds of the fixed schedule (+1 for the final finish round).
  std::int64_t total_rounds() const noexcept { return total_rounds_; }

 private:
  std::string name_;
  std::vector<ChainStage> stages_;
  std::int64_t total_rounds_ = 0;
  std::shared_ptr<const StepKernel> kernel_;
};

}  // namespace unilocal
