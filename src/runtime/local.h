// The LOCAL model (Peleg 2000; paper Section 2), as a programming interface.
//
// An Algorithm is a factory that spawns one Process per node. Computation
// proceeds in synchronous rounds: in each round every awake node reads the
// messages its neighbours sent in the previous round, performs arbitrary
// local computation, sends (unrestricted-size) messages to its neighbours,
// and may terminate by writing a final output value. Neighbours are
// addressed by port number 0..degree-1; a node learns anything beyond its
// own degree/identity/input only through messages, which is exactly the
// locality constraint the paper studies.
//
// Uniformity discipline: a Process receives NO global parameters. Algorithms
// that require guesses of global parameters (the paper's non-uniform
// algorithms A_Gamma) receive them at *instantiation* time through the
// NonUniformAlgorithm interface in src/core/nonuniform.h, never through the
// runtime.
//
// Context is a facade: message storage belongs to the engine driving the
// run (the arena engine in src/runtime/runner.cpp, or the preserved
// vector-per-message baseline in src/runtime/reference.cpp), reached through
// the narrow ContextBackend interface. Algorithms see the same API either
// way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace unilocal {

/// Unrestricted-size message: a vector of 64-bit values.
using Message = std::vector<std::int64_t>;

/// Everything a node knows at wake-up time.
struct NodeInit {
  NodeId degree = 0;
  std::int64_t identity = 0;
  std::span<const std::int64_t> input;
};

/// Engine-side message transport behind a Context. `node` is always the
/// node the Context was built for; ports are 0..degree-1.
class ContextBackend {
 public:
  virtual ~ContextBackend() = default;
  /// Records data[0..words) as node's outgoing message on `port` for the
  /// current round; a second send on the same port within one step
  /// overwrites the first (last write wins, as in a real outbox).
  virtual void send_words(NodeId node, NodeId port, const std::int64_t* data,
                          std::size_t words) = 0;
  /// The message node received on `port` this round (sent by that neighbour
  /// in the previous round), or an empty span tagged absent. `present` is
  /// set accordingly. The span stays valid for the rest of the step.
  virtual std::span<const std::int64_t> recv_words(NodeId node, NodeId port,
                                                   bool* present) = 0;
  /// Like recv_words but materialized as a Message (engines keep a
  /// capacity-reusing scratch per port); nullptr when absent.
  virtual const Message* recv_message(NodeId node, NodeId port) = 0;
};

/// Per-round view handed to Process::step. Owned by the runner; valid only
/// for the duration of the call.
class Context {
 public:
  NodeId degree() const noexcept { return degree_; }
  std::int64_t id() const noexcept { return identity_; }
  std::span<const std::int64_t> input() const noexcept { return input_; }

  /// Local round number, 0-based (round 0 sees no messages).
  std::int64_t round() const noexcept { return round_; }

  /// Message from neighbour port j sent in the previous round, or nullptr.
  const Message* received(NodeId j) const {
    return backend_->recv_message(node_, j);
  }

  /// Zero-copy view of the message from port j; empty-and-absent when none
  /// arrived. Prefer this in new algorithms — it never touches the heap.
  std::span<const std::int64_t> received_span(NodeId j, bool* present) const {
    return backend_->recv_words(node_, j, present);
  }

  /// Sends msg to neighbour port j (delivered next round).
  void send(NodeId j, const Message& msg) {
    backend_->send_words(node_, j, msg.data(), msg.size());
  }
  /// Sends the literal words to port j without constructing a Message.
  void send(NodeId j, std::initializer_list<std::int64_t> words) {
    backend_->send_words(node_, j, words.begin(), words.size());
  }

  /// Sends a copy of msg to every neighbour.
  void broadcast(const Message& msg) {
    for (NodeId j = 0; j < degree_; ++j) send(j, msg);
  }
  void broadcast(std::initializer_list<std::int64_t> words) {
    for (NodeId j = 0; j < degree_; ++j)
      backend_->send_words(node_, j, words.begin(), words.size());
  }

  /// Writes the final output; after the current step returns, the process
  /// is never stepped again (messages sent in this step are still delivered).
  void finish(std::int64_t output) {
    finished_ = true;
    output_ = output;
  }
  bool finished() const noexcept { return finished_; }

  /// Private randomness stream of this node.
  Rng& rng() noexcept { return *rng_; }

  /// Final output value (meaningful once finished()).
  std::int64_t output() const noexcept { return output_; }

  /// A view of this context with a shifted local round and substituted
  /// input, sharing the message transport — used by stage-composition
  /// combinators (src/runtime/chain.h) to run sub-processes.
  Context derived(std::int64_t round,
                  std::span<const std::int64_t> input) const {
    Context copy = *this;
    copy.round_ = round;
    copy.input_ = input;
    copy.finished_ = false;
    copy.output_ = 0;
    return copy;
  }

 private:
  friend struct ContextAccess;
  NodeId node_ = 0;
  NodeId degree_ = 0;
  std::int64_t identity_ = 0;
  std::span<const std::int64_t> input_;
  std::int64_t round_ = 0;
  bool finished_ = false;
  std::int64_t output_ = 0;
  Rng* rng_ = nullptr;
  ContextBackend* backend_ = nullptr;
};

/// Engine-internal escape hatch for constructing Contexts (keeps the facade
/// fields private without naming every engine a friend).
struct ContextAccess {
  static Context make(ContextBackend* backend, NodeId node, NodeId degree,
                      std::int64_t identity,
                      std::span<const std::int64_t> input, std::int64_t round,
                      Rng* rng) {
    Context ctx;
    ctx.backend_ = backend;
    ctx.node_ = node;
    ctx.degree_ = degree;
    ctx.identity_ = identity;
    ctx.input_ = input;
    ctx.round_ = round;
    ctx.rng_ = rng;
    return ctx;
  }
  static bool finished(const Context& ctx) { return ctx.finished_; }
  static std::int64_t output(const Context& ctx) { return ctx.output_; }
};

/// Bump allocator backing per-node Process storage. An engine installs a
/// Scope around its spawn loop; every Process (and nested inner process)
/// allocated while the scope is active comes out of this arena's chunks
/// instead of n individual heap allocations, and deleting such a process
/// runs its destructor but returns no memory — the arena reclaims
/// everything at once on reset(). Allocations outside any scope go to the
/// heap and are freed normally, so the same unique_ptr<Process> works
/// either way (each allocation carries a one-word provenance tag).
///
/// reset() requires every process allocated from the arena to be destroyed
/// already; scopes are per-thread (thread_local active arena) and must not
/// nest.
class ProcessArena {
 public:
  ProcessArena() = default;
  ~ProcessArena() = default;
  ProcessArena(const ProcessArena&) = delete;
  ProcessArena& operator=(const ProcessArena&) = delete;

  /// Drops every allocation; chunk capacity is kept for the next run.
  void reset() noexcept;
  /// Bytes handed out since the last reset (headers included).
  std::size_t bytes_used() const noexcept { return used_; }

  /// While alive, Process allocations on this thread bump through `arena`.
  class Scope {
   public:
    explicit Scope(ProcessArena& arena) noexcept;
    ~Scope() noexcept;
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };

 private:
  friend class Process;
  static void* allocate(std::size_t size);
  static void deallocate(void* p) noexcept;
  void* bump(std::size_t size);

  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::vector<std::size_t> chunk_sizes_;
  std::size_t cur_chunk_ = 0;
  std::size_t cur_offset_ = 0;
  std::size_t used_ = 0;
};

/// The per-node program.
class Process {
 public:
  virtual ~Process() = default;
  /// Called once per local round while the node has not finished.
  virtual void step(Context& ctx) = 0;

  /// Allocation routes through the active ProcessArena::Scope when one is
  /// installed on this thread (engines wrap their spawn loops), and the
  /// heap otherwise; delete is correct for both.
  static void* operator new(std::size_t size);
  static void operator delete(void* p) noexcept;

 protected:
  Process() = default;
};

struct StepKernel;

/// A distributed algorithm: spawns one process per node.
class Algorithm {
 public:
  virtual ~Algorithm() = default;
  virtual std::unique_ptr<Process> spawn(const NodeInit& init) const = 0;
  virtual std::string name() const = 0;

  /// Optional flat-kernel lowering (src/runtime/kernel.h): a POD per-node
  /// state layout plus free-function round kernels the engine runs without
  /// Process/Context virtual dispatch, bit-identical to spawn()'s
  /// processes. Like spawned processes, the returned descriptor is only
  /// guaranteed valid while this Algorithm lives. Null (the default) means
  /// no lowering; the engine then uses the vtable path.
  virtual std::shared_ptr<const StepKernel> kernel() const { return nullptr; }
};

}  // namespace unilocal
