// The LOCAL model (Peleg 2000; paper Section 2), as a programming interface.
//
// An Algorithm is a factory that spawns one Process per node. Computation
// proceeds in synchronous rounds: in each round every awake node reads the
// messages its neighbours sent in the previous round, performs arbitrary
// local computation, sends (unrestricted-size) messages to its neighbours,
// and may terminate by writing a final output value. Neighbours are
// addressed by port number 0..degree-1; a node learns anything beyond its
// own degree/identity/input only through messages, which is exactly the
// locality constraint the paper studies.
//
// Uniformity discipline: a Process receives NO global parameters. Algorithms
// that require guesses of global parameters (the paper's non-uniform
// algorithms A_Gamma) receive them at *instantiation* time through the
// NonUniformAlgorithm interface in src/core/nonuniform.h, never through the
// runtime.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace unilocal {

/// Unrestricted-size message: a vector of 64-bit values.
using Message = std::vector<std::int64_t>;

/// Everything a node knows at wake-up time.
struct NodeInit {
  NodeId degree = 0;
  std::int64_t identity = 0;
  std::span<const std::int64_t> input;
};

/// Per-round view handed to Process::step. Owned by the runner; valid only
/// for the duration of the call.
class Context {
 public:
  NodeId degree() const noexcept { return degree_; }
  std::int64_t id() const noexcept { return identity_; }
  std::span<const std::int64_t> input() const noexcept { return input_; }

  /// Local round number, 0-based (round 0 sees no messages).
  std::int64_t round() const noexcept { return round_; }

  /// Message from neighbour port j sent in the previous round, or nullptr.
  const Message* received(NodeId j) const {
    return inbox_present_[static_cast<std::size_t>(j)]
               ? &inbox_[static_cast<std::size_t>(j)]
               : nullptr;
  }

  /// Sends msg to neighbour port j (delivered next round).
  void send(NodeId j, Message msg) {
    outbox_[static_cast<std::size_t>(j)] = std::move(msg);
    outbox_present_[static_cast<std::size_t>(j)] = true;
  }

  /// Sends a copy of msg to every neighbour.
  void broadcast(const Message& msg) {
    for (NodeId j = 0; j < degree_; ++j) send(j, msg);
  }

  /// Writes the final output; after the current step returns, the process
  /// is never stepped again (messages sent in this step are still delivered).
  void finish(std::int64_t output) {
    finished_ = true;
    output_ = output;
  }
  bool finished() const noexcept { return finished_; }

  /// Private randomness stream of this node.
  Rng& rng() noexcept { return *rng_; }

  /// Final output value (meaningful once finished()).
  std::int64_t output() const noexcept { return output_; }

  /// A view of this context with a shifted local round and substituted
  /// input, sharing the message buffers — used by stage-composition
  /// combinators (src/runtime/chain.h) to run sub-processes.
  Context derived(std::int64_t round,
                  std::span<const std::int64_t> input) const {
    Context copy = *this;
    copy.round_ = round;
    copy.input_ = input;
    copy.finished_ = false;
    copy.output_ = 0;
    return copy;
  }

 private:
  friend class Runner;
  NodeId degree_ = 0;
  std::int64_t identity_ = 0;
  std::span<const std::int64_t> input_;
  std::int64_t round_ = 0;
  std::span<const Message> inbox_;
  std::span<const char> inbox_present_;
  std::span<Message> outbox_;
  std::span<char> outbox_present_;
  bool finished_ = false;
  std::int64_t output_ = 0;
  Rng* rng_ = nullptr;
};

/// The per-node program.
class Process {
 public:
  virtual ~Process() = default;
  /// Called once per local round while the node has not finished.
  virtual void step(Context& ctx) = 0;
};

/// A distributed algorithm: spawns one process per node.
class Algorithm {
 public:
  virtual ~Algorithm() = default;
  virtual std::unique_ptr<Process> spawn(const NodeInit& init) const = 0;
  virtual std::string name() const = 0;
};

}  // namespace unilocal
