#include "src/runtime/reference.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <utility>

#include "src/util/math.h"

namespace unilocal {

namespace {

/// rev_port[u][j] = the port of u in the adjacency list of its j-th
/// neighbour. Recomputed per run — deliberately kept as the seed had it; the
/// arena engine reads the precomputed CsrGraph instead.
std::vector<std::vector<NodeId>> reverse_ports(const Graph& g) {
  std::vector<std::vector<NodeId>> rev(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto& nbrs = g.neighbors(u);
    rev[static_cast<std::size_t>(u)].resize(nbrs.size());
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      const auto& back = g.neighbors(nbrs[j]);
      const auto it = std::lower_bound(back.begin(), back.end(), u);
      rev[static_cast<std::size_t>(u)][j] =
          static_cast<NodeId>(it - back.begin());
    }
  }
  return rev;
}

struct NodeSlot {
  std::unique_ptr<Process> process;
  Rng rng{0};
  std::vector<Message> inbox;
  std::vector<char> inbox_present;
  std::vector<Message> outbox;
  std::vector<char> outbox_present;
  bool finished = false;
  std::int64_t output = 0;
  std::int64_t local_round = 0;  // local rounds executed so far
  std::int64_t finish_local = -1;
  std::int64_t finish_global = -1;
};

class ReferenceRunner final : public ContextBackend {
 public:
  ReferenceRunner(const Instance& instance, const Algorithm& algorithm,
                  const RunOptions& options)
      : instance_(instance), options_(options) {
    const NodeId n = instance.graph.num_nodes();
    slots_.resize(static_cast<std::size_t>(n));
    rev_ = reverse_ports(instance.graph);
    Rng base(options.seed);
    for (NodeId v = 0; v < n; ++v) {
      auto& slot = slots_[static_cast<std::size_t>(v)];
      const NodeId deg = instance.graph.degree(v);
      NodeInit init;
      init.degree = deg;
      init.identity = instance.identities[static_cast<std::size_t>(v)];
      init.input = instance.inputs[static_cast<std::size_t>(v)];
      slot.process = algorithm.spawn(init);
      slot.rng = base.split(static_cast<std::uint64_t>(
          instance.identities[static_cast<std::size_t>(v)]));
      slot.inbox.resize(static_cast<std::size_t>(deg));
      slot.inbox_present.assign(static_cast<std::size_t>(deg), 0);
      slot.outbox.resize(static_cast<std::size_t>(deg));
      slot.outbox_present.assign(static_cast<std::size_t>(deg), 0);
    }
  }

  // ContextBackend: a fresh Message per send, like the seed engine's
  // caller-allocated vectors.
  void send_words(NodeId node, NodeId port, const std::int64_t* data,
                  std::size_t words) override {
    auto& slot = slots_[static_cast<std::size_t>(node)];
    slot.outbox[static_cast<std::size_t>(port)] = Message(data, data + words);
    slot.outbox_present[static_cast<std::size_t>(port)] = 1;
  }
  std::span<const std::int64_t> recv_words(NodeId node, NodeId port,
                                           bool* present) override {
    const auto& slot = slots_[static_cast<std::size_t>(node)];
    if (!slot.inbox_present[static_cast<std::size_t>(port)]) {
      *present = false;
      return {};
    }
    *present = true;
    return slot.inbox[static_cast<std::size_t>(port)];
  }
  const Message* recv_message(NodeId node, NodeId port) override {
    const auto& slot = slots_[static_cast<std::size_t>(node)];
    return slot.inbox_present[static_cast<std::size_t>(port)]
               ? &slot.inbox[static_cast<std::size_t>(port)]
               : nullptr;
  }

  RunResult run_simultaneous() {
    const NodeId n = instance_.graph.num_nodes();
    NodeId live = n;
    std::int64_t round = 0;
    for (; live > 0 && round < options_.max_rounds; ++round) {
      // Step every live node.
      for (NodeId v = 0; v < n; ++v) {
        auto& slot = slots_[static_cast<std::size_t>(v)];
        if (slot.finished) continue;
        step_node(v, round);
        if (slot.finished) {
          if (slot.finish_local < 0) {  // finished by its own choice
            slot.finish_local = round;
            slot.finish_global = round;
          }
          --live;
        }
      }
      deliver_all();
      if (live == 0) {
        ++round;
        break;
      }
    }
    return finalize(live, round, round);
  }

  RunResult run_synchronized(const std::vector<std::int64_t>& wake_rounds) {
    const NodeId n = instance_.graph.num_nodes();
    assert(wake_rounds.size() == static_cast<std::size_t>(n));
    // Per-directed-edge buffers: queue_[v][j][i] = what v's j-th neighbour
    // emitted towards v in that neighbour's local round i.
    std::vector<std::vector<std::deque<std::pair<char, Message>>>> queue(
        static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v)
      queue[static_cast<std::size_t>(v)].resize(
          static_cast<std::size_t>(instance_.graph.degree(v)));

    NodeId live = n;
    std::int64_t global = 0;
    std::int64_t max_wake = 0;
    for (std::int64_t w : wake_rounds) max_wake = std::max(max_wake, w);
    const std::int64_t global_cap = sat_add(
        max_wake,
        sat_add(sat_mul(4, sat_add(options_.max_rounds, 1)),
                4 * static_cast<std::int64_t>(n) + 16));
    std::vector<NodeId> eligible;
    while (live > 0 && global < global_cap) {
      eligible.clear();
      for (NodeId v = 0; v < n; ++v) {
        auto& slot = slots_[static_cast<std::size_t>(v)];
        if (slot.finished) continue;
        if (global < wake_rounds[static_cast<std::size_t>(v)]) continue;
        bool ready = true;
        const auto& nbrs = instance_.graph.neighbors(v);
        for (std::size_t j = 0; j < nbrs.size(); ++j) {
          const auto& other = slots_[static_cast<std::size_t>(nbrs[j])];
          if (!other.finished && other.local_round < slot.local_round) {
            ready = false;
            break;
          }
        }
        if (ready) eligible.push_back(v);
      }
      for (NodeId v : eligible) {
        auto& slot = slots_[static_cast<std::size_t>(v)];
        // Pull the messages the neighbours emitted in their local round
        // (slot.local_round - 1).
        const std::int64_t want = slot.local_round - 1;
        const auto& nbrs = instance_.graph.neighbors(v);
        for (std::size_t j = 0; j < nbrs.size(); ++j) {
          slot.inbox_present[j] = 0;
          if (want < 0) continue;
          auto& q = queue[static_cast<std::size_t>(v)][j];
          if (static_cast<std::size_t>(want) < q.size() &&
              q[static_cast<std::size_t>(want)].first) {
            slot.inbox[j] = q[static_cast<std::size_t>(want)].second;
            slot.inbox_present[j] = 1;
          }
        }
        step_node_prefilled(v, slot.local_round);
        // Record what it emitted for this local round.
        for (std::size_t j = 0; j < nbrs.size(); ++j) {
          auto& q = queue[static_cast<std::size_t>(nbrs[j])]
                         [static_cast<std::size_t>(
                             rev_[static_cast<std::size_t>(v)][j])];
          if (slot.outbox_present[j]) {
            q.emplace_back(1, std::move(slot.outbox[j]));
            slot.outbox[j] = Message{};
            slot.outbox_present[j] = 0;
          } else {
            q.emplace_back(0, Message{});
          }
        }
        ++slot.local_round;
        if (slot.finished) {
          slot.finish_local = slot.local_round - 1;
          slot.finish_global = global;
          --live;
        } else if (slot.local_round >= options_.max_rounds) {
          slot.finished = true;
          slot.output = options_.default_output;
          cut_off_.push_back(v);
          slot.finish_local = options_.max_rounds;
          slot.finish_global = global;
          --live;
        }
      }
      ++global;
    }
    std::int64_t max_local = 0;
    for (const auto& slot : slots_)
      max_local = std::max(max_local, slot.local_round);
    return finalize(live, max_local, global);
  }

 private:
  void step_node(NodeId v, std::int64_t round) {
    auto& slot = slots_[static_cast<std::size_t>(v)];
    step_node_prefilled(v, round);
    ++slot.local_round;
    if (!slot.finished && slot.local_round >= options_.max_rounds) {
      slot.finished = true;
      slot.output = options_.default_output;
      cut_off_.push_back(v);
      slot.finish_local = options_.max_rounds;
      slot.finish_global = round;
    }
  }

  void step_node_prefilled(NodeId v, std::int64_t round) {
    auto& slot = slots_[static_cast<std::size_t>(v)];
    Context ctx = ContextAccess::make(
        this, v, instance_.graph.degree(v),
        instance_.identities[static_cast<std::size_t>(v)],
        instance_.inputs[static_cast<std::size_t>(v)], round, &slot.rng);
    slot.process->step(ctx);
    if (ContextAccess::finished(ctx)) {
      slot.finished = true;
      slot.output = ContextAccess::output(ctx);
    }
    for (std::size_t j = 0; j < slot.outbox_present.size(); ++j) {
      if (slot.outbox_present[j]) {
        ++messages_sent_;
        max_message_words_ =
            std::max(max_message_words_,
                     static_cast<std::int64_t>(slot.outbox[j].size()));
      }
    }
  }

  void deliver_all() {
    const NodeId n = instance_.graph.num_nodes();
    for (NodeId v = 0; v < n; ++v) {
      auto& slot = slots_[static_cast<std::size_t>(v)];
      std::fill(slot.inbox_present.begin(), slot.inbox_present.end(), 0);
    }
    for (NodeId u = 0; u < n; ++u) {
      auto& slot = slots_[static_cast<std::size_t>(u)];
      const auto& nbrs = instance_.graph.neighbors(u);
      for (std::size_t j = 0; j < nbrs.size(); ++j) {
        if (!slot.outbox_present[j]) continue;
        auto& target = slots_[static_cast<std::size_t>(nbrs[j])];
        if (!target.finished) {
          const std::size_t port =
              static_cast<std::size_t>(rev_[static_cast<std::size_t>(u)][j]);
          target.inbox[port] = std::move(slot.outbox[j]);
          target.inbox_present[port] = 1;
          slot.outbox[j] = Message{};
        }
        slot.outbox_present[j] = 0;
      }
    }
  }

  RunResult finalize(NodeId live, std::int64_t max_local, std::int64_t global) {
    RunResult result;
    const NodeId n = instance_.graph.num_nodes();
    result.outputs.resize(static_cast<std::size_t>(n));
    result.finish_rounds.resize(static_cast<std::size_t>(n));
    result.global_finish_rounds.resize(static_cast<std::size_t>(n));
    std::int64_t max_finish = -1;
    std::int64_t total_steps = 0;
    for (NodeId v = 0; v < n; ++v) {
      const auto& slot = slots_[static_cast<std::size_t>(v)];
      result.outputs[static_cast<std::size_t>(v)] =
          slot.finished ? slot.output : options_.default_output;
      result.finish_rounds[static_cast<std::size_t>(v)] =
          slot.finish_local >= 0 ? slot.finish_local : options_.max_rounds;
      result.global_finish_rounds[static_cast<std::size_t>(v)] =
          slot.finish_global >= 0 ? slot.finish_global : global;
      max_finish = std::max(max_finish,
                            result.finish_rounds[static_cast<std::size_t>(v)]);
      total_steps += slot.local_round;
    }
    result.all_finished = (live == 0 && cut_off_.empty());
    result.rounds_used = n == 0 ? 0 : std::min(max_finish + 1, max_local);
    result.global_rounds = global;
    result.messages_sent = messages_sent_;
    result.max_message_words = max_message_words_;
    result.stats.total_steps = total_steps;
    result.stats.threads = 1;
    return result;
  }

  const Instance& instance_;
  const RunOptions& options_;
  std::vector<NodeSlot> slots_;
  std::vector<std::vector<NodeId>> rev_;
  std::vector<NodeId> cut_off_;
  std::int64_t messages_sent_ = 0;
  std::int64_t max_message_words_ = 0;
};

}  // namespace

RunResult run_local_reference(const Instance& instance,
                              const Algorithm& algorithm,
                              const RunOptions& options) {
  ReferenceRunner runner(instance, algorithm, options);
  if (options.wake_rounds.empty()) return runner.run_simultaneous();
  return runner.run_synchronized(options.wake_rounds);
}

}  // namespace unilocal
