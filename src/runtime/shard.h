// Sharded campaigns: partition a grid across processes, merge the results
// bit-identically.
//
// run_campaign (src/runtime/campaign.h) parallelizes cells over one
// in-process ThreadPool; this subsystem is the orchestration tier above
// it, splitting one grid across *processes* (and eventually hosts) in
// three layers:
//
//  - Planning.  plan_shards() partitions the cells into self-describing
//    ShardManifests — registry keys, params, and seeds only, no pointers —
//    under a policy: round-robin (cell i -> shard i mod K) or
//    cost-balanced (greedy LPT over a per-cell cost model, nodes x
//    algorithm weight, so straggler-heavy grids split evenly). Manifests
//    and plans round-trip through JSON (src/util/json.h).
//  - Execution.  run_shard() re-resolves the manifest's keys against the
//    scenario/algorithm registries and runs its cells via run_campaign,
//    producing a ShardResult whose grid-hash fingerprint
//    (campaign_grid_hash, src/runtime/run_log.h) proves which work it did.
//  - Merging.  merge_shard_results() verifies every shard against the
//    plan — missing, duplicate, foreign (wrong plan), and hash-mismatched
//    shards are all rejected in ONE error naming every offender —
//    reassembles the cells into grid order, and recomputes the aggregates
//    with the same finalize_campaign_aggregates() a single-process run
//    uses. Because every cell is deterministic in (scenario, params,
//    algorithm, seed, identities), the merged CampaignResult's per-cell
//    output_hash vector and campaign_grid_hash are bit-identical to a
//    single-process run_campaign of the whole grid, for any shard count
//    and either policy (tests/shard_test.cpp).
//
// Surfaced as `unilocal_cli shard plan|run|merge` plus the local
// multi-process drivers `sweep --shards=K` / `table1 --shards=K`.
//
// Note on layering: sits ABOVE src/runtime/campaign.* (the only file that
// may include it is the CLI/bench/test tier).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/runtime/campaign.h"
#include "src/util/json.h"

namespace unilocal {

enum class ShardPolicy {
  /// Cell i goes to shard i mod K: trivially even counts, oblivious to
  /// cost skew.
  kRoundRobin,
  /// Greedy LPT over the cost model: cells sorted by descending cost, each
  /// placed on the currently lightest shard. Max-vs-min shard load differs
  /// by at most one cell's cost.
  kCostBalanced,
};

/// Stable names ("round-robin", "cost-balanced") for manifests and CLI
/// flags; parse throws std::runtime_error on unknown names.
const char* shard_policy_name(ShardPolicy policy);
ShardPolicy parse_shard_policy(const std::string& name);

/// Per-cell planning cost: nodes x algorithm weight. The built-in weights
/// are coarse priors from measured table1 per-cell times (n=256; the
/// theorem-5 coloring pipelines cost ~90x a bare Linial run), rounded
/// hard — planning needs rank order and rough magnitude, not precision.
/// Unknown algorithms fall back to default_weight.
struct ShardCostModel {
  std::map<std::string, double> algorithm_weights;
  double default_weight = 1.0;

  double cell_cost(const CampaignCell& cell) const;
};

/// The measured-prior model described above.
const ShardCostModel& default_shard_cost_model();

/// One shard's worth of work, self-describing: every cell is (scenario
/// key, params, algorithm key, seed, identities) plus its index in the
/// full grid, resolvable by any process holding the same registries.
struct ShardManifest {
  int shard_index = 0;
  int num_shards = 1;
  ShardPolicy policy = ShardPolicy::kRoundRobin;
  /// campaign_grid_hash of the FULL grid — ties the shard to its plan.
  std::uint64_t plan_grid_hash = 0;
  /// campaign_grid_hash of this shard's cells — run_shard recomputes it
  /// from the parsed cells and refuses corrupted manifests.
  std::uint64_t shard_grid_hash = 0;
  /// Position of cells[i] in the full grid (merge reassembles input order).
  std::vector<std::size_t> cell_indices;
  std::vector<CampaignCell> cells;

  json::Value to_json() const;
  /// Throws std::runtime_error naming the missing/ill-typed field.
  static ShardManifest from_json(const json::Value& value);
};

struct ShardPlan {
  std::uint64_t grid_hash = 0;
  ShardPolicy policy = ShardPolicy::kRoundRobin;
  std::size_t total_cells = 0;
  std::vector<ShardManifest> shards;

  json::Value to_json() const;
  static ShardPlan from_json(const json::Value& value);
};

struct ShardPlanOptions {
  /// Cost model for kCostBalanced (default_shard_cost_model() when null).
  const ShardCostModel* cost_model = nullptr;
};

/// Partitions `cells` into num_shards manifests under `policy`.
/// Deterministic (ties broken by grid index / shard index); every cell
/// lands in exactly one shard; shards may be empty when num_shards exceeds
/// the cell count. Throws std::runtime_error when num_shards < 1.
ShardPlan plan_shards(const std::vector<CampaignCell>& cells, int num_shards,
                      ShardPolicy policy, const ShardPlanOptions& options = {});

/// What one shard produced: the manifest's fingerprints plus one
/// CellResult per manifest cell, in manifest order. Per-node outputs are
/// never serialized — output_hash is the cross-process identity.
struct ShardResult {
  int shard_index = 0;
  int num_shards = 1;
  std::uint64_t plan_grid_hash = 0;
  std::uint64_t shard_grid_hash = 0;
  int workers = 1;
  double elapsed_seconds = 0.0;
  std::vector<std::size_t> cell_indices;
  std::vector<CellResult> cells;

  json::Value to_json() const;
  static ShardResult from_json(const json::Value& value);
};

/// Runs the manifest's cells via run_campaign (per-cell failures land in
/// CellResult::error as usual). Throws std::runtime_error when the
/// manifest's shard_grid_hash does not match its own cells (a corrupted or
/// hand-edited manifest). options.keep_outputs is ignored — shard results
/// carry hashes, not outputs.
ShardResult run_shard(const ShardManifest& manifest,
                      const CampaignOptions& options = {});

/// Validates one result against the plan it claims to belong to: foreign
/// (plan_grid_hash mismatch), out-of-range shard index, grid-hash or
/// cell-list disagreement with the plan's manifest, and a recomputed
/// campaign_grid_hash over the result's cell identities that contradicts
/// the claimed fingerprint. Returns "" when the result is acceptable, a
/// description of the first problem otherwise. This is the acceptance
/// test the merge applies per result and the supervisor
/// (src/runtime/supervisor.h) applies to every worker output file — a
/// corrupted result is indistinguishable from a crashed worker.
/// Verification covers cell *identity and membership* (everything
/// campaign_grid_hash hashes); outcome fields are taken on trust —
/// checking a claimed output_hash would mean re-running the cell.
std::string shard_result_problem(const ShardPlan& plan,
                                 const ShardResult& result);

/// Verifies `results` against `plan` and reassembles the full
/// CampaignResult: cells in grid order, aggregates recomputed via
/// finalize_campaign_aggregates — per-cell output_hash and
/// campaign_grid_hash bit-identical to a single-process run_campaign.
/// workers is summed across shards; elapsed_seconds is the max (shards run
/// concurrently). Throws ONE std::runtime_error naming every offender:
/// every shard_result_problem, duplicate shard indices, and missing
/// shards.
CampaignResult merge_shard_results(const ShardPlan& plan,
                                   const std::vector<ShardResult>& results);

/// What a partial merge had to leave out: the shards that never produced
/// an accepted result and the grid indices of every cell they covered.
struct PartialMergeReport {
  std::vector<int> missing_shards;
  std::vector<std::size_t> missing_cell_indices;

  bool complete() const { return missing_shards.empty(); }
  /// One human-readable report enumerating every missing shard and cell.
  std::string describe() const;
};

/// Graceful-degradation merge (`--allow-partial`): identical to
/// merge_shard_results except that MISSING shards are tolerated — their
/// cells appear in the merged CampaignResult with their planned identity
/// and a non-empty error ("shard N produced no accepted result"), so they
/// count as failed in the aggregates, and `report` enumerates every
/// missing shard and cell in one place. Results that are present but
/// invalid (foreign/corrupt/duplicate) still throw exactly like the
/// strict merge: partial means "less work arrived", never "bad work
/// accepted".
CampaignResult merge_shard_results_partial(const ShardPlan& plan,
                                           const std::vector<ShardResult>& results,
                                           PartialMergeReport& report);

}  // namespace unilocal
