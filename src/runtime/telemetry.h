// Unified telemetry: a metrics registry, a trace recorder, and the ambient
// bindings that let the engine report without threading sinks through every
// layer's options structs.
//
// Three pieces, all optional and all off by default:
//
//  - MetricsRegistry: named counters / gauges / log2-bucketed histograms.
//    Writers touch per-thread cells (no locks on the write path after the
//    first touch); snapshot() merges the cells with commutative operations
//    (counters and histogram buckets sum, gauges take the max), so the
//    merged snapshot is identical for any thread count on a deterministic
//    workload. A process-wide registry pointer can be installed; when none
//    is installed every reporting site reduces to one null check.
//
//  - TraceRecorder: an append-only list of Chrome trace events ("X"
//    complete spans, "i" instants, "M" metadata) serialized as the
//    trace-event JSON that Perfetto and chrome://tracing load directly.
//    Timestamps come from a pluggable Clock so tests inject a fake one.
//    merge_process() folds a worker process's trace document into this
//    recorder under a fresh pid lane — how the shard supervisor stitches
//    per-shard trace files into one merged trace.
//
//  - TraceBinding: a per-thread ambient {recorder, pid, tid, round cap}
//    installed by whoever owns a recorder (the CLI, run_campaign's worker
//    lambda). The engine reads it once per run; when none is bound the
//    per-round overhead is a single pointer test.
//
// Nothing here ever feeds canonical campaign JSON: telemetry output lives
// in its own files, and the canonical byte-identity oracles run with
// tracing both on and off to prove it.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/util/json.h"

namespace unilocal {
namespace telemetry {

// ---------------------------------------------------------------------------
// Clock

/// Microsecond clock behind every trace timestamp. The default is the
/// process steady clock; tests install FakeClock to make span layout a pure
/// function of the workload.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::int64_t now_micros() = 0;
};

/// The process-wide monotonic clock (micros since an arbitrary epoch).
Clock& steady_clock();

/// Deterministic clock for tests: starts at 0, moves only when told to.
/// A non-zero auto_advance makes every read tick forward by that many
/// micros *after* returning, so consecutive reads are strictly ordered —
/// enough for span-nesting assertions without any real time.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::int64_t auto_advance = 0)
      : auto_advance_(auto_advance) {}
  std::int64_t now_micros() override {
    const std::int64_t now = now_;
    now_ += auto_advance_;
    return now;
  }
  void advance(std::int64_t micros) { now_ += micros; }
  void set(std::int64_t micros) { now_ = micros; }

 private:
  std::int64_t now_ = 0;
  std::int64_t auto_advance_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics registry

enum class MetricKind { kCounter, kGauge, kHistogram };

/// "counter" / "gauge" / "histogram" — the spelling used in JSON output.
const char* metric_kind_name(MetricKind kind);

/// Histograms bucket by log2: bucket 0 holds values <= 0, bucket k holds
/// values in [2^(k-1), 2^k), the last bucket absorbs everything larger.
constexpr int kHistogramBuckets = 48;

/// log2 bucket index for a histogram observation.
int histogram_bucket(std::int64_t value);

/// One merged metric as returned by MetricsRegistry::snapshot().
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  /// Counter: total. Gauge: maximum recorded value (0 if never set).
  std::int64_t value = 0;
  /// Histogram only.
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::array<std::int64_t, kHistogramBuckets> buckets{};

  bool operator==(const MetricSnapshot& other) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Interns a metric and returns its id (stable for the registry's
  /// lifetime; the same name always maps to the same id). Registering an
  /// existing name under a different kind throws.
  int counter(const std::string& name);
  int gauge(const std::string& name);
  int histogram(const std::string& name);

  /// Write-path primitives; each touches only the calling thread's cell.
  void add(int id, std::int64_t delta);         // counter +=
  void record_max(int id, std::int64_t value);  // gauge = max(gauge, value)
  void observe(int id, std::int64_t value);     // histogram sample

  /// Name-based conveniences (intern + write). Fine at per-run or
  /// per-cell granularity; hot loops should hold an id instead.
  void add(const std::string& name, std::int64_t delta);
  void record_max(const std::string& name, std::int64_t value);
  void observe(const std::string& name, std::int64_t value);

  /// Merges every thread cell into one snapshot, sorted by name. Not
  /// linearizable against concurrent writers — callers snapshot after the
  /// writing threads have been joined.
  std::vector<MetricSnapshot> snapshot() const;

  /// {"metrics": [{name, kind, ...}, ...]} with names sorted; histograms
  /// carry count/sum/min/max and a sparse {"bucket": count} object.
  json::Value to_json() const;

  /// Engine storage for one thread (opaque; see telemetry.cpp).
  struct Cell;

 private:
  Cell& local_cell();
  int intern(const std::string& name, MetricKind kind);

  struct State;
  std::unique_ptr<State> state_;
};

/// The process-wide registry every reporting site consults: nullptr (the
/// default) makes all reporting a no-op.
MetricsRegistry* metrics() noexcept;
void install_metrics(MetricsRegistry* registry) noexcept;

/// RAII install/restore for the process-wide registry.
class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry* registry);
  ~ScopedMetrics();
  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

 private:
  MetricsRegistry* previous_;
};

// ---------------------------------------------------------------------------
// Trace recorder

/// One Chrome trace event. Spans are "X" (complete) events with a duration;
/// point-in-time markers are "i" instants; "M" carries metadata such as
/// process names. args is a json object (or null for none).
struct TraceEvent {
  std::string name;
  char phase = 'X';
  std::int64_t ts = 0;   // micros
  std::int64_t dur = 0;  // micros, "X" only
  int pid = 1;
  int tid = 1;
  json::Value args;

  /// Convenience arg appenders (create the args object on first use).
  void arg(const std::string& key, const std::string& value);
  void arg(const std::string& key, std::int64_t value);
  void arg(const std::string& key, std::uint64_t value);
  void arg(const std::string& key, double value);
  void arg(const std::string& key, bool value);
};

class TraceRecorder {
 public:
  /// nullptr clock = the process steady clock. The clock must outlive the
  /// recorder.
  explicit TraceRecorder(Clock* clock = nullptr);
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Current trace time in micros (one clock read).
  std::int64_t now();

  /// Appends an event (thread-safe).
  void record(TraceEvent event);

  /// Names a pid lane ("M"/"process_name" metadata in the output).
  void set_process_name(int pid, const std::string& name);

  /// A stable 1-based tid lane for the calling thread (allocated on first
  /// use per thread). Thread pools hand out work by job index, not worker
  /// id, so lanes are how concurrent spans avoid colliding on one tid.
  int lane();

  std::size_t size() const;
  std::vector<TraceEvent> events() const;

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} — process-name
  /// metadata first, then events in record order.
  json::Value to_json() const;
  /// to_json().dump() + newline to a file; throws on I/O failure.
  void write_file(const std::string& path) const;

  /// Folds a worker's trace document (as written by write_file) into this
  /// recorder: every event's pid is remapped to `pid`, tids are kept, and
  /// the lane is named `process_name`. Throws on a malformed document.
  void merge_process(const json::Value& document, int pid,
                     const std::string& process_name);

  /// One event from its trace-event JSON form (shared by merge_process and
  /// the telemetry_check tool). Throws on missing/ill-typed fields.
  static TraceEvent parse_event(const json::Value& value);
  /// The JSON form parse_event reads.
  static json::Value event_to_json(const TraceEvent& event);

 private:
  struct State;
  std::unique_ptr<State> state_;
};

// ---------------------------------------------------------------------------
// Ambient engine binding

/// Default head-sampling cap: per-round events are recorded for the first
/// this-many rounds of each engine run, then stop (the run span still
/// covers the whole run).
constexpr std::int64_t kDefaultTraceRounds = 1024;

/// What an engine run needs to know to trace itself: where to record, which
/// pid/tid lane it lives on, and the per-run round cap.
struct TraceBinding {
  TraceRecorder* recorder = nullptr;
  int pid = 1;
  int tid = 1;
  std::int64_t trace_rounds = kDefaultTraceRounds;
};

/// The calling thread's ambient binding, or nullptr when none is installed.
/// The engine reads this once per run.
const TraceBinding* trace_binding() noexcept;

/// Installs a binding for the current thread for the scope's lifetime
/// (restores the previous one on destruction). The owner of the recorder
/// binds around each unit of work — e.g. run_campaign binds around each
/// cell on whichever pool thread runs it.
class ScopedTraceBinding {
 public:
  explicit ScopedTraceBinding(const TraceBinding& binding);
  ~ScopedTraceBinding();
  ScopedTraceBinding(const ScopedTraceBinding&) = delete;
  ScopedTraceBinding& operator=(const ScopedTraceBinding&) = delete;

 private:
  TraceBinding binding_;
  const TraceBinding* previous_;
};

}  // namespace telemetry
}  // namespace unilocal
