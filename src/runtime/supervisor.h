// Fault-tolerant shard supervision: retries, timeouts, checkpoint/resume,
// and process-level chaos injection.
//
// The PR 5 shard driver spawned one worker per shard through a serial
// std::system loop: no timeout, no retry, and a single crashed / hung /
// corrupted worker killed the whole campaign. This subsystem replaces that
// loop with a ShardSupervisor event loop that treats worker processes the
// way the delivery layer (src/runtime/network.h) treats messages — as an
// unreliable transport whose failures are *recoverable*, because every
// shard is a deterministic pure function of its manifest:
//
//  - Launch.  Workers are fork/exec'd concurrently (argv vectors, no
//    shell), stdout discarded, stderr captured per attempt for
//    diagnostics.
//  - Timeout.  Each attempt gets a wall-clock deadline derived from the
//    shard's ShardCostModel estimate (base + seconds-per-cost-unit x
//    estimated cost); overrunning attempts are SIGKILLed and requeued.
//  - Retry.  A crashed, nonzero-exit, timed-out, or fingerprint-invalid
//    attempt requeues the shard with bounded retries under deterministic
//    exponential backoff plus seeded jitter (splitmix64 over
//    (backoff_seed, shard, attempt) — reruns back off identically).
//  - Acceptance.  A result file is accepted only when it parses AND
//    passes the same merge-layer validation merge_shard_results applies
//    (shard_result_problem: plan hash, shard hash, cell membership,
//    recomputed campaign_grid_hash over the cell identities). A worker
//    that scribbled its output is indistinguishable from one that
//    crashed; both simply retry.
//  - Speculation.  Once enough attempts have completed to estimate the
//    fleet's seconds-per-cost-unit rate, a running attempt that exceeds
//    straggler_factor x its expected duration gets a speculative duplicate
//    launched; the first accepted result wins and the loser is killed.
//    Both compute bit-identical results, so speculation can never change
//    outputs.
//  - Checkpointing.  Every accepted ShardResult is appended to a JSON
//    lines journal keyed by the plan's campaign_grid_hash. A campaign
//    killed mid-flight resumes by skipping journaled shards; because
//    shards are deterministic, the resumed merge is byte-identical to an
//    uninterrupted run (tests/supervisor_test.cpp, CI).
//
// Determinism contract: supervision affects only *when* work runs, never
// what it computes. Merged canonical JSON under any schedule of injected
// faults — as long as retries suffice — is byte-identical to a fault-free
// single-process run of the same grid.
//
// Note on layering: sits ABOVE src/runtime/shard.* (the only files that
// may include it are the CLI/bench/test tier).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/runtime/shard.h"
#include "src/runtime/telemetry.h"

namespace unilocal {

// --- small process/shell helpers --------------------------------------------

/// POSIX single-quoting for logging and shell-transported launch commands
/// (ssh launchers, debug reproduction lines): safe against every
/// metacharacter, the empty string quotes to '', and the single quote
/// itself is spelled '\''. Throws std::runtime_error on embedded NUL —
/// no argv can carry one, so a NUL means the caller is quoting garbage.
std::string shell_quote(const std::string& text);

/// Decodes a waitpid()/std::system() status into prose: "exited N",
/// "killed by signal N", "stopped by signal N", or "wait status N" for
/// anything else. Never confuses the raw encoded status with an exit code.
std::string describe_wait_status(int status);

// --- chaos injection ---------------------------------------------------------

/// What a chaos-injected worker does instead of (or in addition to)
/// honest work. Drawn deterministically per (shard, attempt) so a chaos
/// schedule replays bit-identically under the same seed.
enum class ChaosFault {
  kNone,
  kCrash,      ///< abort() mid-run, before any output is written
  kHang,       ///< sleep past any reasonable deadline (supervisor kills it)
  kCorrupt,    ///< complete the run, then scribble over the output file
  kFlakyExit,  ///< complete the run and write valid output, but exit nonzero
};

const char* chaos_fault_name(ChaosFault fault);

/// Per-fault probabilities, spelled "crash:P,hang:P,corrupt:P,flaky-exit:P"
/// on the CLI (any subset, any order). The probabilities must sum to at
/// most 1 — one draw decides which fault, if any, fires.
struct ChaosOptions {
  double crash = 0.0;
  double hang = 0.0;
  double corrupt = 0.0;
  double flaky_exit = 0.0;
  /// Seed for the per-(shard, attempt) draw; the same seed replays the
  /// same fault schedule.
  std::uint64_t seed = 0;

  bool any() const {
    return crash > 0.0 || hang > 0.0 || corrupt > 0.0 || flaky_exit > 0.0;
  }
};

/// Canonical spelling of the non-zero probabilities ("" when none) — what
/// the sharded driver forwards to workers via --inject=.
std::string chaos_spec_name(const ChaosOptions& options);

/// Parses "kind:P[,kind:P...]"; throws std::runtime_error naming unknown
/// kinds, malformed probabilities, and sums above 1. Does not set `seed`.
ChaosOptions parse_chaos_spec(const std::string& spec);

/// The deterministic draw: which fault (if any) fires for attempt
/// `attempt` (1-based) of shard `shard_index`. Pure function of
/// (options, shard_index, attempt).
ChaosFault draw_chaos_fault(const ChaosOptions& options, int shard_index,
                            int attempt);

// --- checkpoint journal ------------------------------------------------------

/// What read_supervisor_journal recovered: every validated ShardResult a
/// previous (possibly killed) supervision run accepted, in append order.
struct SupervisorJournal {
  /// True when the file existed and carried a parseable header.
  bool found = false;
  std::uint64_t plan_grid_hash = 0;
  std::vector<ShardResult> completed;
};

/// Reads a checkpoint journal and returns the accepted results that
/// validate against `plan` (shard_result_problem — a tampered or stale
/// entry is skipped, so its shard simply re-runs). A truncated trailing
/// line (the supervisor was killed mid-append) is tolerated. Throws
/// std::runtime_error when the journal's header names a DIFFERENT plan
/// grid hash — resuming someone else's campaign would silently merge
/// foreign work. A missing or empty file yields {found = false}.
SupervisorJournal read_supervisor_journal(const std::string& path,
                                          const ShardPlan& plan);

// --- supervision -------------------------------------------------------------

/// Everything a launcher needs to start one attempt of one shard. The
/// worker must write its ShardResult JSON to `result_path`; stderr is
/// redirected to `stderr_path`.
struct ShardAttemptContext {
  int shard_index = 0;
  /// 1-based, counting every launch of this shard (speculative included).
  int attempt = 1;
  bool speculative = false;
  std::string manifest_path;
  std::string result_path;
  std::string stderr_path;
};

/// Builds the argv (argv[0] = executable) for one attempt. No shell is
/// involved; arguments pass through exec verbatim.
using WorkerCommand =
    std::function<std::vector<std::string>(const ShardAttemptContext&)>;

struct SupervisorOptions {
  /// Launches per shard before giving up (>= 1). Speculative launches
  /// count: a shard never runs more than max_attempts processes.
  int max_attempts = 3;
  /// Concurrently running workers; 0 means "one slot per shard".
  int max_concurrent = 0;
  /// Attempt deadline: base + seconds_per_cost x the shard's estimated
  /// cost (ShardCostModel units). Generous by default — the model's units
  /// are abstract, so the scale must swallow slow hosts and sanitized
  /// builds; tests tighten it.
  double base_timeout_seconds = 300.0;
  double timeout_seconds_per_cost = 1e-4;
  /// Exponential backoff before retry r (1-based): min(backoff_max, base x
  /// 2^(r-1)) x (1 + jitter), jitter uniform in [0, 1) drawn via
  /// splitmix64(backoff_seed, shard, attempt) — deterministic per rerun.
  double backoff_base_seconds = 0.05;
  double backoff_max_seconds = 5.0;
  std::uint64_t backoff_seed = 0x5eedULL;
  /// Straggler speculation: once straggler_min_samples attempts have been
  /// accepted, a running attempt whose elapsed time exceeds
  /// straggler_factor x (its cost x the median observed seconds-per-cost)
  /// gets a speculative duplicate (if attempts remain). Disable with
  /// speculate = false.
  bool speculate = true;
  double straggler_factor = 3.0;
  int straggler_min_samples = 2;
  /// Event-loop poll interval.
  double poll_interval_seconds = 0.002;
  /// Scratch directory for manifests / per-attempt results / stderr
  /// captures; must exist. supervise_shards writes
  /// shard-<i>.json manifests here before launching anything.
  std::string scratch_dir;
  /// Checkpoint journal path ("" disables checkpointing). When the file
  /// already holds entries for this plan, their shards are skipped
  /// (resume); new acceptances are appended and flushed line-by-line.
  std::string journal_path;
  /// Cost model for timeouts/speculation (default_shard_cost_model() when
  /// null).
  const ShardCostModel* cost_model = nullptr;
  /// Optional trace recorder: when set, every attempt becomes an "X" span
  /// on (trace_pid, tid = shard_index + 1) and lifecycle transitions
  /// (launch / sigkill / speculate / retry / accept / journal-skip) become
  /// "i" instants. Null disables all span recording.
  telemetry::TraceRecorder* trace = nullptr;
  /// pid lane the supervisor's spans live on (workers get their own lanes
  /// when the caller stitches their trace files via merge_process).
  int trace_pid = 1;
};

/// One launch of one shard, as the supervisor saw it end.
struct ShardAttemptRecord {
  int attempt = 0;
  bool speculative = false;
  double seconds = 0.0;
  /// "accepted", "exited N", "killed by signal N", "timeout after Ns",
  /// "invalid result: ...", "superseded", or "spawn failed: ...".
  std::string outcome;
  std::string stderr_path;
  /// Launch/reap times in seconds since supervision began — the wall
  /// placement of this attempt, not just its duration (end - start ==
  /// seconds up to reap latency).
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  /// True when the supervisor SIGKILLed this attempt (deadline overrun or
  /// superseded by an accepted sibling).
  bool killed = false;
};

/// Per-shard supervision history.
struct ShardSupervision {
  int shard_index = 0;
  bool completed = false;
  /// True when the accepted result came from the checkpoint journal (no
  /// process was launched at all).
  bool from_journal = false;
  int attempts = 0;
  /// Requeues caused by a failed attempt (crash/exit/timeout/invalid).
  int retries = 0;
  /// Speculative duplicates launched while an attempt was still running.
  int stragglers_respawned = 0;
  double total_attempt_seconds = 0.0;
  std::vector<ShardAttemptRecord> log;
};

struct SupervisorReport {
  /// Accepted results in shard-index order (failed shards absent) — feed
  /// straight into merge_shard_results / merge_shard_results_partial.
  std::vector<ShardResult> results;
  /// One entry per plan shard, in shard-index order.
  std::vector<ShardSupervision> shards;
  /// Shards whose retries were exhausted.
  std::vector<int> failed_shards;
  int attempts = 0;
  int retries = 0;
  /// Total re-enqueues: failure retries + speculative launches.
  int requeues = 0;
  int stragglers_respawned = 0;
  int shards_from_journal = 0;
  double elapsed_seconds = 0.0;

  bool all_completed() const { return failed_shards.empty(); }
  /// One message naming every failed shard with its full attempt history
  /// (and a tail of each last attempt's stderr when available).
  std::string failure_summary() const;
};

/// Runs every shard of `plan` to acceptance or retry exhaustion. Never
/// throws on worker failures (they land in the report); throws
/// std::runtime_error on environmental errors — unwritable scratch
/// directory, a journal for a different plan, fork failure.
SupervisorReport supervise_shards(const ShardPlan& plan,
                                  const SupervisorOptions& options,
                                  const WorkerCommand& command);

}  // namespace unilocal
