#include "src/runtime/kernel.h"

#include <algorithm>
#include <stdexcept>

#include "src/algo/arb_coloring.h"
#include "src/algo/cole_vishkin.h"
#include "src/algo/color_reduce.h"
#include "src/algo/edge_color_mm.h"
#include "src/algo/greedy_mis.h"
#include "src/algo/hpartition.h"
#include "src/algo/linial.h"
#include "src/algo/luby.h"
#include "src/algo/mis_from_coloring.h"
#include "src/algo/ruling_set_mc.h"
#include "src/runtime/chain.h"

// Note on layering: like src/runtime/algorithm_registry.*, the default
// table below wires up src/algo lowerings, so this .cpp sits above the
// algorithm layer even though the header is foundational (only local.h).

namespace unilocal {

const char* kernel_mode_name(KernelMode mode) {
  switch (mode) {
    case KernelMode::kOff:
      return "off";
    case KernelMode::kAuto:
      return "auto";
    case KernelMode::kOn:
      return "on";
  }
  return "auto";
}

KernelMode parse_kernel_mode(const std::string& name) {
  if (name == "off") return KernelMode::kOff;
  if (name == "auto") return KernelMode::kAuto;
  if (name == "on") return KernelMode::kOn;
  throw std::runtime_error("unknown kernel mode: " + name +
                           " (expected off, auto, or on)");
}

void KernelRegistry::add(KernelSpec spec) {
  if (spec.name.empty())
    throw std::runtime_error("kernel spec with empty name");
  if (!spec.lower)
    throw std::runtime_error("kernel spec '" + spec.name +
                             "' has no lowering adapter");
  const auto [it, inserted] = entries_.emplace(spec.name, std::move(spec));
  if (!inserted)
    throw std::runtime_error("duplicate kernel spec: " + it->first);
}

bool KernelRegistry::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

std::vector<std::string> KernelRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(entries_.size());
  for (const auto& [name, spec] : entries_) result.push_back(name);
  return result;
}

const KernelSpec& KernelRegistry::spec(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end())
    throw std::runtime_error("unknown kernel: " + name);
  return it->second;
}

std::shared_ptr<const StepKernel> KernelRegistry::lower(
    const std::string& name, const Algorithm& algorithm) const {
  return spec(name).lower(algorithm);
}

namespace {

/// Adapter for rows whose key lowers exactly one Algorithm type: checks
/// the dynamic type and delegates to the algorithm's own kernel().
template <typename AlgorithmT>
std::shared_ptr<const StepKernel> lower_as(const Algorithm& algorithm) {
  const auto* typed = dynamic_cast<const AlgorithmT*>(&algorithm);
  return typed != nullptr ? typed->kernel() : nullptr;
}

KernelRegistry build_default_kernel_registry() {
  KernelRegistry registry;
  registry.add({"luby",
                "Luby randomized MIS: 2-phase propose/resolve machine, "
                "8-byte rank state",
                lower_as<LubyMis>});
  registry.add({"linial",
                "Linial iterated color reduction: init/reduce phases over "
                "the (Delta~, m~) schedule, 8-byte color state",
                lower_as<LinialColoring>});
  registry.add({"color-reduce",
                "one-color-class-per-round palette reduction: init/eliminate "
                "phases, 8-byte color state + 1 port word (neighbour cache)",
                lower_as<ColorReduce>});
  registry.add({"greedy-mis",
                "deterministic greedy-by-identity MIS: 2-phase "
                "propose/resolve machine, stateless",
                lower_as<GreedyMis>});
  registry.add({"cole-vishkin",
                "Cole-Vishkin rooted-forest 3-coloring: init/shrink/tail "
                "phases, 24-byte color/previous/parent state",
                lower_as<ColeVishkin>});
  registry.add({"beta-luby",
                "beta-hop Luby ruling set: fresh/flood/join/dom phases over "
                "a 2*beta+2-round period, 32-byte rank/min/dominated state",
                lower_as<BetaLubyRulingSet>});
  registry.add({"hpartition",
                "arboricity H-partition peeling: round0/peel phases, "
                "16-byte residual-degree/layer state",
                lower_as<HPartition>});
  registry.add({"out-linial",
                "orientation-aware Linial reduction: round0/orient/reduce "
                "phases, 16-byte layer/color state + 1 port word (out flag)",
                lower_as<OutLinialColoring>});
  registry.add({"mis-color-sweep",
                "color-class MIS sweep: round0/sweep phases, 8-byte color "
                "state",
                lower_as<MisColorSweep>});
  registry.add({"proposal-matching",
                "colored proposal maximal matching: round0/phase machine, "
                "32-byte matched/awaiting state + 1 port word (flag bits)",
                lower_as<ProposalMatching>});
  registry.add({"truncated",
                "budget-truncation wrapper: forwards to the inner kernel "
                "and latches the fallback output past the budget",
                lower_as<TruncatedAlgorithm>});
  registry.add({"chain",
                "sequential composition: enter/run/idle/done phases over "
                "per-stage budgets, header + max inner state",
                lower_as<ChainAlgorithm>});
  registry.add({"slc-adapter",
                "strong-local-coloring output adapter: single phase "
                "forwarding to the inner coloring kernel, rewrites the "
                "latched output to the packed SLC color",
                [](const Algorithm& algorithm) {
                  auto kernel = algorithm.kernel();
                  const bool adapted =
                      kernel != nullptr &&
                      kernel->name.rfind("slc-adapter:", 0) == 0;
                  return adapted ? kernel
                                 : std::shared_ptr<const StepKernel>();
                }});
  return registry;
}

}  // namespace

const KernelRegistry& default_kernel_registry() {
  static const KernelRegistry registry = build_default_kernel_registry();
  return registry;
}

}  // namespace unilocal
