// Round-exact execution of LOCAL algorithms on the arena engine.
//
// The default mode wakes every node at round 0 (the paper's standing
// assumption, justified by its Observation 2.1). The staggered mode supports
// arbitrary per-node wake-up rounds and emulates the alpha synchronizer: a
// node performs local round i only once every neighbour has performed local
// round i-1, with early messages buffered — exactly the construction in the
// paper's "Synchronicity and time complexity" discussion.
//
// "Restricted to T rounds" (paper Section 2): set RunOptions::max_rounds=T;
// nodes that have not finished within their first T local rounds are forced
// to terminate with the arbitrary output RunOptions::default_output (0).
//
// Engine layout: node state is struct-of-arrays; all message traffic of a
// round lives in one flat int64 arena addressed by CsrGraph edge indices,
// with the send and receive halves swapped between rounds. Both loops are
// frontier-driven: the simultaneous mode walks a compacted live-node list
// (rebalanced across threads each round) and resets only the span slots
// written last round via per-thread dirty lists, so per-round cost tracks
// the surviving frontier and its traffic rather than n + edges; the
// synchronizer mode schedules with per-node dependency-lag counters and a
// wake-admission queue, so scheduling costs O(total steps + messages)
// instead of an O(n + edges) eligibility rescan per global round. The
// simultaneous mode can step disjoint chunks of the live list on a thread
// pool; messages only cross the round barrier and every node owns a private
// Rng stream, so results are bit-identical for any thread count (the
// engine-equivalence test enforces this against the preserved seed engine in
// src/runtime/reference.h).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "src/runtime/instance.h"
#include "src/runtime/kernel.h"
#include "src/runtime/local.h"
#include "src/runtime/network.h"

namespace unilocal {

struct RunOptions {
  /// Maximum local rounds per node; reaching it forces termination with
  /// default_output.
  std::int64_t max_rounds = std::numeric_limits<std::int64_t>::max() / 4;
  std::int64_t default_output = 0;
  /// Seed for the per-node randomness streams (split by identity).
  std::uint64_t seed = 1;
  /// Optional wake-up round per node (empty = all wake at 0). Non-empty
  /// wake rounds enable the alpha-synchronizer emulation.
  std::vector<std::int64_t> wake_rounds;
  /// Worker threads stepping disjoint node ranges in the simultaneous mode
  /// (1 = fully inline). Outputs are independent of this value; the
  /// synchronizer mode always runs single-threaded.
  int num_threads = 1;
  /// Engine path: the flat step-kernel tier (src/runtime/kernel.h) when the
  /// algorithm is lowered (kAuto, the default), the Process vtable path
  /// always (kOff), or the kernel required (kOn — run_local throws when the
  /// algorithm has no lowering). Outputs are bit-identical either way.
  KernelMode kernel_mode = KernelMode::kAuto;
  /// Delivery layer (src/runtime/network.h): the round-exact synchronous
  /// arena (default), or the seeded event-queue transport with per-edge
  /// latency and fault injection. The delayed mode runs the event loop
  /// single-threaded; outputs are a pure function of (instance, seed,
  /// network), so they stay invariant under num_threads and sharding.
  NetworkOptions network;
};

/// Engine-side counters of one run (RunResult::stats).
struct EngineStats {
  /// Bytes held by the message arenas (word buffers + span tables) at the
  /// end of the run; capacity, not live size.
  std::int64_t arena_bytes = 0;
  /// Maximum number of messages in flight across any single round.
  std::int64_t peak_round_messages = 0;
  /// Total messages sent over the whole run (RunResult::messages_sent,
  /// summed across stages for composed algorithms).
  std::int64_t total_messages = 0;
  /// Total Process::step invocations.
  std::int64_t total_steps = 0;
  /// Node steps executed through the flat kernel path / the Process vtable
  /// path (kernel_steps + vtable_steps == total_steps; composed algorithms
  /// mix both when only some stages are lowered).
  std::int64_t kernel_steps = 0;
  std::int64_t vtable_steps = 0;
  /// Of kernel_steps, how many ran through phase-grouped KernelBatchFn
  /// buckets (the rest went through the scalar per-node loop), and how many
  /// batch calls carried them — kernel_batched_steps / kernel_batch_calls
  /// is the mean batch occupancy (nodes stepped per batch dispatch).
  std::int64_t kernel_batched_steps = 0;
  std::int64_t kernel_batch_calls = 0;
  /// Most unfinished nodes at the start of any round (= n for a non-empty
  /// run; informative per stage in composed algorithms).
  std::int64_t peak_live_nodes = 0;
  /// Unfinished nodes when the run ended (non-zero only when the round cap
  /// or the synchronizer's global cap cut the run off).
  std::int64_t final_live_nodes = 0;
  /// Most nodes stepped within one (global) round: the live-list width in
  /// the simultaneous mode, the eligible-frontier width under the
  /// synchronizer.
  std::int64_t peak_frontier_nodes = 0;
  /// Send-span slots lazily reset through the dirty lists instead of an
  /// O(edges) per-round fill (simultaneous mode only; the engine's clearing
  /// work is proportional to this, not to rounds x edges).
  std::int64_t dirty_spans_cleared = 0;
  /// Fault-injection counters (DelayedNetwork runs; all zero under the
  /// synchronous network): transmissions lost to the drop knob (each
  /// retransmission attempt counts), duplicated deliveries, and the worst
  /// delivery latency in excess of the synchronous one-tick ideal.
  std::int64_t messages_dropped = 0;
  std::int64_t messages_duplicated = 0;
  std::int64_t max_delivery_skew = 0;
  double elapsed_seconds = 0.0;
  /// total_steps / elapsed_seconds (0 when the run was too fast to time).
  double steps_per_second = 0.0;
  int threads = 1;

  /// Folds another run's stats in (composed algorithms aggregate the stats
  /// of their stages): counters add, high-water marks take the max, and
  /// final_live_nodes tracks the most recently merged stage.
  void merge(const EngineStats& other) {
    arena_bytes = std::max(arena_bytes, other.arena_bytes);
    peak_round_messages =
        std::max(peak_round_messages, other.peak_round_messages);
    total_messages += other.total_messages;
    total_steps += other.total_steps;
    kernel_steps += other.kernel_steps;
    vtable_steps += other.vtable_steps;
    kernel_batched_steps += other.kernel_batched_steps;
    kernel_batch_calls += other.kernel_batch_calls;
    peak_live_nodes = std::max(peak_live_nodes, other.peak_live_nodes);
    final_live_nodes = other.final_live_nodes;
    peak_frontier_nodes =
        std::max(peak_frontier_nodes, other.peak_frontier_nodes);
    dirty_spans_cleared += other.dirty_spans_cleared;
    messages_dropped += other.messages_dropped;
    messages_duplicated += other.messages_duplicated;
    max_delivery_skew = std::max(max_delivery_skew, other.max_delivery_skew);
    elapsed_seconds += other.elapsed_seconds;
    steps_per_second =
        elapsed_seconds > 0.0
            ? static_cast<double>(total_steps) / elapsed_seconds
            : 0.0;
    threads = std::max(threads, other.threads);
  }
};

struct RunResult {
  std::vector<std::int64_t> outputs;
  /// Local round in which each node finished (0-based), or max_rounds if it
  /// was cut off.
  std::vector<std::int64_t> finish_rounds;
  /// Global round in which each node finished (equals finish_rounds in the
  /// simultaneous mode; later under staggered wake-ups).
  std::vector<std::int64_t> global_finish_rounds;
  /// True when every node finished of its own accord before the cutoff.
  bool all_finished = false;
  /// The LOCAL running time: max over nodes of (local finish round + 1);
  /// 0 for the empty graph.
  std::int64_t rounds_used = 0;
  /// Global (wall) rounds the synchronizer mode consumed; equals rounds_used
  /// in the simultaneous mode.
  std::int64_t global_rounds = 0;
  std::int64_t messages_sent = 0;
  std::int64_t max_message_words = 0;
  EngineStats stats;
};

/// Reusable engine storage: arenas, span tables, struct-of-arrays node
/// state, receive scratch, and the thread pool. One workspace serves any
/// number of runs in sequence (buffers are cleared, capacity is kept), which
/// is how composed algorithms — the alternation driver, the `fastest`
/// operator, run_sequential stages — share one arena instead of
/// re-allocating per stage. Not safe to share between concurrent runs.
struct EngineWorkspaceState;
class EngineWorkspace {
 public:
  EngineWorkspace();
  ~EngineWorkspace();
  EngineWorkspace(EngineWorkspace&&) noexcept;
  EngineWorkspace& operator=(EngineWorkspace&&) noexcept;

  /// Engine-internal storage (opaque outside src/runtime/runner.cpp).
  EngineWorkspaceState& state() { return *state_; }

 private:
  std::unique_ptr<EngineWorkspaceState> state_;
};

/// Runs one algorithm on an instance. Passing a workspace reuses its
/// buffers; nullptr uses a run-local workspace.
RunResult run_local(const Instance& instance, const Algorithm& algorithm,
                    const RunOptions& options = {},
                    EngineWorkspace* workspace = nullptr);

/// Runs algorithms in sequence (paper's A1;A2): each node starts algorithm
/// k+1 in the global round after it finished algorithm k (alpha-synchronizer
/// semantics), with each algorithm's input being the previous algorithm's
/// per-node output appended to the instance input. Returns one RunResult per
/// stage; the last stage's outputs are the composition's outputs. All stages
/// share one workspace (and therefore one arena).
std::vector<RunResult> run_sequential(const Instance& instance,
                                      const std::vector<const Algorithm*>& algorithms,
                                      const RunOptions& options = {});

/// Post-hoc per-node termination time in the paper's non-simultaneous sense:
/// the least t such that the node finished (in global rounds) no later than
/// t rounds after every node within distance t of it had woken up.
std::vector<std::int64_t> termination_times(
    const Graph& graph, const std::vector<std::int64_t>& wake_rounds,
    const std::vector<std::int64_t>& global_finish_rounds);

}  // namespace unilocal
