// Round-exact execution of LOCAL algorithms.
//
// The default mode wakes every node at round 0 (the paper's standing
// assumption, justified by its Observation 2.1). The staggered mode supports
// arbitrary per-node wake-up rounds and emulates the alpha synchronizer: a
// node performs local round i only once every neighbour has performed local
// round i-1, with early messages buffered — exactly the construction in the
// paper's "Synchronicity and time complexity" discussion.
//
// "Restricted to T rounds" (paper Section 2): set RunOptions::max_rounds=T;
// nodes that have not finished within their first T local rounds are forced
// to terminate with the arbitrary output RunOptions::default_output (0).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "src/runtime/instance.h"
#include "src/runtime/local.h"

namespace unilocal {

struct RunOptions {
  /// Maximum local rounds per node; reaching it forces termination with
  /// default_output.
  std::int64_t max_rounds = std::numeric_limits<std::int64_t>::max() / 4;
  std::int64_t default_output = 0;
  /// Seed for the per-node randomness streams (split by identity).
  std::uint64_t seed = 1;
  /// Optional wake-up round per node (empty = all wake at 0). Non-empty
  /// wake rounds enable the alpha-synchronizer emulation.
  std::vector<std::int64_t> wake_rounds;
};

struct RunResult {
  std::vector<std::int64_t> outputs;
  /// Local round in which each node finished (0-based), or max_rounds if it
  /// was cut off.
  std::vector<std::int64_t> finish_rounds;
  /// Global round in which each node finished (equals finish_rounds in the
  /// simultaneous mode; later under staggered wake-ups).
  std::vector<std::int64_t> global_finish_rounds;
  /// True when every node finished of its own accord before the cutoff.
  bool all_finished = false;
  /// The LOCAL running time: max over nodes of (local finish round + 1);
  /// 0 for the empty graph.
  std::int64_t rounds_used = 0;
  /// Global (wall) rounds the synchronizer mode consumed; equals rounds_used
  /// in the simultaneous mode.
  std::int64_t global_rounds = 0;
  std::int64_t messages_sent = 0;
  std::int64_t max_message_words = 0;
};

/// Runs one algorithm on an instance.
RunResult run_local(const Instance& instance, const Algorithm& algorithm,
                    const RunOptions& options = {});

/// Runs algorithms in sequence (paper's A1;A2): each node starts algorithm
/// k+1 in the global round after it finished algorithm k (alpha-synchronizer
/// semantics), with each algorithm's input being the previous algorithm's
/// per-node output appended to the instance input. Returns one RunResult per
/// stage; the last stage's outputs are the composition's outputs.
std::vector<RunResult> run_sequential(const Instance& instance,
                                      const std::vector<const Algorithm*>& algorithms,
                                      const RunOptions& options = {});

/// Post-hoc per-node termination time in the paper's non-simultaneous sense:
/// the least t such that the node finished (in global rounds) no later than
/// t rounds after every node within distance t of it had woken up.
std::vector<std::int64_t> termination_times(
    const Graph& graph, const std::vector<std::int64_t>& wake_rounds,
    const std::vector<std::int64_t>& global_finish_rounds);

}  // namespace unilocal
