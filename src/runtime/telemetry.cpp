#include "src/runtime/telemetry.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

namespace unilocal {
namespace telemetry {

namespace {

/// Unique id per registry/recorder instance: the per-thread caches below
/// are keyed on it, so a cache entry can never alias a later object that
/// happens to reuse the same address.
std::uint64_t next_epoch() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// ---------------------------------------------------------------------------
// Clock

namespace {

class SteadyClock final : public Clock {
 public:
  std::int64_t now_micros() override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace

Clock& steady_clock() {
  static SteadyClock clock;
  return clock;
}

// ---------------------------------------------------------------------------
// Metrics registry

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

int histogram_bucket(std::int64_t value) {
  if (value <= 0) return 0;
  const int width = std::bit_width(static_cast<std::uint64_t>(value));
  return std::min(width, kHistogramBuckets - 1);
}

bool MetricSnapshot::operator==(const MetricSnapshot& other) const {
  return name == other.name && kind == other.kind && value == other.value &&
         count == other.count && sum == other.sum && min == other.min &&
         max == other.max && buckets == other.buckets;
}

/// One thread's private slice of every metric. Counters and gauges live in
/// `scalar` (sum / running max); histograms allocate a Hist lazily on first
/// observation. Only the owning thread writes; snapshot() reads after the
/// writers are quiescent.
struct MetricsRegistry::Cell {
  struct Hist {
    std::int64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t min = 0;
    std::int64_t max = 0;
    std::array<std::int64_t, kHistogramBuckets> buckets{};
  };
  std::vector<std::int64_t> scalar;
  std::vector<std::unique_ptr<Hist>> hist;

  void ensure(std::size_t size) {
    if (scalar.size() < size) {
      scalar.resize(size, 0);
      hist.resize(size);
    }
  }
};

struct MetricsRegistry::State {
  mutable std::mutex mutex;
  std::vector<std::pair<std::string, MetricKind>> descriptors;
  std::unordered_map<std::string, int> index;
  std::vector<std::unique_ptr<Cell>> cells;
  std::uint64_t epoch = next_epoch();
};

namespace {
thread_local std::vector<std::pair<std::uint64_t, MetricsRegistry::Cell*>>
    t_metric_cells;
}  // namespace

MetricsRegistry::MetricsRegistry() : state_(std::make_unique<State>()) {}
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Cell& MetricsRegistry::local_cell() {
  for (const auto& [epoch, cell] : t_metric_cells) {
    if (epoch == state_->epoch) return *cell;
  }
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->cells.push_back(std::make_unique<Cell>());
  Cell* cell = state_->cells.back().get();
  t_metric_cells.emplace_back(state_->epoch, cell);
  return *cell;
}

int MetricsRegistry::intern(const std::string& name, MetricKind kind) {
  std::lock_guard<std::mutex> lock(state_->mutex);
  auto it = state_->index.find(name);
  if (it != state_->index.end()) {
    if (state_->descriptors[it->second].second != kind) {
      throw std::runtime_error("metric '" + name + "' already registered as " +
                               metric_kind_name(
                                   state_->descriptors[it->second].second));
    }
    return it->second;
  }
  const int id = static_cast<int>(state_->descriptors.size());
  state_->descriptors.emplace_back(name, kind);
  state_->index.emplace(name, id);
  return id;
}

int MetricsRegistry::counter(const std::string& name) {
  return intern(name, MetricKind::kCounter);
}
int MetricsRegistry::gauge(const std::string& name) {
  return intern(name, MetricKind::kGauge);
}
int MetricsRegistry::histogram(const std::string& name) {
  return intern(name, MetricKind::kHistogram);
}

void MetricsRegistry::add(int id, std::int64_t delta) {
  Cell& cell = local_cell();
  cell.ensure(static_cast<std::size_t>(id) + 1);
  cell.scalar[id] += delta;
}

void MetricsRegistry::record_max(int id, std::int64_t value) {
  Cell& cell = local_cell();
  cell.ensure(static_cast<std::size_t>(id) + 1);
  cell.scalar[id] = std::max(cell.scalar[id], value);
}

void MetricsRegistry::observe(int id, std::int64_t value) {
  Cell& cell = local_cell();
  cell.ensure(static_cast<std::size_t>(id) + 1);
  if (!cell.hist[id]) cell.hist[id] = std::make_unique<Cell::Hist>();
  Cell::Hist& h = *cell.hist[id];
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += value;
  ++h.buckets[histogram_bucket(value)];
}

void MetricsRegistry::add(const std::string& name, std::int64_t delta) {
  add(counter(name), delta);
}
void MetricsRegistry::record_max(const std::string& name, std::int64_t value) {
  record_max(gauge(name), value);
}
void MetricsRegistry::observe(const std::string& name, std::int64_t value) {
  observe(histogram(name), value);
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  std::vector<MetricSnapshot> merged(state_->descriptors.size());
  for (std::size_t id = 0; id < state_->descriptors.size(); ++id) {
    merged[id].name = state_->descriptors[id].first;
    merged[id].kind = state_->descriptors[id].second;
  }
  for (const auto& cell : state_->cells) {
    for (std::size_t id = 0; id < cell->scalar.size(); ++id) {
      MetricSnapshot& out = merged[id];
      switch (out.kind) {
        case MetricKind::kCounter:
          out.value += cell->scalar[id];
          break;
        case MetricKind::kGauge:
          out.value = std::max(out.value, cell->scalar[id]);
          break;
        case MetricKind::kHistogram: {
          const Cell::Hist* h = cell->hist[id].get();
          if (!h || h->count == 0) break;
          if (out.count == 0) {
            out.min = h->min;
            out.max = h->max;
          } else {
            out.min = std::min(out.min, h->min);
            out.max = std::max(out.max, h->max);
          }
          out.count += h->count;
          out.sum += h->sum;
          for (int b = 0; b < kHistogramBuckets; ++b) {
            out.buckets[b] += h->buckets[b];
          }
          break;
        }
      }
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return merged;
}

json::Value MetricsRegistry::to_json() const {
  json::Value doc = json::Value::object();
  json::Value rows = json::Value::array();
  for (const MetricSnapshot& m : snapshot()) {
    json::Value row = json::Value::object();
    row.set("name", json::Value::string(m.name));
    row.set("kind", json::Value::string(metric_kind_name(m.kind)));
    if (m.kind == MetricKind::kHistogram) {
      row.set("count", json::Value::number(m.count));
      row.set("sum", json::Value::number(m.sum));
      row.set("min", json::Value::number(m.min));
      row.set("max", json::Value::number(m.max));
      json::Value buckets = json::Value::object();
      for (int b = 0; b < kHistogramBuckets; ++b) {
        if (m.buckets[b] != 0) {
          buckets.set(std::to_string(b), json::Value::number(m.buckets[b]));
        }
      }
      row.set("buckets", std::move(buckets));
    } else {
      row.set("value", json::Value::number(m.value));
    }
    rows.push_back(std::move(row));
  }
  doc.set("metrics", std::move(rows));
  return doc;
}

namespace {
std::atomic<MetricsRegistry*> g_metrics{nullptr};
}  // namespace

MetricsRegistry* metrics() noexcept {
  return g_metrics.load(std::memory_order_acquire);
}

void install_metrics(MetricsRegistry* registry) noexcept {
  g_metrics.store(registry, std::memory_order_release);
}

ScopedMetrics::ScopedMetrics(MetricsRegistry* registry)
    : previous_(metrics()) {
  install_metrics(registry);
}

ScopedMetrics::~ScopedMetrics() { install_metrics(previous_); }

// ---------------------------------------------------------------------------
// Trace recorder

void TraceEvent::arg(const std::string& key, const std::string& value) {
  if (!args.is_object()) args = json::Value::object();
  args.set(key, json::Value::string(value));
}
void TraceEvent::arg(const std::string& key, std::int64_t value) {
  if (!args.is_object()) args = json::Value::object();
  args.set(key, json::Value::number(value));
}
void TraceEvent::arg(const std::string& key, std::uint64_t value) {
  if (!args.is_object()) args = json::Value::object();
  // 64-bit hashes/seeds use the repo's string spelling (see json.h).
  args.set(key, json::Value::string(std::to_string(value)));
}
void TraceEvent::arg(const std::string& key, double value) {
  if (!args.is_object()) args = json::Value::object();
  args.set(key, json::Value::number(value));
}
void TraceEvent::arg(const std::string& key, bool value) {
  if (!args.is_object()) args = json::Value::object();
  args.set(key, json::Value::boolean(value));
}

struct TraceRecorder::State {
  mutable std::mutex mutex;
  Clock* clock = nullptr;
  std::vector<TraceEvent> events;
  std::vector<std::pair<int, std::string>> process_names;
  std::atomic<int> next_lane{1};
  std::uint64_t epoch = next_epoch();
};

namespace {
thread_local std::vector<std::pair<std::uint64_t, int>> t_trace_lanes;
}  // namespace

TraceRecorder::TraceRecorder(Clock* clock) : state_(std::make_unique<State>()) {
  state_->clock = clock != nullptr ? clock : &steady_clock();
}

TraceRecorder::~TraceRecorder() = default;

std::int64_t TraceRecorder::now() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->clock->now_micros();
}

void TraceRecorder::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->events.push_back(std::move(event));
}

void TraceRecorder::set_process_name(int pid, const std::string& name) {
  std::lock_guard<std::mutex> lock(state_->mutex);
  for (auto& [existing_pid, existing_name] : state_->process_names) {
    if (existing_pid == pid) {
      existing_name = name;
      return;
    }
  }
  state_->process_names.emplace_back(pid, name);
}

int TraceRecorder::lane() {
  for (const auto& [epoch, lane] : t_trace_lanes) {
    if (epoch == state_->epoch) return lane;
  }
  const int lane = state_->next_lane.fetch_add(1, std::memory_order_relaxed);
  t_trace_lanes.emplace_back(state_->epoch, lane);
  return lane;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->events.size();
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->events;
}

json::Value TraceRecorder::event_to_json(const TraceEvent& event) {
  json::Value out = json::Value::object();
  out.set("name", json::Value::string(event.name));
  out.set("ph", json::Value::string(std::string(1, event.phase)));
  out.set("ts", json::Value::number(event.ts));
  if (event.phase == 'X') out.set("dur", json::Value::number(event.dur));
  out.set("pid", json::Value::number(static_cast<std::int64_t>(event.pid)));
  out.set("tid", json::Value::number(static_cast<std::int64_t>(event.tid)));
  if (event.args.is_object()) out.set("args", event.args);
  return out;
}

TraceEvent TraceRecorder::parse_event(const json::Value& value) {
  TraceEvent event;
  event.name = value.at("name").as_string();
  const std::string& phase = value.at("ph").as_string();
  if (phase != "X" && phase != "i" && phase != "M") {
    // The recorder only ever emits these three; anything else means the
    // document was not written by write_file.
    throw std::runtime_error("trace event 'ph' must be X, i, or M, got \"" +
                             phase + "\"");
  }
  event.phase = phase[0];
  event.ts = value.at("ts").as_i64();
  if (const json::Value* dur = value.find("dur")) event.dur = dur->as_i64();
  event.pid = static_cast<int>(value.at("pid").as_i64());
  event.tid = static_cast<int>(value.at("tid").as_i64());
  if (const json::Value* args = value.find("args")) event.args = *args;
  return event;
}

json::Value TraceRecorder::to_json() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  json::Value doc = json::Value::object();
  json::Value events = json::Value::array();
  for (const auto& [pid, name] : state_->process_names) {
    TraceEvent meta;
    meta.name = "process_name";
    meta.phase = 'M';
    meta.ts = 0;
    meta.pid = pid;
    meta.tid = 0;
    meta.arg("name", name);
    events.push_back(event_to_json(meta));
  }
  for (const TraceEvent& event : state_->events) {
    events.push_back(event_to_json(event));
  }
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", json::Value::string("ms"));
  return doc;
}

void TraceRecorder::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  out << to_json().dump() << "\n";
  if (!out) throw std::runtime_error("failed writing trace file: " + path);
}

void TraceRecorder::merge_process(const json::Value& document, int pid,
                                  const std::string& process_name) {
  const json::Value& events = document.at("traceEvents");
  std::vector<TraceEvent> parsed;
  parsed.reserve(events.as_array().size());
  for (const json::Value& value : events.as_array()) {
    TraceEvent event = parse_event(value);
    if (event.phase == 'M') continue;  // lane names come from process_name
    event.pid = pid;
    parsed.push_back(std::move(event));
  }
  set_process_name(pid, process_name);
  std::lock_guard<std::mutex> lock(state_->mutex);
  for (TraceEvent& event : parsed) {
    state_->events.push_back(std::move(event));
  }
}

// ---------------------------------------------------------------------------
// Ambient engine binding

namespace {
thread_local const TraceBinding* t_binding = nullptr;
}  // namespace

const TraceBinding* trace_binding() noexcept { return t_binding; }

ScopedTraceBinding::ScopedTraceBinding(const TraceBinding& binding)
    : binding_(binding), previous_(t_binding) {
  t_binding = &binding_;
}

ScopedTraceBinding::~ScopedTraceBinding() { t_binding = previous_; }

}  // namespace telemetry
}  // namespace unilocal
