#include "src/runtime/runner.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <utility>

#include "src/graph/csr.h"
#include "src/graph/params.h"
#include "src/runtime/frontier.h"
#include "src/runtime/telemetry.h"
#include "src/util/math.h"
#include "src/util/thread_pool.h"

namespace unilocal {

namespace {

/// Per-thread accumulators reduced after each round (keeps results
/// independent of the node-stepping interleave).
struct StepDelta {
  std::int64_t messages = 0;
  std::int64_t max_words = 0;
  std::int64_t steps = 0;
  std::int64_t batched_steps = 0;
  std::int64_t batch_calls = 0;
  NodeId newly_finished = 0;
  NodeId cut_off = 0;
  /// Per-phase bucket sizes of this thread's step_bucketed calls; filled
  /// only while a traced round is in flight (empty otherwise).
  std::vector<std::int64_t> phase_sizes;
};

/// Publishes one finished run's counters into the installed metrics
/// registry; a single null check when none is installed. Counters sum and
/// gauges take the max under the registry's per-thread-cell merge, so the
/// merged snapshot is identical for any worker-thread placement of runs.
void publish_engine_metrics(const EngineStats& stats, std::int64_t rounds) {
  telemetry::MetricsRegistry* reg = telemetry::metrics();
  if (reg == nullptr) return;
  reg->add("engine.runs", 1);
  reg->observe("engine.rounds", rounds);
  reg->add("engine.messages", stats.total_messages);
  reg->add("engine.steps", stats.total_steps);
  reg->add("engine.kernel_steps", stats.kernel_steps);
  reg->add("engine.vtable_steps", stats.vtable_steps);
  reg->add("engine.kernel_batched_steps", stats.kernel_batched_steps);
  reg->add("engine.kernel_batch_calls", stats.kernel_batch_calls);
  reg->add("engine.dirty_spans_cleared", stats.dirty_spans_cleared);
  reg->add("engine.messages_dropped", stats.messages_dropped);
  reg->add("engine.messages_duplicated", stats.messages_duplicated);
  reg->record_max("engine.peak_live_nodes", stats.peak_live_nodes);
  reg->record_max("engine.peak_frontier_nodes", stats.peak_frontier_nodes);
  reg->record_max("engine.peak_round_messages", stats.peak_round_messages);
  reg->record_max("engine.max_delivery_skew", stats.max_delivery_skew);
  reg->record_max("engine.arena_bytes", stats.arena_bytes);
}

}  // namespace

/// All storage the engine needs, owned by EngineWorkspace so consecutive
/// runs (alternation steps, run_sequential stages) reuse capacity.
struct EngineWorkspaceState {
  // Struct-of-arrays node state. proc_arena backs the procs' storage and is
  // declared first so the (no-op-delete) Process destructors in ~procs run
  // while its chunks are still alive.
  ProcessArena proc_arena;
  std::vector<std::unique_ptr<Process>> procs;
  std::vector<Rng> rngs;
  std::vector<char> finished;
  std::vector<std::int64_t> outputs;
  std::vector<std::int64_t> local_round;
  std::vector<std::int64_t> finish_local;
  std::vector<std::int64_t> finish_global;

  // Delivery layers (src/runtime/network.h), owned here so consecutive
  // runs reuse their capacity: the double-buffered round arena of the
  // simultaneous mode and the event-queue transport of the delayed mode.
  SynchronousNetwork sim_net;
  DelayedNetwork delayed_net;

  // Delayed-mode scheduling state: pending[v] counts in-edges still owing
  // rounds below v's next local round (v is eligible exactly when awake,
  // unfinished, and pending == 0); step_heap is the (time, node) min-heap
  // of eligible steps, merged against the network's delivery queue.
  std::vector<std::int32_t> pending;
  std::vector<std::pair<std::int64_t, NodeId>> step_heap;

  // Compacted list of unfinished nodes (simultaneous mode), ascending; the
  // per-round thread chunks partition this list, not the node-id space.
  std::vector<NodeId> live;

  // Grow-only history arena (synchronizer mode): hist[e][i] = what the
  // owner of directed edge e emitted in its local round i.
  std::vector<std::vector<Span>> hist;
  std::vector<std::int64_t> hist_words;

  // Synchronizer scheduling state: lag[v] counts unfinished neighbours
  // whose local round trails v's (v is eligible exactly when awake and
  // lag == 0); stepped_round stamps the global round of v's last step so
  // counter maintenance can reconstruct pre-round values.
  std::vector<std::int32_t> lag;
  std::vector<std::int64_t> stepped_round;
  std::vector<NodeId> frontier, next_frontier, candidates;
  StampSet queued, candidate_set;
  WakeSchedule wake_schedule;

  // Packed per-node kernel state (stride-aligned records; see
  // src/runtime/kernel.h) and the per-port word arena, used instead of
  // procs when the run goes through a StepKernel.
  std::vector<std::byte> kernel_state;
  std::vector<std::int64_t> kernel_port_state;

  // Per-thread receive scratch: Message materializations per port with
  // epoch tags so capacity survives across nodes and rounds; kwords is the
  // reusable int64 scratch handed to kernels as KernelCtx::scratch;
  // bucket_nodes/bucket_rounds are the phase-bucketing arrays of the
  // batched kernel path (one slot per kernel phase, capacity persists).
  struct Scratch {
    std::vector<Message> cache;
    std::vector<char> present;
    std::vector<std::uint64_t> epoch;
    std::uint64_t cur_epoch = 0;
    std::vector<std::int64_t> kwords;
    std::vector<std::vector<NodeId>> bucket_nodes;
    std::vector<std::vector<std::int64_t>> bucket_rounds;
  };
  std::vector<Scratch> scratch;

  std::unique_ptr<ThreadPool> pool;
};

EngineWorkspace::EngineWorkspace()
    : state_(std::make_unique<EngineWorkspaceState>()) {}
EngineWorkspace::~EngineWorkspace() = default;
EngineWorkspace::EngineWorkspace(EngineWorkspace&&) noexcept = default;
EngineWorkspace& EngineWorkspace::operator=(EngineWorkspace&&) noexcept =
    default;

namespace {

class ArenaEngine {
 public:
  ArenaEngine(const Instance& instance, const Algorithm& algorithm,
              const RunOptions& options, EngineWorkspaceState& ws)
      : instance_(instance),
        csr_(instance.csr()),
        options_(options),
        ws_(ws),
        n_(instance.graph.num_nodes()) {
    validate_network_options(options.network);
    delayed_mode_ = options.network.kind == NetworkKind::kDelayed;
    // The synchronizer and delayed event loops are sequential; only the
    // simultaneous mode fans the live list out over threads.
    threads_ = options.wake_rounds.empty() && !delayed_mode_
                   ? std::max(1, options.num_threads)
                   : 1;
    threads_ = std::min(threads_, 1 << 14);  // owner tag fits pack_offset
    if (threads_ > 1) {
      if (!ws_.pool || ws_.pool->threads() != threads_)
        ws_.pool = std::make_unique<ThreadPool>(threads_);
    }

    // Ambient per-thread trace binding: read once per run; when none is
    // bound the only per-round cost is the trace_ null test.
    trace_ = telemetry::trace_binding();
    if (trace_ != nullptr && trace_->recorder == nullptr) trace_ = nullptr;

    if (options.kernel_mode != KernelMode::kOff) {
      kernel_ = algorithm.kernel();
      if (kernel_ == nullptr && options.kernel_mode == KernelMode::kOn)
        throw std::runtime_error("kernel mode 'on' but algorithm '" +
                                 algorithm.name() + "' has no kernel lowering");
      if (kernel_ != nullptr) {
        if (kernel_->phases.empty())
          throw std::runtime_error("kernel '" + kernel_->name +
                                   "' has no phases");
        for (const KernelPhase& phase : kernel_->phases) {
          if (phase.fn == nullptr)
            throw std::runtime_error("kernel '" + kernel_->name +
                                     "' phase '" + phase.name +
                                     "' has a null step function");
          if (phase.batch != nullptr) kernel_has_batch_ = true;
        }
      }
    }

    const std::size_t nn = static_cast<std::size_t>(n_);
    // Destroy any previous run's processes before reclaiming their arena.
    ws_.procs.clear();
    ws_.proc_arena.reset();
    ws_.rngs.assign(nn, Rng(0));
    ws_.finished.assign(nn, 0);
    ws_.outputs.assign(nn, 0);
    ws_.local_round.assign(nn, 0);
    ws_.finish_local.assign(nn, -1);
    ws_.finish_global.assign(nn, -1);

    NodeId max_degree = 0;
    Rng base(options.seed);
    for (NodeId v = 0; v < n_; ++v) {
      ws_.rngs[static_cast<std::size_t>(v)] = base.split(
          static_cast<std::uint64_t>(
              instance.identities[static_cast<std::size_t>(v)]));
      max_degree = std::max(max_degree, csr_.degree(v));
    }

    if (kernel_ != nullptr) {
      // Pack every node's POD state record into one zero-filled arena
      // (stride = state_size rounded up to state_align, base aligned by
      // hand so vector reuse never mis-aligns records).
      const std::size_t align = std::max<std::size_t>(kernel_->state_align, 1);
      kstride_ = (static_cast<std::size_t>(kernel_->state_size) + align - 1) /
                 align * align;
      ws_.kernel_state.assign(nn * kstride_ + align, std::byte{0});
      const auto addr =
          reinterpret_cast<std::uintptr_t>(ws_.kernel_state.data());
      kstate_base_ =
          ws_.kernel_state.data() +
          static_cast<std::size_t>((align - addr % align) % align);
      kport_words_ = kernel_->port_state_words;
      ws_.kernel_port_state.assign(
          kport_words_ * static_cast<std::size_t>(csr_.num_directed_edges()),
          0);
      if (kernel_->init_fn != nullptr) {
        for (NodeId v = 0; v < n_; ++v) {
          NodeInit init;
          init.degree = csr_.degree(v);
          init.identity = instance.identities[static_cast<std::size_t>(v)];
          init.input = instance.inputs[static_cast<std::size_t>(v)];
          kernel_->init_fn(kstate_base_ + static_cast<std::size_t>(v) * kstride_,
                           init, kernel_->config.get());
        }
      }
    } else {
      // Vtable path: spawn all processes through the workspace bump arena
      // (one pair of chunks instead of n individual heap allocations).
      ws_.procs.reserve(nn);
      ProcessArena::Scope arena_scope(ws_.proc_arena);
      for (NodeId v = 0; v < n_; ++v) {
        NodeInit init;
        init.degree = csr_.degree(v);
        init.identity = instance.identities[static_cast<std::size_t>(v)];
        init.input = instance.inputs[static_cast<std::size_t>(v)];
        ws_.procs.push_back(algorithm.spawn(init));
      }
    }

    ws_.scratch.resize(static_cast<std::size_t>(threads_));
    for (auto& scratch : ws_.scratch) {
      if (scratch.cache.size() < static_cast<std::size_t>(max_degree)) {
        scratch.cache.resize(static_cast<std::size_t>(max_degree));
        scratch.present.resize(static_cast<std::size_t>(max_degree), 0);
        scratch.epoch.resize(static_cast<std::size_t>(max_degree), 0);
      }
    }

    backends_.reserve(static_cast<std::size_t>(threads_));
    for (int t = 0; t < threads_; ++t) backends_.push_back(Backend{this, t});
  }

  RunResult run_simultaneous() {
    const auto start = std::chrono::steady_clock::now();
    begin_trace_run();
    const std::size_t slots = static_cast<std::size_t>(
        csr_.num_directed_edges());
    SynchronousNetwork& net = ws_.sim_net;
    net.begin_run(slots, threads_);

    ws_.live.resize(static_cast<std::size_t>(n_));
    std::iota(ws_.live.begin(), ws_.live.end(), NodeId{0});

    deltas_.assign(static_cast<std::size_t>(threads_), StepDelta{});
    NodeId live = n_;
    peak_live_ = n_;
    std::int64_t prev_round_messages =
        static_cast<std::int64_t>(slots);  // round 0 assumes a dense start
    std::int64_t round = 0;
    for (; live > 0 && round < options_.max_rounds; ++round) {
      const bool traced = begin_trace_round();
      const std::int64_t trace_t0 =
          traced ? trace_->recorder->now() : 0;
      net.begin_round(prev_round_messages);
      peak_frontier_ = std::max<std::int64_t>(peak_frontier_, live);
      std::int64_t round_messages = 0;
      std::int64_t round_steps = 0;
      std::int64_t round_batched = 0, round_batch_calls = 0;
      const std::size_t live_n = ws_.live.size();
      if (threads_ == 1) {
        step_range(0, 0, live_n, round);
      } else {
        // Rebalance every round: chunk the compacted live list, not the
        // node-id space, so workers stay busy as the frontier shrinks.
        const std::size_t chunk =
            (live_n + static_cast<std::size_t>(threads_) - 1) /
            static_cast<std::size_t>(threads_);
        ws_.pool->run(threads_, [&](int t) {
          const std::size_t lo =
              std::min(live_n, static_cast<std::size_t>(t) * chunk);
          const std::size_t hi = std::min(live_n, lo + chunk);
          step_range(t, lo, hi, round);
        });
      }
      for (auto& delta : deltas_) {
        live -= delta.newly_finished;
        messages_sent_ += delta.messages;
        round_messages += delta.messages;
        max_message_words_ = std::max(max_message_words_, delta.max_words);
        total_steps_ += delta.steps;
        round_steps += delta.steps;
        batched_steps_ += delta.batched_steps;
        batch_calls_ += delta.batch_calls;
        cut_off_ += delta.cut_off;
        round_batched += delta.batched_steps;
        round_batch_calls += delta.batch_calls;
        if (traced && !delta.phase_sizes.empty()) {
          if (trace_phases_.size() < delta.phase_sizes.size())
            trace_phases_.resize(delta.phase_sizes.size(), 0);
          for (std::size_t p = 0; p < delta.phase_sizes.size(); ++p)
            trace_phases_[p] += delta.phase_sizes[p];
        }
        delta = StepDelta{};
      }
      peak_round_messages_ =
          std::max(peak_round_messages_, round_messages);
      prev_round_messages = round_messages;
      net.end_round();
      erase_finished(ws_.live, ws_.finished);
      if (traced) {
        telemetry::TraceEvent event = make_round_event(trace_t0);
        event.arg("round", round);
        event.arg("frontier", static_cast<std::int64_t>(live_n));
        event.arg("messages", round_messages);
        event.arg("steps", round_steps);
        if (kernel_has_batch_) {
          event.arg("batched_steps", round_batched);
          event.arg("batch_calls", round_batch_calls);
        }
        attach_phase_sizes(event);
        trace_->recorder->record(std::move(event));
      }
      if (live == 0) {
        ++round;
        break;
      }
    }
    net.end_run();
    dirty_cleared_ = net.dirty_cleared();
    final_live_ = live;
    RunResult result = finalize(live, round, round);
    fill_stats(result, start);
    return result;
  }

  RunResult run_synchronized(const std::vector<std::int64_t>& wake_rounds) {
    const auto start = std::chrono::steady_clock::now();
    begin_trace_run();
    assert(wake_rounds.size() == static_cast<std::size_t>(n_));
    const std::size_t slots = static_cast<std::size_t>(
        csr_.num_directed_edges());
    ws_.hist.resize(slots);
    for (auto& h : ws_.hist) h.clear();
    ws_.hist_words.clear();
    sync_mode_ = true;

    const std::size_t nn = static_cast<std::size_t>(n_);
    ws_.lag.assign(nn, 0);
    ws_.stepped_round.assign(nn, -1);
    ws_.queued.reset(nn);
    ws_.candidate_set.reset(nn);
    ws_.wake_schedule.init(wake_rounds);
    ws_.frontier.clear();
    ws_.next_frontier.clear();
    ws_.candidates.clear();

    NodeId live = n_;
    peak_live_ = n_;
    std::int64_t global = 0;
    std::int64_t max_wake = 0;
    for (std::int64_t w : wake_rounds) max_wake = std::max(max_wake, w);
    const std::int64_t global_cap = sat_add(
        max_wake,
        sat_add(sat_mul(4, sat_add(options_.max_rounds, 1)),
                4 * static_cast<std::int64_t>(n_) + 16));
    auto& frontier = ws_.frontier;
    while (live > 0 && global < global_cap) {
      // Admit nodes whose wake round has arrived. A node that has never
      // stepped holds the minimum local round, so its lag counter is
      // necessarily 0 and it goes straight onto the frontier; a node whose
      // counter rose after waking re-enters through the candidate pass when
      // the counter returns to 0.
      ws_.wake_schedule.admit(global, [&](NodeId v) {
        const std::size_t vi = static_cast<std::size_t>(v);
        if (!ws_.finished[vi] && ws_.lag[vi] == 0 &&
            ws_.queued.insert(vi, global))
          frontier.push_back(v);
      });
      if (frontier.empty()) {
        // Every unfinished node is asleep or transitively waiting on a
        // sleeper; the reference engine spins no-op global rounds here, so
        // jumping the clock to the next unfinished wake-up is observation-
        // equivalent and O(1) per skipped stretch.
        const auto next = ws_.wake_schedule.next_pending(ws_.finished);
        global = next.has_value() ? std::min(*next, global_cap) : global_cap;
        continue;
      }
      const bool traced = begin_trace_round();
      const std::int64_t trace_t0 =
          traced ? trace_->recorder->now() : 0;
      peak_frontier_ = std::max<std::int64_t>(
          peak_frontier_, static_cast<std::int64_t>(frontier.size()));
      std::int64_t round_messages = 0;
      const std::int64_t steps_before = total_steps_;
      const std::int64_t batched_before = batched_steps_;
      const std::int64_t batch_calls_before = batch_calls_;
      // Phase 1: step the frontier — exactly the eligible snapshot the
      // per-round rescan used to recompute. A batch-capable kernel steps it
      // phase-bucketed first (frontier nodes are mutually independent this
      // global round: the lag counters guarantee no node reads a message a
      // frontier peer sends in the same global round), then the per-node
      // padding/accounting pass runs unchanged.
      for (const NodeId v : frontier)
        ws_.stepped_round[static_cast<std::size_t>(v)] = global;
      if (kernel_has_batch_)
        step_bucketed(0, frontier.data(), frontier.size(), -1,
                      &batched_steps_, &batch_calls_,
                      traced ? &trace_phases_ : nullptr);
      for (const NodeId v : frontier) {
        const std::size_t vi = static_cast<std::size_t>(v);
        const std::int64_t r = ws_.local_round[vi];
        if (!kernel_has_batch_) step_one(0, v, r);
        // Pad ports that stayed silent so hist[e] stays indexed by the
        // sender's local round, then account the round's traffic.
        const std::int64_t base = csr_.offset(v);
        const NodeId deg = csr_.degree(v);
        for (NodeId j = 0; j < deg; ++j) {
          auto& h = ws_.hist[static_cast<std::size_t>(base + j)];
          if (static_cast<std::int64_t>(h.size()) <= r) h.push_back(Span{});
          const Span& s = h.back();
          if (s.words >= 0) {
            ++messages_sent_;
            ++round_messages;
            max_message_words_ = std::max(max_message_words_, s.words);
          }
        }
        ++ws_.local_round[vi];
        ++total_steps_;
        if (ws_.finished[vi]) {
          ws_.finish_local[vi] = r;
          ws_.finish_global[vi] = global;
          --live;
        } else if (ws_.local_round[vi] >= options_.max_rounds) {
          ws_.finished[vi] = 1;
          ws_.outputs[vi] = options_.default_output;
          ++cut_off_;
          ws_.finish_local[vi] = options_.max_rounds;
          ws_.finish_global[vi] = global;
          --live;
        }
      }
      // Phase 2: dependency-counter maintenance. For each edge touched by a
      // step, re-derive both directions' "lags me" contributions from the
      // before/after local rounds (the stepped_round stamp reconstructs a
      // stepped neighbour's pre-round value). Everything whose counter
      // moved — plus every surviving stepped node — becomes a candidate.
      for (const NodeId v : frontier) {
        const std::size_t vi = static_cast<std::size_t>(v);
        const std::int64_t r_v = ws_.local_round[vi] - 1;  // pre-step round
        const bool fin_v = ws_.finished[vi] != 0;
        const NodeId deg = csr_.degree(v);
        for (NodeId j = 0; j < deg; ++j) {
          const NodeId u = csr_.neighbor(v, j);
          const std::size_t ui = static_cast<std::size_t>(u);
          const bool u_stepped = ws_.stepped_round[ui] == global;
          if (!ws_.finished[ui]) {
            // v's contribution to lag[u], before vs after v's step.
            const std::int64_t lr_u_before =
                ws_.local_round[ui] - (u_stepped ? 1 : 0);
            const int before = r_v < lr_u_before ? 1 : 0;
            const int after =
                (!fin_v && r_v + 1 < ws_.local_round[ui]) ? 1 : 0;
            if (after != before) {
              ws_.lag[ui] += after - before;
              if (ws_.candidate_set.insert(ui, global))
                ws_.candidates.push_back(u);
            }
          }
          if (!u_stepped && !fin_v) {
            // The unchanged neighbour u newly lags v exactly when it sits
            // at v's pre-step round.
            if (!ws_.finished[ui] && ws_.local_round[ui] == r_v)
              ++ws_.lag[vi];
          }
        }
        if (!fin_v && ws_.candidate_set.insert(vi, global))
          ws_.candidates.push_back(v);
      }
      // Phase 3: the next frontier is exactly the candidates that ended the
      // round awake, unfinished, and unlagged.
      for (const NodeId c : ws_.candidates) {
        const std::size_t ci = static_cast<std::size_t>(c);
        if (!ws_.finished[ci] && ws_.lag[ci] == 0 &&
            wake_rounds[ci] <= global + 1 && ws_.queued.insert(ci, global + 1))
          ws_.next_frontier.push_back(c);
      }
      ws_.candidates.clear();
      peak_round_messages_ = std::max(peak_round_messages_, round_messages);
      if (traced) {
        telemetry::TraceEvent event = make_round_event(trace_t0);
        event.arg("global", global);
        event.arg("frontier", static_cast<std::int64_t>(frontier.size()));
        event.arg("messages", round_messages);
        event.arg("steps", total_steps_ - steps_before);
        if (kernel_has_batch_) {
          event.arg("batched_steps", batched_steps_ - batched_before);
          event.arg("batch_calls", batch_calls_ - batch_calls_before);
        }
        attach_phase_sizes(event);
        trace_->recorder->record(std::move(event));
      }
      std::swap(frontier, ws_.next_frontier);
      ws_.next_frontier.clear();
      ++global;
    }
    final_live_ = live;
    std::int64_t max_local = 0;
    for (NodeId v = 0; v < n_; ++v)
      max_local =
          std::max(max_local, ws_.local_round[static_cast<std::size_t>(v)]);
    RunResult result = finalize(live, max_local, global);
    fill_stats(result, start);
    return result;
  }

  /// The asynchronous mode: one merged event loop over message deliveries
  /// (the DelayedNetwork's queue) and node steps (ws_.step_heap), both in
  /// deterministic timestamp order with deliveries first at ties. This
  /// generalizes the synchronizer from round stamps to delivery timestamps:
  /// a node performs local round r once every in-edge's contiguous
  /// delivered prefix covers round r-1 (or is saturated — the sender
  /// finished and everything it pulsed has landed), which is exactly the
  /// alpha-synchronizer eligibility rule applied to what has physically
  /// arrived instead of what has been computed. When every pulse is
  /// eventually delivered, each node sees the same message contents in the
  /// same local rounds as the synchronous run, so outputs are bit-identical
  /// to it (the paper's Observation 2.1); drops past the retransmission cap
  /// and crashed nodes starve their neighbourhoods, the queues drain, and
  /// the loop exits cleanly with the survivors finalized as cut off.
  RunResult run_delayed(const std::vector<std::int64_t>& wake_rounds) {
    const auto start = std::chrono::steady_clock::now();
    begin_trace_run();
    DelayedNetwork& net = ws_.delayed_net;
    net.begin_run(csr_, options_.seed, options_.network);
    const std::size_t nn = static_cast<std::size_t>(n_);
    ws_.pending.assign(nn, 0);
    auto& steps = ws_.step_heap;
    steps.clear();
    const auto step_after = [](const std::pair<std::int64_t, NodeId>& a,
                               const std::pair<std::int64_t, NodeId>& b) {
      return a > b;  // (time, node) min-heap; nodes are queued at most once
    };
    const auto push_step = [&](std::int64_t time, NodeId v) {
      steps.emplace_back(time, v);
      std::push_heap(steps.begin(), steps.end(), step_after);
    };

    NodeId live = n_;
    peak_live_ = n_;
    // Round 0 needs no messages: every non-crashed node's first step is
    // scheduled at its wake time (plus a late joiner's extra delay).
    // Crashed nodes never step; they stay live and are finalized as cut
    // off, like any node starved past the cutoff.
    for (NodeId v = 0; v < n_; ++v) {
      if (net.crashed(v)) continue;
      const std::int64_t wake =
          (wake_rounds.empty()
               ? 0
               : wake_rounds[static_cast<std::size_t>(v)]) +
          net.wake_delay(v);
      push_step(wake, v);
    }

    std::int64_t global = 0;
    // Per-tick accounting: deliveries/steps sharing one timestamp form the
    // delayed mode's analogue of a round for the peak stats.
    std::int64_t cur_tick = -1;
    std::int64_t tick_messages = 0, tick_steps = 0;
    const auto enter_tick = [&](std::int64_t time) {
      if (time == cur_tick) return;
      peak_round_messages_ = std::max(peak_round_messages_, tick_messages);
      peak_frontier_ = std::max(peak_frontier_, tick_steps);
      cur_tick = time;
      tick_messages = tick_steps = 0;
    };
    while (live > 0) {
      std::int64_t delivery_time = 0;
      const bool has_delivery = net.next_delivery_time(&delivery_time);
      const bool has_step = !steps.empty();
      if (!has_delivery && !has_step) break;  // stall: starved dependencies
      if (has_delivery && (!has_step || delivery_time <= steps[0].first)) {
        DelayedNetwork::Delivery d;
        net.pop_delivery(&d);
        global = std::max(global, d.time);
        enter_tick(d.time);
        if (d.payload) ++tick_messages;
        const std::size_t ui = static_cast<std::size_t>(d.receiver);
        // A receiver waiting on this edge (stepped at least once, so its
        // pending count is current) may become eligible. Nodes that never
        // stepped need nothing (round 0), so prefix_before < need is
        // impossible for them and the update is skipped naturally — but
        // finished/crashed receivers must be skipped explicitly.
        if (!ws_.finished[ui] && !net.crashed(d.receiver) &&
            ws_.local_round[ui] > 0) {
          const std::int64_t need = ws_.local_round[ui];
          const bool was_blocking =
              !d.saturated_before && d.prefix_before < need;
          const bool now_ready = d.saturated_after || d.prefix_after >= need;
          if (was_blocking && now_ready && --ws_.pending[ui] == 0)
            push_step(d.time, d.receiver);
        }
        continue;
      }
      const auto [now, v] = steps[0];
      std::pop_heap(steps.begin(), steps.end(), step_after);
      steps.pop_back();
      global = std::max(global, now);
      enter_tick(now);
      ++tick_steps;
      const std::size_t vi = static_cast<std::size_t>(v);
      const std::int64_t r = ws_.local_round[vi];
      step_one(0, v, r);
      ++total_steps_;
      ++ws_.local_round[vi];
      if (ws_.finished[vi]) {
        ws_.finish_local[vi] = r;
        ws_.finish_global[vi] = now;
        --live;
      } else if (ws_.local_round[vi] >= options_.max_rounds) {
        ws_.finished[vi] = 1;
        ws_.outputs[vi] = options_.default_output;
        ++cut_off_;
        ws_.finish_local[vi] = options_.max_rounds;
        ws_.finish_global[vi] = now;
        --live;
      }
      // Flush the step's pulses AFTER the finish bookkeeping so a finishing
      // (or cut-off) node's last-round traffic goes out flagged final —
      // receivers saturate those edges instead of waiting forever. The
      // messages of the finishing step are still delivered, matching the
      // synchronous modes.
      const auto delta =
          net.flush_node(v, r, now, ws_.finished[vi] != 0);
      messages_sent_ += delta.messages;
      max_message_words_ = std::max(max_message_words_, delta.max_words);
      if (!ws_.finished[vi]) {
        // Recount the in-edges still owing rounds below the new local
        // round; an immediately-satisfied node re-queues at the same tick.
        const std::int64_t need = ws_.local_round[vi];
        std::int32_t owing = 0;
        const NodeId deg = csr_.degree(v);
        for (NodeId j = 0; j < deg; ++j) {
          const std::int64_t e = csr_.in_edge_index(v, j);
          if (!net.saturated(e) && net.prefix(e) < need) ++owing;
        }
        ws_.pending[vi] = owing;
        if (owing == 0) push_step(now, v);
      }
    }
    enter_tick(cur_tick + 1);  // flush the last tick's peaks
    final_live_ = live;
    std::int64_t max_local = 0;
    for (NodeId v = 0; v < n_; ++v)
      max_local =
          std::max(max_local, ws_.local_round[static_cast<std::size_t>(v)]);
    RunResult result = finalize(live, max_local, global);
    fill_stats(result, start);
    return result;
  }

 private:
  struct Backend final : ContextBackend {
    Backend(ArenaEngine* e, int t) : engine(e), tid(t) {}
    ArenaEngine* engine;
    int tid;
    void send_words(NodeId node, NodeId port, const std::int64_t* data,
                    std::size_t words) override {
      engine->do_send(tid, node, port, data, words);
    }
    std::span<const std::int64_t> recv_words(NodeId node, NodeId port,
                                             bool* present) override {
      return engine->do_recv(tid, node, port, present);
    }
    const Message* recv_message(NodeId node, NodeId port) override {
      return engine->do_recv_message(tid, node, port);
    }
  };

  void do_send(int tid, NodeId node, NodeId port, const std::int64_t* data,
               std::size_t words) {
    if (delayed_mode_) {
      // Staged per port; the event loop flushes the whole step's pulses
      // (with their latency/fault draws) after the step returns.
      ws_.delayed_net.stage(port, data, words);
      return;
    }
    if (!sync_mode_) {
      ws_.sim_net.send(tid, csr_.edge_index(node, port), data, words);
      return;
    }
    const std::int64_t r = ws_.local_round[static_cast<std::size_t>(node)];
    auto& h =
        ws_.hist[static_cast<std::size_t>(csr_.edge_index(node, port))];
    Span s;
    s.offset = static_cast<std::int64_t>(ws_.hist_words.size());
    s.words = static_cast<std::int64_t>(words);
    ws_.hist_words.insert(ws_.hist_words.end(), data, data + words);
    if (static_cast<std::int64_t>(h.size()) <= r)
      h.push_back(s);     // first send on this port this round
    else
      h.back() = s;       // resend: last write wins
  }

  /// Zero-copy arena lookup. In the synchronizer mode the returned span
  /// points into hist_words_, which a same-step send may reallocate — only
  /// do_recv/do_recv_message (which copy through the scratch) may hold it.
  std::span<const std::int64_t> raw_recv(NodeId node, NodeId port,
                                         bool* present) {
    if (delayed_mode_) {
      // Eligibility guarantees the previous round's pulse has been
      // delivered on every non-saturated in-edge, so this lookup sees
      // exactly what the synchronous run would.
      return ws_.delayed_net.recv(
          csr_.in_edge_index(node, port),
          ws_.local_round[static_cast<std::size_t>(node)] - 1, present);
    }
    if (!sync_mode_)
      return ws_.sim_net.recv(csr_.in_edge_index(node, port), present);
    const std::int64_t want =
        ws_.local_round[static_cast<std::size_t>(node)] - 1;
    const auto& h = ws_.hist[static_cast<std::size_t>(
        csr_.in_edge_index(node, port))];
    if (want < 0 || want >= static_cast<std::int64_t>(h.size())) {
      *present = false;
      return {};
    }
    const Span s = h[static_cast<std::size_t>(want)];
    if (s.words < 0) {
      *present = false;
      return {};
    }
    *present = true;
    return {ws_.hist_words.data() + s.offset,
            static_cast<std::size_t>(s.words)};
  }

  std::span<const std::int64_t> do_recv(int tid, NodeId node, NodeId port,
                                        bool* present) {
    // The simultaneous mode reads the receive half, which no send of this
    // round can touch, and the delayed mode's payload arena only grows
    // between steps — both raw spans honour Context::received_span's
    // valid-for-the-step contract directly. The synchronizer mode's history
    // arena grows on send, so hand out the step-stable scratch copy instead.
    if (!sync_mode_) return raw_recv(node, port, present);
    const Message* m = do_recv_message(tid, node, port);
    if (m == nullptr) {
      *present = false;
      return {};
    }
    *present = true;
    return *m;
  }

  const Message* do_recv_message(int tid, NodeId node, NodeId port) {
    auto& scratch = ws_.scratch[static_cast<std::size_t>(tid)];
    const std::size_t p = static_cast<std::size_t>(port);
    if (scratch.epoch[p] != scratch.cur_epoch) {
      bool present = false;
      const auto words = raw_recv(node, port, &present);
      scratch.epoch[p] = scratch.cur_epoch;
      scratch.present[p] = present ? 1 : 0;
      if (present) scratch.cache[p].assign(words.begin(), words.end());
    }
    return scratch.present[p] ? &scratch.cache[p] : nullptr;
  }

  // Non-virtual transport installed into every KernelCtx. Receives are the
  // zero-copy arena lookup (kernels honour the read-before-send contract, so
  // the vtable path's defensive scratch copy is unnecessary); sends share
  // do_send with the vtable path.
  static std::span<const std::int64_t> kernel_recv(void* engine, int tid,
                                                   NodeId node, NodeId port,
                                                   bool* present) {
    (void)tid;
    return static_cast<ArenaEngine*>(engine)->raw_recv(node, port, present);
  }
  static void kernel_send(void* engine, int tid, NodeId node, NodeId port,
                          const std::int64_t* data, std::size_t words) {
    static_cast<ArenaEngine*>(engine)->do_send(tid, node, port, data, words);
  }

  /// One local round of node v through the flat kernel: no Process::step
  /// virtual call, no ContextBackend hops, no per-port Message copies.
  void step_kernel_phase(int tid, NodeId v, std::int64_t round,
                         std::size_t phase) {
    const std::size_t vi = static_cast<std::size_t>(v);
    KernelCtx ctx;
    ctx.node = v;
    ctx.degree = csr_.degree(v);
    ctx.identity = instance_.identities[vi];
    ctx.round = round;
    ctx.input = instance_.inputs[vi];
    ctx.rng = &ws_.rngs[vi];
    ctx.state = kstate_base_ + vi * kstride_;
    ctx.port_state =
        kport_words_ == 0
            ? nullptr
            : ws_.kernel_port_state.data() +
                  static_cast<std::size_t>(csr_.offset(v)) * kport_words_;
    ctx.config = kernel_->config.get();
    ctx.scratch = &ws_.scratch[static_cast<std::size_t>(tid)].kwords;
    ctx.engine = this;
    ctx.tid = tid;
    ctx.recv_fn = &ArenaEngine::kernel_recv;
    ctx.send_fn = &ArenaEngine::kernel_send;
    kernel_->phases[phase].fn(ctx);
    if (ctx.finished) {
      ws_.finished[vi] = 1;
      ws_.outputs[vi] = ctx.output;
    }
  }

  void step_kernel(int tid, NodeId v, std::int64_t round) {
    const std::byte* state =
        kstate_base_ + static_cast<std::size_t>(v) * kstride_;
    step_kernel_phase(tid, v, round,
                      kernel_phase_index(*kernel_, round, state));
  }

  /// The batched bucket view over the engine arrays (KernelBatchCtx must
  /// mirror exactly what step_kernel_phase puts into a scalar KernelCtx).
  KernelBatchCtx make_batch_ctx(int tid, const NodeId* nodes,
                                const std::int64_t* rounds,
                                std::size_t count) {
    KernelBatchCtx b;
    b.nodes = nodes;
    b.rounds = rounds;
    b.count = count;
    b.state_base = kstate_base_;
    b.stride = kstride_;
    b.port_state_base =
        kport_words_ == 0 ? nullptr : ws_.kernel_port_state.data();
    b.port_words = static_cast<std::int64_t>(kport_words_);
    b.csr_offsets = csr_.offsets_data();
    b.identities = instance_.identities.data();
    b.inputs = instance_.inputs.data();
    b.rngs = ws_.rngs.data();
    b.finished = ws_.finished.data();
    b.outputs = ws_.outputs.data();
    b.scratch = &ws_.scratch[static_cast<std::size_t>(tid)].kwords;
    b.config = kernel_->config.get();
    b.engine = this;
    b.tid = tid;
    b.recv_fn = &ArenaEngine::kernel_recv;
    b.send_fn = &ArenaEngine::kernel_send;
    return b;
  }

  /// Phase-grouped kernel stepping: bucket `count` nodes by resolved
  /// kernel_phase_index (one pass over the strided state arena), then run
  /// each bucket through its phase's KernelBatchFn — or the scalar per-node
  /// loop when the phase has none. `uniform_round` >= 0 is the common local
  /// round (simultaneous mode); -1 reads each node's own ws_.local_round
  /// (synchronizer frontiers mix rounds). Bucketing reorders node steps,
  /// which is observation-equivalent: every node owns its RNG stream, its
  /// state record, and its per-edge send slots, and no node of one round's
  /// step set reads what another sent in the same set (simultaneous rounds
  /// deliver next round; synchronizer eligibility forbids same-global-round
  /// dependencies).
  void step_bucketed(int tid, const NodeId* nodes, std::size_t count,
                     std::int64_t uniform_round, std::int64_t* batched_steps,
                     std::int64_t* batch_calls,
                     std::vector<std::int64_t>* phase_sizes = nullptr) {
    auto& scratch = ws_.scratch[static_cast<std::size_t>(tid)];
    const std::size_t nphases = kernel_->phases.size();
    scratch.bucket_nodes.resize(nphases);
    scratch.bucket_rounds.resize(nphases);
    for (std::size_t p = 0; p < nphases; ++p) {
      scratch.bucket_nodes[p].clear();
      scratch.bucket_rounds[p].clear();
    }
    for (std::size_t i = 0; i < count; ++i) {
      const NodeId v = nodes[i];
      const std::int64_t r =
          uniform_round >= 0 ? uniform_round
                             : ws_.local_round[static_cast<std::size_t>(v)];
      const std::size_t p = kernel_phase_index(
          *kernel_, r, kstate_base_ + static_cast<std::size_t>(v) * kstride_);
      scratch.bucket_nodes[p].push_back(v);
      scratch.bucket_rounds[p].push_back(r);
    }
    if (phase_sizes != nullptr) {
      phase_sizes->assign(nphases, 0);
      for (std::size_t p = 0; p < nphases; ++p)
        (*phase_sizes)[p] =
            static_cast<std::int64_t>(scratch.bucket_nodes[p].size());
    }
    for (std::size_t p = 0; p < nphases; ++p) {
      const auto& bucket = scratch.bucket_nodes[p];
      if (bucket.empty()) continue;
      const KernelPhase& phase = kernel_->phases[p];
      if (phase.batch != nullptr) {
        const KernelBatchCtx b = make_batch_ctx(
            tid, bucket.data(), scratch.bucket_rounds[p].data(),
            bucket.size());
        phase.batch(b);
        *batched_steps += static_cast<std::int64_t>(bucket.size());
        ++*batch_calls;
      } else {
        for (std::size_t i = 0; i < bucket.size(); ++i)
          step_kernel_phase(tid, bucket[i], scratch.bucket_rounds[p][i], p);
      }
    }
  }

  void step_one(int tid, NodeId v, std::int64_t round) {
    if (kernel_ != nullptr) {
      step_kernel(tid, v, round);
      return;
    }
    auto& scratch = ws_.scratch[static_cast<std::size_t>(tid)];
    ++scratch.cur_epoch;
    Context ctx = ContextAccess::make(
        &backends_[static_cast<std::size_t>(tid)], v, csr_.degree(v),
        instance_.identities[static_cast<std::size_t>(v)],
        instance_.inputs[static_cast<std::size_t>(v)], round,
        &ws_.rngs[static_cast<std::size_t>(v)]);
    ws_.procs[static_cast<std::size_t>(v)]->step(ctx);
    if (ContextAccess::finished(ctx)) {
      ws_.finished[static_cast<std::size_t>(v)] = 1;
      ws_.outputs[static_cast<std::size_t>(v)] = ContextAccess::output(ctx);
    }
  }

  /// Steps the live-list slice [lo, hi); every listed node is unfinished at
  /// round start (the list is compacted after each round).
  void step_range(int tid, std::size_t lo, std::size_t hi,
                  std::int64_t round) {
    StepDelta& delta = deltas_[static_cast<std::size_t>(tid)];
    // Batch-capable kernels step the whole slice phase-bucketed up front;
    // the per-node loop below then only does the round bookkeeping.
    if (kernel_has_batch_)
      step_bucketed(tid, ws_.live.data() + lo, hi - lo, round,
                    &delta.batched_steps, &delta.batch_calls,
                    trace_round_active_ ? &delta.phase_sizes : nullptr);
    for (std::size_t i = lo; i < hi; ++i) {
      const NodeId v = ws_.live[i];
      if (!kernel_has_batch_) step_one(tid, v, round);
      ++delta.steps;
      ++ws_.local_round[static_cast<std::size_t>(v)];
      if (ws_.finished[static_cast<std::size_t>(v)]) {
        ws_.finish_local[static_cast<std::size_t>(v)] = round;
        ws_.finish_global[static_cast<std::size_t>(v)] = round;
        ++delta.newly_finished;
      } else if (ws_.local_round[static_cast<std::size_t>(v)] >=
                 options_.max_rounds) {
        ws_.finished[static_cast<std::size_t>(v)] = 1;
        ws_.outputs[static_cast<std::size_t>(v)] = options_.default_output;
        ++delta.cut_off;
        ws_.finish_local[static_cast<std::size_t>(v)] = options_.max_rounds;
        ws_.finish_global[static_cast<std::size_t>(v)] = round;
        ++delta.newly_finished;
      }
      // Post-step message accounting over this node's out-ports (identical
      // to the seed engine's outbox scan).
      const std::int64_t base = csr_.offset(v);
      const NodeId deg = csr_.degree(v);
      for (NodeId j = 0; j < deg; ++j) {
        const Span& s = ws_.sim_net.send_span(base + j);
        if (s.words >= 0) {
          ++delta.messages;
          delta.max_words = std::max(delta.max_words, s.words);
        }
      }
    }
  }

  RunResult finalize(NodeId live, std::int64_t max_local,
                     std::int64_t global) {
    RunResult result;
    result.outputs.resize(static_cast<std::size_t>(n_));
    result.finish_rounds.resize(static_cast<std::size_t>(n_));
    result.global_finish_rounds.resize(static_cast<std::size_t>(n_));
    std::int64_t max_finish = -1;
    for (NodeId v = 0; v < n_; ++v) {
      const std::size_t i = static_cast<std::size_t>(v);
      result.outputs[i] =
          ws_.finished[i] ? ws_.outputs[i] : options_.default_output;
      result.finish_rounds[i] =
          ws_.finish_local[i] >= 0 ? ws_.finish_local[i] : options_.max_rounds;
      result.global_finish_rounds[i] =
          ws_.finish_global[i] >= 0 ? ws_.finish_global[i] : global;
      max_finish = std::max(max_finish, result.finish_rounds[i]);
    }
    result.all_finished = (live == 0 && cut_off_ == 0);
    result.rounds_used = n_ == 0 ? 0 : std::min(max_finish + 1, max_local);
    result.global_rounds = global;
    result.messages_sent = messages_sent_;
    result.max_message_words = max_message_words_;
    return result;
  }

  /// Trace helpers. begin_trace_run stamps the run's start on the recorder
  /// clock; begin_trace_round applies the per-run head-sampling cap and
  /// arms per-phase bucket-size collection for the round.
  void begin_trace_run() {
    if (trace_ == nullptr) return;
    trace_run_t0_ = trace_->recorder->now();
  }

  bool begin_trace_round() {
    const bool traced =
        trace_ != nullptr && trace_rounds_recorded_ < trace_->trace_rounds;
    trace_round_active_ = traced && kernel_has_batch_;
    if (traced) {
      ++trace_rounds_recorded_;
      trace_phases_.clear();
    }
    return traced;
  }

  telemetry::TraceEvent make_round_event(std::int64_t t0) {
    telemetry::TraceEvent event;
    event.name = "round";
    event.ts = t0;
    event.dur = trace_->recorder->now() - t0;
    event.pid = trace_->pid;
    event.tid = trace_->tid;
    event.arg("path", kernel_ != nullptr ? "kernel" : "vtable");
    return event;
  }

  void attach_phase_sizes(telemetry::TraceEvent& event) {
    if (trace_phases_.empty()) return;
    json::Value sizes = json::Value::array();
    for (const std::int64_t s : trace_phases_)
      sizes.push_back(json::Value::number(s));
    event.args.set("phases", std::move(sizes));
  }

  void fill_stats(RunResult& result,
                  std::chrono::steady_clock::time_point start) {
    auto& stats = result.stats;
    stats.total_steps = total_steps_;
    stats.kernel_steps = kernel_ != nullptr ? total_steps_ : 0;
    stats.vtable_steps = kernel_ != nullptr ? 0 : total_steps_;
    stats.kernel_batched_steps = batched_steps_;
    stats.kernel_batch_calls = batch_calls_;
    stats.peak_round_messages = peak_round_messages_;
    stats.total_messages = messages_sent_;
    stats.peak_live_nodes = peak_live_;
    stats.final_live_nodes = final_live_;
    stats.peak_frontier_nodes = peak_frontier_;
    stats.dirty_spans_cleared = dirty_cleared_;
    stats.threads = threads_;
    std::int64_t bytes = 0;
    if (delayed_mode_) {
      const DelayedNetwork& net = ws_.delayed_net;
      stats.messages_dropped = net.dropped();
      stats.messages_duplicated = net.duplicated();
      stats.max_delivery_skew = net.max_skew();
      bytes += net.arena_bytes();
      bytes += static_cast<std::int64_t>(ws_.step_heap.capacity() *
                                         sizeof(ws_.step_heap[0]));
    } else if (sync_mode_) {
      bytes += static_cast<std::int64_t>(ws_.hist_words.capacity()) * 8;
      for (const auto& h : ws_.hist)
        bytes += static_cast<std::int64_t>(h.capacity() * sizeof(Span));
    } else {
      bytes += ws_.sim_net.arena_bytes();
    }
    bytes += static_cast<std::int64_t>(ws_.kernel_state.capacity());
    bytes += static_cast<std::int64_t>(ws_.kernel_port_state.capacity()) * 8;
    bytes += static_cast<std::int64_t>(ws_.proc_arena.bytes_used());
    stats.arena_bytes = bytes;
    stats.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    stats.steps_per_second =
        stats.elapsed_seconds > 0.0
            ? static_cast<double>(total_steps_) / stats.elapsed_seconds
            : 0.0;
    if (trace_ != nullptr) {
      telemetry::TraceEvent event;
      event.name = "engine.run";
      event.ts = trace_run_t0_;
      event.dur = trace_->recorder->now() - trace_run_t0_;
      event.pid = trace_->pid;
      event.tid = trace_->tid;
      event.arg("mode", delayed_mode_  ? "delayed"
                        : sync_mode_   ? "synchronized"
                                       : "simultaneous");
      event.arg("path", kernel_ != nullptr ? "kernel" : "vtable");
      event.arg("n", static_cast<std::int64_t>(n_));
      event.arg("rounds", result.rounds_used);
      event.arg("global_rounds", result.global_rounds);
      event.arg("messages", result.messages_sent);
      event.arg("steps", stats.total_steps);
      trace_->recorder->record(std::move(event));
    }
    publish_engine_metrics(stats, result.rounds_used);
  }

  const Instance& instance_;
  const CsrGraph& csr_;
  const RunOptions& options_;
  EngineWorkspaceState& ws_;
  const NodeId n_;
  int threads_ = 1;
  // Resolved kernel path (null = vtable) and its packed-state geometry.
  std::shared_ptr<const StepKernel> kernel_;
  std::byte* kstate_base_ = nullptr;
  std::size_t kstride_ = 0;
  std::size_t kport_words_ = 0;
  // True when any kernel phase has a KernelBatchFn: the simultaneous and
  // synchronizer loops then step phase-bucketed (the delayed event loop is
  // inherently one-node-at-a-time and always steps scalar).
  bool kernel_has_batch_ = false;
  std::int64_t batched_steps_ = 0;
  std::int64_t batch_calls_ = 0;
  bool sync_mode_ = false;
  bool delayed_mode_ = false;
  // Ambient trace binding (null = untraced run) and per-run trace state.
  const telemetry::TraceBinding* trace_ = nullptr;
  std::int64_t trace_run_t0_ = 0;
  std::int64_t trace_rounds_recorded_ = 0;
  bool trace_round_active_ = false;
  std::vector<std::int64_t> trace_phases_;
  std::vector<Backend> backends_;
  std::vector<StepDelta> deltas_;
  std::int64_t messages_sent_ = 0;
  std::int64_t max_message_words_ = 0;
  std::int64_t peak_round_messages_ = 0;
  std::int64_t total_steps_ = 0;
  std::int64_t peak_live_ = 0;
  std::int64_t final_live_ = 0;
  std::int64_t peak_frontier_ = 0;
  std::int64_t dirty_cleared_ = 0;
  NodeId cut_off_ = 0;
};

}  // namespace

RunResult run_local(const Instance& instance, const Algorithm& algorithm,
                    const RunOptions& options, EngineWorkspace* workspace) {
  std::optional<EngineWorkspace> local;
  if (workspace == nullptr) workspace = &local.emplace();
  ArenaEngine engine(instance, algorithm, options, workspace->state());
  if (options.network.kind == NetworkKind::kDelayed)
    return engine.run_delayed(options.wake_rounds);
  if (options.wake_rounds.empty()) return engine.run_simultaneous();
  return engine.run_synchronized(options.wake_rounds);
}

std::vector<RunResult> run_sequential(
    const Instance& instance, const std::vector<const Algorithm*>& algorithms,
    const RunOptions& options) {
  std::vector<RunResult> results;
  Instance current = instance;
  std::vector<std::int64_t> wake =
      options.wake_rounds.empty()
          ? std::vector<std::int64_t>(
                static_cast<std::size_t>(instance.num_nodes()), 0)
          : options.wake_rounds;
  std::uint64_t seed = options.seed;
  EngineWorkspace workspace;  // one arena across all stages
  for (const Algorithm* algorithm : algorithms) {
    RunOptions stage_options = options;
    stage_options.wake_rounds = wake;
    stage_options.seed = seed++;
    RunResult result =
        run_local(current, *algorithm, stage_options, &workspace);
    // The next stage starts at each node in the global round right after
    // this one finished there, taking this stage's output as an extra input
    // word (Observation 2.1 composition).
    for (NodeId v = 0; v < current.num_nodes(); ++v) {
      current.inputs[static_cast<std::size_t>(v)].push_back(
          result.outputs[static_cast<std::size_t>(v)]);
      wake[static_cast<std::size_t>(v)] =
          result.global_finish_rounds[static_cast<std::size_t>(v)] + 1;
    }
    results.push_back(std::move(result));
  }
  return results;
}

std::vector<std::int64_t> termination_times(
    const Graph& graph, const std::vector<std::int64_t>& wake_rounds,
    const std::vector<std::int64_t>& global_finish_rounds) {
  const NodeId n = graph.num_nodes();
  std::vector<std::int64_t> result(static_cast<std::size_t>(n), 0);
  for (NodeId u = 0; u < n; ++u) {
    // Incremental BFS from u; for each radius t, the max wake round within
    // distance t.
    std::vector<NodeId> dist(static_cast<std::size_t>(n), -1);
    std::vector<NodeId> frontier{u};
    dist[static_cast<std::size_t>(u)] = 0;
    std::int64_t max_wake = wake_rounds[static_cast<std::size_t>(u)];
    std::int64_t t = 0;
    const std::int64_t finish = global_finish_rounds[static_cast<std::size_t>(u)];
    while (finish > max_wake + t) {
      // Expand to radius t+1.
      std::vector<NodeId> next;
      for (NodeId v : frontier) {
        for (NodeId w : graph.neighbors(v)) {
          if (dist[static_cast<std::size_t>(w)] < 0) {
            dist[static_cast<std::size_t>(w)] =
                dist[static_cast<std::size_t>(v)] + 1;
            max_wake = std::max(max_wake,
                                wake_rounds[static_cast<std::size_t>(w)]);
            next.push_back(w);
          }
        }
      }
      ++t;
      if (next.empty()) {
        // Whole component seen; t larger than any distance, keep growing t
        // until the inequality holds.
        while (finish > max_wake + t) ++t;
        break;
      }
      frontier = std::move(next);
    }
    result[static_cast<std::size_t>(u)] = t;
  }
  return result;
}

}  // namespace unilocal
