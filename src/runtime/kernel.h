// Step kernels: algorithms compiled to flat, devirtualized round functions.
//
// A StepKernel is the lowered form of an Algorithm: instead of one
// heap-allocated Process (vtable + private members) per node, the engine
// keeps every node's state as a fixed-size POD record packed into one
// engine-owned arena, and runs each local round by calling a free function
// through a plain function pointer. Receives hand out zero-copy spans into
// the engine's message arenas and sends write them directly — no
// Process::step virtual call, no ContextBackend virtual hops, and no
// per-port Message materialization on the hot path. The engine loops,
// frontier lists, message arenas, RNG streams, and round accounting are
// exactly the ones the vtable path uses, so a kernel run is bit-identical
// to the Process run of the same algorithm (tests/kernel_test.cpp enforces
// this against both engine modes and the seed reference engine).
//
// The shape follows the classic runtime-graph lowering (flat node records,
// a phase table, function-pointer callbacks over a scratchpad): a kernel
// declares its per-node state layout (state_size/state_align), an optional
// per-port state width (port_state_words, for degree-sized caches such as
// color_reduce's neighbour palette), an optional spawn-time initializer,
// and a phase/state-machine table — one KernelStepFn per phase with a
// selector mapping the local round (and state/config) to the phase to run.
//
// Lowering contract (what "bit-identical" requires of a kernel):
//   - consume the node RNG in exactly the order the Process does;
//   - send the same words to the same ports in the same order;
//   - read all messages BEFORE the first send of a step: in the
//     synchronizer mode recv() spans point into the history arena, which a
//     send may grow (the vtable path pays a defensive copy instead).
//
// Selection is RunOptions::kernel_mode (off / auto / on): `auto` uses the
// kernel whenever Algorithm::kernel() provides one and falls back to the
// vtable path otherwise — composed pipelines thereby pick up kernels
// stage-by-stage; `on` requires one and throws when the algorithm has no
// lowering.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/runtime/local.h"
#include "src/util/rng.h"

namespace unilocal {

/// Engine path selection, plumbed from the CLI (--kernel=) through
/// CampaignOptions / UniformRunOptions / RunOptions.
enum class KernelMode {
  kOff,   // always the Process vtable path
  kAuto,  // kernel when the algorithm is lowered, vtable otherwise
  kOn,    // kernel required; run_local throws when there is no lowering
};

/// Stable names ("off", "auto", "on"); parse throws std::runtime_error on
/// anything else.
const char* kernel_mode_name(KernelMode mode);
KernelMode parse_kernel_mode(const std::string& name);

struct KernelCtx;

/// One phase of a kernel's state machine: a plain function, one local
/// round.
using KernelStepFn = void (*)(KernelCtx&);
/// Spawn-time state initializer; `state` is zero-filled before the call.
using KernelInitFn = void (*)(std::byte* state, const NodeInit& init,
                              const void* config);
/// Maps (local round, node state, config) to the phase index to run.
using KernelSelectFn = std::uint16_t (*)(std::int64_t round,
                                         const std::byte* state,
                                         const void* config);

/// Engine transport installed into every KernelCtx: non-virtual free
/// functions over the engine's arenas (one perfectly-predicted indirect
/// call per send/receive instead of two virtual hops and a Message copy).
using KernelRecvFn = std::span<const std::int64_t> (*)(void* engine, int tid,
                                                       NodeId node,
                                                       NodeId port,
                                                       bool* present);
using KernelSendFn = void (*)(void* engine, int tid, NodeId node, NodeId port,
                              const std::int64_t* data, std::size_t words);

/// Per-step view handed to a KernelStepFn — the devirtualized counterpart
/// of Context. Built by the engine per node step; valid only for the call.
struct KernelCtx {
  // What the node knows (mirrors Context::degree/id/input/round).
  NodeId node = 0;
  NodeId degree = 0;
  std::int64_t identity = 0;
  std::int64_t round = 0;
  std::span<const std::int64_t> input;
  /// Private randomness stream of this node (same split-by-identity stream
  /// the vtable path hands out).
  Rng* rng = nullptr;

  /// This node's packed state record (StepKernel::state_size bytes,
  /// zero-filled at spawn unless init_fn wrote it).
  std::byte* state = nullptr;
  /// This node's per-port words (degree * StepKernel::port_state_words
  /// int64s, zero-filled at spawn); null when port_state_words == 0.
  std::int64_t* port_state = nullptr;
  /// The kernel's algorithm-wide read-only config blob.
  const void* config = nullptr;
  /// Per-thread reusable int64 scratch (capacity persists across steps).
  std::vector<std::int64_t>* scratch = nullptr;

  // Finish latch (mirrors Context::finish).
  bool finished = false;
  std::int64_t output = 0;

  // Engine transport; filled by the engine, opaque to kernels.
  void* engine = nullptr;
  int tid = 0;
  KernelRecvFn recv_fn = nullptr;
  KernelSendFn send_fn = nullptr;

  /// The node's state record viewed as T (sizeof(T) == state_size).
  template <typename T>
  T& state_as() {
    return *reinterpret_cast<T*>(state);
  }

  /// Message from neighbour port j sent in the previous round; empty and
  /// absent when none arrived. Zero-copy: in the synchronizer mode the span
  /// is invalidated by this step's first send — read before sending.
  std::span<const std::int64_t> recv(NodeId j, bool* present) {
    return recv_fn(engine, tid, node, j, present);
  }

  /// Sends the words to port j (delivered next round; last write wins).
  void send(NodeId j, const std::int64_t* data, std::size_t words) {
    send_fn(engine, tid, node, j, data, words);
  }
  void send(NodeId j, std::initializer_list<std::int64_t> words) {
    send_fn(engine, tid, node, j, words.begin(), words.size());
  }

  /// Sends the same words to every neighbour, ports in ascending order
  /// (matching Context::broadcast).
  void broadcast(std::initializer_list<std::int64_t> words) {
    for (NodeId j = 0; j < degree; ++j)
      send_fn(engine, tid, node, j, words.begin(), words.size());
  }

  void finish(std::int64_t out) {
    finished = true;
    output = out;
  }
};

/// Batched counterpart of KernelCtx: one bucket of same-phase nodes per
/// call. The engine groups the round's live/frontier list by resolved
/// kernel_phase_index and hands each bucket to the phase's KernelBatchFn
/// (when it has one) instead of building a KernelCtx per node — the batch
/// fn loops the bucket itself, so the per-node phase body inlines into one
/// tight loop over the strided state arena (the shape the compiler can
/// vectorize). Aliasing: records of distinct nodes never overlap
/// (stride >= state_size), and within a bucket every node owns its own RNG
/// stream and per-edge send slots, so nodes may be stepped in any order —
/// but each node must still read all of its messages before its first send
/// (the synchronizer-mode span invalidation applies per node exactly as in
/// the scalar contract above).
struct KernelBatchCtx {
  /// The bucket: count node ids, with rounds[i] the local round nodes[i]
  /// is stepping (uniform in simultaneous mode; per-node under the
  /// synchronizer).
  const NodeId* nodes = nullptr;
  const std::int64_t* rounds = nullptr;
  std::size_t count = 0;

  /// The packed state arena: node v's record lives at
  /// state_base + v * stride.
  std::byte* state_base = nullptr;
  std::size_t stride = 0;

  /// Per-port lane (null / 0 when the kernel declares none): node v's words
  /// start at port_state_base + csr_offsets[v] * port_words.
  std::int64_t* port_state_base = nullptr;
  std::int64_t port_words = 0;

  /// Engine-side per-NodeId tables: CSR adjacency offsets (degree(v) =
  /// csr_offsets[v+1] - csr_offsets[v]), identities, spawn inputs, private
  /// RNG streams, and the finish/output latches.
  const std::int64_t* csr_offsets = nullptr;
  const std::int64_t* identities = nullptr;
  const std::vector<std::int64_t>* inputs = nullptr;
  Rng* rngs = nullptr;
  char* finished = nullptr;
  std::int64_t* outputs = nullptr;

  /// Shared per-thread scratch and the kernel's config blob.
  std::vector<std::int64_t>* scratch = nullptr;
  const void* config = nullptr;

  // Engine transport (identical to the scalar path).
  void* engine = nullptr;
  int tid = 0;
  KernelRecvFn recv_fn = nullptr;
  KernelSendFn send_fn = nullptr;

  /// The scalar view of bucket slot i — batch fns that share their body
  /// with the scalar KernelStepFn build one of these per node and call the
  /// phase body directly (a plain call the compiler inlines, instead of the
  /// engine's per-node indirect dispatch).
  KernelCtx node_ctx(std::size_t i) const {
    const NodeId v = nodes[i];
    KernelCtx ctx;
    ctx.node = v;
    ctx.degree = static_cast<NodeId>(csr_offsets[v + 1] - csr_offsets[v]);
    ctx.identity = identities[v];
    ctx.round = rounds[i];
    ctx.input = std::span<const std::int64_t>(
        inputs[v].data(), inputs[v].size());
    ctx.rng = &rngs[v];
    ctx.state = state_base + static_cast<std::size_t>(v) * stride;
    ctx.port_state =
        port_words > 0 ? port_state_base + csr_offsets[v] * port_words
                       : nullptr;
    ctx.config = config;
    ctx.scratch = scratch;
    ctx.engine = engine;
    ctx.tid = tid;
    ctx.recv_fn = recv_fn;
    ctx.send_fn = send_fn;
    return ctx;
  }

  /// Latches a stepped node's finish/output into the engine arrays (what
  /// the engine does after a scalar step).
  void latch(std::size_t i, const KernelCtx& ctx) const {
    if (ctx.finished) {
      finished[nodes[i]] = 1;
      outputs[nodes[i]] = ctx.output;
    }
  }
};

/// One phase over one bucket of same-phase nodes. Must be bit-identical to
/// running the phase's scalar fn over the bucket in order (the engine's
/// batched-vs-scalar tests enforce this on every family / thread count /
/// network model).
using KernelBatchFn = void (*)(const KernelBatchCtx&);

/// One row of a kernel's phase/state-machine table.
struct KernelPhase {
  std::string name;
  KernelStepFn fn = nullptr;
  /// Optional batched form of `fn`; phases without one run the scalar
  /// per-node loop.
  KernelBatchFn batch = nullptr;
};

/// The lowered algorithm descriptor. Like spawned Processes, a kernel (and
/// its config blob) must stay valid for the lifetime of the Algorithm that
/// produced it.
struct StepKernel {
  std::string name;
  /// POD per-node state layout; the engine packs n records of this shape
  /// into one arena (stride = state_size rounded up to state_align).
  std::uint32_t state_size = 0;
  std::uint32_t state_align = 1;
  /// int64 words of per-port state per directed edge (0 = none); addressed
  /// through KernelCtx::port_state.
  std::uint32_t port_state_words = 0;
  /// Optional spawn-time initializer (state is zero-filled either way).
  KernelInitFn init_fn = nullptr;
  /// The state-machine table; local round r runs
  /// phases[select_fn(r, state, config)], or phases[r % phases.size()]
  /// when select_fn is null. Must be non-empty with non-null fns.
  std::vector<KernelPhase> phases;
  KernelSelectFn select_fn = nullptr;
  /// Algorithm-wide read-only parameters (schedules, palettes, budgets)
  /// shared by every node; exposed as KernelCtx::config.
  std::shared_ptr<const void> config;
};

/// Resolves which phase of `kernel` local round `round` runs — the exact
/// dispatch rule both engine loops use (shared so composed kernels such as
/// the truncation wrapper forward to their inner kernel identically).
inline std::size_t kernel_phase_index(const StepKernel& kernel,
                                      std::int64_t round,
                                      const std::byte* state) {
  if (kernel.select_fn != nullptr)
    return kernel.select_fn(round, state, kernel.config.get());
  const std::size_t n = kernel.phases.size();
  return n == 1 ? 0
               : static_cast<std::size_t>(round % static_cast<std::int64_t>(n));
}

/// One registry row: a key (matching the algorithm-registry building block
/// the kernel lowers), documentation, and the Algorithm -> StepKernel
/// adapter (returns null when the algorithm is not an instance the key
/// lowers — e.g. asking the "luby" row to lower a ColorReduce).
struct KernelSpec {
  std::string name;
  std::string describe;
  std::function<std::shared_ptr<const StepKernel>(const Algorithm&)> lower;
};

/// String-keyed table of kernel lowerings, symmetric with
/// AlgorithmRegistry. The engine itself resolves kernels through
/// Algorithm::kernel(); the registry is the introspectable index of what
/// is lowered (CLI listings, tests, docs).
class KernelRegistry {
 public:
  /// Throws std::runtime_error on duplicate/empty names or missing adapters.
  void add(KernelSpec spec);

  bool contains(const std::string& name) const;
  /// Registered keys, sorted.
  std::vector<std::string> names() const;
  /// Throws std::runtime_error on unknown names.
  const KernelSpec& spec(const std::string& name) const;
  /// Lowers `algorithm` through the named row. Throws std::runtime_error on
  /// unknown kernel keys; returns null when the algorithm is not an
  /// instance this row can lower.
  std::shared_ptr<const StepKernel> lower(const std::string& name,
                                          const Algorithm& algorithm) const;

 private:
  std::map<std::string, KernelSpec> entries_;
};

/// The built-in table — every registry building block is lowered: luby,
/// linial, color-reduce, greedy-mis, cole-vishkin, beta-luby, hpartition,
/// out-linial, mis-color-sweep, proposal-matching, plus the composite
/// rows (chain, truncated, slc-adapter) that forward to their inner
/// kernels. With these, every default_algorithm_registry() pipeline runs
/// end to end under --kernel=on.
const KernelRegistry& default_kernel_registry();

}  // namespace unilocal
