#include "src/runtime/network.h"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <tuple>

namespace unilocal {

namespace {

/// hist_ slot sentinel: the pulse for this round exists but has not been
/// delivered yet (distinct from -1, a delivered silent pulse).
constexpr std::int64_t kNotArrived = -2;

/// A transmission lost this many consecutive times is abandoned — the
/// receiver stalls and the run ends at the cutoff instead of spinning. At
/// drop=0.05 abandonment has probability 0.05^64: never; it only bites at
/// adversarial drop rates.
constexpr int kMaxRetransmits = 64;

/// Stream-tag salts separating the network's RNG bases from each other and
/// from the per-node algorithm streams (which split Rng(seed) by identity).
constexpr std::uint64_t kEdgeStreamSalt = 0x6e6574776f726b31ULL;   // "network1"
constexpr std::uint64_t kFaultStreamSalt = 0x6e6574776f726b32ULL;  // "network2"

/// Heavy-tail level cap: delays span [1, 2^17).
constexpr int kHeavyTailMaxLevel = 16;

}  // namespace

const char* delay_preset_name(DelayPreset preset) {
  switch (preset) {
    case DelayPreset::kUniform:
      return "uniform";
    case DelayPreset::kWeighted:
      return "weighted";
    case DelayPreset::kHeavyTail:
      return "heavytail";
  }
  return "uniform";
}

std::string network_spec_name(const NetworkOptions& options) {
  if (options.kind == NetworkKind::kSynchronous) return "sync";
  return std::string("delay:") + delay_preset_name(options.preset);
}

NetworkOptions parse_network_spec(const std::string& spec) {
  NetworkOptions options;
  if (spec == "sync") return options;
  options.kind = NetworkKind::kDelayed;
  if (spec == "delay:uniform") {
    options.preset = DelayPreset::kUniform;
    return options;
  }
  if (spec == "delay:weighted") {
    options.preset = DelayPreset::kWeighted;
    return options;
  }
  if (spec == "delay:heavytail") {
    options.preset = DelayPreset::kHeavyTail;
    return options;
  }
  throw std::runtime_error(
      "unknown network model '" + spec +
      "' (expected sync, delay:uniform, delay:weighted, or delay:heavytail)");
}

namespace {

/// Whole-string numeric parse; returns false on empty/trailing garbage.
bool parse_double(const std::string& text, double* value) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  *value = std::strtod(text.c_str(), &end);
  return errno == 0 && end == text.c_str() + text.size();
}

bool parse_i64(const std::string& text, std::int64_t* value) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  *value = std::strtoll(text.c_str(), &end, 10);
  return errno == 0 && end == text.c_str() + text.size();
}

}  // namespace

double parse_unit_interval(const char* flag, const std::string& text) {
  double value = 0.0;
  if (!parse_double(text, &value) || !(value >= 0.0) || !(value <= 1.0))
    throw std::runtime_error(std::string(flag) +
                             ": expected a probability in [0, 1], got '" +
                             text + "'");
  return value;
}

std::int64_t parse_positive_ticks(const char* flag, const std::string& text) {
  std::int64_t value = 0;
  if (!parse_i64(text, &value) || value < 1)
    throw std::runtime_error(std::string(flag) +
                             ": expected an integer >= 1, got '" + text +
                             "'");
  return value;
}

void validate_network_options(const NetworkOptions& options) {
  const auto check_unit = [](const char* name, double value) {
    if (!(value >= 0.0) || !(value <= 1.0))
      throw std::runtime_error(std::string("NetworkOptions::") + name +
                               " must be in [0, 1]");
  };
  check_unit("drop", options.drop);
  check_unit("duplicate", options.duplicate);
  check_unit("crash", options.crash);
  check_unit("late", options.late);
  if (options.max_delay < 1)
    throw std::runtime_error("NetworkOptions::max_delay must be >= 1");
  if (options.late_by < 1)
    throw std::runtime_error("NetworkOptions::late_by must be >= 1");
}

// --- SynchronousNetwork ----------------------------------------------------

void SynchronousNetwork::begin_run(std::size_t slots, int threads) {
  if (!clean_ || send_spans_.size() != slots || recv_spans_.size() != slots) {
    send_spans_.assign(slots, Span{});
    recv_spans_.assign(slots, Span{});
  }
  clean_ = false;
  const std::size_t nthreads = static_cast<std::size_t>(threads);
  send_words_.resize(nthreads);
  recv_words_.resize(nthreads);
  for (auto& buf : recv_words_) buf.clear();
  send_dirty_.resize(nthreads);
  recv_dirty_.resize(nthreads);
  for (auto& dirty : send_dirty_) dirty.clear();
  for (auto& dirty : recv_dirty_) dirty.clear();
  send_bulk_ = recv_bulk_ = false;
  bulk_threshold_ = static_cast<std::int64_t>(slots) / 4;
  dirty_cleared_ = 0;
}

void SynchronousNetwork::begin_round(std::int64_t prev_round_messages) {
  // Reset the slots written two rounds ago (stale in the send half after
  // the end_round swaps) using the strategy they were written under.
  reset_half(send_spans_, send_dirty_, send_bulk_);
  send_bulk_ = prev_round_messages >= bulk_threshold_;
  for (auto& buf : send_words_) buf.clear();
}

void SynchronousNetwork::end_round() {
  std::swap(send_spans_, recv_spans_);
  std::swap(send_words_, recv_words_);
  std::swap(send_dirty_, recv_dirty_);
  std::swap(send_bulk_, recv_bulk_);
}

void SynchronousNetwork::end_run() {
  // Both halves still hold the last two rounds' spans, each reset under the
  // strategy it was written with.
  reset_half(send_spans_, send_dirty_, send_bulk_);
  reset_half(recv_spans_, recv_dirty_, recv_bulk_);
  send_bulk_ = recv_bulk_ = false;
  clean_ = true;
}

void SynchronousNetwork::reset_half(
    std::vector<Span>& spans,
    std::vector<std::vector<std::int64_t>>& dirty_lists, bool bulk) {
  if (bulk) {
    std::fill(spans.begin(), spans.end(), Span{});
    for (auto& dirty : dirty_lists) dirty.clear();  // empty by invariant
    return;
  }
  for (auto& dirty : dirty_lists) {
    dirty_cleared_ += static_cast<std::int64_t>(dirty.size());
    for (const std::int64_t slot : dirty)
      spans[static_cast<std::size_t>(slot)].words = -1;
    dirty.clear();
  }
}

std::int64_t SynchronousNetwork::arena_bytes() const {
  std::int64_t bytes = 0;
  for (const auto& buf : send_words_)
    bytes += static_cast<std::int64_t>(buf.capacity()) * 8;
  for (const auto& buf : recv_words_)
    bytes += static_cast<std::int64_t>(buf.capacity()) * 8;
  for (const auto& dirty : send_dirty_)
    bytes += static_cast<std::int64_t>(dirty.capacity()) * 8;
  for (const auto& dirty : recv_dirty_)
    bytes += static_cast<std::int64_t>(dirty.capacity()) * 8;
  bytes += static_cast<std::int64_t>(
      (send_spans_.capacity() + recv_spans_.capacity()) * sizeof(Span));
  return bytes;
}

// --- DelayedNetwork --------------------------------------------------------

namespace {

/// Min-heap "pops later" predicate: strict total order (seq is unique), so
/// the pop sequence never depends on the heap implementation.
bool event_after(const DelayedNetwork::Event& a,
                 const DelayedNetwork::Event& b) {
  return std::tie(a.time, a.edge, a.round, a.seq) >
         std::tie(b.time, b.edge, b.round, b.seq);
}

}  // namespace

void DelayedNetwork::begin_run(const CsrGraph& csr, std::uint64_t seed,
                               const NetworkOptions& options) {
  csr_ = &csr;
  opts_ = options;
  retransmit_after_ = 2 * opts_.max_delay;
  const std::size_t slots = static_cast<std::size_t>(csr.num_directed_edges());
  const std::size_t nn = static_cast<std::size_t>(csr.num_nodes());

  // One private stream per directed edge, consumed only at that edge's send
  // times — the draw sequence is a function of the sender's schedule alone.
  const Rng edge_base(splitmix64(seed ^ kEdgeStreamSalt));
  edge_rngs_.clear();
  edge_rngs_.reserve(slots);
  for (std::size_t e = 0; e < slots; ++e)
    edge_rngs_.push_back(edge_base.split(static_cast<std::uint64_t>(e)));
  if (opts_.preset == DelayPreset::kWeighted) {
    edge_base_.resize(slots);
    for (std::size_t e = 0; e < slots; ++e)
      edge_base_[e] = edge_rngs_[e].next_in(1, opts_.max_delay);
  }

  // Crash/late-joiner draws from one node-order pass over a dedicated
  // stream, so the fault sets depend only on (seed, n, knobs).
  crashed_.assign(nn, 0);
  wake_extra_.assign(nn, 0);
  if (opts_.crash > 0.0 || opts_.late > 0.0) {
    Rng fault_rng(splitmix64(seed ^ kFaultStreamSalt));
    for (std::size_t v = 0; v < nn; ++v) {
      crashed_[v] = fault_rng.next_bool(opts_.crash) ? 1 : 0;
      if (fault_rng.next_bool(opts_.late))
        wake_extra_[v] = fault_rng.next_in(1, opts_.late_by);
    }
  }

  hist_.resize(slots);
  for (auto& h : hist_) h.clear();
  prefix_.assign(slots, 0);
  final_round_.assign(slots, -1);
  words_.clear();
  heap_.clear();
  seq_ = 0;

  NodeId max_degree = 0;
  for (NodeId v = 0; v < csr.num_nodes(); ++v)
    max_degree = std::max(max_degree, csr.degree(v));
  outbox_.assign(static_cast<std::size_t>(max_degree), Span{});
  outbox_words_.clear();

  dropped_ = duplicated_ = 0;
  max_skew_ = 0;
}

std::int64_t DelayedNetwork::draw_delay(std::int64_t edge) {
  Rng& rng = edge_rngs_[static_cast<std::size_t>(edge)];
  switch (opts_.preset) {
    case DelayPreset::kUniform:
      return rng.next_in(1, opts_.max_delay);
    case DelayPreset::kWeighted:
      // The per-edge latency was drawn once in begin_run; transmissions on
      // this edge all take the same time (a "distance matrix").
      return edge_base_[static_cast<std::size_t>(edge)];
    case DelayPreset::kHeavyTail: {
      // Integer Pareto-like tail without libm (std::pow is not
      // bit-portable across libm builds): level t has probability
      // 2^-(t+1), the delay is uniform in [2^t, 2^(t+1)).
      const int level = std::min(std::countr_one(rng.next()),
                                 kHeavyTailMaxLevel);
      const std::int64_t lo = std::int64_t{1} << level;
      return lo + static_cast<std::int64_t>(
                      rng.next_below(static_cast<std::uint64_t>(lo)));
    }
  }
  return 1;
}

void DelayedNetwork::push_event(Event event) {
  event.seq = seq_++;
  heap_.push_back(event);
  std::push_heap(heap_.begin(), heap_.end(), event_after);
}

void DelayedNetwork::transmit(std::int64_t edge, NodeId receiver,
                              std::int64_t round, std::int64_t now,
                              Span payload, bool final_round) {
  std::int64_t delay = draw_delay(edge);
  if (opts_.drop >= 1.0) {
    // Degenerate knob: nothing is ever delivered; receivers stall and the
    // run drains cleanly instead of retrying forever.
    ++dropped_;
    return;
  }
  if (opts_.drop > 0.0) {
    Rng& rng = edge_rngs_[static_cast<std::size_t>(edge)];
    int attempts = 0;
    while (rng.next_bool(opts_.drop)) {
      ++dropped_;
      if (++attempts >= kMaxRetransmits) return;  // abandoned
      // Lost transmission: the sender retries after a timeout, so the pulse
      // arrives late rather than never (outputs stay those of the
      // synchronous run; only timestamps move).
      delay += retransmit_after_ + draw_delay(edge);
    }
  }
  Event event;
  event.time = now + delay;
  event.edge = edge;
  event.round = round;
  event.offset = payload.offset;
  event.words = payload.words;
  event.sent_at = now;
  event.receiver = receiver;
  event.final_round = final_round;
  push_event(event);
  if (opts_.duplicate > 0.0 &&
      edge_rngs_[static_cast<std::size_t>(edge)].next_bool(opts_.duplicate)) {
    ++duplicated_;
    event.time += draw_delay(edge);  // the copy lands strictly later
    push_event(event);
  }
}

void DelayedNetwork::stage(NodeId port, const std::int64_t* data,
                           std::size_t words) {
  Span& s = outbox_[static_cast<std::size_t>(port)];
  s.offset = static_cast<std::int64_t>(outbox_words_.size());
  s.words = static_cast<std::int64_t>(words);
  outbox_words_.insert(outbox_words_.end(), data, data + words);
}

DelayedNetwork::FlushDelta DelayedNetwork::flush_node(NodeId v,
                                                      std::int64_t round,
                                                      std::int64_t now,
                                                      bool sender_finished) {
  FlushDelta delta;
  const std::int64_t base = csr_->offset(v);
  const NodeId deg = csr_->degree(v);
  for (NodeId j = 0; j < deg; ++j) {
    Span payload = outbox_[static_cast<std::size_t>(j)];
    if (payload.words >= 0) {
      ++delta.messages;
      delta.max_words = std::max(delta.max_words, payload.words);
      // Persist the payload: outbox words only live until the next step,
      // delivery may be arbitrarily later.
      const std::int64_t offset = static_cast<std::int64_t>(words_.size());
      words_.insert(
          words_.end(), outbox_words_.begin() + payload.offset,
          outbox_words_.begin() + payload.offset + payload.words);
      payload.offset = offset;
      outbox_[static_cast<std::size_t>(j)] = Span{};
    }
    transmit(base + j, csr_->neighbor(v, j), round, now, payload,
             sender_finished);
  }
  outbox_words_.clear();
  return delta;
}

bool DelayedNetwork::pop_delivery(Delivery* out) {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), event_after);
  const Event event = heap_.back();
  heap_.pop_back();

  const std::size_t e = static_cast<std::size_t>(event.edge);
  out->time = event.time;
  out->edge = event.edge;
  out->receiver = event.receiver;
  out->round = event.round;
  out->payload = event.words >= 0;
  out->prefix_before = prefix_[e];
  out->saturated_before = saturated(event.edge);
  max_skew_ = std::max(max_skew_, event.time - event.sent_at - 1);

  auto& h = hist_[e];
  if (static_cast<std::int64_t>(h.size()) <= event.round)
    h.resize(static_cast<std::size_t>(event.round) + 1,
             Span{0, kNotArrived});
  Span& slot = h[static_cast<std::size_t>(event.round)];
  if (slot.words == kNotArrived) {
    slot.offset = event.offset;
    slot.words = event.words;
    if (event.final_round) final_round_[e] = event.round;
    while (prefix_[e] < static_cast<std::int64_t>(h.size()) &&
           h[static_cast<std::size_t>(prefix_[e])].words != kNotArrived)
      ++prefix_[e];
  }
  // else: the duplicate of an already-delivered pulse — ignored.

  out->prefix_after = prefix_[e];
  out->saturated_after = saturated(event.edge);
  return true;
}

std::span<const std::int64_t> DelayedNetwork::recv(std::int64_t edge,
                                                   std::int64_t round,
                                                   bool* present) const {
  const auto& h = hist_[static_cast<std::size_t>(edge)];
  if (round < 0 || round >= static_cast<std::int64_t>(h.size())) {
    *present = false;  // never pulsed: the sender finished earlier
    return {};
  }
  const Span s = h[static_cast<std::size_t>(round)];
  if (s.words < 0) {
    *present = false;  // silent pulse (or, defensively, not yet arrived)
    return {};
  }
  *present = true;
  return {words_.data() + s.offset, static_cast<std::size_t>(s.words)};
}

std::int64_t DelayedNetwork::arena_bytes() const {
  std::int64_t bytes = 0;
  bytes += static_cast<std::int64_t>(words_.capacity()) * 8;
  for (const auto& h : hist_)
    bytes += static_cast<std::int64_t>(h.capacity() * sizeof(Span));
  bytes += static_cast<std::int64_t>(heap_.capacity() * sizeof(Event));
  bytes += static_cast<std::int64_t>(edge_rngs_.capacity() * sizeof(Rng));
  bytes += static_cast<std::int64_t>(edge_base_.capacity()) * 8;
  bytes += static_cast<std::int64_t>(outbox_words_.capacity()) * 8;
  return bytes;
}

}  // namespace unilocal
