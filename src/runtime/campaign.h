// The campaign subsystem: throughput over a (scenario x algorithm x seed)
// grid.
//
// PR 1 made a single run fast; this layer makes *many* runs fast. A
// campaign is a vector of cells — each cell names a scenario family from
// the scenario registry (src/graph/scenario_registry.h), an algorithm from
// the algorithm registry (src/runtime/algorithm_registry.h), and a seed —
// executed concurrently at cell granularity on one ThreadPool, with a pool
// of reusable EngineWorkspaces (one per pool thread, round-robin checkout)
// so no cell allocates a fresh arena. Cell engines default to one thread;
// the large-cell policy may raise the engine thread count, and because the
// engine is thread-count invariant, per-cell outputs stay bit-identical
// for any worker count, engine thread count, and cell-scheduling order
// (tests/campaign_test.cpp, tests/algorithm_registry_test.cpp).
//
// Results carry per-cell summaries, centralized-checker verdicts
// (src/problems/registry.h), and aggregate percentiles over rounds,
// messages, and steps/sec.
//
// Note on layering: this file lives in src/runtime/ but is the
// orchestration layer of the library — it sits ABOVE core/algo/prune
// (the default algorithm registry wires up the paper's transformers), so
// nothing below src/runtime/campaign.* may include it.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/scenario_registry.h"
#include "src/runtime/algorithm_registry.h"
#include "src/runtime/instance.h"
#include "src/runtime/runner.h"
#include "src/runtime/telemetry.h"
#include "src/util/thread_pool.h"

namespace unilocal {

/// Fixed-size pool of reusable engine workspaces. checkout() hands out
/// workspaces in round-robin order and blocks when all are lent (which
/// cannot happen when the pool is sized to the thread pool's parallelism);
/// checkin() returns one. Thread-safe.
class WorkspacePool {
 public:
  explicit WorkspacePool(int size);
  ~WorkspacePool();
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  int size() const noexcept;
  EngineWorkspace* checkout();
  void checkin(EngineWorkspace* workspace);

  /// RAII checkout.
  class Lease {
   public:
    explicit Lease(WorkspacePool& pool)
        : pool_(pool), workspace_(pool.checkout()) {}
    ~Lease() { pool_.checkin(workspace_); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    EngineWorkspace* get() const noexcept { return workspace_; }

   private:
    WorkspacePool& pool_;
    EngineWorkspace* workspace_;
  };

 private:
  struct State;
  std::unique_ptr<State> state_;
};

/// One cell of the sweep grid.
struct CampaignCell {
  std::string scenario;
  ScenarioParams params;
  std::string algorithm;
  std::uint64_t seed = 1;
  IdentityScheme identities = IdentityScheme::kRandomPermuted;
  /// Delivery layer the cell's engine runs use (part of the cell's
  /// identity: the same cell under a different network is a different
  /// deterministic experiment, hashed into the grid hash and round-tripped
  /// through shard manifests).
  NetworkOptions network;
};

struct CellResult {
  CampaignCell cell;
  NodeId nodes = 0;
  std::int64_t edges = 0;
  std::int64_t rounds = 0;
  bool solved = false;
  /// Centralized-checker verdict (false whenever !solved).
  bool valid = false;
  double seconds = 0.0;
  /// FNV-1a over the output vector — the cheap handle for bit-identical
  /// comparisons across worker counts.
  std::uint64_t output_hash = 0;
  EngineStats stats;
  /// Full outputs, kept only under CampaignOptions::keep_outputs.
  std::vector<std::int64_t> outputs;
  /// Non-empty when the cell threw; such cells never abort the campaign.
  std::string error;
};

/// Nearest-rank percentiles over the solved cells.
struct CampaignPercentiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// The nearest-rank percentile computation the campaign aggregates use,
/// exported for other telemetry surfaces (supervision attempt times, run
/// log). Returns all zeros for an empty input.
CampaignPercentiles campaign_percentiles(std::vector<double> values);

/// One supervised attempt's timing, relative to the supervision start
/// (PR 10): persisted into the non-canonical JSON and the run log so
/// post-hoc analysis of killed/straggler attempts does not need the live
/// trace.
struct ShardAttemptTiming {
  int attempt = 0;
  bool speculative = false;
  /// Seconds from supervision start to fork / to reap.
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  /// The supervisor SIGKILLed this attempt (deadline or superseded).
  bool killed = false;
  /// "accepted", "superseded", or the wait-status description.
  std::string outcome;
};

/// Per-shard supervision telemetry (the PR 9 shard supervisor,
/// src/runtime/supervisor.h), carried on a merged CampaignResult when the
/// campaign ran under supervision.
struct ShardSupervisionRow {
  int shard_index = 0;
  bool completed = false;
  /// The accepted result came from the checkpoint journal; no process ran.
  bool from_journal = false;
  int attempts = 0;
  int retries = 0;
  int stragglers_respawned = 0;
  /// Wall-clock summed over every attempt of this shard (including killed
  /// and superseded ones).
  double total_attempt_seconds = 0.0;
  /// Per-attempt timing history, in launch order.
  std::vector<ShardAttemptTiming> attempt_log;
};

/// Campaign-level supervision telemetry. Pure scheduling history — which
/// processes ran, how often they were retried — so, like the kernel-step
/// split, it is excluded from canonical JSON: supervision affects when
/// work runs, never what it computes.
struct SupervisionSummary {
  /// False on unsupervised campaigns; the writers then omit it entirely.
  bool enabled = false;
  int shards = 0;
  int attempts = 0;
  int retries = 0;
  /// Total re-enqueues: failure retries plus speculative launches.
  int requeues = 0;
  int stragglers_respawned = 0;
  int shards_from_journal = 0;
  /// Attempts the supervisor SIGKILLed (deadline timeouts plus superseded
  /// speculative siblings), summed over the rows' attempt logs.
  int attempts_killed = 0;
  /// Shards that exhausted retries (> 0 only under --allow-partial; a
  /// strict merge would have thrown).
  int shards_failed = 0;
  /// Percentiles of per-shard total attempt wall-clock.
  CampaignPercentiles attempt_seconds;
  std::vector<ShardSupervisionRow> rows;
};

struct CampaignResult {
  /// One entry per input cell, in input order (independent of the
  /// scheduling order the pool actually used).
  std::vector<CellResult> cells;
  int workers = 1;
  double elapsed_seconds = 0.0;
  double cells_per_second = 0.0;
  int solved = 0;
  int valid = 0;
  int failed = 0;
  CampaignPercentiles rounds;
  CampaignPercentiles messages;
  CampaignPercentiles steps_per_second;
  /// Frontier telemetry (the PR 4 engine counters), aggregated over the
  /// solved cells like rounds/messages: how much of each cell the engine
  /// actually had live, how wide the scheduled frontier got, and how much
  /// span-clearing the dirty lists absorbed.
  CampaignPercentiles peak_live_nodes;
  CampaignPercentiles peak_frontier_nodes;
  CampaignPercentiles dirty_spans_cleared;
  /// Engine-path split (PR 6 step kernels): node steps executed through the
  /// flat kernel tier vs the Process vtable path, per solved cell.
  CampaignPercentiles kernel_steps;
  CampaignPercentiles vtable_steps;
  /// Batched-execution split (PR 8): kernel steps executed through
  /// phase-grouped batch functions, and the mean batch occupancy
  /// (batched steps / batch calls) per solved cell with at least one
  /// batch call.
  CampaignPercentiles kernel_batched_steps;
  CampaignPercentiles kernel_batch_occupancy;
  /// Fault-injection telemetry (the PR 7 delivery layer), per solved cell:
  /// dropped transmissions, duplicated deliveries, and the worst delivery
  /// latency beyond the synchronous one-tick ideal. All zero on sync grids.
  CampaignPercentiles messages_dropped;
  CampaignPercentiles messages_duplicated;
  CampaignPercentiles max_delivery_skew;
  /// Supervision telemetry (PR 9): filled by the sharded drivers after
  /// merge_shard_results; enabled = false on plain run_campaign results.
  /// finalize_campaign_aggregates leaves it untouched — it describes the
  /// processes, not the cells.
  SupervisionSummary supervision;
};

/// Recomputes every aggregate field of `result` (solved/valid/failed
/// counts, all percentile blocks, cells_per_second) from result.cells and
/// result.elapsed_seconds. run_campaign ends with this; merge_shard_results
/// (src/runtime/shard.h) reuses it so a merged campaign aggregates cells
/// exactly like a single-process run.
void finalize_campaign_aggregates(CampaignResult& result);

/// Stable names for IdentityScheme ("sequential", "random-permuted",
/// "random-sparse") — used by the CSV/JSON writers and the shard manifest
/// round trip. parse throws std::runtime_error on unknown names.
const char* identity_scheme_name(IdentityScheme scheme);
IdentityScheme parse_identity_scheme(const std::string& name);

struct CampaignOptions {
  /// Pool parallelism when no shared pool is lent (>= 1; cells never split
  /// across threads — parallelism is at cell granularity).
  int workers = 1;
  /// Shared pool to run on (overrides `workers`). ThreadPool::run serves
  /// one batch at a time, so a lent pool must not be driven concurrently
  /// by anything else for the duration of run_campaign.
  ThreadPool* pool = nullptr;
  /// Retain per-node outputs in each CellResult.
  bool keep_outputs = false;
  /// Scenario registry (default_scenarios() when null).
  const ScenarioRegistry* scenarios = nullptr;
  /// Algorithm registry (default_algorithm_registry() when null).
  const AlgorithmRegistry* algorithms = nullptr;
  /// Large-cell engine parallelism policy: cells whose instance has at
  /// least `large_cell_node_threshold` nodes run their engine with
  /// `engine_threads_for_large_cells` threads (the engine is thread-count
  /// invariant, so outputs stay bit-identical — this cuts tail latency on
  /// skewed grids without giving up determinism). 1 disables the policy.
  int engine_threads_for_large_cells = 1;
  NodeId large_cell_node_threshold = 100000;
  /// Engine path for every cell (RunOptions::kernel_mode): flat step
  /// kernels where available (auto, the default), vtable always (off), or
  /// kernels required (on). Outputs are bit-identical across modes, so
  /// campaign artifacts stay canonical regardless.
  KernelMode kernel_mode = KernelMode::kAuto;
  /// Delivery layer applied to every cell whose own CampaignCell::network
  /// was left at the default (sync). A cell with an explicit non-default
  /// network keeps it — grids built with GridOptions::networks bake the
  /// network into each cell.
  NetworkOptions network;
  /// Telemetry (PR 10): when non-null, every cell runs under a span on this
  /// recorder (with the ambient engine binding installed, so engine runs
  /// emit their per-round events into the same lanes). Never feeds the
  /// campaign's own results — canonical JSON is byte-identical either way.
  telemetry::TraceRecorder* trace = nullptr;
  /// Per-run head-sampling cap for the engine's round events.
  std::int64_t trace_rounds = telemetry::kDefaultTraceRounds;
  /// pid lane cell spans are recorded under (worker processes get their
  /// own after the supervisor's merge remaps them).
  int trace_pid = 1;
  /// Grid positions of the cells (shard manifests carry a subset of the
  /// full grid); cell spans then report the grid index, not the local one.
  const std::vector<std::size_t>* trace_cell_indices = nullptr;
};

/// Runs every cell; never throws on per-cell failures (they land in
/// CellResult::error).
CampaignResult run_campaign(const std::vector<CampaignCell>& cells,
                            const CampaignOptions& options = {});

/// Up-front key validation: collects EVERY unknown scenario and algorithm
/// key across the cells and throws one std::runtime_error naming all of
/// them (instead of N copies of the same per-cell failure at run time).
void validate_cells(const std::vector<CampaignCell>& cells,
                    const ScenarioRegistry& scenarios,
                    const AlgorithmRegistry& algorithms);

/// KernelMode::kOn validation: collects EVERY registered algorithm key in
/// the cells whose spec is not kernel_lowered and throws one
/// std::runtime_error naming all of them (the make_grid unknown-key error
/// style). Unknown keys are left to validate_cells / per-cell errors.
/// run_campaign calls this when options.kernel_mode is kOn.
void validate_kernel_lowering(const std::vector<CampaignCell>& cells,
                              const AlgorithmRegistry& algorithms);

struct GridOptions {
  std::uint64_t base_seed = 1;
  /// Registries the keys are validated against (defaults when null).
  const ScenarioRegistry* scenarios = nullptr;
  const AlgorithmRegistry* algorithms = nullptr;
  /// Skip validation entirely (grids aimed at a registry built later).
  bool validate = true;
  /// Delivery layers to cross the grid with (a scenario dimension like the
  /// families themselves): every (scenario x algorithm x seed) combination
  /// is emitted once per entry. Empty = one synchronous cell each.
  std::vector<NetworkOptions> networks;
};

/// The full (scenario x algorithm x seed) product grid with shared params;
/// seeds are base_seed, base_seed + 1, .... Validates every key up front
/// (one error listing all unknown keys) unless options.validate is false.
std::vector<CampaignCell> make_grid(
    const std::vector<std::string>& scenarios, const ScenarioParams& params,
    const std::vector<std::string>& algorithms, int seeds_per_combination,
    const GridOptions& options);
std::vector<CampaignCell> make_grid(
    const std::vector<std::string>& scenarios, const ScenarioParams& params,
    const std::vector<std::string>& algorithms, int seeds_per_combination,
    std::uint64_t base_seed = 1);

/// The paper's Table 1 as one campaign grid: every algorithm in the
/// registry crossed with its own spec.table1_scenarios (the families its
/// row is stated over), seeds_per_combination seeds each.
std::vector<CampaignCell> make_table1_grid(
    const ScenarioParams& params, int seeds_per_combination,
    const GridOptions& options = {});

/// One CSV row per cell plus a header row.
void write_campaign_csv(std::ostream& out, const CampaignResult& result);

/// One CSV row per supervised shard plus a header row (the per-cell table
/// above stays stable whether or not a campaign was supervised). Callers
/// should skip it when !summary.enabled.
void write_supervision_csv(std::ostream& out,
                           const SupervisionSummary& summary);

struct CampaignJsonOptions {
  /// Canonical mode emits only the deterministic fields — everything that
  /// is a pure function of the grid (no wall-clock timings, no worker
  /// counts, no arena capacities, which depend on workspace reuse order) —
  /// so two runs of the same grid produce byte-identical documents no
  /// matter how the cells were scheduled or sharded. CI diffs a merged
  /// sharded run against a single-process run this way.
  bool canonical = false;
};

/// One JSON object: summary fields plus a "cell_results" array.
void write_campaign_json(std::ostream& out, const CampaignResult& result,
                         const CampaignJsonOptions& options);
void write_campaign_json(std::ostream& out, const CampaignResult& result);

}  // namespace unilocal
