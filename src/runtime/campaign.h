// The campaign subsystem: throughput over a (scenario x algorithm x seed)
// grid.
//
// PR 1 made a single run fast; this layer makes *many* runs fast. A
// campaign is a vector of cells — each cell names a scenario family from
// the registry (src/graph/scenario_registry.h), an algorithm from the
// campaign algorithm table, and a seed — executed concurrently at cell
// granularity on one ThreadPool, with a pool of reusable EngineWorkspaces
// (one per pool thread, round-robin checkout) so no cell allocates a fresh
// arena. Each cell runs its engine single-threaded, which together with
// the registry's determinism makes per-cell outputs bit-identical for any
// worker count and any cell-scheduling order (tests/campaign_test.cpp).
//
// Results carry per-cell summaries, centralized-checker verdicts
// (src/problems/registry.h), and aggregate percentiles over rounds,
// messages, and steps/sec.
//
// Note on layering: this file lives in src/runtime/ but is the
// orchestration layer of the library — it sits ABOVE core/algo/prune
// (the default algorithm table wires up the paper's transformers), so
// nothing below src/runtime/campaign.* may include it.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/scenario_registry.h"
#include "src/problems/problem.h"
#include "src/runtime/instance.h"
#include "src/runtime/runner.h"
#include "src/util/thread_pool.h"

namespace unilocal {

/// Fixed-size pool of reusable engine workspaces. checkout() hands out
/// workspaces in round-robin order and blocks when all are lent (which
/// cannot happen when the pool is sized to the thread pool's parallelism);
/// checkin() returns one. Thread-safe.
class WorkspacePool {
 public:
  explicit WorkspacePool(int size);
  ~WorkspacePool();
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  int size() const noexcept;
  EngineWorkspace* checkout();
  void checkin(EngineWorkspace* workspace);

  /// RAII checkout.
  class Lease {
   public:
    explicit Lease(WorkspacePool& pool)
        : pool_(pool), workspace_(pool.checkout()) {}
    ~Lease() { pool_.checkin(workspace_); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    EngineWorkspace* get() const noexcept { return workspace_; }

   private:
    WorkspacePool& pool_;
    EngineWorkspace* workspace_;
  };

 private:
  struct State;
  std::unique_ptr<State> state_;
};

/// What one algorithm-table entry produced on an instance.
struct CellOutcome {
  std::vector<std::int64_t> outputs;
  std::int64_t rounds = 0;
  bool solved = false;
  EngineStats stats;
};

/// String-keyed algorithm table: each entry pairs a runner (which must be
/// deterministic in (instance, seed), run its engine single-threaded, and
/// honor the lent workspace) with the centralized Problem its outputs are
/// validated against.
class CampaignAlgorithms {
 public:
  using Runner = std::function<CellOutcome(
      const Instance& instance, std::uint64_t seed,
      EngineWorkspace* workspace)>;

  void add(std::string name, std::shared_ptr<const Problem> problem,
           Runner runner);
  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;
  /// The validator of an entry (never null); throws on unknown names.
  const Problem& problem(const std::string& name) const;
  CellOutcome run(const std::string& name, const Instance& instance,
                  std::uint64_t seed, EngineWorkspace* workspace) const;

 private:
  struct Entry {
    std::shared_ptr<const Problem> problem;
    Runner runner;
  };
  std::map<std::string, Entry> entries_;
};

/// The built-in table: "mis-uniform" (Theorem 1 over the coloring MIS),
/// "mis-global-uniform" (Theorem 1 over greedy-as-A_n), "mis-fastest"
/// (the Theorem 4 combinator of both), "luby-mis" (plain Las Vegas run),
/// "matching-uniform" (Theorem 1 over colored matching), "rulingset2-lv"
/// (Theorem 2 over the Monte-Carlo ruling set).
const CampaignAlgorithms& default_campaign_algorithms();

/// One cell of the sweep grid.
struct CampaignCell {
  std::string scenario;
  ScenarioParams params;
  std::string algorithm;
  std::uint64_t seed = 1;
  IdentityScheme identities = IdentityScheme::kRandomPermuted;
};

struct CellResult {
  CampaignCell cell;
  NodeId nodes = 0;
  std::int64_t edges = 0;
  std::int64_t rounds = 0;
  bool solved = false;
  /// Centralized-checker verdict (false whenever !solved).
  bool valid = false;
  double seconds = 0.0;
  /// FNV-1a over the output vector — the cheap handle for bit-identical
  /// comparisons across worker counts.
  std::uint64_t output_hash = 0;
  EngineStats stats;
  /// Full outputs, kept only under CampaignOptions::keep_outputs.
  std::vector<std::int64_t> outputs;
  /// Non-empty when the cell threw; such cells never abort the campaign.
  std::string error;
};

/// Nearest-rank percentiles over the solved cells.
struct CampaignPercentiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

struct CampaignResult {
  /// One entry per input cell, in input order (independent of the
  /// scheduling order the pool actually used).
  std::vector<CellResult> cells;
  int workers = 1;
  double elapsed_seconds = 0.0;
  double cells_per_second = 0.0;
  int solved = 0;
  int valid = 0;
  int failed = 0;
  CampaignPercentiles rounds;
  CampaignPercentiles messages;
  CampaignPercentiles steps_per_second;
};

struct CampaignOptions {
  /// Pool parallelism when no shared pool is lent (>= 1; cells never split
  /// across threads — parallelism is at cell granularity).
  int workers = 1;
  /// Shared pool to run on (overrides `workers`). ThreadPool::run serves
  /// one batch at a time, so a lent pool must not be driven concurrently
  /// by anything else for the duration of run_campaign.
  ThreadPool* pool = nullptr;
  /// Retain per-node outputs in each CellResult.
  bool keep_outputs = false;
  /// Scenario registry (default_scenarios() when null).
  const ScenarioRegistry* scenarios = nullptr;
  /// Algorithm table (default_campaign_algorithms() when null).
  const CampaignAlgorithms* algorithms = nullptr;
};

/// Runs every cell; never throws on per-cell failures (they land in
/// CellResult::error).
CampaignResult run_campaign(const std::vector<CampaignCell>& cells,
                            const CampaignOptions& options = {});

/// The full (scenario x algorithm x seed) product grid with shared params;
/// seeds are base_seed, base_seed + 1, ....
std::vector<CampaignCell> make_grid(
    const std::vector<std::string>& scenarios, const ScenarioParams& params,
    const std::vector<std::string>& algorithms, int seeds_per_combination,
    std::uint64_t base_seed = 1);

/// One CSV row per cell plus a header row.
void write_campaign_csv(std::ostream& out, const CampaignResult& result);
/// One JSON object: summary fields plus a "cells" array.
void write_campaign_json(std::ostream& out, const CampaignResult& result);

}  // namespace unilocal
