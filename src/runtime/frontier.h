// Work-list primitives for the frontier-driven round engine
// (src/runtime/runner.cpp): stamp-keyed membership sets, wake-round
// admission schedules, and live-list compaction. Kept engine-agnostic and
// header-only so tests can exercise the scheduling logic without spinning up
// a full run (tests/frontier_test.cpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/graph/graph.h"

namespace unilocal {

/// O(1) insert-if-absent membership keyed by a monotone stamp (the engine
/// uses the global round number): bumping the stamp empties the set without
/// touching memory, so per-round candidate/frontier dedup costs nothing to
/// reset. reset() is O(n) and only needed when the node count changes or a
/// new run begins.
class StampSet {
 public:
  void reset(std::size_t n) { stamp_.assign(n, -1); }

  /// Records id as a member under `stamp`; true when it was not yet one.
  bool insert(std::size_t id, std::int64_t stamp) {
    if (stamp_[id] == stamp) return false;
    stamp_[id] = stamp;
    return true;
  }

  bool contains(std::size_t id, std::int64_t stamp) const {
    return stamp_[id] == stamp;
  }

 private:
  std::vector<std::int64_t> stamp_;
};

/// Wake-round admission queue for the synchronizer: nodes sorted by
/// (wake round, node id) and popped as the global clock advances. Negative
/// wake rounds are clamped to 0 (the reference engine treats them as
/// immediately awake). next_pending() lets the engine jump the global clock
/// over stretches with an empty eligible set instead of spinning one empty
/// round at a time; it skips (and permanently consumes) entries whose node
/// already finished, since those can never be admitted.
class WakeSchedule {
 public:
  void init(const std::vector<std::int64_t>& wake_rounds) {
    order_.clear();
    order_.reserve(wake_rounds.size());
    for (std::size_t v = 0; v < wake_rounds.size(); ++v)
      order_.emplace_back(std::max<std::int64_t>(wake_rounds[v], 0),
                          static_cast<NodeId>(v));
    std::sort(order_.begin(), order_.end());
    next_ = 0;
  }

  /// Calls f(node) for every not-yet-admitted node whose wake round is
  /// <= global, in (wake round, node id) order.
  template <typename F>
  void admit(std::int64_t global, F&& f) {
    while (next_ < order_.size() && order_[next_].first <= global) {
      f(order_[next_].second);
      ++next_;
    }
  }

  /// Wake round of the earliest pending node that is still unfinished, or
  /// nullopt when none remains.
  std::optional<std::int64_t> next_pending(const std::vector<char>& finished) {
    while (next_ < order_.size() &&
           finished[static_cast<std::size_t>(order_[next_].second)])
      ++next_;
    if (next_ >= order_.size()) return std::nullopt;
    return order_[next_].first;
  }

  bool exhausted() const { return next_ >= order_.size(); }

 private:
  std::vector<std::pair<std::int64_t, NodeId>> order_;
  std::size_t next_ = 0;
};

/// Compacts a live-node list in place, dropping every node whose `finished`
/// flag is set. Preserves relative order (the engine keeps the list
/// ascending so chunked multi-thread stepping stays deterministic).
inline void erase_finished(std::vector<NodeId>& live,
                           const std::vector<char>& finished) {
  live.erase(std::remove_if(live.begin(), live.end(),
                            [&finished](NodeId v) {
                              return finished[static_cast<std::size_t>(v)] !=
                                     0;
                            }),
             live.end());
}

}  // namespace unilocal
