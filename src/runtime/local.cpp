#include "src/runtime/local.h"

#include <algorithm>
#include <cassert>
#include <new>

namespace unilocal {

namespace {

/// Every Process allocation is prefixed by one max-aligned header word
/// recording where the block came from, so operator delete can tell a
/// bump-arena block (destructor only, memory reclaimed on arena reset)
/// from a heap block (freed normally).
constexpr std::size_t kHeaderBytes =
    alignof(std::max_align_t) > sizeof(std::uint64_t)
        ? alignof(std::max_align_t)
        : sizeof(std::uint64_t);
constexpr std::uint64_t kHeapTag = 0x50524f435f484541ULL;   // "PROC_HEA"
constexpr std::uint64_t kArenaTag = 0x50524f435f415245ULL;  // "PROC_ARE"
constexpr std::size_t kMinChunkBytes = std::size_t{64} << 10;

thread_local ProcessArena* t_active_arena = nullptr;

std::size_t align_up(std::size_t value, std::size_t align) noexcept {
  return (value + align - 1) / align * align;
}

}  // namespace

ProcessArena::Scope::Scope(ProcessArena& arena) noexcept {
  assert(t_active_arena == nullptr && "ProcessArena scopes must not nest");
  t_active_arena = &arena;
}

ProcessArena::Scope::~Scope() noexcept { t_active_arena = nullptr; }

void ProcessArena::reset() noexcept {
  cur_chunk_ = 0;
  cur_offset_ = 0;
  used_ = 0;
}

void* ProcessArena::bump(std::size_t size) {
  const std::size_t need = align_up(size, alignof(std::max_align_t));
  while (cur_chunk_ < chunks_.size() &&
         cur_offset_ + need > chunk_sizes_[cur_chunk_]) {
    ++cur_chunk_;
    cur_offset_ = 0;
  }
  if (cur_chunk_ == chunks_.size()) {
    const std::size_t chunk_bytes = std::max(kMinChunkBytes, need);
    chunks_.push_back(std::make_unique<std::byte[]>(chunk_bytes));
    chunk_sizes_.push_back(chunk_bytes);
    cur_offset_ = 0;
  }
  std::byte* p = chunks_[cur_chunk_].get() + cur_offset_;
  cur_offset_ += need;
  used_ += need;
  return p;
}

void* ProcessArena::allocate(std::size_t size) {
  const std::size_t total = kHeaderBytes + size;
  std::byte* base;
  std::uint64_t tag;
  if (t_active_arena != nullptr) {
    base = static_cast<std::byte*>(t_active_arena->bump(total));
    tag = kArenaTag;
  } else {
    base = static_cast<std::byte*>(::operator new(total));
    tag = kHeapTag;
  }
  *reinterpret_cast<std::uint64_t*>(base) = tag;
  return base + kHeaderBytes;
}

void ProcessArena::deallocate(void* p) noexcept {
  if (p == nullptr) return;
  std::byte* base = static_cast<std::byte*>(p) - kHeaderBytes;
  if (*reinterpret_cast<const std::uint64_t*>(base) == kArenaTag)
    return;  // reclaimed wholesale by ProcessArena::reset()
  ::operator delete(base);
}

void* Process::operator new(std::size_t size) {
  return ProcessArena::allocate(size);
}

void Process::operator delete(void* p) noexcept {
  ProcessArena::deallocate(p);
}

}  // namespace unilocal
