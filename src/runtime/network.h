// Pluggable message-delivery layer of the arena engine.
//
// The engine (src/runtime/runner.cpp) decides WHO steps; a network model
// decides WHEN and WHETHER a sent message reaches its receiver:
//
//   SynchronousNetwork — the round-exact double-buffered span arena the
//     engine has always used: everything sent in round r is available in
//     round r+1, nothing is lost. This is the default and stays
//     bit-identical to the seed reference engine.
//
//   DelayedNetwork — an event-queue transport for the asynchronous regime
//     the paper's synchronizer exists to tame: every transmission of a
//     directed edge gets a latency drawn from a per-edge stream (uniform,
//     per-edge-weighted, or heavy-tail presets), with fault knobs for
//     message drops (lost transmissions retransmitted after a timeout),
//     duplication, fail-stop crashed nodes, and late joiners. All draws
//     derive from the run seed through dedicated streams consumed in
//     sender-schedule order, so a run is bit-repeatable for any engine
//     thread count and shards merge byte-identically.
//
// A NetworkOptions value travels with RunOptions (and through the campaign
// and shard layers as a grid dimension); parsing/naming helpers here back
// the `--network=` / fault-knob CLI flags and the manifest round trip.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/graph/csr.h"
#include "src/util/rng.h"

namespace unilocal {

/// Which delivery layer a run executes through.
enum class NetworkKind : std::uint8_t {
  kSynchronous,  // round-exact arena (the default)
  kDelayed,      // seeded event-queue transport with latency + faults
};

/// Latency family of the DelayedNetwork, per directed edge and message.
enum class DelayPreset : std::uint8_t {
  kUniform,    // fresh uniform draw in [1, max_delay] per transmission
  kWeighted,   // fixed per-edge latency drawn once in [1, max_delay]
  kHeavyTail,  // integer Pareto-like: ~half the messages take 1-2 ticks,
               // a 2^-k tail reaches ~2^16 ticks
};

struct NetworkOptions {
  NetworkKind kind = NetworkKind::kSynchronous;
  /// Latency preset (DelayedNetwork only).
  DelayPreset preset = DelayPreset::kUniform;
  /// Probability that one transmission is lost. Lost transmissions are
  /// retransmitted after a timeout of 2*max_delay ticks (so moderate drop
  /// rates delay delivery instead of changing outputs); a transmission
  /// abandoned after 64 consecutive losses — or any transmission when
  /// drop >= 1 — is never delivered and stalls its receiver at the cutoff.
  double drop = 0.0;
  /// Probability that a delivered message arrives a second time (the copy
  /// lands strictly later; receivers ignore it).
  double duplicate = 0.0;
  /// Fraction of nodes that fail-stop before their first step: they never
  /// run, never send, and are finalized as cut off with default_output.
  double crash = 0.0;
  /// Fraction of nodes that join late: their wake is delayed by a per-node
  /// draw in [1, late_by] ticks on top of any RunOptions::wake_rounds.
  double late = 0.0;
  /// Latency ceiling of the uniform/weighted presets (>= 1, in ticks);
  /// also sets the retransmission timeout (2*max_delay) for every preset.
  std::int64_t max_delay = 8;
  /// Ceiling of a late joiner's extra wake delay (>= 1, in ticks).
  std::int64_t late_by = 64;

  friend bool operator==(const NetworkOptions&,
                         const NetworkOptions&) = default;
};

/// Stable preset names ("uniform", "weighted", "heavytail").
const char* delay_preset_name(DelayPreset preset);

/// Canonical spec string: "sync", or "delay:<preset>". Used by the CSV/JSON
/// writers and the shard manifest round trip.
std::string network_spec_name(const NetworkOptions& options);

/// Parses a spec string ("sync" | "delay:uniform" | "delay:weighted" |
/// "delay:heavytail") into kind + preset, leaving every knob at its
/// default. Throws std::runtime_error naming the valid specs otherwise.
NetworkOptions parse_network_spec(const std::string& spec);

/// Strict CLI knob parsing: the whole text must parse and land in range, or
/// a std::runtime_error naming `flag` is thrown. parse_unit_interval
/// accepts [0, 1]; parse_positive_ticks accepts integers >= 1.
double parse_unit_interval(const char* flag, const std::string& text);
std::int64_t parse_positive_ticks(const char* flag, const std::string& text);

/// Validates knob ranges (same rules as the parsers); throws
/// std::runtime_error on the first violation. run_local calls this, so a
/// malformed NetworkOptions fails fast instead of mid-run.
void validate_network_options(const NetworkOptions& options);

/// Arena descriptor of one directed edge's message: offset into the owning
/// word buffer and length. words < 0 means no message. In the synchronous
/// arena the top bits of offset carry the id of the stepping thread whose
/// word buffer holds the payload — needed because the live list is
/// re-chunked across threads every round, so a sender's thread cannot be
/// derived from its node id; packing keeps the span at 16 bytes (4 per
/// cache line) on the hot receive path.
struct Span {
  std::int64_t offset = 0;
  std::int64_t words = -1;
};

/// offset layout: bits [kOwnerShift, 63) = writer thread, low bits = word
/// offset. Word buffers stay far below 2^48 entries; thread counts below
/// 2^15 are enforced in the engine constructor.
constexpr int kOwnerShift = 48;
constexpr std::int64_t kOffsetMask = (std::int64_t{1} << kOwnerShift) - 1;

inline std::int64_t pack_offset(int owner, std::size_t offset) {
  return (static_cast<std::int64_t>(owner) << kOwnerShift) |
         static_cast<std::int64_t>(offset);
}

/// The round-exact delivery layer: spans indexed by directed-edge slot,
/// double-buffered between a send half and a receive half that swap at each
/// round barrier; payload words live in per-thread buffers (the owner rides
/// the span offset's top bits). Slots are reset lazily through per-thread
/// dirty lists — only the slots written two rounds ago — with an adaptive
/// fallback to a linear fill on dense rounds; the all-clean exit invariant
/// keeps reused workspaces O(m)-init-free. Owned by EngineWorkspaceState so
/// capacity survives across runs. send() may be called from concurrent
/// stepping threads as long as each thread passes its own tid.
class SynchronousNetwork {
 public:
  /// Per-run preparation: rebuilds the span tables only when the slot count
  /// changed or the last run exited dirty (a thrown step).
  void begin_run(std::size_t slots, int threads);

  /// Resets the send half (strategy it was written under) and picks this
  /// round's write strategy: a round whose predecessor moved at least a
  /// quarter of the slot space writes in bulk mode — no dirty recording,
  /// reset by linear fill — because a sequential sweep beats per-slot
  /// indirection when nearly everything was written.
  void begin_round(std::int64_t prev_round_messages);

  /// The round barrier: what was sent becomes receivable.
  void end_round();

  /// Restores the all-clean invariant (both halves reset under the strategy
  /// they were written with).
  void end_run();

  void send(int tid, std::int64_t slot, const std::int64_t* data,
            std::size_t words) {
    auto& buf = send_words_[static_cast<std::size_t>(tid)];
    Span& s = send_spans_[static_cast<std::size_t>(slot)];
    if (!send_bulk_ && s.words < 0)
      send_dirty_[static_cast<std::size_t>(tid)]
          .push_back(slot);  // first write this round: schedule the reset
    s.offset = pack_offset(tid, buf.size());
    s.words = static_cast<std::int64_t>(words);
    buf.insert(buf.end(), data, data + words);
  }

  /// What the previous round sent through `slot`. The returned span points
  /// into the receive half, which no send of the current round can touch,
  /// so it stays valid for the whole step.
  std::span<const std::int64_t> recv(std::int64_t slot, bool* present) const {
    const Span s = recv_spans_[static_cast<std::size_t>(slot)];
    if (s.words < 0) {
      *present = false;
      return {};
    }
    const auto& buf =
        recv_words_[static_cast<std::size_t>(s.offset >> kOwnerShift)];
    *present = true;
    return {buf.data() + (s.offset & kOffsetMask),
            static_cast<std::size_t>(s.words)};
  }

  /// Send-half slot inspection (post-step message accounting).
  const Span& send_span(std::int64_t slot) const {
    return send_spans_[static_cast<std::size_t>(slot)];
  }

  /// Slots lazily reset through the dirty lists this run (the clearing-work
  /// stat; bulk fills are not counted).
  std::int64_t dirty_cleared() const { return dirty_cleared_; }

  /// Capacity held by the arena (word buffers + span tables + dirty lists).
  std::int64_t arena_bytes() const;

 private:
  void reset_half(std::vector<Span>& spans,
                  std::vector<std::vector<std::int64_t>>& dirty_lists,
                  bool bulk);

  std::vector<Span> send_spans_, recv_spans_;
  std::vector<std::vector<std::int64_t>> send_words_, recv_words_;
  std::vector<std::vector<std::int64_t>> send_dirty_, recv_dirty_;
  // Whether each half was written in bulk mode — travels with the buffer
  // across the per-round swaps so the reset strategy always matches how the
  // half was written.
  bool send_bulk_ = false, recv_bulk_ = false;
  // Whether the all-clean invariant held when the last run exited (a thrown
  // step leaves it false and the next begin_run rebuilds both halves).
  bool clean_ = false;
  std::int64_t bulk_threshold_ = 0;
  std::int64_t dirty_cleared_ = 0;
};

/// The asynchronous delivery layer: a seeded deterministic event queue.
///
/// Every (sender, local round, port) transmission is one "pulse" — silence
/// included, because under the alpha synchronizer the arrival of round-r
/// traffic IS the signal that the neighbour performed round r (paper,
/// "Synchronicity and time complexity"). Each pulse gets a latency from the
/// owning edge's private stream, may be lost (retransmitted after a
/// timeout) or duplicated, and lands in a per-edge delivered history; the
/// receiver's contiguous delivered prefix generalizes the synchronizer's
/// dependency-lag counters from round stamps to delivery timestamps.
///
/// Determinism contract: all draws happen at SEND time in sender-schedule
/// order from per-edge streams split off a network-tagged base seed (never
/// the per-node algorithm streams), and the event queue breaks timestamp
/// ties by (edge, round, push sequence) — so the delivery order is a pure
/// function of (topology, seed, options), independent of engine thread
/// count, shard count, and heap implementation.
class DelayedNetwork {
 public:
  /// One delivered pulse, popped in deterministic timestamp order.
  struct Delivery {
    std::int64_t time = 0;
    std::int64_t edge = 0;  // directed-edge slot it was delivered on
    NodeId receiver = 0;
    std::int64_t round = 0;  // sender-local round of the pulse
    bool payload = false;    // carried words (vs a silent round pulse)
    // Receiver-side bookkeeping around this delivery, for the engine's
    // eligibility update: the contiguous delivered prefix of the edge and
    // whether the edge is saturated (sender finished, everything it ever
    // sent delivered — nothing further to wait for).
    std::int64_t prefix_before = 0, prefix_after = 0;
    bool saturated_before = false, saturated_after = false;
  };

  struct FlushDelta {
    std::int64_t messages = 0;  // payload pulses (parity with sync totals)
    std::int64_t max_words = 0;
  };

  /// One scheduled delivery (public for the file-local heap comparator).
  struct Event {
    std::int64_t time = 0;
    std::int64_t edge = 0;
    std::int64_t round = 0;
    std::int64_t offset = 0;  // into words_; meaningful when words >= 0
    std::int64_t words = -1;  // -1 = silent pulse
    std::int64_t sent_at = 0;
    std::uint64_t seq = 0;  // push order: the deterministic tie-breaker
    NodeId receiver = 0;
    bool final_round = false;
  };

  /// Per-run preparation: derives edge/fault streams from `seed`, draws the
  /// crash/late-joiner sets, and clears the delivered histories. Capacity
  /// is kept across runs (workspace reuse).
  void begin_run(const CsrGraph& csr, std::uint64_t seed,
                 const NetworkOptions& options);

  bool crashed(NodeId v) const {
    return crashed_[static_cast<std::size_t>(v)] != 0;
  }
  /// Extra wake delay of a late joiner (0 for punctual nodes).
  std::int64_t wake_delay(NodeId v) const {
    return wake_extra_[static_cast<std::size_t>(v)];
  }

  /// Sender side. stage() buffers the stepping node's outgoing message for
  /// one of its ports (a resend overwrites: last write wins, as in the
  /// synchronous arena); flush_node() — called once after the step — draws
  /// latency/fault decisions for every port's pulse, silent ports included,
  /// and schedules the deliveries. sender_finished marks the pulses as the
  /// sender's final round so receivers saturate instead of waiting forever.
  void stage(NodeId port, const std::int64_t* data, std::size_t words);
  FlushDelta flush_node(NodeId v, std::int64_t round, std::int64_t now,
                        bool sender_finished);

  /// Earliest pending delivery timestamp; false when the queue is empty
  /// (either done or stalled on undeliverable dependencies).
  bool next_delivery_time(std::int64_t* time) const {
    if (heap_.empty()) return false;
    *time = heap_.front().time;
    return true;
  }
  /// Pops the next delivery, lands it in the edge history, and advances the
  /// receiver's contiguous prefix. A duplicate of an already-delivered
  /// pulse is a no-op (prefix_before == prefix_after).
  bool pop_delivery(Delivery* out);

  std::int64_t prefix(std::int64_t edge) const {
    return prefix_[static_cast<std::size_t>(edge)];
  }
  /// Sender finished and every round it ever pulsed has been delivered.
  bool saturated(std::int64_t edge) const {
    const std::size_t e = static_cast<std::size_t>(edge);
    return final_round_[e] >= 0 && prefix_[e] > final_round_[e];
  }

  /// What `edge` delivered for the sender's local round `round`; absent for
  /// rounds never pulsed (sender finished earlier) or not yet delivered.
  /// The span stays valid for a whole step: the payload arena only grows in
  /// flush_node, which runs between steps.
  std::span<const std::int64_t> recv(std::int64_t edge, std::int64_t round,
                                    bool* present) const;

  std::int64_t dropped() const { return dropped_; }
  std::int64_t duplicated() const { return duplicated_; }
  /// Max over delivered pulses of (arrival - send - 1): the worst latency
  /// in excess of the synchronous network's exactly-one-tick delivery.
  std::int64_t max_skew() const { return max_skew_; }
  std::int64_t arena_bytes() const;

 private:
  std::int64_t draw_delay(std::int64_t edge);
  void transmit(std::int64_t edge, NodeId receiver, std::int64_t round,
                std::int64_t now, Span payload, bool final_round);
  void push_event(Event event);

  const CsrGraph* csr_ = nullptr;
  NetworkOptions opts_;
  std::int64_t retransmit_after_ = 0;

  std::vector<Rng> edge_rngs_;
  std::vector<std::int64_t> edge_base_;  // kWeighted per-edge latency
  std::vector<char> crashed_;
  std::vector<std::int64_t> wake_extra_;

  // Delivered history per edge: hist_[e][r] = the round-r pulse, words
  // kNotArrived until delivery, -1 for a delivered silent pulse, >= 0 a
  // span into words_. prefix_[e] = contiguous delivered rounds;
  // final_round_[e] = the sender's last round once a final pulse landed.
  std::vector<std::vector<Span>> hist_;
  std::vector<std::int64_t> prefix_;
  std::vector<std::int64_t> final_round_;
  std::vector<std::int64_t> words_;

  // Min-heap over (time, edge, round, seq) via std::push_heap/pop_heap —
  // the strict total order keeps pops identical across stdlib heaps.
  std::vector<Event> heap_;
  std::uint64_t seq_ = 0;

  // Per-step staging (outbox): spans per port into outbox_words_, flushed
  // and cleared by flush_node.
  std::vector<Span> outbox_;
  std::vector<std::int64_t> outbox_words_;

  std::int64_t dropped_ = 0;
  std::int64_t duplicated_ = 0;
  std::int64_t max_skew_ = 0;
};

}  // namespace unilocal
