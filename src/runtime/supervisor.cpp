#include "src/runtime/supervisor.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "src/util/rng.h"

namespace unilocal {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

constexpr const char* kJournalFormat = "unilocal-supervisor-journal-v1";

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The last `limit` characters of a worker's stderr capture ("" when the
/// file is missing or empty) — enough to say WHY a worker died without
/// dumping megabytes into one error message.
std::string stderr_tail(const std::string& path, std::size_t limit = 400) {
  std::string text;
  try {
    text = read_text_file(path);
  } catch (...) {
    return "";
  }
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
    text.pop_back();
  if (text.size() > limit)
    text = "..." + text.substr(text.size() - limit);
  return text;
}

}  // namespace

// --- small process/shell helpers --------------------------------------------

std::string shell_quote(const std::string& text) {
  if (text.find('\0') != std::string::npos)
    throw std::runtime_error(
        "shell_quote: argument contains a NUL byte (no argv can)");
  // Always quote — the empty string must become '' (an unquoted empty
  // argument vanishes), and scanning for "safe" characters buys nothing.
  std::string out = "'";
  for (const char c : text) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

std::string describe_wait_status(int status) {
  if (WIFEXITED(status))
    return "exited " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status))
    return "killed by signal " + std::to_string(WTERMSIG(status));
  if (WIFSTOPPED(status))
    return "stopped by signal " + std::to_string(WSTOPSIG(status));
  return "wait status " + std::to_string(status);
}

// --- chaos injection ---------------------------------------------------------

const char* chaos_fault_name(ChaosFault fault) {
  switch (fault) {
    case ChaosFault::kNone:
      return "none";
    case ChaosFault::kCrash:
      return "crash";
    case ChaosFault::kHang:
      return "hang";
    case ChaosFault::kCorrupt:
      return "corrupt";
    case ChaosFault::kFlakyExit:
      return "flaky-exit";
  }
  return "?";
}

std::string chaos_spec_name(const ChaosOptions& options) {
  std::string spec;
  const auto add = [&spec](const char* kind, double p) {
    if (p <= 0.0) return;
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%s%s:%.17g", spec.empty() ? "" : ",",
                  kind, p);
    spec += buffer;
  };
  add("crash", options.crash);
  add("hang", options.hang);
  add("corrupt", options.corrupt);
  add("flaky-exit", options.flaky_exit);
  return spec;
}

ChaosOptions parse_chaos_spec(const std::string& spec) {
  ChaosOptions options;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos)
      throw std::runtime_error("--inject: expected kind:probability, got '" +
                               item + "'");
    const std::string kind = item.substr(0, colon);
    const std::string text = item.substr(colon + 1);
    double p = 0.0;
    try {
      std::size_t used = 0;
      p = std::stod(text, &used);
      if (used != text.size()) throw std::invalid_argument(text);
    } catch (...) {
      throw std::runtime_error("--inject: malformed probability '" + text +
                               "' for " + kind);
    }
    if (p < 0.0 || p > 1.0)
      throw std::runtime_error("--inject: probability for " + kind +
                               " must be in [0, 1], got " + text);
    if (kind == "crash")
      options.crash = p;
    else if (kind == "hang")
      options.hang = p;
    else if (kind == "corrupt")
      options.corrupt = p;
    else if (kind == "flaky-exit")
      options.flaky_exit = p;
    else
      throw std::runtime_error(
          "--inject: unknown fault kind '" + kind +
          "' (expected crash, hang, corrupt, or flaky-exit)");
  }
  const double total =
      options.crash + options.hang + options.corrupt + options.flaky_exit;
  if (total > 1.0)
    throw std::runtime_error(
        "--inject: probabilities sum to more than 1 (one draw decides "
        "which fault fires)");
  return options;
}

ChaosFault draw_chaos_fault(const ChaosOptions& options, int shard_index,
                            int attempt) {
  if (!options.any()) return ChaosFault::kNone;
  // One uniform draw per (shard, attempt), a pure function of the seed —
  // the fault schedule replays bit-identically across reruns and across
  // the supervisor/worker process boundary.
  const std::uint64_t stream = splitmix64(
      options.seed ^
      splitmix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                      shard_index))
                  << 32) |
                 static_cast<std::uint32_t>(attempt)));
  const double u =
      static_cast<double>(stream >> 11) * 0x1.0p-53;  // uniform in [0, 1)
  double threshold = options.crash;
  if (u < threshold) return ChaosFault::kCrash;
  threshold += options.hang;
  if (u < threshold) return ChaosFault::kHang;
  threshold += options.corrupt;
  if (u < threshold) return ChaosFault::kCorrupt;
  threshold += options.flaky_exit;
  if (u < threshold) return ChaosFault::kFlakyExit;
  return ChaosFault::kNone;
}

// --- checkpoint journal ------------------------------------------------------

SupervisorJournal read_supervisor_journal(const std::string& path,
                                          const ShardPlan& plan) {
  SupervisorJournal journal;
  std::ifstream in(path);
  if (!in) return journal;
  std::string line;
  if (!std::getline(in, line) || line.empty()) return journal;
  // Header: a journal that cannot prove which plan it belongs to is
  // treated as absent (the supervisor rewrites it); a journal that proves
  // it belongs to a DIFFERENT plan is an error, never silently merged.
  std::uint64_t hash = 0;
  try {
    const json::Value header = json::Value::parse(line);
    const json::Value* format = header.find("format");
    if (format == nullptr || !format->is_string() ||
        format->as_string() != kJournalFormat)
      return journal;
    hash = json::u64_field(header.at("plan_grid_hash"));
  } catch (...) {
    return journal;  // unprovable provenance = no journal
  }
  if (hash != plan.grid_hash)
    throw std::runtime_error(
        "supervisor journal " + path + " belongs to plan " +
        std::to_string(hash) + ", not this plan (" +
        std::to_string(plan.grid_hash) + ") — refusing to resume");
  journal.plan_grid_hash = hash;
  journal.found = true;

  std::vector<char> seen(plan.shards.size(), 0);
  while (std::getline(in, line)) {
    // A truncated or garbled line (the writer was killed mid-append, the
    // file was hand-edited) just means its shard re-runs — the journal is
    // a cache of deterministic work, so skipping is always safe.
    try {
      const json::Value entry = json::Value::parse(line);
      const int shard = static_cast<int>(entry.at("shard").as_i64());
      ShardResult result = ShardResult::from_json(entry.at("result"));
      if (result.shard_index != shard) continue;
      if (!shard_result_problem(plan, result).empty()) continue;
      const std::size_t slot = static_cast<std::size_t>(shard);
      if (seen[slot] != 0) continue;  // first acceptance wins
      seen[slot] = 1;
      journal.completed.push_back(std::move(result));
    } catch (...) {
      continue;
    }
  }
  return journal;
}

// --- supervision -------------------------------------------------------------

namespace {

/// Spawns argv with stdout discarded and stderr captured to a file.
/// Returns -1 when fork itself fails (an environmental error, not a
/// worker failure).
pid_t spawn_worker(const std::vector<std::string>& argv,
                   const std::string& stderr_path) {
  if (argv.empty()) return -1;
  std::vector<char*> raw;
  raw.reserve(argv.size() + 1);
  for (const std::string& arg : argv)
    raw.push_back(const_cast<char*>(arg.c_str()));
  raw.push_back(nullptr);

  const pid_t pid = fork();
  if (pid != 0) return pid;
  // Child: no shell, no inherited stdio noise. Anything that fails here
  // lands in the stderr capture and a 127 exit.
  const int devnull = open("/dev/null", O_WRONLY);
  if (devnull >= 0) {
    dup2(devnull, STDOUT_FILENO);
    close(devnull);
  }
  const int errfd =
      open(stderr_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (errfd >= 0) {
    dup2(errfd, STDERR_FILENO);
    close(errfd);
  }
  execvp(raw[0], raw.data());
  std::fprintf(stderr, "exec %s failed\n", raw[0]);
  _exit(127);
}

struct RunningAttempt {
  pid_t pid = -1;
  int shard = 0;
  int attempt = 0;
  bool speculative = false;
  Clock::time_point start;
  double timeout_seconds = 0.0;
  std::string result_path;
  std::string stderr_path;
  bool timed_out = false;
  bool superseded = false;
  /// Set at either SIGKILL site (deadline overrun, supersede) so the
  /// attempt record can say the supervisor ended this attempt, not the
  /// worker.
  bool killed = false;
  /// Trace-clock launch timestamp (0 when tracing is off) — the span's ts.
  std::int64_t trace_t0 = 0;
};

struct PendingAttempt {
  int shard = 0;
  bool speculative = false;
  Clock::time_point not_before;
};

/// Deterministic jitter multiplier in [1, 2): splitmix64 over
/// (seed, shard, retry) — the same rerun backs off identically.
double backoff_jitter(std::uint64_t seed, int shard, int retry) {
  const std::uint64_t stream = splitmix64(
      seed ^ splitmix64(0x9e3779b97f4a7c15ULL +
                        (static_cast<std::uint64_t>(
                             static_cast<std::uint32_t>(shard))
                         << 32) +
                        static_cast<std::uint32_t>(retry)));
  return 1.0 + static_cast<double>(stream >> 11) * 0x1.0p-53;
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[(values.size() - 1) / 2];
}

}  // namespace

std::string SupervisorReport::failure_summary() const {
  if (failed_shards.empty()) return "";
  std::string message = "supervision failed for " +
                        std::to_string(failed_shards.size()) + " shard" +
                        (failed_shards.size() == 1 ? "" : "s") + ": ";
  bool first_shard = true;
  for (const int s : failed_shards) {
    if (!first_shard) message += "; ";
    first_shard = false;
    const ShardSupervision& sup = shards[static_cast<std::size_t>(s)];
    message += "shard " + std::to_string(s) + " failed after " +
               std::to_string(sup.attempts) + " attempt" +
               (sup.attempts == 1 ? "" : "s") + " [";
    for (std::size_t a = 0; a < sup.log.size(); ++a) {
      if (a != 0) message += ", ";
      char timing[32];
      std::snprintf(timing, sizeof(timing), " (%.2fs)", sup.log[a].seconds);
      message += "attempt " + std::to_string(sup.log[a].attempt) + ": " +
                 sup.log[a].outcome + timing;
    }
    message += "]";
    // The last attempt's stderr usually says why; quote its tail while
    // the scratch directory still exists.
    for (auto it = sup.log.rbegin(); it != sup.log.rend(); ++it) {
      const std::string tail = stderr_tail(it->stderr_path);
      if (tail.empty()) continue;
      message += ", worker said: \"" + tail + "\"";
      break;
    }
  }
  return message;
}

SupervisorReport supervise_shards(const ShardPlan& plan,
                                  const SupervisorOptions& options,
                                  const WorkerCommand& command) {
  if (options.max_attempts < 1)
    throw std::runtime_error("supervise_shards: max_attempts must be >= 1");
  if (options.scratch_dir.empty())
    throw std::runtime_error("supervise_shards: scratch_dir is required");
  const ShardCostModel& cost_model = options.cost_model != nullptr
                                         ? *options.cost_model
                                         : default_shard_cost_model();
  const std::size_t num_shards = plan.shards.size();

  SupervisorReport report;
  report.shards.resize(num_shards);
  std::vector<std::string> manifest_paths(num_shards);
  std::vector<double> shard_costs(num_shards, 0.0);
  std::vector<ShardResult> accepted(num_shards);
  std::vector<char> completed(num_shards, 0);
  std::vector<char> failed(num_shards, 0);
  std::vector<int> launches(num_shards, 0);

  for (std::size_t s = 0; s < num_shards; ++s) {
    report.shards[s].shard_index = static_cast<int>(s);
    for (const CampaignCell& cell : plan.shards[s].cells)
      shard_costs[s] += cost_model.cell_cost(cell);
    manifest_paths[s] =
        options.scratch_dir + "/shard-" + std::to_string(s) + ".json";
    std::ofstream out(manifest_paths[s], std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("supervise_shards: cannot write " +
                               manifest_paths[s]);
    out << plan.shards[s].to_json().dump() << "\n";
    if (!out)
      throw std::runtime_error("supervise_shards: short write to " +
                               manifest_paths[s]);
  }

  // Resume: journaled shards are done before anything launches.
  std::ofstream journal_out;
  if (!options.journal_path.empty()) {
    const SupervisorJournal journal =
        read_supervisor_journal(options.journal_path, plan);
    for (const ShardResult& result : journal.completed) {
      const std::size_t slot = static_cast<std::size_t>(result.shard_index);
      completed[slot] = 1;
      accepted[slot] = result;
      report.shards[slot].completed = true;
      report.shards[slot].from_journal = true;
      ++report.shards_from_journal;
      if (options.trace != nullptr) {
        telemetry::TraceEvent event;
        event.name = "journal-skip";
        event.phase = 'i';
        event.ts = options.trace->now();
        event.pid = options.trace_pid;
        event.tid = result.shard_index + 1;
        event.arg("shard", static_cast<std::int64_t>(result.shard_index));
        options.trace->record(std::move(event));
      }
    }
    journal_out.open(options.journal_path,
                     journal.found ? std::ios::app : std::ios::trunc);
    if (!journal_out)
      throw std::runtime_error("supervise_shards: cannot open journal " +
                               options.journal_path);
    if (!journal.found) {
      json::Value header = json::Value::object();
      header.set("format", json::Value::string(kJournalFormat));
      header.set("plan_grid_hash",
                 json::Value::string(std::to_string(plan.grid_hash)));
      header.set("num_shards", json::Value::number(
                                   static_cast<std::int64_t>(num_shards)));
      journal_out << header.dump() << "\n";
      journal_out.flush();
    }
  }

  const int slots = options.max_concurrent > 0
                        ? options.max_concurrent
                        : std::max(1, static_cast<int>(num_shards));

  std::deque<PendingAttempt> pending;
  std::vector<RunningAttempt> running;
  const Clock::time_point begin = Clock::now();
  for (std::size_t s = 0; s < num_shards; ++s)
    if (completed[s] == 0) pending.push_back({static_cast<int>(s), false, begin});

  /// Seconds-per-cost-unit samples from accepted attempts, for the
  /// straggler threshold.
  std::vector<double> rate_samples;

  const auto count_inflight = [&pending, &running](int shard) {
    int n = 0;
    for (const PendingAttempt& p : pending)
      if (p.shard == shard) ++n;
    for (const RunningAttempt& r : running)
      if (r.shard == shard && !r.superseded) ++n;
    return n;
  };

  // Lifecycle instants ("i" events) on the attempt's shard lane; a null
  // recorder turns every call into one pointer test.
  const auto trace_instant = [&options](const char* name, int shard,
                                        int attempt) {
    if (options.trace == nullptr) return;
    telemetry::TraceEvent event;
    event.name = name;
    event.phase = 'i';
    event.ts = options.trace->now();
    event.pid = options.trace_pid;
    event.tid = shard + 1;
    event.arg("shard", static_cast<std::int64_t>(shard));
    if (attempt > 0) event.arg("attempt", static_cast<std::int64_t>(attempt));
    options.trace->record(std::move(event));
  };

  const auto record_attempt = [&report, &options, begin](
                                  const RunningAttempt& r, double seconds,
                                  std::string outcome) {
    ShardSupervision& sup = report.shards[static_cast<std::size_t>(r.shard)];
    sup.total_attempt_seconds += seconds;
    ShardAttemptRecord record;
    record.attempt = r.attempt;
    record.speculative = r.speculative;
    record.seconds = seconds;
    record.outcome = outcome;
    record.stderr_path = r.stderr_path;
    record.start_seconds = seconds_between(begin, r.start);
    record.end_seconds = record.start_seconds + seconds;
    record.killed = r.killed;
    if (options.trace != nullptr) {
      telemetry::TraceEvent event;
      event.name = "attempt";
      event.phase = 'X';
      event.ts = r.trace_t0;
      event.dur = options.trace->now() - r.trace_t0;
      event.pid = options.trace_pid;
      event.tid = r.shard + 1;
      event.arg("shard", static_cast<std::int64_t>(r.shard));
      event.arg("attempt", static_cast<std::int64_t>(r.attempt));
      event.arg("speculative", r.speculative);
      event.arg("outcome", outcome);
      event.arg("killed", r.killed);
      options.trace->record(std::move(event));
    }
    sup.log.push_back(std::move(record));
  };

  const auto launch = [&](int shard, bool speculative) {
    const std::size_t slot = static_cast<std::size_t>(shard);
    const int attempt = ++launches[slot];
    ++report.shards[slot].attempts;
    ++report.attempts;
    ShardAttemptContext context;
    context.shard_index = shard;
    context.attempt = attempt;
    context.speculative = speculative;
    context.manifest_path = manifest_paths[slot];
    context.result_path = options.scratch_dir + "/result-" +
                          std::to_string(shard) + "-attempt-" +
                          std::to_string(attempt) + ".json";
    context.stderr_path = options.scratch_dir + "/stderr-" +
                          std::to_string(shard) + "-attempt-" +
                          std::to_string(attempt) + ".log";
    RunningAttempt r;
    r.shard = shard;
    r.attempt = attempt;
    r.speculative = speculative;
    r.start = Clock::now();
    r.timeout_seconds = options.base_timeout_seconds +
                        options.timeout_seconds_per_cost * shard_costs[slot];
    r.result_path = context.result_path;
    r.stderr_path = context.stderr_path;
    if (options.trace != nullptr) r.trace_t0 = options.trace->now();
    trace_instant("launch", shard, attempt);
    r.pid = spawn_worker(command(context), context.stderr_path);
    if (r.pid < 0) {
      record_attempt(r, 0.0, "spawn failed: fork returned -1");
      return false;
    }
    running.push_back(std::move(r));
    return true;
  };

  // If anything throws past here, no worker may outlive the supervisor.
  const auto kill_everything = [&running] {
    for (RunningAttempt& r : running)
      if (r.pid > 0) kill(r.pid, SIGKILL);
    for (RunningAttempt& r : running)
      if (r.pid > 0) waitpid(r.pid, nullptr, 0);
    running.clear();
  };

  try {
    while (true) {
      const Clock::time_point now = Clock::now();

      // Launch what's ready while slots are free.
      for (std::size_t i = 0;
           i < pending.size() && static_cast<int>(running.size()) < slots;) {
        const PendingAttempt p = pending[i];
        if (completed[static_cast<std::size_t>(p.shard)] != 0 ||
            p.not_before > now) {
          if (completed[static_cast<std::size_t>(p.shard)] != 0)
            pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
          else
            ++i;
          continue;
        }
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
        launch(p.shard, p.speculative);
      }

      // Reap whatever finished.
      for (std::size_t i = 0; i < running.size();) {
        RunningAttempt& r = running[i];
        int status = 0;
        const pid_t reaped = waitpid(r.pid, &status, WNOHANG);
        if (reaped == 0) {
          // Still running: enforce the deadline.
          if (!r.timed_out &&
              seconds_between(r.start, now) > r.timeout_seconds) {
            r.timed_out = true;
            r.killed = true;
            trace_instant("sigkill", r.shard, r.attempt);
            kill(r.pid, SIGKILL);
          }
          ++i;
          continue;
        }
        const RunningAttempt done = std::move(r);
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
        const double seconds = seconds_between(done.start, Clock::now());
        const std::size_t slot = static_cast<std::size_t>(done.shard);

        if (done.superseded || completed[slot] != 0) {
          record_attempt(done, seconds, "superseded");
          continue;
        }

        std::string outcome;
        bool ok = false;
        if (done.timed_out) {
          char buffer[48];
          std::snprintf(buffer, sizeof(buffer), "timeout after %.1fs",
                        done.timeout_seconds);
          outcome = buffer;
        } else if (reaped < 0) {
          outcome = "lost (waitpid failed)";
        } else if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
          // Exit 0 is necessary, not sufficient: the output must parse and
          // pass the merge-layer fingerprint validation. A corrupted file
          // is treated exactly like a crash.
          try {
            ShardResult result = ShardResult::from_json(
                json::Value::parse(read_text_file(done.result_path)));
            std::string problem;
            if (result.shard_index != done.shard)
              problem = "claims shard " + std::to_string(result.shard_index) +
                        ", expected " + std::to_string(done.shard);
            else
              problem = shard_result_problem(plan, result);
            if (problem.empty()) {
              ok = true;
              outcome = "accepted";
              trace_instant("accept", done.shard, done.attempt);
              completed[slot] = 1;
              accepted[slot] = std::move(result);
              report.shards[slot].completed = true;
              rate_samples.push_back(seconds /
                                     std::max(1.0, shard_costs[slot]));
              if (journal_out.is_open()) {
                json::Value entry = json::Value::object();
                entry.set("shard", json::Value::number(
                                       static_cast<std::int64_t>(done.shard)));
                entry.set("attempt",
                          json::Value::number(
                              static_cast<std::int64_t>(done.attempt)));
                entry.set("result", accepted[slot].to_json());
                journal_out << entry.dump() << "\n";
                journal_out.flush();
              }
              // Any sibling attempt is now pointless — kill it; it will be
              // reaped as "superseded".
              for (RunningAttempt& sibling : running) {
                if (sibling.shard != done.shard || sibling.superseded)
                  continue;
                sibling.superseded = true;
                sibling.killed = true;
                trace_instant("sigkill", sibling.shard, sibling.attempt);
                kill(sibling.pid, SIGKILL);
              }
            } else {
              outcome = "invalid result: " + problem;
            }
          } catch (const std::exception& e) {
            outcome = std::string("invalid result: ") + e.what();
          }
        } else {
          outcome = describe_wait_status(status);
        }
        record_attempt(done, seconds, outcome);
        if (ok) continue;

        // Failed attempt: requeue with backoff, unless a sibling is still
        // in flight (it may yet win) or the budget is spent.
        if (count_inflight(done.shard) > 0) continue;
        if (launches[slot] >= options.max_attempts) {
          failed[slot] = 1;
          continue;
        }
        ++report.shards[slot].retries;
        ++report.retries;
        ++report.requeues;
        trace_instant("retry", done.shard, done.attempt);
        const int retry = report.shards[slot].retries;
        const double delay =
            std::min(options.backoff_max_seconds,
                     options.backoff_base_seconds *
                         std::ldexp(1.0, retry - 1)) *
            backoff_jitter(options.backoff_seed, done.shard, retry);
        pending.push_back(
            {done.shard, false,
             Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(delay))});
      }

      // Straggler speculation: duplicate attempts whose elapsed time is
      // far beyond what the fleet's observed rate predicts for their cost.
      if (options.speculate &&
          static_cast<int>(rate_samples.size()) >=
              options.straggler_min_samples) {
        const double rate = median(rate_samples);
        for (const RunningAttempt& r : running) {
          const std::size_t slot = static_cast<std::size_t>(r.shard);
          if (r.superseded || r.timed_out || completed[slot] != 0) continue;
          if (launches[slot] >= options.max_attempts) continue;
          if (count_inflight(r.shard) > 1) continue;  // one duplicate max
          const double expected =
              std::max(0.01, shard_costs[slot] * rate);
          if (seconds_between(r.start, now) <=
              options.straggler_factor * expected)
            continue;
          ++report.shards[slot].stragglers_respawned;
          ++report.stragglers_respawned;
          ++report.requeues;
          trace_instant("speculate", r.shard, r.attempt);
          pending.push_front({r.shard, true, now});
        }
      }

      // Done when every shard is resolved and nothing is in flight.
      bool resolved = running.empty();
      if (resolved) {
        for (std::size_t s = 0; s < num_shards && resolved; ++s) {
          if (completed[s] != 0 || failed[s] != 0) continue;
          // Not yet failed and not running: either awaiting backoff, or —
          // if its pending entry vanished (spawn failure) — out of road.
          if (count_inflight(static_cast<int>(s)) > 0)
            resolved = false;
          else if (launches[s] >= options.max_attempts)
            failed[s] = 1;
          else
            pending.push_back({static_cast<int>(s), false, now});
          if (failed[s] == 0 && completed[s] == 0) resolved = false;
        }
      }
      if (resolved && pending.empty()) break;

      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::max(1e-4, options.poll_interval_seconds)));
    }
  } catch (...) {
    kill_everything();
    throw;
  }

  for (std::size_t s = 0; s < num_shards; ++s) {
    if (completed[s] != 0)
      report.results.push_back(std::move(accepted[s]));
    else
      report.failed_shards.push_back(static_cast<int>(s));
  }
  report.elapsed_seconds = seconds_between(begin, Clock::now());
  return report;
}

}  // namespace unilocal
