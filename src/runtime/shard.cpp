#include "src/runtime/shard.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "src/runtime/run_log.h"

namespace unilocal {

namespace {

constexpr const char* kManifestFormat = "unilocal-shard-manifest-v1";
constexpr const char* kPlanFormat = "unilocal-shard-plan-v1";
constexpr const char* kResultFormat = "unilocal-shard-result-v1";

void check_format(const json::Value& value, const char* expected) {
  const json::Value* format = value.find("format");
  const std::string found =
      format != nullptr && format->is_string() ? format->as_string() : "";
  if (found != expected)
    throw std::runtime_error(std::string("shard: expected a \"") + expected +
                             "\" document, found \"" + found + "\"");
}

json::Value u64_string(std::uint64_t value) {
  return json::Value::string(std::to_string(value));
}

/// The (index, identity) part every document shares: what a cell IS,
/// independent of what running it produced.
void cell_identity_to_json(json::Value& out, std::size_t index,
                           const CampaignCell& cell) {
  out.set("index", json::Value::number(static_cast<std::uint64_t>(index)));
  out.set("scenario", json::Value::string(cell.scenario));
  out.set("n", json::Value::number(static_cast<std::int64_t>(cell.params.n)));
  out.set("a", json::Value::number(cell.params.a));
  out.set("b", json::Value::number(cell.params.b));
  out.set("algorithm", json::Value::string(cell.algorithm));
  out.set("seed", u64_string(cell.seed));
  out.set("identities",
          json::Value::string(identity_scheme_name(cell.identities)));
  out.set("network", json::Value::string(network_spec_name(cell.network)));
  // Fault knobs round-trip exactly (%.17g), so the worker's recomputed
  // grid hash — which covers their bit patterns — matches the planner's.
  out.set("drop", json::Value::number(cell.network.drop));
  out.set("duplicate", json::Value::number(cell.network.duplicate));
  out.set("crash", json::Value::number(cell.network.crash));
  out.set("late", json::Value::number(cell.network.late));
  out.set("max_delay", json::Value::number(cell.network.max_delay));
  out.set("late_by", json::Value::number(cell.network.late_by));
}

CampaignCell cell_identity_from_json(const json::Value& value,
                                     std::size_t& index) {
  CampaignCell cell;
  index = static_cast<std::size_t>(value.at("index").as_u64());
  cell.scenario = value.at("scenario").as_string();
  cell.params.n = static_cast<NodeId>(value.at("n").as_i64());
  cell.params.a = value.at("a").as_double();
  cell.params.b = value.at("b").as_double();
  cell.algorithm = value.at("algorithm").as_string();
  cell.seed = json::u64_field(value.at("seed"));
  cell.identities = parse_identity_scheme(value.at("identities").as_string());
  cell.network = parse_network_spec(value.at("network").as_string());
  cell.network.drop = value.at("drop").as_double();
  cell.network.duplicate = value.at("duplicate").as_double();
  cell.network.crash = value.at("crash").as_double();
  cell.network.late = value.at("late").as_double();
  cell.network.max_delay = value.at("max_delay").as_i64();
  cell.network.late_by = value.at("late_by").as_i64();
  return cell;
}

json::Value cell_result_to_json(std::size_t index, const CellResult& cell) {
  json::Value out = json::Value::object();
  cell_identity_to_json(out, index, cell.cell);
  out.set("nodes", json::Value::number(static_cast<std::int64_t>(cell.nodes)));
  out.set("edges", json::Value::number(cell.edges));
  out.set("rounds", json::Value::number(cell.rounds));
  out.set("solved", json::Value::boolean(cell.solved));
  out.set("valid", json::Value::boolean(cell.valid));
  out.set("seconds", json::Value::number(cell.seconds));
  out.set("output_hash", u64_string(cell.output_hash));
  out.set("error", json::Value::string(cell.error));
  json::Value stats = json::Value::object();
  stats.set("arena_bytes", json::Value::number(cell.stats.arena_bytes));
  stats.set("peak_round_messages",
            json::Value::number(cell.stats.peak_round_messages));
  stats.set("total_messages", json::Value::number(cell.stats.total_messages));
  stats.set("total_steps", json::Value::number(cell.stats.total_steps));
  stats.set("kernel_steps", json::Value::number(cell.stats.kernel_steps));
  stats.set("vtable_steps", json::Value::number(cell.stats.vtable_steps));
  stats.set("kernel_batched_steps",
            json::Value::number(cell.stats.kernel_batched_steps));
  stats.set("kernel_batch_calls",
            json::Value::number(cell.stats.kernel_batch_calls));
  stats.set("peak_live_nodes",
            json::Value::number(cell.stats.peak_live_nodes));
  stats.set("final_live_nodes",
            json::Value::number(cell.stats.final_live_nodes));
  stats.set("peak_frontier_nodes",
            json::Value::number(cell.stats.peak_frontier_nodes));
  stats.set("dirty_spans_cleared",
            json::Value::number(cell.stats.dirty_spans_cleared));
  stats.set("messages_dropped",
            json::Value::number(cell.stats.messages_dropped));
  stats.set("messages_duplicated",
            json::Value::number(cell.stats.messages_duplicated));
  stats.set("max_delivery_skew",
            json::Value::number(cell.stats.max_delivery_skew));
  stats.set("elapsed_seconds", json::Value::number(cell.stats.elapsed_seconds));
  stats.set("steps_per_second",
            json::Value::number(cell.stats.steps_per_second));
  stats.set("threads",
            json::Value::number(static_cast<std::int64_t>(cell.stats.threads)));
  out.set("stats", std::move(stats));
  return out;
}

CellResult cell_result_from_json(const json::Value& value,
                                 std::size_t& index) {
  CellResult cell;
  cell.cell = cell_identity_from_json(value, index);
  cell.nodes = static_cast<NodeId>(value.at("nodes").as_i64());
  cell.edges = value.at("edges").as_i64();
  cell.rounds = value.at("rounds").as_i64();
  cell.solved = value.at("solved").as_bool();
  cell.valid = value.at("valid").as_bool();
  cell.seconds = value.at("seconds").as_double();
  cell.output_hash = json::u64_field(value.at("output_hash"));
  cell.error = value.at("error").as_string();
  const json::Value& stats = value.at("stats");
  cell.stats.arena_bytes = stats.at("arena_bytes").as_i64();
  cell.stats.peak_round_messages = stats.at("peak_round_messages").as_i64();
  cell.stats.total_messages = stats.at("total_messages").as_i64();
  cell.stats.total_steps = stats.at("total_steps").as_i64();
  cell.stats.kernel_steps = stats.at("kernel_steps").as_i64();
  cell.stats.vtable_steps = stats.at("vtable_steps").as_i64();
  cell.stats.kernel_batched_steps =
      stats.at("kernel_batched_steps").as_i64();
  cell.stats.kernel_batch_calls = stats.at("kernel_batch_calls").as_i64();
  cell.stats.peak_live_nodes = stats.at("peak_live_nodes").as_i64();
  cell.stats.final_live_nodes = stats.at("final_live_nodes").as_i64();
  cell.stats.peak_frontier_nodes = stats.at("peak_frontier_nodes").as_i64();
  cell.stats.dirty_spans_cleared = stats.at("dirty_spans_cleared").as_i64();
  cell.stats.messages_dropped = stats.at("messages_dropped").as_i64();
  cell.stats.messages_duplicated = stats.at("messages_duplicated").as_i64();
  cell.stats.max_delivery_skew = stats.at("max_delivery_skew").as_i64();
  cell.stats.elapsed_seconds = stats.at("elapsed_seconds").as_double();
  cell.stats.steps_per_second = stats.at("steps_per_second").as_double();
  cell.stats.threads = static_cast<int>(stats.at("threads").as_i64());
  return cell;
}

}  // namespace

// --- policies and costs -----------------------------------------------------

const char* shard_policy_name(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kRoundRobin:
      return "round-robin";
    case ShardPolicy::kCostBalanced:
      return "cost-balanced";
  }
  return "?";
}

ShardPolicy parse_shard_policy(const std::string& name) {
  for (const ShardPolicy policy :
       {ShardPolicy::kRoundRobin, ShardPolicy::kCostBalanced}) {
    if (name == shard_policy_name(policy)) return policy;
  }
  throw std::runtime_error("unknown shard policy: " + name);
}

double ShardCostModel::cell_cost(const CampaignCell& cell) const {
  const auto it = algorithm_weights.find(cell.algorithm);
  const double weight =
      it != algorithm_weights.end() ? it->second : default_weight;
  return std::max(1.0, static_cast<double>(cell.params.n)) * weight;
}

const ShardCostModel& default_shard_cost_model() {
  // Mean per-cell seconds on the table1 grid (n=256, 2 seeds, 1-core),
  // normalized to linial-coloring = 1 and rounded: rank order and rough
  // magnitude are all LPT needs.
  static const ShardCostModel model = [] {
    ShardCostModel m;
    m.algorithm_weights = {
        {"linial-coloring", 1.0},
        {"cole-vishkin", 1.2},
        {"mis-global-uniform", 1.3},
        {"luby-mis", 1.6},
        {"mis-lv", 1.6},
        {"arb-coloring", 2.0},
        {"mis-fastest-arb", 2.0},
        {"arb-mis", 2.5},
        {"mis-fastest", 2.7},
        {"rulingset3-lv", 3.0},
        {"lambda4-coloring", 4.4},
        {"rulingset2-lv", 6.2},
        {"mis-uniform", 8.2},
        {"matching-uniform", 15.0},
        {"dplus1-coloring", 19.0},
        {"product-coloring", 20.0},
        {"color-reduce", 28.0},
        {"coloring-theorem5", 75.0},
        {"coloring-theorem5-lambda4", 93.0},
    };
    m.default_weight = 5.0;  // an unknown algorithm is "middling"
    return m;
  }();
  return model;
}

// --- planning ---------------------------------------------------------------

ShardPlan plan_shards(const std::vector<CampaignCell>& cells, int num_shards,
                      ShardPolicy policy, const ShardPlanOptions& options) {
  if (num_shards < 1)
    throw std::runtime_error("plan_shards: num_shards must be >= 1, got " +
                             std::to_string(num_shards));
  const ShardCostModel& model = options.cost_model != nullptr
                                    ? *options.cost_model
                                    : default_shard_cost_model();

  std::vector<std::vector<std::size_t>> assignment(
      static_cast<std::size_t>(num_shards));
  if (policy == ShardPolicy::kRoundRobin) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      assignment[i % static_cast<std::size_t>(num_shards)].push_back(i);
  } else {
    // Greedy LPT: heaviest cell first onto the lightest shard; ties broken
    // by grid index / shard index so the plan is deterministic.
    std::vector<std::size_t> order(cells.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::vector<double> costs(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
      costs[i] = model.cell_cost(cells[i]);
    std::sort(order.begin(), order.end(),
              [&costs](std::size_t a, std::size_t b) {
                if (costs[a] != costs[b]) return costs[a] > costs[b];
                return a < b;
              });
    std::vector<double> loads(static_cast<std::size_t>(num_shards), 0.0);
    for (const std::size_t i : order) {
      const std::size_t lightest = static_cast<std::size_t>(
          std::min_element(loads.begin(), loads.end()) - loads.begin());
      assignment[lightest].push_back(i);
      loads[lightest] += costs[i];
    }
    // Keep grid order within each shard: readable manifests, and the
    // shard grid hash depends only on membership.
    for (auto& indices : assignment)
      std::sort(indices.begin(), indices.end());
  }

  ShardPlan plan;
  plan.grid_hash = campaign_grid_hash(cells);
  plan.policy = policy;
  plan.total_cells = cells.size();
  plan.shards.reserve(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    ShardManifest manifest;
    manifest.shard_index = s;
    manifest.num_shards = num_shards;
    manifest.policy = policy;
    manifest.plan_grid_hash = plan.grid_hash;
    manifest.cell_indices = std::move(assignment[static_cast<std::size_t>(s)]);
    manifest.cells.reserve(manifest.cell_indices.size());
    for (const std::size_t i : manifest.cell_indices)
      manifest.cells.push_back(cells[i]);
    manifest.shard_grid_hash = campaign_grid_hash(manifest.cells);
    plan.shards.push_back(std::move(manifest));
  }
  return plan;
}

// --- serialization ----------------------------------------------------------

json::Value ShardManifest::to_json() const {
  json::Value out = json::Value::object();
  out.set("format", json::Value::string(kManifestFormat));
  out.set("shard_index",
          json::Value::number(static_cast<std::int64_t>(shard_index)));
  out.set("num_shards",
          json::Value::number(static_cast<std::int64_t>(num_shards)));
  out.set("policy", json::Value::string(shard_policy_name(policy)));
  out.set("plan_grid_hash", u64_string(plan_grid_hash));
  out.set("shard_grid_hash", u64_string(shard_grid_hash));
  json::Value cell_array = json::Value::array();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    json::Value cell = json::Value::object();
    cell_identity_to_json(cell, cell_indices[i], cells[i]);
    cell_array.push_back(std::move(cell));
  }
  out.set("cells", std::move(cell_array));
  return out;
}

ShardManifest ShardManifest::from_json(const json::Value& value) {
  check_format(value, kManifestFormat);
  ShardManifest manifest;
  manifest.shard_index = static_cast<int>(value.at("shard_index").as_i64());
  manifest.num_shards = static_cast<int>(value.at("num_shards").as_i64());
  manifest.policy = parse_shard_policy(value.at("policy").as_string());
  manifest.plan_grid_hash = json::u64_field(value.at("plan_grid_hash"));
  manifest.shard_grid_hash = json::u64_field(value.at("shard_grid_hash"));
  for (const json::Value& entry : value.at("cells").as_array()) {
    std::size_t index = 0;
    manifest.cells.push_back(cell_identity_from_json(entry, index));
    manifest.cell_indices.push_back(index);
  }
  return manifest;
}

json::Value ShardPlan::to_json() const {
  json::Value out = json::Value::object();
  out.set("format", json::Value::string(kPlanFormat));
  out.set("grid_hash", u64_string(grid_hash));
  out.set("policy", json::Value::string(shard_policy_name(policy)));
  out.set("total_cells",
          json::Value::number(static_cast<std::uint64_t>(total_cells)));
  json::Value shard_array = json::Value::array();
  for (const ShardManifest& manifest : shards)
    shard_array.push_back(manifest.to_json());
  out.set("shards", std::move(shard_array));
  return out;
}

ShardPlan ShardPlan::from_json(const json::Value& value) {
  check_format(value, kPlanFormat);
  ShardPlan plan;
  plan.grid_hash = json::u64_field(value.at("grid_hash"));
  plan.policy = parse_shard_policy(value.at("policy").as_string());
  plan.total_cells =
      static_cast<std::size_t>(value.at("total_cells").as_u64());
  for (const json::Value& entry : value.at("shards").as_array())
    plan.shards.push_back(ShardManifest::from_json(entry));
  // merge_shard_results indexes plan.shards[result.shard_index], so the
  // array position and the recorded index must agree — a reordered or
  // index-tampered document would otherwise verify results against the
  // wrong manifests.
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    if (plan.shards[s].shard_index != static_cast<int>(s))
      throw std::runtime_error(
          "shard plan: shard at position " + std::to_string(s) +
          " carries index " + std::to_string(plan.shards[s].shard_index));
    if (plan.shards[s].num_shards != static_cast<int>(plan.shards.size()))
      throw std::runtime_error(
          "shard plan: shard " + std::to_string(s) + " claims " +
          std::to_string(plan.shards[s].num_shards) + " shards, plan has " +
          std::to_string(plan.shards.size()));
  }
  // A plan must cover every grid index exactly once — reject tampered
  // documents here so merge can trust the placement map.
  std::vector<char> seen(plan.total_cells, 0);
  for (const ShardManifest& manifest : plan.shards) {
    if (manifest.cells.size() != manifest.cell_indices.size())
      throw std::runtime_error("shard plan: manifest cell/index count skew");
    for (const std::size_t i : manifest.cell_indices) {
      if (i >= plan.total_cells)
        throw std::runtime_error("shard plan: cell index " +
                                 std::to_string(i) + " out of range");
      if (seen[i] != 0)
        throw std::runtime_error("shard plan: cell index " +
                                 std::to_string(i) + " covered twice");
      seen[i] = 1;
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i)
    if (seen[i] == 0)
      throw std::runtime_error("shard plan: cell index " + std::to_string(i) +
                               " covered by no shard");
  return plan;
}

json::Value ShardResult::to_json() const {
  json::Value out = json::Value::object();
  out.set("format", json::Value::string(kResultFormat));
  out.set("shard_index",
          json::Value::number(static_cast<std::int64_t>(shard_index)));
  out.set("num_shards",
          json::Value::number(static_cast<std::int64_t>(num_shards)));
  out.set("plan_grid_hash", u64_string(plan_grid_hash));
  out.set("shard_grid_hash", u64_string(shard_grid_hash));
  out.set("workers", json::Value::number(static_cast<std::int64_t>(workers)));
  out.set("elapsed_seconds", json::Value::number(elapsed_seconds));
  json::Value cell_array = json::Value::array();
  for (std::size_t i = 0; i < cells.size(); ++i)
    cell_array.push_back(cell_result_to_json(cell_indices[i], cells[i]));
  out.set("cells", std::move(cell_array));
  return out;
}

ShardResult ShardResult::from_json(const json::Value& value) {
  check_format(value, kResultFormat);
  ShardResult result;
  result.shard_index = static_cast<int>(value.at("shard_index").as_i64());
  result.num_shards = static_cast<int>(value.at("num_shards").as_i64());
  result.plan_grid_hash = json::u64_field(value.at("plan_grid_hash"));
  result.shard_grid_hash = json::u64_field(value.at("shard_grid_hash"));
  result.workers = static_cast<int>(value.at("workers").as_i64());
  result.elapsed_seconds = value.at("elapsed_seconds").as_double();
  for (const json::Value& entry : value.at("cells").as_array()) {
    std::size_t index = 0;
    result.cells.push_back(cell_result_from_json(entry, index));
    result.cell_indices.push_back(index);
  }
  return result;
}

// --- execution --------------------------------------------------------------

ShardResult run_shard(const ShardManifest& manifest,
                      const CampaignOptions& options) {
  if (manifest.cell_indices.size() != manifest.cells.size())
    throw std::runtime_error("run_shard: manifest cell/index count skew");
  const std::uint64_t recomputed = campaign_grid_hash(manifest.cells);
  if (recomputed != manifest.shard_grid_hash)
    throw std::runtime_error(
        "run_shard: manifest is corrupt — its cells hash to " +
        std::to_string(recomputed) + " but it claims " +
        std::to_string(manifest.shard_grid_hash));

  CampaignOptions run_options = options;
  run_options.keep_outputs = false;  // hashes are the cross-process identity
  // Cell spans in a worker's trace report full-grid positions, not the
  // manifest-local ones, so the stitched supervisor trace reads uniformly.
  if (run_options.trace != nullptr)
    run_options.trace_cell_indices = &manifest.cell_indices;
  CampaignResult campaign = run_campaign(manifest.cells, run_options);

  ShardResult result;
  result.shard_index = manifest.shard_index;
  result.num_shards = manifest.num_shards;
  result.plan_grid_hash = manifest.plan_grid_hash;
  result.shard_grid_hash = manifest.shard_grid_hash;
  result.workers = campaign.workers;
  result.elapsed_seconds = campaign.elapsed_seconds;
  result.cell_indices = manifest.cell_indices;
  result.cells = std::move(campaign.cells);
  return result;
}

// --- merging ----------------------------------------------------------------

std::string shard_result_problem(const ShardPlan& plan,
                                 const ShardResult& result) {
  const std::string label = "shard " + std::to_string(result.shard_index);
  if (result.plan_grid_hash != plan.grid_hash)
    return label + " is foreign (plan hash " +
           std::to_string(result.plan_grid_hash) + ", expected " +
           std::to_string(plan.grid_hash) + ")";
  if (result.shard_index < 0 ||
      static_cast<std::size_t>(result.shard_index) >= plan.shards.size())
    return label + " is out of range (plan has " +
           std::to_string(plan.shards.size()) + " shards)";
  const ShardManifest& manifest =
      plan.shards[static_cast<std::size_t>(result.shard_index)];
  if (result.shard_grid_hash != manifest.shard_grid_hash)
    return label + " grid hash " + std::to_string(result.shard_grid_hash) +
           " does not match the plan's " +
           std::to_string(manifest.shard_grid_hash);
  if (result.cell_indices != manifest.cell_indices ||
      result.cells.size() != manifest.cells.size())
    return label + " cell list does not match the plan";
  // The result's cell *identities* re-hash to the claimed fingerprint —
  // a result whose cell list was edited after the run is caught even
  // though its header still carries the right hashes. (Outcome fields —
  // output_hash, solved, stats — are not covered by any fingerprint;
  // verifying those would mean re-running the work.)
  std::vector<CampaignCell> identities;
  identities.reserve(result.cells.size());
  for (const CellResult& cell : result.cells) identities.push_back(cell.cell);
  const std::uint64_t recomputed = campaign_grid_hash(identities);
  if (recomputed != manifest.shard_grid_hash)
    return label + " cells hash to " + std::to_string(recomputed) +
           " instead of the plan's " +
           std::to_string(manifest.shard_grid_hash);
  return "";
}

namespace {

CampaignResult merge_impl(const ShardPlan& plan,
                          const std::vector<ShardResult>& results,
                          PartialMergeReport* partial) {
  const std::size_t num_shards = plan.shards.size();
  std::vector<const ShardResult*> by_index(num_shards, nullptr);
  std::vector<std::string> problems;

  for (const ShardResult& result : results) {
    const std::string problem = shard_result_problem(plan, result);
    if (!problem.empty()) {
      problems.push_back(problem);
      continue;
    }
    const std::size_t slot = static_cast<std::size_t>(result.shard_index);
    if (by_index[slot] != nullptr) {
      problems.push_back("shard " + std::to_string(result.shard_index) +
                         " appears more than once");
      continue;
    }
    by_index[slot] = &result;
  }
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (by_index[s] != nullptr) continue;
    if (partial != nullptr) {
      // Partial mode: a missing shard degrades the merge instead of
      // killing it — every other problem stays fatal below.
      partial->missing_shards.push_back(static_cast<int>(s));
      continue;
    }
    problems.push_back("shard " + std::to_string(s) + " is missing");
  }

  if (!problems.empty()) {
    std::string message = "merge_shard_results: ";
    for (std::size_t i = 0; i < problems.size(); ++i) {
      if (i != 0) message += "; ";
      message += problems[i];
    }
    throw std::runtime_error(message);
  }

  CampaignResult merged;
  merged.cells.resize(plan.total_cells);
  merged.workers = 0;
  merged.elapsed_seconds = 0.0;
  for (const ShardResult* result : by_index) {
    if (result == nullptr) continue;
    merged.workers += result->workers;
    merged.elapsed_seconds =
        std::max(merged.elapsed_seconds, result->elapsed_seconds);
    for (std::size_t i = 0; i < result->cells.size(); ++i)
      merged.cells[result->cell_indices[i]] = result->cells[i];
  }
  if (partial != nullptr) {
    for (const int s : partial->missing_shards) {
      const ShardManifest& manifest =
          plan.shards[static_cast<std::size_t>(s)];
      for (std::size_t i = 0; i < manifest.cells.size(); ++i) {
        const std::size_t grid_index = manifest.cell_indices[i];
        CellResult& cell = merged.cells[grid_index];
        cell.cell = manifest.cells[i];
        cell.error = "shard " + std::to_string(s) +
                     " produced no accepted result";
        partial->missing_cell_indices.push_back(grid_index);
      }
    }
    std::sort(partial->missing_cell_indices.begin(),
              partial->missing_cell_indices.end());
  }
  finalize_campaign_aggregates(merged);
  return merged;
}

}  // namespace

CampaignResult merge_shard_results(const ShardPlan& plan,
                                   const std::vector<ShardResult>& results) {
  return merge_impl(plan, results, nullptr);
}

CampaignResult merge_shard_results_partial(
    const ShardPlan& plan, const std::vector<ShardResult>& results,
    PartialMergeReport& report) {
  report = PartialMergeReport{};
  return merge_impl(plan, results, &report);
}

std::string PartialMergeReport::describe() const {
  if (complete()) return "partial merge: complete (no shard missing)";
  std::string message = "partial merge: missing shards [";
  for (std::size_t i = 0; i < missing_shards.size(); ++i) {
    if (i != 0) message += ", ";
    message += std::to_string(missing_shards[i]);
  }
  message += "] covering " + std::to_string(missing_cell_indices.size()) +
             " cells [";
  for (std::size_t i = 0; i < missing_cell_indices.size(); ++i) {
    if (i != 0) message += ", ";
    message += std::to_string(missing_cell_indices[i]);
  }
  message += "]";
  return message;
}

}  // namespace unilocal
