// Append-only campaign run-log: one JSON line per recorded sweep (UTC
// date, grid hash, worker count, outcome counts, rounds/messages/steps-sec
// percentiles), so future perf PRs can diff a fresh run against recorded
// sweeps of the *same* grid without re-running history. The grid hash
// covers every cell's (scenario, params, algorithm, seed, identities) —
// two results compare only when they swept identical work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/campaign.h"

namespace unilocal {

struct RunLogEntry {
  /// UTC timestamp, "YYYY-MM-DDTHH:MM:SSZ".
  std::string date;
  std::uint64_t grid_hash = 0;
  int workers = 0;
  int cells = 0;
  int solved = 0;
  int valid = 0;
  int failed = 0;
  double elapsed_seconds = 0.0;
  double cells_per_second = 0.0;
  CampaignPercentiles rounds;
  CampaignPercentiles messages;
  CampaignPercentiles steps_per_second;
  /// Frontier telemetry percentiles; zero when the entry predates them
  /// (the reader tolerates their absence).
  CampaignPercentiles peak_live_nodes;
  CampaignPercentiles peak_frontier_nodes;
  CampaignPercentiles dirty_spans_cleared;
  /// Engine-path split (kernel vs vtable steps); zero when the entry
  /// predates the step-kernel tier.
  CampaignPercentiles kernel_steps;
  CampaignPercentiles vtable_steps;
  /// Batched-execution split (phase-grouped batch kernels); zero when the
  /// entry predates batched stepping.
  CampaignPercentiles kernel_batched_steps;
  CampaignPercentiles kernel_batch_occupancy;
  /// Fault-injection telemetry (the delivery layer); zero when the entry
  /// predates it or the grid ran synchronously.
  CampaignPercentiles messages_dropped;
  CampaignPercentiles messages_duplicated;
  CampaignPercentiles max_delivery_skew;
  /// Supervision telemetry (the PR 9 shard supervisor): process-level
  /// retry/requeue history for supervised sharded campaigns. All zero when
  /// the campaign ran unsupervised or the entry predates supervision (the
  /// reader tolerates the block's absence).
  int supervision_shards = 0;
  int supervision_attempts = 0;
  int supervision_retries = 0;
  int supervision_requeues = 0;
  int supervision_stragglers_respawned = 0;
  int supervision_shards_from_journal = 0;
  int supervision_shards_failed = 0;
  /// Attempts the supervisor SIGKILLed (deadline overrun or superseded by
  /// an accepted sibling); zero when the entry predates it.
  int supervision_attempts_killed = 0;
  /// Percentiles of per-shard total attempt wall-clock.
  CampaignPercentiles supervision_attempt_seconds;
};

/// FNV-1a over every cell's identifying fields, independent of outcomes.
/// The same fingerprint keys the run log, shard manifests, and shard-merge
/// consistency checks (src/runtime/shard.h).
std::uint64_t campaign_grid_hash(const std::vector<CampaignCell>& cells);
std::uint64_t campaign_grid_hash(const CampaignResult& result);

/// The entry append_run_log would write (date stamped from the system
/// clock).
RunLogEntry make_run_log_entry(const CampaignResult& result);

/// Appends one JSON line; creates the file when missing. Throws
/// std::runtime_error when the file cannot be opened.
void append_run_log(const std::string& path, const CampaignResult& result);

/// Parses every well-formed line; unreadable files and malformed lines are
/// skipped (an empty result, not an error — the log is advisory).
std::vector<RunLogEntry> read_run_log(const std::string& path);

struct RunLogComparison {
  /// True when the log holds an earlier entry with the same grid hash.
  bool found = false;
  RunLogEntry baseline;
  /// current / baseline ratios (> 1 means the current run is higher);
  /// 0 when the baseline value is 0.
  double rounds_p50_ratio = 0.0;
  double messages_p50_ratio = 0.0;
  double steps_per_second_p50_ratio = 0.0;
  double cells_per_second_ratio = 0.0;
  double elapsed_ratio = 0.0;
};

/// Diffs `result` against the most recent recorded entry with the same
/// grid hash and no failed cells (a run with failures is recorded but
/// never serves as a perf baseline — its percentiles cover only the
/// surviving cells).
RunLogComparison compare_run_log(const std::string& path,
                                 const CampaignResult& result);

}  // namespace unilocal
