// First-class algorithm registry: the string-keyed table of runnable paper
// pipelines, symmetric with the scenario registry
// (src/graph/scenario_registry.h).
//
// An AlgorithmSpec names one pipeline, the problem key its outputs are
// scored against (src/problems/registry.h), the knob values baked into it
// (e.g. ruling-set beta, coloring slack lambda), the scenario families its
// Table 1 row is stated over, and the factory that actually runs it. Every
// factory must be deterministic in (instance, seed), run its engine with
// the thread count the context prescribes (the engine is thread-count
// invariant, so outputs never depend on it), and honor the lent workspace —
// that is what makes campaign results bit-identical for any worker count.
//
// Note on layering: like src/runtime/campaign.*, this is the orchestration
// layer of the library — its default table wires up core/algo/prune — so
// nothing below it may include it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/problems/problem.h"
#include "src/runtime/instance.h"
#include "src/runtime/runner.h"

namespace unilocal {

/// What one registry entry produced on an instance.
struct CellOutcome {
  std::vector<std::int64_t> outputs;
  std::int64_t rounds = 0;
  bool solved = false;
  EngineStats stats;
};

/// Everything a factory run needs beyond the instance.
struct AlgorithmRunContext {
  std::uint64_t seed = 1;
  /// Lent engine workspace (campaigns lend a pool workspace); may be null.
  EngineWorkspace* workspace = nullptr;
  /// RunOptions::num_threads for the entry's engine runs (thread-count
  /// invariant — affects latency only, never outputs).
  int engine_threads = 1;
  /// RunOptions::kernel_mode for the entry's engine runs (flat step kernels
  /// vs the Process vtable path; bit-identical outputs either way).
  KernelMode kernel_mode = KernelMode::kAuto;
  /// RunOptions::network for the entry's engine runs (synchronous arena vs
  /// the seeded event-queue transport with latency/fault injection).
  NetworkOptions network;
};

struct AlgorithmSpec {
  /// Registry key (unique; duplicates are registration errors).
  std::string name;
  /// Problem key for the centralized checker, in make_problem() syntax
  /// (src/problems/registry.h), e.g. "mis", "coloring:deg+1".
  std::string problem;
  /// One-line documentation (theorem/pipeline provenance).
  std::string describe;
  /// Named knob values baked into the factory (ruling-set beta, transformer
  /// slack lambda, ...); introspection for listings and sweeps.
  std::map<std::string, double> knobs;
  /// Scenario-registry keys of the families this entry's Table 1 row is
  /// stated over — what `unilocal_cli table1` pairs it with.
  std::vector<std::string> table1_scenarios;
  std::function<CellOutcome(const Instance&, const AlgorithmRunContext&)> run;
  /// Whether every engine run inside the factory executes through the flat
  /// step-kernel tier under KernelMode::kOn (i.e. the whole pipeline is
  /// lowered). Campaigns validate this up front when kernel_mode is kOn —
  /// one error naming every unlowered key — instead of N per-cell
  /// failures. All built-in entries are lowered.
  bool kernel_lowered = true;
};

/// Simple key glob: '*' matches any run (including empty), '?' any one
/// character; everything else is literal.
bool algorithm_key_glob_match(const std::string& pattern,
                              const std::string& name);

class AlgorithmRegistry {
 public:
  /// Registers a spec. Throws std::runtime_error on duplicate names, empty
  /// names, missing factories, and problem keys make_problem() rejects (the
  /// validator is resolved eagerly so a bad key fails at registration, not
  /// mid-campaign).
  void add(AlgorithmSpec spec);

  bool contains(const std::string& name) const;
  /// Registered keys, sorted.
  std::vector<std::string> names() const;
  /// Throws std::runtime_error on unknown names.
  const AlgorithmSpec& spec(const std::string& name) const;
  /// The entry's validator (never null); throws on unknown names.
  const Problem& problem(const std::string& name) const;
  CellOutcome run(const std::string& name, const Instance& instance,
                  const AlgorithmRunContext& context) const;

  /// Expands selection patterns into sorted, deduplicated keys: "all"
  /// selects everything, '*'/'?' glob against the keys, anything else must
  /// match a key exactly. Throws one std::runtime_error naming every
  /// pattern that selected nothing.
  std::vector<std::string> resolve(
      const std::vector<std::string>& patterns) const;

 private:
  struct Entry {
    AlgorithmSpec spec;
    std::shared_ptr<const Problem> problem;
  };
  std::map<std::string, Entry> entries_;
};

/// The built-in table — the full pipeline zoo (>= 18 entries):
///
///   MIS        mis-uniform, mis-global-uniform, arb-mis, mis-fastest,
///              mis-fastest-arb, mis-lv, luby-mis
///   coloring   coloring-theorem5, coloring-theorem5-lambda4, arb-coloring,
///              product-coloring, linial-coloring, dplus1-coloring,
///              lambda4-coloring, color-reduce, cole-vishkin
///   matching   matching-uniform
///   ruling set rulingset2-lv, rulingset3-lv
///
/// See each entry's describe() for the theorem/pipeline provenance.
const AlgorithmRegistry& default_algorithm_registry();

}  // namespace unilocal
