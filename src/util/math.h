// Small integer-math helpers shared across the library: logarithms, the
// iterated logarithm log* that pervades LOCAL-model running-time bounds,
// primality (Linial's color-reduction step needs a prime field), and
// overflow-safe saturating arithmetic used by runtime-bound inversion.
#pragma once

#include <cstdint>

namespace unilocal {

/// Floor of log2(x); requires x >= 1. ilog2(1) == 0.
int ilog2(std::uint64_t x) noexcept;

/// Ceiling of log2(x); requires x >= 1. clog2(1) == 0.
int clog2(std::uint64_t x) noexcept;

/// The iterated logarithm: the number of times log2 must be applied to x
/// before the result is <= 1. log_star(1) == 0, log_star(2) == 1,
/// log_star(4) == 2, log_star(16) == 3, log_star(65536) == 4.
int log_star(std::uint64_t x) noexcept;

/// Ceiling division for non-negative a and positive b.
std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept;

/// Deterministic Miller-Rabin primality test, exact for all 64-bit inputs.
bool is_prime(std::uint64_t n) noexcept;

/// Smallest prime >= n (n >= 0; next_prime(0) == next_prime(1) == 2).
std::uint64_t next_prime(std::uint64_t n) noexcept;

/// a + b clamped to int64 max (operands must be non-negative).
std::int64_t sat_add(std::int64_t a, std::int64_t b) noexcept;

/// a * b clamped to int64 max (operands must be non-negative).
std::int64_t sat_mul(std::int64_t a, std::int64_t b) noexcept;

/// Integer power with saturation: base^exp clamped to int64 max.
std::int64_t sat_pow(std::int64_t base, int exp) noexcept;

}  // namespace unilocal
