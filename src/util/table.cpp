#include "src/util/table.h"

#include <cstdio>
#include <sstream>

namespace unilocal {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  emit(header_);
  out << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    out << std::string(width[c] + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

std::string TextTable::fmt(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string TextTable::fmt(std::int64_t value) {
  return std::to_string(value);
}

}  // namespace unilocal
