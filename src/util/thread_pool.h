// Minimal persistent fork-join pool for the round engine.
//
// run(jobs, fn) executes fn(i) for every i in [0, jobs), the calling thread
// participating, and returns once all jobs completed. Workers persist across
// calls so a per-round dispatch costs two condition-variable sweeps, not
// thread creation. The pool only hands out job indices; deterministic work
// partitioning (and all synchronization of the data touched) is the
// caller's business.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace unilocal {

class ThreadPool {
 public:
  /// threads >= 1: total parallelism including the calling thread, so
  /// threads - 1 workers are spawned.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const noexcept {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// If a job throws, unclaimed jobs are abandoned, jobs already claimed by
  /// other threads still complete, and the first exception is rethrown here
  /// once every claimed job has finished.
  ///
  /// One batch at a time: run() must not be invoked concurrently from
  /// multiple threads (a second caller would overwrite the in-flight
  /// batch's state). Nested run() from inside a job deadlocks.
  void run(int jobs, const std::function<void(int)>& fn);

 private:
  void worker_loop();
  /// Claims and runs jobs until none remain; expects `lock` held.
  void drain(std::unique_lock<std::mutex>& lock);

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  const std::function<void(int)>* fn_ = nullptr;
  std::exception_ptr error_;
  int jobs_ = 0;
  int next_job_ = 0;
  int unfinished_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace unilocal
