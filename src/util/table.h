// Tabular reporting used by the benchmark harness: every experiment prints
// its rows as a markdown-ish aligned table so the output in
// bench_output.txt can be compared against the paper's Table 1 directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace unilocal {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Renders with aligned columns and a header separator.
  std::string to_string() const;
  void print() const;

  static std::string fmt(double value, int precision = 2);
  static std::string fmt(std::int64_t value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace unilocal
