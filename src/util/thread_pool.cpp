#include "src/util/thread_pool.h"

namespace unilocal {

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::drain(std::unique_lock<std::mutex>& lock) {
  while (next_job_ < jobs_) {
    const int job = next_job_++;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*fn_)(job);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error) {
      if (!error_) error_ = error;
      // Abandon jobs nobody has claimed yet; jobs other threads are
      // mid-flight on are still counted by their own decrement.
      unfinished_ -= jobs_ - next_job_;
      next_job_ = jobs_;
    }
    if (--unfinished_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || generation_ != seen_generation;
    });
    if (stop_) return;
    seen_generation = generation_;
    drain(lock);
  }
}

void ThreadPool::run(int jobs, const std::function<void(int)>& fn) {
  if (jobs <= 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  fn_ = &fn;
  error_ = nullptr;
  jobs_ = jobs;
  next_job_ = 0;
  unfinished_ = jobs;
  ++generation_;
  work_cv_.notify_all();
  drain(lock);
  done_cv_.wait(lock, [&] { return unfinished_ == 0; });
  fn_ = nullptr;
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

}  // namespace unilocal
