// Minimal JSON value tree: the codebase's first JSON *reader*, plus the
// one escaping routine every writer shares.
//
// Until the sharding subsystem (src/runtime/shard.h) the repo only ever
// *wrote* JSON (campaign summaries, the run log); shard manifests and
// shard results must round-trip through files between processes, so this
// adds a small recursive-descent parser and a serializer with two
// properties the sharding guarantees lean on:
//
//  - Numbers are stored as their source lexeme, not eagerly coerced to
//    double: 64-bit hashes and seeds survive parse->dump bit-exactly, and
//    doubles written with number(double) (printf %.17g) round-trip
//    bit-exactly through as_double(). Coercion happens only when the
//    caller asks (as_i64 / as_u64 / as_double), with range checks.
//  - Object members keep insertion order (a vector, not a map), so
//    dump() output is deterministic and diffs cleanly across processes.
//
// Everything throws std::runtime_error with a byte offset (parsing) or the
// offending key/type (accessors) — shard merge turns these into the
// "which shard is corrupt" errors the CLI reports.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace unilocal {
namespace json {

/// Escapes `text` for embedding between the quotes of a JSON string
/// literal: '"', '\\', and every control character below 0x20 (with the
/// usual \n \t \r \b \f shorthands). Shared by every JSON writer in the
/// repo — campaign summaries, the run log, shard manifests/results.
std::string escape(const std::string& text);

class Value;

/// Reads a 64-bit field written either as a JSON number or as a decimal
/// string — the repo's convention for 64-bit values (grid hashes, seeds)
/// is the string spelling, so doubles-only readers cannot corrupt them;
/// this accepts both. Throws std::runtime_error on anything else.
std::uint64_t u64_field(const Value& value);

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Value>;
  /// Insertion-ordered members: deterministic dumps, duplicate keys
  /// rejected by set()/parse.
  using Object = std::vector<std::pair<std::string, Value>>;

  Value() = default;  // null

  static Value boolean(bool value);
  static Value number(double value);         // %.17g — round-trips exactly
  static Value number(std::int64_t value);
  static Value number(std::uint64_t value);
  /// A number from a pre-validated JSON lexeme, stored verbatim (what the
  /// parser uses — 64-bit integers survive parse->dump untouched).
  static Value number_lexeme(std::string lexeme);
  static Value string(std::string value);
  static Value array();
  static Value object();

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  /// Typed accessors; each throws std::runtime_error naming the expected
  /// and actual type (or the out-of-range lexeme) on mismatch.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_i64() const;
  std::uint64_t as_u64() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object lookup: find() is null when absent; at() throws naming the key.
  const Value* find(const std::string& key) const;
  const Value& at(const std::string& key) const;
  /// Appends a member (throws on duplicate keys — manifests never shadow).
  void set(std::string key, Value value);
  /// Appends an array element.
  void push_back(Value value);

  /// Compact serialization (no whitespace); parse(dump()) == *this.
  std::string dump() const;
  void dump(std::string& out) const;

  /// Parses one JSON document (trailing non-whitespace is an error).
  /// Throws std::runtime_error with the byte offset of the first problem.
  static Value parse(const std::string& text);

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  /// kNumber keeps the source lexeme; kString keeps the decoded text.
  std::string scalar_;
  Array array_;
  Object object_;
};

}  // namespace json
}  // namespace unilocal
