#include "src/util/math.h"

#include <initializer_list>
#include <limits>

namespace unilocal {

int ilog2(std::uint64_t x) noexcept {
  return 63 - __builtin_clzll(x | 1);
}

int clog2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return ilog2(x - 1) + 1;
}

int log_star(std::uint64_t x) noexcept {
  int count = 0;
  while (x > 1) {
    x = static_cast<std::uint64_t>(ilog2(x));
    ++count;
  }
  return count;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
  return (a + b - 1) / b;
}

namespace {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) noexcept {
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(a) * b) % m);
}

std::uint64_t powmod(std::uint64_t a, std::uint64_t e, std::uint64_t m) noexcept {
  std::uint64_t r = 1;
  a %= m;
  while (e > 0) {
    if (e & 1) r = mulmod(r, a, m);
    a = mulmod(a, a, m);
    e >>= 1;
  }
  return r;
}

}  // namespace

bool is_prime(std::uint64_t n) noexcept {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                          19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This witness set is exact for all n < 2^64 (Sorenson & Webster).
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                          19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    std::uint64_t x = powmod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

std::uint64_t next_prime(std::uint64_t n) noexcept {
  if (n <= 2) return 2;
  if ((n & 1) == 0) ++n;
  while (!is_prime(n)) n += 2;
  return n;
}

std::int64_t sat_add(std::int64_t a, std::int64_t b) noexcept {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  if (a > kMax - b) return kMax;
  return a + b;
}

std::int64_t sat_mul(std::int64_t a, std::int64_t b) noexcept {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  if (a == 0 || b == 0) return 0;
  if (a > kMax / b) return kMax;
  return a * b;
}

std::int64_t sat_pow(std::int64_t base, int exp) noexcept {
  std::int64_t r = 1;
  for (int i = 0; i < exp; ++i) r = sat_mul(r, base);
  return r;
}

}  // namespace unilocal
