// Deterministic pseudo-random number generation for reproducible simulations.
//
// Every randomized LOCAL algorithm in this library draws its per-node random
// bits from an Rng seeded from (experiment seed, node identity), so runs are
// bit-reproducible across machines while different nodes still see
// independent-looking streams, as the LOCAL model requires.
#pragma once

#include <cstdint>
#include <vector>

namespace unilocal {

/// Mixes a 64-bit value into a well-distributed 64-bit value (SplitMix64
/// finalizer). Used both as a stream splitter and as a hash.
std::uint64_t splitmix64(std::uint64_t x) noexcept;

/// Small, fast xoshiro256** generator. Satisfies the bare minimum of
/// UniformRandomBitGenerator so it can feed <random> adapters if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four lanes of state via SplitMix64 so that any seed,
  /// including 0, yields a healthy state.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p) noexcept;

  /// A fresh generator whose stream is a deterministic function of this
  /// generator's seed lineage and `stream` — used to give each simulated
  /// node an independent stream.
  Rng split(std::uint64_t stream) const noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  std::uint64_t lineage_;  // remembers the seed for split()
};

/// A random permutation of [0, n) under the given generator.
std::vector<std::int64_t> random_permutation(std::size_t n, Rng& rng);

}  // namespace unilocal
