#include "src/util/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace unilocal {
namespace json {

namespace {

const char* type_name(Value::Type type) {
  switch (type) {
    case Value::Type::kNull:
      return "null";
    case Value::Type::kBool:
      return "bool";
    case Value::Type::kNumber:
      return "number";
    case Value::Type::kString:
      return "string";
    case Value::Type::kArray:
      return "array";
    case Value::Type::kObject:
      return "object";
  }
  return "?";
}

[[noreturn]] void type_error(const char* wanted, Value::Type got) {
  throw std::runtime_error(std::string("json: expected ") + wanted +
                           ", got " + type_name(got));
}

void append_utf8(std::string& out, unsigned int code_point) {
  if (code_point < 0x80) {
    out += static_cast<char>(code_point);
  } else if (code_point < 0x800) {
    out += static_cast<char>(0xC0 | (code_point >> 6));
    out += static_cast<char>(0x80 | (code_point & 0x3F));
  } else if (code_point < 0x10000) {
    out += static_cast<char>(0xE0 | (code_point >> 12));
    out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (code_point & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (code_point >> 18));
    out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (code_point & 0x3F));
  }
}

/// Recursive-descent parser over the whole document with a nesting cap
/// (deeply nested input must not overflow the C++ stack).
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    skip_whitespace();
    Value value = parse_value(0);
    skip_whitespace();
    if (at_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " +
                             std::to_string(at_));
  }

  void skip_whitespace() {
    while (at_ < text_.size()) {
      const char c = text_[at_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++at_;
    }
  }

  char peek() const { return at_ < text_.size() ? text_[at_] : '\0'; }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++at_;
  }

  bool consume_literal(const char* literal) {
    std::size_t length = 0;
    while (literal[length] != '\0') ++length;
    if (text_.compare(at_, length, literal) != 0) return false;
    at_ += length;
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Value::string(parse_string());
      case 't':
        if (consume_literal("true")) return Value::boolean(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value::boolean(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value();
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Value parse_object(int depth) {
    expect('{');
    Value value = Value::object();
    skip_whitespace();
    if (peek() == '}') {
      ++at_;
      return value;
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      Value member = parse_value(depth + 1);
      if (value.find(key) != nullptr) fail("duplicate key \"" + key + "\"");
      value.set(std::move(key), std::move(member));
      skip_whitespace();
      if (peek() == ',') {
        ++at_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  Value parse_array(int depth) {
    expect('[');
    Value value = Value::array();
    skip_whitespace();
    if (peek() == ']') {
      ++at_;
      return value;
    }
    while (true) {
      value.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (peek() == ',') {
        ++at_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (at_ >= text_.size()) fail("unterminated string");
      const char c = text_[at_];
      if (c == '"') {
        ++at_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        ++at_;
        continue;
      }
      ++at_;  // backslash
      if (at_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[at_++];
      switch (escape) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned int code_point = parse_hex4();
          if (code_point >= 0xD800 && code_point <= 0xDBFF &&
              text_.compare(at_, 2, "\\u") == 0) {
            // High surrogate with another \u following: pair them, or emit
            // U+FFFD for the lone high and reconsider the second escape.
            at_ += 2;
            const unsigned int low = parse_hex4();
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code_point =
                  0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
            } else {
              append_utf8(out, 0xFFFD);
              code_point = low;  // may itself be a surrogate — checked below
            }
          }
          // Any surviving surrogate half is unrepresentable: U+FFFD, never
          // raw invalid UTF-8.
          if (code_point >= 0xD800 && code_point <= 0xDFFF)
            code_point = 0xFFFD;
          append_utf8(out, code_point);
          break;
        }
        default:
          fail("invalid escape");
      }
    }
  }

  unsigned int parse_hex4() {
    unsigned int value = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_ >= text_.size()) fail("truncated \\u escape");
      const char c = text_[at_++];
      value <<= 4;
      if (c >= '0' && c <= '9')
        value |= static_cast<unsigned int>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<unsigned int>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<unsigned int>(c - 'A' + 10);
      else
        fail("invalid \\u escape");
    }
    return value;
  }

  /// Validates the JSON number grammar and keeps the lexeme verbatim (the
  /// Value stores it untouched, so 64-bit integers survive round trips).
  Value parse_number() {
    const std::size_t start = at_;
    if (peek() == '-') ++at_;
    if (peek() == '0') {
      ++at_;
    } else if (peek() >= '1' && peek() <= '9') {
      while (peek() >= '0' && peek() <= '9') ++at_;
    } else {
      fail("invalid number");
    }
    if (peek() == '.') {
      ++at_;
      if (!(peek() >= '0' && peek() <= '9')) fail("invalid number");
      while (peek() >= '0' && peek() <= '9') ++at_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++at_;
      if (peek() == '+' || peek() == '-') ++at_;
      if (!(peek() >= '0' && peek() <= '9')) fail("invalid number");
      while (peek() >= '0' && peek() <= '9') ++at_;
    }
    return Value::number_lexeme(text_.substr(start, at_ - start));
  }

  const std::string& text_;
  std::size_t at_ = 0;
};

}  // namespace

// --- construction -----------------------------------------------------------

Value Value::boolean(bool value) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  return v;
}

Value Value::number(double value) {
  // JSON has no spelling for these; %.17g would emit bare "inf"/"nan" and
  // silently produce a document no parser (including this one) accepts.
  if (!std::isfinite(value))
    throw std::runtime_error("json: cannot represent non-finite number");
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  Value v;
  v.type_ = Type::kNumber;
  v.scalar_ = buffer;
  return v;
}

Value Value::number(std::int64_t value) {
  Value v;
  v.type_ = Type::kNumber;
  v.scalar_ = std::to_string(value);
  return v;
}

Value Value::number(std::uint64_t value) {
  Value v;
  v.type_ = Type::kNumber;
  v.scalar_ = std::to_string(value);
  return v;
}

Value Value::number_lexeme(std::string lexeme) {
  Value v;
  v.type_ = Type::kNumber;
  v.scalar_ = std::move(lexeme);
  return v;
}

Value Value::string(std::string value) {
  Value v;
  v.type_ = Type::kString;
  v.scalar_ = std::move(value);
  return v;
}

Value Value::array() {
  Value v;
  v.type_ = Type::kArray;
  return v;
}

Value Value::object() {
  Value v;
  v.type_ = Type::kObject;
  return v;
}

// --- accessors --------------------------------------------------------------

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Value::as_double() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  try {
    return std::stod(scalar_);
  } catch (...) {
    throw std::runtime_error("json: number out of double range: " + scalar_);
  }
}

std::int64_t Value::as_i64() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  if (scalar_.find_first_of(".eE") != std::string::npos)
    throw std::runtime_error("json: not an integer: " + scalar_);
  try {
    return std::stoll(scalar_);
  } catch (...) {
    throw std::runtime_error("json: number out of int64 range: " + scalar_);
  }
}

std::uint64_t Value::as_u64() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  if (scalar_.find_first_of(".eE") != std::string::npos ||
      (!scalar_.empty() && scalar_[0] == '-'))
    throw std::runtime_error("json: not a uint64: " + scalar_);
  try {
    return std::stoull(scalar_);
  } catch (...) {
    throw std::runtime_error("json: number out of uint64 range: " + scalar_);
  }
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return scalar_;
}

const Value::Array& Value::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

Value::Array& Value::as_array() {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const Value::Object& Value::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

Value::Object& Value::as_object() {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

const Value* Value::find(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [member_key, member] : object_)
    if (member_key == key) return &member;
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* member = find(key);
  if (member == nullptr)
    throw std::runtime_error("json: missing key \"" + key + "\"");
  return *member;
}

void Value::set(std::string key, Value value) {
  if (type_ != Type::kObject) type_error("object", type_);
  if (find(key) != nullptr)
    throw std::runtime_error("json: duplicate key \"" + key + "\"");
  object_.emplace_back(std::move(key), std::move(value));
}

void Value::push_back(Value value) {
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
}

// --- serialization ----------------------------------------------------------

std::string escape(const std::string& text) {
  std::string result;
  result.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        result += "\\\"";
        break;
      case '\\':
        result += "\\\\";
        break;
      case '\b':
        result += "\\b";
        break;
      case '\f':
        result += "\\f";
        break;
      case '\n':
        result += "\\n";
        break;
      case '\r':
        result += "\\r";
        break;
      case '\t':
        result += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned int>(static_cast<unsigned char>(c)));
          result += buffer;
        } else {
          result += c;
        }
    }
  }
  return result;
}

std::uint64_t u64_field(const Value& value) {
  if (value.is_string()) {
    const std::string& text = value.as_string();
    try {
      if (text.empty() || text[0] == '-') throw std::runtime_error("");
      std::size_t consumed = 0;
      const std::uint64_t parsed = std::stoull(text, &consumed);
      if (consumed != text.size()) throw std::runtime_error("");
      return parsed;
    } catch (...) {
      throw std::runtime_error("json: not a uint64: \"" + text + "\"");
    }
  }
  return value.as_u64();
}

std::string Value::dump() const {
  std::string out;
  dump(out);
  return out;
}

void Value::dump(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      out += scalar_;
      break;
    case Type::kString:
      out += '"';
      out += escape(scalar_);
      out += '"';
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const Value& element : array_) {
        if (!first) out += ',';
        first = false;
        element.dump(out);
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : object_) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(key);
        out += "\":";
        member.dump(out);
      }
      out += '}';
      break;
    }
  }
}

Value Value::parse(const std::string& text) {
  return Parser(text).parse_document();
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
    case Type::kString:
      return scalar_ == other.scalar_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

}  // namespace json
}  // namespace unilocal
