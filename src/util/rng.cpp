#include "src/util/rng.h"

namespace unilocal {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : lineage_(seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) {
    sm = splitmix64(sm);
    lane = sm;
  }
  // xoshiro must not start at the all-zero state; splitmix64 of any seed
  // cannot produce four zero outputs in a row, but keep a cheap guard.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split(std::uint64_t stream) const noexcept {
  return Rng(splitmix64(lineage_ ^ splitmix64(stream)));
}

std::vector<std::int64_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::int64_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<std::int64_t>(i);
  rng.shuffle(perm);
  return perm;
}

}  // namespace unilocal
