// One-color-class-per-round palette reduction: from a proper coloring in
// [1, k_start] down to either a fixed palette [1, target] or the per-node
// palette [1, deg(v)+1]. In the elimination round of color t every node
// carrying t (and exceeding its palette) recolors to the smallest free
// color; same-colored nodes are non-adjacent in a proper input coloring, so
// simultaneous recoloring is safe. O(k_start) rounds.
//
// This is the standard reduction the paper's Table 1 rows lean on; the
// library uses it after Linial's log*-round shrink (see DESIGN.md for the
// substitution notes regarding the linear-in-Delta originals).
#pragma once

#include <memory>

#include "src/runtime/local.h"

namespace unilocal {

class ColorReduce final : public Algorithm {
 public:
  /// target <= 0 selects the (deg+1) mode. Initial color is input[0]
  /// (1-based); pass through when already within the palette.
  ColorReduce(std::int64_t k_start, std::int64_t target);
  std::unique_ptr<Process> spawn(const NodeInit& init) const override;
  std::string name() const override;
  /// Flat-kernel lowering ("color-reduce" in the kernel registry); the
  /// neighbour-color cache lives in the per-port state arena.
  std::shared_ptr<const StepKernel> kernel() const override;

  /// Rounds the fixed schedule takes (use as a chain-stage budget).
  std::int64_t schedule_rounds() const noexcept { return rounds_; }

 private:
  std::int64_t k_start_;
  std::int64_t target_;
  std::int64_t rounds_;
  std::shared_ptr<const StepKernel> kernel_;
};

}  // namespace unilocal
