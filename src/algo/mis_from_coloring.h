// From a proper coloring to an MIS by sweeping color classes (the classic
// reduction the paper invokes for its Table 1 MIS rows): in round t the
// nodes of color t with no selected neighbour join. A node with a selected
// neighbour retires as soon as it learns of it. O(#colors) rounds.
#pragma once

#include <memory>

#include "src/core/nonuniform.h"
#include "src/runtime/local.h"

namespace unilocal {

class MisColorSweep final : public Algorithm {
 public:
  /// Sweeps colors 1..num_colors; input[0] = node color. Nodes whose color
  /// exceeds num_colors (possible under bad guesses) output 0 at the end.
  explicit MisColorSweep(std::int64_t num_colors);
  std::unique_ptr<Process> spawn(const NodeInit& init) const override;
  std::shared_ptr<const StepKernel> kernel() const override;
  std::string name() const override;
  std::int64_t schedule_rounds() const noexcept { return num_colors_ + 2; }

 private:
  std::int64_t num_colors_;
  std::shared_ptr<const StepKernel> kernel_;
};

/// The composed non-uniform MIS: Linial shrink -> (deg+1) reduction ->
/// color sweep. Gamma = Lambda = {Delta, m};
/// f = O(Delta~^2) + O(log* m~) (additive). This is the library's
/// documented stand-in for the Barenboim-Elkin'09 / Kuhn'09
/// O(Delta + log* n) MIS (Table 1 row 1; DESIGN.md).
std::unique_ptr<NonUniformAlgorithm> make_coloring_mis();

/// The underlying runnable pipeline for explicit guesses.
std::unique_ptr<Algorithm> make_coloring_mis_algorithm(std::int64_t delta_guess,
                                                       std::int64_t m_guess);

}  // namespace unilocal
