#include "src/algo/linial.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/runtime/kernel.h"
#include "src/util/math.h"

namespace unilocal {

namespace {

/// floor(k^(1/e)) computed exactly for 63-bit k.
std::int64_t int_root(std::int64_t k, int e) {
  if (k <= 1) return k;
  std::int64_t r = static_cast<std::int64_t>(
      std::pow(static_cast<double>(k), 1.0 / e));
  while (r > 1 && sat_pow(r, e) > k) --r;
  while (sat_pow(r + 1, e) <= k) ++r;
  return r;
}

/// ceil(k^(1/e)).
std::int64_t int_root_ceil(std::int64_t k, int e) {
  const std::int64_t floor_root = int_root(k, e);
  return sat_pow(floor_root, e) == k ? floor_root : floor_root + 1;
}

/// The cheapest (p, d) pair for one reduction step from a k-color space.
LinialStep choose_step(std::int64_t delta_guess, std::int64_t k) {
  LinialStep best;
  best.in_space = k;
  for (int d = 1; d <= 62; ++d) {
    const std::int64_t separation = d * std::max<std::int64_t>(delta_guess, 1) + 1;
    const std::int64_t capacity = int_root_ceil(k, d + 1);
    const std::int64_t p = static_cast<std::int64_t>(
        next_prime(static_cast<std::uint64_t>(std::max(separation, capacity))));
    if (best.prime == 0 || p < best.prime) {
      best.prime = p;
      best.degree = d;
    }
    // Larger d only raises the separation requirement once capacity stops
    // binding; stop when separation alone already exceeds the best prime.
    if (separation > best.prime && capacity <= separation) break;
  }
  best.out_space = sat_mul(best.prime, best.prime);
  return best;
}

}  // namespace

LinialSchedule linial_schedule(std::int64_t delta_guess,
                               std::int64_t initial_space) {
  LinialSchedule schedule;
  schedule.initial_space = std::max<std::int64_t>(initial_space, 1);
  std::int64_t k = schedule.initial_space;
  // Hard cap as a belt-and-braces guard; the doubly-logarithmic decay makes
  // real schedules a handful of steps long.
  for (int step = 0; step < 40; ++step) {
    LinialStep next = choose_step(delta_guess, k);
    if (next.out_space >= k) break;  // fixed point reached
    schedule.steps.push_back(next);
    k = next.out_space;
  }
  schedule.final_space = k;
  return schedule;
}

std::int64_t linial_final_space_bound(std::int64_t delta_guess) {
  const std::int64_t p =
      static_cast<std::int64_t>(next_prime(static_cast<std::uint64_t>(
          2 * std::max<std::int64_t>(delta_guess, 1) + 1)));
  return p * p;
}

std::int64_t linial_step_apply(const LinialStep& step, std::int64_t color,
                               std::span<const std::int64_t> neighbor_colors) {
  const std::int64_t p = step.prime;
  const int digits = static_cast<int>(step.degree) + 1;
  auto digits_of = [&](std::int64_t c, std::int64_t* out) {
    for (int i = 0; i < digits; ++i) {
      out[i] = c % p;
      c /= p;
    }
  };
  auto eval = [&](const std::int64_t* coeff, std::int64_t a) {
    // Horner over F_p.
    std::int64_t acc = 0;
    for (int i = digits - 1; i >= 0; --i) acc = (acc * a + coeff[i]) % p;
    return acc;
  };
  // Clamp into the step's input space (garbage is possible under bad
  // guesses; the framework tolerates arbitrary behaviour then).
  const std::int64_t clamped = ((color % step.in_space) + step.in_space) %
                               step.in_space;
  std::int64_t own[64];
  digits_of(clamped, own);
  // Collect conflicting neighbour colors (clamped the same way).
  std::vector<std::int64_t> others;
  others.reserve(neighbor_colors.size());
  for (std::int64_t c : neighbor_colors) {
    if (c < 0) continue;
    const std::int64_t other = ((c % step.in_space) + step.in_space) %
                               step.in_space;
    if (other != clamped) others.push_back(other);
  }
  std::int64_t fallback = 0;
  for (std::int64_t a = 0; a < p; ++a) {
    const std::int64_t mine = eval(own, a);
    bool unique = true;
    std::int64_t buffer[64];
    for (std::int64_t c : others) {
      digits_of(c, buffer);
      if (eval(buffer, a) == mine) {
        unique = false;
        break;
      }
    }
    if (unique) return a * p + mine;
    fallback = a * p + mine;
  }
  // Only reachable under bad guesses (too many conflicting neighbours);
  // any value in range is acceptable then.
  return fallback;
}

namespace {

class LinialProcess final : public Process {
 public:
  explicit LinialProcess(const LinialSchedule* schedule)
      : schedule_(schedule) {}

  void step(Context& ctx) override {
    if (ctx.round() == 0) {
      color_ = ctx.input().empty() ? ctx.id() : ctx.input()[0];
      color_ = std::max<std::int64_t>(color_ - 1, 0) % schedule_->initial_space;
      ctx.broadcast({color_});
      return;
    }
    const std::size_t index = static_cast<std::size_t>(ctx.round() - 1);
    std::vector<std::int64_t> nbr(static_cast<std::size_t>(ctx.degree()), -1);
    for (NodeId j = 0; j < ctx.degree(); ++j) {
      const Message* m = ctx.received(j);
      if (m != nullptr) nbr[static_cast<std::size_t>(j)] = (*m)[0];
    }
    color_ = linial_step_apply(schedule_->steps[index], color_, nbr);
    if (index + 1 == schedule_->length()) {
      ctx.finish(color_ + 1);  // 1-based final color
      return;
    }
    ctx.broadcast({color_});
  }

 private:
  const LinialSchedule* schedule_;
  std::int64_t color_ = 0;
};

/// Degenerate (empty-schedule) case: finish immediately with the initial
/// color.
class TrivialColorProcess final : public Process {
 public:
  void step(Context& ctx) override {
    const std::int64_t c =
        ctx.input().empty() ? ctx.id() : ctx.input()[0];
    ctx.finish(std::max<std::int64_t>(c, 1));
  }
};

// --- flat-kernel lowering (mirrors LinialProcess::step bit-for-bit) ---------

struct LinialKernelState {
  std::int64_t color;
};

void linial_kernel_init_phase(KernelCtx& ctx) {
  const auto* schedule = static_cast<const LinialSchedule*>(ctx.config);
  auto& st = ctx.state_as<LinialKernelState>();
  st.color = ctx.input.empty() ? ctx.identity : ctx.input[0];
  st.color = std::max<std::int64_t>(st.color - 1, 0) % schedule->initial_space;
  ctx.broadcast({st.color});
}

void linial_kernel_reduce(KernelCtx& ctx) {
  const auto* schedule = static_cast<const LinialSchedule*>(ctx.config);
  auto& st = ctx.state_as<LinialKernelState>();
  const std::size_t index = static_cast<std::size_t>(ctx.round - 1);
  auto& nbr = *ctx.scratch;
  nbr.assign(static_cast<std::size_t>(ctx.degree), -1);
  for (NodeId j = 0; j < ctx.degree; ++j) {
    bool present = false;
    const auto m = ctx.recv(j, &present);
    if (present) nbr[static_cast<std::size_t>(j)] = m[0];
  }
  st.color = linial_step_apply(schedule->steps[index], st.color, nbr);
  if (index + 1 == schedule->length()) {
    ctx.finish(st.color + 1);  // 1-based final color
    return;
  }
  ctx.broadcast({st.color});
}

void trivial_color_kernel_step(KernelCtx& ctx) {
  const std::int64_t c = ctx.input.empty() ? ctx.identity : ctx.input[0];
  ctx.finish(std::max<std::int64_t>(c, 1));
}

// --- batched stepping (phase-grouped buckets; see KernelBatchCtx) -----------

void linial_batch_init(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    linial_kernel_init_phase(ctx);
    b.latch(i, ctx);
  }
}

void linial_batch_reduce(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    linial_kernel_reduce(ctx);
    b.latch(i, ctx);
  }
}

void trivial_color_batch_step(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    trivial_color_kernel_step(ctx);
    b.latch(i, ctx);
  }
}

std::shared_ptr<const StepKernel> make_linial_kernel(
    const LinialSchedule& schedule) {
  auto kernel = std::make_shared<StepKernel>();
  if (schedule.length() == 0) {
    kernel->name = "linial-trivial";
    kernel->phases = {
        {"finish", trivial_color_kernel_step, trivial_color_batch_step}};
    return kernel;
  }
  kernel->name = "linial";
  kernel->state_size = sizeof(LinialKernelState);
  kernel->state_align = alignof(LinialKernelState);
  kernel->phases = {{"init", linial_kernel_init_phase, linial_batch_init},
                    {"reduce", linial_kernel_reduce, linial_batch_reduce}};
  kernel->select_fn = [](std::int64_t round, const std::byte*,
                         const void*) -> std::uint16_t {
    return round == 0 ? 0 : 1;
  };
  kernel->config =
      std::shared_ptr<const void>(std::make_shared<LinialSchedule>(schedule));
  return kernel;
}

}  // namespace

LinialColoring::LinialColoring(std::int64_t delta_guess,
                               std::int64_t space_guess)
    : schedule_(linial_schedule(delta_guess, space_guess)),
      delta_guess_(delta_guess),
      kernel_(make_linial_kernel(schedule_)) {}

std::shared_ptr<const StepKernel> LinialColoring::kernel() const {
  return kernel_;
}

std::unique_ptr<Process> LinialColoring::spawn(const NodeInit&) const {
  if (schedule_.length() == 0)
    return std::make_unique<TrivialColorProcess>();
  return std::make_unique<LinialProcess>(&schedule_);
}

std::string LinialColoring::name() const {
  return "linial(D=" + std::to_string(delta_guess_) +
         ",k0=" + std::to_string(schedule_.initial_space) + ")";
}

namespace {

class LinialNonUniform final : public NonUniformAlgorithm {
 public:
  std::string name() const override { return "linial-O(D^2)-coloring"; }
  ParamSet gamma() const override {
    return {Param::kMaxDegree, Param::kMaxIdentity};
  }
  ParamSet lambda() const override {
    return {Param::kMaxDegree, Param::kMaxIdentity};
  }
  const RuntimeBound& bound() const override { return bound_; }
  std::unique_ptr<Algorithm> instantiate(
      std::span<const std::int64_t> guesses) const override {
    return std::make_unique<LinialColoring>(guesses[0],
                                            std::max<std::int64_t>(guesses[1], 1));
  }

 private:
  // Components are listed in lambda() order: Delta first, m second. The
  // schedule is at most 40 steps regardless of the space (hard cap), and
  // empirically a handful; the constant in the m-component dominates the
  // cap while keeping the component ascending.
  AdditiveBound bound_{
      {BoundComponent{"log2(D)+2",
                      [](std::int64_t d) {
                        return static_cast<double>(
                            clog2(static_cast<std::uint64_t>(
                                std::max<std::int64_t>(d, 1))) +
                            2);
                      }},
       BoundComponent{"log*(m)+42", [](std::int64_t m) {
                        return static_cast<double>(
                            log_star(static_cast<std::uint64_t>(
                                std::max<std::int64_t>(m, 2))) +
                            42);
                      }}}};
};

}  // namespace

std::unique_ptr<NonUniformAlgorithm> make_linial_coloring() {
  return std::make_unique<LinialNonUniform>();
}

}  // namespace unilocal
