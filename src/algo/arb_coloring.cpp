#include "src/algo/arb_coloring.h"

#include <algorithm>

#include "src/algo/hpartition.h"
#include "src/algo/linial.h"
#include "src/runtime/chain.h"
#include "src/runtime/kernel.h"
#include "src/util/math.h"

namespace unilocal {

struct OutLinialColoring::Impl {
  LinialSchedule schedule;
  std::int64_t out_degree_bound = 0;
};

namespace {

class OutLinialProcess final : public Process {
 public:
  explicit OutLinialProcess(const OutLinialColoring::Impl* impl)
      : impl_(impl) {}

  void step(Context& ctx) override {
    if (ctx.round() == 0) {
      layer_ = ctx.input().empty() ? 0 : ctx.input()[0];
      color_ = std::max<std::int64_t>(ctx.id() - 1, 0) %
               impl_->schedule.initial_space;
      ctx.broadcast({layer_, ctx.id()});
      return;
    }
    if (ctx.round() == 1) {
      // Learn the orientation: out-neighbours are (layer, id)-larger.
      out_port_.assign(static_cast<std::size_t>(ctx.degree()), 0);
      for (NodeId j = 0; j < ctx.degree(); ++j) {
        const Message* m = ctx.received(j);
        if (m == nullptr) continue;
        const auto other = std::make_pair((*m)[0], (*m)[1]);
        if (other > std::make_pair(layer_, ctx.id()))
          out_port_[static_cast<std::size_t>(j)] = 1;
      }
      if (impl_->schedule.length() == 0) {
        ctx.finish(color_ + 1);
        return;
      }
      ctx.broadcast({color_});
      return;
    }
    const std::size_t index = static_cast<std::size_t>(ctx.round() - 2);
    std::vector<std::int64_t> conflicts(static_cast<std::size_t>(ctx.degree()),
                                        -1);
    for (NodeId j = 0; j < ctx.degree(); ++j) {
      if (!out_port_[static_cast<std::size_t>(j)]) continue;
      const Message* m = ctx.received(j);
      if (m != nullptr) conflicts[static_cast<std::size_t>(j)] = (*m)[0];
    }
    color_ = linial_step_apply(impl_->schedule.steps[index], color_, conflicts);
    if (index + 1 == impl_->schedule.length()) {
      ctx.finish(color_ + 1);
      return;
    }
    ctx.broadcast({color_});
  }

 private:
  const OutLinialColoring::Impl* impl_;
  std::int64_t layer_ = 0;
  std::int64_t color_ = 0;
  std::vector<char> out_port_;
};

// --- flat-kernel lowering (mirrors OutLinialProcess::step bit-for-bit) ------
//
// The out-orientation flags move into the per-port state lane (one word per
// directed edge); the conflict buffer reuses the per-thread scratch vector.
// Config is the algorithm's shared Impl (schedule + out-degree bound).

struct OutLinialKernelState {
  std::int64_t layer;
  std::int64_t color;
};

void out_linial_kernel_round0(KernelCtx& ctx) {
  const auto* impl = static_cast<const OutLinialColoring::Impl*>(ctx.config);
  auto& st = ctx.state_as<OutLinialKernelState>();
  st.layer = ctx.input.empty() ? 0 : ctx.input[0];
  st.color = std::max<std::int64_t>(ctx.identity - 1, 0) %
             impl->schedule.initial_space;
  ctx.broadcast({st.layer, ctx.identity});
}

void out_linial_kernel_orient(KernelCtx& ctx) {
  const auto* impl = static_cast<const OutLinialColoring::Impl*>(ctx.config);
  auto& st = ctx.state_as<OutLinialKernelState>();
  // Learn the orientation: out-neighbours are (layer, id)-larger.
  for (NodeId j = 0; j < ctx.degree; ++j) {
    bool present = false;
    const auto m = ctx.recv(j, &present);
    if (!present) continue;
    const auto other = std::make_pair(m[0], m[1]);
    if (other > std::make_pair(st.layer, ctx.identity)) ctx.port_state[j] = 1;
  }
  if (impl->schedule.length() == 0) {
    ctx.finish(st.color + 1);
    return;
  }
  ctx.broadcast({st.color});
}

void out_linial_kernel_reduce(KernelCtx& ctx) {
  const auto* impl = static_cast<const OutLinialColoring::Impl*>(ctx.config);
  auto& st = ctx.state_as<OutLinialKernelState>();
  const std::size_t index = static_cast<std::size_t>(ctx.round - 2);
  auto& conflicts = *ctx.scratch;
  conflicts.assign(static_cast<std::size_t>(ctx.degree), -1);
  for (NodeId j = 0; j < ctx.degree; ++j) {
    if (ctx.port_state[j] == 0) continue;
    bool present = false;
    const auto m = ctx.recv(j, &present);
    if (present) conflicts[static_cast<std::size_t>(j)] = m[0];
  }
  st.color = linial_step_apply(impl->schedule.steps[index], st.color,
                               conflicts);
  if (index + 1 == impl->schedule.length()) {
    ctx.finish(st.color + 1);
    return;
  }
  ctx.broadcast({st.color});
}

void out_linial_batch_round0(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    out_linial_kernel_round0(ctx);
    b.latch(i, ctx);
  }
}

void out_linial_batch_orient(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    out_linial_kernel_orient(ctx);
    b.latch(i, ctx);
  }
}

void out_linial_batch_reduce(const KernelBatchCtx& b) {
  for (std::size_t i = 0; i < b.count; ++i) {
    KernelCtx ctx = b.node_ctx(i);
    out_linial_kernel_reduce(ctx);
    b.latch(i, ctx);
  }
}

std::shared_ptr<const StepKernel> make_out_linial_kernel(
    std::shared_ptr<const OutLinialColoring::Impl> impl) {
  auto kernel = std::make_shared<StepKernel>();
  kernel->name = "out-linial";
  kernel->state_size = sizeof(OutLinialKernelState);
  kernel->state_align = alignof(OutLinialKernelState);
  kernel->port_state_words = 1;
  kernel->phases = {
      {"round0", out_linial_kernel_round0, out_linial_batch_round0},
      {"orient", out_linial_kernel_orient, out_linial_batch_orient},
      {"reduce", out_linial_kernel_reduce, out_linial_batch_reduce}};
  kernel->select_fn = [](std::int64_t round, const std::byte*,
                         const void*) -> std::uint16_t {
    if (round == 0) return 0;
    return round == 1 ? 1 : 2;
  };
  kernel->config = std::shared_ptr<const void>(std::move(impl));
  return kernel;
}

}  // namespace

OutLinialColoring::OutLinialColoring(std::int64_t out_degree_bound,
                                     std::int64_t m_guess) {
  auto impl = std::make_shared<Impl>();
  impl->out_degree_bound = out_degree_bound;
  impl->schedule = linial_schedule(out_degree_bound,
                                   std::max<std::int64_t>(m_guess, 1));
  impl_ = std::move(impl);
  kernel_ = make_out_linial_kernel(impl_);
}

std::unique_ptr<Process> OutLinialColoring::spawn(const NodeInit&) const {
  return std::make_unique<OutLinialProcess>(impl_.get());
}

std::shared_ptr<const StepKernel> OutLinialColoring::kernel() const {
  return kernel_;
}

std::string OutLinialColoring::name() const {
  return "out-linial(d=" + std::to_string(impl_->out_degree_bound) + ")";
}

std::int64_t OutLinialColoring::final_space() const noexcept {
  return impl_->schedule.final_space;
}

std::int64_t OutLinialColoring::schedule_rounds() const noexcept {
  return static_cast<std::int64_t>(impl_->schedule.length()) + 2;
}

std::unique_ptr<Algorithm> make_arb_coloring_algorithm(
    std::int64_t arboricity_guess, std::int64_t n_guess,
    std::int64_t m_guess) {
  auto peel = std::make_shared<HPartition>(arboricity_guess, n_guess);
  auto color =
      std::make_shared<OutLinialColoring>(peel->threshold(), m_guess);
  std::vector<ChainStage> stages;
  stages.push_back({peel, peel->schedule_rounds()});
  stages.push_back({color, color->schedule_rounds()});
  return std::make_unique<ChainAlgorithm>(
      "arb-coloring(a=" + std::to_string(arboricity_guess) + ")",
      std::move(stages));
}

namespace {

class ArbColoring final : public NonUniformAlgorithm {
 public:
  std::string name() const override { return "arb-O(a^2)-coloring"; }
  ParamSet gamma() const override {
    return {Param::kArboricity, Param::kNumNodes, Param::kMaxIdentity};
  }
  ParamSet lambda() const override { return gamma(); }
  const RuntimeBound& bound() const override { return bound_; }
  std::unique_ptr<Algorithm> instantiate(
      std::span<const std::int64_t> guesses) const override {
    return make_arb_coloring_algorithm(guesses[0], guesses[1], guesses[2]);
  }

 private:
  AdditiveBound bound_{
      {BoundComponent{"6a+4",
                      [](std::int64_t a) {
                        return static_cast<double>(
                            6 * std::max<std::int64_t>(a, 1) + 4);
                      }},
       BoundComponent{"log1.5(n)+5",
                      [](std::int64_t n) {
                        return static_cast<double>(HPartition::phases_for(n) +
                                                   5);
                      }},
       BoundComponent{"log*(m)+44", [](std::int64_t m) {
                        return static_cast<double>(
                            log_star(static_cast<std::uint64_t>(
                                std::max<std::int64_t>(m, 2))) +
                            44);
                      }}}};
};

}  // namespace

std::unique_ptr<NonUniformAlgorithm> make_arb_coloring() {
  return std::make_unique<ArbColoring>();
}

}  // namespace unilocal
